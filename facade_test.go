package graphsql

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestArgumentConversions(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE TABLE t (i BIGINT, f DOUBLE, s VARCHAR, b BOOLEAN, d DATE)`)
	when := time.Date(2021, 7, 9, 0, 0, 0, 0, time.UTC)
	db.MustExec(`INSERT INTO t VALUES (?, ?, ?, ?, ?)`, int32(7), float32(1.5), "x", true, when)
	res, err := db.Query(`SELECT i, f, s, b, d FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if row[0] != int64(7) || row[1] != 1.5 || row[2] != "x" || row[3] != true {
		t.Fatalf("row = %v", row)
	}
	if d, ok := row[4].(time.Time); !ok || !d.Equal(when) {
		t.Fatalf("date = %v", row[4])
	}
	// Unsupported argument type.
	if _, err := db.Query(`SELECT ?`, struct{}{}); err == nil {
		t.Fatal("struct argument must be rejected")
	}
	// NULL argument.
	res, err = db.Query(`SELECT ? IS NULL`, nil)
	if err != nil || res.Rows[0][0] != true {
		t.Fatalf("nil arg: %v %v", res, err)
	}
}

func TestResultString(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE TABLE t (a BIGINT, b VARCHAR)`)
	db.MustExec(`INSERT INTO t VALUES (1, 'hello'), (2, NULL)`)
	res, err := db.Query(`SELECT a, b FROM t ORDER BY a`)
	if err != nil {
		t.Fatal(err)
	}
	out := res.String()
	for _, want := range []string{"a", "b", "hello", "NULL", "---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
	if res.Len() != 2 {
		t.Fatalf("len = %d", res.Len())
	}
}

func TestQueryScalarErrors(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE TABLE t (a BIGINT)`)
	db.MustExec(`INSERT INTO t VALUES (1), (2)`)
	if _, err := db.QueryScalar(`SELECT a FROM t`); err == nil {
		t.Fatal("two rows must fail QueryScalar")
	}
	if _, err := db.QueryScalar(`SELECT a, a FROM t LIMIT 1`); err == nil {
		t.Fatal("two columns must fail QueryScalar")
	}
	v, err := db.QueryScalar(`SELECT SUM(a) FROM t`)
	if err != nil || v != int64(3) {
		t.Fatalf("scalar = %v, %v", v, err)
	}
}

func TestExplainThroughFacade(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE TABLE e (s BIGINT, d BIGINT)`)
	p, err := db.Explain(`SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER e EDGE (s, d)`, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p, "GraphMatch") {
		t.Fatalf("plan missing GraphMatch:\n%s", p)
	}
}

func TestConcurrentReaders(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE TABLE e (s BIGINT, d BIGINT)`)
	db.MustExec(`INSERT INTO e VALUES (1,2),(2,3),(3,4)`)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				v, err := db.QueryScalar(
					`SELECT CHEAPEST SUM(1) WHERE 1 REACHES 4 OVER e EDGE (s, d)`)
				if err != nil {
					errs <- err
					return
				}
				if v != int64(3) {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestPathClientValue(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE TABLE e (s BIGINT, d BIGINT)`)
	db.MustExec(`INSERT INTO e VALUES (1,2),(2,3)`)
	res, err := db.Query(`SELECT CHEAPEST SUM(f: 1) AS (c, p)
		WHERE 1 REACHES 3 OVER e f EDGE (s, d)`)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := res.Rows[0][1].(*Path)
	if !ok {
		t.Fatalf("path cell is %T", res.Rows[0][1])
	}
	if p.Len() != 2 || len(p.Columns) != 2 || p.Columns[0] != "s" {
		t.Fatalf("path = %+v", p)
	}
	if p.Rows[0][0] != int64(1) || p.Rows[1][1] != int64(3) {
		t.Fatalf("path rows = %v", p.Rows)
	}
	if !strings.Contains(p.String(), "(1, 2)") {
		t.Fatalf("path rendering = %q", p.String())
	}
	var nilPath *Path
	if nilPath.Len() != 0 || nilPath.String() != "[]" {
		t.Fatal("nil path helpers broken")
	}
}

func TestExecScriptReturnsLastResult(t *testing.T) {
	db := Open()
	res, err := db.ExecScript(`
		CREATE TABLE t (a BIGINT);
		INSERT INTO t VALUES (1), (2);
		SELECT SUM(a) FROM t;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != int64(3) {
		t.Fatalf("script result = %v", res.Rows)
	}
}
