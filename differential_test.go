package graphsql

import (
	"fmt"
	"runtime"
	"testing"

	"graphsql/internal/core"
	"graphsql/internal/exec"
	"graphsql/internal/testutil"
)

// The differential harness locks down the engine-wide determinism
// guarantee: every query in the golden corpus must render
// byte-identically at parallelism 1 (the sequential reference), 2, an
// odd worker count (to hit uneven partition boundaries) and
// GOMAXPROCS. The operator size gates are lowered so the corpus — kept
// small for speed — still drives every partitioned code path.

// differentialSettings returns the parallelism settings under test,
// deduplicated; 1 comes first and is the reference.
func differentialSettings() []int {
	settings := []int{1, 2, 5, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	out := settings[:0]
	for _, s := range settings {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// forceParallelOperators lowers every parallel size gate for the test.
func forceParallelOperators(t testing.TB) {
	t.Helper()
	prevExec := exec.SetMinParallelRows(1)
	prevCore := core.SetMinParallelOutputRows(1)
	t.Cleanup(func() {
		exec.SetMinParallelRows(prevExec)
		core.SetMinParallelOutputRows(prevCore)
	})
}

func openCorpusDB(t testing.TB, parallelism int) *DB {
	t.Helper()
	db := Open(WithParallelism(parallelism))
	if _, err := db.ExecScript(testutil.SetupScript()); err != nil {
		t.Fatalf("parallelism %d: corpus setup: %v", parallelism, err)
	}
	return db
}

func TestDifferentialParallelism(t *testing.T) {
	forceParallelOperators(t)
	settings := differentialSettings()
	dbs := make([]*DB, len(settings))
	for i, p := range settings {
		dbs[i] = openCorpusDB(t, p)
	}
	for qi, q := range testutil.Queries() {
		t.Run(fmt.Sprintf("q%02d", qi), func(t *testing.T) {
			ref, err := dbs[0].Query(q)
			if err != nil {
				t.Fatalf("parallelism 1: %v\nquery: %s", err, q)
			}
			want := ref.String()
			for i := 1; i < len(settings); i++ {
				got, err := dbs[i].Query(q)
				if err != nil {
					t.Fatalf("parallelism %d: %v\nquery: %s", settings[i], err, q)
				}
				if got.String() != want {
					t.Errorf("parallelism %d renders differently\nquery: %s\n--- parallelism 1 (%d rows)\n%s--- parallelism %d (%d rows)\n%s",
						settings[i], q, ref.Len(), want, settings[i], got.Len(), got.String())
				}
			}
		})
	}
}

// TestDifferentialParallelismIndexed repeats the graph-extension slice
// of the corpus with a prebuilt graph index, so the dynamic-index
// match path (delta absorption + parallel output materialization) is
// covered by the same byte-identity requirement.
func TestDifferentialParallelismIndexed(t *testing.T) {
	forceParallelOperators(t)
	settings := differentialSettings()
	dbs := make([]*DB, len(settings))
	for i, p := range settings {
		dbs[i] = openCorpusDB(t, p)
		if err := dbs[i].BuildGraphIndex("knows", "src", "dst"); err != nil {
			t.Fatal(err)
		}
		// A few post-index inserts exercise the delta path.
		dbs[i].MustExec(`INSERT INTO knows VALUES (0, 399, 1, 1.5), (399, 1, 2, 2.5)`)
	}
	for qi, q := range testutil.Queries() {
		ref, err := dbs[0].Query(q)
		if err != nil {
			t.Fatalf("q%02d parallelism 1: %v", qi, err)
		}
		want := ref.String()
		for i := 1; i < len(settings); i++ {
			got, err := dbs[i].Query(q)
			if err != nil {
				t.Fatalf("q%02d parallelism %d: %v", qi, settings[i], err)
			}
			if got.String() != want {
				t.Errorf("q%02d: parallelism %d renders differently\nquery: %s", qi, settings[i], q)
			}
		}
	}
}
