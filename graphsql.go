// Package graphsql is an embedded, in-memory columnar SQL engine with
// the graph extension of De Leo & Boncz, "Extending SQL for Computing
// Shortest Paths" (GRADES'17): the REACHES reachability predicate, the
// CHEAPEST SUM shortest-path summary function, nested-table paths and
// UNNEST.
//
// Quick start:
//
//	db := graphsql.Open()
//	db.MustExec(`CREATE TABLE friends (src BIGINT, dst BIGINT, weight DOUBLE)`)
//	db.MustExec(`INSERT INTO friends VALUES (1, 2, 0.5), (2, 3, 2.0)`)
//	res, err := db.Query(
//	    `SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER friends EDGE (src, dst)`,
//	    1, 3)
//
// The dialect supports standard SELECT blocks (joins, WITH CTEs, GROUP
// BY/HAVING, ORDER BY/LIMIT, set operations, derived tables), CREATE
// TABLE / INSERT / DELETE / DROP, and positional ? host parameters.
//
// # Parallelism
//
// Query execution is multi-core end to end. The shortest-path runtime
// drains batched per-source traversals over a worker pool and builds
// the graph (dictionary encoding, CSR) chunked across workers; the
// relational operators around it opt into the same budget — hash
// joins partition build and probe, GROUP BY pre-aggregates per row
// partition (or accumulates per group when exact float/DISTINCT
// ordering demands it), ORDER BY runs a stable parallel merge sort,
// and DISTINCT and set operations shard rows by hash key — and result
// materialization (row gather, cost columns, nested-table paths) is
// partitioned the same way. The default budget is one worker per CPU;
// WithParallelism overrides it:
//
//	db := graphsql.Open(graphsql.WithParallelism(4)) // cap at 4 workers
//	db := graphsql.Open(graphsql.WithParallelism(1)) // force sequential
//
// Results are bit-identical at every setting — parallel execution only
// partitions independent work (per-source traversals, edge chunks, row
// ranges, key shards) over disjoint outputs merged in a fixed order,
// and never reorders the computation inside one unit. A differential
// test harness holds every operator to that guarantee. Small inputs
// take a sequential fast path regardless, so point queries pay no
// goroutine overhead.
//
// # Serving
//
// For service workloads, SELECTs run concurrently under a read lock
// while writes serialize, QueryCtx threads a context.Context through
// execution — checked at operator boundaries, between per-source
// traversals of a batched solve, and inside a single traversal (BFS
// and Dijkstra poll every few thousand queue pops; the
// frontier-parallel BFS polls per level), so even a single-source
// query over a huge graph aborts within milliseconds of cancellation —
// and Session handles add session-scoped settings (SET parallelism)
// plus a prepared parse+plan cache:
//
//	s := db.Session()
//	s.Query(ctx, `SET parallelism = 2`)          // this session only
//	res, err := s.Query(ctx, `SELECT ...`, args) // cached plan on repeat
//
// Every query path funnels into one core, DB.QueryRows (ctx first, a
// QueryOptions struct, returning a *Rows cursor); Query, QueryCtx,
// QueryScalar and the Session variants are thin wrappers that drain
// it. Under the default pull executor a SELECT opens its operator tree
// under the read lock (base tables snapshot, cached graph indexes
// refresh) and then executes batch-by-batch as the cursor is drained —
// lock-free, so the first rows of a large result are available while
// the query is still running and a slow consumer never blocks writers.
// DataVersion exposes a write counter that result caches key on so a
// cached SELECT is never served across a write. See the README's
// "Executor" section for the pull/materialize selection knobs
// (QueryOptions.Executor, GSQL_EXEC).
//
// cmd/gsqld exposes all of this over HTTP — a multi-graph registry
// with copy-on-swap reloads, an admission-control scheduler, a
// result-set cache, chunked streaming responses, wire-level prepared
// statements and Prometheus metrics — via the structured encoding of
// internal/wire; see the README's "Running as a server" and
// "Production serving".
package graphsql

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"graphsql/internal/engine"
	"graphsql/internal/exec"
	"graphsql/internal/storage"
	"graphsql/internal/trace"
	"graphsql/internal/types"
)

// DB is an embedded in-memory database. It is safe for concurrent use:
// SELECT statements run concurrently under a read lock, while DDL/DML
// (and engine-wide SET) serialize under the write lock. Long-running
// services should prefer Session handles, which add per-session
// settings and a prepared-plan cache on top.
type DB struct {
	mu  sync.RWMutex
	eng *engine.Engine

	// planHits/planMisses aggregate session plan-cache traffic across
	// every Session of this DB (a hit skips parse, bind and rewrite).
	planHits   atomic.Uint64
	planMisses atomic.Uint64
}

// PlanCacheStats reports the cumulative session plan-cache hits and
// misses across all sessions of the DB. Statement fingerprinting
// (internal/sql/fingerprint) normalizes literal variants to one cached
// plan, so replayed point lookups with changing literals count as hits.
func (db *DB) PlanCacheStats() (hits, misses uint64) {
	return db.planHits.Load(), db.planMisses.Load()
}

// QueryPanicError is the error a statement returns when its execution
// panicked — on the calling goroutine or inside a parallel worker. The
// engine converts the panic at its boundary (value + worker stack
// preserved), so callers observe it as an ordinary error on the normal
// return path; the facade's locks are released by the usual defers and
// the DB stays usable. Containment, not rollback: a panicking write
// may be partially applied, exactly like a write that fails with a
// regular error. Match with errors.As.
type QueryPanicError = engine.QueryPanicError

// Option configures a DB at Open time.
type Option func(*DB)

// WithParallelism caps the worker count of the shortest-path runtime:
// 1 forces sequential execution, n > 1 caps the pool, 0 (the default)
// uses one worker per CPU. Query results are identical at any setting.
func WithParallelism(n int) Option {
	return func(db *DB) { db.eng.SetParallelism(n) }
}

// Open creates an empty database.
func Open(opts ...Option) *DB {
	db := &DB{eng: engine.New()}
	for _, o := range opts {
		o(db)
	}
	return db
}

// Path is the client-side representation of a nested-table shortest
// path: the edge-table columns and one row per traversed edge, in
// order from source to destination.
type Path struct {
	Columns []string
	Rows    [][]any
}

// Len returns the number of edges in the path.
func (p *Path) Len() int {
	if p == nil {
		return 0
	}
	return len(p.Rows)
}

// String renders the path compactly.
func (p *Path) String() string {
	if p == nil || len(p.Rows) == 0 {
		return "[]"
	}
	var b strings.Builder
	b.WriteByte('[')
	for i, r := range p.Rows {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteByte('(')
		for j, v := range r {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(formatCell(v))
		}
		b.WriteByte(')')
	}
	b.WriteByte(']')
	return b.String()
}

// Result is a fully materialized query result.
type Result struct {
	// Columns holds the output column names.
	Columns []string
	// Rows holds the data; cells are int64, float64, string, bool,
	// time.Time (DATE), *Path (nested tables) or nil (NULL).
	Rows [][]any
}

// Len returns the row count.
func (r *Result) Len() int { return len(r.Rows) }

// String renders the result as an aligned text table.
func (r *Result) String() string {
	widths := make([]int, len(r.Columns))
	cells := make([][]string, len(r.Rows))
	for j, c := range r.Columns {
		widths[j] = len(c)
	}
	for i, row := range r.Rows {
		cells[i] = make([]string, len(row))
		for j, v := range row {
			s := formatCell(v)
			cells[i][j] = s
			if len(s) > widths[j] {
				widths[j] = len(s)
			}
		}
	}
	var b strings.Builder
	writeRow := func(row []string) {
		for j, s := range row {
			if j > 0 {
				b.WriteString(" | ")
			}
			b.WriteString(s)
			b.WriteString(strings.Repeat(" ", widths[j]-len(s)))
		}
		b.WriteByte('\n')
	}
	writeRow(r.Columns)
	for j := range r.Columns {
		if j > 0 {
			b.WriteString("-+-")
		}
		b.WriteString(strings.Repeat("-", widths[j]))
	}
	b.WriteByte('\n')
	for _, row := range cells {
		writeRow(row)
	}
	return b.String()
}

func formatCell(v any) string {
	switch t := v.(type) {
	case nil:
		return "NULL"
	case time.Time:
		return t.Format("2006-01-02")
	case *Path:
		return t.String()
	default:
		return fmt.Sprintf("%v", v)
	}
}

// Exec runs a statement that returns no rows (DDL/DML, or a query
// whose result is discarded).
func (db *DB) Exec(sql string, args ...any) error {
	_, err := db.Query(sql, args...)
	return err
}

// MustExec is Exec that panics on error; intended for tests, examples
// and setup code.
func (db *DB) MustExec(sql string, args ...any) {
	if err := db.Exec(sql, args...); err != nil {
		panic(err)
	}
}

// Query runs a statement and returns its result (nil Rows for DDL).
// Supported argument types: int, int32, int64, float32, float64,
// string, bool, time.Time (bound as DATE), and nil.
func (db *DB) Query(sql string, args ...any) (*Result, error) {
	//gsqlvet:allow ctxprop non-ctx compat wrapper; cancellable callers use QueryCtx
	return db.QueryCtx(context.Background(), sql, args...)
}

// QueryCtx is Query with a cancellation context: when ctx is canceled
// (client disconnect, timeout) execution stops at the next operator
// boundary, batch boundary, source-group boundary, or in-traversal
// poll (every few thousand queue pops; per level in the
// frontier-parallel BFS) and returns the context's error. SELECT
// statements run under the read lock — concurrent with each other —
// while everything else takes the write lock. It is QueryRows drained
// into a Result.
func (db *DB) QueryCtx(ctx context.Context, sql string, args ...any) (*Result, error) {
	rows, err := db.QueryRows(ctx, QueryOptions{}, sql, args...)
	if err != nil {
		return nil, err
	}
	return rows.Result()
}

// Rows is an incrementally consumable query result: the client side of
// the engine's row-batch cursor seam (internal/exec.Cursor) and what
// the gsqld streaming response rides on. Under the pull executor the
// query executes batch by batch *as Rows is drained* — the first batch
// of a 100k-row result is available before the query finishes, and the
// full row-major copy never exists in memory at once. NextBatch polls
// the query's context, keeping the cursor under the same cancellation
// contract as execution, and converts any panic raised by in-drain
// operator code into a *QueryPanicError, the same containment the
// engine boundary applies. Callers that may abandon a result early
// must Close it to release the operator tree; a fully drained or
// failed Rows closes itself. Not safe for concurrent use.
type Rows struct {
	// Columns holds the output column names.
	Columns []string
	cur     *exec.Cursor
}

func newRows(cur *exec.Cursor) *Rows {
	r := &Rows{cur: cur}
	for _, m := range cur.Schema() {
		r.Columns = append(r.Columns, m.Name)
	}
	return r
}

// Len returns the total row count of the result, or -1 while it is
// still unknown: under the pull executor a SELECT is executed as its
// Rows is drained, so the total only becomes known at exhaustion.
// Materialized results (non-SELECT statements, the materializing
// executor) know their count up front.
func (r *Rows) Len() int { return r.cur.NumRows() }

// NextBatch returns the next batch of up to maxRows rows (maxRows <= 0
// means all remaining rows), or (nil, nil) once the result is
// exhausted. Cells use the same representations as Result.Rows.
func (r *Rows) NextBatch(maxRows int) (rows [][]any, err error) {
	// Pull execution runs operator code during the drain — after the
	// engine's own panic guard returned — so the containment contract
	// is re-applied here. The guard closes the cursor on the way out;
	// ordinary errors already closed it (they are sticky in the cursor).
	defer func() {
		if err != nil {
			r.cur.Close()
		}
	}()
	defer engine.CapturePanic(&err)
	win, err := r.cur.Next(maxRows)
	if err != nil || win == nil {
		return nil, err
	}
	out := make([][]any, win.NumRows())
	for i := range out {
		row := make([]any, len(win.Cols))
		for j, col := range win.Cols {
			row[j] = fromValue(col.Get(i))
		}
		out[i] = row
	}
	return out, nil
}

// Close releases the result's operator tree. It is idempotent and safe
// after exhaustion (which closes implicitly); callers that may abandon
// a Rows before draining it must call it — typically via defer.
func (r *Rows) Close() error { return r.cur.Close() }

// Result drains the remaining rows into a fully materialized Result
// and closes the cursor. Draining from the start reproduces exactly
// what QueryCtx would have returned.
func (r *Rows) Result() (*Result, error) {
	res := &Result{Columns: append([]string(nil), r.Columns...)}
	for {
		batch, err := r.NextBatch(0)
		if err != nil {
			r.Close()
			return nil, err
		}
		if batch == nil {
			break
		}
		res.Rows = append(res.Rows, batch...)
	}
	r.Close()
	return res, nil
}

// QueryRows is the core query entry point every other query method
// wraps: ctx-first, per-statement options, returning an incremental
// Rows cursor. For SELECT statements the operator tree is opened under
// the read lock — base-table scans snapshot and cached graph indexes
// refresh there — and the lock is released before returning; execution
// then proceeds batch by batch as the cursor is drained, so a slow
// consumer never blocks writers and the first rows arrive before the
// query completes. Non-SELECT statements execute to completion under
// the write lock and return a fully materialized cursor. The caller
// should Close the Rows unless it drains it to exhaustion.
func (db *DB) QueryRows(ctx context.Context, qo QueryOptions, sql string, args ...any) (*Rows, error) {
	params, err := bindArgs(args)
	if err != nil {
		return nil, err
	}
	override := -1
	if qo.Workers > 0 {
		override = qo.Workers
	}
	opts := &engine.ExecOptions{
		Parallelism: override,
		Trace:       qo.Trace,
		Executor:    qo.Executor,
		BatchRows:   qo.BatchRows,
	}
	db.mu.RLock()
	p, err := db.eng.Prepare(sql, params...)
	if err != nil {
		db.mu.RUnlock()
		return nil, err
	}
	if p.IsSelect() {
		cur, err := db.eng.ExecPreparedCursor(ctx, p, opts, params...)
		db.mu.RUnlock()
		if err != nil {
			return nil, err
		}
		return newRows(cur), nil
	}
	db.mu.RUnlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	// Writes re-execute the parsed statement under the write lock;
	// non-SELECT statements carry no bound plan, so binding happens
	// here against the current catalog.
	cur, err := db.eng.ExecPreparedCursor(ctx, p, opts, params...)
	if err != nil {
		return nil, err
	}
	return newRows(cur), nil
}

// QueryRowsCtx is QueryRows with default options, kept for callers of
// the original cursor API.
//
// Deprecated: use QueryRows, which additionally takes QueryOptions.
func (db *DB) QueryRowsCtx(ctx context.Context, sql string, args ...any) (*Rows, error) {
	return db.QueryRows(ctx, QueryOptions{}, sql, args...)
}

// DataVersion reports a counter bumped by every statement that may
// change query-visible data (CREATE/DROP/INSERT/DELETE). Two SELECT
// executions bracketed by equal DataVersion observations saw the same
// data; the gsqld result cache keys on it (plus the registry
// generation) so a cached result is never served across a write.
// Reading it takes no lock.
func (db *DB) DataVersion() uint64 { return db.eng.DataVersion() }

// QueryScalar runs a query expected to produce exactly one row and one
// column and returns the single cell.
func (db *DB) QueryScalar(sql string, args ...any) (any, error) {
	res, err := db.Query(sql, args...)
	if err != nil {
		return nil, err
	}
	if len(res.Rows) != 1 || len(res.Columns) != 1 {
		return nil, fmt.Errorf("expected a single scalar, got %d row(s) × %d column(s)", len(res.Rows), len(res.Columns))
	}
	return res.Rows[0][0], nil
}

// ExecScript runs a semicolon-separated script and returns the result
// of the last statement.
func (db *DB) ExecScript(sql string) (*Result, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	chunk, err := db.eng.ExecScript(sql)
	if err != nil {
		return nil, err
	}
	if chunk == nil {
		return &Result{}, nil
	}
	return chunkToResult(chunk), nil
}

// Trace is a per-query span recorder: attach one to
// QueryOptions.Trace and the session records plan resolution, the
// per-operator execution tree (rows, wall times, worker budgets) and
// the solver's per-level BFS frontier sizes into it. Read it back with
// Tree (a JSON-marshalable span tree) or render it with RenderTrace.
// All methods are safe on a nil *Trace, which disables tracing.
type Trace = trace.Trace

// TraceNode is one node of a snapshot span tree (Trace.Tree).
type TraceNode = trace.Node

// NewTrace returns an enabled trace whose clock starts now.
func NewTrace() *Trace { return trace.New() }

// RenderTrace pretty-prints a span tree as an indented text block, the
// same rendering EXPLAIN ANALYZE uses.
func RenderTrace(n *TraceNode) string { return trace.Render(n) }

// Explain returns the optimized logical plan of a SELECT.
func (db *DB) Explain(sql string, args ...any) (string, error) {
	params, err := bindArgs(args)
	if err != nil {
		return "", err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.eng.Explain(sql, params...)
}

// BuildGraphIndex precomputes and caches the graph (vertex dictionary
// + CSR) of an edge table over the given source/destination columns —
// the 'graph index' of the paper's §6. REACHES queries over that exact
// table and column pair then skip graph construction. Writes to the
// table invalidate the index.
func (db *DB) BuildGraphIndex(table, src, dst string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.eng.BuildGraphIndex(table, src, dst)
}

// DropGraphIndexes discards all cached graph indexes of a table.
func (db *DB) DropGraphIndexes(table string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.eng.DropGraphIndexes(table)
}

// Engine exposes the underlying engine for advanced embedding
// (benchmark harnesses, instrumentation). Most callers never need it.
func (db *DB) Engine() *engine.Engine { return db.eng }

// TableStats reports the table count and total row count under the
// read lock; used by monitoring endpoints that must not race writers.
func (db *DB) TableStats() (tables, rows int) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	cat := db.eng.Catalog()
	for _, tn := range cat.TableNames() {
		if t, ok := cat.Table(tn); ok {
			tables++
			rows += t.NumRows()
		}
	}
	return tables, rows
}

// bindArgs converts Go values into engine parameter values.
func bindArgs(args []any) ([]types.Value, error) {
	out := make([]types.Value, len(args))
	for i, a := range args {
		v, err := toValue(a)
		if err != nil {
			return nil, fmt.Errorf("argument %d: %w", i+1, err)
		}
		out[i] = v
	}
	return out, nil
}

func toValue(a any) (types.Value, error) {
	switch t := a.(type) {
	case nil:
		return types.NewNull(types.KindNull), nil
	case int:
		return types.NewInt(int64(t)), nil
	case int32:
		return types.NewInt(int64(t)), nil
	case int64:
		return types.NewInt(t), nil
	case float32:
		return types.NewFloat(float64(t)), nil
	case float64:
		return types.NewFloat(t), nil
	case string:
		return types.NewString(t), nil
	case bool:
		return types.NewBool(t), nil
	case time.Time:
		return types.NewDate(t.Unix() / 86400), nil
	}
	return types.Value{}, fmt.Errorf("unsupported argument type %T", a)
}

func chunkToResult(c *storage.Chunk) *Result {
	res := &Result{Columns: make([]string, len(c.Schema))}
	for j, m := range c.Schema {
		res.Columns[j] = m.Name
	}
	n := c.NumRows()
	res.Rows = make([][]any, n)
	for i := 0; i < n; i++ {
		row := make([]any, len(c.Cols))
		for j, col := range c.Cols {
			row[j] = fromValue(col.Get(i))
		}
		res.Rows[i] = row
	}
	return res
}

func fromValue(v types.Value) any {
	if v.Null {
		return nil
	}
	switch v.K {
	case types.KindBool:
		return v.I != 0
	case types.KindInt:
		return v.I
	case types.KindFloat:
		return v.F
	case types.KindString:
		return v.S
	case types.KindDate:
		return time.Unix(v.I*86400, 0).UTC()
	case types.KindPath:
		return pathToClient(v.P)
	}
	return nil
}

func pathToClient(p *types.Path) *Path {
	out := &Path{Columns: append([]string(nil), p.Cols...)}
	for _, r := range p.Rows {
		row := make([]any, len(r))
		for j, v := range r {
			row[j] = fromValue(v)
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}
