package graphsql

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"graphsql/internal/testutil"
)

// planText folds an EXPLAIN [ANALYZE] result (one "QUERY PLAN" string
// column, one row per line) back into a text block.
func planText(t *testing.T, res *Result) string {
	t.Helper()
	if len(res.Columns) != 1 || res.Columns[0] != "QUERY PLAN" {
		t.Fatalf("explain result shape: %v", res.Columns)
	}
	var b strings.Builder
	for _, row := range res.Rows {
		fmt.Fprintln(&b, row[0])
	}
	return b.String()
}

// TestExplainAnalyzeDifferential locks down the EXPLAIN ANALYZE
// contract at every differential parallelism setting: analyzing a
// query really executes it (the annotated root reports the true result
// cardinality) and perturbs nothing — the plain query renders
// byte-identically before and after, and identically across worker
// counts.
func TestExplainAnalyzeDifferential(t *testing.T) {
	forceParallelOperators(t)
	for _, p := range differentialSettings() {
		db := openCorpusDB(t, p)
		for qi, q := range testutil.Queries() {
			ref, err := db.Query(q)
			if err != nil {
				t.Fatalf("parallelism %d q%02d: %v\nquery: %s", p, qi, err, q)
			}
			before := ref.String()
			plan, err := db.Query("EXPLAIN ANALYZE " + q)
			if err != nil {
				t.Fatalf("parallelism %d q%02d: EXPLAIN ANALYZE: %v\nquery: %s", p, qi, err, q)
			}
			text := planText(t, plan)
			firstLine, _, _ := strings.Cut(text, "\n")
			if !strings.Contains(firstLine, fmt.Sprintf("rows=%d", ref.Len())) {
				t.Fatalf("parallelism %d q%02d: annotated root does not report the true cardinality %d:\n%s\nquery: %s",
					p, qi, ref.Len(), text, q)
			}
			if !strings.Contains(firstLine, "time=") {
				t.Fatalf("parallelism %d q%02d: no timing on the root line:\n%s", p, qi, text)
			}
			after, err := db.Query(q)
			if err != nil {
				t.Fatalf("parallelism %d q%02d: re-run: %v", p, qi, err)
			}
			if after.String() != before {
				t.Fatalf("parallelism %d q%02d: EXPLAIN ANALYZE perturbed the query\nquery: %s\n--- before\n%s--- after\n%s",
					p, qi, q, before, after.String())
			}
		}
	}
}

// TestExplainAnalyzeGraphIndexFrontiers is the acceptance scenario: an
// EXPLAIN ANALYZE over an indexed shortest-path query must show the
// GraphMatch operator with actual rows, wall time and worker budget,
// plus the per-level frontier sizes of the BFS underneath it.
func TestExplainAnalyzeGraphIndexFrontiers(t *testing.T) {
	db := openCorpusDB(t, 2)
	if err := db.BuildGraphIndex("knows", "src", "dst"); err != nil {
		t.Fatal(err)
	}
	q := `SELECT p1.id, p2.id, CHEAPEST SUM(1) AS hops FROM people p1, people p2
	      WHERE p1.id REACHES p2.id OVER knows EDGE (src, dst) AND p1.id < 5 AND p2.id > 390`
	ref, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := db.Query("EXPLAIN ANALYZE " + q)
	if err != nil {
		t.Fatal(err)
	}
	text := planText(t, plan)
	gm := regexp.MustCompile(`GraphMatch .*\(rows=\d+.*time=.*workers=\d+\)`)
	if !gm.MatchString(text) {
		t.Fatalf("no annotated GraphMatch operator:\n%s", text)
	}
	lvl := regexp.MustCompile(`level \d+: frontier=\d+`)
	if !lvl.MatchString(text) {
		t.Fatalf("no BFS frontier level lines:\n%s", text)
	}
	if ref.Len() == 0 {
		t.Fatal("corpus query returned no rows; frontier assertion is vacuous")
	}
}

// TestExplainWithoutAnalyze: plain EXPLAIN renders the bound plan
// without executing, matching DB.Explain.
func TestExplainWithoutAnalyze(t *testing.T) {
	db := openCorpusDB(t, 1)
	q := `SELECT id FROM people WHERE score > 50 ORDER BY id LIMIT 3`
	want, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("EXPLAIN " + q)
	if err != nil {
		t.Fatal(err)
	}
	got := planText(t, res)
	if strings.TrimRight(got, "\n") != strings.TrimRight(want, "\n") {
		t.Fatalf("EXPLAIN differs from DB.Explain\n--- EXPLAIN\n%s--- Explain()\n%s", got, want)
	}
	if strings.Contains(got, "rows=") {
		t.Fatalf("plain EXPLAIN carries actuals: %s", got)
	}
}
