package graphsql

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"graphsql/internal/core"
	"graphsql/internal/exec"
)

// refGraph is an adjacency-list oracle with Bellman-Ford shortest
// paths, independent of every engine package.
type refGraph struct {
	n     int
	edges [][3]int64 // src, dst, weight (vertex ids are 0..n-1)
}

func (g *refGraph) distances(src int) []int64 {
	const inf = int64(1) << 60
	dist := make([]int64, g.n)
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	for iter := 0; iter < g.n; iter++ {
		changed := false
		for _, e := range g.edges {
			if dist[e[0]] != inf && dist[e[0]]+e[2] < dist[e[1]] {
				dist[e[1]] = dist[e[0]] + e[2]
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

// vertices returns the ids that actually appear in the edge table
// (the reachability predicate only holds for those, §2).
func (g *refGraph) vertices() map[int]bool {
	vs := map[int]bool{}
	for _, e := range g.edges {
		vs[int(e[0])] = true
		vs[int(e[1])] = true
	}
	return vs
}

func randomRefGraph(seed int64) *refGraph {
	r := rand.New(rand.NewSource(seed))
	n := 2 + r.Intn(14)
	m := r.Intn(3 * n)
	g := &refGraph{n: n}
	for i := 0; i < m; i++ {
		g.edges = append(g.edges, [3]int64{
			int64(r.Intn(n)), int64(r.Intn(n)), int64(1 + r.Intn(9)),
		})
	}
	return g
}

// loadRefGraph loads the oracle graph into a fresh database.
func loadRefGraph(t testing.TB, g *refGraph) *DB {
	return loadRefGraphP(t, g, 0)
}

// loadRefGraphP is loadRefGraph with an explicit parallelism budget.
func loadRefGraphP(t testing.TB, g *refGraph, parallelism int) *DB {
	t.Helper()
	db := Open(WithParallelism(parallelism))
	db.MustExec(`CREATE TABLE e (s BIGINT, d BIGINT, w BIGINT)`)
	if len(g.edges) == 0 {
		return db
	}
	var b strings.Builder
	b.WriteString(`INSERT INTO e VALUES `)
	for i, e := range g.edges {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%d, %d, %d)", e[0], e[1], e[2])
	}
	db.MustExec(b.String())
	return db
}

// TestPropertySQLWeightedShortestPaths runs the full SQL pipeline
// (parse → bind → rewrite → graph select → Dijkstra) on random graphs
// and compares every pair's cost against the Bellman-Ford oracle.
func TestPropertySQLWeightedShortestPaths(t *testing.T) {
	f := func(seed int64) bool {
		g := randomRefGraph(seed)
		if len(g.edges) == 0 {
			return true
		}
		db := loadRefGraph(t, g)
		vs := g.vertices()
		for s := 0; s < g.n; s++ {
			ref := g.distances(s)
			for d := 0; d < g.n; d++ {
				res, err := db.Query(
					`SELECT CHEAPEST SUM(f: w) WHERE ? REACHES ? OVER e f EDGE (s, d)`, s, d)
				if err != nil {
					t.Fatal(err)
				}
				reachable := vs[s] && vs[d] && ref[d] < int64(1)<<60
				if (res.Len() == 1) != reachable {
					t.Logf("seed %d: pair (%d,%d) reachable=%v but %d rows", seed, s, d, reachable, res.Len())
					return false
				}
				if reachable && res.Rows[0][0] != ref[d] {
					t.Logf("seed %d: cost(%d,%d) = %v, want %d", seed, s, d, res.Rows[0][0], ref[d])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySQLBatchedEqualsSinglePair checks that one many-to-many
// graph join over a pairs table returns exactly the per-pair results.
func TestPropertySQLBatchedEqualsSinglePair(t *testing.T) {
	f := func(seed int64) bool {
		g := randomRefGraph(seed)
		if len(g.edges) == 0 {
			return true
		}
		db := loadRefGraph(t, g)
		db.MustExec(`CREATE TABLE pairs (a BIGINT, b BIGINT)`)
		r := rand.New(rand.NewSource(seed ^ 0x55))
		for i := 0; i < 10; i++ {
			db.MustExec(`INSERT INTO pairs VALUES (?, ?)`, r.Intn(g.n), r.Intn(g.n))
		}
		batched, err := db.Query(`
			SELECT p.a, p.b, CHEAPEST SUM(f: w) AS c
			FROM pairs p
			WHERE p.a REACHES p.b OVER e f EDGE (s, d)`)
		if err != nil {
			t.Fatal(err)
		}
		got := map[[2]int64][]int64{}
		for _, row := range batched.Rows {
			k := [2]int64{row[0].(int64), row[1].(int64)}
			got[k] = append(got[k], row[2].(int64))
		}
		// Each pair occurrence answered independently must agree.
		pairs, err := db.Query(`SELECT a, b FROM pairs`)
		if err != nil {
			t.Fatal(err)
		}
		counts := map[[2]int64]int{}
		for _, row := range pairs.Rows {
			counts[[2]int64{row[0].(int64), row[1].(int64)}]++
		}
		for k, c := range counts {
			single, err := db.Query(
				`SELECT CHEAPEST SUM(f: w) WHERE ? REACHES ? OVER e f EDGE (s, d)`, k[0], k[1])
			if err != nil {
				t.Fatal(err)
			}
			if single.Len() == 0 {
				if len(got[k]) != 0 {
					return false
				}
				continue
			}
			if len(got[k]) != c {
				t.Logf("seed %d: pair %v occurs %d times, batched returned %d rows", seed, k, c, len(got[k]))
				return false
			}
			for _, v := range got[k] {
				if v != single.Rows[0][0] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// parallelEquivalenceQueries are the random-plan shapes of the
// parallel-vs-sequential property test: every parallelized operator
// (hash join, aggregation, sort, DISTINCT, set operations, graph match
// with path materialization) over the random oracle graph's edge
// table. Queries without ORDER BY rely on the engine's determinism
// guarantee — which is exactly what is being tested.
var parallelEquivalenceQueries = []string{
	`SELECT s, COUNT(*), SUM(w), MIN(d), MAX(w), AVG(w) FROM e GROUP BY s`,
	`SELECT COUNT(*), SUM(w), AVG(w), COUNT(DISTINCT s) FROM e`,
	`SELECT DISTINCT s, d FROM e`,
	`SELECT a.s, a.d, b.d, a.w + b.w FROM e a JOIN e b ON a.d = b.s`,
	`SELECT a.s, b.w FROM e a LEFT JOIN e b ON a.d = b.s AND b.w > 5`,
	`SELECT a.s, b.s FROM e a JOIN e b ON a.w = b.w AND a.s < b.d`,
	`SELECT s, d, w FROM e ORDER BY w DESC, s, d`,
	`SELECT s FROM e UNION SELECT d FROM e`,
	`SELECT s FROM e UNION ALL SELECT d FROM e`,
	`SELECT s FROM e EXCEPT ALL SELECT d FROM e`,
	`SELECT s, d FROM e INTERSECT SELECT d, s FROM e`,
	`SELECT x.s, x.d, CHEAPEST SUM(f: w) AS c FROM e x
	 WHERE x.s REACHES x.d OVER e f EDGE (s, d) ORDER BY c DESC, x.s, x.d`,
	`SELECT q.s, SUM(r.w) FROM (
	   SELECT x.s, x.d, CHEAPEST SUM(f: w) AS (c, p) FROM e x
	   WHERE x.s REACHES x.d OVER e f EDGE (s, d)
	 ) q, UNNEST(q.p) AS r GROUP BY q.s`,
	`SELECT s % 3, COUNT(*), MIN(w) FROM e WHERE d >= 0 GROUP BY s % 3 HAVING COUNT(*) > 1`,
}

// TestPropertyParallelEquivalence runs the full SQL pipeline over
// random graphs twice — sequentially and over a worker pool with the
// parallel-operator gates lowered — and requires byte-identical result
// renderings for every plan shape.
func TestPropertyParallelEquivalence(t *testing.T) {
	prevExec := exec.SetMinParallelRows(1)
	prevCore := core.SetMinParallelOutputRows(1)
	t.Cleanup(func() {
		exec.SetMinParallelRows(prevExec)
		core.SetMinParallelOutputRows(prevCore)
	})
	f := func(seed int64) bool {
		g := randomRefGraph(seed)
		if len(g.edges) == 0 {
			return true
		}
		seq := loadRefGraphP(t, g, 1)
		par := loadRefGraphP(t, g, 8)
		for _, q := range parallelEquivalenceQueries {
			want, err := seq.Query(q)
			if err != nil {
				t.Fatalf("seed %d: sequential: %v\nquery: %s", seed, err, q)
			}
			got, err := par.Query(q)
			if err != nil {
				t.Fatalf("seed %d: parallel: %v\nquery: %s", seed, err, q)
			}
			if got.String() != want.String() {
				t.Logf("seed %d: parallel output diverges\nquery: %s\n--- sequential\n%s--- parallel\n%s",
					seed, q, want.String(), got.String())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyUnnestReconstructsCost flattens every returned path and
// re-sums its weights; the sum must equal the reported cost, and the
// hops must chain from source to destination.
func TestPropertyUnnestReconstructsCost(t *testing.T) {
	f := func(seed int64) bool {
		g := randomRefGraph(seed)
		if len(g.edges) == 0 {
			return true
		}
		db := loadRefGraph(t, g)
		r := rand.New(rand.NewSource(seed ^ 0x99))
		for try := 0; try < 8; try++ {
			s, d := r.Intn(g.n), r.Intn(g.n)
			res, err := db.Query(`
				SELECT t.c, r.s, r.d, r.w, r.ordinality
				FROM (
					SELECT CHEAPEST SUM(f: w) AS (c, p)
					WHERE ? REACHES ? OVER e f EDGE (s, d)
				) t, UNNEST(t.p) WITH ORDINALITY AS r
				ORDER BY r.ordinality`, s, d)
			if err != nil {
				t.Fatal(err)
			}
			if res.Len() == 0 {
				continue
			}
			cost := res.Rows[0][0].(int64)
			var sum int64
			at := int64(s)
			for i, row := range res.Rows {
				if row[1].(int64) != at {
					t.Logf("seed %d: hop %d starts at %v, cursor %d", seed, i, row[1], at)
					return false
				}
				at = row[2].(int64)
				sum += row[3].(int64)
				if row[4].(int64) != int64(i+1) {
					return false
				}
			}
			if at != int64(d) || sum != cost {
				t.Logf("seed %d: path ends at %d (want %d), sum %d (want %d)", seed, at, d, sum, cost)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
