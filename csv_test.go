package graphsql

import (
	"bytes"
	"strings"
	"testing"
)

func TestLoadCSVRoundTrip(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE TABLE f (src BIGINT, dst BIGINT, creationDate DATE, weight DOUBLE, active BOOLEAN)`)
	csvData := strings.Join([]string{
		"src,dst,creationDate,weight,active",
		"1,2,2010-03-24,0.5,true",
		"2,3,2010-12-02,2.0,false",
		"3,4,,1.25,", // NULL date and boolean
	}, "\n")
	n, err := db.LoadCSV("f", strings.NewReader(csvData))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("loaded %d rows, want 3", n)
	}
	res, err := db.Query(`SELECT COUNT(*), SUM(weight), COUNT(creationDate) FROM f`)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if row[0] != int64(3) || row[1] != 3.75 || row[2] != int64(2) {
		t.Fatalf("row = %v", row)
	}
	// Graph queries work over CSV-loaded edges.
	got, err := db.QueryScalar(`SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER f EDGE (src, dst)`, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != int64(3) {
		t.Fatalf("distance = %v, want 3", got)
	}
}

func TestLoadCSVColumnSubsetAndOrder(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE TABLE t (a BIGINT, b VARCHAR, c DOUBLE)`)
	n, err := db.LoadCSV("t", strings.NewReader("B,A\nhello,7\n"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("rows = %d", n)
	}
	res, err := db.Query(`SELECT a, b, c FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != int64(7) || res.Rows[0][1] != "hello" || res.Rows[0][2] != nil {
		t.Fatalf("row = %v", res.Rows[0])
	}
}

func TestLoadCSVErrors(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE TABLE t (a BIGINT)`)
	if _, err := db.LoadCSV("missing", strings.NewReader("a\n1\n")); err == nil {
		t.Fatal("missing table must error")
	}
	if _, err := db.LoadCSV("t", strings.NewReader("zz\n1\n")); err == nil {
		t.Fatal("unknown header column must error")
	}
	if _, err := db.LoadCSV("t", strings.NewReader("a\nnot_a_number\n")); err == nil {
		t.Fatal("bad cell must error")
	}
}

func TestDumpCSV(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE TABLE t (a BIGINT, b VARCHAR)`)
	db.MustExec(`INSERT INTO t VALUES (1, 'x'), (2, NULL)`)
	var buf bytes.Buffer
	if err := db.DumpCSV(&buf, `SELECT a, b FROM t ORDER BY a`); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,x\n2,\n"
	if buf.String() != want {
		t.Fatalf("dump = %q, want %q", buf.String(), want)
	}
}

func TestTablesAndSchemaIntrospection(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE TABLE t (a BIGINT, b VARCHAR)`)
	if got := db.Tables(); len(got) != 1 || got[0] != "t" {
		t.Fatalf("tables = %v", got)
	}
	sch, err := db.TableSchema("t")
	if err != nil {
		t.Fatal(err)
	}
	if len(sch) != 2 || sch[0] != "a BIGINT" || sch[1] != "b VARCHAR" {
		t.Fatalf("schema = %v", sch)
	}
	if _, err := db.TableSchema("zz"); err == nil {
		t.Fatal("missing table must error")
	}
}
