// Command gsql is an interactive shell (and script runner) for the
// graphsql engine. Statements end with ';'. Example session:
//
//	$ go run ./cmd/gsql
//	gsql> CREATE TABLE e (s BIGINT, d BIGINT);
//	gsql> INSERT INTO e VALUES (1,2), (2,3);
//	gsql> SELECT CHEAPEST SUM(1) WHERE 1 REACHES 3 OVER e EDGE (s, d);
//
// Meta commands: \d lists tables, \explain SELECT ... prints the plan,
// \q quits.
//
// Tracing: -analyze wraps every SELECT in EXPLAIN ANALYZE, so each
// query executes and prints its annotated plan tree (actual rows,
// timings, workers, BFS frontier sizes) instead of its rows. -trace
// records a span trace per statement: the human-readable mode prints
// the rendered tree to stderr after the rows, -json attaches it as the
// wire response's "trace" field, and -stream carries it in the trailer
// frame — exactly like a gsqld request with "trace": true.
//
// Output modes: -json emits each statement's result as one buffered
// wire object (the gsqld /query response encoding); -stream emits the
// chunked NDJSON frame sequence (the gsqld streaming encoding), with
// rows converted and written batch by batch through the engine's
// row-batch cursor, so huge results never exist row-major in memory.
//
// Queries run with the engine's full worker budget: batched REACHES
// queries parallelize across source groups, and single-source queries
// over large graphs parallelize within the traversal (frontier-
// parallel BFS) — results are bit-identical either way. Ctrl-C exits
// the shell; for cancelable queries use the HTTP daemon (cmd/gsqld),
// which aborts a running traversal when the client disconnects.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"graphsql"
	"graphsql/internal/sql/lexer"
	"graphsql/internal/wire"
)

func main() {
	file := flag.String("f", "", "run a SQL script instead of the REPL")
	jsonOut := flag.Bool("json", false, "emit results as wire JSON (the gsqld response encoding), one object per statement")
	streamOut := flag.Bool("stream", false, "emit results as chunked NDJSON frames (the gsqld streaming encoding), one stream per statement; rows are converted batch by batch instead of materializing the whole result row-major")
	analyze := flag.Bool("analyze", false, "wrap every SELECT in EXPLAIN ANALYZE: execute it and print the annotated plan tree (actual rows, timings, frontier sizes) instead of its rows")
	traced := flag.Bool("trace", false, "record a span trace per statement; prints the rendered tree to stderr (human mode), or attaches it to the wire output (-json response field, -stream trailer frame)")
	flag.Parse()

	db := graphsql.Open()
	sess := db.Session()
	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		script := string(data)
		if *analyze {
			script = analyzeScript(script)
		}
		if *streamOut {
			// The lexer-driven splitter sees quoting and comments exactly
			// as the parser will, so script statements stream one at a
			// time without a second scanner to drift out of sync.
			for _, stmt := range lexer.SplitStatements(script) {
				if !streamStatement(sess, stmt, *traced) {
					os.Exit(1)
				}
			}
			return
		}
		if *traced {
			// Per-statement execution: each statement gets its own trace.
			for _, stmt := range lexer.SplitStatements(script) {
				if !tracedStatement(sess, stmt, *jsonOut) {
					os.Exit(1)
				}
			}
			return
		}
		res, err := db.ExecScript(script)
		if *jsonOut {
			if !printWire(res, err) {
				os.Exit(1)
			}
			return
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if res != nil && len(res.Columns) > 0 {
			fmt.Print(res)
		}
		return
	}

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("gsql> ")
		} else {
			fmt.Print("  ... ")
		}
	}
	prompt()
	for in.Scan() {
		line := in.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, `\`) {
			if runMeta(db, trimmed) {
				return
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.HasSuffix(trimmed, ";") {
			sql := buf.String()
			buf.Reset()
			if *analyze {
				sql = analyzeScript(sql)
			}
			if *streamOut {
				// The buffer may hold several ';'-separated statements;
				// stream each one, exactly like the -f script path.
				for _, stmt := range lexer.SplitStatements(sql) {
					streamStatement(sess, stmt, *traced)
				}
				prompt()
				continue
			}
			if *traced {
				for _, stmt := range lexer.SplitStatements(sql) {
					tracedStatement(sess, stmt, *jsonOut)
				}
				prompt()
				continue
			}
			res, err := db.ExecScript(sql)
			switch {
			case *jsonOut:
				printWire(res, err)
			case err != nil:
				fmt.Println("error:", err)
			case res != nil && len(res.Columns) > 0:
				fmt.Print(res)
				fmt.Printf("(%d row(s))\n", res.Len())
			default:
				fmt.Println("ok")
			}
		}
		prompt()
	}
}

// analyzeScript rewrites each SELECT (or WITH ... SELECT) statement of
// a script into EXPLAIN ANALYZE form; other statements pass through so
// schema setup and inserts in the same script keep working.
func analyzeScript(sql string) string {
	stmts := lexer.SplitStatements(sql)
	for i, stmt := range stmts {
		fields := strings.Fields(stmt)
		if len(fields) == 0 {
			continue
		}
		switch strings.ToUpper(fields[0]) {
		case "SELECT", "WITH":
			stmts[i] = "EXPLAIN ANALYZE " + stmt
		}
	}
	return strings.Join(stmts, ";\n") + ";"
}

// tracedStatement runs one statement with a span trace. -json attaches
// the tree to the wire response (the gsqld "trace": true shape); the
// human mode prints the rows to stdout and the rendered tree to
// stderr, keeping piped output clean.
func tracedStatement(sess *graphsql.Session, sql string, jsonOut bool) bool {
	tr := graphsql.NewTrace()
	res, err := sess.QueryOpts(context.Background(), graphsql.QueryOptions{Trace: tr}, sql)
	if jsonOut {
		var payload *wire.QueryResponse
		if err != nil {
			payload = wire.FromError(wire.CodeSQL, err)
		} else {
			if res == nil {
				res = &graphsql.Result{}
			}
			payload = wire.FromResult(res)
		}
		payload.Trace = tr.Tree()
		data, encErr := payload.Encode()
		if encErr != nil {
			fmt.Fprintln(os.Stderr, encErr)
			return false
		}
		fmt.Println(string(data))
		return err == nil
	}
	if err != nil {
		fmt.Println("error:", err)
		return false
	}
	if res != nil && len(res.Columns) > 0 {
		fmt.Print(res)
		fmt.Printf("(%d row(s))\n", res.Len())
	} else {
		fmt.Println("ok")
	}
	fmt.Fprint(os.Stderr, graphsql.RenderTrace(tr.Tree()))
	return true
}

// streamStatement runs one statement through the row-batch cursor and
// emits it in the chunked wire encoding (identical to a gsqld
// streaming /query response body); it reports success. Errors before
// the header use the buffered error object, exactly like gsqld. When
// traced, the span tree rides in the trailer frame.
func streamStatement(sess *graphsql.Session, sql string, traced bool) bool {
	var tr *graphsql.Trace
	if traced {
		tr = graphsql.NewTrace()
	}
	rows, err := sess.QueryRows(context.Background(), graphsql.QueryOptions{Trace: tr}, sql)
	if err != nil {
		data, encErr := wire.FromError(wire.CodeSQL, err).Encode()
		if encErr != nil {
			fmt.Fprintln(os.Stderr, encErr)
			return false
		}
		fmt.Println(string(data))
		return false
	}
	sw := wire.NewStreamWriter(os.Stdout)
	if err := sw.Header(rows.Columns); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return false
	}
	for {
		b, err := rows.NextBatch(wire.DefaultBatchRows)
		if err != nil {
			sw.Fail(wire.CodeCanceled, err)
			return false
		}
		if b == nil {
			break
		}
		if err := sw.Batch(b); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return false
		}
	}
	if err := sw.Trailer(tr.Tree()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return false
	}
	return true
}

// printWire renders one statement outcome in the shared wire encoding
// (identical to a gsqld /query response body); it reports success.
func printWire(res *graphsql.Result, err error) bool {
	var payload *wire.QueryResponse
	if err != nil {
		payload = wire.FromError(wire.CodeSQL, err)
	} else {
		if res == nil {
			res = &graphsql.Result{}
		}
		payload = wire.FromResult(res)
	}
	data, encErr := payload.Encode()
	if encErr != nil {
		fmt.Fprintln(os.Stderr, encErr)
		return false
	}
	fmt.Println(string(data))
	return err == nil
}

// runMeta executes a backslash command; it returns true on quit.
func runMeta(db *graphsql.DB, cmd string) bool {
	switch {
	case cmd == `\q`:
		return true
	case cmd == `\d`:
		for _, name := range db.Engine().Catalog().TableNames() {
			t, _ := db.Engine().Catalog().Table(name)
			fmt.Printf("%s (%d rows): %s\n", t.Name, t.NumRows(), t.Schema)
		}
	case strings.HasPrefix(cmd, `\explain `):
		p, err := db.Explain(strings.TrimSuffix(strings.TrimPrefix(cmd, `\explain `), ";"))
		if err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Print(p)
		}
	default:
		fmt.Println(`meta commands: \d (tables), \explain <select>, \q (quit)`)
	}
	return false
}
