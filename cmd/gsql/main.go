// Command gsql is an interactive shell (and script runner) for the
// graphsql engine. Statements end with ';'. Example session:
//
//	$ go run ./cmd/gsql
//	gsql> CREATE TABLE e (s BIGINT, d BIGINT);
//	gsql> INSERT INTO e VALUES (1,2), (2,3);
//	gsql> SELECT CHEAPEST SUM(1) WHERE 1 REACHES 3 OVER e EDGE (s, d);
//
// Meta commands: \d lists tables, \explain SELECT ... prints the plan,
// \q quits.
//
// Output modes: -json emits each statement's result as one buffered
// wire object (the gsqld /query response encoding); -stream emits the
// chunked NDJSON frame sequence (the gsqld streaming encoding), with
// rows converted and written batch by batch through the engine's
// row-batch cursor, so huge results never exist row-major in memory.
//
// Queries run with the engine's full worker budget: batched REACHES
// queries parallelize across source groups, and single-source queries
// over large graphs parallelize within the traversal (frontier-
// parallel BFS) — results are bit-identical either way. Ctrl-C exits
// the shell; for cancelable queries use the HTTP daemon (cmd/gsqld),
// which aborts a running traversal when the client disconnects.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"graphsql"
	"graphsql/internal/sql/lexer"
	"graphsql/internal/wire"
)

func main() {
	file := flag.String("f", "", "run a SQL script instead of the REPL")
	jsonOut := flag.Bool("json", false, "emit results as wire JSON (the gsqld response encoding), one object per statement")
	streamOut := flag.Bool("stream", false, "emit results as chunked NDJSON frames (the gsqld streaming encoding), one stream per statement; rows are converted batch by batch instead of materializing the whole result row-major")
	flag.Parse()

	db := graphsql.Open()
	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *streamOut {
			// The lexer-driven splitter sees quoting and comments exactly
			// as the parser will, so script statements stream one at a
			// time without a second scanner to drift out of sync.
			for _, stmt := range lexer.SplitStatements(string(data)) {
				if !streamStatement(db, stmt) {
					os.Exit(1)
				}
			}
			return
		}
		res, err := db.ExecScript(string(data))
		if *jsonOut {
			if !printWire(res, err) {
				os.Exit(1)
			}
			return
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if res != nil && len(res.Columns) > 0 {
			fmt.Print(res)
		}
		return
	}

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("gsql> ")
		} else {
			fmt.Print("  ... ")
		}
	}
	prompt()
	for in.Scan() {
		line := in.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, `\`) {
			if runMeta(db, trimmed) {
				return
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.HasSuffix(trimmed, ";") {
			sql := buf.String()
			buf.Reset()
			if *streamOut {
				// The buffer may hold several ';'-separated statements;
				// stream each one, exactly like the -f script path.
				for _, stmt := range lexer.SplitStatements(sql) {
					streamStatement(db, stmt)
				}
				prompt()
				continue
			}
			res, err := db.ExecScript(sql)
			switch {
			case *jsonOut:
				printWire(res, err)
			case err != nil:
				fmt.Println("error:", err)
			case res != nil && len(res.Columns) > 0:
				fmt.Print(res)
				fmt.Printf("(%d row(s))\n", res.Len())
			default:
				fmt.Println("ok")
			}
		}
		prompt()
	}
}

// streamStatement runs one statement through the row-batch cursor and
// emits it in the chunked wire encoding (identical to a gsqld
// streaming /query response body); it reports success. Errors before
// the header use the buffered error object, exactly like gsqld.
func streamStatement(db *graphsql.DB, sql string) bool {
	rows, err := db.QueryRowsCtx(context.Background(), sql)
	if err != nil {
		data, encErr := wire.FromError(wire.CodeSQL, err).Encode()
		if encErr != nil {
			fmt.Fprintln(os.Stderr, encErr)
			return false
		}
		fmt.Println(string(data))
		return false
	}
	sw := wire.NewStreamWriter(os.Stdout)
	if err := sw.Header(rows.Columns); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return false
	}
	for {
		b, err := rows.NextBatch(wire.DefaultBatchRows)
		if err != nil {
			sw.Fail(wire.CodeCanceled, err)
			return false
		}
		if b == nil {
			break
		}
		if err := sw.Batch(b); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return false
		}
	}
	if err := sw.Trailer(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return false
	}
	return true
}

// printWire renders one statement outcome in the shared wire encoding
// (identical to a gsqld /query response body); it reports success.
func printWire(res *graphsql.Result, err error) bool {
	var payload *wire.QueryResponse
	if err != nil {
		payload = wire.FromError(wire.CodeSQL, err)
	} else {
		if res == nil {
			res = &graphsql.Result{}
		}
		payload = wire.FromResult(res)
	}
	data, encErr := payload.Encode()
	if encErr != nil {
		fmt.Fprintln(os.Stderr, encErr)
		return false
	}
	fmt.Println(string(data))
	return err == nil
}

// runMeta executes a backslash command; it returns true on quit.
func runMeta(db *graphsql.DB, cmd string) bool {
	switch {
	case cmd == `\q`:
		return true
	case cmd == `\d`:
		for _, name := range db.Engine().Catalog().TableNames() {
			t, _ := db.Engine().Catalog().Table(name)
			fmt.Printf("%s (%d rows): %s\n", t.Name, t.NumRows(), t.Schema)
		}
	case strings.HasPrefix(cmd, `\explain `):
		p, err := db.Explain(strings.TrimSuffix(strings.TrimPrefix(cmd, `\explain `), ";"))
		if err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Print(p)
		}
	default:
		fmt.Println(`meta commands: \d (tables), \explain <select>, \q (quit)`)
	}
	return false
}
