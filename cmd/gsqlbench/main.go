// Command gsqlbench is a self-contained load generator and smoke
// checker for a running gsqld: it loads the differential corpus into a
// graph, measures cached-vs-uncached replay throughput, checks that
// statement fingerprinting unifies a literal query with its
// parameterized twin in the result cache, hammers the server with
// concurrent clients running a mix of repeated (cache-hitting) and
// literal-variant (fingerprint-sharing) queries, disconnects one
// client mid-flight, and finally scrapes GET /metrics to assert the
// server behaved: result-cache AND plan-cache hits happened, the
// abandoned query was observed, and not a single 5xx was returned.
//
//	$ gsqld -addr 127.0.0.1:8726 &
//	$ gsqlbench -addr 127.0.0.1:8726 -clients 8 -rounds 4
//
// Exit status 0 means every assertion held; 1 means the report shows
// which one failed. The CI `load` job gates on it.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"graphsql/internal/testutil"
	"graphsql/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8765", "gsqld address (host:port)")
	graph := flag.String("graph", "bench", "graph name to load and query")
	clients := flag.Int("clients", 8, "concurrent clients in the load phase")
	rounds := flag.Int("rounds", 4, "corpus replays per client")
	replays := flag.Int("replays", 3, "cached replays in the speedup measurement")
	minSpeedup := flag.Float64("min-speedup", 1.5, "required cached-vs-uncached replay speedup")
	disconnect := flag.Bool("disconnect", true, "disconnect one client mid-query")
	chaos := flag.Bool("chaos", false,
		"chaos mode: the server runs with fault injection armed — tolerate structured errors, skip the speedup and disconnect phases, assert the process keeps serving")
	flag.Parse()

	base := *addr
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}
	b := &bench{base: base, graph: *graph}

	if err := b.waitHealthy(30 * time.Second); err != nil {
		fatal("server not healthy: %v", err)
	}
	if err := b.loadCorpus(); err != nil {
		fatal("load: %v", err)
	}

	b.chaos = *chaos

	var speedup float64
	if *chaos {
		// Fault-injected latency and shed queries make timing meaningless,
		// and a deliberate mid-flight disconnect would be indistinguishable
		// from a fault — both phases are chaos-mode no-ops.
		fmt.Println("chaos mode: speedup and disconnect phases skipped")
	} else {
		var cold, warm time.Duration
		var err error
		speedup, cold, warm, err = b.measureCacheSpeedup(*replays)
		if err != nil {
			fatal("speedup measurement: %v", err)
		}
		fmt.Printf("corpus replay: uncached %v, cached avg %v -> speedup %.1fx\n", cold, warm, speedup)
		if err := b.fingerprintPhase(); err != nil {
			fatal("fingerprint phase: %v", err)
		}
		fmt.Println("fingerprint phase: parameterized twin served from the literal query's cache entry")
	}

	if err := b.concurrentLoad(*clients, *rounds); err != nil {
		fatal("load phase: %v", err)
	}
	fmt.Printf("load phase: %d clients x %d rounds, %d requests, 5xx: %d, structured errors: %d, overload retries: %d\n",
		*clients, *rounds, b.requests.n(), b.server5xx.n(), b.structured.n(), b.retries.n())

	if *disconnect && !*chaos {
		if err := b.disconnectMidFlight(); err != nil {
			fatal("disconnect phase: %v", err)
		}
		fmt.Println("disconnect phase: mid-flight abandon observed by the server")
	}

	mf, err := b.scrapeMetrics()
	if err != nil {
		fatal("metrics scrape: %v", err)
	}

	failed := false
	check := func(ok bool, format string, args ...any) {
		status := "ok  "
		if !ok {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s  %s\n", status, fmt.Sprintf(format, args...))
	}
	if *chaos {
		// Under injected faults the contract shrinks to containment: the
		// process keeps serving (healthz still answers 200) and not one
		// response was unstructured — errors arrived as typed payloads or
		// stream error trailers, never as torn streams or blank 500s.
		check(b.waitHealthy(5*time.Second) == nil, "healthz answers 200 after the chaos run")
		check(b.unstructured.n() == 0, "unstructured responses = %d", b.unstructured.n())
		fmt.Printf("chaos run: gsqld_panics_total = %g\n", mf.value("gsqld_panics_total"))
	} else {
		check(speedup >= *minSpeedup, "cached replay speedup %.1fx >= %.1fx", speedup, *minSpeedup)
		check(mf.value("gsqld_cache_hits_total") > 0, "gsqld_cache_hits_total = %g > 0", mf.value("gsqld_cache_hits_total"))
		check(mf.value("gsqld_plan_cache_hits_total") > 0, "gsqld_plan_cache_hits_total = %g > 0", mf.value("gsqld_plan_cache_hits_total"))
		check(mf.value("gsqld_queries_abandoned_total") >= 1 || !*disconnect,
			"gsqld_queries_abandoned_total = %g >= 1", mf.value("gsqld_queries_abandoned_total"))
		check(b.server5xx.n() == 0, "client-observed 5xx responses = %d", b.server5xx.n())
		check(mf.responses5xx() == 0, "server-reported 5xx responses = %g", mf.responses5xx())
	}
	if failed {
		os.Exit(1)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gsqlbench: "+format+"\n", args...)
	os.Exit(1)
}

// counter is a tiny thread-safe counter.
type counter struct {
	mu sync.Mutex
	v  int
}

func (c *counter) add() { c.mu.Lock(); c.v++; c.mu.Unlock() }
func (c *counter) n() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

type bench struct {
	base  string
	graph string
	chaos bool

	requests     counter
	server5xx    counter
	structured   counter // non-200s carrying a typed error payload
	unstructured counter // non-200s (or torn streams) without one
	retries      counter // overload retries taken by queryRetry
}

func (b *bench) waitHealthy(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(b.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return err
			}
			return fmt.Errorf("healthz keeps failing")
		}
		time.Sleep(200 * time.Millisecond)
	}
}

func (b *bench) loadCorpus() error {
	payload, _ := json.Marshal(&wire.LoadRequest{Script: testutil.SetupScript()})
	resp, err := http.Post(b.base+"/graphs/"+b.graph+"/load", "application/json", bytes.NewReader(payload))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	return nil
}

// queryResult classifies one response beyond the bare status code:
// overload responses carry the server's Retry-After hint, failures are
// split into structured (typed error payload or stream error trailer)
// and unstructured, and a 200 stream that cannot be folded back counts
// as torn.
type queryResult struct {
	status     int
	retryAfter time.Duration
	structured bool // error arrived as a typed payload / error trailer
	streamErr  bool // 200 stream ended in an error trailer
	torn       bool // 200 stream without a valid trailer
}

// failed reports whether the response was anything but a clean success.
func (q queryResult) failed() bool {
	return q.status != http.StatusOK || q.streamErr || q.torn
}

// query posts one statement and classifies the response. Request
// errors return status 0.
func (b *bench) query(ctx context.Context, req *wire.QueryRequest) (queryResult, error) {
	req.Graph = b.graph
	payload, err := json.Marshal(req)
	if err != nil {
		return queryResult{}, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, b.base+"/query", bytes.NewReader(payload))
	if err != nil {
		return queryResult{}, err
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		return queryResult{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return queryResult{}, err
	}
	b.requests.add()
	qr := queryResult{status: resp.StatusCode}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		qr.retryAfter = time.Duration(secs) * time.Second
	}
	if resp.StatusCode >= 500 {
		b.server5xx.add()
	}
	switch {
	case resp.StatusCode != http.StatusOK:
		var wr wire.QueryResponse
		qr.structured = json.Unmarshal(body, &wr) == nil && wr.Error != nil
	case req.Stream && strings.HasPrefix(resp.Header.Get("Content-Type"), wire.StreamContentType):
		folded, _, ferr := wire.FoldStream(bytes.NewReader(body))
		switch {
		case ferr != nil:
			qr.torn = true
		case folded.Error != nil:
			qr.streamErr, qr.structured = true, true
		}
	}
	return qr, nil
}

// queryRetry posts with jittered exponential backoff on overload
// responses (429 and 503): the wait starts at the server's Retry-After
// hint when one is present (queue_full and queue_timeout always carry
// it) or the current backoff step otherwise, and sleeps a uniform
// random fraction in [wait/2, wait] so synchronized clients do not
// re-arrive as a wave.
func (b *bench) queryRetry(ctx context.Context, req *wire.QueryRequest) (queryResult, error) {
	const maxAttempts = 5
	backoff := 100 * time.Millisecond
	for attempt := 0; ; attempt++ {
		qr, err := b.query(ctx, req)
		overloaded := err == nil &&
			(qr.status == http.StatusTooManyRequests || qr.status == http.StatusServiceUnavailable)
		if !overloaded || attempt == maxAttempts {
			return qr, err
		}
		wait := backoff
		if qr.retryAfter > wait {
			wait = qr.retryAfter
		}
		b.retries.add()
		jittered := wait/2 + time.Duration(rand.Int63n(int64(wait/2)+1))
		select {
		case <-time.After(jittered):
		case <-ctx.Done():
			return qr, ctx.Err()
		}
		backoff *= 2
	}
}

// measureCacheSpeedup replays the corpus once cold (every SELECT a
// cache miss) and `replays` times warm, returning cold / avg(warm).
// The corpus must not have been queried on this graph before.
func (b *bench) measureCacheSpeedup(replays int) (speedup float64, cold, warmAvg time.Duration, err error) {
	queries := testutil.Queries()
	replay := func() (time.Duration, error) {
		start := time.Now()
		for _, q := range queries {
			qr, err := b.queryRetry(context.Background(), &wire.QueryRequest{SQL: q})
			if err != nil {
				return 0, err
			}
			if qr.status != http.StatusOK {
				return 0, fmt.Errorf("query status %d: %s", qr.status, q)
			}
		}
		return time.Since(start), nil
	}
	cold, err = replay()
	if err != nil {
		return 0, 0, 0, err
	}
	var warmTotal time.Duration
	for i := 0; i < replays; i++ {
		w, err := replay()
		if err != nil {
			return 0, 0, 0, err
		}
		warmTotal += w
	}
	warmAvg = warmTotal / time.Duration(replays)
	if warmAvg <= 0 {
		warmAvg = time.Nanosecond
	}
	return float64(cold) / float64(warmAvg), cold, warmAvg, nil
}

// fingerprintPhase checks statement fingerprinting end to end through
// the wire: a literal point query fills a cache entry, and its
// parameterized twin carrying the same value must be served from that
// very entry (hit-counter delta >= 1). Before fingerprinting the two
// spellings computed different keys and the twin was always a miss.
// The values sit outside every other phase's domain so no earlier fill
// can fake the hit.
func (b *bench) fingerprintPhase() error {
	before, err := b.scrapeMetrics()
	if err != nil {
		return err
	}
	run := func(req *wire.QueryRequest) error {
		qr, err := b.queryRetry(context.Background(), req)
		if err != nil {
			return err
		}
		if qr.status != http.StatusOK {
			return fmt.Errorf("status %d on %s", qr.status, req.SQL)
		}
		return nil
	}
	if err := run(&wire.QueryRequest{SQL: `SELECT COUNT(*) FROM knows WHERE src >= 770001 AND dst >= 3`}); err != nil {
		return err
	}
	if err := run(&wire.QueryRequest{
		SQL:  `SELECT COUNT(*) FROM knows WHERE src >= ? AND dst >= ?`,
		Args: []any{770001, 3},
	}); err != nil {
		return err
	}
	after, err := b.scrapeMetrics()
	if err != nil {
		return err
	}
	delta := after.value("gsqld_cache_hits_total") - before.value("gsqld_cache_hits_total")
	if delta < 1 {
		return fmt.Errorf("parameterized twin missed the literal query's cache entry (hit delta %g)", delta)
	}
	return nil
}

// concurrentLoad runs the mixed corpus: every client interleaves
// repeated corpus queries (cache hits after the first round) with
// literal variants of one statement shape whose values come from a
// modest shared domain — fingerprinting folds every variant onto one
// session plan (plan-cache hits) while value collisions across clients
// and rounds produce result-cache hits literal spellings never got
// before — half of them through a session so prepared plans engage,
// plus streamed replays. In chaos mode a failed response is tolerated
// — but only a structured one; a torn stream or a blank 500 fails the
// run even there.
func (b *bench) concurrentLoad(clients, rounds int) error {
	queries := testutil.Queries()
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	exec := func(c int, req *wire.QueryRequest) error {
		qr, err := b.queryRetry(context.Background(), req)
		if err != nil {
			return fmt.Errorf("client %d: transport: %w", c, err)
		}
		if !qr.failed() {
			return nil
		}
		if b.chaos && qr.structured {
			b.structured.add()
			return nil
		}
		b.unstructured.add()
		return fmt.Errorf("client %d: status %d (structured=%v torn=%v) on %s",
			c, qr.status, qr.structured, qr.torn, req.SQL)
	}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			session := ""
			if c%2 == 0 {
				session = fmt.Sprintf("bench-%d", c)
			}
			for r := 0; r < rounds; r++ {
				for i, q := range queries {
					req := &wire.QueryRequest{SQL: q, Session: session}
					if (i+r)%5 == 0 {
						req.Stream = true
					}
					if err := exec(c, req); err != nil {
						errs <- err
						return
					}
					// A literal variant of one point-lookup shape: the small
					// value domain makes clients and rounds collide (result-
					// cache hits), and every variant shares the session's
					// fingerprinted plan whatever its values.
					if err := exec(c, &wire.QueryRequest{
						SQL: fmt.Sprintf(`SELECT COUNT(*) FROM knows WHERE src >= %d AND dst >= %d`,
							(c*31+r*7+i)%40, i%8),
						Session: session,
					}); err != nil {
						errs <- err
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	return nil
}

// disconnectMidFlight issues the corpus's heaviest query and cancels
// the request partway through, retrying until the server's abandoned
// counter moves (the query may finish before the cancel on a fast
// host, so the delay shrinks every attempt).
func (b *bench) disconnectMidFlight() error {
	// The ? keeps every attempt's cache key distinct — a repeated
	// statement would be served from the result cache instantly and
	// could never be caught mid-flight.
	const heavy = `SELECT p1.id, p2.id, CHEAPEST SUM(1) FROM people p1, people p2
	               WHERE p1.id >= ? AND p1.id REACHES p2.id OVER knows EDGE (src, dst)`
	// Reference timing for the cancel delay.
	start := time.Now()
	if qr, err := b.query(context.Background(), &wire.QueryRequest{SQL: heavy, Args: []any{-1}}); err != nil || qr.status != http.StatusOK {
		return fmt.Errorf("reference heavy query: status %d err %v", qr.status, err)
	}
	full := time.Since(start)

	delay := full / 4
	for attempt := 0; attempt < 8; attempt++ {
		before, err := b.abandoned()
		if err != nil {
			return err
		}
		ctx, cancel := context.WithTimeout(context.Background(), delay)
		qr, _ := b.query(ctx, &wire.QueryRequest{SQL: heavy, Args: []any{attempt}})
		cancel()
		if qr.status == 0 { // request aborted client-side: the disconnect happened
			// Give the server a moment to observe it and free the slot.
			deadline := time.Now().Add(5 * time.Second)
			for time.Now().Before(deadline) {
				after, err := b.abandoned()
				if err != nil {
					return err
				}
				if after > before {
					return nil
				}
				time.Sleep(50 * time.Millisecond)
			}
		}
		// Finished before the deadline; try again with a shorter leash.
		delay /= 2
		if delay < time.Millisecond {
			delay = time.Millisecond
		}
	}
	return fmt.Errorf("could not catch a query mid-flight (host too fast for the corpus)")
}

func (b *bench) abandoned() (float64, error) {
	mf, err := b.scrapeMetrics()
	if err != nil {
		return 0, err
	}
	return mf.value("gsqld_queries_abandoned_total"), nil
}

// metricsFamily is a flat view over one /metrics scrape.
type metricsFamily map[string]float64

// value returns a label-less series value (0 when absent).
func (mf metricsFamily) value(name string) float64 { return mf[name] }

// responses5xx sums gsqld_http_responses_total over 5xx codes.
func (mf metricsFamily) responses5xx() float64 {
	total := 0.0
	for series, v := range mf {
		if strings.HasPrefix(series, `gsqld_http_responses_total{`) && strings.Contains(series, `code="5`) {
			total += v
		}
	}
	return total
}

func (b *bench) scrapeMetrics() (metricsFamily, error) {
	resp, err := http.Get(b.base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics status %d", resp.StatusCode)
	}
	mf := metricsFamily{}
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue
		}
		mf[line[:sp]] = v
	}
	return mf, nil
}
