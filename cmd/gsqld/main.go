// Command gsqld serves the graphsql engine over HTTP as a long-running
// query service: a named multi-graph registry with copy-on-swap
// reloads, per-session prepared plans and settings (plus wire-level
// POST /prepare + /execute), an admission-control scheduler that
// divides the machine's worker budget across concurrent queries, a
// result-set cache serving repeated SELECTs without engine work,
// chunked streaming responses for large results ("stream": true), and
// Prometheus metrics at GET /metrics.
//
//	$ gsqld -addr :8765 -load social.sql
//	$ curl -s localhost:8765/healthz
//	$ curl -s -X POST localhost:8765/query \
//	    -d '{"sql": "SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER knows EDGE (src, dst)", "args": [1, 42]}'
//	$ curl -s -X POST localhost:8765/query -d '{"sql": "SELECT * FROM knows", "stream": true}'
//	$ curl -s localhost:8765/metrics | grep gsqld_cache
//
// Disconnecting a client (or a -timeout / timeout_ms expiry) cancels
// the query's context; cancellation reaches inside a single running
// traversal (per-level in the frontier-parallel BFS, every few
// thousand pops in BFS/Dijkstra), so an abandoned query frees its
// worker grant within milliseconds — see the README's "Cancellation
// granularity". A request canceled while queued for admission never
// consumes a slot.
//
// See the README's "Running as a server" section for the full API.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // profiling endpoints, served only on -debug-addr
	"os"
	"os/signal"
	"syscall"
	"time"

	"graphsql/internal/fault"
	"graphsql/internal/server"
)

func main() {
	addr := flag.String("addr", ":8765", "listen address")
	graphName := flag.String("graph", "default", "name of the default graph")
	load := flag.String("load", "", "SQL script file loaded into the default graph at startup")
	parallelism := flag.Int("parallelism", 0, "engine worker budget per graph (0 = one per CPU)")
	maxInFlight := flag.Int("max-inflight", 0, "max concurrently executing queries (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue-depth", 0, "max queries waiting for admission (0 = 4x max-inflight)")
	totalWorkers := flag.Int("workers", 0, "total worker budget divided across queries (0 = GOMAXPROCS)")
	perQuery := flag.Int("per-query-workers", 0, "per-query worker cap (0 = total budget)")
	timeout := flag.Duration("timeout", 0, "per-query execution timeout (0 = none)")
	queueWait := flag.Duration("queue-wait", 0, "max time a query may wait for admission before a 503 queue_timeout with Retry-After (0 = wait forever)")
	cacheEntries := flag.Int("cache-entries", 0, "result-cache entry cap (0 = 512, negative disables the cache)")
	cacheBytes := flag.Int64("cache-bytes", 0, "result-cache byte budget (0 = 64 MiB)")
	slowQueryMS := flag.Int("slow-query-ms", 0, "log queries at/over this many milliseconds at WARN as a structured \"slow query\" line (0 disables, negative logs every query)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof profiling endpoints on this address (empty disables; never expose publicly)")
	flag.Parse()

	if fault.Enabled() {
		log.Printf("gsqld: FAULT INJECTION ARMED via GSQLD_FAULTS=%q — not for production", os.Getenv("GSQLD_FAULTS"))
	}

	// The query log is machine-parsed (msg="slow query" key=value
	// lines), so it gets a real TextHandler rather than slog's
	// log-package bridge.
	queryLog := slog.New(slog.NewTextHandler(os.Stderr, nil))

	srv, err := server.New(server.Config{
		DefaultGraph:    *graphName,
		Parallelism:     *parallelism,
		MaxInFlight:     *maxInFlight,
		QueueDepth:      *queueDepth,
		TotalWorkers:    *totalWorkers,
		PerQueryWorkers: *perQuery,
		QueryTimeout:    *timeout,
		QueueWait:       *queueWait,
		CacheEntries:    *cacheEntries,
		CacheBytes:      *cacheBytes,
		SlowQueryMillis: *slowQueryMS,
		Logger:          queryLog,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *load != "" {
		script, err := os.ReadFile(*load)
		if err != nil {
			log.Fatal(err)
		}
		gen, tables, err := srv.Registry().Load(*graphName, string(script), nil)
		if err != nil {
			log.Fatalf("loading %s: %v", *load, err)
		}
		log.Printf("graph %q loaded from %s: %d table(s), generation %d", *graphName, *load, tables, gen)
	}

	if *debugAddr != "" {
		// pprof registers on http.DefaultServeMux at import; serving the
		// default mux on a separate listener keeps profiling off the
		// query port.
		//gsqlvet:allow parbudget process-lifetime debug listener, not per-query work
		go func() {
			log.Printf("pprof profiling on %s/debug/pprof/", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	done := make(chan error, 1)
	//gsqlvet:allow parbudget HTTP accept loop; per-query concurrency is budgeted at admission
	go func() { done <- hs.ListenAndServe() }()
	log.Printf("gsqld listening on %s (default graph %q)", *addr, *graphName)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case s := <-sig:
		log.Printf("received %v, draining", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}
}
