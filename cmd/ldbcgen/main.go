// Command ldbcgen materializes the synthetic LDBC-SNB-like dataset to
// CSV files (persons.csv, friends.csv), for inspection or for loading
// into other systems:
//
//	go run ./cmd/ldbcgen -sf 1 -shrink 10 -out /tmp/snb
package main

import (
	"bufio"
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"graphsql/internal/ldbc"
	"graphsql/internal/types"
)

func main() {
	sf := flag.Int("sf", 1, "scale factor (1, 3, 10, 30, 100, 300)")
	shrink := flag.Int("shrink", 1, "divide sizes by this factor")
	seed := flag.Uint64("seed", 42, "generator seed")
	out := flag.String("out", ".", "output directory")
	flag.Parse()

	ds, err := ldbc.Generate(ldbc.Config{SF: *sf, Shrink: *shrink, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := writePersons(filepath.Join(*out, "persons.csv"), ds); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := writeFriends(filepath.Join(*out, "friends.csv"), ds); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("SF %d (shrink %d): %d persons, %d directed edges written to %s\n",
		*sf, *shrink, ds.NumVertices(), ds.NumEdges(), *out)
}

func writePersons(path string, ds *ldbc.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriter(f)
	w := csv.NewWriter(bw)
	if err := w.Write([]string{"id", "firstName", "lastName"}); err != nil {
		return err
	}
	for i := range ds.PersonIDs {
		rec := []string{strconv.FormatInt(ds.PersonIDs[i], 10), ds.FirstNames[i], ds.LastNames[i]}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

func writeFriends(path string, ds *ldbc.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriter(f)
	w := csv.NewWriter(bw)
	if err := w.Write([]string{"src", "dst", "creationDate", "weight", "iweight"}); err != nil {
		return err
	}
	for i := range ds.Src {
		rec := []string{
			strconv.FormatInt(ds.Src[i], 10),
			strconv.FormatInt(ds.Dst[i], 10),
			types.FormatDate(ds.CreationDays[i]),
			strconv.FormatFloat(ds.Weight[i], 'f', 4, 64),
			strconv.FormatInt(ds.IWeight[i], 10),
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	return bw.Flush()
}
