// Command benchdiff compares -exp parallel / -exp execpar / -exp
// bfspar JSON artifacts against a committed baseline
// (bench_baseline.json) and fails when a configuration's self-relative
// speedup regressed by more than the threshold. Speedups — not
// absolute seconds — are compared, so the check is meaningful across
// hosts of the same shape; points whose baseline carries no parallel
// signal (speedup ≤ the signal floor, e.g. a single-core recording
// host) are skipped and reported.
//
//	go run ./cmd/benchdiff -baseline bench_baseline.json \
//	    -parallel parallel.json -execpar execpar.json -bfspar bfspar.json
//
// Record a fresh baseline with -record:
//
//	go run ./cmd/benchdiff -record -baseline bench_baseline.json \
//	    -parallel parallel.json -execpar execpar.json -bfspar bfspar.json
//
// Exit codes: 0 ok, 1 regression, 2 nothing compared (every point was
// skipped — the gate is unarmed, typically a baseline recorded on a
// host without parallel signal; re-record on the CI host class, or
// pass -allow-empty to accept an unarmed gate explicitly).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"graphsql/internal/bench"
)

// Baseline is the committed perf-trajectory reference: the bench
// artifacts plus a note about the host that recorded them.
type Baseline struct {
	Host     string                `json:"host"`
	Parallel []bench.ParallelPoint `json:"parallel"`
	ExecPar  []bench.ExecParPoint  `json:"execpar"`
	BfsPar   []bench.BfsParPoint   `json:"bfspar,omitempty"`
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

func main() {
	baselinePath := flag.String("baseline", "bench_baseline.json", "baseline file")
	parallelPath := flag.String("parallel", "", "-exp parallel artifact")
	execparPath := flag.String("execpar", "", "-exp execpar artifact")
	bfsparPath := flag.String("bfspar", "", "-exp bfspar artifact")
	threshold := flag.Float64("max-regression", 0.25, "fail when speedup drops by more than this fraction")
	signalFloor := flag.Float64("signal-floor", 1.05, "skip baseline points whose speedup is below this (no parallel signal)")
	minSeconds := flag.Float64("min-seconds", 0.002, "skip points faster than this (scheduler noise)")
	record := flag.Bool("record", false, "write the artifacts as the new baseline instead of comparing")
	host := flag.String("host", "", "host label stored with -record")
	allowEmpty := flag.Bool("allow-empty", false, "exit 0 even when every point was skipped (gate unarmed)")
	flag.Parse()

	var cur Baseline
	if *parallelPath != "" {
		if err := readJSON(*parallelPath, &cur.Parallel); err != nil {
			fatal(err)
		}
	}
	if *execparPath != "" {
		if err := readJSON(*execparPath, &cur.ExecPar); err != nil {
			fatal(err)
		}
	}
	if *bfsparPath != "" {
		if err := readJSON(*bfsparPath, &cur.BfsPar); err != nil {
			fatal(err)
		}
	}

	if *record {
		cur.Host = *host
		data, err := json.MarshalIndent(&cur, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*baselinePath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("baseline recorded to %s (%d parallel, %d execpar, %d bfspar points)\n",
			*baselinePath, len(cur.Parallel), len(cur.ExecPar), len(cur.BfsPar))
		return
	}

	var base Baseline
	if err := readJSON(*baselinePath, &base); err != nil {
		fatal(err)
	}

	type point struct {
		speedup float64
		seconds float64
	}
	basePar := map[string]point{}
	for _, p := range base.Parallel {
		basePar[fmt.Sprintf("sf%d/batch%d/w%d", p.SF, p.Batch, p.Workers)] = point{p.Speedup, p.QuerySeconds}
	}
	baseExec := map[string]point{}
	for _, p := range base.ExecPar {
		baseExec[fmt.Sprintf("%s/sf%d/w%d", p.Workload, p.SF, p.Workers)] = point{p.Speedup, p.Seconds}
	}
	baseBfs := map[string]point{}
	for _, p := range base.BfsPar {
		baseBfs[fmt.Sprintf("bfspar/sf%d/w%d", p.SF, p.Workers)] = point{p.Speedup, p.TraversalSeconds}
	}

	compared, skipped, failures := 0, 0, 0
	check := func(key string, b point, speedup, seconds float64) {
		if b.speedup < *signalFloor || b.seconds < *minSeconds || seconds < *minSeconds {
			skipped++
			return
		}
		compared++
		drop := 1 - speedup/b.speedup
		status := "ok"
		if drop > *threshold {
			failures++
			status = "REGRESSION"
		}
		fmt.Printf("%-40s baseline %6.3fx  now %6.3fx  drop %+6.1f%%  %s\n",
			key, b.speedup, speedup, drop*100, status)
	}
	for _, p := range cur.Parallel {
		key := fmt.Sprintf("sf%d/batch%d/w%d", p.SF, p.Batch, p.Workers)
		if b, ok := basePar[key]; ok {
			check(key, b, p.Speedup, p.QuerySeconds)
		} else {
			skipped++
		}
	}
	for _, p := range cur.ExecPar {
		key := fmt.Sprintf("%s/sf%d/w%d", p.Workload, p.SF, p.Workers)
		if b, ok := baseExec[key]; ok {
			check(key, b, p.Speedup, p.Seconds)
		} else {
			skipped++
		}
	}
	for _, p := range cur.BfsPar {
		key := fmt.Sprintf("bfspar/sf%d/w%d", p.SF, p.Workers)
		if b, ok := baseBfs[key]; ok {
			check(key, b, p.Speedup, p.TraversalSeconds)
		} else {
			skipped++
		}
	}
	fmt.Printf("\nbenchdiff: %d compared, %d skipped (no baseline match or below signal/noise floors), %d regression(s)\n",
		compared, skipped, failures)
	if base.Host != "" {
		fmt.Printf("baseline host: %s\n", base.Host)
	}
	if failures > 0 {
		os.Exit(1)
	}
	if compared == 0 && skipped > 0 && !*allowEmpty {
		fmt.Println("benchdiff: UNARMED — every point was skipped, so this run gated nothing.")
		fmt.Println("The committed baseline has no parallel signal (or does not match the run shapes).")
		fmt.Println("Re-record it on the CI host class:")
		fmt.Println("  go run ./cmd/benchdiff -record -baseline bench_baseline.json \\")
		fmt.Println("      -parallel parallel.json -execpar execpar.json -bfspar bfspar.json -host \"$(nproc)-core ci\"")
		fmt.Println("then commit the file; or pass -allow-empty to accept an unarmed gate explicitly.")
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
