// Command benchdiff compares -exp parallel / -exp execpar / -exp
// bfspar / -exp parse / -exp trace / -exp execstream JSON artifacts
// against a committed baseline (bench_baseline.json) and fails when a
// configuration regressed. Parallel-family points compare self-relative speedups —
// not absolute seconds — so the check is meaningful across hosts of
// the same shape; points whose baseline carries no parallel signal
// (speedup ≤ the signal floor, e.g. a single-core recording host) are
// skipped and reported. Parse points compare allocs/op, which is a
// deterministic property of the code rather than the host, so they arm
// the gate on ANY machine — including hosts whose parallel points all
// skip — and the tokenize stage is additionally held to a hard
// zero-allocation invariant that needs no baseline at all. Trace
// points compare the traced/untraced overhead ratio, which is likewise
// host-comparable because both sides of the ratio run on the same
// machine seconds apart.
//
//	go run ./cmd/benchdiff -baseline bench_baseline.json \
//	    -parallel parallel.json -execpar execpar.json -bfspar bfspar.json \
//	    -parse parse.json -trace trace.json
//
// Record a fresh baseline with -record:
//
//	go run ./cmd/benchdiff -record -baseline bench_baseline.json \
//	    -parallel parallel.json -execpar execpar.json -bfspar bfspar.json \
//	    -parse parse.json -trace trace.json
//
// Exit codes: 0 ok, 1 regression, 2 nothing compared (every point was
// skipped — the gate is unarmed, typically a baseline recorded on a
// host without parallel signal AND a run without parse points;
// re-record on the CI host class, or pass -allow-empty to accept an
// unarmed gate explicitly).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"graphsql/internal/bench"
)

// Baseline is the committed perf-trajectory reference: the bench
// artifacts plus a note about the host that recorded them.
type Baseline struct {
	Host     string                `json:"host"`
	Parallel []bench.ParallelPoint `json:"parallel"`
	ExecPar  []bench.ExecParPoint  `json:"execpar"`
	BfsPar   []bench.BfsParPoint   `json:"bfspar,omitempty"`
	Parse    []bench.ParsePoint    `json:"parse,omitempty"`
	Trace    []bench.TracePoint    `json:"trace,omitempty"`
	// ExecStream points gate on the pull executor's time-to-first-row
	// speedup over the materializing executor — a same-host ratio, like
	// the trace overhead points. Points without TTFR signal in the
	// baseline (breakers: ratio near 1) are skipped by the signal floor.
	ExecStream []bench.ExecStreamPoint `json:"execstream,omitempty"`
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

func main() {
	baselinePath := flag.String("baseline", "bench_baseline.json", "baseline file")
	parallelPath := flag.String("parallel", "", "-exp parallel artifact")
	execparPath := flag.String("execpar", "", "-exp execpar artifact")
	bfsparPath := flag.String("bfspar", "", "-exp bfspar artifact")
	parsePath := flag.String("parse", "", "-exp parse artifact")
	tracePath := flag.String("trace", "", "-exp trace artifact")
	execstreamPath := flag.String("execstream", "", "-exp execstream artifact")
	allocSlack := flag.Float64("max-alloc-growth", 0.5, "fail when a parse stage's allocs/op exceeds baseline by more than this absolute slack")
	traceSlack := flag.Float64("max-trace-overhead-growth", 0.15, "fail when a workload's traced/untraced overhead ratio exceeds baseline by more than this absolute slack")
	threshold := flag.Float64("max-regression", 0.25, "fail when speedup drops by more than this fraction")
	signalFloor := flag.Float64("signal-floor", 1.05, "skip baseline points whose speedup is below this (no parallel signal)")
	minSeconds := flag.Float64("min-seconds", 0.002, "skip points faster than this (scheduler noise)")
	minTTFR := flag.Float64("min-ttfr-seconds", 0.0001, "skip execstream points whose materialize time-to-first-row is faster than this (timer noise)")
	record := flag.Bool("record", false, "write the artifacts as the new baseline instead of comparing")
	host := flag.String("host", "", "host label stored with -record")
	allowEmpty := flag.Bool("allow-empty", false, "exit 0 even when every point was skipped (gate unarmed)")
	flag.Parse()

	var cur Baseline
	if *parallelPath != "" {
		if err := readJSON(*parallelPath, &cur.Parallel); err != nil {
			fatal(err)
		}
	}
	if *execparPath != "" {
		if err := readJSON(*execparPath, &cur.ExecPar); err != nil {
			fatal(err)
		}
	}
	if *bfsparPath != "" {
		if err := readJSON(*bfsparPath, &cur.BfsPar); err != nil {
			fatal(err)
		}
	}
	if *parsePath != "" {
		if err := readJSON(*parsePath, &cur.Parse); err != nil {
			fatal(err)
		}
	}
	if *tracePath != "" {
		if err := readJSON(*tracePath, &cur.Trace); err != nil {
			fatal(err)
		}
	}
	if *execstreamPath != "" {
		if err := readJSON(*execstreamPath, &cur.ExecStream); err != nil {
			fatal(err)
		}
	}

	if *record {
		cur.Host = *host
		data, err := json.MarshalIndent(&cur, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*baselinePath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("baseline recorded to %s (%d parallel, %d execpar, %d bfspar, %d parse, %d trace, %d execstream points)\n",
			*baselinePath, len(cur.Parallel), len(cur.ExecPar), len(cur.BfsPar), len(cur.Parse), len(cur.Trace), len(cur.ExecStream))
		return
	}

	var base Baseline
	if err := readJSON(*baselinePath, &base); err != nil {
		fatal(err)
	}

	type point struct {
		speedup float64
		seconds float64
	}
	basePar := map[string]point{}
	for _, p := range base.Parallel {
		basePar[fmt.Sprintf("sf%d/batch%d/w%d", p.SF, p.Batch, p.Workers)] = point{p.Speedup, p.QuerySeconds}
	}
	baseExec := map[string]point{}
	for _, p := range base.ExecPar {
		baseExec[fmt.Sprintf("%s/sf%d/w%d", p.Workload, p.SF, p.Workers)] = point{p.Speedup, p.Seconds}
	}
	baseBfs := map[string]point{}
	for _, p := range base.BfsPar {
		baseBfs[fmt.Sprintf("bfspar/sf%d/w%d", p.SF, p.Workers)] = point{p.Speedup, p.TraversalSeconds}
	}
	baseStream := map[string]point{}
	for _, p := range base.ExecStream {
		baseStream[fmt.Sprintf("execstream/%s/sf%d", p.Workload, p.SF)] = point{p.TTFRSpeedup, p.MaterializeTTFRNs / 1e9}
	}

	compared, skipped, failures := 0, 0, 0
	check := func(key string, b point, speedup, seconds float64) {
		if b.speedup < *signalFloor || b.seconds < *minSeconds || seconds < *minSeconds {
			skipped++
			return
		}
		compared++
		drop := 1 - speedup/b.speedup
		status := "ok"
		if drop > *threshold {
			failures++
			status = "REGRESSION"
		}
		fmt.Printf("%-40s baseline %6.3fx  now %6.3fx  drop %+6.1f%%  %s\n",
			key, b.speedup, speedup, drop*100, status)
	}
	for _, p := range cur.Parallel {
		key := fmt.Sprintf("sf%d/batch%d/w%d", p.SF, p.Batch, p.Workers)
		if b, ok := basePar[key]; ok {
			check(key, b, p.Speedup, p.QuerySeconds)
		} else {
			skipped++
		}
	}
	for _, p := range cur.ExecPar {
		key := fmt.Sprintf("%s/sf%d/w%d", p.Workload, p.SF, p.Workers)
		if b, ok := baseExec[key]; ok {
			check(key, b, p.Speedup, p.Seconds)
		} else {
			skipped++
		}
	}
	for _, p := range cur.BfsPar {
		key := fmt.Sprintf("bfspar/sf%d/w%d", p.SF, p.Workers)
		if b, ok := baseBfs[key]; ok {
			check(key, b, p.Speedup, p.TraversalSeconds)
		} else {
			skipped++
		}
	}
	// ExecStream points gate on the TTFR speedup ratio (materialize
	// TTFR / pull TTFR): both sides run on the same machine seconds
	// apart, so the ratio travels across hosts like the trace points.
	// They carry their own noise floor — the materialize TTFR, in the
	// hundreds of microseconds even at smoke shapes, is far below the
	// whole-drain -min-seconds floor but still stable as a best-of-N
	// ratio. Points without pull advantage in the baseline (pure scans,
	// breakers: ratio under the signal floor) are skipped by design.
	for _, p := range cur.ExecStream {
		key := fmt.Sprintf("execstream/%s/sf%d", p.Workload, p.SF)
		b, ok := baseStream[key]
		if !ok {
			skipped++
			continue
		}
		if b.speedup < *signalFloor || b.seconds < *minTTFR || p.MaterializeTTFRNs/1e9 < *minTTFR {
			skipped++
			continue
		}
		compared++
		drop := 1 - p.TTFRSpeedup/b.speedup
		status := "ok"
		if drop > *threshold {
			failures++
			status = "REGRESSION"
		}
		fmt.Printf("%-40s baseline %6.3fx  now %6.3fx  drop %+6.1f%%  %s\n",
			key, b.speedup, p.TTFRSpeedup, drop*100, status)
	}
	// Parse points gate on allocs/op — deterministic per build, so no
	// signal or noise floor applies and they count as compared on any
	// host. The tokenize stage carries a hard invariant (0 allocs/op)
	// that holds even without a baseline entry.
	baseParse := map[string]float64{}
	for _, p := range base.Parse {
		baseParse[p.Stage] = p.AllocsPerOp
	}
	for _, p := range cur.Parse {
		key := "parse/" + p.Stage
		checked := false
		status := "ok"
		if p.Stage == "tokenize" {
			checked = true
			if p.AllocsPerOp > 0 {
				failures++
				status = "REGRESSION (tokenize must stay 0 allocs/op)"
			}
		}
		if b, ok := baseParse[p.Stage]; ok {
			checked = true
			if p.AllocsPerOp > b+*allocSlack {
				failures++
				status = "REGRESSION"
			}
			fmt.Printf("%-40s baseline %5.2f allocs/op  now %5.2f allocs/op  %s\n",
				key, b, p.AllocsPerOp, status)
		} else if checked {
			fmt.Printf("%-40s (no baseline)          now %5.2f allocs/op  %s\n",
				key, p.AllocsPerOp, status)
		}
		if checked {
			compared++
		} else {
			skipped++
		}
	}
	// Trace points gate on the traced/untraced overhead ratio — both
	// sides of the ratio run on the same machine, so it is comparable
	// across hosts and arms the gate anywhere, like the parse points.
	baseTrace := map[string]float64{}
	for _, p := range base.Trace {
		baseTrace[p.Workload] = p.OverheadRatio
	}
	for _, p := range cur.Trace {
		key := "trace/" + p.Workload
		b, ok := baseTrace[p.Workload]
		if !ok {
			skipped++
			fmt.Printf("%-40s (no baseline)          now %5.3fx overhead\n", key, p.OverheadRatio)
			continue
		}
		compared++
		status := "ok"
		if p.OverheadRatio > b+*traceSlack {
			failures++
			status = "REGRESSION"
		}
		fmt.Printf("%-40s baseline %5.3fx overhead  now %5.3fx overhead  %s\n",
			key, b, p.OverheadRatio, status)
	}
	fmt.Printf("\nbenchdiff: %d compared, %d skipped (no baseline match or below signal/noise floors), %d regression(s)\n",
		compared, skipped, failures)
	if base.Host != "" {
		fmt.Printf("baseline host: %s\n", base.Host)
	}
	if failures > 0 {
		os.Exit(1)
	}
	if compared == 0 && skipped > 0 && !*allowEmpty {
		fmt.Println("benchdiff: UNARMED — every point was skipped, so this run gated nothing.")
		fmt.Println("The committed baseline has no parallel signal (or does not match the run shapes).")
		fmt.Println("Re-record it on the CI host class:")
		fmt.Println("  go run ./cmd/benchdiff -record -baseline bench_baseline.json \\")
		fmt.Println("      -parallel parallel.json -execpar execpar.json -bfspar bfspar.json -host \"$(nproc)-core ci\"")
		fmt.Println("then commit the file; or pass -allow-empty to accept an unarmed gate explicitly.")
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
