// Command gsqlvet runs the graphsql custom analyzer suite
// (internal/lint): static checks for the engine invariants the type
// system cannot express — ctx propagation on the request path,
// deterministic result construction, balanced trace spans, registered
// fault points, budgeted concurrency, and wire-format stability.
//
// Two modes:
//
//	gsqlvet [packages]             standalone; loads packages itself
//	go vet -vettool=$(which gsqlvet) ./...   as a vet tool
//
// The vet-tool mode speaks cmd/go's unitchecker protocol: it answers
// -V=full with a content hash of its own binary (so the build cache
// invalidates when the suite changes), answers -flags with its flag
// set, and otherwise expects a single *.cfg argument describing one
// package — files, import map, and export data — prepared by cmd/go.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
	"strings"

	"graphsql/internal/lint"
	"graphsql/internal/lint/analysis"
	"graphsql/internal/lint/driver"
	"graphsql/internal/lint/loader"
)

func main() {
	args := os.Args[1:]
	switch {
	case len(args) == 1 && args[0] == "-V=full":
		fmt.Printf("gsqlvet version v0.0.0-%s\n", selfHash())
		return
	case len(args) == 1 && args[0] == "-flags":
		// No tool-specific flags; cmd/go only needs valid JSON here.
		fmt.Println("[]")
		return
	case len(args) >= 1 && strings.HasSuffix(args[len(args)-1], ".cfg"):
		os.Exit(unitcheck(args[len(args)-1]))
	default:
		os.Exit(standalone(args))
	}
}

// selfHash content-hashes the running binary. cmd/go folds the -V=full
// output into every vet action's cache key, so a rebuilt gsqlvet (new
// analyzer, changed gate) re-vets everything instead of serving stale
// clean results.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil))[:16]
}

func standalone(patterns []string) int {
	root, err := loader.ModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "gsqlvet:", err)
		return 1
	}
	env, err := loader.NewEnv(root, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gsqlvet:", err)
		return 1
	}
	pkgs, err := env.Load()
	if err != nil {
		fmt.Fprintln(os.Stderr, "gsqlvet:", err)
		return 1
	}
	targets := make([]*driver.Target, 0, len(pkgs))
	for _, p := range pkgs {
		targets = append(targets, &driver.Target{
			Fset: p.Fset, Files: p.Files, Pkg: p.Types, TypesInfo: p.TypesInfo,
		})
	}
	findings, err := driver.Run(lint.Analyzers, targets)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gsqlvet:", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f.String())
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// vetConfig mirrors the JSON cmd/go writes for each vet action; field
// names are the protocol.
type vetConfig struct {
	ID         string
	Compiler   string
	Dir        string
	ImportPath string
	GoFiles    []string

	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	VetxOnly    bool
	VetxOutput  string
	GoVersion   string

	SucceedOnTypecheckFailure bool
}

func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gsqlvet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "gsqlvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// The suite exports no facts, but cmd/go propagates this file into
	// dependents' PackageVetx maps, so it must exist.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("gsqlvet\n"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "gsqlvet:", err)
			return 1
		}
	}
	// Dependency-only visit: nothing to report, no facts to compute.
	if cfg.VetxOnly {
		return 0
	}

	diags, err := checkPackage(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "gsqlvet: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func checkPackage(cfg *vetConfig) ([]string, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		// The suite checks production code only; test variants reuse the
		// package's production files, which are vetted on their own.
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	compilerImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImp.Import(path)
	})

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tcfg := types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}

	var diags []analysis.Diagnostic
	for _, a := range lint.Analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d analysis.Diagnostic) {
				d.Analyzer = a.Name
				diags = append(diags, d)
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %v", a.Name, err)
		}
	}
	diags = analysis.Filter(fset, files, diags)

	out := make([]string, 0, len(diags))
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		out = append(out, fmt.Sprintf("%s: %s: %s", posn, d.Analyzer, d.Message))
	}
	sort.Strings(out)
	return out, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
