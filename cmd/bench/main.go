// Command bench regenerates the paper's tables and figures (see
// DESIGN.md's experiment index). Example:
//
//	go run ./cmd/bench -exp all -sf 1,3 -shrink 10 -pairs 20
//
// shrink=1 reproduces the paper's full dataset sizes (SF 100/300 need
// tens of GB of RAM and long runtimes; the default shrink keeps runs
// laptop-sized while preserving the shapes).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"graphsql/internal/bench"
)

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("invalid integer %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	exp := flag.String("exp", "all", "experiment: table1 | fig1a | fig1b | baselines | phases | queues | dynindex | parallel | execpar | bfspar | parse | trace | execstream | all")
	sfs := flag.String("sf", "1,3,10", "comma-separated scale factors")
	shrink := flag.Int("shrink", 10, "divide dataset sizes by this factor (1 = paper size)")
	pairs := flag.Int("pairs", 20, "random pairs per configuration")
	batches := flag.String("batches", "1,2,4,8,16,32,64,128", "figure 1b batch sizes")
	seed := flag.Uint64("seed", 42, "workload seed")
	workers := flag.String("workers", "", "comma-separated worker counts for -exp parallel (default 1,2,4,…,GOMAXPROCS); a single value also sets the engine parallelism of the other experiments")
	jsonPath := flag.String("json", "", "write machine-readable JSON results to this file (-exp parallel or execpar only)")
	flag.Parse()

	sfList, err := parseInts(*sfs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	batchList, err := parseInts(*batches)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	workerList, err := parseInts(*workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	o := bench.Options{
		SFs:        sfList,
		Shrink:     *shrink,
		Pairs:      *pairs,
		BatchSizes: batchList,
		Seed:       *seed,
		Workers:    workerList,
		Out:        os.Stdout,
	}
	if len(workerList) == 1 {
		o.Parallelism = workerList[0]
	}
	if *jsonPath != "" {
		// Exactly one experiment may own the JSON file: two encoders
		// appending to one file would produce an invalid document.
		if *exp != "parallel" && *exp != "execpar" && *exp != "bfspar" && *exp != "parse" && *exp != "trace" && *exp != "execstream" {
			fmt.Fprintf(os.Stderr, "-json is only produced by -exp parallel, execpar, bfspar, parse, trace or execstream, not %q\n", *exp)
			os.Exit(2)
		}
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer f.Close()
		o.JSONOut = f
	}

	run := func(name string, f func(bench.Options) error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := f(o); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	run("table1", bench.Table1)
	run("fig1a", bench.Fig1a)
	run("fig1b", bench.Fig1b)
	run("baselines", bench.Baselines)
	run("phases", bench.Phases)
	run("queues", bench.DijkstraQueues)
	run("dynindex", bench.DynamicIndex)
	run("parallel", bench.Parallel)
	run("execpar", bench.ExecPar)
	run("bfspar", bench.BfsPar)
	run("parse", bench.Parse)
	run("trace", bench.Trace)
	run("execstream", bench.ExecStream)
}
