package graphsql

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// concurrencyDB builds a DB with a two-lane ladder graph: lane A is
// the chain 0→1→…→n-1 with weight 2 per hop, lane B adds shortcuts
// i→i+2 with weight 5. Shortest hop-count and weighted costs are
// closed-form, so every goroutine can verify its own answers.
func concurrencyDB(t *testing.T, n int, opts ...Option) *DB {
	t.Helper()
	db := Open(opts...)
	db.MustExec(`CREATE TABLE roads (src BIGINT, dst BIGINT, w BIGINT)`)
	var b strings.Builder
	b.WriteString(`INSERT INTO roads VALUES `)
	first := true
	row := func(s, d, w int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "(%d, %d, %d)", s, d, w)
	}
	for i := 0; i < n-1; i++ {
		row(i, i+1, 2)
	}
	for i := 0; i < n-2; i++ {
		row(i, i+2, 5)
	}
	db.MustExec(b.String())
	return db
}

// TestConcurrentQueries issues read-only shortest-path and relational
// queries from many goroutines against one DB. Run under -race it
// checks the facade's locking and the runtime's worker pool compose
// safely; each goroutine also verifies the closed-form answers.
func TestConcurrentQueries(t *testing.T) {
	const n = 64
	db := concurrencyDB(t, n, WithParallelism(4))
	const goroutines = 8
	const iters = 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				src := (g*7 + it) % (n - 1)
				dst := n - 1
				// Shortcuts cover two chain steps per hop, so the
				// fewest hops is ceil(distance / 2); the cheapest
				// weighted route is the chain at 2 per step.
				dist := int64(dst - src)
				hops := (dist + 1) / 2
				got, err := db.QueryScalar(
					`SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER roads EDGE (src, dst)`,
					src, dst)
				if err != nil {
					errs <- err
					return
				}
				if got.(int64) != hops {
					errs <- fmt.Errorf("goroutine %d: hops(%d,%d) = %v, want %d", g, src, dst, got, hops)
					return
				}
				// Weighted: a shortcut costs 5 for two chain steps
				// that cost 4, so the chain is always cheapest.
				got, err = db.QueryScalar(
					`SELECT CHEAPEST SUM(r: w) WHERE ? REACHES ? OVER roads r EDGE (src, dst)`,
					src, dst)
				if err != nil {
					errs <- err
					return
				}
				if got.(int64) != 2*dist {
					errs <- fmt.Errorf("goroutine %d: cost(%d,%d) = %v, want %d", g, src, dst, got, 2*dist)
					return
				}
				// A plain relational query interleaved with the graph
				// ones.
				cnt, err := db.QueryScalar(`SELECT COUNT(*) FROM roads WHERE src < ?`, src)
				if err != nil {
					errs <- err
					return
				}
				if cnt.(int64) < int64(src) {
					errs <- fmt.Errorf("goroutine %d: count %v too small", g, cnt)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentQueriesWithGraphIndex repeats the mixed workload over
// a prebuilt dynamic graph index, the other read path of the engine.
func TestConcurrentQueriesWithGraphIndex(t *testing.T) {
	const n = 48
	db := concurrencyDB(t, n)
	if err := db.BuildGraphIndex("roads", "src", "dst"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 6)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 20; it++ {
				src := (g*5 + it) % (n - 1)
				got, err := db.QueryScalar(
					`SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER roads EDGE (src, dst)`,
					src, n-1)
				if err != nil {
					errs <- err
					return
				}
				want := (int64(n-1-src) + 1) / 2
				if got.(int64) != want {
					errs <- fmt.Errorf("goroutine %d: got %v, want %d", g, got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
