package graphsql

// Benchmarks regenerating the paper's evaluation (§4): one testing.B
// benchmark per table/figure plus the ablations of DESIGN.md. They run
// on "mini" datasets (Table 1 sizes divided by benchShrink) so the
// default `go test -bench .` stays laptop-sized; the shapes — not the
// absolute numbers — are the reproduction target. cmd/bench runs the
// same experiments at configurable scale.

import (
	"fmt"
	"testing"

	"graphsql/internal/baseline"
	"graphsql/internal/bench"
	"graphsql/internal/core"
	"graphsql/internal/engine"
	"graphsql/internal/graph"
	"graphsql/internal/ldbc"
	"graphsql/internal/types"
)

const (
	benchShrink = 20
	benchSeed   = 42
)

func benchSetup(b *testing.B, sf int) (*engine.Engine, *ldbc.Dataset) {
	b.Helper()
	e, ds, err := bench.Setup(sf, benchShrink, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	return e, ds
}

// BenchmarkTable1 regenerates Table 1: dataset generation per scale
// factor, reporting |V| and |E| alongside the paper's targets.
func BenchmarkTable1(b *testing.B) {
	for _, sf := range []int{1, 3, 10} {
		b.Run(fmt.Sprintf("SF%d", sf), func(b *testing.B) {
			var v, e int
			for i := 0; i < b.N; i++ {
				ds, err := ldbc.Generate(ldbc.Config{SF: sf, Shrink: benchShrink, Seed: benchSeed})
				if err != nil {
					b.Fatal(err)
				}
				v, e = ds.NumVertices(), ds.NumEdges()
			}
			pv, pe, _ := ldbc.Sizes(sf)
			b.ReportMetric(float64(v), "vertices")
			b.ReportMetric(float64(e), "edges")
			b.ReportMetric(float64(pv)/float64(benchShrink), "target_vertices")
			b.ReportMetric(float64(pe)/float64(benchShrink), "target_edges")
		})
	}
}

// benchPairQuery times one query shape over random pairs, the figure
// 1a protocol.
func benchPairQuery(b *testing.B, sf int, query string) {
	e, ds := benchSetup(b, sf)
	src, dst := ds.RandomPairs(256, benchSeed)
	// Warm-up.
	if _, err := e.Query(query, types.NewInt(src[0]), types.NewInt(dst[0])); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i % len(src)
		if _, err := e.Query(query, types.NewInt(src[k]), types.NewInt(dst[k])); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1aQ13 regenerates the unweighted series of figure 1a.
func BenchmarkFig1aQ13(b *testing.B) {
	for _, sf := range []int{1, 3, 10} {
		b.Run(fmt.Sprintf("SF%d", sf), func(b *testing.B) { benchPairQuery(b, sf, bench.Q13) })
	}
}

// BenchmarkFig1aQ14 regenerates the weighted series of figure 1a
// (integer affinity weights through the radix queue).
func BenchmarkFig1aQ14(b *testing.B) {
	for _, sf := range []int{1, 3, 10} {
		b.Run(fmt.Sprintf("SF%d", sf), func(b *testing.B) { benchPairQuery(b, sf, bench.Q14Variant) })
	}
}

// BenchmarkFig1aQ14Float is the float-weight variant (binary-heap
// Dijkstra), the fallback when weights cannot use the radix queue.
func BenchmarkFig1aQ14Float(b *testing.B) {
	for _, sf := range []int{1, 3} {
		b.Run(fmt.Sprintf("SF%d", sf), func(b *testing.B) { benchPairQuery(b, sf, bench.Q14FloatVariant) })
	}
}

// BenchmarkFig1b regenerates figure 1b: Q13 batched at varying batch
// sizes; the reported per_pair_ns metric is the figure's y axis.
func BenchmarkFig1b(b *testing.B) {
	for _, sf := range []int{1, 3} {
		e, ds := benchSetup(b, sf)
		for _, batch := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
			b.Run(fmt.Sprintf("SF%d/batch%d", sf, batch), func(b *testing.B) {
				var total float64
				for i := 0; i < b.N; i++ {
					perPair, err := bench.RunBatch(e, ds, batch, benchSeed)
					if err != nil {
						b.Fatal(err)
					}
					total += float64(perPair.Nanoseconds())
				}
				b.ReportMetric(total/float64(b.N), "per_pair_ns")
			})
		}
	}
}

// BenchmarkBaselines regenerates the E4 motivation comparison: the
// native operator versus the three folk methods of §1.
func BenchmarkBaselines(b *testing.B) {
	e, ds := benchSetup(b, 1)
	src, dst := ds.RandomPairs(64, benchSeed)
	run := func(b *testing.B, f func(s, d int64) (int64, error)) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			k := i % len(src)
			if _, err := f(src[k], dst[k]); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("native", func(b *testing.B) {
		run(b, func(s, d int64) (int64, error) {
			return benchNative(e, s, d)
		})
	})
	b.Run("recursiveCTE", func(b *testing.B) {
		run(b, func(s, d int64) (int64, error) {
			return benchRecursive(e, s, d)
		})
	})
	b.Run("psm", func(b *testing.B) {
		run(b, func(s, d int64) (int64, error) {
			return benchPSM(e, s, d)
		})
	})
	b.Run("selfJoin3", func(b *testing.B) {
		run(b, func(s, d int64) (int64, error) {
			return benchSelfJoin(e, s, d)
		})
	})
}

// BenchmarkDijkstraQueues regenerates the E5 ablation at the runtime
// level: radix queue vs binary heap on integer weights.
func BenchmarkDijkstraQueues(b *testing.B) {
	ds, err := ldbc.Generate(ldbc.Config{SF: 1, Shrink: benchShrink, Seed: benchSeed})
	if err != nil {
		b.Fatal(err)
	}
	g, weights, dict := bench.BuildRuntimeGraph(ds)
	srcIDs, dstIDs := ds.RandomPairs(128, benchSeed)
	srcs := make([]graph.VertexID, len(srcIDs))
	dsts := make([]graph.VertexID, len(dstIDs))
	for i := range srcIDs {
		srcs[i] = dict.LookupInt(srcIDs[i])
		dsts[i] = dict.LookupInt(dstIDs[i])
	}
	for _, force := range []bool{false, true} {
		name := "radix"
		if force {
			name = "binaryheap"
		}
		b.Run(name, func(b *testing.B) {
			solver := graph.NewSolver(g)
			for i := 0; i < b.N; i++ {
				spec := graph.Spec{WeightsI: weights, ForceBinaryHeap: force}
				if _, err := solver.Solve(srcs, dsts, []graph.Spec{spec}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCSRBuild isolates the E6 graph-construction phase the paper
// identifies as the dominant query cost (§4).
func BenchmarkCSRBuild(b *testing.B) {
	for _, sf := range []int{1, 3} {
		b.Run(fmt.Sprintf("SF%d", sf), func(b *testing.B) {
			e, _ := benchSetup(b, sf)
			friends, _ := e.Catalog().Table("friends")
			chunk := friends.Chunk()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.BuildGraph(chunk, 0, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGraphIndex measures the §6 graph index: the same Q13 with
// and without a prebuilt CSR.
func BenchmarkGraphIndex(b *testing.B) {
	for _, indexed := range []bool{false, true} {
		name := "adhoc"
		if indexed {
			name = "indexed"
		}
		b.Run(name, func(b *testing.B) {
			e, ds := benchSetup(b, 1)
			if indexed {
				if err := e.BuildGraphIndex("friends", "src", "dst"); err != nil {
					b.Fatal(err)
				}
			}
			src, dst := ds.RandomPairs(256, benchSeed)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := i % len(src)
				if _, err := e.Query(bench.Q13, types.NewInt(src[k]), types.NewInt(dst[k])); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Small wrappers keep the baseline imports in one place.

func benchNative(e *engine.Engine, s, d int64) (int64, error) {
	res, err := e.Query(bench.Q13, types.NewInt(s), types.NewInt(d))
	if err != nil {
		return -1, err
	}
	if res.NumRows() == 0 {
		return -1, nil
	}
	return res.Cols[0].Ints[0], nil
}

func benchRecursive(e *engine.Engine, s, d int64) (int64, error) {
	return baseline.RecursiveCTE(e, "friends", "src", "dst", s, d, 0)
}

func benchPSM(e *engine.Engine, s, d int64) (int64, error) {
	return baseline.PSM(e, "friends", "src", "dst", s, d, 0)
}

func benchSelfJoin(e *engine.Engine, s, d int64) (int64, error) {
	return baseline.SelfJoinChain(e, "friends", "src", "dst", s, d, 3)
}

// BenchmarkDynamicIndex runs the E7 updatable-index ablation: an
// insert+query workload under the three index policies.
func BenchmarkDynamicIndex(b *testing.B) {
	for _, policy := range []string{"adhoc", "rebuild", "delta"} {
		b.Run(policy, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := func() error {
					_, err2 := bench.RunDynamicPolicy(policy, 1, benchShrink, 8, benchSeed)
					return err2
				}(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
