// Batch demonstrates the paper's two cost findings (§4): graph
// construction dominates single-pair queries, and batching many
// ⟨source, destination⟩ pairs into one query amortizes it (figure 1b).
// It also shows the §6 'graph index' that removes construction
// entirely.
package main

import (
	"fmt"
	"log"
	"time"

	"graphsql"
	"graphsql/internal/bench"
	"graphsql/internal/ldbc"
)

func main() {
	// A mini SF-1 social network (1/10th of the paper's Table 1 size).
	ds, err := ldbc.Generate(ldbc.Config{SF: 1, Shrink: 10, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	db := graphsql.Open()
	if err := ds.Load(db.Engine().Catalog()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d directed edges\n\n", ds.NumVertices(), ds.NumEdges())

	// Single-pair queries rebuild the graph every time.
	src, dst := ds.RandomPairs(8, 7)
	start := time.Now()
	for i := range src {
		if _, err := db.Query(bench.Q13, src[i], dst[i]); err != nil {
			log.Fatal(err)
		}
	}
	perSingle := time.Since(start) / time.Duration(len(src))
	fmt.Printf("single-pair Q13:            %10.6fs per pair\n", perSingle.Seconds())

	// Batching: one query answers many pairs over one graph build.
	for _, b := range []int{8, 64} {
		perPair, err := bench.RunBatch(db.Engine(), ds, b, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("batched   Q13 (batch=%3d):  %10.6fs per pair\n", b, perPair.Seconds())
	}

	// Graph index: construction is hoisted out of the query entirely.
	if err := db.BuildGraphIndex("friends", "src", "dst"); err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	for i := range src {
		if _, err := db.Query(bench.Q13, src[i], dst[i]); err != nil {
			log.Fatal(err)
		}
	}
	perIndexed := time.Since(start) / time.Duration(len(src))
	fmt.Printf("single-pair Q13 + index:    %10.6fs per pair\n", perIndexed.Seconds())
}
