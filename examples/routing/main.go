// Routing models a small road network — one of the classic domains the
// paper's introduction lists — and computes weighted cheapest routes,
// including routing over a filtered subgraph (avoiding toll roads)
// with a WITH CTE as the edge table.
package main

import (
	"fmt"
	"log"

	"graphsql"
)

func main() {
	db := graphsql.Open()
	db.MustExec(`CREATE TABLE cities (name VARCHAR, country VARCHAR)`)
	db.MustExec(`CREATE TABLE roads (
		a VARCHAR, b VARCHAR, km BIGINT, toll BOOLEAN)`)
	db.MustExec(`INSERT INTO cities VALUES
		('Amsterdam', 'NL'), ('Utrecht', 'NL'), ('Rotterdam', 'NL'),
		('Antwerp', 'BE'), ('Brussels', 'BE'), ('Paris', 'FR')`)
	// Roads are bidirectional: store both directions.
	db.MustExec(`INSERT INTO roads VALUES
		('Amsterdam', 'Utrecht',    45, FALSE), ('Utrecht',   'Amsterdam',  45, FALSE),
		('Amsterdam', 'Rotterdam',  78, FALSE), ('Rotterdam', 'Amsterdam',  78, FALSE),
		('Utrecht',   'Antwerp',   150, FALSE), ('Antwerp',   'Utrecht',   150, FALSE),
		('Rotterdam', 'Antwerp',   100, FALSE), ('Antwerp',   'Rotterdam', 100, FALSE),
		('Antwerp',   'Brussels',   45, FALSE), ('Brussels',  'Antwerp',    45, FALSE),
		('Brussels',  'Paris',     305, TRUE),  ('Paris',     'Brussels',  305, TRUE),
		('Rotterdam', 'Paris',     430, TRUE),  ('Paris',     'Rotterdam', 430, TRUE)`)

	// Shortest distance Amsterdam -> Paris over the full network.
	res, err := db.Query(`
		SELECT CHEAPEST SUM(r: km) AS total_km
		WHERE 'Amsterdam' REACHES 'Paris' OVER roads r EDGE (a, b)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Cheapest Amsterdam -> Paris (km):")
	fmt.Print(res)

	// The route itself, leg by leg.
	res, err = db.Query(`
		SELECT R.a, R.b, R.km, R.ordinality AS leg
		FROM (
			SELECT CHEAPEST SUM(r: km) AS (total, path)
			WHERE 'Amsterdam' REACHES 'Paris' OVER roads r EDGE (a, b)
		) T, UNNEST(T.path) WITH ORDINALITY AS R
		ORDER BY R.ordinality`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nRoute:")
	fmt.Print(res)

	// Routing per destination country, over the toll-free subgraph.
	res, err = db.Query(`
		WITH free AS (SELECT * FROM roads WHERE NOT toll)
		SELECT c.name, c.country, CHEAPEST SUM(f: km) AS km
		FROM cities c
		WHERE 'Amsterdam' REACHES c.name OVER free f EDGE (a, b)
		  AND c.name <> 'Amsterdam'
		ORDER BY km`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nToll-free reachability from Amsterdam:")
	fmt.Print(res)

	// Aggregate on top of shortest paths: average toll-free distance
	// per country (closure property of the extension: CHEAPEST SUM
	// composes with GROUP BY like any other column).
	res, err = db.Query(`
		WITH free AS (SELECT * FROM roads WHERE NOT toll)
		SELECT c.country, COUNT(*) AS cities, AVG(CHEAPEST SUM(f: km)) AS avg_km
		FROM cities c
		WHERE 'Amsterdam' REACHES c.name OVER free f EDGE (a, b)
		  AND c.name <> 'Amsterdam'
		GROUP BY c.country
		ORDER BY avg_km`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nAverage toll-free distance per country:")
	fmt.Print(res)
}
