// Quickstart: create a tiny directed graph from a plain edge table and
// ask reachability and shortest-path questions with the SQL extension.
package main

import (
	"fmt"
	"log"

	"graphsql"
)

func main() {
	db := graphsql.Open()

	// A graph is just a table whose rows are directed edges (§2 of the
	// paper): src and dst address the vertices, extra columns are edge
	// properties.
	db.MustExec(`CREATE TABLE flights (
		orig VARCHAR, dest VARCHAR, minutes BIGINT, price DOUBLE)`)
	db.MustExec(`INSERT INTO flights VALUES
		('AMS', 'LHR',  75,  90.0),
		('AMS', 'CDG',  80,  75.0),
		('LHR', 'JFK', 480, 420.0),
		('CDG', 'JFK', 500, 380.0),
		('JFK', 'SFO', 390, 250.0),
		('AMS', 'JFK', 540, 700.0)`)

	// Reachability: which airports can we reach from AMS?
	res, err := db.Query(`
		SELECT DISTINCT dest
		FROM flights
		WHERE 'AMS' REACHES dest OVER flights EDGE (orig, dest)
		ORDER BY dest`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Reachable from AMS:")
	fmt.Print(res)

	// Fewest hops (unweighted shortest path): CHEAPEST SUM(1).
	hops, err := db.QueryScalar(`
		SELECT CHEAPEST SUM(1)
		WHERE 'AMS' REACHES 'SFO' OVER flights EDGE (orig, dest)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAMS -> SFO in %v hops\n", hops)

	// Cheapest route by price, with the path returned as a nested
	// table and flattened by UNNEST.
	res, err = db.Query(`
		SELECT T.total, R.orig, R.dest, R.price, R.ordinality AS leg
		FROM (
			SELECT CHEAPEST SUM(f: price) AS (total, path)
			WHERE 'AMS' REACHES 'SFO' OVER flights f EDGE (orig, dest)
		) T, UNNEST(T.path) WITH ORDINALITY AS R
		ORDER BY R.ordinality`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nCheapest AMS -> SFO route by price:")
	fmt.Print(res)
}
