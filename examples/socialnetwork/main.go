// Socialnetwork replays every example of the paper's appendix A on
// the sample data of its figure 2: cost of a shortest path (A.1),
// vertex properties (A.2), reachability over a filtered subgraph
// (A.3), and multiple weighted shortest paths with unnesting (A.4).
package main

import (
	"fmt"
	"log"

	"graphsql"
)

func main() {
	db := graphsql.Open()
	db.MustExec(`CREATE TABLE persons (id BIGINT, firstName VARCHAR, lastName VARCHAR)`)
	db.MustExec(`CREATE TABLE friends (person1 BIGINT, person2 BIGINT, creationDate DATE, weight DOUBLE)`)
	db.MustExec(`INSERT INTO persons VALUES
		(933,  'Mahinda', 'Perera'),
		(1129, 'Carmen',  'Lepland'),
		(8333, 'Chen',    'Wang'),
		(4139, 'Hans',    'Johansson')`)
	db.MustExec(`INSERT INTO friends VALUES
		(933,  1129, '2010-03-24', 0.5),
		(1129, 933,  '2010-03-24', 0.5),
		(1129, 8333, '2010-12-02', 2.0),
		(8333, 1129, '2010-12-02', 2.0),
		(8333, 4139, '2012-06-08', 1.0),
		(4139, 8333, '2012-06-08', 1.0)`)

	// A.1 — cost of a shortest path (LDBC SNB Q13 shape).
	dist, err := db.QueryScalar(`
		SELECT CHEAPEST SUM(1)
		WHERE ? REACHES ? OVER friends EDGE (person1, person2)`, 933, 8333)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("A.1  distance(933, 8333) = %v\n\n", dist)

	// A.2 — vertex properties joined in.
	res, err := db.Query(`
		SELECT p1.firstName || ' ' || p1.lastName AS person1,
		       p2.firstName || ' ' || p2.lastName AS person2,
		       CHEAPEST SUM(1) AS distance
		FROM persons p1, persons p2
		WHERE p1.id = ? AND p2.id = ?
		  AND p1.id REACHES p2.id OVER friends EDGE (person1, person2)`,
		933, 8333)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("A.2  with vertex properties:")
	fmt.Print(res)

	// A.3 — reachability over the pre-2011 subgraph defined by a CTE.
	res, err = db.Query(`
		WITH friends1 AS (
			SELECT * FROM friends WHERE creationDate < '2011-01-01'
		)
		SELECT firstName || ' ' || lastName AS person
		FROM persons
		WHERE ? REACHES id OVER friends1 EDGE (person1, person2)`, 933)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nA.3  reachable before 2011:")
	fmt.Print(res)

	// A.4 — weighted shortest paths with the path as a nested table...
	res, err = db.Query(`
		WITH friends1 AS (
			SELECT * FROM friends WHERE creationDate < '2011-01-01'
		)
		SELECT firstName || ' ' || lastName AS person,
		       CHEAPEST SUM(f: CAST(weight * 2 AS int)) AS (cost, path)
		FROM persons
		WHERE ? REACHES id OVER friends1 f EDGE (person1, person2)
		ORDER BY cost`, 933)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nA.4  weighted shortest paths (nested):")
	fmt.Print(res)

	// ... and flattened by UNNEST (the empty path drops out, as the
	// paper notes; LEFT JOIN UNNEST ... ON TRUE would keep it).
	res, err = db.Query(`
		SELECT T.person, T.cost, R.person1, R.person2, R.creationDate, R.weight
		FROM (
			WITH friends1 AS (
				SELECT * FROM friends WHERE creationDate < '2011-01-01'
			)
			SELECT firstName || ' ' || lastName AS person,
			       CHEAPEST SUM(f: CAST(weight * 2 AS int)) AS (cost, path)
			FROM persons
			WHERE ? REACHES id OVER friends1 f EDGE (person1, person2)
		) T, UNNEST(T.path) AS R
		ORDER BY T.cost, R.person1`, 933)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nA.4  unnested:")
	fmt.Print(res)
}
