package graphsql

import (
	"context"
	"sync"

	"graphsql/internal/engine"
	"graphsql/internal/types"
)

// Session is a server-friendly handle over a shared DB: it carries
// session-scoped settings (`SET parallelism = n` applies to the session
// only) and a prepared-plan cache keyed by statement text and argument
// kinds, so repeated queries skip parse, bind and rewrite. Sessions are
// cheap; create one per client connection. A Session serializes its own
// statements but runs concurrently with other sessions (SELECTs share
// the DB's read lock).
type Session struct {
	db *DB

	mu sync.Mutex
	// parallelism is the session worker budget: -1 inherits the DB
	// value, 0 means one worker per CPU, n >= 1 caps the pool.
	parallelism int
	plans       map[string]*engine.Prepared
}

// maxSessionPlans bounds the prepared-plan cache; when full, the cache
// is dropped wholesale (a session replaying a bounded statement set —
// the common case — never hits this).
const maxSessionPlans = 256

// Session creates a new session over the database.
func (db *DB) Session() *Session {
	return &Session{db: db, parallelism: -1, plans: make(map[string]*engine.Prepared)}
}

// Parallelism reports the session's worker-budget setting: -1 when the
// session inherits the DB value, otherwise the value of the last
// `SET parallelism`.
func (s *Session) Parallelism() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.parallelism
}

// QueryOptions carries per-statement overrides of a session query.
type QueryOptions struct {
	// Workers caps the worker budget of this statement only; it beats
	// the session's SET parallelism, which beats the DB default. 0 (or
	// negative) inherits.
	Workers int
}

// Query runs one statement in the session. SET statements update the
// session's settings; everything else behaves like DB.QueryCtx with the
// session's settings applied.
func (s *Session) Query(ctx context.Context, sql string, args ...any) (*Result, error) {
	return s.QueryOpts(ctx, QueryOptions{}, sql, args...)
}

// QueryOpts is Query with per-statement overrides.
func (s *Session) QueryOpts(ctx context.Context, qo QueryOptions, sql string, args ...any) (*Result, error) {
	params, err := bindArgs(args)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	override := s.parallelism
	if qo.Workers > 0 {
		override = qo.Workers
	}
	opts := &engine.ExecOptions{Parallelism: override, OnSet: s.applySet}

	db := s.db
	db.mu.RLock()
	key := planKey(sql, params)
	p := s.plans[key]
	if p == nil || p.Stale(db.eng, params) {
		p, err = db.eng.Prepare(sql, params...)
		if err != nil {
			db.mu.RUnlock()
			return nil, err
		}
		if p.IsSelect() || p.IsSet() {
			if len(s.plans) >= maxSessionPlans {
				s.plans = make(map[string]*engine.Prepared)
			}
			s.plans[key] = p
		}
	}
	if p.IsSelect() || p.IsSet() {
		// Reads — and session-scoped SETs, which never touch the engine
		// thanks to applySet — stay under the read lock.
		defer db.mu.RUnlock()
		chunk, err := db.eng.ExecPrepared(ctx, p, opts, params...)
		if err != nil {
			return nil, err
		}
		if chunk == nil {
			return &Result{}, nil
		}
		return chunkToResult(chunk), nil
	}
	db.mu.RUnlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	// Writes carry no bound plan, so ExecPrepared binds them here
	// against the current catalog — no second parse.
	chunk, err := db.eng.ExecPrepared(ctx, p, opts, params...)
	if err != nil {
		return nil, err
	}
	if chunk == nil {
		return &Result{}, nil
	}
	return chunkToResult(chunk), nil
}

// applySet scopes SET statements to the session; called by the engine
// with the session mutex already held (QueryOpts holds it).
func (s *Session) applySet(name string, v types.Value) (bool, error) {
	switch name {
	case "parallelism":
		if v.Null {
			s.parallelism = -1 // back to inheriting the DB value
		} else {
			s.parallelism = int(v.I)
		}
		return true, nil
	}
	return false, nil
}

// planKey builds the session plan-cache key: the statement text plus
// the argument kinds it was bound with (the same text bound with
// differently-typed arguments produces a different plan).
func planKey(sql string, params []types.Value) string {
	if len(params) == 0 {
		return sql
	}
	b := make([]byte, 0, len(sql)+1+len(params))
	b = append(b, sql...)
	b = append(b, 0)
	for _, p := range params {
		b = append(b, byte(p.K))
	}
	return string(b)
}
