package graphsql

import (
	"context"
	"sync"

	"graphsql/internal/engine"
	"graphsql/internal/sql/fingerprint"
	"graphsql/internal/trace"
	"graphsql/internal/types"
)

// Session is a server-friendly handle over a shared DB: it carries
// session-scoped settings (`SET parallelism = n` applies to the session
// only) and a prepared-plan cache keyed by statement text and argument
// kinds, so repeated queries skip parse, bind and rewrite. Sessions are
// cheap; create one per client connection. A Session serializes its own
// statements but runs concurrently with other sessions (SELECTs share
// the DB's read lock).
type Session struct {
	db *DB

	mu sync.Mutex
	// parallelism is the session worker budget: -1 inherits the DB
	// value, 0 means one worker per CPU, n >= 1 caps the pool.
	parallelism int
	plans       map[string]*engine.Prepared
}

// maxSessionPlans bounds the prepared-plan cache; when full, the cache
// is dropped wholesale (a session replaying a bounded statement set —
// the common case — never hits this).
const maxSessionPlans = 256

// Session creates a new session over the database.
func (db *DB) Session() *Session {
	return &Session{db: db, parallelism: -1, plans: make(map[string]*engine.Prepared)}
}

// Parallelism reports the session's worker-budget setting: -1 when the
// session inherits the DB value, otherwise the value of the last
// `SET parallelism`.
func (s *Session) Parallelism() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.parallelism
}

// QueryOptions carries per-statement overrides of a query; the zero
// value inherits every default. It is shared by the DB-level core
// (DB.QueryRows) and the session variants.
type QueryOptions struct {
	// Workers caps the worker budget of this statement only; it beats
	// the session's SET parallelism, which beats the DB default. 0 (or
	// negative) inherits.
	Workers int
	// Trace, when non-nil, records the statement's spans: plan
	// resolution (fingerprint, parse/bind on a plan-cache miss) and the
	// per-operator execution tree. Create one with NewTrace. Nil — the
	// default — disables tracing at zero cost.
	Trace *trace.Trace
	// Executor selects the SELECT executor for this statement:
	// "pull" (batch-at-a-time execution during the cursor drain) or
	// "materialize" (the legacy execute-everything-then-window
	// executor). Empty inherits the process default — pull, unless the
	// GSQL_EXEC=materialize environment override is set. Both executors
	// produce byte-identical results; the knob exists for differential
	// testing and as an operational escape hatch.
	Executor string
	// BatchRows bounds the row count of the batches the pull executor's
	// pipeline operators hand between each other; 0 (or negative) uses
	// the default (1024). Smaller batches lower time-to-first-row and
	// peak intermediate memory at some per-batch overhead.
	BatchRows int
}

// ExecutorPull and ExecutorMaterialize are the QueryOptions.Executor
// values.
const (
	ExecutorPull        = engine.ExecutorPull
	ExecutorMaterialize = engine.ExecutorMaterialize
)

// Query runs one statement in the session. SET statements update the
// session's settings; everything else behaves like DB.QueryCtx with the
// session's settings applied.
func (s *Session) Query(ctx context.Context, sql string, args ...any) (*Result, error) {
	return s.QueryOpts(ctx, QueryOptions{}, sql, args...)
}

// QueryOpts is Query with per-statement overrides: QueryRows drained
// into a Result.
func (s *Session) QueryOpts(ctx context.Context, qo QueryOptions, sql string, args ...any) (*Result, error) {
	rows, err := s.QueryRows(ctx, qo, sql, args...)
	if err != nil {
		return nil, err
	}
	return rows.Result()
}

// QueryRows is the session's core query entry point, mirroring
// DB.QueryRows with the session's settings and prepared-plan cache
// applied. SELECTs open their operator tree under the read lock and
// release it before returning; execution proceeds as the Rows is
// drained (see DB.QueryRows for the locking and Close contract).
// Session-scoped SETs never touch the engine thanks to applySet and
// stay under the read lock too.
func (s *Session) QueryRows(ctx context.Context, qo QueryOptions, sql string, args ...any) (*Rows, error) {
	params, err := bindArgs(args)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	override := s.parallelism
	if qo.Workers > 0 {
		override = qo.Workers
	}
	opts := &engine.ExecOptions{
		Parallelism: override,
		OnSet:       s.applySet,
		Trace:       qo.Trace,
		Executor:    qo.Executor,
		BatchRows:   qo.BatchRows,
	}

	db := s.db
	db.mu.RLock()
	spPlan := qo.Trace.Begin(trace.NoSpan, "plan")
	p, execParams, err := s.resolvePlanTraced(qo.Trace, spPlan, sql, params)
	qo.Trace.End(spPlan)
	if err != nil {
		db.mu.RUnlock()
		return nil, err
	}
	if p.IsSelect() || p.IsSet() {
		cur, err := db.eng.ExecPreparedCursor(ctx, p, opts, execParams...)
		db.mu.RUnlock()
		if err != nil {
			return nil, err
		}
		return newRows(cur), nil
	}
	db.mu.RUnlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	// Writes carry no bound plan, so the engine binds them here against
	// the current catalog — no second parse.
	cur, err := db.eng.ExecPreparedCursor(ctx, p, opts, execParams...)
	if err != nil {
		return nil, err
	}
	return newRows(cur), nil
}

// StmtInfo describes a prepared statement; see Session.Prepare.
type StmtInfo struct {
	// NumParams is how many ? placeholders the statement uses.
	NumParams int
	// IsSelect reports whether the statement is a query.
	IsSelect bool
}

// Prepare parses — and, for SELECT, binds and rewrites — a statement
// into the session's plan cache ahead of execution, so the first
// Query/QueryOpts/QueryRows with the same text (and argument kinds)
// skips parse, bind and rewrite. args supply representative values for
// kind inference when the statement uses ? placeholders; preparing with
// no args and executing with typed ones re-prepares once on first use.
// This is what the gsqld wire-level POST /prepare endpoint rides.
func (s *Session) Prepare(sql string, args ...any) (StmtInfo, error) {
	params, err := bindArgs(args)
	if err != nil {
		return StmtInfo{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.db.mu.RLock()
	defer s.db.mu.RUnlock()
	// Re-preparing a cached statement costs no parse at all.
	if p := s.plans[planKey(sql, params)]; p != nil && !p.Stale(s.db.eng, params) {
		return StmtInfo{NumParams: p.NumParams, IsSelect: p.IsSelect()}, nil
	}
	// Without a representative value for every placeholder the plan
	// cannot be bound yet (binding infers types from the argument
	// kinds); report the parse-level metadata and let the first typed
	// execution prepare — and cache — the plan. (A first-time prepare
	// with sufficient args parses twice — describe, then bind — a
	// one-time cost per statement.)
	n, isSel, err := s.db.eng.Describe(sql)
	if err != nil {
		return StmtInfo{}, err
	}
	if len(params) < n {
		return StmtInfo{NumParams: n, IsSelect: isSel}, nil
	}
	p, _, err := s.resolvePlanTraced(nil, trace.NoSpan, sql, params)
	if err != nil {
		return StmtInfo{}, err
	}
	// NumParams reports the placeholders in the statement as written —
	// the wire contract — not the plan's count, which fingerprinting
	// may have raised by turning literals into extra parameters.
	return StmtInfo{NumParams: n, IsSelect: p.IsSelect()}, nil
}

// resolvePlanLocked returns the cached plan of the statement together
// with the parameter values to execute it with, preparing and caching
// the plan if absent or stale. Both s.mu and the DB read lock must be
// held.
//
// SELECT statements are fingerprinted first (literals in filter
// positions rewrite to placeholders, their values merging with the
// caller's arguments in statement order), so literal variants of one
// statement shape share a single cached plan. When the statement
// cannot be normalized — or the caller's argument count does not match
// its placeholders — the raw text is used and every error reads
// exactly as it would have without normalization.
func (s *Session) resolvePlanLocked(sql string, params []types.Value) (*engine.Prepared, []types.Value, error) {
	return s.resolvePlanTraced(nil, trace.NoSpan, sql, params)
}

// resolvePlanTraced is resolvePlanLocked recording fingerprint and
// prepare spans (and the plan-cache outcome) into tr; a nil tr records
// nothing.
func (s *Session) resolvePlanTraced(tr *trace.Trace, parent trace.SpanID, sql string, params []types.Value) (*engine.Prepared, []types.Value, error) {
	db := s.db
	execSQL, execParams := sql, params
	spFp := tr.Begin(parent, "fingerprint")
	norm := fingerprint.Normalize(sql)
	if norm.Changed() {
		if merged, ok := norm.MergeValues(params); ok {
			execSQL, execParams = norm.SQL, merged
		}
	}
	tr.End(spFp)
	key := planKey(execSQL, execParams)
	if p := s.plans[key]; p != nil && !p.Stale(db.eng, execParams) {
		db.planHits.Add(1)
		tr.SetPlanCacheHit(true)
		return p, execParams, nil
	}
	tr.SetPlanCacheHit(false)
	spPrep := tr.Begin(parent, "prepare")
	defer tr.End(spPrep)
	p, err := db.eng.Prepare(execSQL, execParams...)
	if err != nil {
		if execSQL != sql {
			// Normalization is semantics-preserving by construction; if
			// the rewritten statement nonetheless fails to prepare, fall
			// back to the raw text so the caller sees exactly the plan —
			// or the error — it would have seen without normalization.
			p, err = db.eng.Prepare(sql, params...)
			if err != nil {
				return nil, nil, err
			}
			db.planMisses.Add(1)
			s.cachePlanLocked(planKey(sql, params), p)
			return p, params, nil
		}
		return nil, nil, err
	}
	db.planMisses.Add(1)
	s.cachePlanLocked(key, p)
	return p, execParams, nil
}

// cachePlanLocked inserts a cacheable plan, dropping the cache
// wholesale at the size bound; s.mu must be held.
func (s *Session) cachePlanLocked(key string, p *engine.Prepared) {
	if !p.IsSelect() && !p.IsSet() {
		return
	}
	if len(s.plans) >= maxSessionPlans {
		s.plans = make(map[string]*engine.Prepared)
	}
	s.plans[key] = p
}

// applySet scopes SET statements to the session; called by the engine
// with the session mutex already held (QueryRows holds it).
func (s *Session) applySet(name string, v types.Value) (bool, error) {
	switch name {
	case "parallelism":
		if v.Null {
			s.parallelism = -1 // back to inheriting the DB value
		} else {
			s.parallelism = int(v.I)
		}
		return true, nil
	}
	return false, nil
}

// planKey builds the session plan-cache key: the statement text plus
// the argument kinds it was bound with (the same text bound with
// differently-typed arguments produces a different plan).
func planKey(sql string, params []types.Value) string {
	if len(params) == 0 {
		return sql
	}
	b := make([]byte, 0, len(sql)+1+len(params))
	b = append(b, sql...)
	b = append(b, 0)
	for _, p := range params {
		b = append(b, byte(p.K))
	}
	return string(b)
}
