package graphsql

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"graphsql/internal/testutil"
)

// The executor differential extends the determinism guarantee across
// the executor seam: the pull executor (batch-at-a-time, execution
// during the cursor drain) and the materializing executor must render
// every corpus query byte-identically, at every differential
// parallelism setting, and regardless of the operator batch size. The
// two executors share the materializing operator cores for breakers,
// so a divergence here means a pipeline operator (scan, filter,
// project, unnest, union-all, limit) streams something its
// materializing twin would not.

// executorRuns enumerates the executor configurations under
// differential test; the materializing executor is the reference.
func executorRuns() []QueryOptions {
	return []QueryOptions{
		{Executor: ExecutorMaterialize},
		{Executor: ExecutorPull},
		{Executor: ExecutorPull, BatchRows: 3}, // tiny batches force every window boundary
		{Executor: ExecutorPull, BatchRows: 1000000},
	}
}

func describeRun(qo QueryOptions) string {
	if qo.BatchRows > 0 {
		return fmt.Sprintf("%s/batch=%d", qo.Executor, qo.BatchRows)
	}
	return qo.Executor
}

func TestExecutorDifferential(t *testing.T) {
	forceParallelOperators(t)
	ctx := context.Background()
	for _, p := range differentialSettings() {
		db := openCorpusDB(t, p)
		sess := db.Session()
		for qi, q := range testutil.Queries() {
			runs := executorRuns()
			ref, err := sess.QueryOpts(ctx, runs[0], q)
			if err != nil {
				t.Fatalf("parallelism %d q%02d %s: %v\nquery: %s", p, qi, describeRun(runs[0]), err, q)
			}
			want := ref.String()
			for _, qo := range runs[1:] {
				got, err := sess.QueryOpts(ctx, qo, q)
				if err != nil {
					t.Fatalf("parallelism %d q%02d %s: %v\nquery: %s", p, qi, describeRun(qo), err, q)
				}
				if got.String() != want {
					t.Errorf("parallelism %d q%02d: %s renders differently from %s\nquery: %s\n--- %s (%d rows)\n%s--- %s (%d rows)\n%s",
						p, qi, describeRun(qo), describeRun(runs[0]), q,
						describeRun(runs[0]), ref.Len(), want, describeRun(qo), got.Len(), got.String())
				}
			}
		}
	}
}

// TestExecutorStreamingEquivalence locks the streamed drain to the
// buffered result: reassembling a pull cursor's windows — tiny operator
// batches, a window size coprime to them, so windows constantly span
// batch boundaries — must reproduce DB.Query exactly, and the frame
// sequence must be the deterministic ceil(n/window) shape the wire
// cache replay depends on.
func TestExecutorStreamingEquivalence(t *testing.T) {
	forceParallelOperators(t)
	ctx := context.Background()
	db := openCorpusDB(t, 2)
	for qi, q := range testutil.Queries() {
		ref, err := db.Query(q)
		if err != nil {
			t.Fatalf("q%02d: %v\nquery: %s", qi, err, q)
		}
		rows, err := db.QueryRows(ctx, QueryOptions{Executor: ExecutorPull, BatchRows: 3}, q)
		if err != nil {
			t.Fatalf("q%02d: QueryRows: %v\nquery: %s", qi, err, q)
		}
		const window = 5
		got := &Result{Columns: rows.Columns}
		frames := 0
		for {
			batch, err := rows.NextBatch(window)
			if err != nil {
				t.Fatalf("q%02d: NextBatch: %v\nquery: %s", qi, err, q)
			}
			if batch == nil {
				break
			}
			frames++
			if len(batch) != window && len(got.Rows)+len(batch) != ref.Len() {
				t.Fatalf("q%02d: short window of %d rows mid-stream (frame %d)\nquery: %s",
					qi, len(batch), frames, q)
			}
			got.Rows = append(got.Rows, batch...)
		}
		if err := rows.Close(); err != nil {
			t.Fatalf("q%02d: Close: %v", qi, err)
		}
		if got.String() != ref.String() {
			t.Errorf("q%02d: streamed drain differs from buffered result\nquery: %s\n--- buffered (%d rows)\n%s--- streamed (%d rows)\n%s",
				qi, q, ref.Len(), ref.String(), len(got.Rows), got.String())
		}
		if wantFrames := (ref.Len() + window - 1) / window; frames != wantFrames {
			t.Errorf("q%02d: %d rows in %d frames of %d, want %d\nquery: %s",
				qi, ref.Len(), frames, window, wantFrames, q)
		}
	}
}

// TestExplainAnalyzeExecutors runs EXPLAIN ANALYZE under each executor
// and checks the contract both must honor: the annotated root reports
// the true result cardinality and a wall time. The per-operator actuals
// underneath are allowed to differ — a pull Limit stops pulling its
// child as soon as the quota fills, so upstream operators legitimately
// report fewer rows than under full materialization.
func TestExplainAnalyzeExecutors(t *testing.T) {
	forceParallelOperators(t)
	ctx := context.Background()
	db := openCorpusDB(t, 2)
	sess := db.Session()
	for _, executor := range []string{ExecutorMaterialize, ExecutorPull} {
		qo := QueryOptions{Executor: executor}
		for qi, q := range testutil.Queries() {
			ref, err := sess.QueryOpts(ctx, qo, q)
			if err != nil {
				t.Fatalf("%s q%02d: %v\nquery: %s", executor, qi, err, q)
			}
			plan, err := sess.QueryOpts(ctx, qo, "EXPLAIN ANALYZE "+q)
			if err != nil {
				t.Fatalf("%s q%02d: EXPLAIN ANALYZE: %v\nquery: %s", executor, qi, err, q)
			}
			text := planText(t, plan)
			firstLine, _, _ := strings.Cut(text, "\n")
			if !strings.Contains(firstLine, fmt.Sprintf("rows=%d", ref.Len())) {
				t.Fatalf("%s q%02d: annotated root does not report the true cardinality %d:\n%s\nquery: %s",
					executor, qi, ref.Len(), text, q)
			}
			if !strings.Contains(firstLine, "time=") {
				t.Fatalf("%s q%02d: no timing on the root line:\n%s", executor, qi, text)
			}
		}
	}
}
