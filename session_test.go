package graphsql

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func sessionTestDB(t *testing.T) *DB {
	t.Helper()
	db := Open()
	db.MustExec(`CREATE TABLE e (s BIGINT, d BIGINT, w BIGINT)`)
	db.MustExec(`INSERT INTO e VALUES (1, 2, 3), (2, 3, 4), (3, 4, 5), (1, 4, 20)`)
	return db
}

func TestSessionSetParallelismScoped(t *testing.T) {
	db := sessionTestDB(t)
	ctx := context.Background()
	s1, s2 := db.Session(), db.Session()

	if _, err := s1.Query(ctx, `SET parallelism = 2`); err != nil {
		t.Fatal(err)
	}
	if got := s1.Parallelism(); got != 2 {
		t.Fatalf("s1 parallelism = %d, want 2", got)
	}
	if got := s2.Parallelism(); got != -1 {
		t.Fatalf("s2 parallelism leaked: %d, want -1", got)
	}
	if got := db.Engine().Parallelism(); got != 0 {
		t.Fatalf("engine parallelism mutated by session SET: %d", got)
	}
	if _, err := s1.Query(ctx, `SET parallelism = DEFAULT`); err != nil {
		t.Fatal(err)
	}
	if got := s1.Parallelism(); got != -1 {
		t.Fatalf("DEFAULT did not reset: %d", got)
	}

	// Engine-wide SET through the plain DB API.
	if err := db.Exec(`SET parallelism = 3`); err != nil {
		t.Fatal(err)
	}
	if got := db.Engine().Parallelism(); got != 3 {
		t.Fatalf("engine parallelism = %d, want 3", got)
	}

	// Engine-wide DEFAULT restores the configured Open value, not 0.
	db2 := Open(WithParallelism(1))
	db2.MustExec(`SET parallelism = 8`)
	if got := db2.Engine().Parallelism(); got != 8 {
		t.Fatalf("engine parallelism = %d, want 8", got)
	}
	db2.MustExec(`SET parallelism = DEFAULT`)
	if got := db2.Engine().Parallelism(); got != 1 {
		t.Fatalf("DEFAULT restored %d, want the configured 1", got)
	}
	// Validation.
	if err := db.Exec(`SET parallelism = -1`); err == nil {
		t.Fatal("negative parallelism accepted")
	}
	if err := db.Exec(`SET nonsense = 1`); err == nil || !strings.Contains(err.Error(), "unknown setting") {
		t.Fatalf("unknown setting: %v", err)
	}
}

func TestSessionResultsMatchDB(t *testing.T) {
	db := sessionTestDB(t)
	s := db.Session()
	ctx := context.Background()
	queries := []string{
		`SELECT * FROM e ORDER BY s, d`,
		`SELECT CHEAPEST SUM(r: w) WHERE 1 REACHES 4 OVER e r EDGE (s, d)`,
		`SELECT s, COUNT(*) FROM e GROUP BY s ORDER BY s`,
	}
	for _, q := range queries {
		// Twice per query: the second run serves from the plan cache.
		for i := 0; i < 2; i++ {
			want, err := db.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := s.Query(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			if got.String() != want.String() {
				t.Fatalf("run %d: session result differs for %s\n%s\nvs\n%s", i, q, got, want)
			}
		}
	}
}

func TestSessionPlanCacheInvalidation(t *testing.T) {
	db := sessionTestDB(t)
	s := db.Session()
	ctx := context.Background()
	q := `SELECT COUNT(*) FROM e`
	res, err := s.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 4 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
	// Reshape the catalog: drop and recreate the table. The cached plan
	// holds the old table; staleness must force a re-prepare.
	db.MustExec(`DROP TABLE e`)
	db.MustExec(`CREATE TABLE e (s BIGINT, d BIGINT, w BIGINT)`)
	db.MustExec(`INSERT INTO e VALUES (7, 8, 9)`)
	res, err = s.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 1 {
		t.Fatalf("stale plan served: count = %v, want 1", res.Rows[0][0])
	}
	// Parameter kind changes also re-prepare instead of misbinding.
	if _, err := s.Query(ctx, `SELECT s FROM e WHERE s = ?`, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query(ctx, `SELECT s FROM e WHERE s = ?`, 7.0); err != nil {
		t.Fatal(err)
	}
}

func TestSessionWorkersOverride(t *testing.T) {
	db := sessionTestDB(t)
	s := db.Session()
	ctx := context.Background()
	want, err := db.Query(`SELECT s, d FROM e ORDER BY s, d`)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, 1, 2, 7} {
		got, err := s.QueryOpts(ctx, QueryOptions{Workers: w}, `SELECT s, d FROM e ORDER BY s, d`)
		if err != nil {
			t.Fatal(err)
		}
		if got.String() != want.String() {
			t.Fatalf("workers=%d changed the result", w)
		}
	}
}

func TestQueryCtxPreCanceled(t *testing.T) {
	db := sessionTestDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.QueryCtx(ctx, `SELECT * FROM e`); !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
	if _, err := db.Session().Query(ctx, `SELECT * FROM e`); !errors.Is(err, context.Canceled) {
		t.Fatalf("session: expected context.Canceled, got %v", err)
	}
}

// TestQueryCtxCancelMidSolve cancels during a batched solve and
// requires the canceled error well before the query could finish.
func TestQueryCtxCancelMidSolve(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE TABLE e (s BIGINT, d BIGINT)`)
	db.MustExec(`CREATE TABLE p (a BIGINT, b BIGINT)`)
	// A random graph plus a pair batch with thousands of distinct
	// sources: every source group is a cancellation point.
	x := uint64(1)
	next := func(n int) int {
		x = x*6364136223846793005 + 1442695040888963407
		return int((x >> 17) % uint64(n))
	}
	const nv = 2000
	var b strings.Builder
	b.WriteString(`INSERT INTO e VALUES `)
	for i := 0; i < 12000; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%d, %d)", next(nv), next(nv))
	}
	db.MustExec(b.String())
	b.Reset()
	b.WriteString(`INSERT INTO p VALUES `)
	for i := 0; i < nv; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%d, %d)", i, next(nv))
	}
	db.MustExec(b.String())

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	defer wg.Wait()
	_, err := db.QueryCtx(ctx,
		`SELECT p.a, p.b, CHEAPEST SUM(1) FROM p WHERE p.a REACHES p.b OVER e EDGE (s, d)`)
	if err == nil {
		// The machine may genuinely have finished first; pin the
		// behavior with an immediate cancel instead.
		ctx2, cancel2 := context.WithCancel(context.Background())
		cancel2()
		if _, err2 := db.QueryCtx(ctx2, `SELECT COUNT(*) FROM e`); !errors.Is(err2, context.Canceled) {
			t.Fatalf("expected context.Canceled, got %v", err2)
		}
		return
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
	// The database stays usable after a canceled query.
	if _, err := db.Query(`SELECT COUNT(*) FROM e`); err != nil {
		t.Fatalf("post-cancel query failed: %v", err)
	}
}
