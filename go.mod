module graphsql

go 1.24
