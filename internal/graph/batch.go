package graph

import (
	"cmp"
	"context"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"graphsql/internal/fault"
)

// Spec describes one CHEAPEST SUM evaluation over a graph: the edge
// weights (in edge-table row order) and whether the caller needs the
// path itself in addition to its cost. Exactly one of the weight
// fields is set; Unit marks a constant weight expression, for which the
// solver uses BFS and multiplies the hop count (the "optimized built-in
// algorithm" choice of §1/§4).
type Spec struct {
	// WeightsI holds strictly positive integer weights per edge row.
	WeightsI []int64
	// WeightsF holds strictly positive float weights per edge row.
	WeightsF []float64
	// Unit marks a constant weight; UnitI/UnitF hold the constant.
	Unit  bool
	UnitI int64
	UnitF float64
	// Float reports whether the cost type is DOUBLE.
	Float bool
	// NeedPath requests path reconstruction.
	NeedPath bool
	// ForceBinaryHeap disables the radix queue for integer weights
	// (used by the E5 ablation only).
	ForceBinaryHeap bool
}

// Solution holds per-pair results of a batched shortest-path request.
type Solution struct {
	// Reached[i] reports whether pair i's destination is reachable.
	Reached []bool
	// CostI[s][i] / CostF[s][i] hold the cost of pair i under spec s.
	CostI [][]int64
	CostF [][]float64
	// Paths[s][i] holds the edge-table rows of one shortest path for
	// pair i under spec s (nil for unreachable pairs and empty paths).
	Paths [][][]int32
}

// Solver computes batched many-to-many shortest paths over one CSR,
// optionally extended by a Delta of appended edges (§6 graph-index
// updates). It groups pairs by source so each distinct source runs a
// single traversal that serves all its destinations (the batching that
// figure 1b shows amortizes graph construction), with early exit once
// every destination of the group is settled.
//
// Source groups are independent — each writes a disjoint set of pair
// indices of the Solution — so large batches are drained by a pool of
// workers, each owning its private traversal scratch. The CSR, the
// Delta and the weight vectors are shared read-only. Scheduling cannot
// change any output value, so parallel runs are bit-identical to
// sequential ones.
type Solver struct {
	g     *CSR
	delta *Delta
	n     int // total vertices (CSR + delta growth)
	// Parallelism caps the number of solve workers; <= 0 means
	// runtime.GOMAXPROCS(0). Small batches take a sequential fast path
	// regardless. When the batch has fewer source groups than the
	// budget, the leftover workers parallelize *within* each BFS
	// traversal (frontier-parallel levels, see bfspar.go), so a
	// single-source query on a huge graph is no longer pinned to one
	// core.
	Parallelism int
	// Ctx carries optional cancellation (client disconnects, server
	// timeouts). It is checked at the source-group boundary, inside
	// sequential traversals every cancelCheckInterval pops, and at
	// every level of a frontier-parallel BFS — so a canceled query
	// aborts a single in-flight traversal within milliseconds rather
	// than running it to completion.
	Ctx context.Context
	// OnLevel, when non-nil, receives one (level, frontier size) sample
	// per BFS level of every traversal (level 0 is the source itself).
	// Source groups run concurrently, so the callback must be safe for
	// concurrent use and samples from distinct sources may interleave.
	// Observation only — it cannot affect results. Nil is free.
	OnLevel func(level int64, size int)
	// forceParallel bypasses the sequential fast-path heuristics (both
	// across and within source groups) so tests can exercise the worker
	// pool on tiny inputs.
	forceParallel bool
	// scratches pools per-worker traversal state across Solve calls;
	// scratches[0] doubles as the sequential-path scratch.
	scratches []*solverScratch
}

// solverScratch is the per-worker traversal state: BFS and Dijkstra
// per-vertex arrays plus the destination mark array of the group being
// solved. Each worker owns exactly one scratch for the duration of a
// Solve call.
type solverScratch struct {
	bfs    *bfsState
	dij    *dijkstraState
	wanted []bool
}

// NewSolver returns a solver for g.
func NewSolver(g *CSR) *Solver {
	return &Solver{g: g, n: g.N}
}

// NewSolverWithDelta returns a solver over a snapshot CSR plus the
// edges appended since (delta may be nil).
func NewSolverWithDelta(g *CSR, delta *Delta) *Solver {
	n := g.N
	if delta != nil && delta.N > n {
		n = delta.N
	}
	return &Solver{g: g, delta: delta, n: n}
}

// scratch returns the pooled per-worker scratch with index i, growing
// the pool on first use.
func (s *Solver) scratch(i int) *solverScratch {
	for len(s.scratches) <= i {
		s.scratches = append(s.scratches, &solverScratch{wanted: make([]bool, s.n)})
	}
	return s.scratches[i]
}

// ValidateWeights checks the strict positivity requirement of §2 and
// returns a descriptive error naming the first offending edge row.
func ValidateWeights(spec *Spec) error {
	if spec.Unit {
		if spec.Float {
			if spec.UnitF <= 0 {
				return fmt.Errorf("CHEAPEST SUM: weight %v is not strictly positive", spec.UnitF)
			}
		} else if spec.UnitI <= 0 {
			return fmt.Errorf("CHEAPEST SUM: weight %d is not strictly positive", spec.UnitI)
		}
		return nil
	}
	for i, w := range spec.WeightsI {
		if w <= 0 {
			return fmt.Errorf("CHEAPEST SUM: edge row %d has non-positive weight %d", i, w)
		}
	}
	for i, w := range spec.WeightsF {
		if w <= 0 {
			return fmt.Errorf("CHEAPEST SUM: edge row %d has non-positive weight %v", i, w)
		}
	}
	return nil
}

// groupSpan is one source group: order[lo:hi] holds the pair indices
// sharing a source vertex.
type groupSpan struct{ lo, hi int }

// Solve computes reachability (and the costs/paths requested by specs)
// for the given parallel src/dst pair arrays. Entries with src or dst
// equal to NoVertex are reported unreachable (their keys were not
// vertices of the graph). Weight positivity must have been validated.
func (s *Solver) Solve(srcs, dsts []VertexID, specs []Spec) (*Solution, error) {
	if len(srcs) != len(dsts) {
		return nil, fmt.Errorf("graph: %d sources vs %d destinations", len(srcs), len(dsts))
	}
	n := len(srcs)
	sol := &Solution{
		Reached: make([]bool, n),
		CostI:   make([][]int64, len(specs)),
		CostF:   make([][]float64, len(specs)),
		Paths:   make([][][]int32, len(specs)),
	}
	for k, spec := range specs {
		if spec.Float {
			sol.CostF[k] = make([]float64, n)
		} else {
			sol.CostI[k] = make([]int64, n)
		}
		if spec.NeedPath {
			sol.Paths[k] = make([][]int32, n)
		}
	}

	// Group pair indices by source vertex.
	order := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if srcs[i] != NoVertex && dsts[i] != NoVertex {
			order = append(order, i)
		}
	}
	slices.SortFunc(order, func(a, b int) int { return cmp.Compare(srcs[a], srcs[b]) })

	groups := make([]groupSpan, 0, 16)
	for at := 0; at < len(order); {
		src := srcs[order[at]]
		end := at
		for end < len(order) && srcs[order[end]] == src {
			end++
		}
		groups = append(groups, groupSpan{at, end})
		at = end
	}

	workers := s.solveWorkers(len(groups))
	intra := s.intraWorkers(len(groups), workers)
	// Grow the scratch pool up front: workers index it concurrently.
	for w := 0; w < workers; w++ {
		s.scratch(w)
	}
	// canceled latches the first failure observation so remaining groups
	// drain as no-ops instead of starting new traversals; failOnce keeps
	// the first group's actual error so it is reported verbatim (it is
	// not always a cancellation — injected faults travel this path too).
	var canceled atomic.Bool
	var failOnce sync.Once
	var failErr error
	runIndexed(workers, len(groups), func(worker, i int) {
		if canceled.Load() || (s.Ctx != nil && s.Ctx.Err() != nil) {
			canceled.Store(true)
			return
		}
		group := order[groups[i].lo:groups[i].hi]
		if err := s.solveGroup(s.scratches[worker], srcs[group[0]], group, dsts, specs, sol, intra); err != nil {
			canceled.Store(true)
			failOnce.Do(func() { failErr = err })
		}
	})
	if canceled.Load() {
		// runIndexed's barrier orders the failOnce write before this
		// read. A nil failErr means a worker observed s.Ctx canceled
		// before any group returned an error.
		if failErr != nil {
			return nil, failErr
		}
		return nil, s.Ctx.Err()
	}
	return sol, nil
}

// traversalWork estimates the cost of one full traversal: every vertex
// plus every edge (snapshot and delta).
func (s *Solver) traversalWork() int {
	work := s.n + s.g.NumEdges()
	if s.delta != nil {
		work += s.delta.Edges
	}
	return work
}

// solveWorkers picks the worker count for a batch of source groups:
// one (the sequential fast path) unless the batch is large enough that
// goroutine overhead is noise against the traversal work.
func (s *Solver) solveWorkers(groups int) int {
	if groups < 2 {
		return 1
	}
	workers := resolveWorkers(s.Parallelism)
	if workers > groups {
		workers = groups
	}
	if workers <= 1 {
		return 1
	}
	if s.forceParallel {
		return workers
	}
	// Each group traverses up to the whole graph; below the threshold a
	// single worker finishes before a pool would finish spinning up.
	if groups*s.traversalWork() < minParallelSolveWork {
		return 1
	}
	return workers
}

// intraWorkers picks the frontier parallelism of each BFS traversal:
// the share of the budget that source-group parallelism leaves idle.
// A batch with at least as many groups as workers keeps traversals
// sequential (the across-source partition already saturates the
// budget); a single-source query on a large graph gets the whole
// budget inside its one traversal.
func (s *Solver) intraWorkers(groups, outer int) int {
	if groups == 0 {
		return 1
	}
	budget := resolveWorkers(s.Parallelism)
	if budget <= groups {
		return 1
	}
	if !s.forceParallel && s.traversalWork() < minParallelSolveWork {
		return 1
	}
	// outer is groups when the across-source pool runs, 1 otherwise;
	// divide by the larger so outer×intra never exceeds the budget.
	div := groups
	if outer > div {
		div = outer
	}
	return budget / div
}

// solveGroup answers all pairs sharing one source vertex. It runs
// concurrently for distinct groups, so it must write only through its
// private scratch and the pair indices of its own group. intra > 1
// runs the BFS frontier-parallel over that many workers. A non-nil
// error means the traversal stopped mid-flight (cancellation or an
// injected fault) and the group's outputs are partial garbage the
// caller must discard.
func (s *Solver) solveGroup(sc *solverScratch, src VertexID, group []int, dsts []VertexID, specs []Spec, sol *Solution, intra int) error {
	if err := fault.Inject(fault.PointSolverGroup); err != nil {
		return err
	}
	// Mark the distinct destinations of this group.
	distinct := 0
	for _, i := range group {
		d := dsts[i]
		if !sc.wanted[d] {
			sc.wanted[d] = true
			distinct++
		}
	}
	defer func() {
		for _, i := range group {
			sc.wanted[dsts[i]] = false
		}
	}()

	// Reachability (and unit-weight costs) come from one BFS. If every
	// spec is weighted we still derive reachability from the first
	// weighted run instead, saving a traversal.
	needBFS := len(specs) == 0
	for _, spec := range specs {
		if spec.Unit {
			needBFS = true
		}
	}

	reachedSet := false
	if needBFS {
		if sc.bfs == nil {
			sc.bfs = newBFSState(s.n)
		}
		sc.bfs.onLevel = s.OnLevel
		var err error
		if intra > 1 {
			_, err = sc.bfs.runBFSParallel(s.g, s.delta, src, sc.wanted, distinct, intra, s.Ctx)
		} else {
			_, err = sc.bfs.runBFS(s.g, s.delta, src, sc.wanted, distinct, s.Ctx)
		}
		if err != nil {
			return err
		}
		for _, i := range group {
			sol.Reached[i] = sc.bfs.visited(dsts[i])
		}
		reachedSet = true
		for k := range specs {
			spec := &specs[k]
			if !spec.Unit {
				continue
			}
			for _, i := range group {
				d := dsts[i]
				if !sc.bfs.visited(d) {
					continue
				}
				hops := sc.bfs.dist[d]
				if spec.Float {
					sol.CostF[k][i] = float64(hops) * spec.UnitF
				} else {
					sol.CostI[k][i] = hops * spec.UnitI
				}
				if spec.NeedPath {
					sol.Paths[k][i], _ = sc.bfs.pathTo(d)
				}
			}
		}
	}

	for k := range specs {
		spec := &specs[k]
		if spec.Unit {
			continue
		}
		if sc.dij == nil {
			sc.dij = newDijkstraState(s.n)
		}
		var err error
		switch {
		case spec.WeightsF != nil:
			_, err = sc.dij.runFloat(s.g, s.delta, src, spec.WeightsF, sc.wanted, distinct, s.Ctx)
		case spec.ForceBinaryHeap:
			_, err = sc.dij.runIntBinaryHeap(s.g, s.delta, src, spec.WeightsI, sc.wanted, distinct, s.Ctx)
		default:
			_, err = sc.dij.runInt(s.g, s.delta, src, spec.WeightsI, sc.wanted, distinct, s.Ctx)
		}
		if err != nil {
			return err
		}
		for _, i := range group {
			d := dsts[i]
			ok := sc.dij.seen(d) && sc.dij.settled[d]
			if !reachedSet {
				sol.Reached[i] = ok
			}
			if !ok {
				continue
			}
			if spec.Float {
				sol.CostF[k][i] = sc.dij.distF[d]
			} else {
				sol.CostI[k][i] = sc.dij.distI[d]
			}
			if spec.NeedPath {
				sol.Paths[k][i], _ = sc.dij.pathTo(d)
			}
		}
		reachedSet = true
	}
	return nil
}
