package graph

// Bulk dictionary encoding. The GraphMatch operator encodes two whole
// key columns (sources then destinations) at once; treating their
// concatenation as one key stream lets the expensive part — hashing
// every key — run chunked across workers while keeping the dense-ID
// assignment deterministic: chunks pre-deduplicate in parallel, then a
// short sequential merge interns the distinct keys in stream order
// (so every key gets exactly the ID sequential EncodeInt/EncodeString
// calls would assign), and finally the chunks fill in the output IDs
// from the then-read-only map in parallel.
//
// Every loop — sequential and per-chunk alike — polls the optional
// cancellation context every cancelCheckInterval keys, so a cancel
// landing during ad-hoc graph construction aborts the encode within a
// few thousand keys instead of waiting for the whole column pair.

import (
	"context"

	"graphsql/internal/fault"
)

// EncodeColumnsInt encodes the concatenation of the given int64 key
// columns, writing dense IDs into the parallel outs slices (outs[c]
// must have len(cols[c])). IDs are identical to sequential EncodeInt
// calls in stream order, for any parallelism.
func (d *Dict) EncodeColumnsInt(cols [][]int64, outs [][]VertexID, parallelism int) {
	// Without a context the encode cannot fail.
	//gsqlvet:allow ctxprop non-ctx compat wrapper; request paths use EncodeColumnsIntCtx
	_ = d.EncodeColumnsIntCtx(context.Background(), cols, outs, parallelism)
}

// EncodeColumnsIntCtx is EncodeColumnsInt with a cancellation context,
// polled at chunk boundaries and every few thousand keys inside each
// loop. On cancellation the dictionary is left partially populated and
// must be discarded; the outs contents are unspecified.
func (d *Dict) EncodeColumnsIntCtx(ctx context.Context, cols [][]int64, outs [][]VertexID, parallelism int) error {
	return bulkEncode(ctx, d.ints, &d.n, cols, outs, resolveWorkers(parallelism))
}

// EncodeColumnsString is EncodeColumnsInt over the string key space.
func (d *Dict) EncodeColumnsString(cols [][]string, outs [][]VertexID, parallelism int) {
	//gsqlvet:allow ctxprop non-ctx compat wrapper; request paths use EncodeColumnsStringCtx
	_ = d.EncodeColumnsStringCtx(context.Background(), cols, outs, parallelism)
}

// EncodeColumnsStringCtx is EncodeColumnsIntCtx over the string key
// space.
func (d *Dict) EncodeColumnsStringCtx(ctx context.Context, cols [][]string, outs [][]VertexID, parallelism int) error {
	return bulkEncode(ctx, d.strs, &d.n, cols, outs, resolveWorkers(parallelism))
}

// canceled polls a possibly-nil context.
func canceled(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

func bulkEncode[K comparable](ctx context.Context, m map[K]VertexID, next *VertexID, cols [][]K, outs [][]VertexID, workers int) error {
	total := 0
	for _, col := range cols {
		total += len(col)
	}
	if workers <= 1 || total < minParallelEncodeKeys {
		for c, col := range cols {
			if err := fault.Inject(fault.PointGraphEncodeChunk); err != nil {
				return err
			}
			out := outs[c]
			for i, k := range col {
				if i&(cancelCheckInterval-1) == 0 {
					if err := canceled(ctx); err != nil {
						return err
					}
				}
				id, ok := m[k]
				if !ok {
					id = *next
					m[k] = id
					*next = id + 1
				}
				out[i] = id
			}
		}
		return nil
	}
	return bulkEncodeParallel(ctx, m, next, cols, outs, workers, total)
}

// encodeChunk is one contiguous piece of a key column plus the keys it
// saw first within itself (phase-1 output).
type encodeChunk[K comparable] struct {
	col, lo, hi int
	distinct    []K
}

func bulkEncodeParallel[K comparable](ctx context.Context, m map[K]VertexID, next *VertexID, cols [][]K, outs [][]VertexID, workers, total int) error {
	// A few chunks per worker balances skew without shrinking chunks
	// below the point where map overhead dominates.
	size := total / (workers * 2)
	if min := minParallelEncodeKeys / 8; size < min {
		size = min
	}
	var chunks []*encodeChunk[K]
	for c, col := range cols {
		for lo := 0; lo < len(col); lo += size {
			hi := lo + size
			if hi > len(col) {
				hi = len(col)
			}
			chunks = append(chunks, &encodeChunk[K]{col: c, lo: lo, hi: hi})
		}
	}
	cp := &cancelPoller{ctx: ctx}
	// ferr collects per-chunk injected faults (disjoint slots, read
	// after each phase's barrier).
	ferr := make([]error, len(chunks))
	// Phase 1 (parallel): per-chunk dedup of keys the dictionary does
	// not already know; the shared map is read-only here.
	runIndexed(workers, len(chunks), func(_, i int) {
		if err := fault.Inject(fault.PointGraphEncodeChunk); err != nil {
			ferr[i] = err
			return
		}
		ch := chunks[i]
		keys := cols[ch.col][ch.lo:ch.hi]
		local := make(map[K]struct{}, len(keys)/4+8)
		for j, k := range keys {
			if j&(cancelCheckInterval-1) == 0 && cp.poll() {
				return
			}
			if _, ok := m[k]; ok {
				continue
			}
			if _, ok := local[k]; ok {
				continue
			}
			local[k] = struct{}{}
			ch.distinct = append(ch.distinct, k)
		}
	})
	if err := canceled(ctx); err != nil {
		return err
	}
	for _, err := range ferr {
		if err != nil {
			return err
		}
	}
	// Phase 2 (sequential): intern distinct keys in stream order so the
	// dense IDs match what a sequential pass would assign.
	for _, ch := range chunks {
		if err := canceled(ctx); err != nil {
			return err
		}
		for _, k := range ch.distinct {
			if _, ok := m[k]; !ok {
				m[k] = *next
				*next++
			}
		}
	}
	// Phase 3 (parallel): fill output IDs from the now-complete map.
	// ferr slots are all nil again (a phase-1 fault returned early).
	runIndexed(workers, len(chunks), func(_, i int) {
		if err := fault.Inject(fault.PointGraphEncodeChunk); err != nil {
			ferr[i] = err
			return
		}
		ch := chunks[i]
		keys := cols[ch.col]
		out := outs[ch.col]
		for j := ch.lo; j < ch.hi; j++ {
			if j&(cancelCheckInterval-1) == 0 && cp.poll() {
				return
			}
			out[j] = m[keys[j]]
		}
	})
	if err := canceled(ctx); err != nil {
		return err
	}
	for _, err := range ferr {
		if err != nil {
			return err
		}
	}
	return nil
}
