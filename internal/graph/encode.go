package graph

// Bulk dictionary encoding. The GraphMatch operator encodes two whole
// key columns (sources then destinations) at once; treating their
// concatenation as one key stream lets the expensive part — hashing
// every key — run chunked across workers while keeping the dense-ID
// assignment deterministic: chunks pre-deduplicate in parallel, then a
// short sequential merge interns the distinct keys in stream order
// (so every key gets exactly the ID sequential EncodeInt/EncodeString
// calls would assign), and finally the chunks fill in the output IDs
// from the then-read-only map in parallel.

// EncodeColumnsInt encodes the concatenation of the given int64 key
// columns, writing dense IDs into the parallel outs slices (outs[c]
// must have len(cols[c])). IDs are identical to sequential EncodeInt
// calls in stream order, for any parallelism.
func (d *Dict) EncodeColumnsInt(cols [][]int64, outs [][]VertexID, parallelism int) {
	bulkEncode(d.ints, &d.n, cols, outs, resolveWorkers(parallelism))
}

// EncodeColumnsString is EncodeColumnsInt over the string key space.
func (d *Dict) EncodeColumnsString(cols [][]string, outs [][]VertexID, parallelism int) {
	bulkEncode(d.strs, &d.n, cols, outs, resolveWorkers(parallelism))
}

func bulkEncode[K comparable](m map[K]VertexID, next *VertexID, cols [][]K, outs [][]VertexID, workers int) {
	total := 0
	for _, col := range cols {
		total += len(col)
	}
	if workers <= 1 || total < minParallelEncodeKeys {
		for c, col := range cols {
			out := outs[c]
			for i, k := range col {
				id, ok := m[k]
				if !ok {
					id = *next
					m[k] = id
					*next = id + 1
				}
				out[i] = id
			}
		}
		return
	}
	bulkEncodeParallel(m, next, cols, outs, workers, total)
}

// encodeChunk is one contiguous piece of a key column plus the keys it
// saw first within itself (phase-1 output).
type encodeChunk[K comparable] struct {
	col, lo, hi int
	distinct    []K
}

func bulkEncodeParallel[K comparable](m map[K]VertexID, next *VertexID, cols [][]K, outs [][]VertexID, workers, total int) {
	// A few chunks per worker balances skew without shrinking chunks
	// below the point where map overhead dominates.
	size := total / (workers * 2)
	if min := minParallelEncodeKeys / 8; size < min {
		size = min
	}
	var chunks []*encodeChunk[K]
	for c, col := range cols {
		for lo := 0; lo < len(col); lo += size {
			hi := lo + size
			if hi > len(col) {
				hi = len(col)
			}
			chunks = append(chunks, &encodeChunk[K]{col: c, lo: lo, hi: hi})
		}
	}
	// Phase 1 (parallel): per-chunk dedup of keys the dictionary does
	// not already know; the shared map is read-only here.
	runIndexed(workers, len(chunks), func(_, i int) {
		ch := chunks[i]
		keys := cols[ch.col][ch.lo:ch.hi]
		local := make(map[K]struct{}, len(keys)/4+8)
		for _, k := range keys {
			if _, ok := m[k]; ok {
				continue
			}
			if _, ok := local[k]; ok {
				continue
			}
			local[k] = struct{}{}
			ch.distinct = append(ch.distinct, k)
		}
	})
	// Phase 2 (sequential): intern distinct keys in stream order so the
	// dense IDs match what a sequential pass would assign.
	for _, ch := range chunks {
		for _, k := range ch.distinct {
			if _, ok := m[k]; !ok {
				m[k] = *next
				*next++
			}
		}
	}
	// Phase 3 (parallel): fill output IDs from the now-complete map.
	runIndexed(workers, len(chunks), func(_, i int) {
		ch := chunks[i]
		keys := cols[ch.col]
		out := outs[ch.col]
		for j := ch.lo; j < ch.hi; j++ {
			out[j] = m[keys[j]]
		}
	})
}
