package graph

import "context"

// bfsState holds per-vertex scratch reused across BFS runs. Instead of
// clearing O(V) state between sources, entries carry an epoch stamp and
// are considered unset unless the stamp matches the current run.
type bfsState struct {
	dist []int64
	// parentRow is the edge-table row of the edge that discovered the
	// vertex; parentVertex is its source endpoint. -1/NoVertex at the
	// BFS root.
	parentRow    []int32
	parentVertex []VertexID
	epoch        []uint32
	cur          uint32
	queue        []VertexID
	// par holds the frontier-parallel scratch (claim array, per-worker
	// candidate buffers); nil until the first parallel run.
	par *bfsParState
	// onLevel, when non-nil, receives one (level, frontier size) sample
	// per BFS level (level 0 is the source itself). Set per traversal
	// from Solver.OnLevel; nil costs one pointer check per dequeue.
	onLevel func(level int64, size int)
}

func newBFSState(n int) *bfsState {
	return &bfsState{
		dist:         make([]int64, n),
		parentRow:    make([]int32, n),
		parentVertex: make([]VertexID, n),
		epoch:        make([]uint32, n),
		queue:        make([]VertexID, 0, 1024),
	}
}

func (s *bfsState) reset() {
	s.cur++
	if s.cur == 0 { // epoch counter wrapped: do one full clear
		for i := range s.epoch {
			s.epoch[i] = 0
		}
		s.cur = 1
	}
	s.queue = s.queue[:0]
}

func (s *bfsState) visited(v VertexID) bool { return s.epoch[v] == s.cur }

func (s *bfsState) visit(v VertexID, dist int64, row int32, from VertexID) {
	s.epoch[v] = s.cur
	s.dist[v] = dist
	s.parentRow[v] = row
	s.parentVertex[v] = from
}

// runBFS explores from src until all wanted vertices are settled or the
// component is exhausted. wanted[v] must be true for destinations of
// interest; wantLeft is their count. delta (optional) supplies edges
// appended after the CSR snapshot. It returns the number of wanted
// vertices actually reached. ctx (optional) is polled every
// cancelCheckInterval dequeues so one huge traversal aborts mid-flight
// rather than running to completion.
func (s *bfsState) runBFS(g *CSR, delta *Delta, src VertexID, wanted []bool, wantLeft int, ctx context.Context) (int, error) {
	s.reset()
	s.visit(src, 0, -1, NoVertex)
	reached := 0
	if wanted[src] {
		reached++
		wantLeft--
		if wantLeft == 0 {
			return reached, nil
		}
	}
	s.queue = append(s.queue, src)
	// The queue pops vertices in non-decreasing dist order, so a dist
	// change at the head is a level boundary; counting pops per level
	// reports the same frontier sizes the level-synchronous variant sees.
	lvl, lvlCount := int64(-1), 0
	for head := 0; head < len(s.queue); head++ {
		if ctx != nil && head&(cancelCheckInterval-1) == cancelCheckInterval-1 {
			if err := ctx.Err(); err != nil {
				return reached, err
			}
		}
		u := s.queue[head]
		du := s.dist[u]
		if s.onLevel != nil {
			if du != lvl {
				if lvlCount > 0 {
					s.onLevel(lvl, lvlCount)
				}
				lvl, lvlCount = du, 0
			}
			lvlCount++
		}
		relax := func(v VertexID, row int32) bool {
			if s.visited(v) {
				return false
			}
			s.visit(v, du+1, row, u)
			if wanted[v] {
				reached++
				wantLeft--
				if wantLeft == 0 {
					return true
				}
			}
			s.queue = append(s.queue, v)
			return false
		}
		if int(u) < g.N {
			lo, hi := g.edgeRange(u)
			for p := lo; p < hi; p++ {
				if relax(g.Targets[p], g.Perm[p]) {
					return reached, nil
				}
			}
		}
		if delta != nil {
			for _, de := range delta.Adj[u] {
				if relax(de.To, de.Row) {
					return reached, nil
				}
			}
		}
	}
	if s.onLevel != nil && lvlCount > 0 {
		s.onLevel(lvl, lvlCount)
	}
	return reached, nil
}

// pathTo reconstructs the path to v as originating edge-table rows, in
// traversal order. The second return value reports whether v was
// reached by the current run: the scratch arrays carry stale values
// from earlier epochs, so reading dist/parentRow of an unvisited vertex
// would yield a garbage path. Callers must treat (nil, false) as
// unreachable; (nil, true) is the empty path at the source.
func (s *bfsState) pathTo(v VertexID) ([]int32, bool) {
	if !s.visited(v) {
		return nil, false
	}
	hops := s.dist[v]
	if hops == 0 {
		return nil, true
	}
	out := make([]int32, hops)
	i := hops - 1
	for s.parentRow[v] >= 0 {
		out[i] = s.parentRow[v]
		i--
		v = s.parentVertex[v]
	}
	return out, true
}
