package graph

// Dict dictionary-encodes arbitrary vertex keys into the dense domain
// H = {0..N-1} (paper §3.1: "all the values from X, Y, S and D are
// translated into integers from the domain H"). Keys are either int64
// (covering BIGINT, DATE and BOOLEAN payloads) or string; exactly one
// key space is used per dictionary.
type Dict struct {
	ints map[int64]VertexID
	strs map[string]VertexID
	n    VertexID
}

// NewIntDict returns a dictionary over int64 keys.
func NewIntDict(capacity int) *Dict {
	return &Dict{ints: make(map[int64]VertexID, capacity)}
}

// NewStringDict returns a dictionary over string keys.
func NewStringDict(capacity int) *Dict {
	return &Dict{strs: make(map[string]VertexID, capacity)}
}

// Len returns the number of distinct keys seen so far, i.e. |V|.
func (d *Dict) Len() int { return int(d.n) }

// EncodeInt interns an int64 key, assigning the next dense id on first
// sight.
func (d *Dict) EncodeInt(k int64) VertexID {
	if id, ok := d.ints[k]; ok {
		return id
	}
	id := d.n
	d.ints[k] = id
	d.n++
	return id
}

// EncodeString interns a string key.
func (d *Dict) EncodeString(k string) VertexID {
	if id, ok := d.strs[k]; ok {
		return id
	}
	id := d.n
	d.strs[k] = id
	d.n++
	return id
}

// LookupInt returns the id of an int64 key, or NoVertex when the key is
// not a vertex of the graph (the initial filtering step of §3.1).
func (d *Dict) LookupInt(k int64) VertexID {
	if id, ok := d.ints[k]; ok {
		return id
	}
	return NoVertex
}

// LookupString returns the id of a string key, or NoVertex.
func (d *Dict) LookupString(k string) VertexID {
	if id, ok := d.strs[k]; ok {
		return id
	}
	return NoVertex
}
