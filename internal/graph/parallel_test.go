package graph

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// randomWorkload builds a random graph (CSR plus optional delta of
// appended edges), weight vectors covering snapshot and delta rows,
// and a batch of query pairs including NoVertex entries.
type randomWorkload struct {
	g      *CSR
	delta  *Delta
	wI     []int64
	wF     []float64
	srcs   []VertexID
	dsts   []VertexID
	n      int
	totalM int
	deltaM int
}

func makeWorkload(rng *rand.Rand, withDelta bool) *randomWorkload {
	n := 2 + rng.Intn(60)
	m := rng.Intn(4 * n)
	deltaM := 0
	if withDelta && m > 0 {
		deltaM = rng.Intn(m/2 + 1)
	}
	snapM := m - deltaM
	src := make([]VertexID, m)
	dst := make([]VertexID, m)
	wI := make([]int64, m)
	wF := make([]float64, m)
	for i := 0; i < m; i++ {
		src[i] = VertexID(rng.Intn(n))
		dst[i] = VertexID(rng.Intn(n))
		wI[i] = 1 + int64(rng.Intn(20))
		wF[i] = 0.25 + rng.Float64()*5
	}
	g, err := BuildCSR(n, src[:snapM], dst[:snapM])
	if err != nil {
		panic(err)
	}
	var delta *Delta
	if withDelta {
		delta = NewDelta(n)
		for i := snapM; i < m; i++ {
			delta.Add(src[i], dst[i], int32(i))
		}
	}
	pairs := 1 + rng.Intn(40)
	srcs := make([]VertexID, pairs)
	dsts := make([]VertexID, pairs)
	for i := range srcs {
		srcs[i] = VertexID(rng.Intn(n))
		dsts[i] = VertexID(rng.Intn(n))
		if rng.Intn(10) == 0 {
			srcs[i] = NoVertex
		}
		if rng.Intn(10) == 0 {
			dsts[i] = NoVertex
		}
	}
	return &randomWorkload{g: g, delta: delta, wI: wI, wF: wF,
		srcs: srcs, dsts: dsts, n: n, totalM: m, deltaM: deltaM}
}

// randomSpecs draws a random mix of CHEAPEST SUM specs over the
// workload's weight vectors.
func (w *randomWorkload) randomSpecs(rng *rand.Rand) []Spec {
	specs := make([]Spec, rng.Intn(4))
	for k := range specs {
		s := Spec{NeedPath: rng.Intn(2) == 0}
		switch rng.Intn(4) {
		case 0:
			s.Unit, s.UnitI = true, 1+int64(rng.Intn(5))
		case 1:
			s.Unit, s.Float, s.UnitF = true, true, 0.5+rng.Float64()
		case 2:
			s.WeightsI = w.wI
			s.ForceBinaryHeap = rng.Intn(2) == 0
		default:
			s.WeightsF, s.Float = w.wF, true
		}
		specs[k] = s
	}
	return specs
}

// TestSolverParallelMatchesSequential is the randomized equivalence
// test of the parallel solver: for random graphs (with and without a
// delta), random spec mixes and random pair batches, a forced-parallel
// 4-worker solve must produce a Solution deeply equal to the
// sequential one. Run under -race this also exercises the worker pool
// for data races.
func TestSolverParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		withDelta := trial%2 == 1
		w := makeWorkload(rng, withDelta)
		specs := w.randomSpecs(rng)

		seq := NewSolverWithDelta(w.g, w.delta)
		seq.Parallelism = 1
		want, err := seq.Solve(w.srcs, w.dsts, specs)
		if err != nil {
			t.Fatal(err)
		}

		par := NewSolverWithDelta(w.g, w.delta)
		par.Parallelism = 4
		par.forceParallel = true
		got, err := par.Solve(w.srcs, w.dsts, specs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("trial %d (delta=%v): parallel solution differs\nseq: %+v\npar: %+v",
				trial, withDelta, want, got)
		}
		// Re-solving with the same (now warm) scratch pool must stay
		// identical — the epoch-stamped scratches are reusable.
		again, err := par.Solve(w.srcs, w.dsts, specs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, again) {
			t.Fatalf("trial %d: second parallel solve differs", trial)
		}
	}
}

// TestBuildCSRParallelMatchesSequential checks the chunked CSR builder
// produces a bit-identical structure for random inputs and worker
// counts, including the empty and single-vertex corners.
func TestBuildCSRParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(50)
		m := rng.Intn(300)
		src := make([]VertexID, m)
		dst := make([]VertexID, m)
		for i := 0; i < m; i++ {
			src[i] = VertexID(rng.Intn(n))
			dst[i] = VertexID(rng.Intn(n))
		}
		want, err := BuildCSR(n, src, dst)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 4, 7} {
			got, err := buildCSRParallel(context.Background(), n, src, dst, workers)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("trial %d workers %d: CSR differs\nwant %+v\ngot  %+v", trial, workers, want, got)
			}
		}
	}
}

// TestBuildCSRParallelErrors checks the chunked builder reports the
// same first offending row as the sequential one.
func TestBuildCSRParallelErrors(t *testing.T) {
	src := make([]VertexID, 100)
	dst := make([]VertexID, 100)
	src[40] = 99 // out of range for n=10
	src[60] = 77
	dst[30] = -1
	_, wantErr := BuildCSR(10, src, dst)
	_, gotErr := buildCSRParallel(context.Background(), 10, src, dst, 4)
	if wantErr == nil || gotErr == nil || wantErr.Error() != gotErr.Error() {
		t.Fatalf("error mismatch: sequential %v, parallel %v", wantErr, gotErr)
	}
	// Destination errors surface once sources are valid.
	src[40], src[60] = 0, 0
	_, wantErr = BuildCSR(10, src, dst)
	_, gotErr = buildCSRParallel(context.Background(), 10, src, dst, 4)
	if wantErr == nil || gotErr == nil || wantErr.Error() != gotErr.Error() {
		t.Fatalf("dst error mismatch: sequential %v, parallel %v", wantErr, gotErr)
	}
	if _, err := buildCSRParallel(context.Background(), 10, src, dst[:50], 4); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

// TestBulkEncodeMatchesSequential checks the two-phase parallel
// dictionary encoding assigns exactly the dense IDs a sequential pass
// would, for int and string key spaces.
func TestBulkEncodeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		m := 1 + rng.Intn(500)
		ss := make([]int64, m)
		ds := make([]int64, m)
		for i := 0; i < m; i++ {
			ss[i] = int64(rng.Intn(m/2 + 1))
			ds[i] = int64(rng.Intn(m/2 + 1))
		}
		seqDict := NewIntDict(m)
		wantS := make([]VertexID, m)
		wantD := make([]VertexID, m)
		for i := 0; i < m; i++ {
			wantS[i] = seqDict.EncodeInt(ss[i])
		}
		for i := 0; i < m; i++ {
			wantD[i] = seqDict.EncodeInt(ds[i])
		}
		parDict := NewIntDict(m)
		gotS := make([]VertexID, m)
		gotD := make([]VertexID, m)
		bulkEncodeParallel(context.Background(), parDict.ints, &parDict.n, [][]int64{ss, ds}, [][]VertexID{gotS, gotD}, 4, 2*m)
		if parDict.Len() != seqDict.Len() {
			t.Fatalf("trial %d: |V| %d != %d", trial, parDict.Len(), seqDict.Len())
		}
		if !reflect.DeepEqual(wantS, gotS) || !reflect.DeepEqual(wantD, gotD) {
			t.Fatalf("trial %d: parallel encoding differs", trial)
		}
	}
	// String key space through the public threshold-gated entry point,
	// with a pre-populated dictionary (the delta-refresh case).
	m := minParallelEncodeKeys
	keys := make([]string, m)
	for i := range keys {
		keys[i] = fmt.Sprintf("v%d", i%(m/3))
	}
	seqDict := NewStringDict(0)
	seqDict.EncodeString("pre")
	want := make([]VertexID, m)
	for i, k := range keys {
		want[i] = seqDict.EncodeString(k)
	}
	parDict := NewStringDict(0)
	parDict.EncodeString("pre")
	got := make([]VertexID, m)
	parDict.EncodeColumnsString([][]string{keys}, [][]VertexID{got}, 4)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("string bulk encoding differs from sequential")
	}
}

// TestBuildCSRParallelPublicThreshold drives the public entry point
// past the size gate so the parallel path runs on a realistic input.
func TestBuildCSRParallelPublicThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 5000
	m := minParallelCSREdges + 1000
	src := make([]VertexID, m)
	dst := make([]VertexID, m)
	for i := 0; i < m; i++ {
		src[i] = VertexID(rng.Intn(n))
		dst[i] = VertexID(rng.Intn(n))
	}
	want, err := BuildCSR(n, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	got, err := BuildCSRParallel(n, src, dst, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("threshold-gated parallel CSR differs from sequential")
	}
}
