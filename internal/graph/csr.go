// Package graph is the shortest-path runtime of the engine. It mirrors
// the external library of the paper's prototype (§3.2): vertices are
// dictionary-encoded into the dense domain H = {0..|V|-1}, the edge
// list is converted into a Compressed Sparse Row representation, and
// shortest paths are computed with BFS (unweighted), Dijkstra with a
// radix queue (integer weights) or Dijkstra with a binary heap (float
// weights), batched over many source/destination pairs.
package graph

import (
	"context"
	"fmt"

	"graphsql/internal/fault"
)

// VertexID is a dense vertex identifier in H = {0..N-1}.
type VertexID = int32

// NoVertex marks an absent vertex or parent.
const NoVertex VertexID = -1

// CSR is a Compressed Sparse Row adjacency structure. Offsets has
// length N+1; the outgoing edges of vertex v occupy CSR positions
// Offsets[v]..Offsets[v+1]-1 (the prefix-sum addressing of §3.2).
type CSR struct {
	// N is the number of vertices.
	N int
	// Offsets is the prefix-sum over out-degrees, length N+1.
	Offsets []int64
	// Targets holds the destination vertex per CSR position.
	Targets []VertexID
	// Perm maps a CSR position back to the originating edge-table row,
	// so per-query weight vectors (in edge-table order) can be
	// addressed without re-scattering, and paths can be reconstructed
	// as edge-table row references (§3.3).
	Perm []int32
}

// NumEdges returns the edge count.
func (g *CSR) NumEdges() int { return len(g.Targets) }

// OutDegree returns the out-degree of v.
func (g *CSR) OutDegree(v VertexID) int {
	return int(g.Offsets[v+1] - g.Offsets[v])
}

// Neighbors returns the slice of CSR positions for v's outgoing edges.
func (g *CSR) edgeRange(v VertexID) (int64, int64) {
	return g.Offsets[v], g.Offsets[v+1]
}

// BuildCSR constructs the CSR from parallel source/destination arrays
// of dense vertex ids. n is the vertex count. Entries with src or dst
// outside [0, n) are rejected.
func BuildCSR(n int, src, dst []VertexID) (*CSR, error) {
	//gsqlvet:allow ctxprop non-ctx compat wrapper; request paths use BuildGraphCtx
	return buildCSRSeq(context.Background(), n, src, dst)
}

// buildCSRSeq is the sequential builder with an optional cancellation
// context, polled every cancelCheckInterval rows in each pass.
func buildCSRSeq(ctx context.Context, n int, src, dst []VertexID) (*CSR, error) {
	if len(src) != len(dst) {
		return nil, fmt.Errorf("graph: src/dst length mismatch: %d vs %d", len(src), len(dst))
	}
	if err := fault.Inject(fault.PointGraphBuildChunk); err != nil {
		return nil, err
	}
	m := len(src)
	offsets := make([]int64, n+1)
	for row, s := range src {
		if row&(cancelCheckInterval-1) == 0 {
			if err := canceled(ctx); err != nil {
				return nil, err
			}
		}
		if s < 0 || int(s) >= n {
			return nil, fmt.Errorf("graph: source id %d out of range [0,%d)", s, n)
		}
		offsets[s+1]++
	}
	for row, d := range dst {
		if row&(cancelCheckInterval-1) == 0 {
			if err := canceled(ctx); err != nil {
				return nil, err
			}
		}
		if d < 0 || int(d) >= n {
			return nil, fmt.Errorf("graph: destination id %d out of range [0,%d)", d, n)
		}
	}
	for v := 0; v < n; v++ {
		offsets[v+1] += offsets[v]
	}
	targets := make([]VertexID, m)
	perm := make([]int32, m)
	// cursor tracks the next free slot per vertex while scattering.
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	for row := 0; row < m; row++ {
		if row&(cancelCheckInterval-1) == 0 {
			if err := canceled(ctx); err != nil {
				return nil, err
			}
		}
		s := src[row]
		pos := cursor[s]
		cursor[s]++
		targets[pos] = dst[row]
		perm[pos] = int32(row)
	}
	return &CSR{N: n, Offsets: offsets, Targets: targets, Perm: perm}, nil
}

// BuildCSRParallel is BuildCSR with chunked parallel degree counting
// and scattering. The layout is identical to BuildCSR's: each chunk
// scatters into slots reserved in row order, so CSR positions (and
// Perm) come out bit-identical regardless of scheduling. Inputs below
// the size threshold fall back to the sequential builder.
func BuildCSRParallel(n int, src, dst []VertexID, parallelism int) (*CSR, error) {
	//gsqlvet:allow ctxprop non-ctx compat wrapper; request paths use BuildCSRParallelCtx
	return BuildCSRParallelCtx(context.Background(), n, src, dst, parallelism)
}

// BuildCSRParallelCtx is BuildCSRParallel with a cancellation context,
// polled every cancelCheckInterval rows inside the chunked degree-count
// and scatter loops (and the sequential fallback), so a cancel landing
// during graph construction aborts within a few thousand rows.
func BuildCSRParallelCtx(ctx context.Context, n int, src, dst []VertexID, parallelism int) (*CSR, error) {
	workers := resolveWorkers(parallelism)
	// Keep every chunk large enough that the per-chunk count arrays
	// (workers × n) and goroutine startup stay noise.
	if maxW := len(src) / (minParallelCSREdges / 4); workers > maxW {
		workers = maxW
	}
	if workers <= 1 || len(src) < minParallelCSREdges {
		return buildCSRSeq(ctx, n, src, dst)
	}
	return buildCSRParallel(ctx, n, src, dst, workers)
}

// buildCSRParallel is the parallel builder proper; tests call it
// directly to exercise the chunked path on small inputs.
func buildCSRParallel(ctx context.Context, n int, src, dst []VertexID, workers int) (*CSR, error) {
	if len(src) != len(dst) {
		return nil, fmt.Errorf("graph: src/dst length mismatch: %d vs %d", len(src), len(dst))
	}
	m := len(src)
	cp := &cancelPoller{ctx: ctx}
	// Phase 1: per-chunk degree counting and range validation. ferr
	// collects per-chunk injected faults (one slot per worker, disjoint
	// writes); the first one, in chunk order, wins.
	counts := make([][]int32, workers)
	badSrc := make([]int, workers)
	badDst := make([]int, workers)
	ferr := make([]error, workers)
	for w := range badSrc {
		badSrc[w], badDst[w] = -1, -1
	}
	runRanges(workers, m, func(w, lo, hi int) {
		if err := fault.Inject(fault.PointGraphBuildChunk); err != nil {
			ferr[w] = err
			return
		}
		cnt := make([]int32, n)
		badS, badD := -1, -1
		for row := lo; row < hi; row++ {
			if row&(cancelCheckInterval-1) == 0 && cp.poll() {
				return
			}
			s := src[row]
			if s < 0 || int(s) >= n {
				if badS < 0 {
					badS = row
				}
				continue
			}
			cnt[s]++
		}
		for row := lo; row < hi; row++ {
			if d := dst[row]; d < 0 || int(d) >= n {
				badD = row
				break
			}
		}
		counts[w], badSrc[w], badDst[w] = cnt, badS, badD
	})
	if err := canceled(ctx); err != nil {
		return nil, err
	}
	for _, err := range ferr {
		if err != nil {
			return nil, err
		}
	}
	// Report the same error the sequential builder would: the first
	// out-of-range source anywhere, else the first bad destination.
	firstBad := func(bad []int) int {
		first := -1
		for _, row := range bad {
			if row >= 0 && (first < 0 || row < first) {
				first = row
			}
		}
		return first
	}
	if row := firstBad(badSrc); row >= 0 {
		return nil, fmt.Errorf("graph: source id %d out of range [0,%d)", src[row], n)
	}
	if row := firstBad(badDst); row >= 0 {
		return nil, fmt.Errorf("graph: destination id %d out of range [0,%d)", dst[row], n)
	}
	// Phase 2 (sequential): prefix-sum the offsets while turning each
	// chunk's count into its absolute scatter cursor. Chunk w's slots
	// for vertex v start after the slots of chunks < w, which preserves
	// the sequential row order within every vertex. Cursors fit int32
	// because Perm does.
	offsets := make([]int64, n+1)
	pos := int64(0)
	for v := 0; v < n; v++ {
		if v&(cancelCheckInterval-1) == 0 {
			if err := canceled(ctx); err != nil {
				return nil, err
			}
		}
		offsets[v] = pos
		for _, cnt := range counts {
			if cnt == nil {
				continue
			}
			c := cnt[v]
			cnt[v] = int32(pos)
			pos += int64(c)
		}
	}
	offsets[n] = pos
	// Phase 3: parallel scatter, each chunk into its reserved slots.
	targets := make([]VertexID, m)
	perm := make([]int32, m)
	runRanges(workers, m, func(w, lo, hi int) {
		// ferr slots are all nil here (a phase-1 fault returned early),
		// so the scatter phase reuses them.
		if err := fault.Inject(fault.PointGraphBuildChunk); err != nil {
			ferr[w] = err
			return
		}
		cur := counts[w]
		for row := lo; row < hi; row++ {
			if row&(cancelCheckInterval-1) == 0 && cp.poll() {
				return
			}
			p := cur[src[row]]
			cur[src[row]]++
			targets[p] = dst[row]
			perm[p] = int32(row)
		}
	})
	if err := canceled(ctx); err != nil {
		return nil, err
	}
	for _, err := range ferr {
		if err != nil {
			return nil, err
		}
	}
	return &CSR{N: n, Offsets: offsets, Targets: targets, Perm: perm}, nil
}

// Reverse returns the CSR of the transposed graph. Perm entries still
// refer to the original edge rows.
func (g *CSR) Reverse() *CSR {
	m := len(g.Targets)
	src := make([]VertexID, m)
	dst := make([]VertexID, m)
	for v := VertexID(0); int(v) < g.N; v++ {
		lo, hi := g.edgeRange(v)
		for p := lo; p < hi; p++ {
			src[p] = g.Targets[p]
			dst[p] = v
		}
	}
	rev, err := BuildCSR(g.N, src, dst)
	if err != nil {
		// Cannot happen: ids come from a valid CSR.
		panic(err)
	}
	// Fix Perm to reference original rows rather than positions.
	for p := range rev.Perm {
		rev.Perm[p] = g.Perm[rev.Perm[p]]
	}
	return rev
}
