package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// buildTestCSR builds a CSR from an edge list, failing the test on
// error.
func buildTestCSR(t testing.TB, n int, edges [][2]int) *CSR {
	t.Helper()
	src := make([]VertexID, len(edges))
	dst := make([]VertexID, len(edges))
	for i, e := range edges {
		src[i] = VertexID(e[0])
		dst[i] = VertexID(e[1])
	}
	g, err := BuildCSR(n, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildCSRBasic(t *testing.T) {
	g := buildTestCSR(t, 4, [][2]int{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 0}})
	if g.NumEdges() != 5 {
		t.Fatalf("edges = %d, want 5", g.NumEdges())
	}
	if g.OutDegree(0) != 2 || g.OutDegree(1) != 1 || g.OutDegree(3) != 1 {
		t.Fatalf("degrees wrong: %d %d %d", g.OutDegree(0), g.OutDegree(1), g.OutDegree(3))
	}
	// Offsets are a prefix sum of out-degrees (the §3.2 property).
	if g.Offsets[0] != 0 || g.Offsets[4] != 5 {
		t.Fatalf("offsets = %v", g.Offsets)
	}
	for v := 0; v < 4; v++ {
		if g.Offsets[v] > g.Offsets[v+1] {
			t.Fatalf("offsets not monotone: %v", g.Offsets)
		}
	}
}

func TestBuildCSRRejectsOutOfRange(t *testing.T) {
	if _, err := BuildCSR(2, []VertexID{0, 5}, []VertexID{1, 0}); err == nil {
		t.Fatal("expected error for out-of-range source")
	}
	if _, err := BuildCSR(2, []VertexID{0}, []VertexID{-1}); err == nil {
		t.Fatal("expected error for negative destination")
	}
	if _, err := BuildCSR(2, []VertexID{0, 1}, []VertexID{1}); err == nil {
		t.Fatal("expected error for mismatched lengths")
	}
}

func TestCSRPermReferencesOriginalRows(t *testing.T) {
	// Rows deliberately unsorted by source.
	edges := [][2]int{{2, 0}, {0, 1}, {1, 2}, {0, 2}}
	g := buildTestCSR(t, 3, edges)
	seen := map[int32]bool{}
	for pos, perm := range g.Perm {
		if seen[perm] {
			t.Fatalf("row %d referenced twice", perm)
		}
		seen[perm] = true
		// The CSR entry must describe the same edge as the original
		// row.
		owner := ownerOf(g, int64(pos))
		if int(owner) != edges[perm][0] || int(g.Targets[pos]) != edges[perm][1] {
			t.Fatalf("pos %d: got (%d,%d), original row %d is (%d,%d)",
				pos, owner, g.Targets[pos], perm, edges[perm][0], edges[perm][1])
		}
	}
}

func TestReverse(t *testing.T) {
	g := buildTestCSR(t, 3, [][2]int{{0, 1}, {1, 2}, {0, 2}})
	r := g.Reverse()
	if r.OutDegree(2) != 2 || r.OutDegree(0) != 0 {
		t.Fatalf("reverse degrees wrong: deg(2)=%d deg(0)=%d", r.OutDegree(2), r.OutDegree(0))
	}
}

func TestDictIntAndString(t *testing.T) {
	d := NewIntDict(0)
	a := d.EncodeInt(100)
	b := d.EncodeInt(200)
	if a == b {
		t.Fatal("distinct keys share an id")
	}
	if d.EncodeInt(100) != a {
		t.Fatal("re-encoding changed the id")
	}
	if d.LookupInt(100) != a || d.LookupInt(999) != NoVertex {
		t.Fatal("lookup broken")
	}
	if d.Len() != 2 {
		t.Fatalf("len = %d, want 2", d.Len())
	}

	s := NewStringDict(0)
	x := s.EncodeString("ams")
	if s.LookupString("ams") != x || s.LookupString("nyc") != NoVertex {
		t.Fatal("string lookup broken")
	}
}

// referenceDistances is a naive Bellman-Ford used as the oracle for
// property tests.
func referenceDistances(n int, edges [][2]int, w []int64, src int) []int64 {
	const inf = int64(1) << 60
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	for iter := 0; iter < n; iter++ {
		changed := false
		for i, e := range edges {
			wi := int64(1)
			if w != nil {
				wi = w[i]
			}
			if dist[e[0]] != inf && dist[e[0]]+wi < dist[e[1]] {
				dist[e[1]] = dist[e[0]] + wi
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

// randomGraph draws a random directed graph from a seed.
func randomGraph(seed int64) (n int, edges [][2]int, weights []int64) {
	r := rand.New(rand.NewSource(seed))
	n = 2 + r.Intn(30)
	m := r.Intn(4 * n)
	edges = make([][2]int, m)
	weights = make([]int64, m)
	for i := range edges {
		edges[i] = [2]int{r.Intn(n), r.Intn(n)}
		weights[i] = 1 + int64(r.Intn(20))
	}
	return n, edges, weights
}

// solveAll runs the Solver for all (src,dst) pairs with one spec and
// returns dist[src][dst] with -1 for unreachable.
func solveAll(t *testing.T, g *CSR, n int, spec *Spec) [][]int64 {
	t.Helper()
	var srcs, dsts []VertexID
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			srcs = append(srcs, VertexID(s))
			dsts = append(dsts, VertexID(d))
		}
	}
	var specs []Spec
	if spec != nil {
		specs = []Spec{*spec}
	}
	sol, err := NewSolver(g).Solve(srcs, dsts, specs)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]int64, n)
	k := 0
	for s := 0; s < n; s++ {
		out[s] = make([]int64, n)
		for d := 0; d < n; d++ {
			if !sol.Reached[k] {
				out[s][d] = -1
			} else if spec == nil {
				out[s][d] = 0
			} else {
				out[s][d] = sol.CostI[0][k]
			}
			k++
		}
	}
	return out
}

// TestPropertyBFSMatchesReference checks unweighted distances against
// Bellman-Ford with unit weights on random graphs.
func TestPropertyBFSMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		n, edges, _ := randomGraph(seed)
		g := buildTestCSR(t, n, edges)
		spec := &Spec{Unit: true, UnitI: 1}
		got := solveAll(t, g, n, spec)
		for s := 0; s < n; s++ {
			ref := referenceDistances(n, edges, nil, s)
			for d := 0; d < n; d++ {
				want := ref[d]
				if want >= int64(1)<<60 {
					want = -1
				}
				if got[s][d] != want {
					t.Logf("seed %d: dist(%d,%d) = %d, want %d", seed, s, d, got[s][d], want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDijkstraRadixMatchesReference checks weighted distances
// (radix queue) against Bellman-Ford on random graphs.
func TestPropertyDijkstraRadixMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		n, edges, weights := randomGraph(seed)
		g := buildTestCSR(t, n, edges)
		spec := &Spec{WeightsI: weights}
		got := solveAll(t, g, n, spec)
		for s := 0; s < n; s++ {
			ref := referenceDistances(n, edges, weights, s)
			for d := 0; d < n; d++ {
				want := ref[d]
				if want >= int64(1)<<60 {
					want = -1
				}
				if got[s][d] != want {
					t.Logf("seed %d: dist(%d,%d) = %d, want %d", seed, s, d, got[s][d], want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyRadixEqualsBinaryHeap cross-checks the two integer
// Dijkstra implementations on random graphs.
func TestPropertyRadixEqualsBinaryHeap(t *testing.T) {
	f := func(seed int64) bool {
		n, edges, weights := randomGraph(seed)
		g := buildTestCSR(t, n, edges)
		radix := solveAll(t, g, n, &Spec{WeightsI: weights})
		bin := solveAll(t, g, n, &Spec{WeightsI: weights, ForceBinaryHeap: true})
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if radix[s][d] != bin[s][d] {
					t.Logf("seed %d: radix %d vs binheap %d at (%d,%d)", seed, radix[s][d], bin[s][d], s, d)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyFloatDijkstraMatchesInt runs float Dijkstra with integer
// valued float weights; costs must agree with the integer runs.
func TestPropertyFloatDijkstraMatchesInt(t *testing.T) {
	f := func(seed int64) bool {
		n, edges, weights := randomGraph(seed)
		g := buildTestCSR(t, n, edges)
		intD := solveAll(t, g, n, &Spec{WeightsI: weights})
		wf := make([]float64, len(weights))
		for i, w := range weights {
			wf[i] = float64(w)
		}
		var srcs, dsts []VertexID
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				srcs = append(srcs, VertexID(s))
				dsts = append(dsts, VertexID(d))
			}
		}
		sol, err := NewSolver(g).Solve(srcs, dsts, []Spec{{WeightsF: wf, Float: true}})
		if err != nil {
			t.Fatal(err)
		}
		k := 0
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				want := intD[s][d]
				if !sol.Reached[k] {
					if want != -1 {
						return false
					}
				} else if int64(sol.CostF[0][k]) != want {
					return false
				}
				k++
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyPathsAreValid checks every returned path: it starts at
// the source, ends at the destination, chains correctly, and its
// weight sum equals the reported cost.
func TestPropertyPathsAreValid(t *testing.T) {
	f := func(seed int64) bool {
		n, edges, weights := randomGraph(seed)
		g := buildTestCSR(t, n, edges)
		var srcs, dsts []VertexID
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				srcs = append(srcs, VertexID(s))
				dsts = append(dsts, VertexID(d))
			}
		}
		sol, err := NewSolver(g).Solve(srcs, dsts, []Spec{{WeightsI: weights, NeedPath: true}})
		if err != nil {
			t.Fatal(err)
		}
		for k := range srcs {
			if !sol.Reached[k] {
				continue
			}
			path := sol.Paths[0][k]
			at := int(srcs[k])
			var sum int64
			for _, row := range path {
				e := edges[row]
				if e[0] != at {
					t.Logf("seed %d: path hop starts at %d, cursor at %d", seed, e[0], at)
					return false
				}
				at = e[1]
				sum += weights[row]
			}
			if at != int(dsts[k]) {
				t.Logf("seed %d: path ends at %d, want %d", seed, at, dsts[k])
				return false
			}
			if sum != sol.CostI[0][k] {
				t.Logf("seed %d: path weight %d != cost %d", seed, sum, sol.CostI[0][k])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveHandlesNoVertexPairs(t *testing.T) {
	g := buildTestCSR(t, 2, [][2]int{{0, 1}})
	sol, err := NewSolver(g).Solve(
		[]VertexID{NoVertex, 0, 0},
		[]VertexID{0, NoVertex, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Reached[0] || sol.Reached[1] {
		t.Fatal("NoVertex endpoints must be unreachable")
	}
	if !sol.Reached[2] {
		t.Fatal("valid pair must be reachable")
	}
}

func TestSolveEmptyPairs(t *testing.T) {
	g := buildTestCSR(t, 2, [][2]int{{0, 1}})
	sol, err := NewSolver(g).Solve(nil, nil, []Spec{{Unit: true, UnitI: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Reached) != 0 {
		t.Fatal("expected empty solution")
	}
}

func TestMultipleSpecsShareTraversals(t *testing.T) {
	// 0 -> 1 with w=3 direct, or 0 -> 2 -> 1 with w=1+1.
	edges := [][2]int{{0, 1}, {0, 2}, {2, 1}}
	g := buildTestCSR(t, 3, edges)
	specs := []Spec{
		{Unit: true, UnitI: 1, NeedPath: true},       // hops: direct edge wins (1 hop)
		{WeightsI: []int64{3, 1, 1}, NeedPath: true}, // weights: detour wins (cost 2)
	}
	sol, err := NewSolver(g).Solve([]VertexID{0}, []VertexID{1}, specs)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Reached[0] {
		t.Fatal("0 must reach 1")
	}
	if sol.CostI[0][0] != 1 {
		t.Fatalf("hop cost = %d, want 1", sol.CostI[0][0])
	}
	if sol.CostI[1][0] != 2 {
		t.Fatalf("weighted cost = %d, want 2", sol.CostI[1][0])
	}
	if len(sol.Paths[0][0]) != 1 || len(sol.Paths[1][0]) != 2 {
		t.Fatalf("path lengths: %d and %d, want 1 and 2", len(sol.Paths[0][0]), len(sol.Paths[1][0]))
	}
}

func TestValidateWeights(t *testing.T) {
	if err := ValidateWeights(&Spec{Unit: true, UnitI: 1}); err != nil {
		t.Fatal(err)
	}
	if err := ValidateWeights(&Spec{Unit: true, UnitI: 0}); err == nil {
		t.Fatal("zero unit weight must be rejected")
	}
	if err := ValidateWeights(&Spec{Unit: true, Float: true, UnitF: -1}); err == nil {
		t.Fatal("negative float unit weight must be rejected")
	}
	if err := ValidateWeights(&Spec{WeightsI: []int64{1, 2, 0}}); err == nil {
		t.Fatal("zero weight must be rejected")
	}
	if err := ValidateWeights(&Spec{WeightsF: []float64{0.5, -0.1}}); err == nil {
		t.Fatal("negative weight must be rejected")
	}
	if err := ValidateWeights(&Spec{WeightsF: []float64{0.5, 0.1}}); err != nil {
		t.Fatal(err)
	}
}

func TestEpochReuseAcrossManySources(t *testing.T) {
	// Run enough solves on one scratch state to exercise epoch reuse.
	n := 50
	var edges [][2]int
	for i := 0; i+1 < n; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	g := buildTestCSR(t, n, edges)
	solver := NewSolver(g)
	for round := 0; round < 200; round++ {
		s := VertexID(round % n)
		sol, err := solver.Solve([]VertexID{s}, []VertexID{VertexID(n - 1)}, []Spec{{Unit: true, UnitI: 1}})
		if err != nil {
			t.Fatal(err)
		}
		if !sol.Reached[0] {
			t.Fatalf("round %d: %d must reach %d", round, s, n-1)
		}
		if sol.CostI[0][0] != int64(n-1-int(s)) {
			t.Fatalf("round %d: cost = %d, want %d", round, sol.CostI[0][0], n-1-int(s))
		}
	}
}
