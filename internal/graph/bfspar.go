package graph

import (
	"context"
	"sync/atomic"

	"graphsql/internal/fault"
	"graphsql/internal/par"
)

// Frontier-parallel (level-synchronous) BFS. The batched solver
// parallelizes *across* sources, which leaves a single-source query on
// a huge graph running one sequential traversal on one core. This file
// covers that case: within one traversal, each BFS level partitions the
// current frontier over the intra-source worker budget, workers relax
// their chunks into private candidate buffers, and a sequential merge
// reassembles the next frontier. The structure is the level-synchronous
// product construction of the regular-path-query literature (see
// PAPERS.md), restricted to plain BFS, and is direction-optimizing
// ready: a level is an explicit vertex set, so a future bottom-up pass
// can swap in per level without changing the merge contract.
//
// Determinism contract: the result is bit-identical to the sequential
// queue BFS — same visited set, same dist, same parent edge per vertex,
// same queue order, same early-exit point. Sequential BFS discovers a
// vertex through the first edge in (frontier position, edge scan order)
// that reaches it; the parallel phase reproduces that winner exactly:
//
//  1. Claim phase (parallel): workers scan disjoint ascending frontier
//     ranges. Every edge to a not-yet-visited vertex carries a priority
//     key — frontier position in the high bits, the edge's scan ordinal
//     within its frontier vertex in the low bits — and claims the
//     target by an atomic compare-and-swap min-reduction on claim[v].
//     A worker that lowers claim[v] records a candidate; keys within a
//     worker increase monotonically, so each worker records a vertex at
//     most once and its buffer stays sorted by key.
//  2. Merge phase (sequential): buffers are drained in worker order —
//     ascending frontier ranges, so ascending key order globally. A
//     candidate whose key still matches claim[v] is the global minimum,
//     i.e. exactly the edge sequential BFS would have used; it is
//     visited, appended to the queue, and its claim slot is reset so
//     the array is all-free again for the next level (no O(V) clear).
//
// Losing candidates find claim[v] either reset (winner merged earlier)
// or holding a smaller key, and are skipped. Early exit mid-merge stops
// at the same discovery sequential BFS stops at; the remaining buffers
// are only drained to restore the claim-free invariant.
const (
	// minParallelFrontierVar is the default for minParallelFrontier.
	minParallelFrontierDefault = 1 << 10
)

// minParallelFrontier gates per-level parallelism: levels smaller than
// this are expanded on the calling goroutine (the sequential fast path
// of the level loop). A variable so tests can force the parallel path
// on small graphs.
var minParallelFrontier = minParallelFrontierDefault

// claimFree marks an unclaimed slot; every real key is smaller (keys
// use at most 63 bits: 31 for the frontier position, 32 for the scan
// ordinal).
const claimFree = ^uint64(0)

// bfsParState is the frontier-parallel scratch of one bfsState: the
// per-vertex claim array and the per-worker candidate buffers.
type bfsParState struct {
	// claim holds the minimum priority key claimed for each vertex this
	// level, claimFree outside the claim/merge window. Accessed with
	// sync/atomic during the claim phase.
	claim []uint64
	bufs  [][]bfsCandidate
}

// bfsCandidate is one recorded discovery: the target vertex, the edge
// row that discovered it, and its priority key (frontier position <<
// 32 | scan ordinal). The parent vertex is recovered from the key.
type bfsCandidate struct {
	key uint64
	v   VertexID
	row int32
}

func (s *bfsState) parState(workers int) *bfsParState {
	if s.par == nil {
		ps := &bfsParState{claim: make([]uint64, len(s.epoch))}
		for i := range ps.claim {
			ps.claim[i] = claimFree
		}
		s.par = ps
	}
	for len(s.par.bufs) < workers {
		s.par.bufs = append(s.par.bufs, nil)
	}
	return s.par
}

// runBFSParallel is runBFS with level-synchronous intra-source
// parallelism over up to `workers` workers. Results are bit-identical
// to runBFS (see the determinism contract above). ctx is polled once
// per level, so cancellation aborts within one frontier level.
func (s *bfsState) runBFSParallel(g *CSR, delta *Delta, src VertexID, wanted []bool, wantLeft, workers int, ctx context.Context) (int, error) {
	s.reset()
	s.visit(src, 0, -1, NoVertex)
	reached := 0
	if wanted[src] {
		reached++
		wantLeft--
		if wantLeft == 0 {
			return reached, nil
		}
	}
	s.queue = append(s.queue, src)
	ps := s.parState(workers)

	levelLo := 0
	for level := int64(1); levelLo < len(s.queue); level++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return reached, err
			}
		}
		if err := fault.Inject(fault.PointSolverLevel); err != nil {
			return reached, err
		}
		levelHi := len(s.queue)
		frontier := s.queue[levelLo:levelHi]
		levelLo = levelHi
		if s.onLevel != nil {
			// frontier holds the vertices at distance level-1 about to be
			// expanded — the same accounting the sequential path reports.
			s.onLevel(level-1, len(frontier))
		}

		if len(frontier) < minParallelFrontier || workers <= 1 {
			// Small level: expand on the calling goroutine. This IS the
			// sequential queue BFS restricted to one level, so the
			// determinism contract holds trivially.
			for fp := range frontier {
				u := frontier[fp]
				stop := false
				relax := func(v VertexID, row int32) {
					if s.visited(v) {
						return
					}
					s.visit(v, level, row, u)
					if wanted[v] {
						reached++
						wantLeft--
						if wantLeft == 0 {
							stop = true
							return
						}
					}
					s.queue = append(s.queue, v)
				}
				if int(u) < g.N {
					lo, hi := g.edgeRange(u)
					for p := lo; p < hi && !stop; p++ {
						relax(g.Targets[p], g.Perm[p])
					}
				}
				if delta != nil && !stop {
					for _, de := range delta.Adj[u] {
						relax(de.To, de.Row)
						if stop {
							break
						}
					}
				}
				if stop {
					return reached, nil
				}
			}
			continue
		}

		// Claim phase: workers scan disjoint ascending frontier ranges.
		// epoch is read-only during this phase (writes happen only in
		// the merge below, ordered by the fork/join of par.Ranges), so
		// the plain visited() read is race-free; claim goes through
		// sync/atomic.
		nr := par.NumRanges(workers, len(frontier))
		par.Ranges(workers, len(frontier), func(worker, lo, hi int) {
			buf := ps.bufs[worker][:0]
			for fp := lo; fp < hi; fp++ {
				u := frontier[fp]
				ordinal := uint64(0)
				relax := func(v VertexID, row int32) {
					if s.visited(v) {
						ordinal++
						return
					}
					key := uint64(fp)<<32 | ordinal
					ordinal++
					have := atomic.LoadUint64(&ps.claim[v])
					for key < have {
						if atomic.CompareAndSwapUint64(&ps.claim[v], have, key) {
							buf = append(buf, bfsCandidate{key: key, v: v, row: row})
							break
						}
						have = atomic.LoadUint64(&ps.claim[v])
					}
				}
				if int(u) < g.N {
					lo, hi := g.edgeRange(u)
					for p := lo; p < hi; p++ {
						relax(g.Targets[p], g.Perm[p])
					}
				}
				if delta != nil {
					for _, de := range delta.Adj[u] {
						relax(de.To, de.Row)
					}
				}
			}
			ps.bufs[worker] = buf
		})

		// Merge phase: drain buffers in worker order == ascending key
		// order. Winners (key still in claim[v]) are exactly the edges
		// sequential BFS would discover each vertex through, in the
		// order it would discover them.
		for w := 0; w < nr; w++ {
			for ci, c := range ps.bufs[w] {
				if atomic.LoadUint64(&ps.claim[c.v]) != c.key {
					continue // lost to a smaller key; winner already merged
				}
				atomic.StoreUint64(&ps.claim[c.v], claimFree)
				s.visit(c.v, level, c.row, frontier[c.key>>32])
				if wanted[c.v] {
					reached++
					wantLeft--
					if wantLeft == 0 {
						ps.resetClaims(w, ci+1, nr)
						return reached, nil
					}
				}
				s.queue = append(s.queue, c.v)
			}
		}
	}
	return reached, nil
}

// resetClaims restores the claim-free invariant for candidates not yet
// merged when the level loop exits early (all wanted vertices settled
// mid-merge). Re-freeing an already-freed slot is harmless.
func (ps *bfsParState) resetClaims(fromBuf, fromIdx, nr int) {
	for w := fromBuf; w < nr; w++ {
		start := 0
		if w == fromBuf {
			start = fromIdx
		}
		for _, c := range ps.bufs[w][start:] {
			atomic.StoreUint64(&ps.claim[c.v], claimFree)
		}
	}
}
