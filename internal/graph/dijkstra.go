package graph

import (
	"container/heap"
	"context"
)

// dijkstraState is the shared per-vertex scratch for both Dijkstra
// variants (radix queue for integer weights, binary heap for float
// weights). Like bfsState it uses epoch stamping so per-source runs do
// not pay an O(V) clear.
type dijkstraState struct {
	distI []int64
	distF []float64
	// parentRow / parentVertex track the relaxed edge as an edge-table
	// row and its source endpoint.
	parentRow    []int32
	parentVertex []VertexID
	settled      []bool
	epoch        []uint32
	cur          uint32

	rq *radixHeap
	bq floatQueue
}

func newDijkstraState(n int) *dijkstraState {
	return &dijkstraState{
		distI:        make([]int64, n),
		distF:        make([]float64, n),
		parentRow:    make([]int32, n),
		parentVertex: make([]VertexID, n),
		settled:      make([]bool, n),
		epoch:        make([]uint32, n),
		rq:           newRadixHeap(),
	}
}

func (s *dijkstraState) reset() {
	s.cur++
	if s.cur == 0 {
		for i := range s.epoch {
			s.epoch[i] = 0
		}
		s.cur = 1
	}
	s.rq.reset()
	s.bq = s.bq[:0]
}

func (s *dijkstraState) seen(v VertexID) bool { return s.epoch[v] == s.cur }

func (s *dijkstraState) touch(v VertexID) {
	s.epoch[v] = s.cur
	s.settled[v] = false
}

// runInt runs Dijkstra with the radix queue over integer weights.
// weights is in edge-table row order. delta (optional) supplies edges
// appended after the CSR snapshot. It settles vertices until all
// wanted destinations are settled or the queue empties, returning the
// number of wanted vertices reached. ctx (optional) is polled every
// cancelCheckInterval pops so one huge traversal aborts mid-flight.
func (s *dijkstraState) runInt(g *CSR, delta *Delta, src VertexID, weights []int64, wanted []bool, wantLeft int, ctx context.Context) (int, error) {
	s.reset()
	s.touch(src)
	s.distI[src] = 0
	s.parentRow[src] = -1
	s.parentVertex[src] = NoVertex
	s.rq.push(0, src)
	reached, pops := 0, 0
	for s.rq.len() > 0 {
		if ctx != nil {
			if pops++; pops&(cancelCheckInterval-1) == 0 {
				if err := ctx.Err(); err != nil {
					return reached, err
				}
			}
		}
		_, u := s.rq.popMin()
		if s.settled[u] {
			continue // stale duplicate entry (lazy deletion)
		}
		s.settled[u] = true
		if wanted[u] {
			reached++
			wantLeft--
			if wantLeft == 0 {
				return reached, nil
			}
		}
		du := s.distI[u]
		relax := func(v VertexID, row int32) {
			nd := du + weights[row]
			if !s.seen(v) {
				s.touch(v)
				s.distI[v] = nd
				s.parentRow[v] = row
				s.parentVertex[v] = u
				s.rq.push(nd, v)
			} else if !s.settled[v] && nd < s.distI[v] {
				s.distI[v] = nd
				s.parentRow[v] = row
				s.parentVertex[v] = u
				s.rq.push(nd, v)
			}
		}
		if int(u) < g.N {
			lo, hi := g.edgeRange(u)
			for p := lo; p < hi; p++ {
				relax(g.Targets[p], g.Perm[p])
			}
		}
		if delta != nil {
			for _, de := range delta.Adj[u] {
				relax(de.To, de.Row)
			}
		}
	}
	return reached, nil
}

// runFloat runs Dijkstra with a binary heap over float weights.
func (s *dijkstraState) runFloat(g *CSR, delta *Delta, src VertexID, weights []float64, wanted []bool, wantLeft int, ctx context.Context) (int, error) {
	s.reset()
	s.touch(src)
	s.distF[src] = 0
	s.parentRow[src] = -1
	s.parentVertex[src] = NoVertex
	heap.Push(&s.bq, floatItem{0, src})
	reached, pops := 0, 0
	for s.bq.Len() > 0 {
		if ctx != nil {
			if pops++; pops&(cancelCheckInterval-1) == 0 {
				if err := ctx.Err(); err != nil {
					return reached, err
				}
			}
		}
		it := heap.Pop(&s.bq).(floatItem)
		u := it.v
		if s.settled[u] {
			continue
		}
		s.settled[u] = true
		if wanted[u] {
			reached++
			wantLeft--
			if wantLeft == 0 {
				return reached, nil
			}
		}
		du := s.distF[u]
		relax := func(v VertexID, row int32) {
			nd := du + weights[row]
			if !s.seen(v) {
				s.touch(v)
				s.distF[v] = nd
				s.parentRow[v] = row
				s.parentVertex[v] = u
				heap.Push(&s.bq, floatItem{nd, v})
			} else if !s.settled[v] && nd < s.distF[v] {
				s.distF[v] = nd
				s.parentRow[v] = row
				s.parentVertex[v] = u
				heap.Push(&s.bq, floatItem{nd, v})
			}
		}
		if int(u) < g.N {
			lo, hi := g.edgeRange(u)
			for p := lo; p < hi; p++ {
				relax(g.Targets[p], g.Perm[p])
			}
		}
		if delta != nil {
			for _, de := range delta.Adj[u] {
				relax(de.To, de.Row)
			}
		}
	}
	return reached, nil
}

// pathTo reconstructs the shortest path to v as edge-table rows. The
// second return value reports whether v was settled by the current run;
// the scratch arrays carry stale values from earlier epochs, so the
// parent chain of an unsettled vertex is garbage.
func (s *dijkstraState) pathTo(v VertexID) ([]int32, bool) {
	if !s.seen(v) || !s.settled[v] {
		return nil, false
	}
	var rev []int32
	for s.parentRow[v] >= 0 {
		rev = append(rev, s.parentRow[v])
		v = s.parentVertex[v]
	}
	// Reverse into traversal order.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, true
}

// ownerOf returns the source vertex owning CSR position p; used by
// tests to validate the CSR layout.
func ownerOf(g *CSR, p int64) VertexID {
	lo, hi := 0, g.N
	for lo < hi {
		mid := (lo + hi) / 2
		if g.Offsets[mid+1] <= p {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return VertexID(lo)
}

// floatQueue is a container/heap binary heap of (dist, vertex) pairs.
type floatQueue []floatItem

type floatItem struct {
	d float64
	v VertexID
}

func (q floatQueue) Len() int            { return len(q) }
func (q floatQueue) Less(i, j int) bool  { return q[i].d < q[j].d }
func (q floatQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *floatQueue) Push(x interface{}) { *q = append(*q, x.(floatItem)) }
func (q *floatQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// intQueue is a binary-heap Dijkstra queue over integer distances, used
// only by the E5 ablation benchmark comparing the radix queue against a
// conventional heap.
type intQueue []intItem

type intItem struct {
	d int64
	v VertexID
}

func (q intQueue) Len() int            { return len(q) }
func (q intQueue) Less(i, j int) bool  { return q[i].d < q[j].d }
func (q intQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *intQueue) Push(x interface{}) { *q = append(*q, x.(intItem)) }
func (q *intQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// runIntBinaryHeap is runInt with a binary heap instead of the radix
// queue (ablation E5).
func (s *dijkstraState) runIntBinaryHeap(g *CSR, delta *Delta, src VertexID, weights []int64, wanted []bool, wantLeft int, ctx context.Context) (int, error) {
	s.reset()
	s.touch(src)
	s.distI[src] = 0
	s.parentRow[src] = -1
	s.parentVertex[src] = NoVertex
	var bq intQueue
	heap.Push(&bq, intItem{0, src})
	reached, pops := 0, 0
	for bq.Len() > 0 {
		if ctx != nil {
			if pops++; pops&(cancelCheckInterval-1) == 0 {
				if err := ctx.Err(); err != nil {
					return reached, err
				}
			}
		}
		it := heap.Pop(&bq).(intItem)
		u := it.v
		if s.settled[u] {
			continue
		}
		s.settled[u] = true
		if wanted[u] {
			reached++
			wantLeft--
			if wantLeft == 0 {
				return reached, nil
			}
		}
		du := s.distI[u]
		relax := func(v VertexID, row int32) {
			nd := du + weights[row]
			if !s.seen(v) {
				s.touch(v)
				s.distI[v] = nd
				s.parentRow[v] = row
				s.parentVertex[v] = u
				heap.Push(&bq, intItem{nd, v})
			} else if !s.settled[v] && nd < s.distI[v] {
				s.distI[v] = nd
				s.parentRow[v] = row
				s.parentVertex[v] = u
				heap.Push(&bq, intItem{nd, v})
			}
		}
		if int(u) < g.N {
			lo, hi := g.edgeRange(u)
			for p := lo; p < hi; p++ {
				relax(g.Targets[p], g.Perm[p])
			}
		}
		if delta != nil {
			for _, de := range delta.Adj[u] {
				relax(de.To, de.Row)
			}
		}
	}
	return reached, nil
}
