package graph

import (
	"context"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"
)

// forceFrontierParallel lowers the per-level gate so tiny test graphs
// exercise the claim/merge machinery, restoring it on cleanup.
func forceFrontierParallel(t *testing.T) {
	t.Helper()
	prev := minParallelFrontier
	minParallelFrontier = 1
	t.Cleanup(func() { minParallelFrontier = prev })
}

// requireSameBFSState asserts two bfsStates agree on everything the
// solver reads: the visited set, distances, parent edges and the queue
// (discovery) order.
func requireSameBFSState(t *testing.T, n int, seq, par *bfsState) {
	t.Helper()
	if !reflect.DeepEqual(seq.queue, par.queue) {
		t.Fatalf("queue order differs:\nseq %v\npar %v", seq.queue, par.queue)
	}
	for v := VertexID(0); int(v) < n; v++ {
		if seq.visited(v) != par.visited(v) {
			t.Fatalf("vertex %d: visited %v (seq) vs %v (par)", v, seq.visited(v), par.visited(v))
		}
		if !seq.visited(v) {
			continue
		}
		if seq.dist[v] != par.dist[v] || seq.parentRow[v] != par.parentRow[v] || seq.parentVertex[v] != par.parentVertex[v] {
			t.Fatalf("vertex %d: (dist,row,parent) seq (%d,%d,%d) vs par (%d,%d,%d)",
				v, seq.dist[v], seq.parentRow[v], seq.parentVertex[v],
				par.dist[v], par.parentRow[v], par.parentVertex[v])
		}
		sp, sok := seq.pathTo(v)
		pp, pok := par.pathTo(v)
		if sok != pok || !reflect.DeepEqual(sp, pp) {
			t.Fatalf("vertex %d: path differs: %v/%v vs %v/%v", v, sp, sok, pp, pok)
		}
	}
}

// TestBFSParallelMatchesSequential is the state-level equivalence test
// of the frontier-parallel BFS: for random graphs (with and without a
// delta), random sources and random early-exit destination sets, the
// parallel traversal must leave scratch state — visited set, dist,
// parent edges, queue order — identical to the sequential queue BFS,
// at several worker counts, with the per-level gate forced open.
// State reuse across trials exercises the epoch stamping and the
// claim-free invariant after early exits.
func TestBFSParallelMatchesSequential(t *testing.T) {
	forceFrontierParallel(t)
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		w := makeWorkload(rng, trial%2 == 1)
		seq := newBFSState(w.n)
		pars := []*bfsState{newBFSState(w.n), newBFSState(w.n), newBFSState(w.n)}
		workerCounts := []int{2, 3, 8}
		// Several runs per state to exercise epoch/claim reuse.
		for run := 0; run < 4; run++ {
			src := VertexID(rng.Intn(w.n))
			wanted := make([]bool, w.n)
			distinct := 0
			for i := 0; i < rng.Intn(4); i++ {
				d := rng.Intn(w.n)
				if !wanted[d] {
					wanted[d] = true
					distinct++
				}
			}
			wantReached, err := seq.runBFS(w.g, w.delta, src, wanted, distinct, nil)
			if err != nil {
				t.Fatal(err)
			}
			for i, par := range pars {
				gotReached, err := par.runBFSParallel(w.g, w.delta, src, wanted, distinct, workerCounts[i], nil)
				if err != nil {
					t.Fatal(err)
				}
				if gotReached != wantReached {
					t.Fatalf("trial %d run %d workers %d: reached %d, want %d",
						trial, run, workerCounts[i], gotReached, wantReached)
				}
				requireSameBFSState(t, w.n, seq, par)
			}
		}
	}
}

// TestSolverIntraSourceMatchesSequential checks the solver wiring: a
// batch with fewer source groups than the worker budget routes through
// the frontier-parallel BFS and still produces a Solution deeply equal
// to the sequential one, including paths and across scratch reuse.
func TestSolverIntraSourceMatchesSequential(t *testing.T) {
	forceFrontierParallel(t)
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 150; trial++ {
		w := makeWorkload(rng, trial%2 == 1)
		// Collapse to 1-3 distinct sources so groups < budget and the
		// leftover workers go to frontier parallelism.
		distinctSrcs := 1 + rng.Intn(3)
		for i := range w.srcs {
			if w.srcs[i] != NoVertex {
				w.srcs[i] = VertexID(rng.Intn(distinctSrcs) * (w.n / 4) % w.n)
			}
		}
		specs := w.randomSpecs(rng)

		seq := NewSolverWithDelta(w.g, w.delta)
		seq.Parallelism = 1
		want, err := seq.Solve(w.srcs, w.dsts, specs)
		if err != nil {
			t.Fatal(err)
		}

		par := NewSolverWithDelta(w.g, w.delta)
		par.Parallelism = 8
		par.forceParallel = true
		if got := par.intraWorkers(distinctSrcs, distinctSrcs); got < 2 {
			t.Fatalf("trial %d: intraWorkers(%d) = %d, want >= 2", trial, distinctSrcs, got)
		}
		got, err := par.Solve(w.srcs, w.dsts, specs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("trial %d: intra-parallel solution differs\nseq: %+v\npar: %+v", trial, want, got)
		}
		again, err := par.Solve(w.srcs, w.dsts, specs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, again) {
			t.Fatalf("trial %d: second intra-parallel solve differs", trial)
		}
	}
}

// TestBFSPathToUnreached is the regression test for the stale-scratch
// bug: pathTo on a vertex the current run never visited used to read
// dist/parentRow from an earlier epoch and fabricate a garbage path.
// It must report not-reached instead — in particular for a vertex a
// *previous* run did visit.
func TestBFSPathToUnreached(t *testing.T) {
	// 0 -> 1 -> 2, and isolated 3; 2 unreachable from 1's component
	// when starting at 2.
	g, err := BuildCSR(4, []VertexID{0, 1}, []VertexID{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	s := newBFSState(4)
	wanted := make([]bool, 4)
	wanted[2] = true
	if reached, _ := s.runBFS(g, nil, 0, wanted, 1, nil); reached != 1 {
		t.Fatalf("first run: reached = %d, want 1", reached)
	}
	if p, ok := s.pathTo(2); !ok || len(p) != 2 {
		t.Fatalf("first run: pathTo(2) = %v, %v; want 2-hop path", p, ok)
	}
	// Second run from the isolated vertex: 2 keeps its stale dist=2,
	// parentRow scratch from the first epoch, but must read as
	// not-reached now.
	wanted[2] = false
	wanted[0] = true
	if reached, _ := s.runBFS(g, nil, 3, wanted, 1, nil); reached != 0 {
		t.Fatal("second run reached a vertex from the isolated source")
	}
	for _, v := range []VertexID{0, 1, 2} {
		if p, ok := s.pathTo(v); ok || p != nil {
			t.Fatalf("pathTo(%d) after isolated run = %v, %v; want nil, false", v, p, ok)
		}
	}
	// Same guard on the Dijkstra scratch.
	d := newDijkstraState(4)
	weights := []int64{1, 1}
	if reached, _ := d.runInt(g, nil, 0, weights, wanted[:], 1, nil); reached != 1 {
		t.Fatal("dijkstra first run did not reach 0... (source is wanted)")
	}
	if _, err := d.runInt(g, nil, 3, weights, make([]bool, 4), 0, nil); err != nil {
		t.Fatal(err)
	}
	if p, ok := d.pathTo(2); ok || p != nil {
		t.Fatalf("dijkstra pathTo(2) after isolated run = %v, %v; want nil, false", p, ok)
	}
}

// countdownCtx is a context whose Err flips to Canceled after a fixed
// number of Err calls — a deterministic stand-in for "the client
// disconnects while the traversal is in flight" that lets tests assert
// exactly how much work runs after cancellation is observable.
type countdownCtx struct {
	context.Context
	left atomic.Int64
}

func newCountdownCtx(calls int64) *countdownCtx {
	c := &countdownCtx{Context: context.Background()}
	c.left.Store(calls)
	return c
}

func (c *countdownCtx) Err() error {
	if c.left.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// layeredGraph builds width×depth vertices arranged in depth levels
// with complete bipartite edges between consecutive levels, plus a
// root (vertex 0) fanning into level 0.
func layeredGraph(t *testing.T, width, depth int) *CSR {
	t.Helper()
	id := func(level, i int) VertexID { return VertexID(1 + level*width + i) }
	var src, dst []VertexID
	for i := 0; i < width; i++ {
		src = append(src, 0)
		dst = append(dst, id(0, i))
	}
	for l := 0; l+1 < depth; l++ {
		for i := 0; i < width; i++ {
			for j := 0; j < width; j++ {
				src = append(src, id(l, i))
				dst = append(dst, id(l+1, j))
			}
		}
	}
	g, err := BuildCSR(1+width*depth, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestFrontierParallelCancelWithinOneLevel asserts the acceptance
// criterion: the frontier-parallel BFS polls its context at every
// level boundary, so it stops expanding within one frontier level of
// the cancellation becoming observable.
func TestFrontierParallelCancelWithinOneLevel(t *testing.T) {
	forceFrontierParallel(t)
	const width, depth = 32, 40
	g := layeredGraph(t, width, depth)
	s := newBFSState(g.N)
	wanted := make([]bool, g.N)

	// Err goes canceled on its 6th poll: the level loop has expanded at
	// most 5 levels (root + 4 bipartite layers) and must not start a
	// 6th.
	ctx := newCountdownCtx(5)
	reached, err := s.runBFSParallel(g, nil, 0, wanted, 0, 4, ctx)
	if err == nil {
		t.Fatal("canceled traversal returned nil error")
	}
	if reached != 0 {
		t.Fatalf("reached = %d with empty wanted set", reached)
	}
	visited := len(s.queue)
	if limit := 1 + 5*width; visited > limit {
		t.Fatalf("visited %d vertices after cancellation, want <= %d (one extra level)", visited, limit)
	}
	if visited == g.N {
		t.Fatal("traversal ran to completion despite cancellation")
	}
	// The claim-free invariant must survive the abort: a fresh run on
	// the same scratch still matches a sequential traversal.
	seq := newBFSState(g.N)
	if _, err := seq.runBFS(g, nil, 0, wanted, 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.runBFSParallel(g, nil, 0, wanted, 0, 4, nil); err != nil {
		t.Fatal(err)
	}
	requireSameBFSState(t, g.N, seq, s)
}

// TestSequentialTraversalCancelGranularity asserts the sequential
// fallbacks poll too: queue BFS and both Dijkstra variants abort
// within cancelCheckInterval pops of cancellation instead of running
// the traversal to completion (the old source-group granularity).
func TestSequentialTraversalCancelGranularity(t *testing.T) {
	// A chain: every dequeue visits exactly one new vertex, so the
	// visited count measures the post-cancel overrun directly.
	n := 4 * cancelCheckInterval
	src := make([]VertexID, n-1)
	dst := make([]VertexID, n-1)
	weights := make([]int64, n-1)
	for i := range src {
		src[i], dst[i], weights[i] = VertexID(i), VertexID(i+1), 1
	}
	g, err := BuildCSR(n, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	wanted := make([]bool, n)

	s := newBFSState(n)
	if _, err := s.runBFS(g, nil, 0, wanted, 0, newCountdownCtx(1)); err == nil {
		t.Fatal("canceled BFS returned nil error")
	}
	if got, limit := len(s.queue), 2*cancelCheckInterval+2; got > limit {
		t.Fatalf("BFS visited %d vertices after cancellation, want <= %d", got, limit)
	}

	d := newDijkstraState(n)
	countSettled := func() int {
		c := 0
		for v := 0; v < n; v++ {
			if d.seen(VertexID(v)) && d.settled[v] {
				c++
			}
		}
		return c
	}
	if _, err := d.runInt(g, nil, 0, weights, wanted, 0, newCountdownCtx(1)); err == nil {
		t.Fatal("canceled Dijkstra (radix) returned nil error")
	}
	if got, limit := countSettled(), 2*cancelCheckInterval+2; got > limit {
		t.Fatalf("Dijkstra settled %d vertices after cancellation, want <= %d", got, limit)
	}
	if _, err := d.runIntBinaryHeap(g, nil, 0, weights, wanted, 0, newCountdownCtx(1)); err == nil {
		t.Fatal("canceled Dijkstra (binary heap) returned nil error")
	}
	fweights := make([]float64, len(weights))
	for i := range fweights {
		fweights[i] = 1
	}
	if _, err := d.runFloat(g, nil, 0, fweights, wanted, 0, newCountdownCtx(1)); err == nil {
		t.Fatal("canceled Dijkstra (float) returned nil error")
	}
}

// TestSolverCancelSingleTraversal checks the end-to-end contract at
// the Solver level: a single-source solve (one group — the case the
// old source-group granularity could never abort) returns the
// context's error once canceled mid-traversal, for both BFS and
// Dijkstra specs.
func TestSolverCancelSingleTraversal(t *testing.T) {
	n := 4 * cancelCheckInterval
	src := make([]VertexID, n-1)
	dst := make([]VertexID, n-1)
	weights := make([]int64, n-1)
	for i := range src {
		src[i], dst[i], weights[i] = VertexID(i), VertexID(i+1), 1
	}
	g, err := BuildCSR(n, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []Spec{{Unit: true, UnitI: 1}, {WeightsI: weights}} {
		s := NewSolver(g)
		// 2 polls: one consumed at the group boundary, the next inside
		// the traversal.
		s.Ctx = newCountdownCtx(2)
		if _, err := s.Solve([]VertexID{0}, []VertexID{VertexID(n - 1)}, []Spec{spec}); err != context.Canceled {
			t.Fatalf("spec %+v: err = %v, want context.Canceled", spec, err)
		}
	}
}
