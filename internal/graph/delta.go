package graph

// Delta holds edges appended after a CSR snapshot was built, keyed by
// source vertex. It answers the paper's §6 concern that graph indices
// "need to be amenable to the updates on the underlying tables,
// challenging the currently adopted runtime CSR representation": the
// CSR stays immutable, appended edges live here, and traversals visit
// both. When the delta grows past a threshold the owner rebuilds the
// snapshot (see core.DynamicGraph).
type Delta struct {
	// N is the total vertex count including vertices that only appear
	// in delta edges (the CSR knows ids < CSR.N only).
	N int
	// Adj maps a source vertex to its appended out-edges.
	Adj map[VertexID][]DeltaEdge
	// Edges counts the appended edges.
	Edges int
}

// DeltaEdge is one appended edge: its target and its edge-table row
// (for weights and path reconstruction).
type DeltaEdge struct {
	To  VertexID
	Row int32
}

// NewDelta returns an empty delta over a snapshot with n vertices.
func NewDelta(n int) *Delta {
	return &Delta{N: n, Adj: make(map[VertexID][]DeltaEdge)}
}

// Add appends one edge. Vertex ids beyond the current N grow it.
func (d *Delta) Add(src, dst VertexID, row int32) {
	d.Adj[src] = append(d.Adj[src], DeltaEdge{To: dst, Row: row})
	if int(src) >= d.N {
		d.N = int(src) + 1
	}
	if int(dst) >= d.N {
		d.N = int(dst) + 1
	}
	d.Edges++
}
