package graph

import (
	"container/heap"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestRadixHeapBasicOrder(t *testing.T) {
	h := newRadixHeap()
	keys := []int64{5, 1, 9, 3, 3, 7}
	for i, k := range keys {
		h.push(k, VertexID(i))
	}
	sorted := append([]int64(nil), keys...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	for _, want := range sorted {
		got, _ := h.popMin()
		if got != want {
			t.Fatalf("popMin = %d, want %d", got, want)
		}
	}
	if h.len() != 0 {
		t.Fatalf("len = %d after draining", h.len())
	}
}

func TestRadixHeapMonotoneInterleaving(t *testing.T) {
	// Dijkstra-style usage: pushes interleave with pops, every pushed
	// key >= the last popped minimum.
	h := newRadixHeap()
	r := rand.New(rand.NewSource(7))
	h.push(0, 0)
	last := int64(0)
	var popped []int64
	for i := 0; i < 10000; i++ {
		if h.len() > 0 && (r.Intn(2) == 0 || i > 9000) {
			k, _ := h.popMin()
			if k < last {
				t.Fatalf("non-monotone pop: %d after %d", k, last)
			}
			last = k
			popped = append(popped, k)
		} else {
			h.push(last+int64(r.Intn(50)), VertexID(i))
		}
	}
	for i := 1; i < len(popped); i++ {
		if popped[i] < popped[i-1] {
			t.Fatalf("pop sequence not sorted at %d", i)
		}
	}
}

func TestRadixHeapLargeKeys(t *testing.T) {
	h := newRadixHeap()
	keys := []int64{1 << 40, 1, 1 << 62, 1 << 20, 0, 1<<62 + 1}
	for i, k := range keys {
		h.push(k, VertexID(i))
	}
	want := append([]int64(nil), keys...)
	sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
	for _, w := range want {
		g, _ := h.popMin()
		if g != w {
			t.Fatalf("got %d, want %d", g, w)
		}
	}
}

func TestRadixHeapReset(t *testing.T) {
	h := newRadixHeap()
	h.push(5, 0)
	h.push(9, 1)
	h.reset()
	if h.len() != 0 {
		t.Fatal("reset did not empty the heap")
	}
	// After reset the pivot is back at 0; small keys are legal again.
	h.push(1, 2)
	if k, v := h.popMin(); k != 1 || v != 2 {
		t.Fatalf("got (%d,%d), want (1,2)", k, v)
	}
}

// TestPropertyRadixHeapMatchesContainerHeap feeds identical monotone
// workloads to the radix heap and container/heap and compares the pop
// sequences.
func TestPropertyRadixHeapMatchesContainerHeap(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rh := newRadixHeap()
		var bh intQueue
		last := int64(0)
		rh.push(0, 0)
		heap.Push(&bh, intItem{0, 0})
		for i := 0; i < 400; i++ {
			if rh.len() > 0 && r.Intn(2) == 0 {
				rk, _ := rh.popMin()
				bi := heap.Pop(&bh).(intItem)
				if rk != bi.d {
					t.Logf("seed %d: radix %d vs heap %d", seed, rk, bi.d)
					return false
				}
				last = rk
			} else {
				k := last + int64(r.Intn(1000))
				rh.push(k, VertexID(i))
				heap.Push(&bh, intItem{k, VertexID(i)})
			}
		}
		for rh.len() > 0 {
			rk, _ := rh.popMin()
			bi := heap.Pop(&bh).(intItem)
			if rk != bi.d {
				return false
			}
		}
		return bh.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRadixHeapPanicsOnEmptyPop(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty popMin")
		}
	}()
	newRadixHeap().popMin()
}
