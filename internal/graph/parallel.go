package graph

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Parallelism knobs of the shortest-path runtime. A parallelism value
// of 0 (the default everywhere) resolves to runtime.GOMAXPROCS(0);
// explicit values cap the worker count. All parallel paths are gated
// by size thresholds so small interactive inputs never pay goroutine
// overhead, and all of them produce results bit-identical to the
// sequential code: work is only ever partitioned over disjoint output
// ranges, never reordered within one.
const (
	// minParallelSolveWork gates the parallel solver: the estimated
	// traversal work (source groups × graph size) must exceed it.
	minParallelSolveWork = 1 << 17
	// minParallelCSREdges gates parallel CSR construction.
	minParallelCSREdges = 1 << 16
	// minParallelEncodeKeys gates parallel dictionary encoding.
	minParallelEncodeKeys = 1 << 15
)

// resolveWorkers maps a Parallelism option onto a concrete worker
// count: values <= 0 mean one worker per available CPU.
func resolveWorkers(parallelism int) int {
	if parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return parallelism
}

// runIndexed drains n indexed work items over the given number of
// workers using an atomic work-stealing cursor. Item order across
// workers is unspecified; callers must write to disjoint output
// locations per item. With one worker (or one item) it degrades to a
// plain loop.
func runIndexed(workers, n int, f func(worker, item int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(worker, i)
			}
		}(w)
	}
	wg.Wait()
}

// runRanges splits [0, n) into one contiguous range per worker and
// runs them concurrently; used where each worker owns a chunk (CSR
// scatter) rather than stealing items.
func runRanges(workers, n int, f func(worker, lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		f(0, 0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(worker, lo, hi int) {
			defer wg.Done()
			f(worker, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}
