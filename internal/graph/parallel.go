package graph

import (
	"context"
	"sync/atomic"

	"graphsql/internal/par"
)

// Parallelism knobs of the shortest-path runtime. A parallelism value
// of 0 (the default everywhere) resolves to runtime.GOMAXPROCS(0);
// explicit values cap the worker count. All parallel paths are gated
// by size thresholds so small interactive inputs never pay goroutine
// overhead, and all of them produce results bit-identical to the
// sequential code: work is only ever partitioned over disjoint output
// ranges, never reordered within one. The distribution primitives
// themselves live in internal/par, shared with the relational
// operators and result materialization.
const (
	// minParallelSolveWork gates the parallel solver: the estimated
	// traversal work (source groups × graph size) must exceed it.
	minParallelSolveWork = 1 << 17
	// minParallelCSREdges gates parallel CSR construction.
	minParallelCSREdges = 1 << 16
	// minParallelEncodeKeys gates parallel dictionary encoding.
	minParallelEncodeKeys = 1 << 15
	// cancelCheckInterval is how many queue pops a sequential traversal
	// (BFS dequeues, Dijkstra settles) runs between Ctx polls. Power of
	// two; at graph-traversal speeds this bounds the latency of a
	// cancellation to well under a millisecond of extra work while
	// keeping the poll itself out of the hot loop. The frontier-parallel
	// BFS polls once per level instead (see bfspar.go).
	cancelCheckInterval = 1 << 12
)

// resolveWorkers maps a Parallelism option onto a concrete worker
// count: values <= 0 mean one worker per available CPU.
func resolveWorkers(parallelism int) int { return par.Workers(parallelism) }

// runIndexed drains n indexed work items over the given number of
// workers using an atomic work-stealing cursor; see par.Indexed.
func runIndexed(workers, n int, f func(worker, item int)) { par.Indexed(workers, n, f) }

// runRanges splits [0, n) into one contiguous range per worker and
// runs them concurrently; see par.Ranges.
func runRanges(workers, n int, f func(worker, lo, hi int)) { par.Ranges(workers, n, f) }

// cancelPoller coordinates cooperative cancellation across the workers
// of one parallel phase: the first worker observing a dead context
// flips a shared flag, so its peers bail at their next poll without
// each paying the ctx.Err() synchronization. Workers poll every
// cancelCheckInterval items; a nil context never cancels.
type cancelPoller struct {
	ctx  context.Context
	stop atomic.Bool
}

func (p *cancelPoller) poll() bool {
	if p.ctx == nil {
		return false
	}
	if p.stop.Load() {
		return true
	}
	if p.ctx.Err() != nil {
		p.stop.Store(true)
		return true
	}
	return false
}
