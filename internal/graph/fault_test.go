package graph

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"graphsql/internal/fault"
	"graphsql/internal/par"
)

// buildLine returns a path graph 0 -> 1 -> ... -> n-1 and a batch of
// pairs with many distinct sources (one group per source).
func buildLine(t *testing.T, n int) (*CSR, []VertexID, []VertexID) {
	t.Helper()
	src := make([]VertexID, n-1)
	dst := make([]VertexID, n-1)
	for i := range src {
		src[i] = VertexID(i)
		dst[i] = VertexID(i + 1)
	}
	g, err := BuildCSR(n, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	srcs := make([]VertexID, n-1)
	dsts := make([]VertexID, n-1)
	for i := range srcs {
		srcs[i] = VertexID(i)
		dsts[i] = VertexID(n - 1)
	}
	return g, srcs, dsts
}

// TestSolverInjectedErrorPropagates arms an error fault on the solver
// group point and requires Solve to return that exact injected error —
// not a context error — from the forced-parallel pool.
func TestSolverInjectedErrorPropagates(t *testing.T) {
	t.Cleanup(fault.Reset)
	g, srcs, dsts := buildLine(t, 40)
	if err := fault.Set(fault.Rule{Point: fault.PointSolverGroup, Kind: fault.KindError, After: 3}); err != nil {
		t.Fatal(err)
	}
	s := NewSolver(g)
	s.Parallelism = 4
	s.forceParallel = true
	// Ctx is nil: the error path must not dereference it.
	_, err := s.Solve(srcs, dsts, []Spec{{Unit: true, UnitI: 1}})
	var inj *fault.InjectedError
	if !errors.As(err, &inj) || inj.Point != fault.PointSolverGroup {
		t.Fatalf("Solve error = %v, want injected error at %s", err, fault.PointSolverGroup)
	}
}

// TestSolverWorkerPanicSurfaces arms a panic fault inside the solver
// worker pool: the panic must cross the pool as a *par.WorkerPanic
// whose stack names solveGroup, and the solver must stay usable for a
// clean solve afterwards.
func TestSolverWorkerPanicSurfaces(t *testing.T) {
	t.Cleanup(fault.Reset)
	g, srcs, dsts := buildLine(t, 40)
	if err := fault.Set(fault.Rule{Point: fault.PointSolverGroup, Kind: fault.KindPanic, After: 2}); err != nil {
		t.Fatal(err)
	}
	s := NewSolver(g)
	s.Parallelism = 4
	s.forceParallel = true

	var wp *par.WorkerPanic
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("worker panic did not surface")
			}
			var ok bool
			wp, ok = r.(*par.WorkerPanic)
			if !ok {
				t.Fatalf("recovered %T (%v), want *par.WorkerPanic", r, r)
			}
		}()
		s.Solve(srcs, dsts, []Spec{{Unit: true, UnitI: 1}})
	}()
	if _, ok := wp.Value.(*fault.InjectedPanic); !ok {
		t.Fatalf("panic value = %#v, want *fault.InjectedPanic", wp.Value)
	}
	if !strings.Contains(string(wp.Stack), "solveGroup") {
		t.Fatalf("worker stack does not name solveGroup:\n%s", wp.Stack)
	}

	// The pool drained cleanly; the same solver must work once the
	// schedule is gone.
	fault.Reset()
	sol, err := s.Solve(srcs, dsts, []Spec{{Unit: true, UnitI: 1}})
	if err != nil {
		t.Fatalf("solve after contained panic: %v", err)
	}
	for i := range sol.Reached {
		if !sol.Reached[i] {
			t.Fatalf("pair %d unreachable after recovery; scratch state corrupted?", i)
		}
	}
}

// TestSolverLevelFaultStopsTraversal covers the frontier-parallel BFS
// level point: a mid-traversal injected error aborts the one traversal
// and surfaces from Solve.
func TestSolverLevelFaultStopsTraversal(t *testing.T) {
	t.Cleanup(fault.Reset)
	g, _, _ := buildLine(t, 64)
	if err := fault.Set(fault.Rule{Point: fault.PointSolverLevel, Kind: fault.KindError, After: 5}); err != nil {
		t.Fatal(err)
	}
	// One pair = one group: intra-traversal parallelism gets the budget.
	s := NewSolver(g)
	s.Parallelism = 4
	s.forceParallel = true
	_, err := s.Solve([]VertexID{0}, []VertexID{63}, []Spec{{Unit: true, UnitI: 1}})
	var inj *fault.InjectedError
	if !errors.As(err, &inj) || inj.Point != fault.PointSolverLevel {
		t.Fatalf("Solve error = %v, want injected error at %s", err, fault.PointSolverLevel)
	}
}

// TestBuildCSRFaults covers the graph-build chunk point on both the
// sequential and the chunked-parallel builder.
func TestBuildCSRFaults(t *testing.T) {
	t.Cleanup(fault.Reset)
	const n, m = 100, 4000
	rng := rand.New(rand.NewSource(11))
	src := make([]VertexID, m)
	dst := make([]VertexID, m)
	for i := range src {
		src[i] = VertexID(rng.Intn(n))
		dst[i] = VertexID(rng.Intn(n))
	}
	if err := fault.Set(fault.Rule{Point: fault.PointGraphBuildChunk, Kind: fault.KindError}); err != nil {
		t.Fatal(err)
	}
	var inj *fault.InjectedError
	if _, err := BuildCSR(n, src, dst); !errors.As(err, &inj) {
		t.Fatalf("sequential build error = %v, want injected", err)
	}
	if _, err := buildCSRParallel(nil, n, src, dst, 4); !errors.As(err, &inj) {
		t.Fatalf("parallel build error = %v, want injected", err)
	}
	fault.Reset()
	want, err := BuildCSR(n, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	got, err := buildCSRParallel(nil, n, src, dst, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Targets) != len(want.Targets) {
		t.Fatalf("post-fault rebuild differs: %d vs %d targets", len(got.Targets), len(want.Targets))
	}
}

// TestBulkEncodeFault covers the encode chunk point on the parallel
// dictionary encode.
func TestBulkEncodeFault(t *testing.T) {
	t.Cleanup(fault.Reset)
	keys := make([]int64, 3*minParallelEncodeKeys)
	for i := range keys {
		keys[i] = int64(i % 500)
	}
	outs := [][]VertexID{make([]VertexID, len(keys))}
	if err := fault.Set(fault.Rule{Point: fault.PointGraphEncodeChunk, Kind: fault.KindError, After: 1}); err != nil {
		t.Fatal(err)
	}
	d := NewIntDict(0)
	err := d.EncodeColumnsIntCtx(nil, [][]int64{keys}, outs, 4)
	var inj *fault.InjectedError
	if !errors.As(err, &inj) || inj.Point != fault.PointGraphEncodeChunk {
		t.Fatalf("encode error = %v, want injected error at %s", err, fault.PointGraphEncodeChunk)
	}
}
