package graph

import "math/bits"

// radixHeap is a monotone priority queue over non-negative int64 keys,
// the "Radix Queue" of Ahuja, Mehlhorn, Orlin and Tarjan the paper's
// prototype pairs with Dijkstra for weighted shortest paths (§3.2).
//
// Invariant: keys inserted after a DeleteMin must be >= the last
// deleted minimum (which holds in Dijkstra because edge weights are
// strictly positive). Items are kept in 65 buckets indexed by the
// position of the highest bit in which the key differs from the last
// minimum; DeleteMin redistributes the first non-empty bucket.
type radixHeap struct {
	buckets [65][]radixItem
	last    int64 // last deleted minimum
	size    int
}

type radixItem struct {
	key int64
	v   VertexID
}

func newRadixHeap() *radixHeap { return &radixHeap{} }

func (h *radixHeap) reset() {
	for i := range h.buckets {
		h.buckets[i] = h.buckets[i][:0]
	}
	h.last = 0
	h.size = 0
}

func (h *radixHeap) len() int { return h.size }

// bucketFor returns the bucket index of key relative to the current
// last minimum: 0 when equal, otherwise 1 + floor(log2(key XOR last)).
func (h *radixHeap) bucketFor(key int64) int {
	x := uint64(key) ^ uint64(h.last)
	if x == 0 {
		return 0
	}
	return bits.Len64(x)
}

// push inserts a (key, vertex) pair; key must be >= the last minimum.
func (h *radixHeap) push(key int64, v VertexID) {
	b := h.bucketFor(key)
	h.buckets[b] = append(h.buckets[b], radixItem{key, v})
	h.size++
}

// popMin removes and returns an item with the smallest key.
func (h *radixHeap) popMin() (int64, VertexID) {
	// Fast path: bucket 0 holds items equal to the last minimum.
	if n := len(h.buckets[0]); n > 0 {
		it := h.buckets[0][n-1]
		h.buckets[0] = h.buckets[0][:n-1]
		h.size--
		return it.key, it.v
	}
	// Find the first non-empty bucket, extract its minimum as the new
	// pivot, and redistribute the remainder into lower buckets.
	for b := 1; b < len(h.buckets); b++ {
		items := h.buckets[b]
		if len(items) == 0 {
			continue
		}
		minIdx := 0
		for i := 1; i < len(items); i++ {
			if items[i].key < items[minIdx].key {
				minIdx = i
			}
		}
		min := items[minIdx]
		h.last = min.key
		for i, it := range items {
			if i == minIdx {
				continue
			}
			nb := h.bucketFor(it.key)
			h.buckets[nb] = append(h.buckets[nb], it)
		}
		h.buckets[b] = h.buckets[b][:0]
		h.size--
		return min.key, min.v
	}
	panic("radixHeap: popMin on empty heap")
}
