package expr

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"graphsql/internal/storage"
	"graphsql/internal/types"
)

// Cast converts X to the target kind To with SQL CAST semantics.
type Cast struct {
	X  Expr
	To types.Kind
}

// Kind implements Expr.
func (c *Cast) Kind() types.Kind { return c.To }

func (c *Cast) String() string { return fmt.Sprintf("CAST(%s AS %v)", c.X, c.To) }

// Eval implements Expr.
func (c *Cast) Eval(ctx *Context, in *storage.Chunk) (*storage.Column, error) {
	xc, err := c.X.Eval(ctx, in)
	if err != nil {
		return nil, err
	}
	if xc.Kind == c.To {
		return xc, nil
	}
	n := xc.Len()
	out := storage.NewColumn(c.To, n)
	for i := 0; i < n; i++ {
		if xc.IsNull(i) {
			out.AppendNull()
			continue
		}
		v, err := castValue(xc.Get(i), c.To)
		if err != nil {
			return nil, err
		}
		out.Append(v)
	}
	return out, nil
}

// castValue converts one scalar.
func castValue(v types.Value, to types.Kind) (types.Value, error) {
	if v.Null {
		return types.NewNull(to), nil
	}
	if v.K == to {
		return v, nil
	}
	switch to {
	case types.KindInt:
		switch v.K {
		case types.KindFloat:
			return types.NewInt(int64(v.F)), nil // truncation toward zero
		case types.KindBool, types.KindDate:
			return types.NewInt(v.I), nil
		case types.KindString:
			s := strings.TrimSpace(v.S)
			i, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				if f, ferr := strconv.ParseFloat(s, 64); ferr == nil {
					return types.NewInt(int64(f)), nil
				}
				return types.Value{}, fmt.Errorf("cannot cast %q to BIGINT", v.S)
			}
			return types.NewInt(i), nil
		}
	case types.KindFloat:
		switch v.K {
		case types.KindInt, types.KindBool:
			return types.NewFloat(float64(v.I)), nil
		case types.KindString:
			f, err := strconv.ParseFloat(strings.TrimSpace(v.S), 64)
			if err != nil {
				return types.Value{}, fmt.Errorf("cannot cast %q to DOUBLE", v.S)
			}
			return types.NewFloat(f), nil
		}
	case types.KindString:
		return types.NewString(v.String()), nil
	case types.KindBool:
		switch v.K {
		case types.KindInt:
			return types.NewBool(v.I != 0), nil
		case types.KindString:
			switch strings.ToLower(strings.TrimSpace(v.S)) {
			case "true", "t", "1":
				return types.NewBool(true), nil
			case "false", "f", "0":
				return types.NewBool(false), nil
			}
			return types.Value{}, fmt.Errorf("cannot cast %q to BOOLEAN", v.S)
		}
	case types.KindDate:
		switch v.K {
		case types.KindString:
			d, err := types.ParseDate(strings.TrimSpace(v.S))
			if err != nil {
				return types.Value{}, err
			}
			return types.NewDate(d), nil
		case types.KindInt:
			return types.NewDate(v.I), nil
		}
	}
	return types.Value{}, fmt.Errorf("cannot cast %v to %v", v.K, to)
}

// CastValue is the exported scalar cast used by INSERT coercion.
func CastValue(v types.Value, to types.Kind) (types.Value, error) { return castValue(v, to) }

// Case is CASE WHEN ... THEN ... ELSE ... END; the binder desugared the
// operand form into searched form.
type Case struct {
	Whens []Expr // boolean conditions
	Thens []Expr
	Else  Expr // may be nil => NULL
	K     types.Kind
}

// Kind implements Expr.
func (c *Case) Kind() types.Kind { return c.K }

func (c *Case) String() string { return "CASE" }

// Eval implements Expr; every arm is evaluated over the whole chunk
// (column-at-a-time execution has no lazy branches).
func (c *Case) Eval(ctx *Context, in *storage.Chunk) (*storage.Column, error) {
	n := in.NumRows()
	conds := make([]*storage.Column, len(c.Whens))
	vals := make([]*storage.Column, len(c.Thens))
	for i := range c.Whens {
		cc, err := c.Whens[i].Eval(ctx, in)
		if err != nil {
			return nil, err
		}
		conds[i] = cc
		vc, err := c.Thens[i].Eval(ctx, in)
		if err != nil {
			return nil, err
		}
		vals[i] = vc
	}
	var elseCol *storage.Column
	if c.Else != nil {
		ec, err := c.Else.Eval(ctx, in)
		if err != nil {
			return nil, err
		}
		elseCol = ec
	}
	out := storage.NewColumn(c.K, n)
rows:
	for i := 0; i < n; i++ {
		for a := range conds {
			if !conds[a].IsNull(i) && conds[a].Ints[i] != 0 {
				out.Append(vals[a].Get(i))
				continue rows
			}
		}
		if elseCol != nil {
			out.Append(elseCol.Get(i))
		} else {
			out.AppendNull()
		}
	}
	return out, nil
}

// Like is X [NOT] LIKE pattern with % and _ wildcards.
type Like struct {
	X, Pattern Expr
	Not        bool
}

// Kind implements Expr.
func (l *Like) Kind() types.Kind { return types.KindBool }

func (l *Like) String() string { return fmt.Sprintf("(%s LIKE %s)", l.X, l.Pattern) }

// Eval implements Expr.
func (l *Like) Eval(ctx *Context, in *storage.Chunk) (*storage.Column, error) {
	xc, err := l.X.Eval(ctx, in)
	if err != nil {
		return nil, err
	}
	pc, err := l.Pattern.Eval(ctx, in)
	if err != nil {
		return nil, err
	}
	n := xc.Len()
	out := storage.NewColumn(types.KindBool, n)
	// Compile the pattern once when it is constant across rows.
	var cached func(string) bool
	var cachedPat string
	var haveCache bool
	for i := 0; i < n; i++ {
		if xc.IsNull(i) || pc.IsNull(i) {
			out.AppendNull()
			continue
		}
		pat := pc.Strs[i]
		if !haveCache || pat != cachedPat {
			cached = compileLike(pat)
			cachedPat = pat
			haveCache = true
		}
		m := cached(xc.Strs[i])
		out.AppendInt(boolToInt(m != l.Not))
	}
	return out, nil
}

// compileLike builds a matcher for a SQL LIKE pattern.
func compileLike(pat string) func(string) bool {
	// Split on %, match segments greedily with _ as single-char
	// wildcard.
	segs := strings.Split(pat, "%")
	return func(s string) bool {
		return likeMatch(s, segs, len(segs) == 1)
	}
}

func likeMatch(s string, segs []string, exact bool) bool {
	if exact {
		return likeSegEq(s, segs[0])
	}
	// First segment anchors at the start.
	first := segs[0]
	if len(s) < len(first) || !likeSegEq(s[:len(first)], first) {
		return false
	}
	s = s[len(first):]
	// Last segment anchors at the end.
	last := segs[len(segs)-1]
	if len(s) < len(last) || !likeSegEq(s[len(s)-len(last):], last) {
		return false
	}
	tail := s[:len(s)-len(last)]
	// Middle segments match greedily left to right.
	for _, seg := range segs[1 : len(segs)-1] {
		if seg == "" {
			continue
		}
		idx := likeIndex(tail, seg)
		if idx < 0 {
			return false
		}
		tail = tail[idx+len(seg):]
	}
	return true
}

// likeSegEq compares a segment honoring the _ wildcard.
func likeSegEq(s, seg string) bool {
	if len(s) != len(seg) {
		return false
	}
	for i := 0; i < len(seg); i++ {
		if seg[i] != '_' && seg[i] != s[i] {
			return false
		}
	}
	return true
}

// likeIndex finds the first match of seg (with _ wildcards) inside s.
func likeIndex(s, seg string) int {
	for i := 0; i+len(seg) <= len(s); i++ {
		if likeSegEq(s[i:i+len(seg)], seg) {
			return i
		}
	}
	return -1
}

// Func is a scalar function call with a fixed evaluator.
type Func struct {
	Name string
	Args []Expr
	K    types.Kind
}

// Kind implements Expr.
func (f *Func) Kind() types.Kind { return f.K }

func (f *Func) String() string {
	args := make([]string, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", f.Name, strings.Join(args, ", "))
}

// ScalarFuncKind resolves the result kind of a scalar function given
// its argument kinds; ok is false for unknown functions or arity.
func ScalarFuncKind(name string, args []types.Kind) (types.Kind, bool) {
	switch name {
	case "ABS":
		if len(args) == 1 && (args[0].Numeric() || args[0] == types.KindNull) {
			if args[0] == types.KindFloat {
				return types.KindFloat, true
			}
			return types.KindInt, true
		}
	case "FLOOR", "CEIL", "CEILING", "ROUND":
		if len(args) == 1 {
			return types.KindFloat, true
		}
	case "SQRT", "LN", "EXP":
		if len(args) == 1 {
			return types.KindFloat, true
		}
	case "LENGTH", "CHAR_LENGTH":
		if len(args) == 1 {
			return types.KindInt, true
		}
	case "UPPER", "LOWER", "TRIM", "LTRIM", "RTRIM":
		if len(args) == 1 {
			return types.KindString, true
		}
	case "SUBSTR", "SUBSTRING":
		if len(args) == 2 || len(args) == 3 {
			return types.KindString, true
		}
	case "REPLACE":
		if len(args) == 3 {
			return types.KindString, true
		}
	case "COALESCE":
		if len(args) >= 1 {
			k := types.KindNull
			for _, a := range args {
				nk, ok := types.CommonKind(k, a)
				if !ok {
					return 0, false
				}
				k = nk
			}
			return k, true
		}
	case "NULLIF":
		if len(args) == 2 {
			return args[0], true
		}
	case "GREATEST", "LEAST":
		if len(args) >= 1 {
			k := types.KindNull
			for _, a := range args {
				nk, ok := types.CommonKind(k, a)
				if !ok {
					return 0, false
				}
				k = nk
			}
			return k, true
		}
	case "PATH_LENGTH":
		// Extension: number of edges in a nested-table path.
		if len(args) == 1 && (args[0] == types.KindPath || args[0] == types.KindNull) {
			return types.KindInt, true
		}
	case "YEAR", "MONTH", "DAY":
		if len(args) == 1 && (args[0] == types.KindDate || args[0] == types.KindNull) {
			return types.KindInt, true
		}
	case "DATE_ADD":
		// DATE_ADD(date, days) — extension convenience.
		if len(args) == 2 {
			return types.KindDate, true
		}
	}
	return 0, false
}

// Eval implements Expr.
func (f *Func) Eval(ctx *Context, in *storage.Chunk) (*storage.Column, error) {
	cols := make([]*storage.Column, len(f.Args))
	for i, a := range f.Args {
		c, err := a.Eval(ctx, in)
		if err != nil {
			return nil, err
		}
		cols[i] = c
	}
	n := in.NumRows()
	out := storage.NewColumn(f.K, n)
	for i := 0; i < n; i++ {
		v, err := f.evalRow(cols, i)
		if err != nil {
			return nil, err
		}
		if !v.Null && v.K != f.K {
			cv, err := castValue(v, f.K)
			if err != nil {
				return nil, err
			}
			v = cv
		}
		out.Append(v)
	}
	return out, nil
}

func (f *Func) evalRow(cols []*storage.Column, i int) (types.Value, error) {
	arg := func(j int) types.Value { return cols[j].Get(i) }
	// COALESCE and friends handle NULL themselves; others propagate.
	switch f.Name {
	case "COALESCE":
		for j := range cols {
			if v := arg(j); !v.Null {
				return v, nil
			}
		}
		return types.NewNull(f.K), nil
	case "NULLIF":
		a, b := arg(0), arg(1)
		if !a.Null && !b.Null && types.Equal(a, b) {
			return types.NewNull(f.K), nil
		}
		return a, nil
	case "GREATEST", "LEAST":
		var best types.Value
		bestSet := false
		for j := range cols {
			v := arg(j)
			if v.Null {
				return types.NewNull(f.K), nil
			}
			if !bestSet {
				best, bestSet = v, true
				continue
			}
			c := types.Compare(v, best)
			if (f.Name == "GREATEST" && c > 0) || (f.Name == "LEAST" && c < 0) {
				best = v
			}
		}
		return best, nil
	}
	for j := range cols {
		if cols[j].IsNull(i) {
			return types.NewNull(f.K), nil
		}
	}
	switch f.Name {
	case "ABS":
		v := arg(0)
		if v.K == types.KindFloat {
			return types.NewFloat(math.Abs(v.F)), nil
		}
		if v.I < 0 {
			return types.NewInt(-v.I), nil
		}
		return v, nil
	case "FLOOR":
		return types.NewFloat(math.Floor(arg(0).AsFloat())), nil
	case "CEIL", "CEILING":
		return types.NewFloat(math.Ceil(arg(0).AsFloat())), nil
	case "ROUND":
		return types.NewFloat(math.Round(arg(0).AsFloat())), nil
	case "SQRT":
		x := arg(0).AsFloat()
		if x < 0 {
			return types.Value{}, fmt.Errorf("SQRT of negative value %v", x)
		}
		return types.NewFloat(math.Sqrt(x)), nil
	case "LN":
		x := arg(0).AsFloat()
		if x <= 0 {
			return types.Value{}, fmt.Errorf("LN of non-positive value %v", x)
		}
		return types.NewFloat(math.Log(x)), nil
	case "EXP":
		return types.NewFloat(math.Exp(arg(0).AsFloat())), nil
	case "LENGTH", "CHAR_LENGTH":
		return types.NewInt(int64(len(arg(0).S))), nil
	case "UPPER":
		return types.NewString(strings.ToUpper(arg(0).S)), nil
	case "LOWER":
		return types.NewString(strings.ToLower(arg(0).S)), nil
	case "TRIM":
		return types.NewString(strings.TrimSpace(arg(0).S)), nil
	case "LTRIM":
		return types.NewString(strings.TrimLeft(arg(0).S, " \t")), nil
	case "RTRIM":
		return types.NewString(strings.TrimRight(arg(0).S, " \t")), nil
	case "SUBSTR", "SUBSTRING":
		s := arg(0).S
		start := int(arg(1).I) // 1-based
		if start < 1 {
			start = 1
		}
		if start > len(s) {
			return types.NewString(""), nil
		}
		rest := s[start-1:]
		if len(f.Args) == 3 {
			l := int(arg(2).I)
			if l < 0 {
				l = 0
			}
			if l < len(rest) {
				rest = rest[:l]
			}
		}
		return types.NewString(rest), nil
	case "REPLACE":
		return types.NewString(strings.ReplaceAll(arg(0).S, arg(1).S, arg(2).S)), nil
	case "PATH_LENGTH":
		return types.NewInt(int64(arg(0).P.Len())), nil
	case "YEAR", "MONTH", "DAY":
		tm := time.Unix(arg(0).I*86400, 0).UTC()
		switch f.Name {
		case "YEAR":
			return types.NewInt(int64(tm.Year())), nil
		case "MONTH":
			return types.NewInt(int64(tm.Month())), nil
		default:
			return types.NewInt(int64(tm.Day())), nil
		}
	case "DATE_ADD":
		return types.NewDate(arg(0).I + arg(1).I), nil
	}
	return types.Value{}, fmt.Errorf("unknown function %s", f.Name)
}

// InList is X [NOT] IN (v1, v2, ...) under SQL NULL semantics.
type InList struct {
	X    Expr
	List []Expr
	Not  bool
}

// Kind implements Expr.
func (e *InList) Kind() types.Kind { return types.KindBool }

func (e *InList) String() string { return fmt.Sprintf("(%s IN [...])", e.X) }

// Eval implements Expr.
func (e *InList) Eval(ctx *Context, in *storage.Chunk) (*storage.Column, error) {
	xc, err := e.X.Eval(ctx, in)
	if err != nil {
		return nil, err
	}
	cols := make([]*storage.Column, len(e.List))
	for i, le := range e.List {
		c, err := le.Eval(ctx, in)
		if err != nil {
			return nil, err
		}
		cols[i] = c
	}
	n := xc.Len()
	out := storage.NewColumn(types.KindBool, n)
	for i := 0; i < n; i++ {
		if xc.IsNull(i) {
			out.AppendNull()
			continue
		}
		xv := xc.Get(i)
		found := false
		sawNull := false
		for _, c := range cols {
			v := c.Get(i)
			if v.Null {
				sawNull = true
				continue
			}
			if types.Equal(xv, v) {
				found = true
				break
			}
		}
		switch {
		case found:
			out.AppendInt(boolToInt(!e.Not))
		case sawNull:
			out.AppendNull()
		default:
			out.AppendInt(boolToInt(e.Not))
		}
	}
	return out, nil
}
