// Package expr defines bound (resolved, typed) scalar expressions and
// their column-at-a-time evaluation over materialized chunks, the
// execution style of the MonetDB model the paper's prototype targets.
package expr

import (
	"fmt"

	"graphsql/internal/storage"
	"graphsql/internal/types"
)

// Context carries per-execution state: the host parameter values bound
// to ? placeholders.
type Context struct {
	Params []types.Value
}

// Expr is a bound scalar expression.
type Expr interface {
	// Kind is the static result type.
	Kind() types.Kind
	// Eval computes the expression for every row of in.
	Eval(ctx *Context, in *storage.Chunk) (*storage.Column, error)
	// String renders the expression for plans and error messages.
	String() string
}

// ---------------------------------------------------------------------------
// leaves

// ColRef references column Idx of the input chunk.
type ColRef struct {
	Idx  int
	K    types.Kind
	Name string
}

// Kind implements Expr.
func (c *ColRef) Kind() types.Kind { return c.K }

// Eval implements Expr; the referenced column is shared, not copied.
func (c *ColRef) Eval(_ *Context, in *storage.Chunk) (*storage.Column, error) {
	if c.Idx < 0 || c.Idx >= len(in.Cols) {
		return nil, fmt.Errorf("internal: column ref %d out of range (%d cols)", c.Idx, len(in.Cols))
	}
	return in.Cols[c.Idx], nil
}

func (c *ColRef) String() string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("#%d", c.Idx)
}

// Const is a literal value.
type Const struct{ Val types.Value }

// Kind implements Expr.
func (c *Const) Kind() types.Kind { return c.Val.K }

// Eval implements Expr.
func (c *Const) Eval(_ *Context, in *storage.Chunk) (*storage.Column, error) {
	return storage.ConstColumn(c.Val, in.NumRows()), nil
}

func (c *Const) String() string { return c.Val.String() }

// Param is the Idx-th host parameter; its kind is fixed at bind time
// from the supplied argument.
type Param struct {
	Idx int
	K   types.Kind
}

// Kind implements Expr.
func (p *Param) Kind() types.Kind { return p.K }

// Eval implements Expr.
func (p *Param) Eval(ctx *Context, in *storage.Chunk) (*storage.Column, error) {
	if p.Idx >= len(ctx.Params) {
		return nil, fmt.Errorf("missing value for parameter %d", p.Idx+1)
	}
	return storage.ConstColumn(ctx.Params[p.Idx], in.NumRows()), nil
}

func (p *Param) String() string { return fmt.Sprintf("?%d", p.Idx+1) }

// IsConst reports whether e is a constant (literal or bound parameter)
// and returns its value. Used by the graph operator to recognize
// constant weight expressions and pick BFS (§1: "missed algorithmic
// opportunities").
func IsConst(e Expr, ctx *Context) (types.Value, bool) {
	switch t := e.(type) {
	case *Const:
		return t.Val, true
	case *Param:
		if ctx != nil && t.Idx < len(ctx.Params) {
			return ctx.Params[t.Idx], true
		}
	case *Cast:
		v, ok := IsConst(t.X, ctx)
		if !ok {
			return types.Value{}, false
		}
		out, err := castValue(v, t.To)
		if err != nil {
			return types.Value{}, false
		}
		return out, true
	}
	return types.Value{}, false
}

// EvalScalar evaluates an expression that must not reference any
// column (LIMIT counts, VALUES rows, DEFAULTs).
func EvalScalar(e Expr, ctx *Context) (types.Value, error) {
	one := &storage.Chunk{
		Schema: storage.Schema{{Name: "dummy", Kind: types.KindInt}},
		Cols:   []*storage.Column{storage.ConstColumn(types.NewInt(0), 1)},
	}
	col, err := e.Eval(ctx, one)
	if err != nil {
		return types.Value{}, err
	}
	if col.Len() != 1 {
		return types.Value{}, fmt.Errorf("internal: scalar expression produced %d rows", col.Len())
	}
	return col.Get(0), nil
}
