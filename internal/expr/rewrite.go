package expr

// Refs appends the column indices referenced by e to out and returns
// the result. Duplicates are not removed.
func Refs(e Expr, out []int) []int {
	switch t := e.(type) {
	case *ColRef:
		out = append(out, t.Idx)
	case *Const, *Param:
	case *Arith:
		out = Refs(t.L, out)
		out = Refs(t.R, out)
	case *Neg:
		out = Refs(t.X, out)
	case *Cmp:
		out = Refs(t.L, out)
		out = Refs(t.R, out)
	case *Logic:
		out = Refs(t.L, out)
		out = Refs(t.R, out)
	case *Not:
		out = Refs(t.X, out)
	case *Concat:
		out = Refs(t.L, out)
		out = Refs(t.R, out)
	case *IsNull:
		out = Refs(t.X, out)
	case *Cast:
		out = Refs(t.X, out)
	case *Case:
		for _, w := range t.Whens {
			out = Refs(w, out)
		}
		for _, th := range t.Thens {
			out = Refs(th, out)
		}
		if t.Else != nil {
			out = Refs(t.Else, out)
		}
	case *Like:
		out = Refs(t.X, out)
		out = Refs(t.Pattern, out)
	case *Func:
		for _, a := range t.Args {
			out = Refs(a, out)
		}
	case *InList:
		out = Refs(t.X, out)
		for _, a := range t.List {
			out = Refs(a, out)
		}
	}
	return out
}

// MapRefs returns a copy of e with every column reference index passed
// through f. It is used by the predicate-pushdown rewriter to re-base
// expressions onto a join side.
func MapRefs(e Expr, f func(int) int) Expr {
	switch t := e.(type) {
	case *ColRef:
		c := *t
		c.Idx = f(t.Idx)
		return &c
	case *Const, *Param:
		return e
	case *Arith:
		c := *t
		c.L, c.R = MapRefs(t.L, f), MapRefs(t.R, f)
		return &c
	case *Neg:
		c := *t
		c.X = MapRefs(t.X, f)
		return &c
	case *Cmp:
		c := *t
		c.L, c.R = MapRefs(t.L, f), MapRefs(t.R, f)
		return &c
	case *Logic:
		c := *t
		c.L, c.R = MapRefs(t.L, f), MapRefs(t.R, f)
		return &c
	case *Not:
		c := *t
		c.X = MapRefs(t.X, f)
		return &c
	case *Concat:
		c := *t
		c.L, c.R = MapRefs(t.L, f), MapRefs(t.R, f)
		return &c
	case *IsNull:
		c := *t
		c.X = MapRefs(t.X, f)
		return &c
	case *Cast:
		c := *t
		c.X = MapRefs(t.X, f)
		return &c
	case *Case:
		c := *t
		c.Whens = make([]Expr, len(t.Whens))
		c.Thens = make([]Expr, len(t.Thens))
		for i := range t.Whens {
			c.Whens[i] = MapRefs(t.Whens[i], f)
			c.Thens[i] = MapRefs(t.Thens[i], f)
		}
		if t.Else != nil {
			c.Else = MapRefs(t.Else, f)
		}
		return &c
	case *Like:
		c := *t
		c.X, c.Pattern = MapRefs(t.X, f), MapRefs(t.Pattern, f)
		return &c
	case *Func:
		c := *t
		c.Args = make([]Expr, len(t.Args))
		for i := range t.Args {
			c.Args[i] = MapRefs(t.Args[i], f)
		}
		return &c
	case *InList:
		c := *t
		c.X = MapRefs(t.X, f)
		c.List = make([]Expr, len(t.List))
		for i := range t.List {
			c.List[i] = MapRefs(t.List[i], f)
		}
		return &c
	}
	return e
}

// SplitConjuncts flattens a tree of ANDs into its conjunct list.
func SplitConjuncts(e Expr, out []Expr) []Expr {
	if l, ok := e.(*Logic); ok && l.And {
		out = SplitConjuncts(l.L, out)
		return SplitConjuncts(l.R, out)
	}
	return append(out, e)
}

// AndAll combines conjuncts back into a single predicate; it returns
// nil for an empty list.
func AndAll(conjuncts []Expr) Expr {
	var out Expr
	for _, c := range conjuncts {
		if out == nil {
			out = c
		} else {
			out = &Logic{And: true, L: out, R: c}
		}
	}
	return out
}
