package expr

import (
	"strings"
	"testing"
	"testing/quick"

	"graphsql/internal/storage"
	"graphsql/internal/types"
)

// testChunk builds a two-column chunk: a BIGINT (with one NULL) and a
// VARCHAR.
func testChunk() *storage.Chunk {
	c := storage.NewChunk(storage.Schema{
		{Name: "a", Kind: types.KindInt},
		{Name: "s", Kind: types.KindString},
	})
	c.AppendRow([]types.Value{types.NewInt(10), types.NewString("x")})
	c.AppendRow([]types.Value{types.NewNull(types.KindInt), types.NewString("y")})
	c.AppendRow([]types.Value{types.NewInt(-3), types.NewString("x")})
	return c
}

func eval(t *testing.T, e Expr, in *storage.Chunk) *storage.Column {
	t.Helper()
	col, err := e.Eval(&Context{}, in)
	if err != nil {
		t.Fatalf("eval %s: %v", e, err)
	}
	return col
}

func colRef(idx int, k types.Kind) *ColRef { return &ColRef{Idx: idx, K: k} }

func TestColRefSharesColumn(t *testing.T) {
	in := testChunk()
	col := eval(t, colRef(0, types.KindInt), in)
	if col != in.Cols[0] {
		t.Fatal("column references must not copy")
	}
	if _, err := colRef(9, types.KindInt).Eval(&Context{}, in); err == nil {
		t.Fatal("out-of-range ref must error")
	}
}

func TestConstAndParam(t *testing.T) {
	in := testChunk()
	col := eval(t, &Const{Val: types.NewInt(7)}, in)
	if col.Len() != 3 || col.Get(2).I != 7 {
		t.Fatal("const broadcast wrong")
	}
	p := &Param{Idx: 0, K: types.KindString}
	col, err := p.Eval(&Context{Params: []types.Value{types.NewString("v")}}, in)
	if err != nil || col.Get(0).S != "v" {
		t.Fatalf("param eval: %v", err)
	}
	if _, err := p.Eval(&Context{}, in); err == nil {
		t.Fatal("missing param must error")
	}
}

func TestArithNullsAndKinds(t *testing.T) {
	in := testChunk()
	add := &Arith{Op: OpAdd, L: colRef(0, types.KindInt), R: &Const{Val: types.NewInt(1)}, K: types.KindInt}
	col := eval(t, add, in)
	if col.Get(0).I != 11 || !col.IsNull(1) || col.Get(2).I != -2 {
		t.Fatalf("add = %v %v %v", col.Get(0), col.Get(1), col.Get(2))
	}
	div := &Arith{Op: OpDiv, L: &Const{Val: types.NewFloat(3)}, R: &Const{Val: types.NewFloat(2)}, K: types.KindFloat}
	col = eval(t, div, in)
	if col.Get(0).F != 1.5 {
		t.Fatalf("3.0/2 = %v", col.Get(0))
	}
}

func TestPropertyIntArithmetic(t *testing.T) {
	one := storage.NewChunk(storage.Schema{{Name: "x", Kind: types.KindInt}})
	one.AppendRow([]types.Value{types.NewInt(0)})
	f := func(a, b int64) bool {
		mk := func(op ArithOp) int64 {
			e := &Arith{Op: op, L: &Const{Val: types.NewInt(a)}, R: &Const{Val: types.NewInt(b)}, K: types.KindInt}
			col, err := e.Eval(&Context{}, one)
			if err != nil {
				return 0
			}
			return col.Get(0).I
		}
		return mk(OpAdd) == a+b && mk(OpSub) == a-b && mk(OpMul) == a*b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCmpFastAndSlowPaths(t *testing.T) {
	in := testChunk()
	// Fast path (no nulls): strings.
	cmp := &Cmp{Op: CmpEq, L: colRef(1, types.KindString), R: &Const{Val: types.NewString("x")}}
	col := eval(t, cmp, in)
	if !col.Get(0).Bool() || col.Get(1).Bool() || !col.Get(2).Bool() {
		t.Fatal("string eq wrong")
	}
	// Slow path (nulls): int compare with NULL yields NULL.
	cmp = &Cmp{Op: CmpLt, L: colRef(0, types.KindInt), R: &Const{Val: types.NewInt(0)}}
	col = eval(t, cmp, in)
	if col.Get(0).Bool() || !col.IsNull(1) || !col.Get(2).Bool() {
		t.Fatalf("lt = %v %v %v", col.Get(0), col.Get(1), col.Get(2))
	}
}

func TestLogicTruthTable(t *testing.T) {
	tv := func(b bool) Expr { return &Const{Val: types.NewBool(b)} }
	nv := &Const{Val: types.NewNull(types.KindBool)}
	one := storage.NewChunk(storage.Schema{{Name: "x", Kind: types.KindInt}})
	one.AppendRow([]types.Value{types.NewInt(0)})
	check := func(e Expr, wantNull bool, want bool) {
		t.Helper()
		col, err := e.Eval(&Context{}, one)
		if err != nil {
			t.Fatal(err)
		}
		if col.IsNull(0) != wantNull {
			t.Fatalf("%s: null = %v, want %v", e, col.IsNull(0), wantNull)
		}
		if !wantNull && col.Get(0).Bool() != want {
			t.Fatalf("%s = %v, want %v", e, col.Get(0).Bool(), want)
		}
	}
	check(&Logic{And: true, L: tv(true), R: tv(true)}, false, true)
	check(&Logic{And: true, L: tv(true), R: tv(false)}, false, false)
	check(&Logic{And: true, L: nv, R: tv(false)}, false, false) // NULL AND FALSE = FALSE
	check(&Logic{And: true, L: nv, R: tv(true)}, true, false)   // NULL AND TRUE = NULL
	check(&Logic{And: false, L: nv, R: tv(true)}, false, true)  // NULL OR TRUE = TRUE
	check(&Logic{And: false, L: nv, R: tv(false)}, true, false) // NULL OR FALSE = NULL
	check(&Not{X: nv}, true, false)                             // NOT NULL = NULL
	check(&Not{X: tv(false)}, false, true)
}

func TestConcatAndIsNull(t *testing.T) {
	in := testChunk()
	cat := &Concat{L: colRef(1, types.KindString), R: &Const{Val: types.NewString("!")}}
	col := eval(t, cat, in)
	if col.Get(0).S != "x!" {
		t.Fatalf("concat = %q", col.Get(0).S)
	}
	isn := &IsNull{X: colRef(0, types.KindInt)}
	col = eval(t, isn, in)
	if col.Get(0).Bool() || !col.Get(1).Bool() {
		t.Fatal("IS NULL wrong")
	}
	notn := &IsNull{X: colRef(0, types.KindInt), Not: true}
	col = eval(t, notn, in)
	if !col.Get(0).Bool() || col.Get(1).Bool() {
		t.Fatal("IS NOT NULL wrong")
	}
}

func TestLikeCorners(t *testing.T) {
	cases := []struct {
		s, pat string
		want   bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h__lo", true},
		{"hello", "x%", false},
		{"hello", "%x", false},
		{"", "%", true},
		{"", "_", false},
		{"abc", "a%b%c", true},
		{"ac", "a%b%c", false},
		{"a%c", "a%c", true}, // % in the middle matches anything incl. literal %
		{"abcabc", "%abc", true},
		{"abcabc", "abc%abc", true},
	}
	for _, c := range cases {
		m := compileLike(c.pat)
		if got := m(c.s); got != c.want {
			t.Errorf("LIKE(%q, %q) = %v, want %v", c.s, c.pat, got, c.want)
		}
	}
}

func TestCaseEval(t *testing.T) {
	in := testChunk()
	// CASE WHEN a >= 0 THEN 'pos' ELSE 'neg' END, NULL arm falls to ELSE.
	ce := &Case{
		Whens: []Expr{&Cmp{Op: CmpGe, L: colRef(0, types.KindInt), R: &Const{Val: types.NewInt(0)}}},
		Thens: []Expr{&Const{Val: types.NewString("pos")}},
		Else:  &Const{Val: types.NewString("neg")},
		K:     types.KindString,
	}
	col := eval(t, ce, in)
	if col.Get(0).S != "pos" || col.Get(1).S != "neg" || col.Get(2).S != "neg" {
		t.Fatalf("case = %v %v %v", col.Get(0), col.Get(1), col.Get(2))
	}
	// Without ELSE, unmatched rows become NULL.
	ce.Else = nil
	col = eval(t, ce, in)
	if !col.IsNull(1) {
		t.Fatal("missing ELSE must yield NULL")
	}
}

func TestCastEval(t *testing.T) {
	in := testChunk()
	c := &Cast{X: colRef(0, types.KindInt), To: types.KindString}
	col := eval(t, c, in)
	if col.Get(0).S != "10" || !col.IsNull(1) {
		t.Fatalf("cast = %v %v", col.Get(0), col.Get(1))
	}
	// Identity cast is free.
	id := &Cast{X: colRef(0, types.KindInt), To: types.KindInt}
	col = eval(t, id, in)
	if col != in.Cols[0] {
		t.Fatal("identity cast must not copy")
	}
}

func TestCastValueMatrix(t *testing.T) {
	cases := []struct {
		in   types.Value
		to   types.Kind
		want string
		ok   bool
	}{
		{types.NewFloat(2.9), types.KindInt, "2", true},
		{types.NewString(" 42 "), types.KindInt, "42", true},
		{types.NewString("4.7"), types.KindInt, "4", true},
		{types.NewString("x"), types.KindInt, "", false},
		{types.NewInt(1), types.KindBool, "true", true},
		{types.NewString("false"), types.KindBool, "false", true},
		{types.NewString("maybe"), types.KindBool, "", false},
		{types.NewString("2020-02-02"), types.KindDate, "2020-02-02", true},
		{types.NewBool(true), types.KindString, "true", true},
		{types.NewDate(0), types.KindString, "1970-01-01", true},
	}
	for _, c := range cases {
		got, err := CastValue(c.in, c.to)
		if c.ok != (err == nil) {
			t.Errorf("cast %v -> %v: err = %v", c.in, c.to, err)
			continue
		}
		if c.ok && got.String() != c.want {
			t.Errorf("cast %v -> %v = %q, want %q", c.in, c.to, got.String(), c.want)
		}
	}
}

func TestInListSemantics(t *testing.T) {
	in := testChunk()
	il := &InList{
		X:    colRef(0, types.KindInt),
		List: []Expr{&Const{Val: types.NewInt(10)}, &Const{Val: types.NewNull(types.KindInt)}},
	}
	col := eval(t, il, in)
	// 10 IN (10, NULL) = TRUE; NULL IN ... = NULL; -3 IN (10, NULL) = NULL.
	if !col.Get(0).Bool() || !col.IsNull(1) || !col.IsNull(2) {
		t.Fatalf("in = %v %v %v", col.Get(0), col.Get(1), col.Get(2))
	}
}

func TestIsConst(t *testing.T) {
	ctx := &Context{Params: []types.Value{types.NewInt(9)}}
	if v, ok := IsConst(&Const{Val: types.NewInt(5)}, ctx); !ok || v.I != 5 {
		t.Fatal("literal const not detected")
	}
	if v, ok := IsConst(&Param{Idx: 0, K: types.KindInt}, ctx); !ok || v.I != 9 {
		t.Fatal("param const not detected")
	}
	if v, ok := IsConst(&Cast{X: &Const{Val: types.NewFloat(2.5)}, To: types.KindInt}, ctx); !ok || v.I != 2 {
		t.Fatal("cast-of-const not detected")
	}
	if _, ok := IsConst(&ColRef{Idx: 0, K: types.KindInt}, ctx); ok {
		t.Fatal("colref is not const")
	}
}

func TestRefsAndMapRefs(t *testing.T) {
	e := &Arith{Op: OpAdd,
		L: &ColRef{Idx: 2, K: types.KindInt},
		R: &Cast{X: &ColRef{Idx: 5, K: types.KindFloat}, To: types.KindInt},
		K: types.KindInt}
	refs := Refs(e, nil)
	if len(refs) != 2 || refs[0] != 2 || refs[1] != 5 {
		t.Fatalf("refs = %v", refs)
	}
	shifted := MapRefs(e, func(i int) int { return i - 2 })
	refs2 := Refs(shifted, nil)
	if refs2[0] != 0 || refs2[1] != 3 {
		t.Fatalf("shifted refs = %v", refs2)
	}
	// The original is untouched.
	if Refs(e, nil)[0] != 2 {
		t.Fatal("MapRefs mutated its input")
	}
}

func TestSplitAndAndAll(t *testing.T) {
	a := &Const{Val: types.NewBool(true)}
	b := &Const{Val: types.NewBool(false)}
	c := &Const{Val: types.NewBool(true)}
	tree := &Logic{And: true, L: &Logic{And: true, L: a, R: b}, R: c}
	parts := SplitConjuncts(tree, nil)
	if len(parts) != 3 {
		t.Fatalf("conjuncts = %d", len(parts))
	}
	back := AndAll(parts)
	if back == nil || !strings.Contains(back.String(), "AND") {
		t.Fatalf("AndAll = %v", back)
	}
	if AndAll(nil) != nil {
		t.Fatal("AndAll(nil) must be nil")
	}
}

func TestEvalScalar(t *testing.T) {
	v, err := EvalScalar(&Arith{Op: OpMul,
		L: &Const{Val: types.NewInt(6)},
		R: &Const{Val: types.NewInt(7)}, K: types.KindInt}, &Context{})
	if err != nil || v.I != 42 {
		t.Fatalf("scalar = %v, %v", v, err)
	}
}

func TestScalarFuncKindResolution(t *testing.T) {
	if k, ok := ScalarFuncKind("ABS", []types.Kind{types.KindFloat}); !ok || k != types.KindFloat {
		t.Fatal("ABS(float) -> float")
	}
	if k, ok := ScalarFuncKind("COALESCE", []types.Kind{types.KindNull, types.KindInt, types.KindFloat}); !ok || k != types.KindFloat {
		t.Fatal("COALESCE promotes")
	}
	if _, ok := ScalarFuncKind("ABS", []types.Kind{types.KindString}); ok {
		t.Fatal("ABS(string) must be rejected")
	}
	if _, ok := ScalarFuncKind("NOPE", []types.Kind{}); ok {
		t.Fatal("unknown function must be rejected")
	}
	if k, ok := ScalarFuncKind("PATH_LENGTH", []types.Kind{types.KindPath}); !ok || k != types.KindInt {
		t.Fatal("PATH_LENGTH(path) -> int")
	}
}
