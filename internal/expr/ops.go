package expr

import (
	"fmt"
	"strings"

	"graphsql/internal/storage"
	"graphsql/internal/types"
)

// ArithOp enumerates arithmetic operators.
type ArithOp uint8

// Arithmetic operators.
const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
)

func (op ArithOp) String() string {
	return [...]string{"+", "-", "*", "/", "%"}[op]
}

// Arith is a binary arithmetic expression over numeric operands, both
// already promoted to the common kind K by the binder.
type Arith struct {
	Op   ArithOp
	L, R Expr
	K    types.Kind
}

// Kind implements Expr.
func (a *Arith) Kind() types.Kind { return a.K }

func (a *Arith) String() string {
	return fmt.Sprintf("(%s %s %s)", a.L, a.Op, a.R)
}

// Eval implements Expr with specialized int/float loops.
func (a *Arith) Eval(ctx *Context, in *storage.Chunk) (*storage.Column, error) {
	lc, err := a.L.Eval(ctx, in)
	if err != nil {
		return nil, err
	}
	rc, err := a.R.Eval(ctx, in)
	if err != nil {
		return nil, err
	}
	n := lc.Len()
	out := storage.NewColumn(a.K, n)
	if a.K == types.KindInt {
		for i := 0; i < n; i++ {
			if lc.IsNull(i) || rc.IsNull(i) {
				out.AppendNull()
				continue
			}
			x, y := lc.Ints[i], rc.Ints[i]
			var v int64
			switch a.Op {
			case OpAdd:
				v = x + y
			case OpSub:
				v = x - y
			case OpMul:
				v = x * y
			case OpDiv:
				if y == 0 {
					return nil, fmt.Errorf("division by zero")
				}
				v = x / y
			case OpMod:
				if y == 0 {
					return nil, fmt.Errorf("modulo by zero")
				}
				v = x % y
			}
			out.AppendInt(v)
		}
		return out, nil
	}
	// Float path; operands may still be int-backed (promotion).
	lf := asFloats(lc)
	rf := asFloats(rc)
	for i := 0; i < n; i++ {
		if lc.IsNull(i) || rc.IsNull(i) {
			out.AppendNull()
			continue
		}
		x, y := lf(i), rf(i)
		var v float64
		switch a.Op {
		case OpAdd:
			v = x + y
		case OpSub:
			v = x - y
		case OpMul:
			v = x * y
		case OpDiv:
			if y == 0 {
				return nil, fmt.Errorf("division by zero")
			}
			v = x / y
		case OpMod:
			return nil, fmt.Errorf("%% requires integer operands")
		}
		out.AppendFloat(v)
	}
	return out, nil
}

// asFloats returns an accessor that widens a numeric column to float.
func asFloats(c *storage.Column) func(int) float64 {
	if c.Kind == types.KindFloat {
		return func(i int) float64 { return c.Floats[i] }
	}
	return func(i int) float64 { return float64(c.Ints[i]) }
}

// Neg is unary minus.
type Neg struct {
	X Expr
	K types.Kind
}

// Kind implements Expr.
func (u *Neg) Kind() types.Kind { return u.K }

func (u *Neg) String() string { return fmt.Sprintf("(-%s)", u.X) }

// Eval implements Expr.
func (u *Neg) Eval(ctx *Context, in *storage.Chunk) (*storage.Column, error) {
	xc, err := u.X.Eval(ctx, in)
	if err != nil {
		return nil, err
	}
	n := xc.Len()
	out := storage.NewColumn(u.K, n)
	for i := 0; i < n; i++ {
		if xc.IsNull(i) {
			out.AppendNull()
			continue
		}
		if u.K == types.KindFloat {
			out.AppendFloat(-xc.Floats[i])
		} else {
			out.AppendInt(-xc.Ints[i])
		}
	}
	return out, nil
}

// CmpOp enumerates comparison operators.
type CmpOp uint8

// Comparison operators.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

func (op CmpOp) String() string {
	return [...]string{"=", "<>", "<", "<=", ">", ">="}[op]
}

// CmpOpFromString maps the SQL token to the operator.
func CmpOpFromString(s string) (CmpOp, bool) {
	switch s {
	case "=":
		return CmpEq, true
	case "<>":
		return CmpNe, true
	case "<":
		return CmpLt, true
	case "<=":
		return CmpLe, true
	case ">":
		return CmpGt, true
	case ">=":
		return CmpGe, true
	}
	return 0, false
}

func cmpHolds(op CmpOp, c int) bool {
	switch op {
	case CmpEq:
		return c == 0
	case CmpNe:
		return c != 0
	case CmpLt:
		return c < 0
	case CmpLe:
		return c <= 0
	case CmpGt:
		return c > 0
	case CmpGe:
		return c >= 0
	}
	return false
}

// Cmp compares two operands of a common comparable kind; NULL operands
// yield NULL (three-valued logic).
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// Kind implements Expr.
func (c *Cmp) Kind() types.Kind { return types.KindBool }

func (c *Cmp) String() string { return fmt.Sprintf("(%s %s %s)", c.L, c.Op, c.R) }

// Eval implements Expr.
func (c *Cmp) Eval(ctx *Context, in *storage.Chunk) (*storage.Column, error) {
	lc, err := c.L.Eval(ctx, in)
	if err != nil {
		return nil, err
	}
	rc, err := c.R.Eval(ctx, in)
	if err != nil {
		return nil, err
	}
	n := lc.Len()
	out := storage.NewColumn(types.KindBool, n)
	// Fast paths for matching primitive kinds without nulls.
	if lc.Nulls == nil && rc.Nulls == nil {
		switch {
		case lc.Kind != types.KindFloat && rc.Kind != types.KindFloat &&
			lc.Kind != types.KindString && rc.Kind != types.KindString &&
			lc.Kind != types.KindPath && rc.Kind != types.KindPath:
			for i := 0; i < n; i++ {
				out.AppendInt(boolToInt(cmpHolds(c.Op, cmpInt(lc.Ints[i], rc.Ints[i]))))
			}
			return out, nil
		case lc.Kind == types.KindString && rc.Kind == types.KindString:
			for i := 0; i < n; i++ {
				out.AppendInt(boolToInt(cmpHolds(c.Op, strings.Compare(lc.Strs[i], rc.Strs[i]))))
			}
			return out, nil
		}
	}
	for i := 0; i < n; i++ {
		lv, rv := lc.Get(i), rc.Get(i)
		if lv.Null || rv.Null {
			out.AppendNull()
			continue
		}
		out.AppendInt(boolToInt(cmpHolds(c.Op, types.Compare(lv, rv))))
	}
	return out, nil
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Logic is AND/OR under SQL three-valued logic.
type Logic struct {
	And  bool // true = AND, false = OR
	L, R Expr
}

// Kind implements Expr.
func (l *Logic) Kind() types.Kind { return types.KindBool }

func (l *Logic) String() string {
	op := "OR"
	if l.And {
		op = "AND"
	}
	return fmt.Sprintf("(%s %s %s)", l.L, op, l.R)
}

// Eval implements Expr.
func (l *Logic) Eval(ctx *Context, in *storage.Chunk) (*storage.Column, error) {
	lc, err := l.L.Eval(ctx, in)
	if err != nil {
		return nil, err
	}
	rc, err := l.R.Eval(ctx, in)
	if err != nil {
		return nil, err
	}
	n := lc.Len()
	out := storage.NewColumn(types.KindBool, n)
	for i := 0; i < n; i++ {
		ln, rn := lc.IsNull(i), rc.IsNull(i)
		var lv, rv bool
		if !ln {
			lv = lc.Ints[i] != 0
		}
		if !rn {
			rv = rc.Ints[i] != 0
		}
		if l.And {
			switch {
			case !ln && !lv, !rn && !rv:
				out.AppendInt(0)
			case ln || rn:
				out.AppendNull()
			default:
				out.AppendInt(1)
			}
		} else {
			switch {
			case !ln && lv, !rn && rv:
				out.AppendInt(1)
			case ln || rn:
				out.AppendNull()
			default:
				out.AppendInt(0)
			}
		}
	}
	return out, nil
}

// Not is logical negation (NULL stays NULL).
type Not struct{ X Expr }

// Kind implements Expr.
func (u *Not) Kind() types.Kind { return types.KindBool }

func (u *Not) String() string { return fmt.Sprintf("(NOT %s)", u.X) }

// Eval implements Expr.
func (u *Not) Eval(ctx *Context, in *storage.Chunk) (*storage.Column, error) {
	xc, err := u.X.Eval(ctx, in)
	if err != nil {
		return nil, err
	}
	n := xc.Len()
	out := storage.NewColumn(types.KindBool, n)
	for i := 0; i < n; i++ {
		if xc.IsNull(i) {
			out.AppendNull()
			continue
		}
		out.AppendInt(boolToInt(xc.Ints[i] == 0))
	}
	return out, nil
}

// Concat is the || string concatenation operator; non-string operands
// were wrapped in casts by the binder.
type Concat struct{ L, R Expr }

// Kind implements Expr.
func (c *Concat) Kind() types.Kind { return types.KindString }

func (c *Concat) String() string { return fmt.Sprintf("(%s || %s)", c.L, c.R) }

// Eval implements Expr.
func (c *Concat) Eval(ctx *Context, in *storage.Chunk) (*storage.Column, error) {
	lc, err := c.L.Eval(ctx, in)
	if err != nil {
		return nil, err
	}
	rc, err := c.R.Eval(ctx, in)
	if err != nil {
		return nil, err
	}
	n := lc.Len()
	out := storage.NewColumn(types.KindString, n)
	for i := 0; i < n; i++ {
		if lc.IsNull(i) || rc.IsNull(i) {
			out.AppendNull()
			continue
		}
		out.AppendString(lc.Strs[i] + rc.Strs[i])
	}
	return out, nil
}

// IsNull is X IS [NOT] NULL.
type IsNull struct {
	X   Expr
	Not bool
}

// Kind implements Expr.
func (e *IsNull) Kind() types.Kind { return types.KindBool }

func (e *IsNull) String() string {
	if e.Not {
		return fmt.Sprintf("(%s IS NOT NULL)", e.X)
	}
	return fmt.Sprintf("(%s IS NULL)", e.X)
}

// Eval implements Expr.
func (e *IsNull) Eval(ctx *Context, in *storage.Chunk) (*storage.Column, error) {
	xc, err := e.X.Eval(ctx, in)
	if err != nil {
		return nil, err
	}
	n := xc.Len()
	out := storage.NewColumn(types.KindBool, n)
	for i := 0; i < n; i++ {
		isn := xc.IsNull(i)
		out.AppendInt(boolToInt(isn != e.Not))
	}
	return out, nil
}
