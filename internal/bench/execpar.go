package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"time"
)

// ExecParPoint is one measurement of the -exp execpar experiment: a
// relational-operator-heavy LDBC workload executed with a fixed worker
// budget. Speedup is relative to the smallest worker count of the same
// (SF, workload) pair. The JSON field names are stable — downstream
// tooling tracks the perf trajectory across commits with them.
type ExecParPoint struct {
	Workload string  `json:"workload"`
	SF       int     `json:"sf"`
	Shrink   int     `json:"shrink"`
	Workers  int     `json:"workers"`
	Seconds  float64 `json:"seconds"`
	Speedup  float64 `json:"speedup"`
}

// execParWorkloads are the measured queries. Each leans on one
// parallelized operator; outer COUNT shells keep rendered outputs
// small without shrinking the inner operator's work. All run over the
// LDBC friends table (src, dst, creationDate, weight, iweight).
var execParWorkloads = []struct {
	name  string
	query string
}{
	// Friends-of-friends self-join: hash build over |E| rows, probe
	// emitting the two-hop pair multiset.
	{"join_fof", `SELECT COUNT(*) FROM friends a JOIN friends b ON a.dst = b.src AND a.src < b.dst`},
	// Merge-safe aggregation: partitioned pre-aggregation path.
	{"groupby_degree", `SELECT COUNT(*) FROM (
		SELECT src, COUNT(*) AS deg, MIN(dst) AS lo, MAX(dst) AS hi, SUM(iweight) AS tw
		FROM friends GROUP BY src) t WHERE t.deg > 0`},
	// Float AVG forces the general per-group accumulation path.
	{"groupby_avg", `SELECT COUNT(*) FROM (
		SELECT src % 512 AS b, AVG(weight) AS aw, SUM(weight) AS sw
		FROM friends GROUP BY src % 512) t WHERE t.aw >= 0`},
	// Full-table ORDER BY (the LIMIT applies after the sort).
	{"orderby", `SELECT src, dst, weight FROM friends ORDER BY weight DESC, src, dst LIMIT 10`},
	// Sharded dedup over a two-column key.
	{"distinct", `SELECT COUNT(*) FROM (SELECT DISTINCT src, dst % 16 FROM friends) t`},
	// Sharded multiset set operation.
	{"except_all", `SELECT COUNT(*) FROM (
		SELECT src, dst FROM friends EXCEPT ALL SELECT dst, src FROM friends WHERE iweight > 2) t`},
}

// execParReps runs per configuration; the minimum is reported to damp
// scheduler noise.
const execParReps = 3

// ExecPar runs the relational-operator scalability experiment: each
// workload swept over o.Workers. Every run's rendered result is
// compared against the smallest worker count's — the experiment
// doubles as a coarse differential check of the determinism guarantee
// on real workload sizes. When o.JSONOut is set the points are also
// emitted as a JSON array.
func ExecPar(o Options) error {
	o.Defaults()
	o.Workers = append([]int(nil), o.Workers...)
	sort.Ints(o.Workers)
	fmt.Fprintf(o.Out, "Relational-operator scalability: shrink=%d, GOMAXPROCS=%d\n",
		o.Shrink, runtime.GOMAXPROCS(0))
	fmt.Fprintf(o.Out, "%-6s %-16s %8s %14s %10s\n", "SF", "workload", "workers", "time (s)", "speedup")
	var points []ExecParPoint
	for _, sf := range o.SFs {
		e, _, err := Setup(sf, o.Shrink, o.Seed)
		if err != nil {
			return err
		}
		for _, wl := range execParWorkloads {
			var base float64
			var baseRender string
			for wi, w := range o.Workers {
				e.SetParallelism(w)
				best := time.Duration(1 << 62)
				var render string
				for r := 0; r < execParReps; r++ {
					start := time.Now()
					res, err := e.Query(wl.query)
					if err != nil {
						return fmt.Errorf("%s: %w", wl.name, err)
					}
					if d := time.Since(start); d < best {
						best = d
					}
					render = res.String()
				}
				if wi == 0 {
					base = best.Seconds()
					baseRender = render
				} else if render != baseRender {
					return fmt.Errorf("%s: workers=%d renders differently from workers=%d (determinism violation)",
						wl.name, w, o.Workers[0])
				}
				p := ExecParPoint{
					Workload: wl.name, SF: sf, Shrink: o.Shrink, Workers: w,
					Seconds: best.Seconds(),
				}
				if p.Seconds > 0 {
					p.Speedup = base / p.Seconds
				}
				points = append(points, p)
				fmt.Fprintf(o.Out, "%-6d %-16s %8d %14.6f %10.3f\n",
					sf, wl.name, w, p.Seconds, p.Speedup)
			}
		}
	}
	if o.JSONOut != nil {
		enc := json.NewEncoder(o.JSONOut)
		enc.SetIndent("", "  ")
		if err := enc.Encode(points); err != nil {
			return err
		}
	}
	return nil
}
