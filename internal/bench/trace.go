package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"graphsql/internal/engine"
	itrace "graphsql/internal/trace"
	"graphsql/internal/types"
)

// TracePoint is one measurement of the -exp trace experiment: a
// prepared statement executed back-to-back with tracing off (the
// production default) and tracing on (a fresh span recorder per op,
// exactly what EXPLAIN ANALYZE and a traced wire request pay). The
// overhead ratio traced/untraced is approximately host-independent —
// both sides run on the same machine seconds apart — so benchdiff can
// gate it on ANY host, like the parse allocs/op points. The JSON field
// names are stable; downstream tooling tracks them.
type TracePoint struct {
	Workload        string  `json:"workload"`
	SF              int     `json:"sf"`
	Shrink          int     `json:"shrink"`
	Spans           int     `json:"spans"`
	UntracedNsPerOp float64 `json:"untraced_ns_per_op"`
	TracedNsPerOp   float64 `json:"traced_ns_per_op"`
	OverheadRatio   float64 `json:"overhead_ratio"`
}

// traceWorkloads bracket the tracing cost: a cheap selective scan
// (where fixed per-query span cost is most visible) and the paper's
// shortest-path shape (where per-level frontier samples dominate).
// Reps are per round; the cheap statement needs many to rise above
// timer resolution.
var traceWorkloads = []struct {
	name  string
	query string
	reps  int
}{
	{"point_filter", `SELECT src, dst FROM friends WHERE src = ? ORDER BY dst LIMIT 8`, 200},
	{"shortest_path", Q13, 25},
}

// traceRounds repeats each (workload, mode) measurement; the fastest
// round is reported, like the other experiments.
const traceRounds = 5

// countSpans walks a rendered span tree.
func countSpans(n *itrace.Node) int {
	if n == nil {
		return 0
	}
	total := 1
	for _, c := range n.Children {
		total += countSpans(c)
	}
	return total
}

// Trace runs the tracing-overhead micro-experiment on the smallest
// configured scale factor.
func Trace(o Options) error {
	o.Defaults()
	sf := o.SFs[0]
	e, ds, err := Setup(sf, o.Shrink, o.Seed)
	if err != nil {
		return err
	}
	e.SetParallelism(o.Parallelism)
	src, dst := ds.RandomPairs(1, o.Seed)

	fmt.Fprintf(o.Out, "Tracing overhead: traced vs untraced prepared execution, SF %d shrink=%d\n", sf, o.Shrink)
	fmt.Fprintf(o.Out, "%-16s %8s %16s %16s %10s\n", "workload", "spans", "untraced ns/op", "traced ns/op", "overhead")
	ctx := context.Background()
	var points []TracePoint
	for _, wl := range traceWorkloads {
		params := []types.Value{types.NewInt(src[0])}
		if wl.name == "shortest_path" {
			params = []types.Value{types.NewInt(src[0]), types.NewInt(dst[0])}
		}
		prep, err := e.Prepare(wl.query, params...)
		if err != nil {
			return fmt.Errorf("%s: %w", wl.name, err)
		}
		run := func(tr *itrace.Trace) error {
			opts := engine.DefaultExecOptions()
			opts.Trace = tr
			_, err := e.ExecPrepared(ctx, prep, &opts, params...)
			return err
		}
		// Warm-up both modes: first-use initialization must not count.
		if err := run(nil); err != nil {
			return fmt.Errorf("%s: %w", wl.name, err)
		}
		warm := itrace.New()
		if err := run(warm); err != nil {
			return fmt.Errorf("%s traced: %w", wl.name, err)
		}
		spans := countSpans(warm.Tree())

		bestOff := time.Duration(1 << 62)
		bestOn := time.Duration(1 << 62)
		for r := 0; r < traceRounds; r++ {
			start := time.Now()
			for i := 0; i < wl.reps; i++ {
				if err := run(nil); err != nil {
					return err
				}
			}
			if d := time.Since(start); d < bestOff {
				bestOff = d
			}
			start = time.Now()
			for i := 0; i < wl.reps; i++ {
				// A fresh recorder per op is the real client cost.
				if err := run(itrace.New()); err != nil {
					return err
				}
			}
			if d := time.Since(start); d < bestOn {
				bestOn = d
			}
		}
		p := TracePoint{
			Workload:        wl.name,
			SF:              sf,
			Shrink:          o.Shrink,
			Spans:           spans,
			UntracedNsPerOp: float64(bestOff.Nanoseconds()) / float64(wl.reps),
			TracedNsPerOp:   float64(bestOn.Nanoseconds()) / float64(wl.reps),
		}
		if p.UntracedNsPerOp > 0 {
			p.OverheadRatio = p.TracedNsPerOp / p.UntracedNsPerOp
		}
		points = append(points, p)
		fmt.Fprintf(o.Out, "%-16s %8d %16.1f %16.1f %9.3fx\n",
			p.Workload, p.Spans, p.UntracedNsPerOp, p.TracedNsPerOp, p.OverheadRatio)
	}
	if o.JSONOut != nil {
		enc := json.NewEncoder(o.JSONOut)
		enc.SetIndent("", "  ")
		if err := enc.Encode(points); err != nil {
			return err
		}
	}
	return nil
}
