// Package bench regenerates every table and figure of the paper's
// evaluation (§4) plus the ablations listed in DESIGN.md. Each
// experiment prints the same rows/series the paper reports; absolute
// numbers depend on the host, but the shapes (weighted vs. unweighted
// gap, per-pair amortization with batch size, native vs. folk-method
// factors) reproduce the paper's findings.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"graphsql/internal/baseline"
	"graphsql/internal/core"
	"graphsql/internal/engine"
	"graphsql/internal/graph"
	"graphsql/internal/ldbc"
	"graphsql/internal/storage"
	"graphsql/internal/types"
)

// Options configures the experiment drivers.
type Options struct {
	// SFs selects the scale factors to sweep.
	SFs []int
	// Shrink divides dataset sizes (see ldbc.Config.Shrink); 1 is the
	// paper's full size.
	Shrink int
	// Pairs is the number of random source/destination pairs per
	// configuration (the paper used 1000 for SF 1-30, 100 above).
	Pairs int
	// BatchSizes are the figure-1b batch sizes.
	BatchSizes []int
	// Seed fixes the workload.
	Seed uint64
	// Workers are the worker counts swept by the parallel experiment.
	// Default: 1, 2, 4, … up to GOMAXPROCS.
	Workers []int
	// Parallelism sets the engine worker budget for the non-sweep
	// experiments (0 = one worker per CPU).
	Parallelism int
	// Out receives the report.
	Out io.Writer
	// JSONOut, when non-nil, additionally receives machine-readable
	// results from experiments that emit them (currently parallel).
	JSONOut io.Writer
}

// Defaults fills unset fields with laptop-friendly values.
func (o *Options) Defaults() {
	if len(o.SFs) == 0 {
		o.SFs = []int{1, 3, 10}
	}
	if o.Shrink == 0 {
		o.Shrink = 10
	}
	if o.Pairs == 0 {
		o.Pairs = 20
	}
	if len(o.BatchSizes) == 0 {
		o.BatchSizes = []int{1, 2, 4, 8, 16, 32, 64, 128}
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if len(o.Workers) == 0 {
		p := runtime.GOMAXPROCS(0)
		for w := 1; w < p; w *= 2 {
			o.Workers = append(o.Workers, w)
		}
		o.Workers = append(o.Workers, p)
	}
}

// Q13 is the unweighted shortest-path query of the paper (appendix
// A.1, LDBC SNB Q13 shape).
const Q13 = `SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER friends EDGE (src, dst)`

// Q14Variant is the paper's weighted Q14 variant: a weighted shortest
// path over the precomputed affinity weights. The integer weight
// column routes it through Dijkstra with the radix queue, as in §3.2.
const Q14Variant = `SELECT CHEAPEST SUM(f: iweight) WHERE ? REACHES ? OVER friends f EDGE (src, dst)`

// Q14FloatVariant uses the float affinity, routing through the
// binary-heap Dijkstra.
const Q14FloatVariant = `SELECT CHEAPEST SUM(f: weight) WHERE ? REACHES ? OVER friends f EDGE (src, dst)`

// Setup generates a dataset and loads it into a fresh engine.
func Setup(sf, shrink int, seed uint64) (*engine.Engine, *ldbc.Dataset, error) {
	ds, err := ldbc.Generate(ldbc.Config{SF: sf, Shrink: shrink, Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	e := engine.New()
	if err := ds.Load(e.Catalog()); err != nil {
		return nil, nil, err
	}
	return e, ds, nil
}

// Table1 reproduces Table 1: graph sizes per scale factor, printing
// the generated sizes next to the paper's numbers.
func Table1(o Options) error {
	o.Defaults()
	fmt.Fprintf(o.Out, "Table 1: size of the graph at different scale factors (shrink=%d)\n", o.Shrink)
	fmt.Fprintf(o.Out, "%-6s %14s %14s %14s %14s\n", "SF", "vertices", "edges", "paper |V|", "paper |E|")
	for _, sf := range o.SFs {
		ds, err := ldbc.Generate(ldbc.Config{SF: sf, Shrink: o.Shrink, Seed: o.Seed})
		if err != nil {
			return err
		}
		pv, pe, _ := ldbc.Sizes(sf)
		fmt.Fprintf(o.Out, "%-6d %14d %14d %14d %14d\n", sf, ds.NumVertices(), ds.NumEdges(), pv, pe)
	}
	return nil
}

// timeQuery runs a query n times with per-run parameter pairs and
// returns the mean latency.
func timeQuery(e *engine.Engine, q string, src, dst []int64) (time.Duration, error) {
	start := time.Now()
	for i := range src {
		if _, err := e.Query(q, types.NewInt(src[i]), types.NewInt(dst[i])); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(len(src)), nil
}

// Fig1a reproduces figure 1a: average latency per query for Q13
// (unweighted) and the Q14 variant (weighted) over a scale-factor
// sweep.
func Fig1a(o Options) error {
	o.Defaults()
	fmt.Fprintf(o.Out, "Figure 1a: average latency per query (shrink=%d, %d pairs per SF)\n", o.Shrink, o.Pairs)
	fmt.Fprintf(o.Out, "%-6s %14s %16s %10s\n", "SF", "Q13 (s)", "Q14var (s)", "ratio")
	for _, sf := range o.SFs {
		e, ds, err := Setup(sf, o.Shrink, o.Seed)
		if err != nil {
			return err
		}
		e.SetParallelism(o.Parallelism)
		src, dst := ds.RandomPairs(o.Pairs, o.Seed+uint64(sf))
		// Warm up once so first-use allocation noise drops out.
		if _, err := e.Query(Q13, types.NewInt(src[0]), types.NewInt(dst[0])); err != nil {
			return err
		}
		t13, err := timeQuery(e, Q13, src, dst)
		if err != nil {
			return err
		}
		t14, err := timeQuery(e, Q14Variant, src, dst)
		if err != nil {
			return err
		}
		fmt.Fprintf(o.Out, "%-6d %14.6f %16.6f %10.3f\n",
			sf, t13.Seconds(), t14.Seconds(), t14.Seconds()/t13.Seconds())
	}
	return nil
}

// Fig1b reproduces figure 1b: Q13 executed with multiple ⟨source,
// destination⟩ pairs grouped in a single query at varying batch
// sizes; the reported time is latency divided by batch size.
func Fig1b(o Options) error {
	o.Defaults()
	fmt.Fprintf(o.Out, "Figure 1b: latency per pair at varying batch sizes (shrink=%d)\n", o.Shrink)
	fmt.Fprintf(o.Out, "%-6s", "SF")
	for _, b := range o.BatchSizes {
		fmt.Fprintf(o.Out, " %12s", fmt.Sprintf("b=%d (s)", b))
	}
	fmt.Fprintln(o.Out)
	for _, sf := range o.SFs {
		e, ds, err := Setup(sf, o.Shrink, o.Seed)
		if err != nil {
			return err
		}
		e.SetParallelism(o.Parallelism)
		fmt.Fprintf(o.Out, "%-6d", sf)
		for _, b := range o.BatchSizes {
			perPair, err := RunBatch(e, ds, b, o.Seed)
			if err != nil {
				return err
			}
			fmt.Fprintf(o.Out, " %12.6f", perPair.Seconds())
		}
		fmt.Fprintln(o.Out)
	}
	return nil
}

// RunBatch loads b random pairs into a pairs table and executes one
// many-to-many Q13 over it, returning latency per pair. This is the
// batching experiment: one graph construction amortized over the
// whole batch.
func RunBatch(e *engine.Engine, ds *ldbc.Dataset, b int, seed uint64) (time.Duration, error) {
	_ = e.Catalog().DropTable("pairs")
	pairs, err := e.Catalog().CreateTable("pairs", storage.Schema{
		{Name: "src", Kind: types.KindInt},
		{Name: "dst", Kind: types.KindInt},
	})
	if err != nil {
		return 0, err
	}
	src, dst := ds.RandomPairs(b, seed+uint64(b))
	for i := range src {
		pairs.Cols[0].AppendInt(src[i])
		pairs.Cols[1].AppendInt(dst[i])
	}
	const q = `SELECT p.src, p.dst, CHEAPEST SUM(1) AS cost
		FROM pairs p
		WHERE p.src REACHES p.dst OVER friends EDGE (src, dst)`
	start := time.Now()
	if _, err := e.Query(q); err != nil {
		return 0, err
	}
	return time.Since(start) / time.Duration(b), nil
}

// Baselines runs the E4 motivation experiment: the native operator
// against the three folk methods of §1 on unweighted distances.
func Baselines(o Options) error {
	o.Defaults()
	sf := o.SFs[0]
	e, ds, err := Setup(sf, o.Shrink, o.Seed)
	if err != nil {
		return err
	}
	e.SetParallelism(o.Parallelism)
	n := o.Pairs
	if n > 10 {
		n = 10 // the folk methods are slow by design
	}
	src, dst := ds.RandomPairs(n, o.Seed)
	fmt.Fprintf(o.Out, "E4 baselines: unweighted distance, SF %d shrink=%d, %d pairs\n", sf, o.Shrink, n)
	type method struct {
		name string
		run  func(s, d int64) (int64, error)
	}
	methods := []method{
		{"native REACHES", func(s, d int64) (int64, error) {
			return baseline.Native(e, "friends", "src", "dst", s, d)
		}},
		{"recursive CTE", func(s, d int64) (int64, error) {
			return baseline.RecursiveCTE(e, "friends", "src", "dst", s, d, 0)
		}},
		{"PSM (row-at-a-time)", func(s, d int64) (int64, error) {
			return baseline.PSM(e, "friends", "src", "dst", s, d, 0)
		}},
		{"self-join chain (<=3 hops)", func(s, d int64) (int64, error) {
			return baseline.SelfJoinChain(e, "friends", "src", "dst", s, d, 3)
		}},
	}
	fmt.Fprintf(o.Out, "%-28s %14s\n", "method", "avg time (s)")
	for _, m := range methods {
		start := time.Now()
		for i := range src {
			if _, err := m.run(src[i], dst[i]); err != nil {
				return fmt.Errorf("%s: %w", m.name, err)
			}
		}
		avg := time.Since(start) / time.Duration(len(src))
		fmt.Fprintf(o.Out, "%-28s %14.6f\n", m.name, avg.Seconds())
	}
	return nil
}

// Phases runs the E6 breakdown: how much of a single-pair query is
// graph construction versus shortest-path computation, the paper's §4
// observation that "the execution time is almost entirely dominated by
// the construction of the graph representation", and the §6 graph
// index that removes it.
func Phases(o Options) error {
	o.Defaults()
	fmt.Fprintf(o.Out, "E6 phase breakdown (shrink=%d)\n", o.Shrink)
	fmt.Fprintf(o.Out, "%-6s %14s %14s %16s %16s\n",
		"SF", "build (s)", "solve (s)", "query adhoc (s)", "query indexed (s)")
	for _, sf := range o.SFs {
		e, ds, err := Setup(sf, o.Shrink, o.Seed)
		if err != nil {
			return err
		}
		e.SetParallelism(o.Parallelism)
		friends, _ := e.Catalog().Table("friends")
		// Phase 1: CSR construction from the edge chunk.
		start := time.Now()
		pg, err := core.BuildGraphP(friends.Chunk(), 0, 1, o.Parallelism)
		if err != nil {
			return err
		}
		build := time.Since(start)
		// Phase 2: one BFS on the prepared graph.
		src, dst := ds.RandomPairs(o.Pairs, o.Seed)
		start = time.Now()
		for i := range src {
			if _, err := pg.Reachability(types.NewInt(src[i]), types.NewInt(dst[i])); err != nil {
				return err
			}
		}
		solve := time.Since(start) / time.Duration(len(src))
		// End-to-end queries without and with the graph index.
		tAdhoc, err := timeQuery(e, Q13, src, dst)
		if err != nil {
			return err
		}
		if err := e.BuildGraphIndex("friends", "src", "dst"); err != nil {
			return err
		}
		tIndexed, err := timeQuery(e, Q13, src, dst)
		if err != nil {
			return err
		}
		fmt.Fprintf(o.Out, "%-6d %14.6f %14.6f %16.6f %16.6f\n",
			sf, build.Seconds(), solve.Seconds(), tAdhoc.Seconds(), tIndexed.Seconds())
	}
	return nil
}

// DijkstraQueues runs the E5 ablation: Dijkstra with the radix queue
// against Dijkstra with a conventional binary heap, on integer
// weights.
func DijkstraQueues(o Options) error {
	o.Defaults()
	fmt.Fprintf(o.Out, "E5 queue ablation: Dijkstra radix queue vs binary heap (shrink=%d, %d pairs)\n", o.Shrink, o.Pairs)
	fmt.Fprintf(o.Out, "%-6s %14s %14s %10s\n", "SF", "radix (s)", "binheap (s)", "ratio")
	for _, sf := range o.SFs {
		_, ds, err := Setup(sf, o.Shrink, o.Seed)
		if err != nil {
			return err
		}
		radix, binheap, err := RunQueueAblation(ds, o.Pairs, o.Seed, o.Parallelism)
		if err != nil {
			return err
		}
		fmt.Fprintf(o.Out, "%-6d %14.6f %14.6f %10.3f\n",
			sf, radix.Seconds(), binheap.Seconds(), binheap.Seconds()/radix.Seconds())
	}
	return nil
}

// RunQueueAblation times batched integer-weight Dijkstra with both
// priority queues over the same pairs, at the runtime level (no SQL).
// parallelism caps the solver workers (0 = one per CPU).
func RunQueueAblation(ds *ldbc.Dataset, pairs int, seed uint64, parallelism int) (radix, binheap time.Duration, err error) {
	g, weights, dict := BuildRuntimeGraph(ds)
	srcIDs, dstIDs := ds.RandomPairs(pairs, seed)
	srcs := make([]graph.VertexID, pairs)
	dsts := make([]graph.VertexID, pairs)
	for i := 0; i < pairs; i++ {
		srcs[i] = dict.LookupInt(srcIDs[i])
		dsts[i] = dict.LookupInt(dstIDs[i])
	}
	run := func(force bool) (time.Duration, error) {
		solver := graph.NewSolver(g)
		solver.Parallelism = parallelism
		spec := graph.Spec{WeightsI: weights, ForceBinaryHeap: force}
		start := time.Now()
		if _, err := solver.Solve(srcs, dsts, []graph.Spec{spec}); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}
	if radix, err = run(false); err != nil {
		return 0, 0, err
	}
	if binheap, err = run(true); err != nil {
		return 0, 0, err
	}
	return radix, binheap, nil
}

// BuildRuntimeGraph compiles a dataset straight into the runtime CSR,
// bypassing SQL; used by runtime-level ablations.
func BuildRuntimeGraph(ds *ldbc.Dataset) (*graph.CSR, []int64, *graph.Dict) {
	dict := graph.NewIntDict(ds.NumVertices())
	m := ds.NumEdges()
	src := make([]graph.VertexID, m)
	dst := make([]graph.VertexID, m)
	for i := 0; i < m; i++ {
		src[i] = dict.EncodeInt(ds.Src[i])
	}
	for i := 0; i < m; i++ {
		dst[i] = dict.EncodeInt(ds.Dst[i])
	}
	g, err := graph.BuildCSR(dict.Len(), src, dst)
	if err != nil {
		panic(err) // ids are dense by construction
	}
	return g, ds.IWeight, dict
}
