package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"time"

	"graphsql/internal/core"
)

// ParallelPoint is one measurement of the -exp parallel scalability
// experiment: the Fig-1b batched workload executed with a fixed worker
// budget. Speedup is relative to the smallest worker count of the same
// scale factor (the sweep is sorted), so a sweep including 1 reports
// true self-relative scaling. The JSON field names are stable — downstream
// tooling tracks the perf trajectory across commits with them.
type ParallelPoint struct {
	SF      int `json:"sf"`
	Shrink  int `json:"shrink"`
	Batch   int `json:"batch"`
	Workers int `json:"workers"`
	// BuildSeconds times graph construction (dictionary + CSR) alone.
	BuildSeconds float64 `json:"build_seconds"`
	// QuerySeconds times one batched many-to-many Q13 end to end.
	QuerySeconds float64 `json:"query_seconds"`
	// Speedup is baseline QuerySeconds / this QuerySeconds.
	Speedup float64 `json:"speedup"`
	// BuildSpeedup is the same ratio for BuildSeconds.
	BuildSpeedup float64 `json:"build_speedup"`
}

// parallelReps runs per configuration; the minimum is reported to damp
// scheduler noise.
const parallelReps = 3

// Parallel runs the multi-core scalability experiment: the Fig-1b
// batched workload (one many-to-many Q13 over `Batch` random pairs)
// and the isolated graph-construction phase, swept over o.Workers.
// When o.JSONOut is set the points are also emitted as a JSON array.
func Parallel(o Options) error {
	o.Defaults()
	// The speedup baseline is the smallest worker count; sort so an
	// unordered -workers list cannot invert the reported ratios.
	o.Workers = append([]int(nil), o.Workers...)
	sort.Ints(o.Workers)
	batch := o.BatchSizes[len(o.BatchSizes)-1]
	fmt.Fprintf(o.Out, "Parallel scalability: batched Q13 (batch=%d) and graph build, shrink=%d, GOMAXPROCS=%d\n",
		batch, o.Shrink, runtime.GOMAXPROCS(0))
	fmt.Fprintf(o.Out, "%-6s %8s %14s %14s %10s %10s\n",
		"SF", "workers", "build (s)", "query (s)", "speedup", "b.speedup")
	var points []ParallelPoint
	for _, sf := range o.SFs {
		e, ds, err := Setup(sf, o.Shrink, o.Seed)
		if err != nil {
			return err
		}
		friends, _ := e.Catalog().Table("friends")
		chunk := friends.Chunk()
		var baseQuery, baseBuild float64
		for wi, w := range o.Workers {
			e.SetParallelism(w)
			build, query := time.Duration(1<<62), time.Duration(1<<62)
			for r := 0; r < parallelReps; r++ {
				start := time.Now()
				if _, err := core.BuildGraphP(chunk, 0, 1, w); err != nil {
					return err
				}
				if d := time.Since(start); d < build {
					build = d
				}
				perPair, err := RunBatch(e, ds, batch, o.Seed)
				if err != nil {
					return err
				}
				if d := perPair * time.Duration(batch); d < query {
					query = d
				}
			}
			p := ParallelPoint{
				SF: sf, Shrink: o.Shrink, Batch: batch, Workers: w,
				BuildSeconds: build.Seconds(), QuerySeconds: query.Seconds(),
			}
			if wi == 0 {
				baseQuery, baseBuild = p.QuerySeconds, p.BuildSeconds
			}
			if p.QuerySeconds > 0 {
				p.Speedup = baseQuery / p.QuerySeconds
			}
			if p.BuildSeconds > 0 {
				p.BuildSpeedup = baseBuild / p.BuildSeconds
			}
			points = append(points, p)
			fmt.Fprintf(o.Out, "%-6d %8d %14.6f %14.6f %10.3f %10.3f\n",
				sf, w, p.BuildSeconds, p.QuerySeconds, p.Speedup, p.BuildSpeedup)
		}
	}
	if o.JSONOut != nil {
		enc := json.NewEncoder(o.JSONOut)
		enc.SetIndent("", "  ")
		if err := enc.Encode(points); err != nil {
			return err
		}
	}
	return nil
}
