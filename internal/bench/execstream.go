package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"graphsql/internal/engine"
)

// ExecStreamPoint is one measurement of the -exp execstream
// experiment: a prepared SELECT drained through the cursor seam under
// the pull executor and under the legacy materializing executor,
// back-to-back on the same host. Two properties are recorded per
// workload:
//
//   - time-to-first-row: the wall time from ExecPreparedCursor to the
//     first window. Under pull, execution happens during the drain, so
//     the first window of a pipeline-only query surfaces after one
//     batch; under materialization it waits for the whole result. The
//     speedup ratio (materialize TTFR / pull TTFR) is host-comparable
//     — both sides run seconds apart — and is what benchdiff gates.
//   - allocation volume: total bytes allocated per drain, reported per
//     executor with the materialize−pull delta. Informational, and it
//     can go either way: pull skips whole-result materialization but
//     pays copy costs re-batching ragged operator output into even
//     windows, and breakers hold their cores' full state under both
//     executors. What pull bounds is peak *live* intermediate size
//     (see TestPullBoundedIntermediates), not allocation volume.
//
// The JSON field names are stable; downstream tooling tracks them.
type ExecStreamPoint struct {
	Workload          string  `json:"workload"`
	SF                int     `json:"sf"`
	Shrink            int     `json:"shrink"`
	Rows              int     `json:"rows"`
	MaterializeTTFRNs float64 `json:"materialize_ttfr_ns"`
	PullTTFRNs        float64 `json:"pull_ttfr_ns"`
	// TTFRSpeedup is materialize TTFR / pull TTFR: > 1 means the pull
	// executor surfaces the first window earlier.
	TTFRSpeedup        float64 `json:"ttfr_speedup"`
	MaterializeSeconds float64 `json:"materialize_seconds"`
	PullSeconds        float64 `json:"pull_seconds"`
	MaterializeAllocMB float64 `json:"materialize_alloc_mb"`
	PullAllocMB        float64 `json:"pull_alloc_mb"`
	AllocDeltaMB       float64 `json:"alloc_delta_mb"`
}

// execStreamWorkloads bracket the executor seam: pipeline-only shapes
// (scan, filter) where pull streaming pays off, and a breaker (ORDER
// BY) that must materialize under both executors — its TTFR ratio near
// 1 documents the boundary of the claim and falls below benchdiff's
// signal floor, so it never gates.
var execStreamWorkloads = []struct {
	name  string
	query string
}{
	{"scan", `SELECT src, dst, iweight FROM friends`},
	{"filter_scan", `SELECT src, dst FROM friends WHERE dst > src`},
	{"order_by", `SELECT src, dst FROM friends ORDER BY dst, src`},
}

// execStreamRounds repeats each (workload, executor) measurement; the
// fastest round is reported, like the other experiments.
const execStreamRounds = 5

// execStreamWindow is the drain window; matching the pull executor's
// default batch keeps one window per operator batch.
const execStreamWindow = 1024

// drainOnce executes the prepared statement under one executor and
// drains it, returning time-to-first-window, total drain time, rows
// and bytes allocated.
func drainOnce(e *engine.Engine, prep *engine.Prepared, executor string) (ttfr, total time.Duration, rows int, allocBytes uint64, err error) {
	opts := engine.DefaultExecOptions()
	opts.Executor = executor
	var msBefore, msAfter runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	start := time.Now()
	cur, err := e.ExecPreparedCursor(context.Background(), prep, &opts)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	defer cur.Close()
	first := true
	for {
		win, err := cur.Next(execStreamWindow)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		if win == nil {
			break
		}
		if first {
			ttfr = time.Since(start)
			first = false
		}
		rows += win.NumRows()
	}
	total = time.Since(start)
	runtime.ReadMemStats(&msAfter)
	return ttfr, total, rows, msAfter.TotalAlloc - msBefore.TotalAlloc, nil
}

// ExecStream runs the executor-streaming micro-experiment on the
// smallest configured scale factor.
func ExecStream(o Options) error {
	o.Defaults()
	sf := o.SFs[0]
	e, _, err := Setup(sf, o.Shrink, o.Seed)
	if err != nil {
		return err
	}
	e.SetParallelism(o.Parallelism)

	fmt.Fprintf(o.Out, "Executor streaming: time-to-first-row and allocation, pull vs materialize, SF %d shrink=%d\n", sf, o.Shrink)
	fmt.Fprintf(o.Out, "%-12s %10s %14s %14s %8s %12s %12s %10s\n",
		"workload", "rows", "mat ttfr", "pull ttfr", "speedup", "mat alloc", "pull alloc", "delta")
	var points []ExecStreamPoint
	for _, wl := range execStreamWorkloads {
		prep, err := e.Prepare(wl.query)
		if err != nil {
			return fmt.Errorf("%s: %w", wl.name, err)
		}
		// Warm-up both executors: first-use initialization must not count.
		for _, ex := range []string{engine.ExecutorMaterialize, engine.ExecutorPull} {
			if _, _, _, _, err := drainOnce(e, prep, ex); err != nil {
				return fmt.Errorf("%s %s: %w", wl.name, ex, err)
			}
		}
		p := ExecStreamPoint{Workload: wl.name, SF: sf, Shrink: o.Shrink}
		best := func(ex string) (ttfr, total time.Duration, alloc uint64, err error) {
			ttfr, total, alloc = 1<<62, 1<<62, 1<<62
			for r := 0; r < execStreamRounds; r++ {
				tf, tt, rows, ab, err := drainOnce(e, prep, ex)
				if err != nil {
					return 0, 0, 0, err
				}
				p.Rows = rows
				if tf < ttfr {
					ttfr = tf
				}
				if tt < total {
					total = tt
				}
				if ab < alloc {
					alloc = ab
				}
			}
			return ttfr, total, alloc, nil
		}
		mtf, mtt, malloc, err := best(engine.ExecutorMaterialize)
		if err != nil {
			return fmt.Errorf("%s materialize: %w", wl.name, err)
		}
		ptf, ptt, palloc, err := best(engine.ExecutorPull)
		if err != nil {
			return fmt.Errorf("%s pull: %w", wl.name, err)
		}
		p.MaterializeTTFRNs = float64(mtf.Nanoseconds())
		p.PullTTFRNs = float64(ptf.Nanoseconds())
		if p.PullTTFRNs > 0 {
			p.TTFRSpeedup = p.MaterializeTTFRNs / p.PullTTFRNs
		}
		p.MaterializeSeconds = mtt.Seconds()
		p.PullSeconds = ptt.Seconds()
		const mb = 1 << 20
		p.MaterializeAllocMB = float64(malloc) / mb
		p.PullAllocMB = float64(palloc) / mb
		p.AllocDeltaMB = p.MaterializeAllocMB - p.PullAllocMB
		points = append(points, p)
		fmt.Fprintf(o.Out, "%-12s %10d %14s %14s %7.2fx %10.2fMB %10.2fMB %8.2fMB\n",
			p.Workload, p.Rows, mtf, ptf, p.TTFRSpeedup,
			p.MaterializeAllocMB, p.PullAllocMB, p.AllocDeltaMB)
	}
	if o.JSONOut != nil {
		enc := json.NewEncoder(o.JSONOut)
		enc.SetIndent("", "  ")
		if err := enc.Encode(points); err != nil {
			return err
		}
	}
	return nil
}
