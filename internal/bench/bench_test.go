package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"graphsql/internal/ldbc"
	"graphsql/internal/storage"
	"graphsql/internal/types"
)

// friendsPairsSchema is the schema of an ad hoc pairs table.
func friendsPairsSchema() storage.Schema {
	return storage.Schema{
		{Name: "src", Kind: types.KindInt},
		{Name: "dst", Kind: types.KindInt},
	}
}

func intValue(i int64) types.Value { return types.NewInt(i) }

// Setup2 generates a tiny dataset for runtime-level tests.
func Setup2(t *testing.T) (*ldbc.Dataset, uint64) {
	t.Helper()
	ds, err := ldbc.Generate(ldbc.Config{SF: 1, Shrink: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return ds, 5
}

// TestExperimentsRunEndToEnd smoke-tests every experiment driver on a
// tiny configuration and checks the reports have the expected rows.
func TestExperimentsRunEndToEnd(t *testing.T) {
	base := Options{SFs: []int{1}, Shrink: 100, Pairs: 3,
		BatchSizes: []int{1, 4}, Seed: 1}
	cases := []struct {
		name string
		run  func(Options) error
		want []string
	}{
		{"table1", Table1, []string{"Table 1", "9892", "362000"}},
		{"fig1a", Fig1a, []string{"Figure 1a", "Q13", "Q14var", "ratio"}},
		{"fig1b", Fig1b, []string{"Figure 1b", "b=1", "b=4"}},
		{"baselines", Baselines, []string{"native REACHES", "recursive CTE", "PSM", "self-join"}},
		{"phases", Phases, []string{"build (s)", "solve (s)", "indexed"}},
		{"queues", DijkstraQueues, []string{"radix", "binheap"}},
		{"parallel", Parallel, []string{"Parallel scalability", "workers", "speedup"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var buf bytes.Buffer
			o := base
			o.Out = &buf
			if err := c.run(o); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			for _, w := range c.want {
				if !strings.Contains(out, w) {
					t.Errorf("report missing %q:\n%s", w, out)
				}
			}
		})
	}
}

// TestParallelEmitsJSON checks the machine-readable output contract
// of the scalability experiment: a JSON array with one point per
// (SF, workers) pair and the stable field names tooling keys on.
func TestParallelEmitsJSON(t *testing.T) {
	var out, jsonBuf bytes.Buffer
	o := Options{SFs: []int{1}, Shrink: 100, Pairs: 2, BatchSizes: []int{1, 8},
		Seed: 1, Workers: []int{1, 2}, Out: &out, JSONOut: &jsonBuf}
	if err := Parallel(o); err != nil {
		t.Fatal(err)
	}
	var points []ParallelPoint
	if err := json.Unmarshal(jsonBuf.Bytes(), &points); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, jsonBuf.String())
	}
	if len(points) != 2 {
		t.Fatalf("got %d points, want 2", len(points))
	}
	for i, p := range points {
		if p.SF != 1 || p.Batch != 8 || p.Workers != o.Workers[i] {
			t.Fatalf("point %d malformed: %+v", i, p)
		}
		if p.QuerySeconds <= 0 || p.Speedup <= 0 {
			t.Fatalf("point %d missing timings: %+v", i, p)
		}
	}
}

func TestSetupLoadsTables(t *testing.T) {
	e, ds, err := Setup(1, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	friends, ok := e.Catalog().Table("friends")
	if !ok || friends.NumRows() != ds.NumEdges() {
		t.Fatal("friends not loaded")
	}
}

func TestRunBatchResultCorrectness(t *testing.T) {
	e, ds, err := Setup(1, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunBatch(e, ds, 16, 1); err != nil {
		t.Fatal(err)
	}
	// The pairs table exists and is re-created per batch.
	if _, ok := e.Catalog().Table("pairs"); !ok {
		t.Fatal("pairs table missing after RunBatch")
	}
	if _, err := RunBatch(e, ds, 4, 2); err != nil {
		t.Fatal(err)
	}
}

// TestBatchedAnswersMatchSinglePair verifies the batched many-to-many
// execution gives the same costs as one query per pair.
func TestBatchedAnswersMatchSinglePair(t *testing.T) {
	e, ds, err := Setup(1, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	src, dst := ds.RandomPairs(12, 99)
	pairs, err := e.Catalog().CreateTable("p2", friendsPairsSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		pairs.Cols[0].AppendInt(src[i])
		pairs.Cols[1].AppendInt(dst[i])
	}
	batched, err := e.Query(`
		SELECT p.src, p.dst, CHEAPEST SUM(1) AS cost
		FROM p2 p
		WHERE p.src REACHES p.dst OVER friends EDGE (src, dst)`)
	if err != nil {
		t.Fatal(err)
	}
	got := map[[2]int64]int64{}
	for i := 0; i < batched.NumRows(); i++ {
		r := batched.Row(i)
		got[[2]int64{r[0].I, r[1].I}] = r[2].I
	}
	for i := range src {
		single, err := e.Query(Q13, intValue(src[i]), intValue(dst[i]))
		if err != nil {
			t.Fatal(err)
		}
		key := [2]int64{src[i], dst[i]}
		if single.NumRows() == 0 {
			if _, ok := got[key]; ok {
				t.Errorf("pair %v: batched reachable, single not", key)
			}
			continue
		}
		want := single.Cols[0].Ints[0]
		if got[key] != want {
			t.Errorf("pair %v: batched %d, single %d", key, got[key], want)
		}
	}
}

func TestBuildRuntimeGraphShape(t *testing.T) {
	ds, _ := Setup2(t)
	g, weights, dict := BuildRuntimeGraph(ds)
	if g.N != ds.NumVertices() || g.NumEdges() != ds.NumEdges() {
		t.Fatalf("|V|=%d |E|=%d, want %d/%d", g.N, g.NumEdges(), ds.NumVertices(), ds.NumEdges())
	}
	if len(weights) != ds.NumEdges() {
		t.Fatal("weights misaligned")
	}
	if dict.Len() != ds.NumVertices() {
		t.Fatal("dictionary incomplete")
	}
}

func TestRunQueueAblationAgreement(t *testing.T) {
	ds, _ := Setup2(t)
	if _, _, err := RunQueueAblation(ds, 4, 5, 0); err != nil {
		t.Fatal(err)
	}
}

// TestDynamicIndexPoliciesAgree cross-checks the E7 policies return
// identical distances on a shared insert+query workload.
func TestDynamicIndexPoliciesAgree(t *testing.T) {
	if err := VerifyDynamicAgainstAdhoc(1, 100, 6, 7); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicIndexExperimentRuns(t *testing.T) {
	var buf bytes.Buffer
	o := Options{SFs: []int{1}, Shrink: 100, Pairs: 2, Seed: 1, Out: &buf}
	if err := DynamicIndex(o); err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"adhoc", "rebuild", "delta"} {
		if !strings.Contains(buf.String(), w) {
			t.Fatalf("report missing %q:\n%s", w, buf.String())
		}
	}
}
