package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"graphsql/internal/sql/fingerprint"
	"graphsql/internal/sql/lexer"
	"graphsql/internal/sql/parser"
	"graphsql/internal/testutil"
)

// ParsePoint is one measurement of the -exp parse experiment: a
// front-end stage (tokenize, parse, fingerprint) driven over the test
// corpus. Throughput is host-dependent, but allocs_per_op is a
// deterministic property of the code — the same on a laptop and a CI
// runner — which makes these points the host-independent half of the
// perf gate: benchdiff checks them on any machine, most importantly
// that the tokenizer stays at zero allocations per statement. The JSON
// field names are stable; downstream tooling tracks them.
type ParsePoint struct {
	Stage       string  `json:"stage"`
	Statements  int     `json:"statements"`
	CorpusBytes int     `json:"corpus_bytes"`
	MBPerSec    float64 `json:"mb_per_sec"`
	NsPerStmt   float64 `json:"ns_per_stmt"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// parseRounds × parseReps corpus passes are measured; allocs_per_op
// takes the minimum over rounds so a stray runtime allocation (timer,
// background sweep) on one round cannot fake a regression, and the
// throughput takes the fastest round like the other experiments.
const (
	parseRounds = 5
	parseReps   = 40
)

// Parse runs the front-end micro-experiment over the shared test
// corpus (the statements every differential harness replays).
func Parse(o Options) error {
	o.Defaults()
	corpus := append(testutil.Queries(), testutil.SetupStatements()...)
	var corpusBytes int
	for _, q := range corpus {
		corpusBytes += len(q)
	}

	lx := lexer.New("")
	stages := []struct {
		name string
		run  func(q string) error
	}{
		{"tokenize", func(q string) error {
			lx.Reset(q)
			for {
				tok, err := lx.Next()
				if err != nil {
					return err
				}
				if tok.Type == lexer.EOF {
					return nil
				}
			}
		}},
		{"parse", func(q string) error {
			_, err := parser.ParseAll(q)
			return err
		}},
		{"fingerprint", func(q string) error {
			fingerprint.Normalize(q)
			return nil
		}},
	}

	fmt.Fprintf(o.Out, "Front-end throughput over the %d-statement corpus (%d bytes)\n", len(corpus), corpusBytes)
	fmt.Fprintf(o.Out, "%-12s %12s %14s %14s\n", "stage", "MB/s", "ns/stmt", "allocs/op")
	var points []ParsePoint
	for _, st := range stages {
		// Warm-up pass: first-use initialization (keyword tables, parser
		// pools) must not count against the steady state.
		for _, q := range corpus {
			if err := st.run(q); err != nil {
				return fmt.Errorf("%s: %q: %w", st.name, q, err)
			}
		}
		best := time.Duration(1 << 62)
		minAllocs := float64(1 << 60)
		var m0, m1 runtime.MemStats
		for r := 0; r < parseRounds; r++ {
			runtime.ReadMemStats(&m0)
			start := time.Now()
			for rep := 0; rep < parseReps; rep++ {
				for _, q := range corpus {
					if err := st.run(q); err != nil {
						return err
					}
				}
			}
			elapsed := time.Since(start)
			runtime.ReadMemStats(&m1)
			if elapsed < best {
				best = elapsed
			}
			ops := float64(parseReps * len(corpus))
			if a := float64(m1.Mallocs-m0.Mallocs) / ops; a < minAllocs {
				minAllocs = a
			}
		}
		ops := parseReps * len(corpus)
		p := ParsePoint{
			Stage:       st.name,
			Statements:  len(corpus),
			CorpusBytes: corpusBytes,
			MBPerSec:    float64(corpusBytes*parseReps) / best.Seconds() / 1e6,
			NsPerStmt:   float64(best.Nanoseconds()) / float64(ops),
			AllocsPerOp: minAllocs,
		}
		points = append(points, p)
		fmt.Fprintf(o.Out, "%-12s %12.2f %14.1f %14.2f\n", p.Stage, p.MBPerSec, p.NsPerStmt, p.AllocsPerOp)
	}
	if o.JSONOut != nil {
		enc := json.NewEncoder(o.JSONOut)
		enc.SetIndent("", "  ")
		if err := enc.Encode(points); err != nil {
			return err
		}
	}
	return nil
}
