package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"graphsql/internal/graph"
	"graphsql/internal/ldbc"
)

// BfsParPoint is one measurement of the -exp bfspar experiment: a
// single-source unweighted traversal (the non-batched case the
// across-source solver pool cannot help) executed with a fixed
// intra-source worker budget, plus the observed cancel latency. The
// JSON field names are stable — cmd/benchdiff tracks the perf
// trajectory with them.
type BfsParPoint struct {
	SF      int `json:"sf"`
	Shrink  int `json:"shrink"`
	Workers int `json:"workers"`
	// TraversalSeconds is the mean single-source solve time.
	TraversalSeconds float64 `json:"traversal_seconds"`
	// Speedup is relative to the smallest worker count of the sweep.
	Speedup float64 `json:"speedup"`
	// CancelMillis is the latency from context cancellation to Solve
	// returning, measured on one traversal canceled mid-flight; 0 when
	// the traversal finished before the cancel fired (graph too small
	// to catch in flight).
	CancelMillis float64 `json:"cancel_ms"`
}

// BfsPar runs the intra-source scalability experiment: single-source
// Q13-shaped traversals (one pair per solve, so exactly one source
// group) over the LDBC friends graph, swept over o.Workers. With one
// source group the across-source pool is idle and any speedup comes
// from the frontier-parallel BFS levels. The destination is an
// isolated sink vertex, so every traversal explores its source's whole
// component — the worst case the cancellation granularity targets —
// rather than early-exiting at a nearby random destination. Each sweep
// point also cancels one traversal mid-flight and reports the abort
// latency — the cancellation-granularity metric of the server's
// disconnect handling.
func BfsPar(o Options) error {
	o.Defaults()
	o.Workers = append([]int(nil), o.Workers...)
	sort.Ints(o.Workers)
	fmt.Fprintf(o.Out, "Intra-source (frontier-parallel) scalability: single-source full-component Q13, shrink=%d, GOMAXPROCS=%d\n",
		o.Shrink, runtime.GOMAXPROCS(0))
	fmt.Fprintf(o.Out, "%-6s %8s %16s %10s %12s\n", "SF", "workers", "traversal (s)", "speedup", "cancel (ms)")
	var points []BfsParPoint
	for _, sf := range o.SFs {
		ds, err := ldbc.Generate(ldbc.Config{SF: sf, Shrink: o.Shrink, Seed: o.Seed})
		if err != nil {
			return err
		}
		base0, _, dict := BuildRuntimeGraph(ds)
		// Extend the CSR with one isolated sink: a valid destination no
		// source reaches, forcing full-component traversals.
		g := &graph.CSR{
			N:       base0.N + 1,
			Offsets: append(base0.Offsets[:base0.N+1:base0.N+1], base0.Offsets[base0.N]),
			Targets: base0.Targets,
			Perm:    base0.Perm,
		}
		sink := graph.VertexID(base0.N)
		srcIDs, _ := ds.RandomPairs(o.Pairs, o.Seed+uint64(sf))
		srcs := make([]graph.VertexID, len(srcIDs))
		dsts := make([]graph.VertexID, len(srcIDs))
		for i := range srcIDs {
			srcs[i] = dict.LookupInt(srcIDs[i])
			dsts[i] = sink
		}
		spec := []graph.Spec{{Unit: true, UnitI: 1}}
		var base float64
		for wi, w := range o.Workers {
			solver := graph.NewSolver(g)
			solver.Parallelism = w
			best := time.Duration(1 << 62)
			for r := 0; r < parallelReps; r++ {
				start := time.Now()
				for i := range srcs {
					// One pair per solve: one source group, so all
					// parallelism is intra-source.
					if _, err := solver.Solve(srcs[i:i+1], dsts[i:i+1], spec); err != nil {
						return err
					}
				}
				if d := time.Since(start); d < best {
					best = d
				}
			}
			p := BfsParPoint{
				SF: sf, Shrink: o.Shrink, Workers: w,
				TraversalSeconds: best.Seconds() / float64(len(srcs)),
			}
			if wi == 0 {
				base = p.TraversalSeconds
			}
			if p.TraversalSeconds > 0 {
				p.Speedup = base / p.TraversalSeconds
			}
			p.CancelMillis = measureCancelLatency(g, w, srcs[0], sink, p.TraversalSeconds)
			points = append(points, p)
			fmt.Fprintf(o.Out, "%-6d %8d %16.6f %10.3f %12.3f\n",
				sf, w, p.TraversalSeconds, p.Speedup, p.CancelMillis)
		}
	}
	if o.JSONOut != nil {
		enc := json.NewEncoder(o.JSONOut)
		enc.SetIndent("", "  ")
		if err := enc.Encode(points); err != nil {
			return err
		}
	}
	return nil
}

// measureCancelLatency cancels one single-source traversal roughly
// halfway through and returns the delay between the cancel firing and
// Solve returning, in milliseconds; 0 when the traversal won the race.
func measureCancelLatency(g *graph.CSR, workers int, src, dst graph.VertexID, traversalSeconds float64) float64 {
	delay := time.Duration(traversalSeconds * 0.5 * float64(time.Second))
	if min := 50 * time.Microsecond; delay < min {
		delay = min
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var canceledAt atomic.Int64
	timer := time.AfterFunc(delay, func() {
		canceledAt.Store(time.Now().UnixNano())
		cancel()
	})
	defer timer.Stop()
	solver := graph.NewSolver(g)
	solver.Parallelism = workers
	solver.Ctx = ctx
	_, err := solver.Solve([]graph.VertexID{src}, []graph.VertexID{dst}, []graph.Spec{{Unit: true, UnitI: 1}})
	done := time.Now().UnixNano()
	if err == nil {
		return 0 // finished before the cancel fired
	}
	return float64(done-canceledAt.Load()) / float64(time.Millisecond)
}
