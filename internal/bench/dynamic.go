package bench

import (
	"fmt"
	"time"

	"graphsql/internal/storage"
	"graphsql/internal/types"
)

// DynamicIndex runs the E7 ablation: an update-heavy workload (insert
// a small batch of friendship edges, then answer point shortest-path
// queries) under three policies for the §6 graph index:
//
//	adhoc      — no index: every query rebuilds the graph (the
//	             paper's measured prototype behaviour);
//	rebuild    — index rebuilt eagerly after every insert batch (the
//	             naive reading of §6);
//	delta      — this repo's updatable index: appended edges absorbed
//	             into a delta, snapshot rebuilt only when the delta
//	             outgrows it.
func DynamicIndex(o Options) error {
	o.Defaults()
	sf := o.SFs[0]
	fmt.Fprintf(o.Out, "E7 updatable graph index: %d rounds of (insert batch + %d queries), SF %d shrink=%d\n",
		dynRounds, o.Pairs, sf, o.Shrink)
	fmt.Fprintf(o.Out, "%-10s %16s\n", "policy", "total time (s)")
	for _, policy := range []string{"adhoc", "rebuild", "delta"} {
		d, err := RunDynamicPolicy(policy, sf, o.Shrink, o.Pairs, o.Seed)
		if err != nil {
			return fmt.Errorf("%s: %w", policy, err)
		}
		fmt.Fprintf(o.Out, "%-10s %16.6f\n", policy, d.Seconds())
	}
	return nil
}

const dynRounds = 8

// RunDynamicPolicy measures one policy over the insert+query workload.
func RunDynamicPolicy(policy string, sf, shrink, pairs int, seed uint64) (time.Duration, error) {
	e, ds, err := Setup(sf, shrink, seed)
	if err != nil {
		return 0, err
	}
	if policy != "adhoc" {
		if err := e.BuildGraphIndex("friends", "src", "dst"); err != nil {
			return 0, err
		}
	}
	friends, _ := e.Catalog().Table("friends")
	src, dst := ds.RandomPairs(dynRounds*pairs+dynRounds*4, seed^0xD1)
	next := 0
	take := func() (int64, int64) {
		s, d := src[next], dst[next]
		next++
		return s, d
	}

	start := time.Now()
	for round := 0; round < dynRounds; round++ {
		// Insert a batch of 4 new directed friendship edges (bulk
		// append, like the loader, so the measurement is dominated by
		// index maintenance and queries, not INSERT parsing).
		for k := 0; k < 4; k++ {
			s, d := take()
			appendFriend(friends, s, d)
		}
		if policy == "rebuild" {
			e.DropGraphIndexes("friends")
			if err := e.BuildGraphIndex("friends", "src", "dst"); err != nil {
				return 0, err
			}
		}
		for q := 0; q < pairs; q++ {
			s, d := take()
			if _, err := e.Query(Q13, types.NewInt(s), types.NewInt(d)); err != nil {
				return 0, err
			}
		}
	}
	return time.Since(start), nil
}

// appendFriend bulk-appends one directed edge row.
func appendFriend(friends *storage.Table, s, d int64) {
	friends.Cols[0].AppendInt(s)
	friends.Cols[1].AppendInt(d)
	friends.Cols[2].AppendInt(15000)
	friends.Cols[3].AppendFloat(1.0)
	friends.Cols[4].AppendInt(1)
}

// VerifyDynamicAgainstAdhoc cross-checks the three policies give
// identical answers on a shared workload; used by tests.
func VerifyDynamicAgainstAdhoc(sf, shrink, pairs int, seed uint64) error {
	type result struct{ dists []int64 }
	results := map[string]result{}
	for _, policy := range []string{"adhoc", "rebuild", "delta"} {
		e, ds, err := Setup(sf, shrink, seed)
		if err != nil {
			return err
		}
		if policy != "adhoc" {
			if err := e.BuildGraphIndex("friends", "src", "dst"); err != nil {
				return err
			}
		}
		friends, _ := e.Catalog().Table("friends")
		src, dst := ds.RandomPairs(pairs*2, seed^0xD1)
		var dists []int64
		for i := 0; i < pairs; i++ {
			appendFriend(friends, src[i], dst[i])
			appendFriend(friends, dst[i], src[i])
			if policy == "rebuild" {
				e.DropGraphIndexes("friends")
				if err := e.BuildGraphIndex("friends", "src", "dst"); err != nil {
					return err
				}
			}
			s, d := src[pairs+i], dst[pairs+i]
			res, err := e.Query(Q13, types.NewInt(s), types.NewInt(d))
			if err != nil {
				return err
			}
			if res.NumRows() == 0 {
				dists = append(dists, -1)
			} else {
				dists = append(dists, res.Cols[0].Ints[0])
			}
		}
		results[policy] = result{dists}
	}
	base := results["adhoc"].dists
	for _, policy := range []string{"rebuild", "delta"} {
		for i, d := range results[policy].dists {
			if d != base[i] {
				return fmt.Errorf("policy %s query %d: dist %d != adhoc %d", policy, i, d, base[i])
			}
		}
	}
	return nil
}
