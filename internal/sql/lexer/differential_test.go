package lexer_test

// Differential harness: the zero-allocation lexer must produce exactly
// the token stream (type, text, pos, line, col) and exactly the errors
// of the reference lexer in reference_test.go, over the golden query
// corpus, a set of handwritten lexical edge cases, and a fuzz target.
// A second set of tests locks down the performance contract itself:
// tokenizing an ASCII statement performs zero heap allocations beyond
// the token slice.

import (
	"strings"
	"testing"

	"graphsql/internal/sql/lexer"
	"graphsql/internal/testutil"
)

// edgeInputs are lexical corner cases the corpus queries do not cover.
var edgeInputs = []string{
	"",
	"   \t\r\n  ",
	"-- just a comment",
	"/* block */",
	"/* unterminated",
	"'unterminated",
	"\"unterminated",
	"\"\"",
	"''",
	"'it''s'",
	"\"a\"\"b\"",
	"'multi\nline'",
	"\"multi\nline\"",
	"1 42 3.14 1e6 2.5E-3 0.5 .5 1. 7.e2",
	"1e 1e+ 1e- 1E+2 9e-0",
	"1.e 2.x 3.. 4.5.6",
	"a<=b >= <> != || < > = + - * / % ( ) , . ; :",
	"x!=y",
	"?  ? ?",
	"sel\u017Fect \u017Felect", // ſ upper-cases to S: keyword via Unicode fold
	"caf\u00E9 _x $ x$y x$ 9x",
	"SELECT * FROM t WHERE a = 'b' AND c <> 3.5 -- tail",
	"SELECT\n  x,\n  y\nFROM t /* c\nomment */ WHERE z = 1e3",
	"@",
	"#",
	"\x80 \xff",
	"日本語 SELECT",
	"ident_with_underscores_and_1234567890",
	"ORDINALITY ordinality OrDiNaLiTy",
	"BETWEEN BY REACHES CHEAPEST UNNEST over edge",
	"notakeyword selectx xselect",
	"'esc''aped''twice' plain 'then''more'",
	"  .5+.5  ",
	"5..7",
	"e e1 E2 _e3",
}

func allInputs() []string {
	var in []string
	in = append(in, testutil.Queries()...)
	in = append(in, testutil.SetupStatements()...)
	in = append(in, testutil.FuzzSeeds()...)
	in = append(in, edgeInputs...)
	return in
}

// compareStreams tokenizes src with both lexers and reports any
// divergence in tokens or errors.
func compareStreams(t *testing.T, src string) {
	t.Helper()
	got, gotErr := lexer.Tokenize(src)
	want, wantErr := refTokenize(src)
	if (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("error divergence on %q:\n  new: %v\n  ref: %v", src, gotErr, wantErr)
	}
	if gotErr != nil {
		if gotErr.Error() != wantErr.Error() {
			t.Fatalf("error text divergence on %q:\n  new: %v\n  ref: %v", src, gotErr, wantErr)
		}
		return
	}
	if len(got) != len(want) {
		t.Fatalf("token count divergence on %q: new %d, ref %d", src, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("token %d divergence on %q:\n  new: %+v\n  ref: %+v", i, src, got[i], want[i])
		}
	}
}

func TestDifferentialCorpus(t *testing.T) {
	for _, src := range allInputs() {
		compareStreams(t, src)
	}
}

func FuzzTokenizeDifferential(f *testing.F) {
	for _, src := range allInputs() {
		f.Add(src)
	}
	f.Fuzz(func(t *testing.T, src string) {
		compareStreams(t, src)
	})
}

// TestNextOffset pins the Offset contract the fingerprint normalizer
// depends on: after Next returns a token, Offset is one past the
// token's source text, so src[tok.Pos:Offset] is the literal's span.
func TestNextOffset(t *testing.T) {
	src := "SELECT x FROM t WHERE a = 'it''s' AND b >= 3.5e2"
	l := lexer.New(src)
	for {
		tok, err := l.Next()
		if err != nil {
			t.Fatal(err)
		}
		if tok.Type == lexer.EOF {
			break
		}
		span := src[tok.Pos:l.Offset()]
		switch tok.Type {
		case lexer.Number, lexer.Ident:
			if tok.Text != span && !strings.HasPrefix(span, "\"") {
				t.Fatalf("token %+v: span %q does not match text", tok, span)
			}
		case lexer.String:
			if span != "'"+strings.ReplaceAll(tok.Text, "'", "''")+"'" {
				t.Fatalf("string token %+v: span %q", tok, span)
			}
		}
	}
}

// TestReset pins lexer reuse: Reset must fully reinitialize position
// state so a pooled lexer cannot leak line/col across statements.
func TestReset(t *testing.T) {
	l := lexer.New("a\nb\nc")
	for {
		tok, err := l.Next()
		if err != nil {
			t.Fatal(err)
		}
		if tok.Type == lexer.EOF {
			break
		}
	}
	l.Reset("x")
	tok, err := l.Next()
	if err != nil {
		t.Fatal(err)
	}
	if tok.Line != 1 || tok.Col != 1 || tok.Pos != 0 || tok.Text != "x" {
		t.Fatalf("Reset did not reinitialize: %+v", tok)
	}
}

// TestTokenizeZeroAllocs is the zero-allocation contract: scanning an
// all-ASCII statement with a reused lexer must not allocate at all,
// and Tokenize as a whole allocates only the token slice.
func TestTokenizeZeroAllocs(t *testing.T) {
	src := "SELECT p.name, COUNT(*) FROM person p JOIN knows k ON p.id = k.src " +
		"WHERE k.dst >= 42 AND p.name <> 'alice' GROUP BY p.name ORDER BY 2 DESC LIMIT 10"
	var l lexer.Lexer
	perRun := testing.AllocsPerRun(200, func() {
		l.Reset(src)
		for {
			tok, err := l.Next()
			if err != nil {
				t.Fatal(err)
			}
			if tok.Type == lexer.EOF {
				return
			}
		}
	})
	if perRun != 0 {
		t.Fatalf("Next loop allocates %.1f per run, want 0", perRun)
	}
	// Full Tokenize pays exactly one allocation: the token slice. The
	// capacity estimate must hold for this statement or append doubles.
	perRun = testing.AllocsPerRun(200, func() {
		if _, err := lexer.Tokenize(src); err != nil {
			t.Fatal(err)
		}
	})
	if perRun > 1 {
		t.Fatalf("Tokenize allocates %.1f per run, want <= 1", perRun)
	}
}

// BenchmarkTokenize reports tokenize throughput on the corpus
// statement mix; run with -benchmem to see allocs/op.
func BenchmarkTokenize(b *testing.B) {
	queries := testutil.Queries()
	var total int64
	for _, q := range queries {
		total += int64(len(q))
	}
	b.SetBytes(total)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			if _, err := lexer.Tokenize(q); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkNext measures the pure scan loop with a reused lexer — the
// zero-allocation fast path.
func BenchmarkNext(b *testing.B) {
	queries := testutil.Queries()
	var total int64
	for _, q := range queries {
		total += int64(len(q))
	}
	b.SetBytes(total)
	b.ReportAllocs()
	var l lexer.Lexer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			l.Reset(q)
			for {
				tok, err := l.Next()
				if err != nil {
					b.Fatal(err)
				}
				if tok.Type == lexer.EOF {
					break
				}
			}
		}
	}
}
