package lexer

import (
	"reflect"
	"testing"
)

// TestSplitStatements holds the splitter to the same
// lexical structure the engine's lexer uses: semicolons inside string
// literals (” escapes included), -- line comments and /* */ block
// comments never split, and comment apostrophes never open a literal.
func TestSplitStatements(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"SELECT 1; SELECT 2;", []string{"SELECT 1", "SELECT 2"}},
		{"SELECT 'a;b'; SELECT 2", []string{"SELECT 'a;b'", "SELECT 2"}},
		{"SELECT 'it''s; fine'", []string{"SELECT 'it''s; fine'"}},
		{"-- can't touch this\nSELECT 1;\nSELECT 2;", []string{"-- can't touch this\nSELECT 1", "SELECT 2"}},
		{"/* no; split 'here */ SELECT 1; SELECT 2", []string{"/* no; split 'here */ SELECT 1", "SELECT 2"}},
		{"SELECT 1 -- trailing; comment\n; SELECT 2", []string{"SELECT 1 -- trailing; comment", "SELECT 2"}},
		{";;  ;", nil},
		{"SELECT 1;\n-- done\n", []string{"SELECT 1"}},
		{"/* only a comment */; SELECT 2", []string{"SELECT 2"}},
		{"/* unterminated; never splits", []string{"/* unterminated; never splits"}},
		{`SELECT "a;b" FROM t; SELECT 2`, []string{`SELECT "a;b" FROM t`, "SELECT 2"}},
		{`SELECT "a""x;y" FROM t; SELECT 2`, []string{`SELECT "a""x;y" FROM t`, "SELECT 2"}},
	}
	for _, c := range cases {
		if got := SplitStatements(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("SplitStatements(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
