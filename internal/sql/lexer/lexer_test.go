package lexer

import (
	"strings"
	"testing"
)

func kinds(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatalf("tokenize %q: %v", src, err)
	}
	return toks
}

func TestKeywordsAndIdents(t *testing.T) {
	toks := kinds(t, "select Foo FROM bar REACHES cheapest unnest edge over")
	want := []struct {
		tt   TokenType
		text string
	}{
		{Keyword, "SELECT"}, {Ident, "Foo"}, {Keyword, "FROM"}, {Ident, "bar"},
		{Keyword, "REACHES"}, {Keyword, "CHEAPEST"}, {Keyword, "UNNEST"},
		{Keyword, "EDGE"}, {Keyword, "OVER"}, {EOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(want))
	}
	for i, w := range want {
		if toks[i].Type != w.tt || toks[i].Text != w.text {
			t.Errorf("token %d = (%v, %q), want (%v, %q)", i, toks[i].Type, toks[i].Text, w.tt, w.text)
		}
	}
}

func TestNumbers(t *testing.T) {
	toks := kinds(t, "1 42 3.14 1e6 2.5E-3 0.5")
	wantTexts := []string{"1", "42", "3.14", "1e6", "2.5E-3", "0.5"}
	for i, w := range wantTexts {
		if toks[i].Type != Number || toks[i].Text != w {
			t.Errorf("token %d = (%v, %q), want number %q", i, toks[i].Type, toks[i].Text, w)
		}
	}
}

func TestStringsAndEscapes(t *testing.T) {
	toks := kinds(t, "'hello' 'it''s' ''")
	if toks[0].Text != "hello" || toks[1].Text != "it's" || toks[2].Text != "" {
		t.Fatalf("strings = %q %q %q", toks[0].Text, toks[1].Text, toks[2].Text)
	}
	if _, err := Tokenize("'unterminated"); err == nil {
		t.Fatal("expected error for unterminated string")
	}
}

func TestQuotedIdentifiers(t *testing.T) {
	toks := kinds(t, `"select" "with ""quotes"""`)
	if toks[0].Type != Ident || toks[0].Text != "select" {
		t.Fatalf("quoted keyword = (%v, %q)", toks[0].Type, toks[0].Text)
	}
	if toks[1].Text != `with "quotes"` {
		t.Fatalf("escaped quote = %q", toks[1].Text)
	}
	if _, err := Tokenize(`"unterminated`); err == nil {
		t.Fatal("expected error for unterminated identifier")
	}
	if _, err := Tokenize(`""`); err == nil {
		t.Fatal("expected error for empty identifier")
	}
}

func TestSymbols(t *testing.T) {
	toks := kinds(t, "<= >= <> != || + - * / % ( ) , . ; : = < >")
	want := []string{"<=", ">=", "<>", "<>", "||", "+", "-", "*", "/", "%",
		"(", ")", ",", ".", ";", ":", "=", "<", ">"}
	for i, w := range want {
		if toks[i].Type != Symbol || toks[i].Text != w {
			t.Errorf("symbol %d = %q, want %q", i, toks[i].Text, w)
		}
	}
}

func TestParamsAndComments(t *testing.T) {
	toks := kinds(t, `? -- line comment
		/* block
		   comment */ ?`)
	if toks[0].Type != Param || toks[1].Type != Param || toks[2].Type != EOF {
		t.Fatalf("tokens = %v", toks)
	}
	if _, err := Tokenize("/* unterminated"); err == nil {
		t.Fatal("expected error for unterminated comment")
	}
}

func TestPositions(t *testing.T) {
	toks := kinds(t, "SELECT\n  x")
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Fatalf("SELECT at %d:%d", toks[0].Line, toks[0].Col)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Fatalf("x at %d:%d, want 2:3", toks[1].Line, toks[1].Col)
	}
}

func TestUnexpectedCharacter(t *testing.T) {
	_, err := Tokenize("select @")
	if err == nil || !strings.Contains(err.Error(), "unexpected character") {
		t.Fatalf("err = %v", err)
	}
}

func TestIsKeyword(t *testing.T) {
	if !IsKeyword("select") || !IsKeyword("REACHES") {
		t.Fatal("IsKeyword broken")
	}
	if IsKeyword("foo") {
		t.Fatal("foo is not a keyword")
	}
}

func TestTokenString(t *testing.T) {
	if (Token{Type: EOF}).String() != "end of input" {
		t.Fatal("EOF rendering")
	}
	if (Token{Type: String, Text: "x"}).String() != "'x'" {
		t.Fatal("string rendering")
	}
	if (Token{Type: Param}).String() != "?" {
		t.Fatal("param rendering")
	}
}
