// Package lexer tokenizes the engine's SQL dialect, including the
// keywords the paper adds to the language: REACHES, OVER, EDGE,
// CHEAPEST and UNNEST (§3.1 "the terms ... are now treated as keywords
// in the language").
//
// The tokenizer is a zero-allocation byte scanner: it sits on the hot
// path of every uncached statement (parse, statement splitting, cache
// admission sniffing, fingerprinting), so Next never allocates on the
// common path. Token.Text is a view — a substring sharing the input's
// backing array — for identifiers and numbers, a canonical interned
// constant for keywords and symbols, and only escape-carrying string
// literals ('it”s') or quoted identifiers ("a""b") pay for an
// unescaped copy. Character classes are 256-entry tables instead of
// per-byte unicode calls, and keywords resolve through a
// length-bucketed table with a case-insensitive ASCII fold, so an
// all-ASCII statement tokenizes without touching the heap at all
// (locked down by a testing.AllocsPerRun assertion and a differential
// fuzz target against the previous allocating lexer).
package lexer

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenType classifies lexical tokens.
type TokenType uint8

const (
	// EOF marks the end of the input.
	EOF TokenType = iota
	// Ident is an identifier (possibly double-quoted).
	Ident
	// Number is an integer or decimal literal.
	Number
	// String is a single-quoted string literal.
	String
	// Param is the positional host parameter '?'.
	Param
	// Keyword is a reserved word; Tok.Text is its upper-case form.
	Keyword
	// Symbol is an operator or punctuation token.
	Symbol
)

// Token is one lexical token with its source position.
type Token struct {
	Type TokenType
	// Text is the token text. Keywords are upper-cased; quoted
	// identifiers are unquoted; string literals are unescaped. For
	// identifiers, numbers and escape-free strings it is a view into
	// the source, not a copy.
	Text string
	// Pos is the byte offset in the input, Line/Col are 1-based.
	Pos, Line, Col int
}

// String renders the token for error messages.
func (t Token) String() string {
	switch t.Type {
	case EOF:
		return "end of input"
	case String:
		return fmt.Sprintf("'%s'", t.Text)
	case Param:
		return "?"
	default:
		return t.Text
	}
}

// keywordList is the reserved-word set in canonical (upper-case) form.
// The five terms the paper adds are grouped at the end with the type
// names.
var keywordList = []string{
	"SELECT", "FROM", "WHERE", "GROUP", "BY",
	"HAVING", "ORDER", "LIMIT", "OFFSET", "AS",
	"AND", "OR", "NOT", "IN", "IS", "NULL",
	"LIKE", "BETWEEN", "CASE", "WHEN", "THEN",
	"ELSE", "END", "CAST", "CREATE", "TABLE",
	"INSERT", "INTO", "VALUES", "WITH", "JOIN",
	"LEFT", "RIGHT", "FULL", "INNER", "OUTER",
	"CROSS", "ON", "USING", "DISTINCT", "ALL",
	"UNION", "EXCEPT", "INTERSECT", "ASC", "DESC",
	"TRUE", "FALSE", "EXISTS", "DROP", "DELETE",
	"PRIMARY", "KEY", "DEFAULT", "LATERAL",
	"ORDINALITY", "NULLS", "FIRST", "LAST",
	"SET", "EXPLAIN", "ANALYZE",
	// Graph extension keywords (paper §2, §3.1):
	"REACHES", "OVER", "EDGE", "CHEAPEST", "UNNEST",
	// Type names:
	"INT", "INTEGER", "BIGINT", "SMALLINT",
	"DOUBLE", "FLOAT", "REAL", "PRECISION",
	"VARCHAR", "TEXT", "CHAR", "STRING",
	"BOOLEAN", "BOOL", "DATE",
}

const maxKeywordLen = 10 // ORDINALITY

// kwBuckets is the length-bucketed keyword table: bucket n holds the
// canonical strings of every n-byte keyword, so a lookup compares only
// same-length candidates with a case-insensitive ASCII fold and
// returns the interned canonical form — no upper-casing copy.
var kwBuckets [maxKeywordLen + 1][]string

// kwCanon maps the exact upper-case spelling to the canonical interned
// string; the non-ASCII slow path and IsKeyword go through it.
var kwCanon = make(map[string]string, len(keywordList))

// identStartTable / identPartTable are byte-class tables mirroring the
// previous per-byte predicates exactly (bytes ≥ 0x80 classify by their
// Latin-1 code point, as rune(byte) always has).
var identStartTable, identPartTable [256]bool

// symbolTable interns every single-byte symbol's string form.
var symbolTable [256]string

func init() {
	for _, kw := range keywordList {
		kwBuckets[len(kw)] = append(kwBuckets[len(kw)], kw)
		kwCanon[kw] = kw
	}
	for c := 0; c < 256; c++ {
		ch := byte(c)
		identStartTable[c] = ch == '_' || unicode.IsLetter(rune(ch))
		identPartTable[c] = ch == '_' || ch == '$' || unicode.IsLetter(rune(ch)) || isDigit(ch)
	}
	for _, ch := range []byte{'+', '-', '*', '/', '%', '=', '<', '>', '(', ')', ',', '.', ';', ':'} {
		symbolTable[ch] = string(ch)
	}
}

// asciiKeyword resolves an all-ASCII word against the length bucket,
// returning the canonical upper-case form ("" when not a keyword).
func asciiKeyword(word string) string {
	if len(word) < 2 || len(word) > maxKeywordLen {
		return ""
	}
next:
	for _, kw := range kwBuckets[len(word)] {
		// Keywords are A-Z only, so folding bit 5 cannot alias a
		// non-letter byte onto a letter.
		if word[0]|0x20 != kw[0]|0x20 {
			continue
		}
		for i := 1; i < len(word); i++ {
			if word[i]|0x20 != kw[i]|0x20 {
				continue next
			}
		}
		return kw
	}
	return ""
}

// keywordOf returns the canonical form of word if it is reserved, ""
// otherwise. Words with non-ASCII bytes take the allocating ToUpper
// path so Unicode case folding (ſ → S) classifies exactly as before.
func keywordOf(word string) string {
	for i := 0; i < len(word); i++ {
		if word[i] >= 0x80 {
			return kwCanon[strings.ToUpper(word)]
		}
	}
	return asciiKeyword(word)
}

// IsKeyword reports whether the upper-cased word is reserved.
func IsKeyword(word string) bool { return keywordOf(word) != "" }

// Lexer scans SQL text into tokens. The zero value is unusable; obtain
// one with New, or embed a Lexer and (re)initialize it with Reset —
// Reset lets a caller tokenize many statements without allocating a
// new Lexer per statement.
type Lexer struct {
	src string
	pos int
	// line is 1-based; lineStart is the byte offset of the current
	// line's first character, so a column is pos-lineStart+1 without
	// per-byte bookkeeping.
	line      int
	lineStart int
}

// New returns a lexer over src.
func New(src string) *Lexer {
	l := &Lexer{}
	l.Reset(src)
	return l
}

// Reset re-points the lexer at a new input, reusing the receiver.
func (l *Lexer) Reset(src string) {
	l.src = src
	l.pos = 0
	l.line = 1
	l.lineStart = 0
}

// Offset reports the current scan position: after Next returns a
// token, Offset is the byte offset one past that token's source text.
// The fingerprint normalizer uses it to splice literal spans.
func (l *Lexer) Offset() int { return l.pos }

// Error is a lexical error with position information.
type Error struct {
	Msg       string
	Line, Col int
}

func (e *Error) Error() string {
	return fmt.Sprintf("syntax error at line %d col %d: %s", e.Line, e.Col, e.Msg)
}

func (l *Lexer) errorf(format string, args ...interface{}) error {
	return &Error{Msg: fmt.Sprintf(format, args...), Line: l.line, Col: l.pos - l.lineStart + 1}
}

func (l *Lexer) col() int { return l.pos - l.lineStart + 1 }

// newline records that the byte at offset nl was a consumed '\n'.
func (l *Lexer) newline(nl int) {
	l.line++
	l.lineStart = nl + 1
}

// skipSpaceAndComments consumes whitespace, -- line comments and
// /* */ block comments.
func (l *Lexer) skipSpaceAndComments() error {
	src := l.src
	for l.pos < len(src) {
		switch ch := src[l.pos]; {
		case ch == ' ' || ch == '\t' || ch == '\r':
			l.pos++
		case ch == '\n':
			l.newline(l.pos)
			l.pos++
		case ch == '-' && l.pos+1 < len(src) && src[l.pos+1] == '-':
			for l.pos < len(src) && src[l.pos] != '\n' {
				l.pos++
			}
		case ch == '/' && l.pos+1 < len(src) && src[l.pos+1] == '*':
			l.pos += 2
			closed := false
			for l.pos < len(src) {
				if src[l.pos] == '*' && l.pos+1 < len(src) && src[l.pos+1] == '/' {
					l.pos += 2
					closed = true
					break
				}
				if src[l.pos] == '\n' {
					l.newline(l.pos)
				}
				l.pos++
			}
			if !closed {
				return l.errorf("unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	src := l.src
	start, line, col := l.pos, l.line, l.col()
	if l.pos >= len(src) {
		return Token{Type: EOF, Pos: start, Line: line, Col: col}, nil
	}
	mk := func(tt TokenType, text string) Token {
		return Token{Type: tt, Text: text, Pos: start, Line: line, Col: col}
	}
	ch := src[l.pos]
	switch {
	case identStartTable[ch]:
		l.pos++
		for l.pos < len(src) && identPartTable[src[l.pos]] {
			l.pos++
		}
		word := src[start:l.pos]
		if kw := keywordOf(word); kw != "" {
			return mk(Keyword, kw), nil
		}
		return mk(Ident, word), nil
	case ch >= '0' && ch <= '9',
		ch == '.' && l.pos+1 < len(src) && isDigit(src[l.pos+1]):
		return l.lexNumber(start, line, col), nil
	case ch == '\'':
		return l.lexString(start, line, col)
	case ch == '"':
		return l.lexQuotedIdent(start, line, col)
	case ch == '?':
		l.pos++
		return mk(Param, "?"), nil
	}
	// Multi-byte symbols first.
	if l.pos+1 < len(src) {
		two := src[l.pos : l.pos+2]
		switch two {
		case "<=", ">=", "<>", "||":
			l.pos += 2
			return mk(Symbol, two), nil
		case "!=":
			l.pos += 2
			return mk(Symbol, "<>"), nil
		}
	}
	if s := symbolTable[ch]; s != "" {
		l.pos++
		return mk(Symbol, s), nil
	}
	return Token{}, l.errorf("unexpected character %q", string(rune(ch)))
}

func (l *Lexer) lexNumber(start, line, col int) Token {
	src := l.src
	for l.pos < len(src) && isDigit(src[l.pos]) {
		l.pos++
	}
	if l.pos < len(src) && src[l.pos] == '.' {
		switch {
		case l.pos+1 < len(src) && isDigit(src[l.pos+1]):
			l.pos++
			for l.pos < len(src) && isDigit(src[l.pos]) {
				l.pos++
			}
		case l.pos+1 >= len(src) || !identStartTable[src[l.pos+1]]:
			// trailing dot as in "1." — accept
			l.pos++
		}
	}
	if l.pos < len(src) && (src[l.pos] == 'e' || src[l.pos] == 'E') {
		save := l.pos
		l.pos++
		if l.pos < len(src) && (src[l.pos] == '+' || src[l.pos] == '-') {
			l.pos++
		}
		if l.pos >= len(src) || !isDigit(src[l.pos]) {
			l.pos = save // not an exponent after all
		} else {
			for l.pos < len(src) && isDigit(src[l.pos]) {
				l.pos++
			}
		}
	}
	return Token{Type: Number, Text: src[start:l.pos], Pos: start, Line: line, Col: col}
}

// lexString scans a single-quoted literal. Escape-free literals — the
// overwhelming majority — return a view between the quotes; only a
// doubled-quote escape forces an unescaped copy.
func (l *Lexer) lexString(start, line, col int) (Token, error) {
	src := l.src
	l.pos++ // opening quote
	for i := l.pos; i < len(src); i++ {
		switch src[i] {
		case '\n':
			l.newline(i)
		case '\'':
			if i+1 < len(src) && src[i+1] == '\'' {
				// Doubled-quote escape: fall back to the copying scan
				// from the opening quote.
				return l.lexStringSlow(start, line, col, i)
			}
			text := src[l.pos:i]
			l.pos = i + 1
			return Token{Type: String, Text: text, Pos: start, Line: line, Col: col}, nil
		}
	}
	l.pos = len(src)
	return Token{}, l.errorf("unterminated string literal")
}

// lexStringSlow finishes a string literal that contains at least one
// ” escape (first seen at offset esc), building the unescaped text.
func (l *Lexer) lexStringSlow(start, line, col, esc int) (Token, error) {
	src := l.src
	var b strings.Builder
	b.WriteString(src[l.pos:esc])
	i := esc
	for i < len(src) {
		ch := src[i]
		switch ch {
		case '\n':
			l.newline(i)
			b.WriteByte(ch)
			i++
		case '\'':
			if i+1 < len(src) && src[i+1] == '\'' {
				b.WriteByte('\'')
				i += 2
				continue
			}
			l.pos = i + 1
			return Token{Type: String, Text: b.String(), Pos: start, Line: line, Col: col}, nil
		default:
			b.WriteByte(ch)
			i++
		}
	}
	l.pos = len(src)
	return Token{}, l.errorf("unterminated string literal")
}

// lexQuotedIdent mirrors lexString for double-quoted identifiers.
func (l *Lexer) lexQuotedIdent(start, line, col int) (Token, error) {
	src := l.src
	l.pos++ // opening quote
	for i := l.pos; i < len(src); i++ {
		switch src[i] {
		case '\n':
			l.newline(i)
		case '"':
			if i+1 < len(src) && src[i+1] == '"' {
				return l.lexQuotedIdentSlow(start, line, col, i)
			}
			text := src[l.pos:i]
			l.pos = i + 1
			if len(text) == 0 {
				return Token{}, l.errorf("empty quoted identifier")
			}
			return Token{Type: Ident, Text: text, Pos: start, Line: line, Col: col}, nil
		}
	}
	l.pos = len(src)
	return Token{}, l.errorf("unterminated quoted identifier")
}

func (l *Lexer) lexQuotedIdentSlow(start, line, col, esc int) (Token, error) {
	src := l.src
	var b strings.Builder
	b.WriteString(src[l.pos:esc])
	i := esc
	for i < len(src) {
		ch := src[i]
		switch ch {
		case '\n':
			l.newline(i)
			b.WriteByte(ch)
			i++
		case '"':
			if i+1 < len(src) && src[i+1] == '"' {
				b.WriteByte('"')
				i += 2
				continue
			}
			l.pos = i + 1
			// The slow path is only entered on a "" escape, so the text
			// is never empty here.
			return Token{Type: Ident, Text: b.String(), Pos: start, Line: line, Col: col}, nil
		default:
			b.WriteByte(ch)
			i++
		}
	}
	l.pos = len(src)
	return Token{}, l.errorf("unterminated quoted identifier")
}

func isDigit(ch byte) bool { return ch >= '0' && ch <= '9' }

// Tokenize scans the whole input (convenience for tests and the
// parser). The returned tokens view the input string; they stay valid
// as long as the input does (strings are immutable, so effectively
// always).
func Tokenize(src string) ([]Token, error) {
	var l Lexer
	l.Reset(src)
	// Dotted identifiers make SQL token-dense (~3.3 bytes/token on the
	// corpus); over-estimating slightly keeps Tokenize at exactly one
	// allocation instead of the append-doubling copies that dominated
	// the old profile.
	out := make([]Token, 0, len(src)/3+8)
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Type == EOF {
			return out, nil
		}
	}
}
