// Package lexer tokenizes the engine's SQL dialect, including the
// keywords the paper adds to the language: REACHES, OVER, EDGE,
// CHEAPEST and UNNEST (§3.1 "the terms ... are now treated as keywords
// in the language").
package lexer

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenType classifies lexical tokens.
type TokenType uint8

const (
	// EOF marks the end of the input.
	EOF TokenType = iota
	// Ident is an identifier (possibly double-quoted).
	Ident
	// Number is an integer or decimal literal.
	Number
	// String is a single-quoted string literal.
	String
	// Param is the positional host parameter '?'.
	Param
	// Keyword is a reserved word; Tok.Text is its upper-case form.
	Keyword
	// Symbol is an operator or punctuation token.
	Symbol
)

// Token is one lexical token with its source position.
type Token struct {
	Type TokenType
	// Text is the token text. Keywords are upper-cased; quoted
	// identifiers are unquoted; string literals are unescaped.
	Text string
	// Pos is the byte offset in the input, Line/Col are 1-based.
	Pos, Line, Col int
}

// String renders the token for error messages.
func (t Token) String() string {
	switch t.Type {
	case EOF:
		return "end of input"
	case String:
		return fmt.Sprintf("'%s'", t.Text)
	case Param:
		return "?"
	default:
		return t.Text
	}
}

// keywords is the reserved-word set. The five terms the paper adds are
// flagged in the comment.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "OFFSET": true, "AS": true,
	"AND": true, "OR": true, "NOT": true, "IN": true, "IS": true, "NULL": true,
	"LIKE": true, "BETWEEN": true, "CASE": true, "WHEN": true, "THEN": true,
	"ELSE": true, "END": true, "CAST": true, "CREATE": true, "TABLE": true,
	"INSERT": true, "INTO": true, "VALUES": true, "WITH": true, "JOIN": true,
	"LEFT": true, "RIGHT": true, "FULL": true, "INNER": true, "OUTER": true,
	"CROSS": true, "ON": true, "USING": true, "DISTINCT": true, "ALL": true,
	"UNION": true, "EXCEPT": true, "INTERSECT": true, "ASC": true, "DESC": true,
	"TRUE": true, "FALSE": true, "EXISTS": true, "DROP": true, "DELETE": true,
	"PRIMARY": true, "KEY": true, "DEFAULT": true, "LATERAL": true,
	"ORDINALITY": true, "NULLS": true, "FIRST": true, "LAST": true,
	"SET": true,
	// Graph extension keywords (paper §2, §3.1):
	"REACHES": true, "OVER": true, "EDGE": true, "CHEAPEST": true, "UNNEST": true,
	// Type names:
	"INT": true, "INTEGER": true, "BIGINT": true, "SMALLINT": true,
	"DOUBLE": true, "FLOAT": true, "REAL": true, "PRECISION": true,
	"VARCHAR": true, "TEXT": true, "CHAR": true, "STRING": true,
	"BOOLEAN": true, "BOOL": true, "DATE": true,
}

// IsKeyword reports whether the upper-cased word is reserved.
func IsKeyword(word string) bool { return keywords[strings.ToUpper(word)] }

// Lexer scans SQL text into tokens.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Error is a lexical error with position information.
type Error struct {
	Msg       string
	Line, Col int
}

func (e *Error) Error() string {
	return fmt.Sprintf("syntax error at line %d col %d: %s", e.Line, e.Col, e.Msg)
}

func (l *Lexer) errorf(format string, args ...interface{}) error {
	return &Error{Msg: fmt.Sprintf(format, args...), Line: l.line, Col: l.col}
}

func (l *Lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peekAt(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *Lexer) advance() byte {
	ch := l.src[l.pos]
	l.pos++
	if ch == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return ch
}

// skipSpaceAndComments consumes whitespace, -- line comments and
// /* */ block comments.
func (l *Lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		ch := l.peek()
		switch {
		case ch == ' ' || ch == '\t' || ch == '\r' || ch == '\n':
			l.advance()
		case ch == '-' && l.peekAt(1) == '-':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case ch == '/' && l.peekAt(1) == '*':
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peek() == '*' && l.peekAt(1) == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return l.errorf("unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	start, line, col := l.pos, l.line, l.col
	mk := func(tt TokenType, text string) Token {
		return Token{Type: tt, Text: text, Pos: start, Line: line, Col: col}
	}
	if l.pos >= len(l.src) {
		return mk(EOF, ""), nil
	}
	ch := l.peek()
	switch {
	case isIdentStart(ch):
		for l.pos < len(l.src) && isIdentPart(l.peek()) {
			l.advance()
		}
		word := l.src[start:l.pos]
		if up := strings.ToUpper(word); keywords[up] {
			return mk(Keyword, up), nil
		}
		return mk(Ident, word), nil
	case ch >= '0' && ch <= '9', ch == '.' && isDigit(l.peekAt(1)):
		return l.lexNumber(mk)
	case ch == '\'':
		return l.lexString(mk)
	case ch == '"':
		return l.lexQuotedIdent(mk)
	case ch == '?':
		l.advance()
		return mk(Param, "?"), nil
	}
	// Multi-byte symbols first.
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=", "||":
		l.advance()
		l.advance()
		if two == "!=" {
			two = "<>"
		}
		return mk(Symbol, two), nil
	}
	switch ch {
	case '+', '-', '*', '/', '%', '=', '<', '>', '(', ')', ',', '.', ';', ':':
		l.advance()
		return mk(Symbol, string(ch)), nil
	}
	return Token{}, l.errorf("unexpected character %q", string(rune(ch)))
}

func (l *Lexer) lexNumber(mk func(TokenType, string) Token) (Token, error) {
	start := l.pos
	for l.pos < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	if l.peek() == '.' && isDigit(l.peekAt(1)) {
		l.advance()
		for l.pos < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	} else if l.peek() == '.' && !isIdentStart(l.peekAt(1)) {
		// trailing dot as in "1." — accept
		l.advance()
	}
	if l.peek() == 'e' || l.peek() == 'E' {
		save := l.pos
		l.advance()
		if l.peek() == '+' || l.peek() == '-' {
			l.advance()
		}
		if !isDigit(l.peek()) {
			l.pos = save // not an exponent after all
		} else {
			for l.pos < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
	}
	return mk(Number, l.src[start:l.pos]), nil
}

func (l *Lexer) lexString(mk func(TokenType, string) Token) (Token, error) {
	l.advance() // opening quote
	var b strings.Builder
	for {
		if l.pos >= len(l.src) {
			return Token{}, l.errorf("unterminated string literal")
		}
		ch := l.advance()
		if ch == '\'' {
			if l.peek() == '\'' { // doubled quote escape
				l.advance()
				b.WriteByte('\'')
				continue
			}
			return mk(String, b.String()), nil
		}
		b.WriteByte(ch)
	}
}

func (l *Lexer) lexQuotedIdent(mk func(TokenType, string) Token) (Token, error) {
	l.advance() // opening quote
	var b strings.Builder
	for {
		if l.pos >= len(l.src) {
			return Token{}, l.errorf("unterminated quoted identifier")
		}
		ch := l.advance()
		if ch == '"' {
			if l.peek() == '"' {
				l.advance()
				b.WriteByte('"')
				continue
			}
			if b.Len() == 0 {
				return Token{}, l.errorf("empty quoted identifier")
			}
			return mk(Ident, b.String()), nil
		}
		b.WriteByte(ch)
	}
}

func isIdentStart(ch byte) bool {
	return ch == '_' || unicode.IsLetter(rune(ch))
}

func isIdentPart(ch byte) bool {
	return ch == '_' || ch == '$' || unicode.IsLetter(rune(ch)) || isDigit(ch)
}

func isDigit(ch byte) bool { return ch >= '0' && ch <= '9' }

// Tokenize scans the whole input (convenience for tests and the parser).
func Tokenize(src string) ([]Token, error) {
	l := New(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Type == EOF {
			return out, nil
		}
	}
}
