package lexer_test

// This file preserves the previous allocating lexer verbatim as a
// test-only reference implementation. The production lexer was
// rewritten as a zero-allocation byte scanner; the differential tests
// and fuzz target in differential_test.go hold the two to exact
// token-stream and error equality so the rewrite cannot drift. The
// only intentional change from the historical code is marked below:
// the exponent-backtrack path used to restore pos but not col, leaving
// reported columns wrong for every token after an input like "1e+" —
// the new lexer derives columns from line offsets and does not have
// the bug, so the reference is fixed to match.

import (
	"fmt"
	"strings"
	"unicode"

	"graphsql/internal/sql/lexer"
)

var refKeywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "OFFSET": true, "AS": true,
	"AND": true, "OR": true, "NOT": true, "IN": true, "IS": true, "NULL": true,
	"LIKE": true, "BETWEEN": true, "CASE": true, "WHEN": true, "THEN": true,
	"ELSE": true, "END": true, "CAST": true, "CREATE": true, "TABLE": true,
	"INSERT": true, "INTO": true, "VALUES": true, "WITH": true, "JOIN": true,
	"LEFT": true, "RIGHT": true, "FULL": true, "INNER": true, "OUTER": true,
	"CROSS": true, "ON": true, "USING": true, "DISTINCT": true, "ALL": true,
	"UNION": true, "EXCEPT": true, "INTERSECT": true, "ASC": true, "DESC": true,
	"TRUE": true, "FALSE": true, "EXISTS": true, "DROP": true, "DELETE": true,
	"PRIMARY": true, "KEY": true, "DEFAULT": true, "LATERAL": true,
	"ORDINALITY": true, "NULLS": true, "FIRST": true, "LAST": true,
	"SET":     true,
	"REACHES": true, "OVER": true, "EDGE": true, "CHEAPEST": true, "UNNEST": true,
	"INT": true, "INTEGER": true, "BIGINT": true, "SMALLINT": true,
	"DOUBLE": true, "FLOAT": true, "REAL": true, "PRECISION": true,
	"VARCHAR": true, "TEXT": true, "CHAR": true, "STRING": true,
	"BOOLEAN": true, "BOOL": true, "DATE": true,
}

type refLexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newRefLexer(src string) *refLexer {
	return &refLexer{src: src, line: 1, col: 1}
}

func (l *refLexer) errorf(format string, args ...interface{}) error {
	return &lexer.Error{Msg: fmt.Sprintf(format, args...), Line: l.line, Col: l.col}
}

func (l *refLexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *refLexer) peekAt(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *refLexer) advance() byte {
	ch := l.src[l.pos]
	l.pos++
	if ch == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return ch
}

func (l *refLexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		ch := l.peek()
		switch {
		case ch == ' ' || ch == '\t' || ch == '\r' || ch == '\n':
			l.advance()
		case ch == '-' && l.peekAt(1) == '-':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case ch == '/' && l.peekAt(1) == '*':
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peek() == '*' && l.peekAt(1) == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return l.errorf("unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func (l *refLexer) next() (lexer.Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return lexer.Token{}, err
	}
	start, line, col := l.pos, l.line, l.col
	mk := func(tt lexer.TokenType, text string) lexer.Token {
		return lexer.Token{Type: tt, Text: text, Pos: start, Line: line, Col: col}
	}
	if l.pos >= len(l.src) {
		return mk(lexer.EOF, ""), nil
	}
	ch := l.peek()
	switch {
	case refIsIdentStart(ch):
		for l.pos < len(l.src) && refIsIdentPart(l.peek()) {
			l.advance()
		}
		word := l.src[start:l.pos]
		if up := strings.ToUpper(word); refKeywords[up] {
			return mk(lexer.Keyword, up), nil
		}
		return mk(lexer.Ident, word), nil
	case ch >= '0' && ch <= '9', ch == '.' && refIsDigit(l.peekAt(1)):
		return l.lexNumber(mk)
	case ch == '\'':
		return l.lexString(mk)
	case ch == '"':
		return l.lexQuotedIdent(mk)
	case ch == '?':
		l.advance()
		return mk(lexer.Param, "?"), nil
	}
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=", "||":
		l.advance()
		l.advance()
		if two == "!=" {
			two = "<>"
		}
		return mk(lexer.Symbol, two), nil
	}
	switch ch {
	case '+', '-', '*', '/', '%', '=', '<', '>', '(', ')', ',', '.', ';', ':':
		l.advance()
		return mk(lexer.Symbol, string(ch)), nil
	}
	return lexer.Token{}, l.errorf("unexpected character %q", string(rune(ch)))
}

func (l *refLexer) lexNumber(mk func(lexer.TokenType, string) lexer.Token) (lexer.Token, error) {
	start := l.pos
	for l.pos < len(l.src) && refIsDigit(l.peek()) {
		l.advance()
	}
	if l.peek() == '.' && refIsDigit(l.peekAt(1)) {
		l.advance()
		for l.pos < len(l.src) && refIsDigit(l.peek()) {
			l.advance()
		}
	} else if l.peek() == '.' && !refIsIdentStart(l.peekAt(1)) {
		// trailing dot as in "1." — accept
		l.advance()
	}
	if l.peek() == 'e' || l.peek() == 'E' {
		save, saveCol := l.pos, l.col
		l.advance()
		if l.peek() == '+' || l.peek() == '-' {
			l.advance()
		}
		if !refIsDigit(l.peek()) {
			// Not an exponent after all. The historical code restored
			// pos but forgot col; fixed here so the differential tests
			// can demand exact position equality with the new lexer.
			l.pos, l.col = save, saveCol
		} else {
			for l.pos < len(l.src) && refIsDigit(l.peek()) {
				l.advance()
			}
		}
	}
	return mk(lexer.Number, l.src[start:l.pos]), nil
}

func (l *refLexer) lexString(mk func(lexer.TokenType, string) lexer.Token) (lexer.Token, error) {
	l.advance() // opening quote
	var b strings.Builder
	for {
		if l.pos >= len(l.src) {
			return lexer.Token{}, l.errorf("unterminated string literal")
		}
		ch := l.advance()
		if ch == '\'' {
			if l.peek() == '\'' { // doubled quote escape
				l.advance()
				b.WriteByte('\'')
				continue
			}
			return mk(lexer.String, b.String()), nil
		}
		b.WriteByte(ch)
	}
}

func (l *refLexer) lexQuotedIdent(mk func(lexer.TokenType, string) lexer.Token) (lexer.Token, error) {
	l.advance() // opening quote
	var b strings.Builder
	for {
		if l.pos >= len(l.src) {
			return lexer.Token{}, l.errorf("unterminated quoted identifier")
		}
		ch := l.advance()
		if ch == '"' {
			if l.peek() == '"' {
				l.advance()
				b.WriteByte('"')
				continue
			}
			if b.Len() == 0 {
				return lexer.Token{}, l.errorf("empty quoted identifier")
			}
			return mk(lexer.Ident, b.String()), nil
		}
		b.WriteByte(ch)
	}
}

func refIsIdentStart(ch byte) bool {
	return ch == '_' || unicode.IsLetter(rune(ch))
}

func refIsIdentPart(ch byte) bool {
	return ch == '_' || ch == '$' || unicode.IsLetter(rune(ch)) || refIsDigit(ch)
}

func refIsDigit(ch byte) bool { return ch >= '0' && ch <= '9' }

func refTokenize(src string) ([]lexer.Token, error) {
	l := newRefLexer(src)
	var out []lexer.Token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Type == lexer.EOF {
			return out, nil
		}
	}
}
