package lexer

import "strings"

// SplitStatements splits a script at statement-separating semicolons
// by tokenizing with the lexer itself, so every quoting and comment
// form — string literals with ” escapes, "quoted" identifiers with ""
// escapes, -- and /* */ comments — delimits exactly as it does when
// the script is parsed; there is no second, hand-rolled scanner to
// drift out of sync. Statement texts are returned verbatim (trimmed,
// separators dropped). Segments with no tokens at all — empty, or
// comment-only, which a single-statement parse would reject even
// though ParseAll tolerates them — are skipped. A script whose tail
// fails to tokenize is returned with that tail as one final statement,
// so the parser reports the real error to the caller.
func SplitStatements(src string) []string {
	var out []string
	tokens := 0 // tokens seen since the last separator
	flush := func(lo, hi int) {
		if s := strings.TrimSpace(src[lo:hi]); s != "" && tokens > 0 {
			out = append(out, s)
		}
		tokens = 0
	}
	l := New(src)
	start := 0
	for {
		tok, err := l.Next()
		if err != nil {
			// Undecodable tail: hand it over verbatim for the error.
			tokens++
			flush(start, len(src))
			return out
		}
		if tok.Type == EOF {
			flush(start, len(src))
			return out
		}
		if tok.Type == Symbol && tok.Text == ";" {
			flush(start, tok.Pos)
			start = tok.Pos + 1
			continue
		}
		tokens++
	}
}
