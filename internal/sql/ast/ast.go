// Package ast defines the abstract syntax tree of the SQL dialect,
// including the nodes the paper introduces: the reachability predicate
// (REACHES ... OVER ... EDGE), the CHEAPEST SUM summary function with
// multi-alias output, and UNNEST table references (§2).
package ast

import "strings"

// Statement is any top-level SQL statement.
type Statement interface{ stmt() }

// Expr is any scalar expression.
type Expr interface{ expr() }

// TableExpr is any FROM-clause item.
type TableExpr interface{ tableExpr() }

// ---------------------------------------------------------------------------
// Statements

// SelectStmt is a full query: optional WITH prefix, a core (or set-op
// tree), and the trailing ORDER BY / LIMIT clauses.
type SelectStmt struct {
	With    []CTE
	Body    QueryBody
	OrderBy []OrderItem
	Limit   Expr // nil when absent
	Offset  Expr // nil when absent
}

// CTE is one WITH list entry: name AS (select).
type CTE struct {
	Name    string
	Columns []string // optional column aliases
	Select  *SelectStmt
}

// QueryBody is either a SelectCore or a set operation over two bodies.
type QueryBody interface{ queryBody() }

// SelectCore is one SELECT ... FROM ... WHERE ... GROUP BY ... HAVING
// block.
type SelectCore struct {
	Distinct bool
	Items    []SelectItem
	From     []TableExpr // empty FROM allowed (paper example A.1)
	Where    Expr
	GroupBy  []Expr
	Having   Expr
}

func (*SelectCore) queryBody() {}

// SetOp is UNION / UNION ALL / EXCEPT / INTERSECT.
type SetOp struct {
	Op    string // "UNION", "EXCEPT", "INTERSECT"
	All   bool
	Left  QueryBody
	Right QueryBody
}

func (*SetOp) queryBody() {}

// SelectItem is one projection entry. CHEAPEST SUM items may carry two
// aliases via the AS (cost, path) form (§2).
type SelectItem struct {
	// Star is SELECT * or qualifier.*.
	Star      bool
	StarTable string
	Expr      Expr
	// Aliases holds zero, one, or (for CHEAPEST SUM) two output names.
	Aliases []string
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
	// NullsFirst: -1 default, 0 NULLS LAST, 1 NULLS FIRST.
	NullsFirst int
}

// CreateTableStmt is CREATE TABLE name (col type, ...).
type CreateTableStmt struct {
	Name    string
	Columns []ColumnDef
}

// ColumnDef is one column definition.
type ColumnDef struct {
	Name     string
	TypeName string
}

// InsertStmt is INSERT INTO name [(cols)] VALUES (...),... | SELECT.
type InsertStmt struct {
	Table   string
	Columns []string
	Rows    [][]Expr    // literal VALUES rows, or
	Select  *SelectStmt // INSERT ... SELECT
}

// DropTableStmt is DROP TABLE name.
type DropTableStmt struct{ Name string }

// SetStmt is SET name = value | SET name = DEFAULT. Settings are
// session-scoped when executed through a session (the server, or the
// facade's Session API) and engine-wide otherwise. The only setting
// today is `parallelism`.
type SetStmt struct {
	Name string
	// Value is the assigned expression; nil when Default is set.
	Value Expr
	// Default marks SET name = DEFAULT (reset to the inherited value).
	Default bool
}

// DeleteStmt is DELETE FROM name [WHERE expr].
type DeleteStmt struct {
	Table string
	Where Expr
}

// ExplainStmt is EXPLAIN [ANALYZE] <select>. Plain EXPLAIN renders the
// bound plan tree without executing; EXPLAIN ANALYZE executes the
// select under a trace and annotates the tree with actual row counts,
// wall times, worker budgets and solver frontier sizes. Only SELECT
// (and WITH ... SELECT) statements can be explained.
type ExplainStmt struct {
	Analyze bool
	Stmt    *SelectStmt
}

func (*SelectStmt) stmt()      {}
func (*CreateTableStmt) stmt() {}
func (*InsertStmt) stmt()      {}
func (*DropTableStmt) stmt()   {}
func (*DeleteStmt) stmt()      {}
func (*SetStmt) stmt()         {}
func (*ExplainStmt) stmt()     {}

// ---------------------------------------------------------------------------
// Table expressions

// JoinType enumerates join flavors.
type JoinType uint8

const (
	// JoinCross is a cross product (comma or CROSS JOIN).
	JoinCross JoinType = iota
	// JoinInner is INNER JOIN ... ON.
	JoinInner
	// JoinLeft is LEFT [OUTER] JOIN ... ON.
	JoinLeft
)

// String names the join type.
func (t JoinType) String() string {
	switch t {
	case JoinCross:
		return "CROSS"
	case JoinInner:
		return "INNER"
	case JoinLeft:
		return "LEFT"
	}
	return "?"
}

// TableRef names a base table or CTE, with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// SubqueryRef is a derived table: (SELECT ...) AS alias.
type SubqueryRef struct {
	Select *SelectStmt
	Alias  string
}

// JoinExpr combines two table expressions.
type JoinExpr struct {
	Type  JoinType
	Left  TableExpr
	Right TableExpr
	On    Expr // nil for cross joins
}

// UnnestRef expands a nested-table expression laterally (§2): range
// variables of earlier FROM items are visible inside Expr. Outer marks
// the left-outer form that preserves empty collections.
type UnnestRef struct {
	Expr       Expr
	Ordinality bool
	Outer      bool
	Alias      string
}

func (*TableRef) tableExpr()    {}
func (*SubqueryRef) tableExpr() {}
func (*JoinExpr) tableExpr()    {}
func (*UnnestRef) tableExpr()   {}

// ---------------------------------------------------------------------------
// Scalar expressions

// Ident is a possibly qualified column reference (a or a.b).
type Ident struct {
	Parts []string
	// Line/Col locate the reference for binder errors.
	Line, Col int
}

// String renders the dotted name.
func (id *Ident) String() string { return strings.Join(id.Parts, ".") }

// NumberLit is an integer or decimal literal.
type NumberLit struct {
	Text    string
	IsFloat bool
}

// StringLit is a string literal.
type StringLit struct{ Val string }

// BoolLit is TRUE or FALSE.
type BoolLit struct{ Val bool }

// NullLit is NULL.
type NullLit struct{}

// ParamExpr is the n-th positional host parameter (0-based).
type ParamExpr struct{ Index int }

// BinaryExpr applies an infix operator: arithmetic (+,-,*,/,%),
// comparison (=,<>,<,<=,>,>=), logical (AND, OR) or concatenation (||).
type BinaryExpr struct {
	Op   string
	L, R Expr
}

// UnaryExpr applies a prefix operator: -, +, NOT.
type UnaryExpr struct {
	Op string
	X  Expr
}

// IsNullExpr is X IS [NOT] NULL.
type IsNullExpr struct {
	X   Expr
	Not bool
}

// InExpr is X [NOT] IN (list).
type InExpr struct {
	X    Expr
	List []Expr
	Not  bool
}

// InSubquery is X [NOT] IN (SELECT ...). Only the uncorrelated form is
// supported, as a top-level WHERE conjunct (it plans as a semi/anti
// join).
type InSubquery struct {
	X         Expr
	Select    *SelectStmt
	Not       bool
	Line, Col int
}

// ExistsExpr is [NOT] EXISTS (SELECT ...), uncorrelated, top-level
// WHERE conjunct only.
type ExistsExpr struct {
	Select    *SelectStmt
	Not       bool
	Line, Col int
}

// BetweenExpr is X [NOT] BETWEEN Lo AND Hi.
type BetweenExpr struct {
	X, Lo, Hi Expr
	Not       bool
}

// LikeExpr is X [NOT] LIKE pattern.
type LikeExpr struct {
	X, Pattern Expr
	Not        bool
}

// CaseExpr is CASE [operand] WHEN ... THEN ... [ELSE ...] END.
type CaseExpr struct {
	Operand Expr // nil for searched CASE
	Whens   []CaseWhen
	Else    Expr
}

// CaseWhen is one WHEN/THEN arm.
type CaseWhen struct{ When, Then Expr }

// CastExpr is CAST(X AS type).
type CastExpr struct {
	X        Expr
	TypeName string
}

// FuncCall is a scalar or aggregate function call.
type FuncCall struct {
	Name     string
	Args     []Expr
	Star     bool // COUNT(*)
	Distinct bool // COUNT(DISTINCT x) etc.
	Line     int
	Col      int
}

// ReachesExpr is the reachability predicate of §2:
//
//	X REACHES Y OVER edge [alias] EDGE (src, dst)
//
// It is only legal as a top-level conjunct of a WHERE clause.
type ReachesExpr struct {
	X, Y Expr
	// Edge is the edge table expression (named table, CTE or derived
	// table).
	Edge TableExpr
	// EdgeAlias is the tuple variable that CHEAPEST SUM uses to bind
	// to this predicate; may be empty.
	EdgeAlias string
	// Src and Dst name the source and destination attributes of the
	// edge table.
	Src, Dst  string
	Line, Col int
}

// CheapestSum is the summary function of §2:
//
//	CHEAPEST SUM([e:] weightExpr)
//
// Binding names the edge-table tuple variable; empty means "the only
// reachability predicate in the block".
type CheapestSum struct {
	Binding   string
	Weight    Expr
	Line, Col int
}

func (*Ident) expr()       {}
func (*NumberLit) expr()   {}
func (*StringLit) expr()   {}
func (*BoolLit) expr()     {}
func (*NullLit) expr()     {}
func (*ParamExpr) expr()   {}
func (*BinaryExpr) expr()  {}
func (*UnaryExpr) expr()   {}
func (*IsNullExpr) expr()  {}
func (*InExpr) expr()      {}
func (*InSubquery) expr()  {}
func (*ExistsExpr) expr()  {}
func (*BetweenExpr) expr() {}
func (*LikeExpr) expr()    {}
func (*CaseExpr) expr()    {}
func (*CastExpr) expr()    {}
func (*FuncCall) expr()    {}
func (*ReachesExpr) expr() {}
func (*CheapestSum) expr() {}
