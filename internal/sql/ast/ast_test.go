package ast

import "testing"

func TestJoinTypeString(t *testing.T) {
	cases := map[JoinType]string{
		JoinCross: "CROSS",
		JoinInner: "INNER",
		JoinLeft:  "LEFT",
	}
	for jt, want := range cases {
		if jt.String() != want {
			t.Errorf("%d.String() = %q, want %q", jt, jt.String(), want)
		}
	}
}

func TestIdentString(t *testing.T) {
	id := &Ident{Parts: []string{"t", "col"}}
	if id.String() != "t.col" {
		t.Fatalf("ident = %q", id.String())
	}
	bare := &Ident{Parts: []string{"x"}}
	if bare.String() != "x" {
		t.Fatalf("ident = %q", bare.String())
	}
}

// TestNodeInterfaces pins every AST node to its interface; a node that
// loses its marker method breaks compilation here rather than at a
// use site.
func TestNodeInterfaces(t *testing.T) {
	stmts := []Statement{
		&SelectStmt{}, &CreateTableStmt{}, &InsertStmt{}, &DropTableStmt{}, &DeleteStmt{},
	}
	exprs := []Expr{
		&Ident{}, &NumberLit{}, &StringLit{}, &BoolLit{}, &NullLit{},
		&ParamExpr{}, &BinaryExpr{}, &UnaryExpr{}, &IsNullExpr{},
		&InExpr{}, &InSubquery{}, &ExistsExpr{}, &BetweenExpr{},
		&LikeExpr{}, &CaseExpr{}, &CastExpr{}, &FuncCall{},
		&ReachesExpr{}, &CheapestSum{},
	}
	tables := []TableExpr{
		&TableRef{}, &SubqueryRef{}, &JoinExpr{}, &UnnestRef{},
	}
	if len(stmts) != 5 || len(exprs) != 19 || len(tables) != 4 {
		t.Fatal("inventory drifted")
	}
	bodies := []QueryBody{&SelectCore{}, &SetOp{}}
	_ = bodies
}
