package parser

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParserNeverPanics feeds mutated fragments of valid queries to
// the parser; every input must either parse or return an error — no
// panics, no hangs.
func TestParserNeverPanics(t *testing.T) {
	seeds := []string{
		`SELECT a, b FROM t WHERE x = 1 AND y REACHES z OVER e f EDGE (s, d)`,
		`WITH c AS (SELECT 1) SELECT CHEAPEST SUM(f: w * 2) AS (cost, path) FROM t`,
		`SELECT * FROM (SELECT 1) q, UNNEST(q.p) WITH ORDINALITY AS r ORDER BY 1 DESC LIMIT 3`,
		`INSERT INTO t (a, b) VALUES (1, 'x''y'), (NULL, CAST('1' AS INT))`,
		`SELECT CASE WHEN a THEN 1 ELSE 2 END FROM t GROUP BY a HAVING COUNT(*) > 1`,
		`SELECT 1 UNION ALL SELECT 2 EXCEPT SELECT 3 INTERSECT SELECT 4`,
		`SELECT x FROM a WHERE x IN (SELECT y FROM b) AND EXISTS (SELECT 1)`,
	}
	tokens := []string{
		"SELECT", "FROM", "WHERE", "(", ")", ",", "REACHES", "OVER",
		"EDGE", "CHEAPEST", "SUM", "UNNEST", "''", "1", "?", "*", "||",
		"AND", "OR", "NOT", "AS", ";", ".", "<", "=", "JOIN", "ON",
	}
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 3000; trial++ {
		src := seeds[r.Intn(len(seeds))]
		switch r.Intn(4) {
		case 0: // truncate at a random byte
			if len(src) > 0 {
				src = src[:r.Intn(len(src))]
			}
		case 1: // splice in a random token
			parts := strings.Fields(src)
			if len(parts) > 0 {
				i := r.Intn(len(parts))
				parts[i] = tokens[r.Intn(len(tokens))]
				src = strings.Join(parts, " ")
			}
		case 2: // delete a random word
			parts := strings.Fields(src)
			if len(parts) > 1 {
				i := r.Intn(len(parts))
				src = strings.Join(append(parts[:i], parts[i+1:]...), " ")
			}
		case 3: // duplicate a random word
			parts := strings.Fields(src)
			if len(parts) > 0 {
				i := r.Intn(len(parts))
				parts = append(parts[:i+1], parts[i:]...)
				src = strings.Join(parts, " ")
			}
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("parser panicked on %q: %v", src, p)
				}
			}()
			_, _ = ParseAll(src)
		}()
	}
}

// TestParserErrorsArePositioned checks that syntax errors report line
// and column.
func TestParserErrorsArePositioned(t *testing.T) {
	_, err := Parse("SELECT a\nFROM t WHERE +")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error lacks position: %v", err)
	}
}
