package parser

import (
	"strings"
	"testing"

	"graphsql/internal/sql/ast"
)

func parseSelect(t *testing.T, src string) *ast.SelectStmt {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	sel, ok := stmt.(*ast.SelectStmt)
	if !ok {
		t.Fatalf("got %T, want *SelectStmt", stmt)
	}
	return sel
}

func core(t *testing.T, sel *ast.SelectStmt) *ast.SelectCore {
	t.Helper()
	c, ok := sel.Body.(*ast.SelectCore)
	if !ok {
		t.Fatalf("body is %T, want *SelectCore", sel.Body)
	}
	return c
}

func TestParseSimpleSelect(t *testing.T) {
	c := core(t, parseSelect(t, "SELECT a, b AS bb, t.* FROM t WHERE a > 1"))
	if len(c.Items) != 3 {
		t.Fatalf("items = %d", len(c.Items))
	}
	if c.Items[1].Aliases[0] != "bb" {
		t.Fatalf("alias = %v", c.Items[1].Aliases)
	}
	if !c.Items[2].Star || c.Items[2].StarTable != "t" {
		t.Fatal("t.* not recognized")
	}
	if c.Where == nil {
		t.Fatal("missing WHERE")
	}
}

func TestParseReaches(t *testing.T) {
	c := core(t, parseSelect(t,
		`SELECT 1 WHERE a REACHES b OVER edges e EDGE (src, dst)`))
	re, ok := c.Where.(*ast.ReachesExpr)
	if !ok {
		t.Fatalf("where is %T", c.Where)
	}
	if re.EdgeAlias != "e" || re.Src != "src" || re.Dst != "dst" {
		t.Fatalf("reaches = %+v", re)
	}
	if _, ok := re.Edge.(*ast.TableRef); !ok {
		t.Fatalf("edge is %T", re.Edge)
	}
}

func TestParseReachesWithoutAlias(t *testing.T) {
	c := core(t, parseSelect(t,
		`SELECT 1 WHERE x REACHES y OVER e EDGE (s, d) AND z = 1`))
	bin, ok := c.Where.(*ast.BinaryExpr)
	if !ok || bin.Op != "AND" {
		t.Fatalf("where is %T", c.Where)
	}
	if _, ok := bin.L.(*ast.ReachesExpr); !ok {
		t.Fatalf("left conjunct is %T", bin.L)
	}
}

func TestParseReachesOverSubquery(t *testing.T) {
	c := core(t, parseSelect(t,
		`SELECT 1 WHERE a REACHES b OVER (SELECT * FROM e WHERE w > 0) f EDGE (s, d)`))
	re := c.Where.(*ast.ReachesExpr)
	if _, ok := re.Edge.(*ast.SubqueryRef); !ok {
		t.Fatalf("edge is %T, want subquery", re.Edge)
	}
	if re.EdgeAlias != "f" {
		t.Fatalf("alias = %q", re.EdgeAlias)
	}
}

func TestParseCheapestSum(t *testing.T) {
	c := core(t, parseSelect(t, `SELECT CHEAPEST SUM(e: w * 2) AS (cost, path)
		WHERE a REACHES b OVER t e EDGE (s, d)`))
	cs, ok := c.Items[0].Expr.(*ast.CheapestSum)
	if !ok {
		t.Fatalf("item is %T", c.Items[0].Expr)
	}
	if cs.Binding != "e" {
		t.Fatalf("binding = %q", cs.Binding)
	}
	if len(c.Items[0].Aliases) != 2 || c.Items[0].Aliases[1] != "path" {
		t.Fatalf("aliases = %v", c.Items[0].Aliases)
	}
}

func TestParseCheapestSumNoBinding(t *testing.T) {
	c := core(t, parseSelect(t, `SELECT CHEAPEST SUM(1) WHERE a REACHES b OVER t EDGE (s, d)`))
	cs := c.Items[0].Expr.(*ast.CheapestSum)
	if cs.Binding != "" {
		t.Fatalf("binding = %q, want empty", cs.Binding)
	}
	if _, ok := cs.Weight.(*ast.NumberLit); !ok {
		t.Fatalf("weight is %T", cs.Weight)
	}
}

func TestParseCheapestRequiresSum(t *testing.T) {
	_, err := Parse(`SELECT CHEAPEST MAX(1) WHERE a REACHES b OVER t EDGE (s, d)`)
	if err == nil || !strings.Contains(err.Error(), "SUM") {
		t.Fatalf("err = %v", err)
	}
}

func TestParseUnnest(t *testing.T) {
	c := core(t, parseSelect(t,
		`SELECT * FROM (SELECT 1) T, UNNEST(T.path) WITH ORDINALITY AS r`))
	if len(c.From) != 2 {
		t.Fatalf("from items = %d", len(c.From))
	}
	u, ok := c.From[1].(*ast.UnnestRef)
	if !ok {
		t.Fatalf("second item is %T", c.From[1])
	}
	if !u.Ordinality || u.Alias != "r" || u.Outer {
		t.Fatalf("unnest = %+v", u)
	}
}

func TestParseLeftJoinUnnestIsOuter(t *testing.T) {
	c := core(t, parseSelect(t,
		`SELECT * FROM t LEFT JOIN UNNEST(t.p) AS r ON TRUE`))
	j, ok := c.From[0].(*ast.JoinExpr)
	if !ok {
		t.Fatalf("from is %T", c.From[0])
	}
	u, ok := j.Right.(*ast.UnnestRef)
	if !ok || !u.Outer {
		t.Fatalf("right = %#v", j.Right)
	}
}

func TestParseJoins(t *testing.T) {
	c := core(t, parseSelect(t, `SELECT * FROM a JOIN b ON a.x = b.y
		LEFT OUTER JOIN c ON b.z = c.z CROSS JOIN d`))
	j3, ok := c.From[0].(*ast.JoinExpr)
	if !ok || j3.Type != ast.JoinCross {
		t.Fatalf("outermost join = %+v", c.From[0])
	}
	j2 := j3.Left.(*ast.JoinExpr)
	if j2.Type != ast.JoinLeft {
		t.Fatalf("middle join type = %v", j2.Type)
	}
	j1 := j2.Left.(*ast.JoinExpr)
	if j1.Type != ast.JoinInner || j1.On == nil {
		t.Fatalf("inner join = %+v", j1)
	}
}

func TestParseWithCTE(t *testing.T) {
	sel := parseSelect(t, `WITH f AS (SELECT * FROM t), g (a, b) AS (SELECT 1, 2)
		SELECT * FROM f, g`)
	if len(sel.With) != 2 {
		t.Fatalf("CTEs = %d", len(sel.With))
	}
	if sel.With[1].Columns[1] != "b" {
		t.Fatalf("cte columns = %v", sel.With[1].Columns)
	}
}

func TestParseSetOps(t *testing.T) {
	sel := parseSelect(t, `SELECT 1 UNION ALL SELECT 2 EXCEPT SELECT 3`)
	// Left-associative: (1 UNION ALL 2) EXCEPT 3.
	outer, ok := sel.Body.(*ast.SetOp)
	if !ok || outer.Op != "EXCEPT" || outer.All {
		t.Fatalf("outer = %+v", sel.Body)
	}
	inner := outer.Left.(*ast.SetOp)
	if inner.Op != "UNION" || !inner.All {
		t.Fatalf("inner = %+v", inner)
	}
}

func TestParseOrderLimit(t *testing.T) {
	sel := parseSelect(t, `SELECT a FROM t ORDER BY a DESC NULLS FIRST, b ASC LIMIT 10 OFFSET 5`)
	if len(sel.OrderBy) != 2 {
		t.Fatalf("order keys = %d", len(sel.OrderBy))
	}
	if !sel.OrderBy[0].Desc || sel.OrderBy[0].NullsFirst != 1 {
		t.Fatalf("first key = %+v", sel.OrderBy[0])
	}
	if sel.OrderBy[1].Desc || sel.OrderBy[1].NullsFirst != -1 {
		t.Fatalf("second key = %+v", sel.OrderBy[1])
	}
	if sel.Limit == nil || sel.Offset == nil {
		t.Fatal("limit/offset missing")
	}
}

func TestParseExpressions(t *testing.T) {
	c := core(t, parseSelect(t, `SELECT
		1 + 2 * 3,
		-x,
		a || b || c,
		x BETWEEN 1 AND 2,
		y NOT IN (1, 2, 3),
		z IS NOT NULL,
		name LIKE 'a%',
		CASE WHEN a THEN 1 ELSE 2 END,
		CASE x WHEN 1 THEN 'one' END,
		CAST(w AS INT),
		COALESCE(a, b, 0),
		COUNT(*),
		COUNT(DISTINCT a)`))
	// Precedence: 1 + (2 * 3).
	add := c.Items[0].Expr.(*ast.BinaryExpr)
	if add.Op != "+" {
		t.Fatalf("top op = %s", add.Op)
	}
	if mul := add.R.(*ast.BinaryExpr); mul.Op != "*" {
		t.Fatalf("right op = %s", mul.Op)
	}
	if in := c.Items[4].Expr.(*ast.InExpr); !in.Not || len(in.List) != 3 {
		t.Fatalf("NOT IN = %+v", in)
	}
	if isn := c.Items[5].Expr.(*ast.IsNullExpr); !isn.Not {
		t.Fatal("IS NOT NULL lost its NOT")
	}
	if fc := c.Items[11].Expr.(*ast.FuncCall); !fc.Star {
		t.Fatal("COUNT(*) star lost")
	}
	if fc := c.Items[12].Expr.(*ast.FuncCall); !fc.Distinct {
		t.Fatal("COUNT(DISTINCT) lost")
	}
}

func TestParsePrecedenceAndOverOr(t *testing.T) {
	c := core(t, parseSelect(t, `SELECT 1 WHERE a OR b AND c`))
	or := c.Where.(*ast.BinaryExpr)
	if or.Op != "OR" {
		t.Fatalf("top = %s, want OR", or.Op)
	}
	if and := or.R.(*ast.BinaryExpr); and.Op != "AND" {
		t.Fatalf("right = %s, want AND", and.Op)
	}
}

func TestParseConcatBindsTighterThanComparison(t *testing.T) {
	c := core(t, parseSelect(t, `SELECT 1 WHERE a || b = c`))
	cmp := c.Where.(*ast.BinaryExpr)
	if cmp.Op != "=" {
		t.Fatalf("top = %s", cmp.Op)
	}
	if cat := cmp.L.(*ast.BinaryExpr); cat.Op != "||" {
		t.Fatalf("left = %s", cat.Op)
	}
}

func TestParseCreateInsertDropDelete(t *testing.T) {
	stmt, err := Parse(`CREATE TABLE t (id BIGINT PRIMARY KEY, name VARCHAR(20) NOT NULL, d DOUBLE PRECISION)`)
	if err != nil {
		t.Fatal(err)
	}
	ct := stmt.(*ast.CreateTableStmt)
	if len(ct.Columns) != 3 || ct.Columns[2].TypeName != "DOUBLE" {
		t.Fatalf("create = %+v", ct)
	}

	stmt, err = Parse(`INSERT INTO t (id, name) VALUES (1, 'a'), (2, 'b')`)
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*ast.InsertStmt)
	if len(ins.Rows) != 2 || len(ins.Columns) != 2 {
		t.Fatalf("insert = %+v", ins)
	}

	stmt, err = Parse(`INSERT INTO t SELECT * FROM u`)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.(*ast.InsertStmt).Select == nil {
		t.Fatal("insert-select lost its query")
	}

	if _, err := Parse(`DROP TABLE t`); err != nil {
		t.Fatal(err)
	}
	stmt, err = Parse(`DELETE FROM t WHERE id = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.(*ast.DeleteStmt).Where == nil {
		t.Fatal("delete lost its predicate")
	}
}

func TestParseParams(t *testing.T) {
	_, n, err := ParseWithParams(`SELECT ? WHERE ? REACHES ? OVER t EDGE (s, d)`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("params = %d, want 3", n)
	}
}

func TestParseAllScript(t *testing.T) {
	stmts, err := ParseAll(`CREATE TABLE t (x INT); INSERT INTO t VALUES (1); SELECT * FROM t;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("statements = %d", len(stmts))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT a FROM t WHERE",
		"SELECT a b c FROM t",
		"CREATE TABLE",
		"INSERT INTO t",
		"SELECT CASE END",
		"SELECT CAST(a INT)",
		"SELECT 1 WHERE a REACHES b OVER t EDGE (s)",
		"SELECT 1 WHERE a REACHES b OVER t (s, d)",
		"SELECT a.b.c.d FROM t",
		"UPDATE t SET x = 1",
		"SELECT 1 ORDER BY a NULLS",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestParseDateLiteral(t *testing.T) {
	c := core(t, parseSelect(t, `SELECT DATE '2011-01-01'`))
	cast, ok := c.Items[0].Expr.(*ast.CastExpr)
	if !ok || cast.TypeName != "DATE" {
		t.Fatalf("item = %#v", c.Items[0].Expr)
	}
}

func TestParseFromLessSelect(t *testing.T) {
	c := core(t, parseSelect(t, `SELECT 1 + 1`))
	if len(c.From) != 0 {
		t.Fatalf("from = %v", c.From)
	}
}

func TestParseKeywordAfterDot(t *testing.T) {
	c := core(t, parseSelect(t, `SELECT r.ordinality FROM r`))
	id := c.Items[0].Expr.(*ast.Ident)
	if len(id.Parts) != 2 || !strings.EqualFold(id.Parts[1], "ordinality") {
		t.Fatalf("ident = %v", id.Parts)
	}
}
