package parser

import (
	"testing"

	"graphsql/internal/testutil"
)

// FuzzParse drives the lexer and parser with arbitrary statement text.
// The invariant is panic-freedom: every input either parses or returns
// an error. Seeds come from the differential-test corpus, so the fuzz
// frontier starts at the full supported grammar (joins, aggregation,
// set operations, REACHES / CHEAPEST SUM, UNNEST, CTEs) rather than at
// the empty string.
//
// CI runs a short -fuzz smoke; `go test -fuzz FuzzParse ./internal/sql/parser`
// explores further locally.
func FuzzParse(f *testing.F) {
	for _, seed := range testutil.FuzzSeeds() {
		f.Add(seed)
	}
	f.Add("SELECT")
	f.Add(`SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER e EDGE (s, d)`)
	f.Add("WITH x AS (SELECT 1) SELECT * FROM x;;; SELECT 2")
	f.Add("SELECT 'unterminated")
	f.Add("SELECT 1e999, .5, 0x, `q`")
	f.Fuzz(func(t *testing.T, sql string) {
		// Both entry points must be total: a panic (slice overrun,
		// infinite recursion blowing the stack) is the only failure.
		stmt, nparams, err := ParseWithParams(sql)
		if err == nil && stmt == nil {
			t.Fatalf("ParseWithParams(%q): nil statement without error", sql)
		}
		if nparams < 0 {
			t.Fatalf("ParseWithParams(%q): negative parameter count %d", sql, nparams)
		}
		stmts, err := ParseAll(sql)
		if err == nil {
			for _, s := range stmts {
				if s == nil {
					t.Fatalf("ParseAll(%q): nil statement in result", sql)
				}
			}
		}
	})
}
