// Package parser implements a recursive-descent parser for the SQL
// dialect, covering standard SELECT blocks (joins, CTEs, grouping, set
// operations, subqueries), DDL/DML, and the paper's graph extension:
// the REACHES reachability predicate, the CHEAPEST SUM summary
// function with the AS (cost, path) multi-alias form, and lateral
// UNNEST with WITH ORDINALITY (§2, §3.1).
package parser

import (
	"fmt"
	"strings"

	"graphsql/internal/sql/ast"
	"graphsql/internal/sql/lexer"
)

// Parser consumes a token stream produced by the lexer.
type Parser struct {
	toks   []lexer.Token
	pos    int
	params int
}

// Error is a parse error with source position.
type Error struct {
	Msg       string
	Line, Col int
}

func (e *Error) Error() string {
	return fmt.Sprintf("parse error at line %d col %d: %s", e.Line, e.Col, e.Msg)
}

// Parse parses a single SQL statement (a trailing semicolon is
// allowed).
func Parse(src string) (ast.Statement, error) {
	stmts, err := ParseAll(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("expected exactly one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

// ParseAll parses a semicolon-separated script.
func ParseAll(src string) ([]ast.Statement, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	var stmts []ast.Statement
	for {
		for p.peekSymbol(";") {
			p.next()
		}
		if p.peek().Type == lexer.EOF {
			break
		}
		s, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
		if !p.peekSymbol(";") && p.peek().Type != lexer.EOF {
			return nil, p.errorf("unexpected %s after statement", p.peek())
		}
	}
	return stmts, nil
}

// NumParams reports how many ? placeholders the last parsed statement
// used. Exposed through ParseWithParams.
func ParseWithParams(src string) (ast.Statement, int, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, 0, err
	}
	p := &Parser{toks: toks}
	s, err := p.parseStatement()
	if err != nil {
		return nil, 0, err
	}
	for p.peekSymbol(";") {
		p.next()
	}
	if p.peek().Type != lexer.EOF {
		return nil, 0, p.errorf("unexpected %s after statement", p.peek())
	}
	return s, p.params, nil
}

// ---------------------------------------------------------------------------
// token helpers

func (p *Parser) peek() lexer.Token { return p.toks[p.pos] }

func (p *Parser) peekAt(off int) lexer.Token {
	if p.pos+off >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+off]
}

func (p *Parser) next() lexer.Token {
	t := p.toks[p.pos]
	if t.Type != lexer.EOF {
		p.pos++
	}
	return t
}

func (p *Parser) errorf(format string, args ...interface{}) error {
	t := p.peek()
	return &Error{Msg: fmt.Sprintf(format, args...), Line: t.Line, Col: t.Col}
}

func (p *Parser) peekKeyword(kw string) bool {
	t := p.peek()
	return t.Type == lexer.Keyword && t.Text == kw
}

func (p *Parser) acceptKeyword(kw string) bool {
	if p.peekKeyword(kw) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s, found %s", kw, p.peek())
	}
	return nil
}

func (p *Parser) peekSymbol(sym string) bool {
	t := p.peek()
	return t.Type == lexer.Symbol && t.Text == sym
}

func (p *Parser) acceptSymbol(sym string) bool {
	if p.peekSymbol(sym) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return p.errorf("expected %q, found %s", sym, p.peek())
	}
	return nil
}

// expectIdent consumes an identifier. Soft keywords that commonly
// double as names (type names etc.) are not accepted; quoted
// identifiers always are.
func (p *Parser) expectIdent(what string) (string, error) {
	t := p.peek()
	if t.Type != lexer.Ident {
		return "", p.errorf("expected %s, found %s", what, t)
	}
	p.next()
	return t.Text, nil
}

// ---------------------------------------------------------------------------
// statements

func (p *Parser) parseStatement() (ast.Statement, error) {
	t := p.peek()
	if t.Type != lexer.Keyword {
		return nil, p.errorf("expected a statement, found %s", t)
	}
	switch t.Text {
	case "SELECT", "WITH":
		return p.parseSelect()
	case "CREATE":
		return p.parseCreateTable()
	case "INSERT":
		return p.parseInsert()
	case "DROP":
		return p.parseDropTable()
	case "DELETE":
		return p.parseDelete()
	case "SET":
		return p.parseSet()
	case "EXPLAIN":
		return p.parseExplain()
	}
	return nil, p.errorf("unsupported statement %s", t.Text)
}

// parseExplain consumes EXPLAIN [ANALYZE] <select>. Only SELECT (and
// WITH ... SELECT) can be explained: write statements would have to
// run to be analyzed, and refusing them keeps EXPLAIN side-effect-free
// by construction except for the documented EXPLAIN ANALYZE execution.
func (p *Parser) parseExplain() (ast.Statement, error) {
	p.next() // EXPLAIN
	analyze := p.acceptKeyword("ANALYZE")
	t := p.peek()
	if t.Type != lexer.Keyword || (t.Text != "SELECT" && t.Text != "WITH") {
		return nil, p.errorf("EXPLAIN supports only SELECT statements, found %s", t)
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	return &ast.ExplainStmt{Analyze: analyze, Stmt: sel}, nil
}

// parseSet consumes SET name = value | SET name = DEFAULT.
func (p *Parser) parseSet() (ast.Statement, error) {
	p.next() // SET
	name, err := p.expectIdent("setting name")
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("="); err != nil {
		return nil, err
	}
	if p.acceptKeyword("DEFAULT") {
		return &ast.SetStmt{Name: name, Default: true}, nil
	}
	v, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &ast.SetStmt{Name: name, Value: v}, nil
}

func (p *Parser) parseCreateTable() (ast.Statement, error) {
	p.next() // CREATE
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var cols []ast.ColumnDef
	for {
		cn, err := p.expectIdent("column name")
		if err != nil {
			return nil, err
		}
		tn, err := p.parseTypeName()
		if err != nil {
			return nil, err
		}
		cols = append(cols, ast.ColumnDef{Name: cn, TypeName: tn})
		// Skip PRIMARY KEY / NOT NULL noise words after the type.
		for {
			switch {
			case p.acceptKeyword("PRIMARY"):
				if err := p.expectKeyword("KEY"); err != nil {
					return nil, err
				}
			case p.peekKeyword("NOT") && p.peekAt(1).Text == "NULL":
				p.next()
				p.next()
			default:
				goto delim
			}
		}
	delim:
		if p.acceptSymbol(",") {
			continue
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		break
	}
	return &ast.CreateTableStmt{Name: name, Columns: cols}, nil
}

// parseTypeName consumes a type name such as INT, BIGINT, DOUBLE
// [PRECISION], VARCHAR[(n)], BOOLEAN, DATE, TEXT.
func (p *Parser) parseTypeName() (string, error) {
	t := p.peek()
	if t.Type != lexer.Keyword && t.Type != lexer.Ident {
		return "", p.errorf("expected a type name, found %s", t)
	}
	p.next()
	name := strings.ToUpper(t.Text)
	if name == "DOUBLE" && p.peekKeyword("PRECISION") {
		p.next()
	}
	// Discard length arguments: VARCHAR(32), CHAR(1) ...
	if p.acceptSymbol("(") {
		for !p.peekSymbol(")") {
			if p.peek().Type == lexer.EOF {
				return "", p.errorf("unterminated type argument list")
			}
			p.next()
		}
		p.next()
	}
	return name, nil
}

func (p *Parser) parseInsert() (ast.Statement, error) {
	p.next() // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	stmt := &ast.InsertStmt{Table: name}
	if p.peekSymbol("(") {
		p.next()
		for {
			cn, err := p.expectIdent("column name")
			if err != nil {
				return nil, err
			}
			stmt.Columns = append(stmt.Columns, cn)
			if p.acceptSymbol(",") {
				continue
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			break
		}
	}
	switch {
	case p.acceptKeyword("VALUES"):
		for {
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			var row []ast.Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if p.acceptSymbol(",") {
					continue
				}
				break
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			stmt.Rows = append(stmt.Rows, row)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
	case p.peekKeyword("SELECT") || p.peekKeyword("WITH"):
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		stmt.Select = sel
	default:
		return nil, p.errorf("expected VALUES or SELECT, found %s", p.peek())
	}
	return stmt, nil
}

func (p *Parser) parseDropTable() (ast.Statement, error) {
	p.next() // DROP
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	return &ast.DropTableStmt{Name: name}, nil
}

func (p *Parser) parseDelete() (ast.Statement, error) {
	p.next() // DELETE
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	stmt := &ast.DeleteStmt{Table: name}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	return stmt, nil
}

// ---------------------------------------------------------------------------
// SELECT

func (p *Parser) parseSelect() (*ast.SelectStmt, error) {
	stmt := &ast.SelectStmt{}
	if p.acceptKeyword("WITH") {
		for {
			name, err := p.expectIdent("CTE name")
			if err != nil {
				return nil, err
			}
			cte := ast.CTE{Name: name}
			if p.peekSymbol("(") {
				p.next()
				for {
					cn, err := p.expectIdent("column alias")
					if err != nil {
						return nil, err
					}
					cte.Columns = append(cte.Columns, cn)
					if p.acceptSymbol(",") {
						continue
					}
					break
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
			}
			if err := p.expectKeyword("AS"); err != nil {
				return nil, err
			}
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			inner, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			cte.Select = inner
			stmt.With = append(stmt.With, cte)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
	}
	body, err := p.parseQueryBody()
	if err != nil {
		return nil, err
	}
	stmt.Body = body

	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := ast.OrderItem{Expr: e, NullsFirst: -1}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			if p.acceptKeyword("NULLS") {
				switch {
				case p.acceptKeyword("FIRST"):
					item.NullsFirst = 1
				case p.acceptKeyword("LAST"):
					item.NullsFirst = 0
				default:
					return nil, p.errorf("expected FIRST or LAST after NULLS")
				}
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
	}
	if p.acceptKeyword("LIMIT") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Limit = e
	}
	if p.acceptKeyword("OFFSET") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Offset = e
	}
	return stmt, nil
}

// parseQueryBody handles UNION / EXCEPT / INTERSECT chains
// (left-associative, equal precedence).
func (p *Parser) parseQueryBody() (ast.QueryBody, error) {
	left, err := p.parseCoreOrParen()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.peekKeyword("UNION"):
			op = "UNION"
		case p.peekKeyword("EXCEPT"):
			op = "EXCEPT"
		case p.peekKeyword("INTERSECT"):
			op = "INTERSECT"
		default:
			return left, nil
		}
		p.next()
		all := p.acceptKeyword("ALL")
		right, err := p.parseCoreOrParen()
		if err != nil {
			return nil, err
		}
		left = &ast.SetOp{Op: op, All: all, Left: left, Right: right}
	}
}

func (p *Parser) parseCoreOrParen() (ast.QueryBody, error) {
	if p.peekSymbol("(") && (p.peekAt(1).Text == "SELECT" || p.peekAt(1).Text == "WITH") {
		p.next()
		inner, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		if len(inner.With) > 0 || len(inner.OrderBy) > 0 || inner.Limit != nil {
			// A parenthesized full query inside a set operation; wrap
			// it as a derived-table core so its clauses survive.
			core := &ast.SelectCore{
				Items: []ast.SelectItem{{Star: true}},
				From:  []ast.TableExpr{&ast.SubqueryRef{Select: inner, Alias: "__paren"}},
			}
			return core, nil
		}
		return inner.Body, nil
	}
	return p.parseSelectCore()
}

func (p *Parser) parseSelectCore() (*ast.SelectCore, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	core := &ast.SelectCore{}
	if p.acceptKeyword("DISTINCT") {
		core.Distinct = true
	} else {
		p.acceptKeyword("ALL")
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		core.Items = append(core.Items, item)
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if p.acceptKeyword("FROM") {
		for {
			te, err := p.parseTableExpr()
			if err != nil {
				return nil, err
			}
			core.From = append(core.From, te)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		core.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			core.GroupBy = append(core.GroupBy, e)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		core.Having = e
	}
	return core, nil
}

func (p *Parser) parseSelectItem() (ast.SelectItem, error) {
	// SELECT * and qualifier.*
	if p.peekSymbol("*") {
		p.next()
		return ast.SelectItem{Star: true}, nil
	}
	if p.peek().Type == lexer.Ident && p.peekAt(1).Text == "." && p.peekAt(2).Text == "*" {
		tbl := p.next().Text
		p.next()
		p.next()
		return ast.SelectItem{Star: true, StarTable: tbl}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return ast.SelectItem{}, err
	}
	item := ast.SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		// AS (a, b) multi-alias form for CHEAPEST SUM (§2).
		if p.acceptSymbol("(") {
			for {
				a, err := p.expectIdent("output name")
				if err != nil {
					return ast.SelectItem{}, err
				}
				item.Aliases = append(item.Aliases, a)
				if p.acceptSymbol(",") {
					continue
				}
				break
			}
			if err := p.expectSymbol(")"); err != nil {
				return ast.SelectItem{}, err
			}
		} else {
			a, err := p.expectIdent("alias")
			if err != nil {
				return ast.SelectItem{}, err
			}
			item.Aliases = []string{a}
		}
	} else if p.peek().Type == lexer.Ident {
		item.Aliases = []string{p.next().Text}
	}
	return item, nil
}

// ---------------------------------------------------------------------------
// table expressions

func (p *Parser) parseTableExpr() (ast.TableExpr, error) {
	left, err := p.parseTablePrimary()
	if err != nil {
		return nil, err
	}
	for {
		var jt ast.JoinType
		var needOn bool
		switch {
		case p.peekKeyword("JOIN"):
			p.next()
			jt, needOn = ast.JoinInner, true
		case p.peekKeyword("INNER") && p.peekAt(1).Text == "JOIN":
			p.next()
			p.next()
			jt, needOn = ast.JoinInner, true
		case p.peekKeyword("LEFT"):
			p.next()
			p.acceptKeyword("OUTER")
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			jt, needOn = ast.JoinLeft, true
		case p.peekKeyword("CROSS") && p.peekAt(1).Text == "JOIN":
			p.next()
			p.next()
			jt, needOn = ast.JoinCross, false
		default:
			return left, nil
		}
		right, err := p.parseTablePrimary()
		if err != nil {
			return nil, err
		}
		var on ast.Expr
		if needOn {
			// LEFT JOIN UNNEST(...) ON TRUE is the outer-lateral form.
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			on, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if u, ok := right.(*ast.UnnestRef); ok && jt == ast.JoinLeft {
			u.Outer = true
		}
		left = &ast.JoinExpr{Type: jt, Left: left, Right: right, On: on}
	}
}

func (p *Parser) parseTablePrimary() (ast.TableExpr, error) {
	p.acceptKeyword("LATERAL") // lateral is implicit in this dialect
	switch {
	case p.peekKeyword("UNNEST"):
		p.next()
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		u := &ast.UnnestRef{Expr: e}
		if p.peekKeyword("WITH") && p.peekAt(1).Text == "ORDINALITY" {
			p.next()
			p.next()
			u.Ordinality = true
		}
		if p.acceptKeyword("AS") {
			a, err := p.expectIdent("alias")
			if err != nil {
				return nil, err
			}
			u.Alias = a
		} else if p.peek().Type == lexer.Ident {
			u.Alias = p.next().Text
		}
		return u, nil
	case p.peekSymbol("("):
		// Derived table or parenthesized join.
		if p.peekAt(1).Text == "SELECT" || p.peekAt(1).Text == "WITH" {
			p.next()
			sel, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			ref := &ast.SubqueryRef{Select: sel}
			if p.acceptKeyword("AS") {
				a, err := p.expectIdent("alias")
				if err != nil {
					return nil, err
				}
				ref.Alias = a
			} else if p.peek().Type == lexer.Ident {
				ref.Alias = p.next().Text
			}
			return ref, nil
		}
		p.next()
		te, err := p.parseTableExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return te, nil
	default:
		name, err := p.expectIdent("table name")
		if err != nil {
			return nil, err
		}
		ref := &ast.TableRef{Name: name}
		if p.acceptKeyword("AS") {
			a, err := p.expectIdent("alias")
			if err != nil {
				return nil, err
			}
			ref.Alias = a
		} else if p.peek().Type == lexer.Ident {
			ref.Alias = p.next().Text
		}
		return ref, nil
	}
}

// ---------------------------------------------------------------------------
// expressions (precedence climbing)

func (p *Parser) parseExpr() (ast.Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (ast.Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peekKeyword("OR") {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &ast.BinaryExpr{Op: "OR", L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseAnd() (ast.Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.peekKeyword("AND") {
		p.next()
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &ast.BinaryExpr{Op: "AND", L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseNot() (ast.Expr, error) {
	if p.peekKeyword("NOT") {
		p.next()
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &ast.UnaryExpr{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

// parseComparison handles binary comparisons and the postfix predicate
// forms: IS [NOT] NULL, [NOT] IN, [NOT] BETWEEN, [NOT] LIKE and the
// REACHES graph predicate.
func (p *Parser) parseComparison() (ast.Expr, error) {
	left, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		switch {
		case t.Type == lexer.Symbol && isCompareOp(t.Text):
			p.next()
			right, err := p.parseConcat()
			if err != nil {
				return nil, err
			}
			left = &ast.BinaryExpr{Op: t.Text, L: left, R: right}
		case t.Type == lexer.Keyword && t.Text == "IS":
			p.next()
			not := p.acceptKeyword("NOT")
			if err := p.expectKeyword("NULL"); err != nil {
				return nil, err
			}
			left = &ast.IsNullExpr{X: left, Not: not}
		case t.Type == lexer.Keyword && t.Text == "IN":
			p.next()
			if sub, ok, err := p.maybeSubquery(); err != nil {
				return nil, err
			} else if ok {
				left = &ast.InSubquery{X: left, Select: sub, Line: t.Line, Col: t.Col}
				continue
			}
			list, err := p.parseExprList()
			if err != nil {
				return nil, err
			}
			left = &ast.InExpr{X: left, List: list}
		case t.Type == lexer.Keyword && t.Text == "BETWEEN":
			p.next()
			lo, err := p.parseConcat()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("AND"); err != nil {
				return nil, err
			}
			hi, err := p.parseConcat()
			if err != nil {
				return nil, err
			}
			left = &ast.BetweenExpr{X: left, Lo: lo, Hi: hi}
		case t.Type == lexer.Keyword && t.Text == "LIKE":
			p.next()
			pat, err := p.parseConcat()
			if err != nil {
				return nil, err
			}
			left = &ast.LikeExpr{X: left, Pattern: pat}
		case t.Type == lexer.Keyword && t.Text == "NOT":
			// NOT IN / NOT BETWEEN / NOT LIKE
			switch p.peekAt(1).Text {
			case "IN":
				p.next()
				p.next()
				if sub, ok, err := p.maybeSubquery(); err != nil {
					return nil, err
				} else if ok {
					left = &ast.InSubquery{X: left, Select: sub, Not: true, Line: t.Line, Col: t.Col}
					continue
				}
				list, err := p.parseExprList()
				if err != nil {
					return nil, err
				}
				left = &ast.InExpr{X: left, List: list, Not: true}
			case "BETWEEN":
				p.next()
				p.next()
				lo, err := p.parseConcat()
				if err != nil {
					return nil, err
				}
				if err := p.expectKeyword("AND"); err != nil {
					return nil, err
				}
				hi, err := p.parseConcat()
				if err != nil {
					return nil, err
				}
				left = &ast.BetweenExpr{X: left, Lo: lo, Hi: hi, Not: true}
			case "LIKE":
				p.next()
				p.next()
				pat, err := p.parseConcat()
				if err != nil {
					return nil, err
				}
				left = &ast.LikeExpr{X: left, Pattern: pat, Not: true}
			default:
				return left, nil
			}
		case t.Type == lexer.Keyword && t.Text == "REACHES":
			re, err := p.parseReaches(left)
			if err != nil {
				return nil, err
			}
			left = re
		default:
			return left, nil
		}
	}
}

// parseReaches parses `X REACHES Y OVER edge [alias] EDGE (src, dst)`
// with X already consumed.
func (p *Parser) parseReaches(x ast.Expr) (ast.Expr, error) {
	t := p.next() // REACHES
	y, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("OVER"); err != nil {
		return nil, err
	}
	var edge ast.TableExpr
	if p.peekSymbol("(") {
		sel, err2 := func() (*ast.SelectStmt, error) {
			p.next()
			s, err3 := p.parseSelect()
			if err3 != nil {
				return nil, err3
			}
			if err3 := p.expectSymbol(")"); err3 != nil {
				return nil, err3
			}
			return s, nil
		}()
		if err2 != nil {
			return nil, err2
		}
		edge = &ast.SubqueryRef{Select: sel}
	} else {
		name, err2 := p.expectIdent("edge table name")
		if err2 != nil {
			return nil, err2
		}
		edge = &ast.TableRef{Name: name}
	}
	re := &ast.ReachesExpr{X: x, Y: y, Edge: edge, Line: t.Line, Col: t.Col}
	// Optional tuple variable before EDGE.
	if p.peek().Type == lexer.Ident {
		re.EdgeAlias = p.next().Text
	}
	if err := p.expectKeyword("EDGE"); err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	src, err := p.expectIdent("source attribute")
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(","); err != nil {
		return nil, err
	}
	dst, err := p.expectIdent("destination attribute")
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	re.Src, re.Dst = src, dst
	return re, nil
}

// maybeSubquery consumes `( SELECT ... )` if the lookahead matches.
func (p *Parser) maybeSubquery() (*ast.SelectStmt, bool, error) {
	if !p.peekSymbol("(") || (p.peekAt(1).Text != "SELECT" && p.peekAt(1).Text != "WITH") {
		return nil, false, nil
	}
	p.next()
	sel, err := p.parseSelect()
	if err != nil {
		return nil, false, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, false, err
	}
	return sel, true, nil
}

func (p *Parser) parseExprList() ([]ast.Expr, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var list []ast.Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		list = append(list, e)
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return list, nil
}

func isCompareOp(op string) bool {
	switch op {
	case "=", "<>", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func (p *Parser) parseConcat() (ast.Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for p.peekSymbol("||") {
		p.next()
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		left = &ast.BinaryExpr{Op: "||", L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseAdditive() (ast.Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.peekSymbol("+") || p.peekSymbol("-") {
		op := p.next().Text
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &ast.BinaryExpr{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseMultiplicative() (ast.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peekSymbol("*") || p.peekSymbol("/") || p.peekSymbol("%") {
		op := p.next().Text
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &ast.BinaryExpr{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseUnary() (ast.Expr, error) {
	if p.peekSymbol("-") || p.peekSymbol("+") {
		op := p.next().Text
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if op == "+" {
			return x, nil
		}
		return &ast.UnaryExpr{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (ast.Expr, error) {
	t := p.peek()
	switch t.Type {
	case lexer.Number:
		p.next()
		isFloat := strings.ContainsAny(t.Text, ".eE")
		return &ast.NumberLit{Text: t.Text, IsFloat: isFloat}, nil
	case lexer.String:
		p.next()
		return &ast.StringLit{Val: t.Text}, nil
	case lexer.Param:
		p.next()
		idx := p.params
		p.params++
		return &ast.ParamExpr{Index: idx}, nil
	case lexer.Keyword:
		switch t.Text {
		case "TRUE":
			p.next()
			return &ast.BoolLit{Val: true}, nil
		case "FALSE":
			p.next()
			return &ast.BoolLit{Val: false}, nil
		case "NULL":
			p.next()
			return &ast.NullLit{}, nil
		case "CASE":
			return p.parseCase()
		case "CAST":
			return p.parseCast()
		case "CHEAPEST":
			return p.parseCheapestSum()
		case "DATE":
			// DATE 'yyyy-mm-dd' literal syntax.
			if p.peekAt(1).Type == lexer.String {
				p.next()
				lit := p.next()
				return &ast.CastExpr{X: &ast.StringLit{Val: lit.Text}, TypeName: "DATE"}, nil
			}
		case "EXISTS":
			p.next()
			sub, ok, err := p.maybeSubquery()
			if err != nil {
				return nil, err
			}
			if !ok {
				return nil, p.errorf("expected a subquery after EXISTS")
			}
			return &ast.ExistsExpr{Select: sub, Line: t.Line, Col: t.Col}, nil
		}
		return nil, p.errorf("unexpected keyword %s in expression", t.Text)
	case lexer.Ident:
		// Function call?
		if p.peekAt(1).Text == "(" {
			return p.parseFuncCall()
		}
		return p.parseIdent()
	case lexer.Symbol:
		if t.Text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errorf("unexpected %s in expression", t)
}

func (p *Parser) parseIdent() (ast.Expr, error) {
	t := p.next()
	id := &ast.Ident{Parts: []string{t.Text}, Line: t.Line, Col: t.Col}
	// After a dot, keywords are demoted to plain identifiers so that
	// soft names like r.ordinality or e.edge resolve (name lookup is
	// case-insensitive).
	for p.peekSymbol(".") && (p.peekAt(1).Type == lexer.Ident || p.peekAt(1).Type == lexer.Keyword) {
		p.next()
		id.Parts = append(id.Parts, p.next().Text)
	}
	if len(id.Parts) > 2 {
		return nil, p.errorf("identifier %s has too many qualifiers", id)
	}
	return id, nil
}

func (p *Parser) parseFuncCall() (ast.Expr, error) {
	t := p.next() // name
	p.next()      // (
	fc := &ast.FuncCall{Name: strings.ToUpper(t.Text), Line: t.Line, Col: t.Col}
	if p.peekSymbol("*") {
		p.next()
		fc.Star = true
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return fc, nil
	}
	if p.acceptKeyword("DISTINCT") {
		fc.Distinct = true
	}
	if !p.peekSymbol(")") {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			fc.Args = append(fc.Args, e)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return fc, nil
}

func (p *Parser) parseCase() (ast.Expr, error) {
	p.next() // CASE
	ce := &ast.CaseExpr{}
	if !p.peekKeyword("WHEN") {
		op, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Operand = op
	}
	for p.acceptKeyword("WHEN") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		th, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Whens = append(ce.Whens, ast.CaseWhen{When: w, Then: th})
	}
	if len(ce.Whens) == 0 {
		return nil, p.errorf("CASE requires at least one WHEN arm")
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return ce, nil
}

func (p *Parser) parseCast() (ast.Expr, error) {
	p.next() // CAST
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	tn, err := p.parseTypeName()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return &ast.CastExpr{X: x, TypeName: tn}, nil
}

// parseCheapestSum parses `CHEAPEST SUM([e:] expr)` (§2). SUM arrives
// as an identifier because it is not reserved.
func (p *Parser) parseCheapestSum() (ast.Expr, error) {
	t := p.next() // CHEAPEST
	n := p.peek()
	if n.Type != lexer.Ident || !strings.EqualFold(n.Text, "SUM") {
		return nil, p.errorf("expected SUM after CHEAPEST")
	}
	p.next()
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	cs := &ast.CheapestSum{Line: t.Line, Col: t.Col}
	// Optional `binding:` prefix.
	if p.peek().Type == lexer.Ident && p.peekAt(1).Text == ":" {
		cs.Binding = p.next().Text
		p.next() // :
	}
	w, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	cs.Weight = w
	return cs, nil
}
