package fingerprint

import (
	"reflect"
	"testing"

	"graphsql/internal/types"
)

func ints(vs ...int64) []types.Value {
	out := make([]types.Value, len(vs))
	for i, v := range vs {
		out[i] = types.NewInt(v)
	}
	return out
}

func TestNormalizeExtracts(t *testing.T) {
	cases := []struct {
		name string
		in   string
		sql  string
		lits []types.Value
	}{
		{
			"where eq int",
			"SELECT * FROM t WHERE id = 42",
			"SELECT * FROM t WHERE id = ?",
			ints(42),
		},
		{
			"all comparison operators",
			"SELECT * FROM t WHERE a = 1 AND b < 2 AND c > 3 AND d <= 4 AND e >= 5 AND f <> 6",
			"SELECT * FROM t WHERE a = ? AND b < ? AND c > ? AND d <= ? AND e >= ? AND f <> ?",
			ints(1, 2, 3, 4, 5, 6),
		},
		{
			"bang-equals lexes to <> but the span stays verbatim",
			"SELECT * FROM t WHERE a != 7",
			"SELECT * FROM t WHERE a != ?",
			ints(7),
		},
		{
			"float and string typing",
			"SELECT * FROM t WHERE a = 3.5 AND b = 'x''y' AND c = 1e3",
			"SELECT * FROM t WHERE a = ? AND b = ? AND c = ?",
			[]types.Value{types.NewFloat(3.5), types.NewString("x'y"), types.NewFloat(1000)},
		},
		{
			"negative literal folds the sign into the value",
			"SELECT * FROM t WHERE a = -5 AND b > -2.5",
			"SELECT * FROM t WHERE a = ? AND b > ?",
			[]types.Value{types.NewInt(-5), types.NewFloat(-2.5)},
		},
		{
			"IN list",
			"SELECT * FROM t WHERE a IN (1, 2, -3) AND b NOT IN ('x', 'y')",
			"SELECT * FROM t WHERE a IN (?, ?, ?) AND b NOT IN (?, ?)",
			[]types.Value{types.NewInt(1), types.NewInt(2), types.NewInt(-3), types.NewString("x"), types.NewString("y")},
		},
		{
			"BETWEEN bounds",
			"SELECT * FROM t WHERE a BETWEEN 1 AND 10 AND b = 3",
			"SELECT * FROM t WHERE a BETWEEN ? AND ? AND b = ?",
			ints(1, 10, 3),
		},
		{
			"BETWEEN with negative and non-literal lower bound",
			"SELECT * FROM t WHERE a BETWEEN x AND -5",
			"SELECT * FROM t WHERE a BETWEEN x AND ?",
			ints(-5),
		},
		{
			"HAVING and join ON zones",
			"SELECT a FROM t JOIN u ON t.id = u.id AND u.v > 9 GROUP BY a HAVING COUNT(a) > 10",
			"SELECT a FROM t JOIN u ON t.id = u.id AND u.v > ? GROUP BY a HAVING COUNT(a) > ?",
			ints(9, 10),
		},
		{
			"subquery gets its own zone, outer zone restored",
			"SELECT * FROM t WHERE a IN (SELECT b FROM u WHERE c = 5) AND d = 6",
			"SELECT * FROM t WHERE a IN (SELECT b FROM u WHERE c = ?) AND d = ?",
			ints(5, 6),
		},
		{
			"select-list literal untouched, where literal extracted",
			"SELECT 1 + 1, a FROM t WHERE a = 2",
			"SELECT 1 + 1, a FROM t WHERE a = ?",
			ints(2),
		},
		{
			"order-by ordinal and limit untouched",
			"SELECT a, b FROM t WHERE a = 1 ORDER BY 2 DESC LIMIT 10 OFFSET 5",
			"SELECT a, b FROM t WHERE a = ? ORDER BY 2 DESC LIMIT 10 OFFSET 5",
			ints(1),
		},
		{
			"existing params interleave with extracted literals",
			"SELECT * FROM t WHERE a = ? AND b = 2 AND c = ?",
			"SELECT * FROM t WHERE a = ? AND b = ? AND c = ?",
			ints(2),
		},
		{
			"parenthesized predicates inherit the zone",
			"SELECT * FROM t WHERE (a = 1 OR b = 2) AND c = 3",
			"SELECT * FROM t WHERE (a = ? OR b = ?) AND c = ?",
			ints(1, 2, 3),
		},
		{
			"trailing semicolon ok",
			"SELECT * FROM t WHERE a = 4;",
			"SELECT * FROM t WHERE a = ?;",
			ints(4),
		},
		{
			"unary minus with space folds the whole span",
			"SELECT * FROM t WHERE a = - 5",
			"SELECT * FROM t WHERE a = ?",
			ints(-5),
		},
		{
			"CASE predicate literals inside WHERE",
			"SELECT * FROM t WHERE CASE WHEN a = 1 THEN b ELSE c END = 2",
			"SELECT * FROM t WHERE CASE WHEN a = ? THEN b ELSE c END = ?",
			ints(1, 2),
		},
		{
			"WITH statement normalizes inside the CTE and the body",
			"WITH x AS (SELECT a FROM t WHERE a > 1) SELECT * FROM x WHERE a < 9",
			"WITH x AS (SELECT a FROM t WHERE a > ?) SELECT * FROM x WHERE a < ?",
			ints(1, 9),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n := Normalize(tc.in)
			if n.SQL != tc.sql {
				t.Fatalf("SQL:\n  got  %q\n  want %q", n.SQL, tc.sql)
			}
			if !reflect.DeepEqual(n.Literals, tc.lits) {
				t.Fatalf("literals:\n  got  %+v\n  want %+v", n.Literals, tc.lits)
			}
		})
	}
}

func TestNormalizeIdentity(t *testing.T) {
	// Statements where nothing may be extracted come back verbatim.
	cases := []string{
		"SELECT 1 + 1",
		"SELECT a FROM t",
		"SELECT a FROM t ORDER BY 1 LIMIT 3",
		"SELECT * FROM t WHERE d < DATE '2011-01-01'",        // DATE cast needs its constant
		"SELECT * FROM t WHERE s LIKE 'x%'",                  // LIKE patterns excluded
		"SELECT * FROM t WHERE f(5) = x",                     // function args excluded
		"SELECT * FROM t WHERE a = TRUE AND b IS NOT NULL",   // keyword literals
		"SELECT * FROM t WHERE a REACHES b OVER e AND c = 5", // graph clause ends the zone
		"SELECT * FROM t WHERE a = 99999999999999999999999",  // int overflow: leave inline
		"INSERT INTO t VALUES (1, 2)",                        // only SELECT/WITH normalize
		"DELETE FROM t WHERE a = 1",
		"SET parallelism = 4",
		"SELECT * FROM t WHERE a = 1; DELETE FROM t", // multi-statement: bail entirely
		"SELECT * FROM t WHERE a = 'unterminated",    // lexical error: bail
		"SELECT 5 = 5",                               // comparison in select list is outside the zone
	}
	for _, in := range cases {
		n := Normalize(in)
		if n.SQL != in || n.Changed() {
			t.Fatalf("want identity for %q, got %q (lits %+v)", in, n.SQL, n.Literals)
		}
	}
}

func TestMerge(t *testing.T) {
	n := Normalize("SELECT * FROM t WHERE a = ? AND b = 2 AND c = ?")
	if got := n.NumRawParams(); got != 2 {
		t.Fatalf("NumRawParams = %d, want 2", got)
	}
	merged, ok := n.MergeValues([]types.Value{types.NewInt(10), types.NewInt(30)})
	if !ok {
		t.Fatal("MergeValues refused matching args")
	}
	want := ints(10, 2, 30)
	if !reflect.DeepEqual(merged, want) {
		t.Fatalf("MergeValues = %+v, want %+v", merged, want)
	}
	anyMerged, ok := n.MergeAny([]any{int64(10), "z"})
	if !ok {
		t.Fatal("MergeAny refused matching args")
	}
	if !reflect.DeepEqual(anyMerged, []any{int64(10), int64(2), "z"}) {
		t.Fatalf("MergeAny = %+v", anyMerged)
	}
	// Wrong arity must refuse so error paths stay on the raw statement.
	if _, ok := n.MergeValues(ints(1)); ok {
		t.Fatal("MergeValues accepted too few args")
	}
	if _, ok := n.MergeValues(ints(1, 2, 3)); ok {
		t.Fatal("MergeValues accepted too many args")
	}
}

func TestNormalizeAllocsBounded(t *testing.T) {
	// Not zero (the rewritten SQL and value slices must allocate), but
	// normalization must stay O(1) small allocations per statement —
	// the scan itself is allocation-free.
	src := "SELECT a, b FROM t WHERE a = 42 AND b IN (1, 2, 3) AND c BETWEEN 4 AND 5"
	per := testing.AllocsPerRun(100, func() {
		n := Normalize(src)
		if !n.Changed() {
			t.Fatal("no extraction")
		}
	})
	if per > 12 {
		t.Fatalf("Normalize allocates %.1f per run, want <= 12", per)
	}
}
