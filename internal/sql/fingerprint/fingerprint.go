// Package fingerprint normalizes SQL statements for cache keying:
// auto-parameterization. It rewrites constant literals in filter
// positions to ? placeholders in one pass over the token stream and
// extracts their typed values, so `WHERE id = 42` and `WHERE id = 43`
// share one canonical fingerprint — one session plan-cache entry, one
// server result-cache key shape — instead of each literal variant
// re-parsing, re-planning and re-executing.
//
// Safety model: normalization must be exactly semantics-preserving, so
// a literal is rewritten only when BOTH hold:
//
//   - Clause zone: the literal sits inside a WHERE, HAVING or ON
//     clause. SELECT-list literals are never touched (an unaliased
//     expression's output column name is derived from its rendered
//     text, so `SELECT 1+1` must keep its literal); ORDER BY integers
//     are output ordinals; LIMIT/OFFSET must stay constant; and the
//     graph clauses (REACHES/OVER/CHEAPEST/EDGE/UNNEST) conservatively
//     end the zone.
//   - Adjacency: the literal directly follows a comparison operator
//     (= < > <= >= <>), an IN-list '(' or ',', BETWEEN or BETWEEN's
//     AND — optionally through a unary minus, whose span is folded
//     into the placeholder so the extracted value carries the sign.
//     `DATE '...'` casts, LIKE patterns, function arguments and
//     bare literals keep their text.
//
// Values are typed exactly as the binder types inline literals
// (internal/analyze: integer unless the text contains . e E, float
// otherwise, strings unescaped), and a parameter is later bound with
// the kind of the value supplied — so the plan compiled for the
// normalized statement is operand-for-operand identical to the plan
// the inline literal would have produced. Anything uncertain (parse
// overflow, multi-statement input, non-SELECT statements, lexical
// errors) returns the input unchanged: skipping is always correct.
//
// Pre-existing ? placeholders are preserved; extracted literals and
// caller-supplied arguments interleave in token order via MergeValues
// or MergeAny, which refuse (ok=false) unless the caller supplied
// exactly as many arguments as the statement has raw placeholders —
// refusal routes the statement down the unnormalized path so
// mismatched-argument errors read exactly as before.
package fingerprint

import (
	"strconv"
	"strings"

	"graphsql/internal/sql/lexer"
	"graphsql/internal/types"
)

// Normalized is the result of normalizing one statement.
type Normalized struct {
	// SQL is the canonical statement text: the input with each
	// extracted literal span replaced by '?'. When no literal was
	// extracted it is the input verbatim.
	SQL string
	// Literals holds the extracted values in token order.
	Literals []types.Value
	// FromLiteral has one entry per '?' in SQL, in order: true when the
	// placeholder came from an extracted literal, false when it was a
	// caller placeholder already present in the input.
	FromLiteral []bool
}

// Changed reports whether normalization extracted anything.
func (n *Normalized) Changed() bool { return len(n.Literals) > 0 }

// NumRawParams counts the caller-supplied placeholders in the input.
func (n *Normalized) NumRawParams() int {
	c := 0
	for _, fromLit := range n.FromLiteral {
		if !fromLit {
			c++
		}
	}
	return c
}

// MergeValues interleaves extracted literal values with the caller's
// arguments in statement order. ok is false — and the caller must fall
// back to the unnormalized statement — unless exactly NumRawParams
// arguments were supplied.
func (n *Normalized) MergeValues(args []types.Value) ([]types.Value, bool) {
	if len(args) != n.NumRawParams() {
		return nil, false
	}
	out := make([]types.Value, 0, len(n.FromLiteral))
	li, ai := 0, 0
	for _, fromLit := range n.FromLiteral {
		if fromLit {
			out = append(out, n.Literals[li])
			li++
		} else {
			out = append(out, args[ai])
			ai++
		}
	}
	return out, true
}

// MergeAny is MergeValues over untyped arguments (the server's JSON
// request shape); extracted literals surface as int64/float64/string.
func (n *Normalized) MergeAny(args []any) ([]any, bool) {
	if len(args) != n.NumRawParams() {
		return nil, false
	}
	out := make([]any, 0, len(n.FromLiteral))
	li, ai := 0, 0
	for _, fromLit := range n.FromLiteral {
		if fromLit {
			v := n.Literals[li]
			li++
			switch v.K {
			case types.KindInt:
				out = append(out, v.I)
			case types.KindFloat:
				out = append(out, v.F)
			default:
				out = append(out, v.S)
			}
		} else {
			out = append(out, args[ai])
			ai++
		}
	}
	return out, true
}

// zoneEnders are the keywords that end a WHERE/HAVING/ON eligibility
// zone at the current nesting depth. Boolean connectives, predicates
// and CASE machinery are deliberately absent — they keep the zone.
var zoneEnders = map[string]bool{
	"SELECT": true, "FROM": true, "GROUP": true, "ORDER": true, "BY": true,
	"LIMIT": true, "OFFSET": true, "UNION": true, "EXCEPT": true,
	"INTERSECT": true, "JOIN": true, "LEFT": true, "RIGHT": true,
	"FULL": true, "INNER": true, "OUTER": true, "CROSS": true,
	"USING": true, "VALUES": true, "SET": true, "ASC": true, "DESC": true,
	"NULLS": true, "FIRST": true, "LAST": true, "INSERT": true,
	"INTO": true, "CREATE": true, "TABLE": true, "DROP": true,
	"DELETE": true, "WITH": true, "LATERAL": true, "ORDINALITY": true,
	"PRIMARY": true, "KEY": true, "DEFAULT": true, "AS": true,
	// Graph clauses: no literal inside them is provably safe to
	// parameterize, so they conservatively end the zone.
	"REACHES": true, "OVER": true, "EDGE": true, "CHEAPEST": true,
	"UNNEST": true,
}

type frame struct {
	// eligible marks that the scan is inside a WHERE/HAVING/ON zone at
	// this paren depth.
	eligible bool
	// inList marks a paren group opened directly after IN, whose
	// comma-separated literal elements are extractable.
	inList bool
}

// Normalize rewrites filter literals in a single SELECT/WITH statement
// to placeholders. It never fails: any input it cannot handle — other
// statement kinds, multi-statement scripts, lexical errors — comes
// back unchanged with no extracted literals.
func Normalize(sql string) Normalized {
	ident := Normalized{SQL: sql}
	var l lexer.Lexer
	l.Reset(sql)

	type span struct{ start, end int }
	var spans []span
	var lits []types.Value
	var fromLit []bool

	stack := make([]frame, 1, 8)
	var prev1, prev2 lexer.Token
	// betweenState: 0 idle, 1 after an eligible BETWEEN (awaiting its
	// AND), 2 directly after that AND (next literal is the upper bound).
	betweenState := 0
	first := true
	sawSemi := false

	for {
		tok, err := l.Next()
		if err != nil {
			return ident
		}
		if tok.Type == lexer.EOF {
			break
		}
		if sawSemi {
			// A second statement after ';': error texts downstream
			// would name the rewritten literals, so leave it alone.
			return ident
		}
		if first {
			if tok.Type != lexer.Keyword || (tok.Text != "SELECT" && tok.Text != "WITH") {
				return ident
			}
			first = false
		}
		top := &stack[len(stack)-1]
		keepBetween := false
		switch tok.Type {
		case lexer.Keyword:
			switch tok.Text {
			case "WHERE", "HAVING", "ON":
				top.eligible = true
				betweenState = 0
			case "BETWEEN":
				if top.eligible {
					betweenState = 1
					keepBetween = true
				}
			case "AND":
				if betweenState == 1 {
					betweenState = 2
					keepBetween = true
				}
			default:
				if zoneEnders[tok.Text] {
					top.eligible = false
					betweenState = 0
				}
			}
		case lexer.Symbol:
			switch tok.Text {
			case "(":
				stack = append(stack, frame{
					eligible: top.eligible,
					inList:   prev1.Type == lexer.Keyword && prev1.Text == "IN",
				})
			case ")":
				if len(stack) > 1 {
					stack = stack[:len(stack)-1]
				}
			case ";":
				sawSemi = true
			case "-":
				// A unary minus between an eligible prefix and its
				// literal; the BETWEEN upper-bound state rides along.
				keepBetween = betweenState == 2
			}
		case lexer.Param:
			fromLit = append(fromLit, false)
		case lexer.Number, lexer.String:
			if top.eligible {
				if v, start, ok := extract(tok, prev1, prev2, top, betweenState); ok {
					spans = append(spans, span{start, l.Offset()})
					lits = append(lits, v)
					fromLit = append(fromLit, true)
				}
			}
			// BETWEEN's own state survives until its AND even when the
			// lower bound is not a literal (e.g. BETWEEN x AND 5).
			keepBetween = betweenState == 1
		default:
			keepBetween = betweenState == 1
		}
		if betweenState == 2 && !keepBetween {
			betweenState = 0
		}
		prev2, prev1 = prev1, tok
	}
	if len(lits) == 0 {
		return ident
	}

	var b strings.Builder
	b.Grow(len(sql))
	last := 0
	for _, sp := range spans {
		b.WriteString(sql[last:sp.start])
		b.WriteByte('?')
		last = sp.end
	}
	b.WriteString(sql[last:])
	return Normalized{SQL: b.String(), Literals: lits, FromLiteral: fromLit}
}

// extract decides whether the literal token may be parameterized given
// the two preceding tokens, and returns its typed value and the start
// of the source span to replace (the '-' when the sign is folded in).
func extract(tok, prev1, prev2 lexer.Token, top *frame, betweenState int) (types.Value, int, bool) {
	neg := false
	start := tok.Pos
	switch {
	case directPrefix(prev1, top, betweenState):
	case tok.Type == lexer.Number && prev1.Type == lexer.Symbol && prev1.Text == "-" &&
		directPrefix(prev2, top, betweenState):
		neg = true
		start = prev1.Pos
	default:
		return types.Value{}, 0, false
	}

	if tok.Type == lexer.String {
		if neg {
			return types.Value{}, 0, false
		}
		return types.NewString(tok.Text), start, true
	}
	// Mirror the binder's NumberLit typing (internal/analyze/expr.go):
	// integer unless the text contains . e E; on integer overflow the
	// binder falls back to float, but here we skip extraction instead —
	// leaving the literal inline is always equivalent.
	text := tok.Text
	if !strings.ContainsAny(text, ".eE") {
		i, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return types.Value{}, 0, false
		}
		if neg {
			i = -i
		}
		return types.NewInt(i), start, true
	}
	f, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return types.Value{}, 0, false
	}
	if neg {
		f = -f
	}
	return types.NewFloat(f), start, true
}

// directPrefix reports whether a literal directly after token p is in
// an extractable position.
func directPrefix(p lexer.Token, top *frame, betweenState int) bool {
	switch p.Type {
	case lexer.Symbol:
		switch p.Text {
		case "=", "<", ">", "<=", ">=", "<>":
			return true
		case "(", ",":
			return top.inList
		}
	case lexer.Keyword:
		switch p.Text {
		case "BETWEEN":
			return betweenState >= 1
		case "AND":
			return betweenState == 2
		}
	}
	return false
}
