package engine

import (
	"context"
	"errors"
	"strings"
	"testing"

	"graphsql/internal/fault"
)

// setupTiny builds an engine with one small table so SELECTs exercise
// the exec operator tree (and its fault point).
func setupTiny(t *testing.T) *Engine {
	t.Helper()
	e := New()
	if _, err := e.ExecScript(`
		CREATE TABLE nums (n INT);
		INSERT INTO nums VALUES (1), (2), (3);
	`); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestQueryPanicBecomesError verifies the engine boundary: a panic
// raised inside an operator surfaces from Query as a *QueryPanicError
// carrying the panic value and a stack, never as a process-killing
// panic — and errors.As sees through to the injected cause.
func TestQueryPanicBecomesError(t *testing.T) {
	t.Cleanup(fault.Reset)
	e := setupTiny(t)
	if err := fault.Set(fault.Rule{Point: fault.PointExecOperator, Kind: fault.KindPanic}); err != nil {
		t.Fatal(err)
	}
	_, err := e.Query(`SELECT n FROM nums`)
	var qp *QueryPanicError
	if !errors.As(err, &qp) {
		t.Fatalf("Query error = %v (%T), want *QueryPanicError", err, err)
	}
	if _, ok := qp.Value.(*fault.InjectedPanic); !ok {
		t.Fatalf("panic value = %#v, want *fault.InjectedPanic", qp.Value)
	}
	var ip *fault.InjectedPanic
	if !errors.As(err, &ip) || ip.Point != fault.PointExecOperator {
		t.Fatalf("errors.As did not unwrap to the injected panic: %v", err)
	}
	if len(qp.Stack) == 0 || !strings.Contains(string(qp.Stack), "exec") {
		t.Fatalf("stack missing or does not reach exec:\n%s", qp.Stack)
	}

	// The engine must remain fully usable after containment.
	fault.Reset()
	res, err := e.Query(`SELECT count(*) FROM nums`)
	if err != nil {
		t.Fatalf("query after contained panic: %v", err)
	}
	if res.NumRows() != 1 {
		t.Fatalf("got %d rows, want 1", res.NumRows())
	}
}

// TestExecPreparedPanicBecomesError covers the prepared-statement entry
// point, which the server's hot path uses.
func TestExecPreparedPanicBecomesError(t *testing.T) {
	t.Cleanup(fault.Reset)
	e := setupTiny(t)
	p, err := e.Prepare(`SELECT n FROM nums WHERE n > 0`)
	if err != nil {
		t.Fatal(err)
	}
	if err := fault.Set(fault.Rule{Point: fault.PointExecOperator, Kind: fault.KindPanic}); err != nil {
		t.Fatal(err)
	}
	_, err = e.ExecPrepared(context.Background(), p, nil)
	var qp *QueryPanicError
	if !errors.As(err, &qp) {
		t.Fatalf("ExecPrepared error = %v (%T), want *QueryPanicError", err, err)
	}
	fault.Reset()
	if _, err := e.ExecPrepared(context.Background(), p, nil); err != nil {
		t.Fatalf("prepared statement dead after contained panic: %v", err)
	}
}

// TestExecScriptPanicBecomesError covers the script path used by graph
// loads, plus an injected error (not panic) flowing through unchanged.
func TestExecScriptPanicBecomesError(t *testing.T) {
	t.Cleanup(fault.Reset)
	e := setupTiny(t)
	if err := fault.Set(fault.Rule{Point: fault.PointExecOperator, Kind: fault.KindPanic}); err != nil {
		t.Fatal(err)
	}
	_, err := e.ExecScript(`SELECT n FROM nums; SELECT n+1 FROM nums`)
	var qp *QueryPanicError
	if !errors.As(err, &qp) {
		t.Fatalf("ExecScript error = %v (%T), want *QueryPanicError", err, err)
	}

	if err := fault.Set(fault.Rule{Point: fault.PointExecOperator, Kind: fault.KindError}); err != nil {
		t.Fatal(err)
	}
	_, err = e.Query(`SELECT n FROM nums`)
	var inj *fault.InjectedError
	if !errors.As(err, &inj) {
		t.Fatalf("error-kind fault arrived as %v (%T), want *fault.InjectedError", err, err)
	}
	if errors.As(err, &qp) {
		t.Fatalf("plain injected error must not be wrapped as a panic: %v", err)
	}
}
