package engine

import (
	"testing"

	"graphsql/internal/ldbc"
	"graphsql/internal/storage"
	"graphsql/internal/types"
)

// setupParallelPair loads the same LDBC dataset into two engines, one
// forced sequential and one with a 4-worker budget.
func setupParallelPair(t *testing.T) (seq, par *Engine, ds *ldbc.Dataset) {
	t.Helper()
	ds, err := ldbc.Generate(ldbc.Config{SF: 1, Shrink: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	seq, par = New(), New()
	seq.SetParallelism(1)
	par.SetParallelism(4)
	for _, e := range []*Engine{seq, par} {
		if err := ds.Load(e.Catalog()); err != nil {
			t.Fatal(err)
		}
	}
	return seq, par, ds
}

// loadPairs materializes a pairs table of random source/destination
// pairs in both engines.
func loadPairs(t *testing.T, engines []*Engine, ds *ldbc.Dataset, n int, seed uint64) {
	t.Helper()
	src, dst := ds.RandomPairs(n, seed)
	for _, e := range engines {
		_ = e.Catalog().DropTable("pairs")
		pairs, err := e.Catalog().CreateTable("pairs", storage.Schema{
			{Name: "src", Kind: types.KindInt},
			{Name: "dst", Kind: types.KindInt},
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range src {
			pairs.Cols[0].AppendInt(src[i])
			pairs.Cols[1].AppendInt(dst[i])
		}
	}
}

// chunksEqual compares two result chunks cell by cell.
func chunksEqual(t *testing.T, label string, a, b *storage.Chunk) {
	t.Helper()
	if a.NumRows() != b.NumRows() || a.NumCols() != b.NumCols() {
		t.Fatalf("%s: shape %dx%d != %dx%d", label, a.NumRows(), a.NumCols(), b.NumRows(), b.NumCols())
	}
	for i := 0; i < a.NumRows(); i++ {
		for j := 0; j < a.NumCols(); j++ {
			va, vb := a.Cols[j].Get(i), b.Cols[j].Get(i)
			if va.String() != vb.String() {
				t.Fatalf("%s: cell (%d,%d): %s != %s", label, i, j, va.String(), vb.String())
			}
		}
	}
}

const batchedQ13 = `SELECT p.src, p.dst, CHEAPEST SUM(1) AS cost
	FROM pairs p
	WHERE p.src REACHES p.dst OVER friends EDGE (src, dst)
	ORDER BY p.src, p.dst`

const batchedQ14Path = `SELECT p.src, p.dst, CHEAPEST SUM(f: iweight) AS (cost, path), CHEAPEST SUM(f: weight) AS fcost
	FROM pairs p
	WHERE p.src REACHES p.dst OVER friends f EDGE (src, dst)
	ORDER BY p.src, p.dst`

// TestParallelEngineMatchesSequential runs batched many-to-many
// shortest-path queries (unweighted, weighted-with-path, float) on a
// sequential and a 4-worker engine and requires identical results;
// with -race it doubles as the engine-level concurrency test.
func TestParallelEngineMatchesSequential(t *testing.T) {
	seq, par, ds := setupParallelPair(t)
	engines := []*Engine{seq, par}
	for _, q := range []string{batchedQ13, batchedQ14Path} {
		loadPairs(t, engines, ds, 96, 31)
		a, err := seq.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := par.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if a.NumRows() == 0 {
			t.Fatal("workload produced no reachable pairs; equivalence test is vacuous")
		}
		chunksEqual(t, q[:40], a, b)
	}
}

// TestParallelDynamicIndexMatchesSequential covers the Delta path: a
// graph index absorbs appended rows, then batched queries over
// snapshot+delta must agree between sequential and parallel engines.
func TestParallelDynamicIndexMatchesSequential(t *testing.T) {
	seq, par, ds := setupParallelPair(t)
	engines := []*Engine{seq, par}
	for _, e := range engines {
		if err := e.BuildGraphIndex("friends", "src", "dst"); err != nil {
			t.Fatal(err)
		}
	}
	// Append fresh edges so the next query runs over snapshot+delta.
	src, dst := ds.RandomPairs(40, 77)
	for _, e := range engines {
		friends, _ := e.Catalog().Table("friends")
		for i := range src {
			friends.Cols[0].AppendInt(src[i])
			friends.Cols[1].AppendInt(dst[i])
			friends.Cols[2].AppendInt(15000)
			friends.Cols[3].AppendFloat(1.0)
			friends.Cols[4].AppendInt(1)
		}
	}
	loadPairs(t, engines, ds, 96, 53)
	a, err := seq.Query(batchedQ13)
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.Query(batchedQ13)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumRows() == 0 {
		t.Fatal("workload produced no reachable pairs; equivalence test is vacuous")
	}
	chunksEqual(t, "dynamic-index batched Q13", a, b)
}
