package engine

import "testing"

func subqueryEngine(t *testing.T) *Engine {
	t.Helper()
	e := New()
	if _, err := e.ExecScript(`
		CREATE TABLE emp (id BIGINT, dept BIGINT, salary BIGINT);
		CREATE TABLE dept (id BIGINT, name VARCHAR);
		INSERT INTO emp VALUES (1, 10, 100), (2, 10, 200), (3, 20, 150), (4, NULL, 50);
		INSERT INTO dept VALUES (10, 'eng'), (20, 'ops'), (30, 'empty');
	`); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestInSubquerySemiJoin(t *testing.T) {
	e := subqueryEngine(t)
	res := run(t, e, `SELECT id FROM emp
		WHERE dept IN (SELECT id FROM dept WHERE name = 'eng')
		ORDER BY id`)
	checkCells(t, res, [][]string{{"1"}, {"2"}})
	// Duplicates on the right do not duplicate output rows.
	run(t, e, `INSERT INTO dept VALUES (10, 'eng2')`)
	res = run(t, e, `SELECT id FROM emp WHERE dept IN (SELECT id FROM dept) ORDER BY id`)
	checkCells(t, res, [][]string{{"1"}, {"2"}, {"3"}})
}

func TestNotInSubqueryAntiJoin(t *testing.T) {
	e := subqueryEngine(t)
	// NULL dept rows never qualify for NOT IN.
	res := run(t, e, `SELECT id FROM emp
		WHERE dept NOT IN (SELECT id FROM dept WHERE name = 'eng')
		ORDER BY id`)
	checkCells(t, res, [][]string{{"3"}})
}

func TestNotInSubqueryWithNullInResult(t *testing.T) {
	e := subqueryEngine(t)
	run(t, e, `CREATE TABLE vals (v BIGINT)`)
	run(t, e, `INSERT INTO vals VALUES (99), (NULL)`)
	// The NULL in the subquery makes x NOT IN (...) unknown for every
	// non-matching x: no rows.
	res := run(t, e, `SELECT id FROM emp WHERE dept NOT IN (SELECT v FROM vals)`)
	if res.NumRows() != 0 {
		t.Fatalf("NOT IN over a NULL-containing set must be empty:\n%s", res)
	}
	// Without the NULL it behaves as a plain anti join.
	run(t, e, `DELETE FROM vals WHERE v IS NULL`)
	res = run(t, e, `SELECT id FROM emp WHERE dept NOT IN (SELECT v FROM vals) ORDER BY id`)
	checkCells(t, res, [][]string{{"1"}, {"2"}, {"3"}})
}

func TestExistsAndNotExists(t *testing.T) {
	e := subqueryEngine(t)
	// Uncorrelated EXISTS: non-empty subquery keeps everything.
	res := run(t, e, `SELECT COUNT(*) FROM emp WHERE EXISTS (SELECT 1 FROM dept WHERE name = 'eng')`)
	checkCells(t, res, [][]string{{"4"}})
	res = run(t, e, `SELECT COUNT(*) FROM emp WHERE EXISTS (SELECT 1 FROM dept WHERE name = 'zzz')`)
	checkCells(t, res, [][]string{{"0"}})
	res = run(t, e, `SELECT COUNT(*) FROM emp WHERE NOT EXISTS (SELECT 1 FROM dept WHERE name = 'zzz')`)
	checkCells(t, res, [][]string{{"4"}})
}

func TestInSubqueryCombinesWithOtherConjuncts(t *testing.T) {
	e := subqueryEngine(t)
	res := run(t, e, `SELECT id FROM emp
		WHERE salary > 120 AND dept IN (SELECT id FROM dept)
		ORDER BY id`)
	checkCells(t, res, [][]string{{"2"}, {"3"}})
}

func TestInSubqueryWithReaches(t *testing.T) {
	e := New()
	if _, err := e.ExecScript(`
		CREATE TABLE g (s BIGINT, d BIGINT);
		CREATE TABLE v (id BIGINT);
		CREATE TABLE allow (id BIGINT);
		INSERT INTO g VALUES (1,2),(2,3),(3,4);
		INSERT INTO v VALUES (2),(3),(4);
		INSERT INTO allow VALUES (2),(4);
	`); err != nil {
		t.Fatal(err)
	}
	// Subquery filter composed with the graph predicate in one block.
	res := run(t, e, `
		SELECT id, CHEAPEST SUM(1) AS hops
		FROM v
		WHERE id IN (SELECT id FROM allow)
		  AND 1 REACHES id OVER g EDGE (s, d)
		ORDER BY hops`)
	checkCells(t, res, [][]string{{"2", "1"}, {"4", "3"}})
}

func TestSubqueryErrors(t *testing.T) {
	e := subqueryEngine(t)
	mustFail(t, e, `SELECT id FROM emp WHERE dept IN (SELECT id, name FROM dept)`, "one column")
	mustFail(t, e, `SELECT dept IN (SELECT id FROM dept) FROM emp`, "top-level")
	mustFail(t, e, `SELECT id FROM emp WHERE dept IN (SELECT id FROM dept) OR TRUE`, "top-level")
	mustFail(t, e, `SELECT id FROM emp WHERE dept IN (SELECT name FROM dept)`, "compare")
	// Correlated subqueries are not supported: outer columns are
	// invisible inside.
	mustFail(t, e, `SELECT id FROM emp WHERE EXISTS (SELECT 1 FROM dept WHERE dept.id = emp.dept)`, "not found")
}

func TestInSubqueryNumericPromotion(t *testing.T) {
	e := New()
	if _, err := e.ExecScript(`
		CREATE TABLE a (x BIGINT);
		CREATE TABLE b (y DOUBLE);
		INSERT INTO a VALUES (1), (2);
		INSERT INTO b VALUES (2.0), (3.5);
	`); err != nil {
		t.Fatal(err)
	}
	res := run(t, e, `SELECT x FROM a WHERE x IN (SELECT y FROM b)`)
	checkCells(t, res, [][]string{{"2"}})
}
