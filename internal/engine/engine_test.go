package engine

import (
	"strings"
	"testing"

	"graphsql/internal/storage"
	"graphsql/internal/types"
)

// run executes SQL, failing the test on error.
func run(t *testing.T, e *Engine, sql string, params ...types.Value) *storage.Chunk {
	t.Helper()
	res, err := e.Query(sql, params...)
	if err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
	return res
}

// mustFail executes SQL and requires an error containing substr.
func mustFail(t *testing.T, e *Engine, sql string, substr string) {
	t.Helper()
	_, err := e.Query(sql)
	if err == nil {
		t.Fatalf("query %q: expected error containing %q", sql, substr)
	}
	if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(substr)) {
		t.Fatalf("query %q: error %q does not contain %q", sql, err, substr)
	}
}

// rows flattens a chunk into boxed values for comparison.
func rows(c *storage.Chunk) [][]types.Value {
	out := make([][]types.Value, c.NumRows())
	for i := range out {
		out[i] = c.Row(i)
	}
	return out
}

// checkCells compares a result against expected stringified cells.
func checkCells(t *testing.T, c *storage.Chunk, want [][]string) {
	t.Helper()
	if c.NumRows() != len(want) {
		t.Fatalf("got %d rows, want %d:\n%s", c.NumRows(), len(want), c)
	}
	for i, wr := range want {
		got := c.Row(i)
		if len(got) != len(wr) {
			t.Fatalf("row %d has %d cells, want %d", i, len(got), len(wr))
		}
		for j, w := range wr {
			if got[j].String() != w {
				t.Fatalf("cell (%d,%d) = %q, want %q\n%s", i, j, got[j].String(), w, c)
			}
		}
	}
}

func testEngine(t *testing.T) *Engine {
	t.Helper()
	e := New()
	script := `
		CREATE TABLE nums (n BIGINT, f DOUBLE, s VARCHAR, b BOOLEAN, d DATE);
		INSERT INTO nums VALUES
			(1, 1.5, 'one',   TRUE,  '2020-01-01'),
			(2, 2.5, 'two',   FALSE, '2020-06-15'),
			(3, NULL, 'three', TRUE,  '2021-03-10'),
			(NULL, 4.5, NULL,  NULL,  NULL);
		CREATE TABLE dept (id BIGINT, name VARCHAR);
		CREATE TABLE emp (id BIGINT, dept_id BIGINT, salary BIGINT);
		INSERT INTO dept VALUES (1, 'eng'), (2, 'ops'), (3, 'empty');
		INSERT INTO emp VALUES (10, 1, 100), (11, 1, 200), (12, 2, 150), (13, NULL, 50);
	`
	if _, err := e.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSelectProjectionAndArithmetic(t *testing.T) {
	e := testEngine(t)
	res := run(t, e, `SELECT n + 1, n * 2, n - 1, 7 / 2, 7 % 3, -n FROM nums WHERE n = 3`)
	checkCells(t, res, [][]string{{"4", "6", "2", "3", "1", "-3"}})
	res = run(t, e, `SELECT 7.0 / 2`)
	checkCells(t, res, [][]string{{"3.5"}})
}

func TestDivisionByZero(t *testing.T) {
	e := testEngine(t)
	mustFail(t, e, `SELECT 1 / 0`, "division by zero")
	mustFail(t, e, `SELECT 1 % 0`, "modulo by zero")
}

func TestNullPropagation(t *testing.T) {
	e := testEngine(t)
	res := run(t, e, `SELECT n + 1, f * 2, s || 'x' FROM nums WHERE n IS NULL`)
	checkCells(t, res, [][]string{{"NULL", "9", "NULL"}})
}

func TestThreeValuedLogic(t *testing.T) {
	e := testEngine(t)
	// NULL AND FALSE = FALSE; NULL OR TRUE = TRUE; NULL AND TRUE = NULL.
	res := run(t, e, `SELECT b AND FALSE, b OR TRUE, b AND TRUE FROM nums WHERE n IS NULL`)
	checkCells(t, res, [][]string{{"false", "true", "NULL"}})
	// WHERE treats NULL as false.
	res = run(t, e, `SELECT n FROM nums WHERE f > 100 OR b`)
	if res.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2 (NULL b rows dropped)\n%s", res.NumRows(), res)
	}
}

func TestComparisonsAndBetween(t *testing.T) {
	e := testEngine(t)
	res := run(t, e, `SELECT n FROM nums WHERE n BETWEEN 2 AND 3 ORDER BY n`)
	checkCells(t, res, [][]string{{"2"}, {"3"}})
	res = run(t, e, `SELECT n FROM nums WHERE n NOT BETWEEN 2 AND 3`)
	checkCells(t, res, [][]string{{"1"}})
	res = run(t, e, `SELECT n FROM nums WHERE n IN (1, 3, 99) ORDER BY n`)
	checkCells(t, res, [][]string{{"1"}, {"3"}})
	res = run(t, e, `SELECT n FROM nums WHERE n NOT IN (1, 3)`)
	checkCells(t, res, [][]string{{"2"}})
	// x NOT IN (..., NULL) is never true when x is not in the list.
	res = run(t, e, `SELECT n FROM nums WHERE n NOT IN (1, NULL)`)
	if res.NumRows() != 0 {
		t.Fatalf("NOT IN with NULL must yield no rows:\n%s", res)
	}
}

func TestLike(t *testing.T) {
	e := testEngine(t)
	res := run(t, e, `SELECT s FROM nums WHERE s LIKE 't%' ORDER BY s`)
	checkCells(t, res, [][]string{{"three"}, {"two"}})
	res = run(t, e, `SELECT s FROM nums WHERE s LIKE '_ne'`)
	checkCells(t, res, [][]string{{"one"}})
	res = run(t, e, `SELECT s FROM nums WHERE s NOT LIKE '%e'`)
	checkCells(t, res, [][]string{{"two"}})
	res = run(t, e, `SELECT s FROM nums WHERE s LIKE '%hr%'`)
	checkCells(t, res, [][]string{{"three"}})
}

func TestCaseExpression(t *testing.T) {
	e := testEngine(t)
	res := run(t, e, `SELECT CASE WHEN n = 1 THEN 'one' WHEN n = 2 THEN 'two' ELSE 'many' END
		FROM nums WHERE n IS NOT NULL ORDER BY n`)
	checkCells(t, res, [][]string{{"one"}, {"two"}, {"many"}})
	res = run(t, e, `SELECT CASE n WHEN 1 THEN 10 WHEN 2 THEN 20 END FROM nums ORDER BY n NULLS LAST`)
	checkCells(t, res, [][]string{{"10"}, {"20"}, {"NULL"}, {"NULL"}})
	// Mixed int/float branches promote to float.
	res = run(t, e, `SELECT CASE WHEN TRUE THEN 1 ELSE 2.5 END`)
	checkCells(t, res, [][]string{{"1"}})
}

func TestCastsAndDates(t *testing.T) {
	e := testEngine(t)
	res := run(t, e, `SELECT CAST(2.9 AS INT), CAST('12' AS BIGINT), CAST(3 AS DOUBLE),
		CAST(42 AS VARCHAR), CAST('2020-05-05' AS DATE)`)
	checkCells(t, res, [][]string{{"2", "12", "3", "42", "2020-05-05"}})
	res = run(t, e, `SELECT n FROM nums WHERE d < '2020-07-01' ORDER BY n`)
	checkCells(t, res, [][]string{{"1"}, {"2"}})
	mustFail(t, e, `SELECT CAST('abc' AS INT)`, "cannot cast")
}

func TestScalarFunctions(t *testing.T) {
	e := testEngine(t)
	res := run(t, e, `SELECT ABS(-5), LENGTH('hello'), UPPER('ab'), LOWER('AB'),
		SUBSTR('hello', 2, 3), COALESCE(NULL, NULL, 7), NULLIF(3, 3), NULLIF(3, 4),
		GREATEST(1, 9, 4), LEAST(2, 8, 5), TRIM('  x  '), REPLACE('aaa', 'a', 'b'),
		FLOOR(2.7), CEIL(2.1), ROUND(2.5), SQRT(9.0)`)
	checkCells(t, res, [][]string{{
		"5", "5", "AB", "ab", "ell", "7", "NULL", "3", "9", "2", "x", "bbb",
		"2", "3", "3", "3",
	}})
	mustFail(t, e, `SELECT NO_SUCH_FUNC(1)`, "unknown function")
	mustFail(t, e, `SELECT SQRT(-1.0)`, "SQRT of negative")
}

func TestAggregates(t *testing.T) {
	e := testEngine(t)
	res := run(t, e, `SELECT COUNT(*), COUNT(n), COUNT(f), SUM(n), MIN(n), MAX(n), AVG(n) FROM nums`)
	checkCells(t, res, [][]string{{"4", "3", "3", "6", "1", "3", "2"}})
	// Aggregates over an empty input: COUNT 0, others NULL.
	res = run(t, e, `SELECT COUNT(*), SUM(n), MIN(s), AVG(f) FROM nums WHERE n > 100`)
	checkCells(t, res, [][]string{{"0", "NULL", "NULL", "NULL"}})
	res = run(t, e, `SELECT COUNT(DISTINCT dept_id) FROM emp`)
	checkCells(t, res, [][]string{{"2"}})
	res = run(t, e, `SELECT SUM(f) FROM nums`)
	checkCells(t, res, [][]string{{"8.5"}})
}

func TestGroupByHaving(t *testing.T) {
	e := testEngine(t)
	res := run(t, e, `
		SELECT d.name, COUNT(*) AS c, SUM(emp.salary) AS total
		FROM emp JOIN dept d ON emp.dept_id = d.id
		GROUP BY d.name
		ORDER BY total DESC`)
	checkCells(t, res, [][]string{{"eng", "2", "300"}, {"ops", "1", "150"}})
	res = run(t, e, `
		SELECT dept_id, COUNT(*) FROM emp
		GROUP BY dept_id
		HAVING COUNT(*) > 1`)
	checkCells(t, res, [][]string{{"1", "2"}})
	// Grouping by an expression, selecting the same expression.
	res = run(t, e, `SELECT n % 2, COUNT(*) FROM nums WHERE n IS NOT NULL GROUP BY n % 2 ORDER BY 1`)
	checkCells(t, res, [][]string{{"0", "1"}, {"1", "2"}})
	// NULL forms its own group.
	res = run(t, e, `SELECT dept_id, COUNT(*) FROM emp GROUP BY dept_id ORDER BY dept_id NULLS FIRST`)
	checkCells(t, res, [][]string{{"NULL", "1"}, {"1", "2"}, {"2", "1"}})
	mustFail(t, e, `SELECT salary, COUNT(*) FROM emp GROUP BY dept_id`, "GROUP BY")
	mustFail(t, e, `SELECT SUM(SUM(salary)) FROM emp`, "nested")
	mustFail(t, e, `SELECT n FROM nums HAVING n > 1`, "HAVING")
	mustFail(t, e, `SELECT n FROM nums WHERE SUM(n) > 1`, "not allowed")
}

func TestJoins(t *testing.T) {
	e := testEngine(t)
	// Inner join.
	res := run(t, e, `SELECT emp.id, d.name FROM emp JOIN dept d ON emp.dept_id = d.id ORDER BY emp.id`)
	checkCells(t, res, [][]string{{"10", "eng"}, {"11", "eng"}, {"12", "ops"}})
	// Left join keeps the NULL-dept employee.
	res = run(t, e, `SELECT emp.id, d.name FROM emp LEFT JOIN dept d ON emp.dept_id = d.id ORDER BY emp.id`)
	checkCells(t, res, [][]string{{"10", "eng"}, {"11", "eng"}, {"12", "ops"}, {"13", "NULL"}})
	// Cross join cardinality.
	res = run(t, e, `SELECT COUNT(*) FROM emp, dept`)
	checkCells(t, res, [][]string{{"12"}})
	// Comma join + WHERE equality is rewritten into a hash join.
	res = run(t, e, `SELECT COUNT(*) FROM emp, dept d WHERE emp.dept_id = d.id`)
	checkCells(t, res, [][]string{{"3"}})
	// Non-equi join condition.
	res = run(t, e, `SELECT COUNT(*) FROM emp JOIN dept d ON emp.salary > 100 AND d.id = 1`)
	checkCells(t, res, [][]string{{"2"}})
	// Left join with non-matching residual keeps all left rows.
	res = run(t, e, `SELECT COUNT(*) FROM emp LEFT JOIN dept d ON emp.dept_id = d.id AND d.name = 'nope'`)
	checkCells(t, res, [][]string{{"4"}})
}

func TestSelfJoinAliases(t *testing.T) {
	e := testEngine(t)
	res := run(t, e, `SELECT a.id, b.id FROM emp a, emp b WHERE a.salary < b.salary AND a.dept_id = b.dept_id`)
	checkCells(t, res, [][]string{{"10", "11"}})
	mustFail(t, e, `SELECT id FROM emp a, emp b`, "ambiguous")
}

func TestSubqueriesAndCTEs(t *testing.T) {
	e := testEngine(t)
	res := run(t, e, `SELECT t.c FROM (SELECT COUNT(*) AS c FROM emp) t`)
	checkCells(t, res, [][]string{{"4"}})
	res = run(t, e, `WITH rich AS (SELECT * FROM emp WHERE salary >= 150)
		SELECT COUNT(*) FROM rich`)
	checkCells(t, res, [][]string{{"2"}})
	// A CTE referenced twice (the Shared node caches it per query).
	res = run(t, e, `WITH rich AS (SELECT * FROM emp WHERE salary >= 150)
		SELECT COUNT(*) FROM rich a, rich b`)
	checkCells(t, res, [][]string{{"4"}})
	// CTE column aliases.
	res = run(t, e, `WITH v (x) AS (SELECT salary FROM emp WHERE id = 10) SELECT x + 1 FROM v`)
	checkCells(t, res, [][]string{{"101"}})
	// CTEs shadow base tables.
	res = run(t, e, `WITH emp AS (SELECT 1 AS only) SELECT COUNT(*) FROM emp`)
	checkCells(t, res, [][]string{{"1"}})
}

func TestSetOperations(t *testing.T) {
	e := testEngine(t)
	res := run(t, e, `SELECT 1 UNION SELECT 2 UNION SELECT 1 ORDER BY 1`)
	checkCells(t, res, [][]string{{"1"}, {"2"}})
	res = run(t, e, `SELECT 1 UNION ALL SELECT 1`)
	if res.NumRows() != 2 {
		t.Fatalf("UNION ALL rows = %d", res.NumRows())
	}
	res = run(t, e, `SELECT n FROM nums WHERE n IS NOT NULL EXCEPT SELECT 2 ORDER BY 1`)
	checkCells(t, res, [][]string{{"1"}, {"3"}})
	res = run(t, e, `SELECT n FROM nums INTERSECT SELECT 2`)
	checkCells(t, res, [][]string{{"2"}})
	// Kind promotion across operands.
	res = run(t, e, `SELECT 1 UNION SELECT 1.5 ORDER BY 1`)
	checkCells(t, res, [][]string{{"1"}, {"1.5"}})
	mustFail(t, e, `SELECT 1 UNION SELECT 1, 2`, "columns")
	mustFail(t, e, `SELECT 1 UNION SELECT 'x'`, "incompatible")
}

func TestDistinctOrderLimit(t *testing.T) {
	e := testEngine(t)
	res := run(t, e, `SELECT DISTINCT dept_id FROM emp ORDER BY dept_id NULLS FIRST`)
	checkCells(t, res, [][]string{{"NULL"}, {"1"}, {"2"}})
	res = run(t, e, `SELECT n FROM nums WHERE n IS NOT NULL ORDER BY n DESC LIMIT 2`)
	checkCells(t, res, [][]string{{"3"}, {"2"}})
	res = run(t, e, `SELECT n FROM nums WHERE n IS NOT NULL ORDER BY n LIMIT 1 OFFSET 1`)
	checkCells(t, res, [][]string{{"2"}})
	res = run(t, e, `SELECT n FROM nums WHERE n IS NOT NULL ORDER BY n LIMIT 0`)
	if res.NumRows() != 0 {
		t.Fatal("LIMIT 0 must produce no rows")
	}
	// ORDER BY a non-projected column through a hidden sort column.
	res = run(t, e, `SELECT s FROM nums WHERE n IS NOT NULL ORDER BY n DESC`)
	checkCells(t, res, [][]string{{"three"}, {"two"}, {"one"}})
	if len(res.Schema) != 1 {
		t.Fatalf("hidden sort column leaked: %v", res.Schema)
	}
	mustFail(t, e, `SELECT DISTINCT s FROM nums ORDER BY n`, "DISTINCT")
}

func TestOrderByNullsPlacement(t *testing.T) {
	e := testEngine(t)
	res := run(t, e, `SELECT n FROM nums ORDER BY n`)
	checkCells(t, res, [][]string{{"1"}, {"2"}, {"3"}, {"NULL"}}) // default NULLS LAST asc
	res = run(t, e, `SELECT n FROM nums ORDER BY n DESC`)
	checkCells(t, res, [][]string{{"NULL"}, {"3"}, {"2"}, {"1"}}) // default NULLS FIRST desc
	res = run(t, e, `SELECT n FROM nums ORDER BY n DESC NULLS LAST`)
	checkCells(t, res, [][]string{{"3"}, {"2"}, {"1"}, {"NULL"}})
}

func TestInsertVariants(t *testing.T) {
	e := testEngine(t)
	run(t, e, `CREATE TABLE t2 (a BIGINT, b VARCHAR)`)
	run(t, e, `INSERT INTO t2 (b, a) VALUES ('x', 1)`)
	run(t, e, `INSERT INTO t2 (a) VALUES (2)`)
	run(t, e, `INSERT INTO t2 SELECT n, s FROM nums WHERE n = 3`)
	res := run(t, e, `SELECT a, b FROM t2 ORDER BY a`)
	checkCells(t, res, [][]string{{"1", "x"}, {"2", "NULL"}, {"3", "three"}})
	mustFail(t, e, `INSERT INTO t2 VALUES (1)`, "values")
	mustFail(t, e, `INSERT INTO t2 (zz) VALUES (1)`, "no column")
	mustFail(t, e, `INSERT INTO missing VALUES (1)`, "does not exist")
}

func TestDeleteAndDrop(t *testing.T) {
	e := testEngine(t)
	run(t, e, `DELETE FROM emp WHERE salary < 100`)
	res := run(t, e, `SELECT COUNT(*) FROM emp`)
	checkCells(t, res, [][]string{{"3"}})
	run(t, e, `DELETE FROM emp`)
	res = run(t, e, `SELECT COUNT(*) FROM emp`)
	checkCells(t, res, [][]string{{"0"}})
	run(t, e, `DROP TABLE emp`)
	mustFail(t, e, `SELECT * FROM emp`, "does not exist")
}

func TestParameters(t *testing.T) {
	e := testEngine(t)
	res := run(t, e, `SELECT n FROM nums WHERE n = ? OR s = ?`,
		types.NewInt(1), types.NewString("two"))
	if res.NumRows() != 2 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	_, err := e.Query(`SELECT ? + ?`, types.NewInt(1))
	if err == nil || !strings.Contains(err.Error(), "parameter") {
		t.Fatalf("expected parameter-count error, got %v", err)
	}
}

func TestStarVariants(t *testing.T) {
	e := testEngine(t)
	res := run(t, e, `SELECT d.*, emp.id FROM emp JOIN dept d ON emp.dept_id = d.id WHERE emp.id = 10`)
	checkCells(t, res, [][]string{{"1", "eng", "10"}})
	if res.Schema[0].Name != "id" || res.Schema[1].Name != "name" {
		t.Fatalf("schema = %v", res.Schema)
	}
	mustFail(t, e, `SELECT zz.* FROM emp`, "unknown table")
}

func TestExplain(t *testing.T) {
	e := testEngine(t)
	p, err := e.Explain(`SELECT COUNT(*) FROM emp, dept d WHERE emp.dept_id = d.id AND emp.salary > 10`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p, "Join") {
		t.Fatalf("plan should contain an upgraded join:\n%s", p)
	}
	if !strings.Contains(p, "Aggregate") {
		t.Fatalf("plan should contain an aggregate:\n%s", p)
	}
}

func TestBinderErrors(t *testing.T) {
	e := testEngine(t)
	mustFail(t, e, `SELECT zz FROM nums`, "not found")
	mustFail(t, e, `SELECT nums.zz FROM nums`, "not found")
	mustFail(t, e, `SELECT n FROM missing`, "does not exist")
	mustFail(t, e, `SELECT n + 'x' FROM nums`, "numeric")
	mustFail(t, e, `SELECT n FROM nums WHERE n`, "boolean")
	mustFail(t, e, `SELECT NOT n FROM nums`, "boolean")
	// VARCHAR coerces to DATE for the comparison; unparseable values
	// surface as a runtime error.
	mustFail(t, e, `SELECT n FROM nums WHERE s < d`, "invalid date")
	mustFail(t, e, `SELECT n FROM nums WHERE b < d`, "cannot compare")
	mustFail(t, e, `SELECT n FROM nums ORDER BY 99`, "out of range")
	mustFail(t, e, `SELECT 'a' % 'b'`, "numeric")
	mustFail(t, e, `SELECT 1.5 % 2`, "integer")
	mustFail(t, e, `SELECT n FROM nums LIMIT 'x'`, "LIMIT")
	mustFail(t, e, `SELECT n FROM nums LIMIT -1`, "LIMIT")
}

func TestGraphStatementsThroughEngine(t *testing.T) {
	e := New()
	if _, err := e.ExecScript(`
		CREATE TABLE edges (s VARCHAR, d VARCHAR, w BIGINT);
		INSERT INTO edges VALUES ('a','b',1), ('b','c',2), ('a','c',9);
	`); err != nil {
		t.Fatal(err)
	}
	// String vertex keys.
	res := run(t, e, `SELECT CHEAPEST SUM(x: w) WHERE 'a' REACHES 'c' OVER edges x EDGE (s, d)`)
	checkCells(t, res, [][]string{{"3"}})
	// Reachability only.
	res = run(t, e, `SELECT 1 WHERE 'c' REACHES 'a' OVER edges EDGE (s, d)`)
	if res.NumRows() != 0 {
		t.Fatal("c must not reach a")
	}
	// Reverse direction by swapping the EDGE attributes.
	res = run(t, e, `SELECT 1 WHERE 'c' REACHES 'a' OVER edges EDGE (d, s)`)
	if res.NumRows() != 1 {
		t.Fatal("c must reach a over the transposed graph")
	}
	// REACHES under OR is rejected.
	mustFail(t, e, `SELECT 1 WHERE 'a' REACHES 'c' OVER edges EDGE (s, d) OR TRUE`, "top-level")
	// CHEAPEST SUM without a predicate is rejected.
	mustFail(t, e, `SELECT CHEAPEST SUM(1) FROM edges`, "REACHES")
	// Unknown binding.
	mustFail(t, e, `SELECT CHEAPEST SUM(zz: 1) WHERE 'a' REACHES 'c' OVER edges x EDGE (s, d)`, "unknown edge-table")
	// Unknown edge attribute.
	mustFail(t, e, `SELECT 1 WHERE 'a' REACHES 'c' OVER edges EDGE (nope, d)`, "not found")
	// Non-numeric weight.
	mustFail(t, e, `SELECT CHEAPEST SUM(x: s) WHERE 'a' REACHES 'c' OVER edges x EDGE (s, d)`, "numeric")
}

func TestNullEdgeEndpointsAreIgnored(t *testing.T) {
	e := New()
	if _, err := e.ExecScript(`
		CREATE TABLE edges (s BIGINT, d BIGINT);
		INSERT INTO edges VALUES (1, 2), (NULL, 3), (2, NULL), (2, 3);
	`); err != nil {
		t.Fatal(err)
	}
	res := run(t, e, `SELECT CHEAPEST SUM(1) WHERE 1 REACHES 3 OVER edges EDGE (s, d)`)
	checkCells(t, res, [][]string{{"2"}})
	// 3 appears only as a destination (and in a NULL-src row); it is
	// still a vertex via the non-NULL (2,3) edge.
	res = run(t, e, `SELECT 1 WHERE 3 REACHES 3 OVER edges EDGE (s, d)`)
	if res.NumRows() != 1 {
		t.Fatal("3 must be a vertex and reach itself")
	}
}

func TestConstantWeightUsesBFS(t *testing.T) {
	e := New()
	if _, err := e.ExecScript(`
		CREATE TABLE edges (s BIGINT, d BIGINT);
		INSERT INTO edges VALUES (1,2),(2,3),(3,4);
	`); err != nil {
		t.Fatal(err)
	}
	// Constant weight 5 per hop: cost = hops * 5.
	res := run(t, e, `SELECT CHEAPEST SUM(5) WHERE 1 REACHES 4 OVER edges EDGE (s, d)`)
	checkCells(t, res, [][]string{{"15"}})
	// Constant float weight.
	res = run(t, e, `SELECT CHEAPEST SUM(0.5) WHERE 1 REACHES 4 OVER edges EDGE (s, d)`)
	checkCells(t, res, [][]string{{"1.5"}})
}

func TestValuesRowMismatch(t *testing.T) {
	e := New()
	run(t, e, `CREATE TABLE t (a BIGINT)`)
	mustFail(t, e, `CREATE TABLE t (b BIGINT)`, "exists")
	_ = rows
}
