// Package engine ties the front-end (lexer, parser, binder), the
// rewriter, and the executor together, mirroring the compiler →
// optimizer → physical layer pipeline of §3. It also implements the
// DDL/DML statements and maintains the graph-index cache of §6.
package engine

import (
	"fmt"
	"strings"

	"graphsql/internal/analyze"
	"graphsql/internal/core"
	"graphsql/internal/exec"
	"graphsql/internal/expr"
	"graphsql/internal/plan"
	"graphsql/internal/sql/ast"
	"graphsql/internal/sql/parser"
	"graphsql/internal/storage"
	"graphsql/internal/types"
)

// Engine executes SQL statements over a catalog.
type Engine struct {
	cat *storage.Catalog
	// graphIndexes caches dynamic graph indexes per edge table; see
	// BuildGraphIndex. Key: exec.GraphIndexKey.
	graphIndexes map[string]*core.DynamicGraph
	// indexTables records, per lower-cased table name, the index keys
	// built on it, for invalidation on writes.
	indexTables map[string][]string
	// parallelism is the worker budget for graph construction and
	// batched shortest-path solving; 0 means one worker per CPU.
	parallelism int
	// Stats accumulates executor instrumentation when non-nil.
	Stats *exec.Stats
}

// New returns an engine over a fresh catalog.
func New() *Engine {
	return &Engine{
		cat:          storage.NewCatalog(),
		graphIndexes: map[string]*core.DynamicGraph{},
		indexTables:  map[string][]string{},
	}
}

// Catalog exposes the underlying catalog.
func (e *Engine) Catalog() *storage.Catalog { return e.cat }

// SetParallelism sets the worker budget for graph construction and
// batched shortest-path solving: 1 forces sequential execution, n > 1
// caps the workers, and 0 (the default) uses one worker per CPU.
// Results are identical at any setting. Graph indexes built earlier
// keep the budget they were built with.
func (e *Engine) SetParallelism(p int) {
	if p < 0 {
		p = 0
	}
	e.parallelism = p
}

// Parallelism reports the configured worker budget (0 = one per CPU).
func (e *Engine) Parallelism() int { return e.parallelism }

// Query parses, binds, optimizes and executes one statement, returning
// its result chunk (nil for statements without results).
func (e *Engine) Query(sql string, params ...types.Value) (*storage.Chunk, error) {
	stmt, nparams, err := parser.ParseWithParams(sql)
	if err != nil {
		return nil, err
	}
	if nparams > len(params) {
		return nil, fmt.Errorf("statement uses %d parameters but %d argument(s) were supplied", nparams, len(params))
	}
	return e.execStmt(stmt, params)
}

// ExecScript runs a semicolon-separated script, returning the result
// of the last statement.
func (e *Engine) ExecScript(sql string, params ...types.Value) (*storage.Chunk, error) {
	stmts, err := parser.ParseAll(sql)
	if err != nil {
		return nil, err
	}
	var last *storage.Chunk
	for _, s := range stmts {
		last, err = e.execStmt(s, params)
		if err != nil {
			return nil, err
		}
	}
	return last, nil
}

// Explain returns the optimized logical plan of a SELECT statement.
func (e *Engine) Explain(sql string, params ...types.Value) (string, error) {
	stmt, _, err := parser.ParseWithParams(sql)
	if err != nil {
		return "", err
	}
	sel, ok := stmt.(*ast.SelectStmt)
	if !ok {
		return "", fmt.Errorf("EXPLAIN supports only SELECT statements")
	}
	p, err := analyze.BindSelect(e.cat, sel, params)
	if err != nil {
		return "", err
	}
	return plan.Explain(plan.Rewrite(p)), nil
}

func (e *Engine) execStmt(stmt ast.Statement, params []types.Value) (*storage.Chunk, error) {
	switch t := stmt.(type) {
	case *ast.SelectStmt:
		p, err := analyze.BindSelect(e.cat, t, params)
		if err != nil {
			return nil, err
		}
		p = plan.Rewrite(p)
		ctx := &exec.Context{
			Expr:         &expr.Context{Params: params},
			GraphIndexes: e.graphIndexes,
			Parallelism:  e.parallelism,
			Stats:        e.Stats,
		}
		return exec.Execute(p, ctx)
	case *ast.CreateTableStmt:
		return nil, e.execCreateTable(t)
	case *ast.InsertStmt:
		return nil, e.execInsert(t, params)
	case *ast.DropTableStmt:
		e.invalidateIndexes(t.Name)
		return nil, e.cat.DropTable(t.Name)
	case *ast.DeleteStmt:
		return nil, e.execDelete(t, params)
	}
	return nil, fmt.Errorf("internal: unknown statement %T", stmt)
}

func (e *Engine) execCreateTable(t *ast.CreateTableStmt) error {
	sch := make(storage.Schema, len(t.Columns))
	for i, c := range t.Columns {
		k, err := analyze.TypeNameKind(c.TypeName)
		if err != nil {
			return fmt.Errorf("column %s: %w", c.Name, err)
		}
		sch[i] = storage.ColMeta{Name: c.Name, Kind: k}
	}
	_, err := e.cat.CreateTable(t.Name, sch)
	return err
}

func (e *Engine) execInsert(t *ast.InsertStmt, params []types.Value) error {
	table, ok := e.cat.Table(t.Table)
	if !ok {
		return fmt.Errorf("table %q does not exist", t.Table)
	}
	// Map the targeted columns.
	colIdx := make([]int, 0, len(table.Schema))
	if len(t.Columns) == 0 {
		for i := range table.Schema {
			colIdx = append(colIdx, i)
		}
	} else {
		for _, cn := range t.Columns {
			idx := table.Schema.ColIndex("", cn)
			if idx < 0 {
				return fmt.Errorf("table %s has no column %q", table.Name, cn)
			}
			colIdx = append(colIdx, idx)
		}
	}
	// Appended rows are absorbed by dynamic graph indexes at the next
	// query (DynamicGraph.Refresh); no invalidation needed here.
	appendRow := func(vals []types.Value) error {
		if len(vals) != len(colIdx) {
			return fmt.Errorf("INSERT row has %d values, expected %d", len(vals), len(colIdx))
		}
		row := make([]types.Value, len(table.Schema))
		for i := range row {
			row[i] = types.NewNull(table.Schema[i].Kind)
		}
		for i, v := range vals {
			target := table.Schema[colIdx[i]].Kind
			cv, err := expr.CastValue(v, target)
			if err != nil {
				return fmt.Errorf("column %s: %w", table.Schema[colIdx[i]].Name, err)
			}
			row[colIdx[i]] = cv
		}
		return table.AppendRow(row)
	}

	if t.Select != nil {
		p, err := analyze.BindSelect(e.cat, t.Select, params)
		if err != nil {
			return err
		}
		p = plan.Rewrite(p)
		res, err := exec.Execute(p, &exec.Context{Expr: &expr.Context{Params: params}, GraphIndexes: e.graphIndexes, Parallelism: e.parallelism})
		if err != nil {
			return err
		}
		if res.NumCols() != len(colIdx) {
			return fmt.Errorf("INSERT SELECT produces %d columns, expected %d", res.NumCols(), len(colIdx))
		}
		for i := 0; i < res.NumRows(); i++ {
			if err := appendRow(res.Row(i)); err != nil {
				return err
			}
		}
		return nil
	}
	b := analyze.NewBinder(e.cat, params)
	ectx := &expr.Context{Params: params}
	for _, rowExprs := range t.Rows {
		vals := make([]types.Value, len(rowExprs))
		for i, re := range rowExprs {
			be, err := b.BindScalar(re)
			if err != nil {
				return err
			}
			v, err := expr.EvalScalar(be, ectx)
			if err != nil {
				return err
			}
			vals[i] = v
		}
		if err := appendRow(vals); err != nil {
			return err
		}
	}
	return nil
}

func (e *Engine) execDelete(t *ast.DeleteStmt, params []types.Value) error {
	table, ok := e.cat.Table(t.Table)
	if !ok {
		return fmt.Errorf("table %q does not exist", t.Table)
	}
	defer e.invalidateIndexes(t.Table)
	if t.Where == nil {
		// Truncate.
		for i, m := range table.Schema {
			table.Cols[i] = storage.NewColumn(m.Kind, 0)
		}
		return nil
	}
	b := analyze.NewBinder(e.cat, params)
	pred, err := b.BindOver(t.Where, table.Schema)
	if err != nil {
		return err
	}
	chunk := table.Chunk()
	pc, err := pred.Eval(&expr.Context{Params: params}, chunk)
	if err != nil {
		return err
	}
	var keep []int
	for i := 0; i < chunk.NumRows(); i++ {
		if pc.IsNull(i) || pc.Ints[i] == 0 {
			keep = append(keep, i)
		}
	}
	kept := chunk.Gather(keep)
	copy(table.Cols, kept.Cols)
	return nil
}

// BuildGraphIndex materializes and caches the graph (dictionary + CSR)
// of an edge table, the graph index the paper proposes as future work
// (§6). src and dst name the key columns. Subsequent REACHES queries
// over exactly this table and attribute pair reuse the index instead
// of rebuilding the graph. The index is *updatable*: rows inserted
// after the build are absorbed into a delta at the next query, and the
// snapshot is rebuilt automatically once the delta outgrows it;
// DELETE and DROP invalidate the index entirely.
func (e *Engine) BuildGraphIndex(table, src, dst string) error {
	t, ok := e.cat.Table(table)
	if !ok {
		return fmt.Errorf("table %q does not exist", table)
	}
	srcIdx := t.Schema.ColIndex("", src)
	if srcIdx < 0 {
		return fmt.Errorf("table %s has no column %q", table, src)
	}
	dstIdx := t.Schema.ColIndex("", dst)
	if dstIdx < 0 {
		return fmt.Errorf("table %s has no column %q", table, dst)
	}
	dg, err := core.NewDynamicGraphP(t.Chunk(), srcIdx, dstIdx, e.parallelism)
	if err != nil {
		return err
	}
	key := exec.GraphIndexKey(t.Name, srcIdx, dstIdx)
	e.graphIndexes[key] = dg
	lower := strings.ToLower(t.Name)
	e.indexTables[lower] = append(e.indexTables[lower], key)
	return nil
}

// DropGraphIndexes removes all cached graph indexes of a table.
func (e *Engine) DropGraphIndexes(table string) {
	e.invalidateIndexes(table)
}

func (e *Engine) invalidateIndexes(table string) {
	lower := strings.ToLower(table)
	for _, key := range e.indexTables[lower] {
		delete(e.graphIndexes, key)
	}
	delete(e.indexTables, lower)
}
