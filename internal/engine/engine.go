// Package engine ties the front-end (lexer, parser, binder), the
// rewriter, and the executor together, mirroring the compiler →
// optimizer → physical layer pipeline of §3. It also implements the
// DDL/DML statements and maintains the graph-index cache of §6.
package engine

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"

	"graphsql/internal/analyze"
	"graphsql/internal/core"
	"graphsql/internal/exec"
	"graphsql/internal/expr"
	"graphsql/internal/plan"
	"graphsql/internal/sql/ast"
	"graphsql/internal/sql/parser"
	"graphsql/internal/storage"
	"graphsql/internal/trace"
	"graphsql/internal/types"
)

// Engine executes SQL statements over a catalog.
type Engine struct {
	cat *storage.Catalog
	// graphIndexes caches dynamic graph indexes per edge table; see
	// BuildGraphIndex. Key: exec.GraphIndexKey.
	graphIndexes map[string]*core.DynamicGraph
	// indexTables records, per lower-cased table name, the index keys
	// built on it, for invalidation on writes.
	indexTables map[string][]string
	// parallelism is the worker budget for graph construction and
	// batched shortest-path solving; 0 means one worker per CPU.
	parallelism int
	// defaultParallelism is the value SetParallelism configured; an
	// engine-wide `SET parallelism = DEFAULT` restores it.
	defaultParallelism int
	// schemaVersion counts catalog shape changes (CREATE/DROP TABLE);
	// prepared statements bound against an older version are stale.
	schemaVersion uint64
	// dataVersion counts statements that may have changed query-visible
	// state (CREATE/DROP/INSERT/DELETE), including failed ones that may
	// have partially applied. It is atomic so result caches can key on
	// it without taking the engine's locks; see DataVersion.
	dataVersion atomic.Uint64
	// Stats accumulates executor instrumentation when non-nil.
	Stats *exec.Stats
}

// New returns an engine over a fresh catalog.
func New() *Engine {
	return &Engine{
		cat:          storage.NewCatalog(),
		graphIndexes: map[string]*core.DynamicGraph{},
		indexTables:  map[string][]string{},
	}
}

// Catalog exposes the underlying catalog.
func (e *Engine) Catalog() *storage.Catalog { return e.cat }

// SetParallelism sets the worker budget for graph construction and
// batched shortest-path solving: 1 forces sequential execution, n > 1
// caps the workers, and 0 (the default) uses one worker per CPU.
// Results are identical at any setting. Graph indexes built earlier
// keep the budget they were built with.
func (e *Engine) SetParallelism(p int) {
	if p < 0 {
		p = 0
	}
	e.parallelism = p
	e.defaultParallelism = p
}

// Parallelism reports the configured worker budget (0 = one per CPU).
func (e *Engine) Parallelism() int { return e.parallelism }

// SchemaVersion reports the catalog shape version; it is bumped by
// CREATE TABLE and DROP TABLE. Prepared statements remember the version
// they were bound against (see Prepared.Stale).
func (e *Engine) SchemaVersion() uint64 { return e.schemaVersion }

// DataVersion reports a counter bumped by every statement that may
// change query-visible state (CREATE/DROP/INSERT/DELETE — before it
// runs, so even a partially applied failure moves it). Two executions
// of one SELECT with equal DataVersion observations are guaranteed to
// see the same data; result caches key on it to never serve a result
// across a write. Reading it takes no lock.
func (e *Engine) DataVersion() uint64 { return e.dataVersion.Load() }

// ExecOptions carries per-execution overrides. The zero value is not
// meaningful — use DefaultExecOptions (Parallelism -1 = inherit).
type ExecOptions struct {
	// Parallelism overrides the engine's worker budget for this
	// execution: -1 inherits the engine value, 0 means one worker per
	// CPU, n >= 1 caps the pool.
	Parallelism int
	// OnSet, when non-nil, intercepts SET statements so a session layer
	// can scope settings to itself. It receives the lower-cased setting
	// name and the validated value (Null when SET ... = DEFAULT). When
	// it reports handled, the engine state is left untouched.
	OnSet func(name string, v types.Value) (handled bool, err error)
	// Trace, when non-nil, records this execution's spans: one
	// "execute" stage span with the per-operator tree (rows, wall time,
	// solver frontier levels) nested under it. Nil disables tracing at
	// zero cost.
	Trace *trace.Trace
	// Executor selects the executor implementation: "" inherits the
	// process default (the pull executor unless GSQL_EXEC=materialize),
	// ExecutorPull forces the batch-pull executor, ExecutorMaterialize
	// forces the legacy full-materialization interpreter. Results are
	// value-identical either way; the differential corpus pins it.
	Executor string
	// BatchRows bounds the rows per batch the pull executor emits;
	// <= 0 uses exec.DefaultBatchRows.
	BatchRows int
}

// Executor selection values for ExecOptions.Executor.
const (
	ExecutorPull        = "pull"
	ExecutorMaterialize = "materialize"
)

// DefaultExecOptions returns options that inherit every engine default.
func DefaultExecOptions() ExecOptions { return ExecOptions{Parallelism: -1} }

// effectiveParallelism resolves the worker budget for one execution.
func (e *Engine) effectiveParallelism(opts *ExecOptions) int {
	if opts != nil && opts.Parallelism >= 0 {
		return opts.Parallelism
	}
	return e.parallelism
}

// Prepared is a parsed — and, for SELECT, bound and rewritten —
// statement, reusable across executions with the same parameter kinds.
// It is the unit of the session plan cache: preparing pays the parse,
// bind and rewrite cost once; ExecPrepared then only interprets the
// plan. A Prepared must not be executed concurrently with itself; the
// session layer serializes its own statements.
type Prepared struct {
	// SQL is the statement text the plan was prepared from.
	SQL  string
	stmt ast.Statement
	// plan is the bound+rewritten logical plan (SELECT only).
	plan plan.Node
	// NumParams is how many ? placeholders the statement uses.
	NumParams int
	// paramKinds are the kinds the statement was bound with; executing
	// with differently-typed arguments requires a fresh Prepare.
	paramKinds []types.Kind
	// version is the engine schema version at bind time.
	version uint64
}

// IsSelect reports whether the statement is a query (safe under a read
// lock; everything else mutates engine or catalog state). EXPLAIN
// statements count: they only read (EXPLAIN ANALYZE executes the inner
// SELECT, which is itself read-only).
func (p *Prepared) IsSelect() bool {
	switch p.stmt.(type) {
	case *ast.SelectStmt, *ast.ExplainStmt:
		return true
	}
	return false
}

// IsSet reports whether the statement is a SET. A SET executed with an
// ExecOptions.OnSet interceptor does not mutate the engine and may run
// under a read lock; without one it writes the engine default.
func (p *Prepared) IsSet() bool {
	_, ok := p.stmt.(*ast.SetStmt)
	return ok
}

// Stale reports whether the plan can no longer serve an execution:
// the catalog shape changed since bind time, or the argument kinds
// differ from the ones it was bound with.
func (p *Prepared) Stale(e *Engine, params []types.Value) bool {
	if p.version != e.schemaVersion {
		return true
	}
	if len(params) < len(p.paramKinds) {
		return true
	}
	for i, k := range p.paramKinds {
		if params[i].K != k {
			return true
		}
	}
	return false
}

// Describe parses a statement without binding it: the parameter count
// and statement class are available even before any representative
// argument values exist. The wire-level PREPARE path uses it to defer
// binding until the first typed execution.
func (e *Engine) Describe(sql string) (numParams int, isSelect bool, err error) {
	stmt, nparams, err := parser.ParseWithParams(sql)
	if err != nil {
		return 0, false, err
	}
	switch stmt.(type) {
	case *ast.SelectStmt, *ast.ExplainStmt:
		return nparams, true, nil
	}
	return nparams, false, nil
}

// Prepare parses and, for SELECT statements, binds and rewrites sql.
// params supply the argument kinds referenced during binding; their
// values are not captured (they are re-supplied at ExecPrepared time).
// A panic during binding or rewrite surfaces as a *QueryPanicError.
func (e *Engine) Prepare(sql string, params ...types.Value) (prep *Prepared, err error) {
	defer recoverExecPanic(&err)
	stmt, nparams, err := parser.ParseWithParams(sql)
	if err != nil {
		return nil, err
	}
	if nparams > len(params) {
		return nil, fmt.Errorf("statement uses %d parameters but %d argument(s) were supplied", nparams, len(params))
	}
	p := &Prepared{SQL: sql, stmt: stmt, NumParams: nparams, version: e.schemaVersion}
	if nparams > 0 {
		p.paramKinds = make([]types.Kind, nparams)
		for i := range p.paramKinds {
			p.paramKinds[i] = params[i].K
		}
	}
	switch t := stmt.(type) {
	case *ast.SelectStmt:
		pl, err := analyze.BindSelect(e.cat, t, params)
		if err != nil {
			return nil, err
		}
		p.plan = plan.Rewrite(pl)
	case *ast.ExplainStmt:
		// Bind the inner SELECT now, so EXPLAIN surfaces bind errors at
		// prepare time exactly like the statement it wraps.
		pl, err := analyze.BindSelect(e.cat, t.Stmt, params)
		if err != nil {
			return nil, err
		}
		p.plan = plan.Rewrite(pl)
	}
	return p, nil
}

// request bundles one prepared-statement execution for run, the single
// internal entry point every public query path funnels into: panic
// containment, parameter validation, executor selection, tracing and
// parallelism resolution are applied in exactly one place.
type request struct {
	prep   *Prepared
	params []types.Value
	opts   *ExecOptions
	// wantCursor asks for an incremental cursor instead of a
	// materialized chunk; see ExecPreparedCursor.
	wantCursor bool
}

// run executes one request. Exactly one of chunk/cur is populated:
// with wantCursor a cursor is returned (operator-backed for a SELECT
// under the pull executor, a windowed snapshot otherwise), without it
// the materialized result chunk.
func (e *Engine) run(ctx context.Context, req request) (chunk *storage.Chunk, cur *exec.Cursor, err error) {
	defer recoverExecPanic(&err)
	p := req.prep
	if p.NumParams > len(req.params) {
		return nil, nil, fmt.Errorf("statement uses %d parameters but %d argument(s) were supplied", p.NumParams, len(req.params))
	}
	switch t := p.stmt.(type) {
	case *ast.SelectStmt:
		pl := p.plan
		if pl == nil {
			bound, err := analyze.BindSelect(e.cat, t, req.params)
			if err != nil {
				return nil, nil, err
			}
			pl = plan.Rewrite(bound)
		}
		return e.runSelect(ctx, pl, req)
	case *ast.ExplainStmt:
		chunk, err = e.execExplain(ctx, t, p.plan, req.params, req.opts)
	default:
		chunk, err = e.execStmt(ctx, p.stmt, req.params, req.opts)
	}
	if err != nil {
		return nil, nil, err
	}
	if req.wantCursor {
		if chunk != nil {
			chunk = chunk.Snapshot()
		}
		return nil, exec.NewCursor(ctx, chunk), nil
	}
	return chunk, nil, nil
}

// ExecPrepared executes a prepared statement. The caller is responsible
// for staleness (see Prepared.Stale); executing a stale plan against a
// reshaped catalog is undefined. A panic during execution — on this
// goroutine or inside a parallel pool worker — surfaces as a
// *QueryPanicError, never as a process-killing unwind.
func (e *Engine) ExecPrepared(ctx context.Context, p *Prepared, opts *ExecOptions, params ...types.Value) (*storage.Chunk, error) {
	chunk, _, err := e.run(ctx, request{prep: p, params: params, opts: opts})
	return chunk, err
}

// ExecPreparedCursor executes a prepared statement and returns an
// incremental cursor over its result. For a SELECT under the pull
// executor the cursor is operator-backed: Open runs here, under
// whatever lock discipline the caller holds — base-table scans
// snapshot and cached graph indexes refresh now — and execution then
// proceeds batch-by-batch as the cursor is drained, without the lock.
// Any other statement (and the materializing executor) executes fully
// here and the cursor windows a snapshot of the result. The caller
// must Close the cursor; exhaustion and errors close it implicitly. A
// panic while opening surfaces as a *QueryPanicError; the facade
// applies the same conversion to panics raised during the drain.
func (e *Engine) ExecPreparedCursor(ctx context.Context, p *Prepared, opts *ExecOptions, params ...types.Value) (*exec.Cursor, error) {
	_, cur, err := e.run(ctx, request{prep: p, params: params, opts: opts, wantCursor: true})
	return cur, err
}

// newExecContext builds the exec context for one execution, resolving
// the executor selection: the option wins, otherwise the GSQL_EXEC
// process default applies.
func (e *Engine) newExecContext(ctx context.Context, params []types.Value, opts *ExecOptions) (*exec.Context, error) {
	ectx := &exec.Context{
		Ctx:          ctx,
		Expr:         &expr.Context{Params: params},
		GraphIndexes: e.graphIndexes,
		Parallelism:  e.effectiveParallelism(opts),
		Stats:        e.Stats,
		Materialize:  exec.DefaultMaterialize(),
	}
	if opts != nil {
		ectx.BatchRows = opts.BatchRows
		switch opts.Executor {
		case "":
		case ExecutorPull:
			ectx.Materialize = false
		case ExecutorMaterialize:
			ectx.Materialize = true
		default:
			return nil, fmt.Errorf("unknown executor %q (supported: %s, %s)", opts.Executor, ExecutorPull, ExecutorMaterialize)
		}
	}
	return ectx, nil
}

// runSelect executes a bound plan for run: buffered, or through an
// incremental cursor when the request asks for one.
func (e *Engine) runSelect(ctx context.Context, pl plan.Node, req request) (*storage.Chunk, *exec.Cursor, error) {
	opts := req.opts
	ectx, err := e.newExecContext(ctx, req.params, opts)
	if err != nil {
		return nil, nil, err
	}
	if !req.wantCursor || ectx.Materialize {
		chunk, err := e.execSelect(pl, ectx, opts)
		if err != nil {
			return nil, nil, err
		}
		if !req.wantCursor {
			return chunk, nil, nil
		}
		if chunk != nil {
			chunk = chunk.Snapshot()
		}
		return nil, exec.NewCursor(ctx, chunk), nil
	}
	// Pull cursor: execution happens as the cursor drains. The
	// "execute" stage span opens now and ends via the cursor's close
	// hook, so its duration covers the actual execution window and the
	// in-flight stage shows "execute" for as long as batches flow.
	var onClose func()
	if opts != nil && opts.Trace != nil {
		tr := opts.Trace
		sp := tr.Begin(trace.NoSpan, "execute")
		ectx.Trace = tr
		ectx.TraceSpan = sp
		onClose = func() { tr.End(sp) }
	}
	fail := func(err error) (*storage.Chunk, *exec.Cursor, error) {
		if onClose != nil {
			onClose()
		}
		return nil, nil, err
	}
	op, err := exec.Build(pl, ectx)
	if err != nil {
		return fail(err)
	}
	if err := op.Open(ectx); err != nil {
		op.Close()
		return fail(err)
	}
	return nil, exec.NewOperatorCursor(ctx, op, onClose), nil
}

// execSelect runs a bound plan to a materialized chunk, attaching the
// options' trace (if any) so every operator records a span under one
// "execute" stage.
func (e *Engine) execSelect(pl plan.Node, ectx *exec.Context, opts *ExecOptions) (*storage.Chunk, error) {
	if opts != nil && opts.Trace != nil {
		sp := opts.Trace.Begin(trace.NoSpan, "execute")
		ectx.Trace = opts.Trace
		ectx.TraceSpan = sp
		defer opts.Trace.End(sp)
	}
	return exec.Execute(pl, ectx)
}

// execExplain serves EXPLAIN [ANALYZE]: plain EXPLAIN renders the bound
// plan tree; ANALYZE executes the inner SELECT under a private trace
// and renders the operator span tree — actual rows, wall times, worker
// budgets and per-level solver frontier sizes — next to each node's
// Describe line. The result is one "QUERY PLAN" string column, one row
// per output line.
func (e *Engine) execExplain(ctx context.Context, ex *ast.ExplainStmt, pl plan.Node, params []types.Value, opts *ExecOptions) (*storage.Chunk, error) {
	if pl == nil {
		bound, err := analyze.BindSelect(e.cat, ex.Stmt, params)
		if err != nil {
			return nil, err
		}
		pl = plan.Rewrite(bound)
	}
	var text string
	if !ex.Analyze {
		text = plan.Explain(pl)
	} else {
		// A private trace keeps the rendering to this statement's spans
		// even when the caller traces the enclosing request.
		tr := trace.New()
		ectx, err := e.newExecContext(ctx, params, opts)
		if err != nil {
			return nil, err
		}
		ectx.Trace = tr
		ectx.TraceSpan = trace.NoSpan
		if _, err := exec.Execute(pl, ectx); err != nil {
			return nil, err
		}
		var b strings.Builder
		for _, c := range tr.Tree().Children {
			b.WriteString(trace.Render(c))
		}
		text = b.String()
	}
	out := storage.NewColumn(types.KindString, 8)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		out.AppendString(line)
	}
	return &storage.Chunk{
		Schema: storage.Schema{{Name: "QUERY PLAN", Kind: types.KindString}},
		Cols:   []*storage.Column{out},
	}, nil
}

// Query parses, binds, optimizes and executes one statement, returning
// its result chunk (nil for statements without results).
func (e *Engine) Query(sql string, params ...types.Value) (*storage.Chunk, error) {
	//gsqlvet:allow ctxprop non-ctx compat wrapper; cancellable callers use QueryCtx
	return e.QueryCtx(context.Background(), sql, params...)
}

// QueryCtx is Query with a cancellation context, checked at operator
// and solver chunk boundaries.
func (e *Engine) QueryCtx(ctx context.Context, sql string, params ...types.Value) (*storage.Chunk, error) {
	return e.QueryOpts(ctx, nil, sql, params...)
}

// QueryOpts is QueryCtx with per-execution overrides (nil opts inherit
// every engine default).
func (e *Engine) QueryOpts(ctx context.Context, opts *ExecOptions, sql string, params ...types.Value) (*storage.Chunk, error) {
	p, err := e.Prepare(sql, params...)
	if err != nil {
		return nil, err
	}
	return e.ExecPrepared(ctx, p, opts, params...)
}

// ExecScript runs a semicolon-separated script, returning the result
// of the last statement.
func (e *Engine) ExecScript(sql string, params ...types.Value) (*storage.Chunk, error) {
	//gsqlvet:allow ctxprop non-ctx compat wrapper; cancellable callers use ExecScriptCtx
	return e.ExecScriptCtx(context.Background(), sql, params...)
}

// ExecScriptCtx is ExecScript with a cancellation context. A panic in
// any statement surfaces as a *QueryPanicError (the script stops at
// that statement, like any other statement error).
func (e *Engine) ExecScriptCtx(ctx context.Context, sql string, params ...types.Value) (last *storage.Chunk, err error) {
	defer recoverExecPanic(&err)
	stmts, err := parser.ParseAll(sql)
	if err != nil {
		return nil, err
	}
	for _, s := range stmts {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		last, _, err = e.run(ctx, request{prep: &Prepared{stmt: s}, params: params})
		if err != nil {
			return nil, err
		}
	}
	return last, nil
}

// Explain returns the optimized logical plan of a SELECT statement.
func (e *Engine) Explain(sql string, params ...types.Value) (string, error) {
	stmt, _, err := parser.ParseWithParams(sql)
	if err != nil {
		return "", err
	}
	sel, ok := stmt.(*ast.SelectStmt)
	if !ok {
		return "", fmt.Errorf("EXPLAIN supports only SELECT statements")
	}
	p, err := analyze.BindSelect(e.cat, sel, params)
	if err != nil {
		return "", err
	}
	return plan.Explain(plan.Rewrite(p)), nil
}

func (e *Engine) execStmt(ctx context.Context, stmt ast.Statement, params []types.Value, opts *ExecOptions) (*storage.Chunk, error) {
	switch t := stmt.(type) {
	case *ast.SelectStmt:
		p, err := analyze.BindSelect(e.cat, t, params)
		if err != nil {
			return nil, err
		}
		ectx, err := e.newExecContext(ctx, params, opts)
		if err != nil {
			return nil, err
		}
		return e.execSelect(plan.Rewrite(p), ectx, opts)
	case *ast.ExplainStmt:
		return e.execExplain(ctx, t, nil, params, opts)
	case *ast.CreateTableStmt:
		e.dataVersion.Add(1)
		return nil, e.execCreateTable(t)
	case *ast.InsertStmt:
		e.dataVersion.Add(1)
		return nil, e.execInsert(ctx, t, params)
	case *ast.DropTableStmt:
		e.dataVersion.Add(1)
		if err := e.cat.DropTable(t.Name); err != nil {
			return nil, err
		}
		e.invalidateIndexes(t.Name)
		e.schemaVersion++
		return nil, nil
	case *ast.DeleteStmt:
		e.dataVersion.Add(1)
		return nil, e.execDelete(t, params)
	case *ast.SetStmt:
		return nil, e.execSet(t, params, opts)
	}
	return nil, fmt.Errorf("internal: unknown statement %T", stmt)
}

// execSet validates and applies a SET statement. Known settings:
//
//	SET parallelism = n        -- 0 = one worker per CPU, n >= 1 caps
//	SET parallelism = DEFAULT  -- reset to the inherited value
//
// When opts.OnSet is present the setting is offered to it first so a
// session layer can scope it; otherwise it applies engine-wide.
func (e *Engine) execSet(t *ast.SetStmt, params []types.Value, opts *ExecOptions) error {
	name := strings.ToLower(t.Name)
	var v types.Value
	if t.Default {
		v = types.NewNull(types.KindNull)
	} else {
		b := analyze.NewBinder(e.cat, params)
		be, err := b.BindScalar(t.Value)
		if err != nil {
			return err
		}
		v, err = expr.EvalScalar(be, &expr.Context{Params: params})
		if err != nil {
			return err
		}
	}
	switch name {
	case "parallelism":
		n := e.defaultParallelism // DEFAULT restores the configured value
		if !t.Default {
			if v.Null || v.K != types.KindInt || v.I < 0 {
				return fmt.Errorf("SET parallelism requires a non-negative integer (0 = one worker per CPU)")
			}
			n = int(v.I)
		}
		if opts != nil && opts.OnSet != nil {
			handled, err := opts.OnSet(name, v)
			if handled || err != nil {
				return err
			}
		}
		// Engine-wide SET adjusts the active budget without redefining
		// the configured default (so a later DEFAULT restores it).
		e.parallelism = n
		return nil
	}
	return fmt.Errorf("unknown setting %q (supported: parallelism)", t.Name)
}

func (e *Engine) execCreateTable(t *ast.CreateTableStmt) error {
	sch := make(storage.Schema, len(t.Columns))
	for i, c := range t.Columns {
		k, err := analyze.TypeNameKind(c.TypeName)
		if err != nil {
			return fmt.Errorf("column %s: %w", c.Name, err)
		}
		sch[i] = storage.ColMeta{Name: c.Name, Kind: k}
	}
	if _, err := e.cat.CreateTable(t.Name, sch); err != nil {
		return err
	}
	e.schemaVersion++
	return nil
}

func (e *Engine) execInsert(ctx context.Context, t *ast.InsertStmt, params []types.Value) error {
	table, ok := e.cat.Table(t.Table)
	if !ok {
		return fmt.Errorf("table %q does not exist", t.Table)
	}
	// Map the targeted columns.
	colIdx := make([]int, 0, len(table.Schema))
	if len(t.Columns) == 0 {
		for i := range table.Schema {
			colIdx = append(colIdx, i)
		}
	} else {
		for _, cn := range t.Columns {
			idx := table.Schema.ColIndex("", cn)
			if idx < 0 {
				return fmt.Errorf("table %s has no column %q", table.Name, cn)
			}
			colIdx = append(colIdx, idx)
		}
	}
	// Appended rows are absorbed by dynamic graph indexes at the next
	// query (DynamicGraph.Refresh); no invalidation needed here.
	appendRow := func(vals []types.Value) error {
		if len(vals) != len(colIdx) {
			return fmt.Errorf("INSERT row has %d values, expected %d", len(vals), len(colIdx))
		}
		row := make([]types.Value, len(table.Schema))
		for i := range row {
			row[i] = types.NewNull(table.Schema[i].Kind)
		}
		for i, v := range vals {
			target := table.Schema[colIdx[i]].Kind
			cv, err := expr.CastValue(v, target)
			if err != nil {
				return fmt.Errorf("column %s: %w", table.Schema[colIdx[i]].Name, err)
			}
			row[colIdx[i]] = cv
		}
		return table.AppendRow(row)
	}

	if t.Select != nil {
		p, err := analyze.BindSelect(e.cat, t.Select, params)
		if err != nil {
			return err
		}
		p = plan.Rewrite(p)
		res, err := exec.Execute(p, &exec.Context{Ctx: ctx, Expr: &expr.Context{Params: params}, GraphIndexes: e.graphIndexes, Parallelism: e.parallelism})
		if err != nil {
			return err
		}
		if res.NumCols() != len(colIdx) {
			return fmt.Errorf("INSERT SELECT produces %d columns, expected %d", res.NumCols(), len(colIdx))
		}
		for i := 0; i < res.NumRows(); i++ {
			if err := appendRow(res.Row(i)); err != nil {
				return err
			}
		}
		return nil
	}
	b := analyze.NewBinder(e.cat, params)
	ectx := &expr.Context{Params: params}
	for _, rowExprs := range t.Rows {
		vals := make([]types.Value, len(rowExprs))
		for i, re := range rowExprs {
			be, err := b.BindScalar(re)
			if err != nil {
				return err
			}
			v, err := expr.EvalScalar(be, ectx)
			if err != nil {
				return err
			}
			vals[i] = v
		}
		if err := appendRow(vals); err != nil {
			return err
		}
	}
	return nil
}

func (e *Engine) execDelete(t *ast.DeleteStmt, params []types.Value) error {
	table, ok := e.cat.Table(t.Table)
	if !ok {
		return fmt.Errorf("table %q does not exist", t.Table)
	}
	defer e.invalidateIndexes(t.Table)
	if t.Where == nil {
		// Truncate.
		for i, m := range table.Schema {
			table.Cols[i] = storage.NewColumn(m.Kind, 0)
		}
		return nil
	}
	b := analyze.NewBinder(e.cat, params)
	pred, err := b.BindOver(t.Where, table.Schema)
	if err != nil {
		return err
	}
	chunk := table.Chunk()
	pc, err := pred.Eval(&expr.Context{Params: params}, chunk)
	if err != nil {
		return err
	}
	var keep []int
	for i := 0; i < chunk.NumRows(); i++ {
		if pc.IsNull(i) || pc.Ints[i] == 0 {
			keep = append(keep, i)
		}
	}
	kept := chunk.Gather(keep)
	copy(table.Cols, kept.Cols)
	return nil
}

// BuildGraphIndex materializes and caches the graph (dictionary + CSR)
// of an edge table, the graph index the paper proposes as future work
// (§6). src and dst name the key columns. Subsequent REACHES queries
// over exactly this table and attribute pair reuse the index instead
// of rebuilding the graph. The index is *updatable*: rows inserted
// after the build are absorbed into a delta at the next query, and the
// snapshot is rebuilt automatically once the delta outgrows it;
// DELETE and DROP invalidate the index entirely. A panic during the
// parallel build surfaces as a *QueryPanicError.
func (e *Engine) BuildGraphIndex(table, src, dst string) (err error) {
	defer recoverExecPanic(&err)
	t, ok := e.cat.Table(table)
	if !ok {
		return fmt.Errorf("table %q does not exist", table)
	}
	srcIdx := t.Schema.ColIndex("", src)
	if srcIdx < 0 {
		return fmt.Errorf("table %s has no column %q", table, src)
	}
	dstIdx := t.Schema.ColIndex("", dst)
	if dstIdx < 0 {
		return fmt.Errorf("table %s has no column %q", table, dst)
	}
	dg, err := core.NewDynamicGraphP(t.Chunk(), srcIdx, dstIdx, e.parallelism)
	if err != nil {
		return err
	}
	key := exec.GraphIndexKey(t.Name, srcIdx, dstIdx)
	e.graphIndexes[key] = dg
	lower := strings.ToLower(t.Name)
	e.indexTables[lower] = append(e.indexTables[lower], key)
	return nil
}

// DropGraphIndexes removes all cached graph indexes of a table.
func (e *Engine) DropGraphIndexes(table string) {
	e.invalidateIndexes(table)
}

func (e *Engine) invalidateIndexes(table string) {
	lower := strings.ToLower(table)
	for _, key := range e.indexTables[lower] {
		delete(e.graphIndexes, key)
	}
	delete(e.indexTables, lower)
}
