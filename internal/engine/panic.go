package engine

import (
	"fmt"
	"runtime/debug"

	"graphsql/internal/par"
)

// QueryPanicError is the typed error the engine boundary converts a
// panic into: any panic escaping statement execution — from a parallel
// pool worker (surfaced as *par.WorkerPanic) or from the calling
// goroutine itself — is recovered at Prepare / ExecPrepared /
// ExecScriptCtx / BuildGraphIndex and returned as one of these instead
// of unwinding into the caller. That makes a panicking query fail
// exactly like a query with a SQL error: the error travels the normal
// return path, locks held by callers are released by their own defers,
// and the process keeps serving.
//
// The guarantee is containment, not rollback: a panic mid-write can
// leave that statement partially applied, which is the same contract
// ordinary write errors already have (DataVersion is bumped before a
// write starts, so result caches never serve state from before a
// failed write).
type QueryPanicError struct {
	// Value is the original panic value.
	Value any
	// Stack is the stack of the panicking goroutine (the worker's when
	// the panic crossed a pool boundary), for server-side logging; it
	// is deliberately not part of Error so wire responses stay small
	// and free of internals.
	Stack []byte
}

func (e *QueryPanicError) Error() string { return fmt.Sprintf("query panicked: %v", e.Value) }

// Unwrap exposes the panic value when it was an error, so errors.As
// can match injected faults and other typed panics through the
// conversion.
func (e *QueryPanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// recoverExecPanic is deferred at every engine entry point that runs
// statement code; it converts an in-flight panic into a
// *QueryPanicError assigned to the caller's named error return. A
// *par.WorkerPanic keeps the worker's original value and stack rather
// than the (useless) re-raise stack of the calling goroutine.
func recoverExecPanic(errp *error) {
	r := recover()
	if r == nil {
		return
	}
	if wp, ok := r.(*par.WorkerPanic); ok {
		*errp = &QueryPanicError{Value: wp.Value, Stack: wp.Stack}
		return
	}
	*errp = &QueryPanicError{Value: r, Stack: debug.Stack()}
}

// CapturePanic is recoverExecPanic for consumers outside this package:
// with the pull executor, operator code runs while a cursor drains —
// after ExecPreparedCursor returned — so the facade defers this in its
// batch reader to keep the containment contract. It is a function
// variable (not a wrapper) because recover only works when called
// directly by the deferred function.
var CapturePanic = recoverExecPanic
