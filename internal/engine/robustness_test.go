package engine

import (
	"math/rand"
	"strings"
	"testing"
)

// TestEngineNeverPanics drives mutated queries through the whole
// pipeline (parse → bind → rewrite → execute) against a populated
// catalog; every input must either produce a result or an error.
func TestEngineNeverPanics(t *testing.T) {
	e := New()
	if _, err := e.ExecScript(`
		CREATE TABLE t (a BIGINT, b VARCHAR, c DOUBLE, d DATE);
		INSERT INTO t VALUES (1, 'x', 1.5, '2020-01-01'), (2, NULL, NULL, NULL);
		CREATE TABLE g (s BIGINT, dd BIGINT, w BIGINT);
		INSERT INTO g VALUES (1, 2, 3), (2, 3, 4);
	`); err != nil {
		t.Fatal(err)
	}
	seeds := []string{
		`SELECT a, b FROM t WHERE a = 1`,
		`SELECT CHEAPEST SUM(f: w) AS (cost, path) WHERE 1 REACHES 3 OVER g f EDGE (s, dd)`,
		`SELECT q.cost, r.s FROM (SELECT CHEAPEST SUM(f: 1) AS (cost, path) WHERE 1 REACHES 3 OVER g f EDGE (s, dd)) q, UNNEST(q.path) AS r`,
		`SELECT COUNT(*), SUM(a) FROM t GROUP BY b HAVING COUNT(*) > 0 ORDER BY 1 LIMIT 5`,
		`WITH v AS (SELECT a FROM t) SELECT * FROM v WHERE a IN (SELECT a FROM t)`,
		`SELECT t1.a FROM t t1 LEFT JOIN t t2 ON t1.a = t2.a`,
		`SELECT a FROM t UNION SELECT s FROM g EXCEPT SELECT 9`,
		`SELECT CASE WHEN a > 1 THEN b ELSE 'z' END FROM t ORDER BY c DESC NULLS LAST`,
	}
	words := []string{
		"SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "(", ")",
		"REACHES", "OVER", "EDGE", "CHEAPEST", "SUM", "UNNEST", "path",
		"a", "b", "t", "g", "s", "dd", "w", "1", "'x'", "NULL", "*",
		",", "AND", "OR", "=", "<", "JOIN", "ON", "AS", "IN", "EXISTS",
	}
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 1500; trial++ {
		src := seeds[r.Intn(len(seeds))]
		parts := strings.Fields(src)
		switch r.Intn(4) {
		case 0:
			if len(parts) > 1 {
				parts = parts[:1+r.Intn(len(parts)-1)]
			}
		case 1:
			if len(parts) > 0 {
				parts[r.Intn(len(parts))] = words[r.Intn(len(words))]
			}
		case 2:
			if len(parts) > 1 {
				i := r.Intn(len(parts))
				parts = append(parts[:i], parts[i+1:]...)
			}
		case 3:
			i := r.Intn(len(parts) + 1)
			parts = append(parts[:i], append([]string{words[r.Intn(len(words))]}, parts[i:]...)...)
		}
		src = strings.Join(parts, " ")
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("engine panicked on %q: %v", src, p)
				}
			}()
			_, _ = e.Query(src)
		}()
	}
}
