package engine

import (
	"fmt"
	"testing"

	"graphsql/internal/exec"
	"graphsql/internal/types"
)

const pairQ = `SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER e EDGE (s, d)`

func dynEngine(t *testing.T) *Engine {
	t.Helper()
	e := New()
	if _, err := e.ExecScript(`
		CREATE TABLE e (s BIGINT, d BIGINT);
		INSERT INTO e VALUES (1,2), (2,3);
	`); err != nil {
		t.Fatal(err)
	}
	return e
}

func dist(t *testing.T, e *Engine, s, d int64) int64 {
	t.Helper()
	res, err := e.Query(pairQ, types.NewInt(s), types.NewInt(d))
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() == 0 {
		return -1
	}
	return res.Cols[0].Ints[0]
}

func TestDynamicIndexAbsorbsInsertsThroughSQL(t *testing.T) {
	e := dynEngine(t)
	e.Stats = &exec.Stats{}
	if err := e.BuildGraphIndex("e", "s", "d"); err != nil {
		t.Fatal(err)
	}
	if got := dist(t, e, 1, 3); got != 2 {
		t.Fatalf("dist(1,3) = %d, want 2", got)
	}
	// Insert a shortcut and a new vertex; the index must absorb both
	// without a rebuild (delta below the 64-edge floor).
	if _, err := e.Query(`INSERT INTO e VALUES (1, 3), (3, 9)`); err != nil {
		t.Fatal(err)
	}
	if got := dist(t, e, 1, 3); got != 1 {
		t.Fatalf("dist(1,3) after shortcut = %d, want 1", got)
	}
	if got := dist(t, e, 1, 9); got != 2 {
		t.Fatalf("dist(1,9) to the new vertex = %d, want 2", got)
	}
	if e.Stats.IndexRefreshes == 0 {
		t.Fatal("expected a delta refresh to be recorded")
	}
	if e.Stats.IndexRebuilds != 0 {
		t.Fatal("small delta must not trigger a rebuild")
	}
	if e.Stats.GraphBuilds != 0 {
		t.Fatal("indexed queries must not rebuild ad hoc graphs")
	}
}

func TestDynamicIndexRebuildThroughSQL(t *testing.T) {
	e := dynEngine(t)
	e.Stats = &exec.Stats{}
	if err := e.BuildGraphIndex("e", "s", "d"); err != nil {
		t.Fatal(err)
	}
	// Append a long chain: > 64 edges forces a snapshot rebuild.
	for i := 3; i < 90; i++ {
		if _, err := e.Query(fmt.Sprintf(`INSERT INTO e VALUES (%d, %d)`, i, i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if got := dist(t, e, 1, 90); got != 89 {
		t.Fatalf("dist(1,90) = %d, want 89", got)
	}
	if e.Stats.IndexRebuilds != 1 {
		t.Fatalf("rebuilds = %d, want 1", e.Stats.IndexRebuilds)
	}
}

func TestDeleteInvalidatesDynamicIndex(t *testing.T) {
	e := dynEngine(t)
	e.Stats = &exec.Stats{}
	if err := e.BuildGraphIndex("e", "s", "d"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(`DELETE FROM e WHERE d = 3`); err != nil {
		t.Fatal(err)
	}
	// 1 can no longer reach 3; the query must not use the stale index.
	if got := dist(t, e, 1, 3); got != -1 {
		t.Fatalf("dist(1,3) after delete = %d, want unreachable", got)
	}
	if e.Stats.IndexHits != 0 {
		t.Fatal("deleted-from table must not serve index hits")
	}
}

func TestWeightedQueriesThroughDynamicIndex(t *testing.T) {
	e := New()
	if _, err := e.ExecScript(`
		CREATE TABLE e (s BIGINT, d BIGINT, w BIGINT);
		INSERT INTO e VALUES (1,2,10), (2,3,10);
	`); err != nil {
		t.Fatal(err)
	}
	if err := e.BuildGraphIndex("e", "s", "d"); err != nil {
		t.Fatal(err)
	}
	q := `SELECT CHEAPEST SUM(f: w) WHERE ? REACHES ? OVER e f EDGE (s, d)`
	res, err := e.Query(q, types.NewInt(1), types.NewInt(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cols[0].Ints[0] != 20 {
		t.Fatalf("weighted cost = %d, want 20", res.Cols[0].Ints[0])
	}
	// A cheaper delta edge must win, with its weight read correctly.
	if _, err := e.Query(`INSERT INTO e VALUES (1, 3, 5)`); err != nil {
		t.Fatal(err)
	}
	res, err = e.Query(q, types.NewInt(1), types.NewInt(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cols[0].Ints[0] != 5 {
		t.Fatalf("weighted cost via delta = %d, want 5", res.Cols[0].Ints[0])
	}
}

func TestPathThroughDynamicIndexDeltaEdge(t *testing.T) {
	e := New()
	if _, err := e.ExecScript(`
		CREATE TABLE e (s BIGINT, d BIGINT);
		INSERT INTO e VALUES (1,2);
	`); err != nil {
		t.Fatal(err)
	}
	if err := e.BuildGraphIndex("e", "s", "d"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(`INSERT INTO e VALUES (2, 3)`); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(`
		SELECT r.s, r.d
		FROM (
			SELECT CHEAPEST SUM(f: 1) AS (c, p)
			WHERE 1 REACHES 3 OVER e f EDGE (s, d)
		) t, UNNEST(t.p) WITH ORDINALITY AS r
		ORDER BY r.ordinality`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 {
		t.Fatalf("path rows = %d, want 2\n%s", res.NumRows(), res)
	}
	if res.Cols[0].Ints[1] != 2 || res.Cols[1].Ints[1] != 3 {
		t.Fatalf("delta hop = (%d,%d), want (2,3)", res.Cols[0].Ints[1], res.Cols[1].Ints[1])
	}
}
