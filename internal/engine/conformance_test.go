package engine

import (
	"fmt"
	"strings"
	"testing"

	"graphsql/internal/types"
)

func TestDateFunctions(t *testing.T) {
	e := New()
	res := run(t, e, `SELECT YEAR(CAST('2011-03-24' AS DATE)),
		MONTH(CAST('2011-03-24' AS DATE)),
		DAY(CAST('2011-03-24' AS DATE)),
		DATE_ADD(CAST('2011-03-24' AS DATE), 8)`)
	checkCells(t, res, [][]string{{"2011", "3", "24", "2011-04-01"}})
	res = run(t, e, `SELECT YEAR(NULL)`)
	checkCells(t, res, [][]string{{"NULL"}})
}

func TestDateLiteralSyntaxAndComparisons(t *testing.T) {
	e := New()
	res := run(t, e, `SELECT DATE '2020-02-29' < DATE '2020-03-01',
		DATE '2020-02-29' = CAST('2020-02-29' AS DATE)`)
	checkCells(t, res, [][]string{{"true", "true"}})
}

func TestNestedCTEsAndShadowing(t *testing.T) {
	e := New()
	if _, err := e.ExecScript(`CREATE TABLE base (x BIGINT); INSERT INTO base VALUES (1), (2), (3);`); err != nil {
		t.Fatal(err)
	}
	// A CTE chain where each references the previous.
	res := run(t, e, `
		WITH a AS (SELECT x FROM base WHERE x > 1),
		     b AS (SELECT x + 10 AS y FROM a),
		     c AS (SELECT SUM(y) AS total FROM b)
		SELECT total FROM c`)
	checkCells(t, res, [][]string{{"25"}})
	// An inner WITH shadows an outer one.
	res = run(t, e, `
		WITH v AS (SELECT 1 AS n)
		SELECT * FROM (WITH v AS (SELECT 2 AS n) SELECT n FROM v) t`)
	checkCells(t, res, [][]string{{"2"}})
}

func TestDeepDerivedTables(t *testing.T) {
	e := New()
	res := run(t, e, `
		SELECT z FROM (
			SELECT y + 1 AS z FROM (
				SELECT x * 2 AS y FROM (
					SELECT 5 AS x
				) a
			) b
		) c`)
	checkCells(t, res, [][]string{{"11"}})
}

func TestGraphJoinWithVertexProperties(t *testing.T) {
	// The full VP1 × VP2 graph join of §2 with properties and grouping.
	e := New()
	if _, err := e.ExecScript(`
		CREATE TABLE persons (id BIGINT, city VARCHAR);
		CREATE TABLE knows (a BIGINT, b BIGINT);
		INSERT INTO persons VALUES (1,'ams'), (2,'ams'), (3,'nyc'), (4,'nyc');
		INSERT INTO knows VALUES (1,2), (2,3), (3,4);
	`); err != nil {
		t.Fatal(err)
	}
	// Count reachable ordered pairs per source city.
	res := run(t, e, `
		SELECT p1.city, COUNT(*) AS pairs
		FROM persons p1, persons p2
		WHERE p1.id REACHES p2.id OVER knows EDGE (a, b)
		  AND p1.id <> p2.id
		GROUP BY p1.city
		ORDER BY p1.city`)
	// From ams: 1->{2,3,4}, 2->{3,4} = 5 pairs; from nyc: 3->4 = 1.
	checkCells(t, res, [][]string{{"ams", "5"}, {"nyc", "1"}})
}

func TestTwoCheapestSumsOnOnePredicate(t *testing.T) {
	e := New()
	if _, err := e.ExecScript(`
		CREATE TABLE g (s BIGINT, d BIGINT, w BIGINT);
		INSERT INTO g VALUES (1,2,5), (2,3,5), (1,3,100);
	`); err != nil {
		t.Fatal(err)
	}
	// Hops and weighted cost from the same predicate: two specs, one
	// graph build, one result row.
	res := run(t, e, `
		SELECT CHEAPEST SUM(f: 1) AS hops, CHEAPEST SUM(f: w) AS dist
		WHERE 1 REACHES 3 OVER g f EDGE (s, d)`)
	checkCells(t, res, [][]string{{"1", "10"}})
}

func TestCheapestSumInArithmeticAndOrderBy(t *testing.T) {
	e := New()
	if _, err := e.ExecScript(`
		CREATE TABLE g (s BIGINT, d BIGINT);
		CREATE TABLE vp (id BIGINT);
		INSERT INTO g VALUES (1,2), (2,3), (3,4);
		INSERT INTO vp VALUES (2), (3), (4);
	`); err != nil {
		t.Fatal(err)
	}
	res := run(t, e, `
		SELECT id, CHEAPEST SUM(1) * 100 AS scaled
		FROM vp
		WHERE 1 REACHES id OVER g EDGE (s, d)
		ORDER BY scaled DESC`)
	checkCells(t, res, [][]string{{"4", "300"}, {"3", "200"}, {"2", "100"}})
}

func TestReachesOverDerivedEdgeTable(t *testing.T) {
	e := New()
	if _, err := e.ExecScript(`
		CREATE TABLE g (s BIGINT, d BIGINT, kind VARCHAR);
		INSERT INTO g VALUES (1,2,'road'), (2,3,'rail'), (1,3,'road');
	`); err != nil {
		t.Fatal(err)
	}
	// Inline subquery as the edge table (parenthesized OVER form).
	res := run(t, e, `
		SELECT CHEAPEST SUM(1)
		WHERE 1 REACHES 3 OVER (SELECT * FROM g WHERE kind = 'road') f EDGE (s, d)`)
	checkCells(t, res, [][]string{{"1"}})
	res = run(t, e, `
		SELECT 1 WHERE 1 REACHES 3 OVER (SELECT * FROM g WHERE kind = 'rail') f EDGE (s, d)`)
	if res.NumRows() != 0 {
		t.Fatal("rail-only subgraph must not connect 1 to 3")
	}
}

func TestUnnestComposesWithJoinsAndAggregates(t *testing.T) {
	e := New()
	if _, err := e.ExecScript(`
		CREATE TABLE g (s BIGINT, d BIGINT, len BIGINT);
		INSERT INTO g VALUES (1,2,4), (2,3,6), (1,3,100);
	`); err != nil {
		t.Fatal(err)
	}
	// Average leg length along the cheapest 1->3 path.
	res := run(t, e, `
		SELECT AVG(r.len) AS avg_leg, COUNT(*) AS legs
		FROM (
			SELECT CHEAPEST SUM(f: len) AS (c, p)
			WHERE 1 REACHES 3 OVER g f EDGE (s, d)
		) t, UNNEST(t.p) AS r`)
	checkCells(t, res, [][]string{{"5", "2"}})
}

func TestPathLengthFunction(t *testing.T) {
	e := New()
	if _, err := e.ExecScript(`
		CREATE TABLE g (s BIGINT, d BIGINT);
		INSERT INTO g VALUES (1,2), (2,3);
	`); err != nil {
		t.Fatal(err)
	}
	res := run(t, e, `
		SELECT PATH_LENGTH(t.p)
		FROM (
			SELECT CHEAPEST SUM(f: 1) AS (c, p)
			WHERE 1 REACHES 3 OVER g f EDGE (s, d)
		) t`)
	checkCells(t, res, [][]string{{"2"}})
}

func TestStringEdgeKeysWithConcat(t *testing.T) {
	e := New()
	if _, err := e.ExecScript(`
		CREATE TABLE flights (o VARCHAR, dd VARCHAR);
		INSERT INTO flights VALUES ('AMS','LHR'), ('LHR','JFK');
	`); err != nil {
		t.Fatal(err)
	}
	// Computed string keys on the probe side.
	res := run(t, e, `SELECT CHEAPEST SUM(1)
		WHERE 'AM' || 'S' REACHES 'JFK' OVER flights EDGE (o, dd)`)
	checkCells(t, res, [][]string{{"2"}})
}

func TestLongChainGraph(t *testing.T) {
	// A 1000-node path graph: exercises deep BFS and path rebuild.
	e := New()
	run(t, e, `CREATE TABLE chain (s BIGINT, d BIGINT)`)
	tbl, _ := e.Catalog().Table("chain")
	for i := 0; i < 1000; i++ {
		tbl.Cols[0].AppendInt(int64(i))
		tbl.Cols[1].AppendInt(int64(i + 1))
	}
	res := run(t, e, `SELECT CHEAPEST SUM(1) WHERE 0 REACHES 1000 OVER chain EDGE (s, d)`)
	checkCells(t, res, [][]string{{"1000"}})
	// And the path has exactly 1000 hops.
	res = run(t, e, `
		SELECT COUNT(*) FROM (
			SELECT CHEAPEST SUM(f: 1) AS (c, p)
			WHERE 0 REACHES 1000 OVER chain f EDGE (s, d)
		) t, UNNEST(t.p) AS r`)
	checkCells(t, res, [][]string{{"1000"}})
}

func TestDuplicateEdgesAreHarmless(t *testing.T) {
	e := New()
	if _, err := e.ExecScript(`
		CREATE TABLE g (s BIGINT, d BIGINT, w BIGINT);
		INSERT INTO g VALUES (1,2,9), (1,2,3), (2,3,1), (1,2,3);
	`); err != nil {
		t.Fatal(err)
	}
	// Multigraph: the cheapest parallel edge wins.
	res := run(t, e, `SELECT CHEAPEST SUM(f: w) WHERE 1 REACHES 3 OVER g f EDGE (s, d)`)
	checkCells(t, res, [][]string{{"4"}})
}

func TestSelfLoopsDoNotBreakShortestPaths(t *testing.T) {
	e := New()
	if _, err := e.ExecScript(`
		CREATE TABLE g (s BIGINT, d BIGINT);
		INSERT INTO g VALUES (1,1), (1,2), (2,2), (2,3);
	`); err != nil {
		t.Fatal(err)
	}
	res := run(t, e, `SELECT CHEAPEST SUM(1) WHERE 1 REACHES 3 OVER g EDGE (s, d)`)
	checkCells(t, res, [][]string{{"2"}})
}

func TestBigBatchReachabilityJoin(t *testing.T) {
	// Join semantics over a larger synthetic graph: every pair in a
	// two-component graph; counts must respect the component split.
	e := New()
	run(t, e, `CREATE TABLE g (s BIGINT, d BIGINT)`)
	tbl, _ := e.Catalog().Table("g")
	// Component A: 0..49 cycle; component B: 100..149 cycle.
	for i := 0; i < 50; i++ {
		tbl.Cols[0].AppendInt(int64(i))
		tbl.Cols[1].AppendInt(int64((i + 1) % 50))
		tbl.Cols[0].AppendInt(int64(100 + i))
		tbl.Cols[1].AppendInt(int64(100 + (i+1)%50))
	}
	run(t, e, `CREATE TABLE v (id BIGINT)`)
	vt, _ := e.Catalog().Table("v")
	for i := 0; i < 50; i++ {
		vt.Cols[0].AppendInt(int64(i))
		vt.Cols[0].AppendInt(int64(100 + i))
	}
	res := run(t, e, `
		SELECT COUNT(*)
		FROM v a, v b
		WHERE a.id REACHES b.id OVER g EDGE (s, d)`)
	// Each cycle is strongly connected: 50*50 ordered pairs per
	// component, no cross-component pairs.
	checkCells(t, res, [][]string{{"5000"}})
}

func TestGroupByCheapestSum(t *testing.T) {
	e := New()
	if _, err := e.ExecScript(`
		CREATE TABLE g (s BIGINT, d BIGINT);
		CREATE TABLE v (id BIGINT);
		INSERT INTO g VALUES (1,2),(2,3),(3,4),(1,5),(5,4);
		INSERT INTO v VALUES (2),(3),(4),(5);
	`); err != nil {
		t.Fatal(err)
	}
	// Group destinations by their hop distance from vertex 1.
	res := run(t, e, `
		SELECT CHEAPEST SUM(1) AS hops, COUNT(*) AS n
		FROM v
		WHERE 1 REACHES id OVER g EDGE (s, d)
		GROUP BY CHEAPEST SUM(1)
		ORDER BY hops`)
	checkCells(t, res, [][]string{{"1", "2"}, {"2", "2"}})
}

func TestInsertSelectWithGraphQuery(t *testing.T) {
	e := New()
	if _, err := e.ExecScript(`
		CREATE TABLE g (s BIGINT, d BIGINT);
		CREATE TABLE v (id BIGINT);
		CREATE TABLE dists (id BIGINT, hops BIGINT);
		INSERT INTO g VALUES (1,2),(2,3);
		INSERT INTO v VALUES (2),(3);
	`); err != nil {
		t.Fatal(err)
	}
	run(t, e, `INSERT INTO dists SELECT id, CHEAPEST SUM(1)
		FROM v WHERE 1 REACHES id OVER g EDGE (s, d)`)
	res := run(t, e, `SELECT id, hops FROM dists ORDER BY id`)
	checkCells(t, res, [][]string{{"2", "1"}, {"3", "2"}})
}

func TestManyParamsAndRepeatedExecution(t *testing.T) {
	e := New()
	if _, err := e.ExecScript(`
		CREATE TABLE g (s BIGINT, d BIGINT);
		INSERT INTO g VALUES (1,2),(2,3),(3,4),(4,5);
	`); err != nil {
		t.Fatal(err)
	}
	// Re-binding the same statement text with different parameters
	// (the §4 protocol: same query, varying parameters).
	for i := int64(2); i <= 5; i++ {
		res := run(t, e, `SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER g EDGE (s, d)`,
			types.NewInt(1), types.NewInt(i))
		checkCells(t, res, [][]string{{fmt.Sprint(i - 1)}})
	}
}

func TestErrorMessagesCarryPositions(t *testing.T) {
	e := New()
	_, err := e.Query("SELECT\n  nope")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("expected a line-2 position, got %v", err)
	}
}
