// Package par provides the deterministic work-distribution primitives
// shared by every parallel code path in the engine: the shortest-path
// runtime, graph construction, result materialization and the
// relational operators. The contract is always the same: work is
// partitioned over disjoint output locations and merged (if at all) in
// a fixed order, so results are bit-identical at every worker count.
// With one worker (or one item) every primitive degrades to a plain
// loop with zero goroutine overhead.
//
// A panic in a worker does not kill the process: the pool captures the
// first panic (value and stack, see WorkerPanic) and re-raises it on
// the caller goroutine once all workers have stopped, matching the
// behavior of the equivalent sequential loop.
package par

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// WorkerPanic carries a panic out of a pool worker: the original panic
// value plus the worker goroutine's stack at the point of panic. When a
// worker panics, the pool lets its peers drain (or bail early, for
// Indexed), then re-panics on the caller goroutine with a *WorkerPanic
// — so a panic inside a parallel region surfaces exactly like a panic
// in the equivalent sequential loop, and recovery layers upstream (the
// engine boundary, the server middleware) need only one mechanism.
// Only the first panic is kept; later ones are dropped.
type WorkerPanic struct {
	// Value is the original value passed to panic.
	Value any
	// Stack is the panicking worker's stack trace.
	Stack []byte
}

func (p *WorkerPanic) String() string { return fmt.Sprintf("par: worker panic: %v", p.Value) }

// Error lets recover sites treat the value uniformly with real errors.
func (p *WorkerPanic) Error() string { return p.String() }

// Unwrap exposes the original panic value when it was an error, so
// errors.As sees through the pool boundary.
func (p *WorkerPanic) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// capture wraps a worker body: a panic is recorded into first (keeping
// the earliest one) instead of killing the process. A *WorkerPanic
// from a nested pool passes through unwrapped, so arbitrarily deep
// nesting surfaces the innermost worker's value and stack once.
func capture(first *atomic.Pointer[WorkerPanic], body func()) {
	defer func() {
		if r := recover(); r != nil {
			wp, ok := r.(*WorkerPanic)
			if !ok {
				wp = &WorkerPanic{Value: r, Stack: debug.Stack()}
			}
			first.CompareAndSwap(nil, wp)
		}
	}()
	body()
}

// Workers maps a Parallelism option onto a concrete worker count:
// values <= 0 mean one worker per available CPU.
func Workers(parallelism int) int {
	if parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return parallelism
}

// Indexed drains n indexed work items over the given number of workers
// using an atomic work-stealing cursor. Item order across workers is
// unspecified; callers must write to disjoint output locations per
// item. With one worker (or one item) it degrades to a plain loop.
func Indexed(workers, n int, f func(worker, item int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(0, i)
		}
		return
	}
	var next atomic.Int64
	var firstPanic atomic.Pointer[WorkerPanic]
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			capture(&firstPanic, func() {
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					// A peer already panicked: stop stealing items. The
					// run is doomed, so partial output is fine — but
					// skipping the remaining items bounds how long the
					// caller waits before the panic resurfaces.
					if firstPanic.Load() != nil {
						return
					}
					f(worker, i)
				}
			})
		}(w)
	}
	wg.Wait()
	if p := firstPanic.Load(); p != nil {
		panic(p)
	}
}

// Ranges splits [0, n) into one contiguous range per worker and runs
// them concurrently; used where each worker owns a chunk of the input
// or output rather than stealing items. Range boundaries depend only on
// (workers, n), so callers that merge per-range results in range order
// get deterministic output for a fixed worker count — and callers whose
// merge is order-insensitive get it for every worker count.
func Ranges(workers, n int, f func(worker, lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			f(0, 0, n)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var firstPanic atomic.Pointer[WorkerPanic]
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(worker, lo, hi int) {
			defer wg.Done()
			capture(&firstPanic, func() { f(worker, lo, hi) })
		}(w, lo, hi)
	}
	wg.Wait()
	if p := firstPanic.Load(); p != nil {
		panic(p)
	}
}

// RangeBounds returns the (lo, hi) bounds Ranges would hand to worker w
// of the given worker count; exposed so callers can preallocate
// per-range result slots and merge them in range order.
func RangeBounds(workers, n, w int) (lo, hi int) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return 0, n
	}
	chunk := (n + workers - 1) / workers
	lo = w * chunk
	hi = lo + chunk
	if hi > n {
		hi = n
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// NumRanges returns how many non-empty ranges Ranges produces for the
// given worker count and item count.
func NumRanges(workers, n int) int {
	if n == 0 {
		return 0
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return 1
	}
	chunk := (n + workers - 1) / workers
	return (n + chunk - 1) / chunk
}
