package par

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

// recoverWorkerPanic runs f and returns the *WorkerPanic it re-raised,
// or nil when f returned normally.
func recoverWorkerPanic(t *testing.T, f func()) (wp *WorkerPanic) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			var ok bool
			wp, ok = r.(*WorkerPanic)
			if !ok {
				t.Fatalf("re-raised value is %T (%v), want *WorkerPanic", r, r)
			}
		}
	}()
	f()
	return nil
}

type testPanicValue struct{ item int }

func (v testPanicValue) Error() string { return "test panic value" }

func TestIndexedWorkerPanicPropagates(t *testing.T) {
	var done atomic.Int64
	wp := recoverWorkerPanic(t, func() {
		Indexed(4, 64, func(worker, item int) {
			if item == 17 {
				panic(testPanicValue{item: item})
			}
			done.Add(1)
		})
	})
	if wp == nil {
		t.Fatal("worker panic was swallowed")
	}
	if v, ok := wp.Value.(testPanicValue); !ok || v.item != 17 {
		t.Fatalf("panic value = %#v, want testPanicValue{17}", wp.Value)
	}
	if !strings.Contains(string(wp.Stack), "TestIndexedWorkerPanicPropagates") {
		t.Fatalf("stack does not name the panicking frame:\n%s", wp.Stack)
	}
	// The panic re-raises only after every worker has stopped, so no
	// worker can still be mutating shared state.
	if n := done.Load(); n >= 64 {
		t.Fatalf("done = %d, want < 64 (panicking item must not count)", n)
	}
}

func TestIndexedPanicStopsPeers(t *testing.T) {
	// The first item panics; peers must bail out well before draining a
	// large item count. The bound is loose (workers may each grab a few
	// items before observing the flag) but catches a pool that keeps
	// grinding through all items.
	var done atomic.Int64
	wp := recoverWorkerPanic(t, func() {
		Indexed(4, 1<<20, func(worker, item int) {
			if item == 0 {
				panic("early")
			}
			done.Add(1)
		})
	})
	if wp == nil {
		t.Fatal("worker panic was swallowed")
	}
	if n := done.Load(); n > 1<<19 {
		t.Fatalf("peers drained %d items after panic, want early bail", n)
	}
}

func TestRangesWorkerPanicPropagates(t *testing.T) {
	wp := recoverWorkerPanic(t, func() {
		Ranges(4, 100, func(worker, lo, hi int) {
			if lo <= 50 && 50 < hi {
				panic(errors.New("range boom"))
			}
		})
	})
	if wp == nil {
		t.Fatal("worker panic was swallowed")
	}
	if err, ok := wp.Value.(error); !ok || err.Error() != "range boom" {
		t.Fatalf("panic value = %#v, want range boom error", wp.Value)
	}
	if !strings.Contains(string(wp.Stack), "TestRangesWorkerPanicPropagates") {
		t.Fatalf("stack does not name the panicking frame:\n%s", wp.Stack)
	}
}

func TestNestedPoolsDoNotDoubleWrap(t *testing.T) {
	wp := recoverWorkerPanic(t, func() {
		Ranges(2, 2, func(worker, lo, hi int) {
			Indexed(2, 8, func(w, item int) {
				if worker == 0 && item == 3 {
					panic("inner")
				}
			})
		})
	})
	if wp == nil {
		t.Fatal("worker panic was swallowed")
	}
	if wp.Value != "inner" {
		t.Fatalf("panic value = %#v, want the inner pool's original value", wp.Value)
	}
	if strings.Contains(string(wp.Stack), "WorkerPanic") {
		t.Fatalf("stack was re-captured at the outer pool:\n%s", wp.Stack)
	}
}

func TestSequentialPathPanicsUnwrapped(t *testing.T) {
	// With one worker the primitives are plain loops; a panic must
	// surface as the original value, not a *WorkerPanic.
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic was swallowed")
		}
		if r != "seq" {
			t.Fatalf("recovered %#v, want the original value", r)
		}
	}()
	Indexed(1, 4, func(worker, item int) {
		if item == 2 {
			panic("seq")
		}
	})
}

func TestWorkerPanicUnwrap(t *testing.T) {
	sentinel := errors.New("sentinel")
	wp := &WorkerPanic{Value: sentinel}
	if !errors.Is(wp, sentinel) {
		t.Fatal("errors.Is does not see through WorkerPanic")
	}
	if (&WorkerPanic{Value: "not an error"}).Unwrap() != nil {
		t.Fatal("non-error panic value must not unwrap")
	}
}

func TestNoPanicNoOverhead(t *testing.T) {
	// Sanity: the capture path leaves normal runs untouched.
	var sum atomic.Int64
	Indexed(4, 100, func(worker, item int) { sum.Add(int64(item)) })
	if got := sum.Load(); got != 4950 {
		t.Fatalf("sum = %d, want 4950", got)
	}
	var rsum atomic.Int64
	Ranges(4, 100, func(worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			rsum.Add(int64(i))
		}
	})
	if got := rsum.Load(); got != 4950 {
		t.Fatalf("ranges sum = %d, want 4950", got)
	}
}
