// Package types defines the value model of the engine: scalar kinds,
// runtime values, and the nested-table path type used to represent
// shortest paths (paper §2 and §3.3).
package types

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the runtime types supported by the engine.
type Kind uint8

const (
	// KindNull is the type of the untyped NULL literal.
	KindNull Kind = iota
	// KindBool is a boolean, stored as 0/1 in the integer payload.
	KindBool
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindFloat is a 64-bit IEEE float.
	KindFloat
	// KindString is a UTF-8 string.
	KindString
	// KindDate is a calendar date, stored as days since 1970-01-01.
	KindDate
	// KindPath is a nested table holding the edges of a shortest path.
	KindPath
)

// String returns the SQL-facing name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBool:
		return "BOOLEAN"
	case KindInt:
		return "BIGINT"
	case KindFloat:
		return "DOUBLE"
	case KindString:
		return "VARCHAR"
	case KindDate:
		return "DATE"
	case KindPath:
		return "NESTED TABLE"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Numeric reports whether the kind participates in arithmetic.
func (k Kind) Numeric() bool { return k == KindInt || k == KindFloat }

// Comparable reports whether values of the kind can be ordered.
func (k Kind) Comparable() bool {
	switch k {
	case KindBool, KindInt, KindFloat, KindString, KindDate:
		return true
	}
	return false
}

// Value is a single scalar (or nested-table) runtime value.
// The zero Value is the NULL of kind KindNull.
type Value struct {
	K    Kind
	Null bool
	// I holds the payload for KindBool (0/1), KindInt and KindDate.
	I int64
	// F holds the payload for KindFloat.
	F float64
	// S holds the payload for KindString.
	S string
	// P holds the payload for KindPath.
	P *Path
}

// Convenience constructors.

// NewNull returns a typed NULL.
func NewNull(k Kind) Value { return Value{K: k, Null: true} }

// NewBool returns a boolean value.
func NewBool(b bool) Value {
	var i int64
	if b {
		i = 1
	}
	return Value{K: KindBool, I: i}
}

// NewInt returns an integer value.
func NewInt(i int64) Value { return Value{K: KindInt, I: i} }

// NewFloat returns a float value.
func NewFloat(f float64) Value { return Value{K: KindFloat, F: f} }

// NewString returns a string value.
func NewString(s string) Value { return Value{K: KindString, S: s} }

// NewDate returns a date value from days since the Unix epoch.
func NewDate(days int64) Value { return Value{K: KindDate, I: days} }

// NewPath returns a nested-table value.
func NewPath(p *Path) Value { return Value{K: KindPath, P: p} }

// Bool returns the boolean payload; valid only for KindBool.
func (v Value) Bool() bool { return v.I != 0 }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.Null }

// ParseDate parses a 'YYYY-MM-DD' literal into days since the epoch.
func ParseDate(s string) (int64, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return 0, fmt.Errorf("invalid date literal %q: %w", s, err)
	}
	return t.Unix() / 86400, nil
}

// FormatDate renders days-since-epoch as 'YYYY-MM-DD'.
func FormatDate(days int64) string {
	return time.Unix(days*86400, 0).UTC().Format("2006-01-02")
}

// String renders the value the way the SQL shell prints it.
func (v Value) String() string {
	if v.Null {
		return "NULL"
	}
	switch v.K {
	case KindBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindDate:
		return FormatDate(v.I)
	case KindPath:
		if v.P == nil {
			return "[]"
		}
		return v.P.String()
	}
	return "NULL"
}

// Compare orders two non-NULL values of the same comparable kind.
// It returns -1, 0 or +1. Int and float compare numerically across
// kinds. NaN sorts after every other float and equals itself (the
// PostgreSQL convention), keeping Compare a total order — sorting,
// MIN/MAX and the parallel operators' determinism guarantee all
// require transitivity, which IEEE NaN comparisons would break.
func Compare(a, b Value) int {
	switch {
	case a.K == KindFloat || b.K == KindFloat:
		af, bf := a.AsFloat(), b.AsFloat()
		an, bn := math.IsNaN(af), math.IsNaN(bf)
		switch {
		case an && bn:
			return 0
		case an:
			return 1
		case bn:
			return -1
		case af < bf:
			return -1
		case af > bf:
			return 1
		}
		return 0
	case a.K == KindString:
		return strings.Compare(a.S, b.S)
	default: // bool, int, date
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		}
		return 0
	}
}

// Equal reports value equality under Compare semantics (NULLs are equal
// to each other for grouping purposes only; callers handling SQL
// predicate semantics must special-case NULL themselves).
func Equal(a, b Value) bool {
	if a.Null || b.Null {
		return a.Null && b.Null
	}
	if a.K == KindPath || b.K == KindPath {
		return false
	}
	return Compare(a, b) == 0
}

// AsFloat widens a numeric (or bool/date) payload to float64.
func (v Value) AsFloat() float64 {
	if v.K == KindFloat {
		return v.F
	}
	return float64(v.I)
}

// CommonKind returns the kind two operands are promoted to for
// comparison or arithmetic, and whether the promotion is legal.
func CommonKind(a, b Kind) (Kind, bool) {
	if a == b {
		return a, true
	}
	if a == KindNull {
		return b, true
	}
	if b == KindNull {
		return a, true
	}
	if a.Numeric() && b.Numeric() {
		if a == KindFloat || b == KindFloat {
			return KindFloat, true
		}
		return KindInt, true
	}
	return KindNull, false
}

// Path is a nested table: the ordered multiset of edge rows that form
// one shortest path. The columns mirror the edge table that produced it
// (paper §3.3). An empty path (source == destination) has zero rows.
type Path struct {
	// Cols holds the column names of the originating edge table.
	Cols []string
	// Kinds holds the matching column kinds.
	Kinds []Kind
	// Rows holds one entry per edge, in traversal order from the
	// source to the destination.
	Rows [][]Value
}

// Len returns the number of edges (hops) in the path.
func (p *Path) Len() int {
	if p == nil {
		return 0
	}
	return len(p.Rows)
}

// String renders the path as a compact one-line nested table.
func (p *Path) String() string {
	if p == nil || len(p.Rows) == 0 {
		return "[]"
	}
	var b strings.Builder
	b.WriteByte('[')
	for i, r := range p.Rows {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteByte('(')
		for j, v := range r {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(v.String())
		}
		b.WriteByte(')')
	}
	b.WriteByte(']')
	return b.String()
}
