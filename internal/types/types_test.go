package types

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "NULL", KindBool: "BOOLEAN", KindInt: "BIGINT",
		KindFloat: "DOUBLE", KindString: "VARCHAR", KindDate: "DATE",
		KindPath: "NESTED TABLE",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestKindPredicates(t *testing.T) {
	if !KindInt.Numeric() || !KindFloat.Numeric() {
		t.Error("int/float must be numeric")
	}
	if KindString.Numeric() || KindDate.Numeric() || KindPath.Numeric() {
		t.Error("string/date/path must not be numeric")
	}
	for _, k := range []Kind{KindBool, KindInt, KindFloat, KindString, KindDate} {
		if !k.Comparable() {
			t.Errorf("%v must be comparable", k)
		}
	}
	if KindPath.Comparable() || KindNull.Comparable() {
		t.Error("path/null must not be comparable")
	}
}

func TestValueConstructorsAndString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{NewInt(42), "42"},
		{NewInt(-7), "-7"},
		{NewFloat(1.5), "1.5"},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
		{NewString("hi"), "hi"},
		{NewNull(KindInt), "NULL"},
		{NewDate(0), "1970-01-01"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestParseAndFormatDate(t *testing.T) {
	d, err := ParseDate("2011-01-01")
	if err != nil {
		t.Fatal(err)
	}
	if FormatDate(d) != "2011-01-01" {
		t.Fatalf("round-trip failed: %s", FormatDate(d))
	}
	if _, err := ParseDate("not-a-date"); err == nil {
		t.Fatal("expected error for malformed date")
	}
	if _, err := ParseDate("2011-13-45"); err == nil {
		t.Fatal("expected error for invalid date")
	}
}

func TestPropertyDateRoundTrip(t *testing.T) {
	f := func(days uint16) bool {
		d := int64(days)
		back, err := ParseDate(FormatDate(d))
		return err == nil && back == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewFloat(1.5), NewInt(2), -1},
		{NewInt(2), NewFloat(1.5), 1},
		{NewString("a"), NewString("b"), -1},
		{NewBool(false), NewBool(true), -1},
		{NewDate(10), NewDate(20), -1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestPropertyCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return Compare(NewInt(a), NewInt(b)) == -Compare(NewInt(b), NewInt(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEqualNullSemantics(t *testing.T) {
	if !Equal(NewNull(KindInt), NewNull(KindString)) {
		t.Error("NULLs group together")
	}
	if Equal(NewNull(KindInt), NewInt(0)) {
		t.Error("NULL != 0")
	}
	if !Equal(NewInt(5), NewInt(5)) || Equal(NewInt(5), NewInt(6)) {
		t.Error("int equality broken")
	}
	// Numeric cross-kind equality.
	if !Equal(NewInt(2), NewFloat(2.0)) {
		t.Error("2 must equal 2.0")
	}
}

func TestCommonKind(t *testing.T) {
	cases := []struct {
		a, b Kind
		want Kind
		ok   bool
	}{
		{KindInt, KindInt, KindInt, true},
		{KindInt, KindFloat, KindFloat, true},
		{KindFloat, KindInt, KindFloat, true},
		{KindNull, KindString, KindString, true},
		{KindDate, KindNull, KindDate, true},
		{KindString, KindInt, KindNull, false},
		{KindBool, KindDate, KindNull, false},
	}
	for _, c := range cases {
		got, ok := CommonKind(c.a, c.b)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("CommonKind(%v, %v) = (%v, %v), want (%v, %v)", c.a, c.b, got, ok, c.want, c.ok)
		}
	}
}

func TestPathLenAndString(t *testing.T) {
	var nilPath *Path
	if nilPath.Len() != 0 {
		t.Error("nil path has length 0")
	}
	empty := &Path{Cols: []string{"s", "d"}, Kinds: []Kind{KindInt, KindInt}}
	if empty.Len() != 0 || empty.String() != "[]" {
		t.Errorf("empty path: len=%d str=%q", empty.Len(), empty.String())
	}
	p := &Path{
		Cols:  []string{"s", "d"},
		Kinds: []Kind{KindInt, KindInt},
		Rows: [][]Value{
			{NewInt(1), NewInt(2)},
			{NewInt(2), NewInt(3)},
		},
	}
	if p.Len() != 2 {
		t.Errorf("len = %d, want 2", p.Len())
	}
	if got := p.String(); got != "[(1, 2); (2, 3)]" {
		t.Errorf("String() = %q", got)
	}
}

func TestAsFloat(t *testing.T) {
	if NewInt(3).AsFloat() != 3.0 {
		t.Error("int widening failed")
	}
	if NewFloat(2.5).AsFloat() != 2.5 {
		t.Error("float identity failed")
	}
	if NewBool(true).AsFloat() != 1.0 {
		t.Error("bool widening failed")
	}
}
