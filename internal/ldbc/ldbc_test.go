package ldbc

import (
	"testing"

	"graphsql/internal/storage"
)

func TestSizesMatchPaperTable1(t *testing.T) {
	want := map[int][2]int{
		1:   {9_892, 362_000},
		3:   {24_000, 1_132_000},
		10:  {65_000, 3_894_000},
		30:  {165_000, 12_115_000},
		100: {448_000, 39_998_000},
		300: {1_128_000, 119_225_000},
	}
	for sf, w := range want {
		v, e, err := Sizes(sf)
		if err != nil {
			t.Fatal(err)
		}
		if v != w[0] || e != w[1] {
			t.Errorf("SF%d: (%d, %d), want (%d, %d)", sf, v, e, w[0], w[1])
		}
	}
	if _, _, err := Sizes(7); err == nil {
		t.Fatal("unknown SF must error")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Config{SF: 1, Shrink: 50, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{SF: 1, Shrink: 50, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatal("same config must give same sizes")
	}
	for i := range a.Src {
		if a.Src[i] != b.Src[i] || a.Dst[i] != b.Dst[i] || a.Weight[i] != b.Weight[i] {
			t.Fatalf("edge %d differs between runs", i)
		}
	}
	c, err := Generate(Config{SF: 1, Shrink: 50, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Src {
		if a.Src[i] != c.Src[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should give different graphs")
	}
}

func TestGenerateShapeInvariants(t *testing.T) {
	ds, err := Generate(Config{SF: 1, Shrink: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantV, wantE, _ := Sizes(1)
	if ds.NumVertices() != wantV/10 {
		t.Fatalf("|V| = %d, want %d", ds.NumVertices(), wantV/10)
	}
	// Friendships are symmetric pairs; edge count is even and within
	// one friendship of the target.
	if ds.NumEdges()%2 != 0 {
		t.Fatal("directed edges must come in pairs")
	}
	if diff := wantE/10 - ds.NumEdges(); diff < 0 || diff > 1 {
		t.Fatalf("|E| = %d, want ~%d", ds.NumEdges(), wantE/10)
	}
	ids := map[int64]bool{}
	for _, id := range ds.PersonIDs {
		if ids[id] {
			t.Fatal("duplicate person id")
		}
		ids[id] = true
	}
	for i := range ds.Src {
		if ds.Src[i] == ds.Dst[i] {
			t.Fatalf("self loop at %d", i)
		}
		if !ids[ds.Src[i]] || !ids[ds.Dst[i]] {
			t.Fatalf("edge %d references unknown person", i)
		}
		if ds.Weight[i] <= 0 || ds.IWeight[i] <= 0 {
			t.Fatalf("non-positive weight at %d", i)
		}
		if ds.CreationDays[i] < 14610 || ds.CreationDays[i] >= 14610+1095 {
			t.Fatalf("creation date out of range at %d", i)
		}
	}
	// Symmetry: edge 2k+1 is the reverse of edge 2k with equal weight.
	for i := 0; i+1 < ds.NumEdges(); i += 2 {
		if ds.Src[i] != ds.Dst[i+1] || ds.Dst[i] != ds.Src[i+1] || ds.Weight[i] != ds.Weight[i+1] {
			t.Fatalf("pair %d not symmetric", i)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Config{SF: 7}); err == nil {
		t.Fatal("unknown SF must error")
	}
	if _, err := Generate(Config{SF: 1, Shrink: 10_000}); err == nil {
		t.Fatal("over-shrunk dataset must error")
	}
}

func TestLoadIntoCatalog(t *testing.T) {
	ds, err := Generate(Config{SF: 1, Shrink: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cat := storage.NewCatalog()
	if err := ds.Load(cat); err != nil {
		t.Fatal(err)
	}
	persons, ok := cat.Table("persons")
	if !ok || persons.NumRows() != ds.NumVertices() {
		t.Fatal("persons table wrong")
	}
	friends, ok := cat.Table("friends")
	if !ok || friends.NumRows() != ds.NumEdges() {
		t.Fatal("friends table wrong")
	}
	if err := friends.Chunk().Validate(); err != nil {
		t.Fatal(err)
	}
	// Loading twice must fail (tables exist).
	if err := ds.Load(cat); err == nil {
		t.Fatal("double load must fail")
	}
}

func TestRandomPairsUniformAndDeterministic(t *testing.T) {
	ds, err := Generate(Config{SF: 1, Shrink: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s1, d1 := ds.RandomPairs(100, 5)
	s2, d2 := ds.RandomPairs(100, 5)
	for i := range s1 {
		if s1[i] != s2[i] || d1[i] != d2[i] {
			t.Fatal("pairs must be deterministic per seed")
		}
	}
	valid := map[int64]bool{}
	for _, id := range ds.PersonIDs {
		valid[id] = true
	}
	for i := range s1 {
		if !valid[s1[i]] || !valid[d1[i]] {
			t.Fatalf("pair %d references unknown person", i)
		}
	}
}

func TestScaleFactorsList(t *testing.T) {
	sfs := ScaleFactors()
	if len(sfs) != 6 || sfs[0] != 1 || sfs[5] != 300 {
		t.Fatalf("scale factors = %v", sfs)
	}
}

func TestPersonIDSparse(t *testing.T) {
	if PersonID(0) == PersonID(1) {
		t.Fatal("ids must be distinct")
	}
	if PersonID(1)-PersonID(0) == 1 {
		t.Fatal("ids should be sparse to exercise dictionary encoding")
	}
}
