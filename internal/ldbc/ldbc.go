// Package ldbc is a deterministic substitute for the LDBC SNB DATAGEN
// used in the paper's evaluation (§4). It generates a social network
// of persons and friendship edges sized to match Table 1 of the paper
// per scale factor: undirected friendships stored as two directed
// edges, each carrying a creationDate and a strictly positive affinity
// weight (the precomputed Q14 weight), plus an integer weight variant
// for the radix-queue code path.
//
// The degree distribution is skewed (power-law-ish) like a social
// graph: one endpoint of each friendship is drawn uniformly, the other
// with quadratic preference towards low person indices, which yields a
// heavy-tailed degree distribution without the memory cost of full
// preferential attachment bookkeeping.
package ldbc

import (
	"fmt"

	"graphsql/internal/storage"
	"graphsql/internal/types"
)

// tableSizes reproduces Table 1 of the paper: vertices and *directed*
// edges per scale factor (edges are double the undirected friendship
// count, §4).
var tableSizes = map[int]struct{ V, E int }{
	1:   {9_892, 362_000},
	3:   {24_000, 1_132_000},
	10:  {65_000, 3_894_000},
	30:  {165_000, 12_115_000},
	100: {448_000, 39_998_000},
	300: {1_128_000, 119_225_000},
}

// ScaleFactors lists the supported LDBC scale factors in order.
func ScaleFactors() []int { return []int{1, 3, 10, 30, 100, 300} }

// Sizes returns the paper's Table 1 vertex and directed-edge counts
// for a scale factor.
func Sizes(sf int) (vertices, directedEdges int, err error) {
	s, ok := tableSizes[sf]
	if !ok {
		return 0, 0, fmt.Errorf("ldbc: unknown scale factor %d (supported: 1, 3, 10, 30, 100, 300)", sf)
	}
	return s.V, s.E, nil
}

// Config controls dataset generation.
type Config struct {
	// SF is the LDBC scale factor (1, 3, 10, 30, 100, 300).
	SF int
	// Shrink divides both |V| and |E| by this factor (minimum 1),
	// producing a "mini" dataset with the same shape; used to keep
	// benchmark runs laptop-sized. 1 reproduces Table 1 exactly.
	Shrink int
	// Seed makes generation deterministic; 0 selects a fixed default.
	Seed uint64
}

// Dataset is a generated social network in columnar form.
type Dataset struct {
	// SF and Shrink echo the configuration.
	SF, Shrink int
	// PersonIDs holds the (sparse, non-dense) person identifiers.
	PersonIDs []int64
	// FirstNames and LastNames parallel PersonIDs.
	FirstNames []string
	LastNames  []string
	// Src and Dst hold the directed friendship edges (person ids).
	Src, Dst []int64
	// CreationDays holds days-since-epoch per edge.
	CreationDays []int64
	// Weight holds the positive float affinity per edge; IWeight is
	// the integer variant (1..10) for the radix queue path.
	Weight  []float64
	IWeight []int64
}

// NumVertices returns |V|.
func (d *Dataset) NumVertices() int { return len(d.PersonIDs) }

// NumEdges returns the number of directed edges.
func (d *Dataset) NumEdges() int { return len(d.Src) }

// rng is a SplitMix64 generator: tiny, fast and deterministic.
type rng struct{ state uint64 }

func newRng(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &rng{state: seed}
}

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n).
func (r *rng) Intn(n int) int { return int(r.next() % uint64(n)) }

// Float64 returns a uniform float in [0, 1).
func (r *rng) Float64() float64 { return float64(r.next()>>11) / (1 << 53) }

var firstNames = []string{
	"Mahinda", "Carmen", "Chen", "Hans", "Jan", "Alim", "Ken", "Eve",
	"Otto", "Bryn", "Jun", "Ana", "Wei", "Lei", "Abdul", "Ivan",
	"Jose", "Lin", "Noor", "Mia", "Yang", "Rahul", "Sara", "Finn",
}

var lastNames = []string{
	"Perera", "Lepland", "Wang", "Johansson", "Zhang", "Garcia",
	"Tanaka", "Kumar", "Muller", "Silva", "Khan", "Li", "Novak",
	"Santos", "Kim", "Ahmed", "Costa", "Sato", "Ali", "Chen",
}

// PersonID maps a dense person index to its sparse identifier. Sparse
// ids exercise the dictionary encoding of §3.1 (the LDBC generator
// also emits non-dense ids).
func PersonID(i int) int64 { return int64(i)*13 + 933 }

// Generate builds a dataset. Generation is O(|V| + |E|) time and
// memory and fully deterministic for a (SF, Shrink, Seed) triple.
func Generate(cfg Config) (*Dataset, error) {
	v, e, err := Sizes(cfg.SF)
	if err != nil {
		return nil, err
	}
	shrink := cfg.Shrink
	if shrink < 1 {
		shrink = 1
	}
	v /= shrink
	e /= shrink
	if v < 4 {
		return nil, fmt.Errorf("ldbc: shrink %d leaves fewer than 4 persons at SF %d", shrink, cfg.SF)
	}
	friendships := e / 2

	r := newRng(cfg.Seed)
	ds := &Dataset{
		SF:           cfg.SF,
		Shrink:       shrink,
		PersonIDs:    make([]int64, v),
		FirstNames:   make([]string, v),
		LastNames:    make([]string, v),
		Src:          make([]int64, 0, friendships*2),
		Dst:          make([]int64, 0, friendships*2),
		CreationDays: make([]int64, 0, friendships*2),
		Weight:       make([]float64, 0, friendships*2),
		IWeight:      make([]int64, 0, friendships*2),
	}
	for i := 0; i < v; i++ {
		ds.PersonIDs[i] = PersonID(i)
		ds.FirstNames[i] = firstNames[r.Intn(len(firstNames))]
		ds.LastNames[i] = lastNames[r.Intn(len(lastNames))]
	}

	// Date range ~2010-01-01 .. 2012-12-31 (days since epoch).
	const dayLo, daySpan = 14610, 1095

	for f := 0; f < friendships; f++ {
		a := r.Intn(v)
		// Quadratic skew towards low indices gives hub vertices.
		u := r.Float64()
		b := int(u * u * float64(v))
		if b >= v {
			b = v - 1
		}
		if a == b {
			b = (b + 1) % v
		}
		day := dayLo + int64(r.Intn(daySpan))
		w := 0.5 + r.Float64()*4.5
		iw := int64(1 + r.Intn(10))
		ds.Src = append(ds.Src, ds.PersonIDs[a], ds.PersonIDs[b])
		ds.Dst = append(ds.Dst, ds.PersonIDs[b], ds.PersonIDs[a])
		ds.CreationDays = append(ds.CreationDays, day, day)
		ds.Weight = append(ds.Weight, w, w)
		ds.IWeight = append(ds.IWeight, iw, iw)
	}
	return ds, nil
}

// Load bulk-loads the dataset into a catalog as the tables
// persons(id, firstName, lastName) and friends(src, dst, creationDate,
// weight, iweight). It bypasses the SQL layer for speed.
func (d *Dataset) Load(cat *storage.Catalog) error {
	persons, err := cat.CreateTable("persons", storage.Schema{
		{Name: "id", Kind: types.KindInt},
		{Name: "firstName", Kind: types.KindString},
		{Name: "lastName", Kind: types.KindString},
	})
	if err != nil {
		return err
	}
	friends, err := cat.CreateTable("friends", storage.Schema{
		{Name: "src", Kind: types.KindInt},
		{Name: "dst", Kind: types.KindInt},
		{Name: "creationDate", Kind: types.KindDate},
		{Name: "weight", Kind: types.KindFloat},
		{Name: "iweight", Kind: types.KindInt},
	})
	if err != nil {
		return err
	}
	for i := range d.PersonIDs {
		persons.Cols[0].AppendInt(d.PersonIDs[i])
		persons.Cols[1].AppendString(d.FirstNames[i])
		persons.Cols[2].AppendString(d.LastNames[i])
	}
	for i := range d.Src {
		friends.Cols[0].AppendInt(d.Src[i])
		friends.Cols[1].AppendInt(d.Dst[i])
		friends.Cols[2].AppendInt(d.CreationDays[i])
		friends.Cols[3].AppendFloat(d.Weight[i])
		friends.Cols[4].AppendInt(d.IWeight[i])
	}
	return nil
}

// RandomPairs draws n uniform ⟨source, destination⟩ person-id pairs,
// the workload of §4 ("randomly generated out of the set of the
// generated persons and according to a uniform distribution").
func (d *Dataset) RandomPairs(n int, seed uint64) (src, dst []int64) {
	r := newRng(seed ^ 0xA5A5A5A5)
	src = make([]int64, n)
	dst = make([]int64, n)
	v := len(d.PersonIDs)
	for i := 0; i < n; i++ {
		src[i] = d.PersonIDs[r.Intn(v)]
		dst[i] = d.PersonIDs[r.Intn(v)]
	}
	return src, dst
}
