package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"graphsql/internal/types"
)

// Table is a named base table: a schema and its column vectors.
type Table struct {
	Name   string
	Schema Schema
	Cols   []*Column
}

// NumRows returns the table cardinality.
func (t *Table) NumRows() int {
	if len(t.Cols) == 0 {
		return 0
	}
	return t.Cols[0].Len()
}

// Chunk exposes the table storage as a zero-copy chunk.
func (t *Table) Chunk() *Chunk {
	return &Chunk{Schema: t.Schema, Cols: t.Cols}
}

// AppendRow inserts one row; values must match the schema arity.
func (t *Table) AppendRow(row []types.Value) error {
	if len(row) != len(t.Schema) {
		return fmt.Errorf("table %s: insert arity %d, want %d", t.Name, len(row), len(t.Schema))
	}
	for j, v := range row {
		if !v.Null {
			want := t.Schema[j].Kind
			got := v.K
			if got != want && !(want == types.KindFloat && got == types.KindInt) {
				return fmt.Errorf("table %s column %s: cannot insert %v into %v",
					t.Name, t.Schema[j].Name, got, want)
			}
		}
		t.Cols[j].Append(row[j])
	}
	return nil
}

// Catalog is the collection of base tables. It is safe for concurrent
// readers; writers must be serialized by the caller (the facade DB does
// this with an RWMutex).
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// CreateTable registers a new table. Column names must be unique within
// the table (case-insensitively).
func (c *Catalog) CreateTable(name string, schema Schema) (*Table, error) {
	key := strings.ToLower(name)
	seen := make(map[string]bool, len(schema))
	for i := range schema {
		cn := strings.ToLower(schema[i].Name)
		if seen[cn] {
			return nil, fmt.Errorf("create table %s: duplicate column %q", name, schema[i].Name)
		}
		seen[cn] = true
		// Base table columns are qualified by the table name itself.
		schema[i].Table = name
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[key]; ok {
		return nil, fmt.Errorf("table %q already exists", name)
	}
	t := &Table{Name: name, Schema: schema, Cols: make([]*Column, len(schema))}
	for i, m := range schema {
		t.Cols[i] = NewColumn(m.Kind, 0)
	}
	c.tables[key] = t
	return t, nil
}

// DropTable removes a table.
func (c *Catalog) DropTable(name string) error {
	key := strings.ToLower(name)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[key]; !ok {
		return fmt.Errorf("table %q does not exist", name)
	}
	delete(c.tables, key)
	return nil
}

// Table looks up a table by name (case-insensitive).
func (c *Catalog) Table(name string) (*Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[strings.ToLower(name)]
	return t, ok
}

// TableNames returns the sorted list of table names.
func (c *Catalog) TableNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	return names
}
