// Package storage implements the columnar physical layer: typed column
// vectors with null masks, materialized chunks (intermediate results),
// base tables and the catalog. The engine follows the MonetDB execution
// model the paper builds on: every operator fully materializes its
// result (paper §3.3).
package storage

import (
	"fmt"

	"graphsql/internal/par"
	"graphsql/internal/types"
)

// Column is a typed vector of values with an optional null mask.
// Exactly one payload slice is in use, selected by Kind.
type Column struct {
	Kind types.Kind
	// Ints backs KindBool (0/1), KindInt and KindDate.
	Ints []int64
	// Floats backs KindFloat.
	Floats []float64
	// Strs backs KindString.
	Strs []string
	// Paths backs KindPath.
	Paths []*types.Path
	// Nulls marks NULL entries; nil means the column has no NULLs.
	Nulls []bool
	n     int
}

// NewColumn returns an empty column of the given kind with capacity cap.
func NewColumn(kind types.Kind, capacity int) *Column {
	c := &Column{Kind: kind}
	switch kind {
	case types.KindFloat:
		c.Floats = make([]float64, 0, capacity)
	case types.KindString:
		c.Strs = make([]string, 0, capacity)
	case types.KindPath:
		c.Paths = make([]*types.Path, 0, capacity)
	default:
		c.Ints = make([]int64, 0, capacity)
	}
	return c
}

// Len returns the number of entries in the column.
func (c *Column) Len() int { return c.n }

// HasNulls reports whether any entry is NULL.
func (c *Column) HasNulls() bool {
	if c.Nulls == nil {
		return false
	}
	for _, b := range c.Nulls {
		if b {
			return true
		}
	}
	return false
}

// IsNull reports whether entry i is NULL.
func (c *Column) IsNull(i int) bool { return c.Nulls != nil && c.Nulls[i] }

// ensureNulls materializes the null mask.
func (c *Column) ensureNulls() {
	if c.Nulls == nil {
		c.Nulls = make([]bool, c.n, max(c.n, 8))
	}
}

// Append adds a value to the column, converting NULL-kind values into
// typed NULLs. The value kind must match the column kind (ints widen to
// floats automatically).
func (c *Column) Append(v types.Value) {
	if v.Null {
		c.AppendNull()
		return
	}
	switch c.Kind {
	case types.KindFloat:
		c.Floats = append(c.Floats, v.AsFloat())
	case types.KindString:
		c.Strs = append(c.Strs, v.S)
	case types.KindPath:
		c.Paths = append(c.Paths, v.P)
	default:
		c.Ints = append(c.Ints, v.I)
	}
	if c.Nulls != nil {
		c.Nulls = append(c.Nulls, false)
	}
	c.n++
}

// AppendNull adds a NULL entry.
func (c *Column) AppendNull() {
	c.ensureNulls()
	switch c.Kind {
	case types.KindFloat:
		c.Floats = append(c.Floats, 0)
	case types.KindString:
		c.Strs = append(c.Strs, "")
	case types.KindPath:
		c.Paths = append(c.Paths, nil)
	default:
		c.Ints = append(c.Ints, 0)
	}
	c.Nulls = append(c.Nulls, true)
	c.n++
}

// AppendInt adds a non-NULL integer-backed entry without boxing.
func (c *Column) AppendInt(i int64) {
	c.Ints = append(c.Ints, i)
	if c.Nulls != nil {
		c.Nulls = append(c.Nulls, false)
	}
	c.n++
}

// AppendFloat adds a non-NULL float entry without boxing.
func (c *Column) AppendFloat(f float64) {
	c.Floats = append(c.Floats, f)
	if c.Nulls != nil {
		c.Nulls = append(c.Nulls, false)
	}
	c.n++
}

// AppendString adds a non-NULL string entry without boxing.
func (c *Column) AppendString(s string) {
	c.Strs = append(c.Strs, s)
	if c.Nulls != nil {
		c.Nulls = append(c.Nulls, false)
	}
	c.n++
}

// AppendPath adds a non-NULL path entry without boxing.
func (c *Column) AppendPath(p *types.Path) {
	c.Paths = append(c.Paths, p)
	if c.Nulls != nil {
		c.Nulls = append(c.Nulls, false)
	}
	c.n++
}

// Get returns entry i as a boxed value.
func (c *Column) Get(i int) types.Value {
	if c.IsNull(i) {
		return types.NewNull(c.Kind)
	}
	switch c.Kind {
	case types.KindFloat:
		return types.NewFloat(c.Floats[i])
	case types.KindString:
		return types.NewString(c.Strs[i])
	case types.KindPath:
		return types.NewPath(c.Paths[i])
	case types.KindBool:
		return types.NewBool(c.Ints[i] != 0)
	case types.KindDate:
		return types.NewDate(c.Ints[i])
	default:
		return types.NewInt(c.Ints[i])
	}
}

// Slice returns a read-only view of rows [lo, hi) sharing c's backing
// arrays; the capacities are clamped so an append through the view can
// never write into c. Used by the row-batch cursor to hand out result
// windows without copying.
func (c *Column) Slice(lo, hi int) *Column {
	out := &Column{Kind: c.Kind, n: hi - lo}
	switch c.Kind {
	case types.KindFloat:
		out.Floats = c.Floats[lo:hi:hi]
	case types.KindString:
		out.Strs = c.Strs[lo:hi:hi]
	case types.KindPath:
		out.Paths = c.Paths[lo:hi:hi]
	default:
		out.Ints = c.Ints[lo:hi:hi]
	}
	if c.Nulls != nil {
		out.Nulls = c.Nulls[lo:hi:hi]
	}
	return out
}

// Snapshot returns a read-only view of the column's current rows that
// stays stable while the original keeps growing: the backing arrays are
// shared (no copy), but the view's length and capacity are clamped to
// the current row count, so later in-place appends land beyond it and
// append-triggered reallocations move the writer to a fresh array. The
// snapshot is NOT isolated from in-place overwrites of existing rows —
// the engine never does that (DELETE and reloads swap whole columns).
func (c *Column) Snapshot() *Column {
	n := c.n
	out := &Column{Kind: c.Kind, n: n}
	switch c.Kind {
	case types.KindFloat:
		out.Floats = c.Floats[:n:n]
	case types.KindString:
		out.Strs = c.Strs[:n:n]
	case types.KindPath:
		out.Paths = c.Paths[:n:n]
	default:
		out.Ints = c.Ints[:n:n]
	}
	if c.Nulls != nil {
		out.Nulls = c.Nulls[:n:n]
	}
	return out
}

// Gather returns a new column holding the entries of c at the given
// row indices, in order.
func (c *Column) Gather(rows []int) *Column {
	out := NewColumn(c.Kind, len(rows))
	switch c.Kind {
	case types.KindFloat:
		for _, r := range rows {
			out.Floats = append(out.Floats, c.Floats[r])
		}
	case types.KindString:
		for _, r := range rows {
			out.Strs = append(out.Strs, c.Strs[r])
		}
	case types.KindPath:
		for _, r := range rows {
			out.Paths = append(out.Paths, c.Paths[r])
		}
	default:
		for _, r := range rows {
			out.Ints = append(out.Ints, c.Ints[r])
		}
	}
	out.n = len(rows)
	if c.Nulls != nil {
		out.Nulls = make([]bool, len(rows))
		for i, r := range rows {
			out.Nulls[i] = c.Nulls[r]
		}
	}
	return out
}

// GatherP is Gather with the copies partitioned over up to workers
// goroutines in contiguous output ranges; the result is identical to
// Gather at every worker count. Callers gate by size — with workers
// <= 1 (or few rows) it degrades to a plain loop.
func (c *Column) GatherP(rows []int, workers int) *Column {
	if workers <= 1 {
		return c.Gather(rows)
	}
	n := len(rows)
	out := &Column{Kind: c.Kind, n: n}
	switch c.Kind {
	case types.KindFloat:
		out.Floats = make([]float64, n)
	case types.KindString:
		out.Strs = make([]string, n)
	case types.KindPath:
		out.Paths = make([]*types.Path, n)
	default:
		out.Ints = make([]int64, n)
	}
	if c.Nulls != nil {
		out.Nulls = make([]bool, n)
	}
	par.Ranges(workers, n, func(_, lo, hi int) {
		switch c.Kind {
		case types.KindFloat:
			for i := lo; i < hi; i++ {
				out.Floats[i] = c.Floats[rows[i]]
			}
		case types.KindString:
			for i := lo; i < hi; i++ {
				out.Strs[i] = c.Strs[rows[i]]
			}
		case types.KindPath:
			for i := lo; i < hi; i++ {
				out.Paths[i] = c.Paths[rows[i]]
			}
		default:
			for i := lo; i < hi; i++ {
				out.Ints[i] = c.Ints[rows[i]]
			}
		}
		if c.Nulls != nil {
			for i := lo; i < hi; i++ {
				out.Nulls[i] = c.Nulls[rows[i]]
			}
		}
	})
	return out
}

// GatherNullExtend is GatherP where a row index of -1 yields a NULL
// entry (left-outer-join null extension). The null mask is dropped
// when no output entry is NULL, matching what an append-based copy
// would have produced.
func (c *Column) GatherNullExtend(rows []int, workers int) *Column {
	n := len(rows)
	out := &Column{Kind: c.Kind, n: n, Nulls: make([]bool, n)}
	switch c.Kind {
	case types.KindFloat:
		out.Floats = make([]float64, n)
	case types.KindString:
		out.Strs = make([]string, n)
	case types.KindPath:
		out.Paths = make([]*types.Path, n)
	default:
		out.Ints = make([]int64, n)
	}
	par.Ranges(workers, n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			r := rows[i]
			if r < 0 || c.IsNull(r) {
				out.Nulls[i] = true
				continue
			}
			switch c.Kind {
			case types.KindFloat:
				out.Floats[i] = c.Floats[r]
			case types.KindString:
				out.Strs[i] = c.Strs[r]
			case types.KindPath:
				out.Paths[i] = c.Paths[r]
			default:
				out.Ints[i] = c.Ints[r]
			}
		}
	})
	hasNull := false
	for _, b := range out.Nulls {
		if b {
			hasNull = true
			break
		}
	}
	if !hasNull {
		out.Nulls = nil
	}
	return out
}

// Extend appends every entry of src, which must have the same kind, to
// c; equivalent to appending src's rows one by one.
func (c *Column) Extend(src *Column) {
	if c.Nulls != nil || src.Nulls != nil {
		c.ensureNulls()
		if src.Nulls != nil {
			c.Nulls = append(c.Nulls, src.Nulls...)
		} else {
			c.Nulls = append(c.Nulls, make([]bool, src.n)...)
		}
	}
	switch c.Kind {
	case types.KindFloat:
		c.Floats = append(c.Floats, src.Floats...)
	case types.KindString:
		c.Strs = append(c.Strs, src.Strs...)
	case types.KindPath:
		c.Paths = append(c.Paths, src.Paths...)
	default:
		c.Ints = append(c.Ints, src.Ints...)
	}
	c.n += src.n
}

// ColumnFromInts wraps a fully built integer-backed payload slice
// (KindInt, KindBool or KindDate) as a non-NULL column, taking
// ownership of the slice. Used by parallel materialization paths that
// fill disjoint ranges directly.
func ColumnFromInts(kind types.Kind, ints []int64) *Column {
	return &Column{Kind: kind, Ints: ints, n: len(ints)}
}

// ColumnFromFloats wraps a fully built float payload slice as a
// non-NULL KindFloat column, taking ownership of the slice.
func ColumnFromFloats(fs []float64) *Column {
	return &Column{Kind: types.KindFloat, Floats: fs, n: len(fs)}
}

// ColumnFromPaths wraps a fully built path payload slice as a non-NULL
// KindPath column, taking ownership of the slice.
func ColumnFromPaths(ps []*types.Path) *Column {
	return &Column{Kind: types.KindPath, Paths: ps, n: len(ps)}
}

// ConstColumn builds a column of n copies of value v.
func ConstColumn(v types.Value, n int) *Column {
	kind := v.K
	if kind == types.KindNull {
		kind = types.KindInt
	}
	c := NewColumn(kind, n)
	for i := 0; i < n; i++ {
		c.Append(v)
	}
	return c
}

// Validate checks internal consistency; used by tests and debug builds.
func (c *Column) Validate() error {
	want := c.n
	var got int
	switch c.Kind {
	case types.KindFloat:
		got = len(c.Floats)
	case types.KindString:
		got = len(c.Strs)
	case types.KindPath:
		got = len(c.Paths)
	default:
		got = len(c.Ints)
	}
	if got != want {
		return fmt.Errorf("column kind %v: payload len %d != n %d", c.Kind, got, want)
	}
	if c.Nulls != nil && len(c.Nulls) != want {
		return fmt.Errorf("column kind %v: null mask len %d != n %d", c.Kind, len(c.Nulls), want)
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
