package storage

import (
	"fmt"
	"strings"

	"graphsql/internal/types"
)

// ColMeta describes one column of a schema: its (optionally qualified)
// name and kind.
type ColMeta struct {
	// Table is the binding qualifier (table name or alias); may be "".
	Table string
	// Name is the column name.
	Name string
	// Kind is the column type.
	Kind types.Kind
}

// QualifiedName renders table.name or just name.
func (m ColMeta) QualifiedName() string {
	if m.Table == "" {
		return m.Name
	}
	return m.Table + "." + m.Name
}

// Schema is an ordered list of column descriptors.
type Schema []ColMeta

// String renders the schema for error messages.
func (s Schema) String() string {
	parts := make([]string, len(s))
	for i, m := range s {
		parts[i] = fmt.Sprintf("%s %v", m.QualifiedName(), m.Kind)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Chunk is a fully materialized intermediate result: a schema plus one
// column vector per schema entry, all of equal length.
type Chunk struct {
	Schema Schema
	Cols   []*Column
}

// NewChunk returns an empty chunk with freshly allocated columns.
func NewChunk(schema Schema) *Chunk {
	cols := make([]*Column, len(schema))
	for i, m := range schema {
		cols[i] = NewColumn(m.Kind, 0)
	}
	return &Chunk{Schema: schema, Cols: cols}
}

// NumRows returns the row count.
func (c *Chunk) NumRows() int {
	if len(c.Cols) == 0 {
		return 0
	}
	return c.Cols[0].Len()
}

// NumCols returns the column count.
func (c *Chunk) NumCols() int { return len(c.Cols) }

// Row materializes row i as boxed values (used by row-oriented
// consumers such as the client API and tests).
func (c *Chunk) Row(i int) []types.Value {
	out := make([]types.Value, len(c.Cols))
	for j, col := range c.Cols {
		out[j] = col.Get(i)
	}
	return out
}

// AppendRow appends a boxed row; the row length must match the schema.
func (c *Chunk) AppendRow(row []types.Value) {
	for j, v := range row {
		c.Cols[j].Append(v)
	}
}

// Gather returns a new chunk containing the given rows of c, in order.
func (c *Chunk) Gather(rows []int) *Chunk {
	out := &Chunk{Schema: c.Schema, Cols: make([]*Column, len(c.Cols))}
	for j, col := range c.Cols {
		out.Cols[j] = col.Gather(rows)
	}
	return out
}

// GatherP is Gather with each column's copies partitioned over up to
// workers goroutines; identical output at every worker count.
func (c *Chunk) GatherP(rows []int, workers int) *Chunk {
	out := &Chunk{Schema: c.Schema, Cols: make([]*Column, len(c.Cols))}
	for j, col := range c.Cols {
		out.Cols[j] = col.GatherP(rows, workers)
	}
	return out
}

// Slice returns a zero-copy view of rows [lo, hi); see Column.Slice.
func (c *Chunk) Slice(lo, hi int) *Chunk {
	out := &Chunk{Schema: c.Schema, Cols: make([]*Column, len(c.Cols))}
	for j, col := range c.Cols {
		out.Cols[j] = col.Slice(lo, hi)
	}
	return out
}

// Snapshot returns a stable zero-copy view of the chunk's current rows
// that can outlive the lock it was taken under: the column slice and
// every column header are copied (so swapping a column pointer in the
// source, as DELETE and reloads do, cannot reach the view) while the
// backing arrays are shared length-clamped (so in-place appends land
// beyond the view); see Column.Snapshot. The row-batch cursor takes one
// before the read lock is released.
func (c *Chunk) Snapshot() *Chunk {
	out := &Chunk{Schema: c.Schema, Cols: make([]*Column, len(c.Cols))}
	for j, col := range c.Cols {
		out.Cols[j] = col.Snapshot()
	}
	return out
}

// Extend appends every row of o, which must share c's column kinds, to
// c.
func (c *Chunk) Extend(o *Chunk) {
	for j, col := range c.Cols {
		col.Extend(o.Cols[j])
	}
}

// FilterByMask returns the rows whose mask entry is true.
func (c *Chunk) FilterByMask(mask []bool) *Chunk {
	rows := make([]int, 0, len(mask))
	for i, keep := range mask {
		if keep {
			rows = append(rows, i)
		}
	}
	return c.Gather(rows)
}

// ColIndex locates a column by optional qualifier and name
// (case-insensitive). It returns -1 if absent and -2 if ambiguous.
func (s Schema) ColIndex(table, name string) int {
	found := -1
	for i, m := range s {
		if !strings.EqualFold(m.Name, name) {
			continue
		}
		if table != "" && !strings.EqualFold(m.Table, table) {
			continue
		}
		if found >= 0 {
			return -2
		}
		found = i
	}
	return found
}

// Validate checks that all columns have equal length and pass their own
// validation.
func (c *Chunk) Validate() error {
	if len(c.Cols) != len(c.Schema) {
		return fmt.Errorf("chunk: %d cols vs %d schema entries", len(c.Cols), len(c.Schema))
	}
	n := -1
	for i, col := range c.Cols {
		if err := col.Validate(); err != nil {
			return fmt.Errorf("col %d (%s): %w", i, c.Schema[i].QualifiedName(), err)
		}
		if n == -1 {
			n = col.Len()
		} else if col.Len() != n {
			return fmt.Errorf("col %d (%s): len %d != %d", i, c.Schema[i].QualifiedName(), col.Len(), n)
		}
	}
	return nil
}

// String renders the chunk as an aligned text table (for the shell and
// tests). Long chunks are rendered in full; callers truncate.
func (c *Chunk) String() string {
	var b strings.Builder
	headers := make([]string, len(c.Schema))
	widths := make([]int, len(c.Schema))
	for j, m := range c.Schema {
		headers[j] = m.Name
		widths[j] = len(m.Name)
	}
	n := c.NumRows()
	cells := make([][]string, n)
	for i := 0; i < n; i++ {
		cells[i] = make([]string, len(c.Cols))
		for j, col := range c.Cols {
			s := col.Get(i).String()
			cells[i][j] = s
			if len(s) > widths[j] {
				widths[j] = len(s)
			}
		}
	}
	writeRow := func(row []string) {
		for j, s := range row {
			if j > 0 {
				b.WriteString(" | ")
			}
			b.WriteString(s)
			for k := len(s); k < widths[j]; k++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	for j := range headers {
		if j > 0 {
			b.WriteString("-+-")
		}
		b.WriteString(strings.Repeat("-", widths[j]))
	}
	b.WriteByte('\n')
	for i := 0; i < n; i++ {
		writeRow(cells[i])
	}
	return b.String()
}
