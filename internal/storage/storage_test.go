package storage

import (
	"strings"
	"testing"
	"testing/quick"

	"graphsql/internal/types"
)

func TestColumnAppendAndGet(t *testing.T) {
	c := NewColumn(types.KindInt, 0)
	c.AppendInt(1)
	c.Append(types.NewInt(2))
	c.AppendNull()
	c.AppendInt(4)
	if c.Len() != 4 {
		t.Fatalf("len = %d, want 4", c.Len())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Get(0).I != 1 || c.Get(1).I != 2 || c.Get(3).I != 4 {
		t.Fatal("values wrong")
	}
	if !c.Get(2).Null || !c.IsNull(2) || c.IsNull(3) {
		t.Fatal("null mask wrong")
	}
	if !c.HasNulls() {
		t.Fatal("HasNulls must be true")
	}
}

func TestColumnNullMaskLateMaterialization(t *testing.T) {
	c := NewColumn(types.KindString, 0)
	c.AppendString("a")
	c.AppendString("b")
	if c.Nulls != nil {
		t.Fatal("null mask must be lazy")
	}
	c.AppendNull()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.IsNull(0) || c.IsNull(1) || !c.IsNull(2) {
		t.Fatal("late null mask is wrong")
	}
}

func TestColumnKinds(t *testing.T) {
	f := NewColumn(types.KindFloat, 0)
	f.AppendFloat(1.5)
	f.Append(types.NewInt(2)) // ints widen into float columns
	if f.Get(0).F != 1.5 || f.Get(1).F != 2.0 {
		t.Fatal("float column broken")
	}
	b := NewColumn(types.KindBool, 0)
	b.Append(types.NewBool(true))
	if !b.Get(0).Bool() {
		t.Fatal("bool column broken")
	}
	d := NewColumn(types.KindDate, 0)
	d.Append(types.NewDate(100))
	if d.Get(0).K != types.KindDate || d.Get(0).I != 100 {
		t.Fatal("date column broken")
	}
	p := NewColumn(types.KindPath, 0)
	p.AppendPath(&types.Path{})
	if p.Get(0).P == nil {
		t.Fatal("path column broken")
	}
}

func TestColumnGather(t *testing.T) {
	c := NewColumn(types.KindInt, 0)
	for i := 0; i < 10; i++ {
		if i == 5 {
			c.AppendNull()
		} else {
			c.AppendInt(int64(i))
		}
	}
	g := c.Gather([]int{9, 5, 0})
	if g.Len() != 3 || g.Get(0).I != 9 || !g.IsNull(1) || g.Get(2).I != 0 {
		t.Fatalf("gather wrong: %v", g)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s := c.Slice(2, 4)
	if s.Len() != 2 || s.Get(0).I != 2 || s.Get(1).I != 3 {
		t.Fatal("slice wrong")
	}
}

func TestPropertyGatherPreservesValues(t *testing.T) {
	f := func(vals []int64, pick []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		c := NewColumn(types.KindInt, 0)
		for _, v := range vals {
			c.AppendInt(v)
		}
		rows := make([]int, len(pick))
		for i, p := range pick {
			rows[i] = int(p) % len(vals)
		}
		g := c.Gather(rows)
		for i, r := range rows {
			if g.Get(i).I != vals[r] {
				return false
			}
		}
		return g.Len() == len(rows)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConstColumn(t *testing.T) {
	c := ConstColumn(types.NewString("x"), 3)
	if c.Len() != 3 || c.Get(2).S != "x" {
		t.Fatal("const column broken")
	}
	n := ConstColumn(types.NewNull(types.KindNull), 2)
	if !n.IsNull(0) || !n.IsNull(1) {
		t.Fatal("null const column broken")
	}
}

func TestSchemaColIndex(t *testing.T) {
	s := Schema{
		{Table: "p1", Name: "id", Kind: types.KindInt},
		{Table: "p2", Name: "id", Kind: types.KindInt},
		{Table: "p1", Name: "name", Kind: types.KindString},
	}
	if got := s.ColIndex("p1", "id"); got != 0 {
		t.Fatalf("p1.id = %d", got)
	}
	if got := s.ColIndex("p2", "ID"); got != 1 {
		t.Fatalf("p2.ID = %d (case-insensitive lookup)", got)
	}
	if got := s.ColIndex("", "id"); got != -2 {
		t.Fatalf("bare id must be ambiguous, got %d", got)
	}
	if got := s.ColIndex("", "name"); got != 2 {
		t.Fatalf("bare name = %d", got)
	}
	if got := s.ColIndex("", "missing"); got != -1 {
		t.Fatalf("missing = %d", got)
	}
}

func TestChunkBasics(t *testing.T) {
	sch := Schema{
		{Name: "a", Kind: types.KindInt},
		{Name: "b", Kind: types.KindString},
	}
	c := NewChunk(sch)
	c.AppendRow([]types.Value{types.NewInt(1), types.NewString("x")})
	c.AppendRow([]types.Value{types.NewInt(2), types.NewString("y")})
	if c.NumRows() != 2 || c.NumCols() != 2 {
		t.Fatalf("dims wrong: %d x %d", c.NumRows(), c.NumCols())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	row := c.Row(1)
	if row[0].I != 2 || row[1].S != "y" {
		t.Fatal("row materialization wrong")
	}
	m := c.FilterByMask([]bool{false, true})
	if m.NumRows() != 1 || m.Row(0)[1].S != "y" {
		t.Fatal("mask filter wrong")
	}
	out := c.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "y") {
		t.Fatalf("render missing content:\n%s", out)
	}
}

func TestCatalog(t *testing.T) {
	cat := NewCatalog()
	tbl, err := cat.CreateTable("t", Schema{{Name: "x", Kind: types.KindInt}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cat.CreateTable("T", Schema{{Name: "x", Kind: types.KindInt}}); err == nil {
		t.Fatal("case-insensitive duplicate must fail")
	}
	if _, err := cat.CreateTable("u", Schema{
		{Name: "a", Kind: types.KindInt}, {Name: "A", Kind: types.KindInt},
	}); err == nil {
		t.Fatal("duplicate column must fail")
	}
	if err := tbl.AppendRow([]types.Value{types.NewInt(5)}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AppendRow([]types.Value{types.NewString("no")}); err == nil {
		t.Fatal("kind mismatch must fail")
	}
	if err := tbl.AppendRow([]types.Value{types.NewInt(1), types.NewInt(2)}); err == nil {
		t.Fatal("arity mismatch must fail")
	}
	got, ok := cat.Table("T")
	if !ok || got != tbl {
		t.Fatal("lookup is case-insensitive")
	}
	names := cat.TableNames()
	if len(names) != 1 || names[0] != "t" {
		t.Fatalf("names = %v", names)
	}
	if err := cat.DropTable("t"); err != nil {
		t.Fatal(err)
	}
	if err := cat.DropTable("t"); err == nil {
		t.Fatal("double drop must fail")
	}
}

func TestTableChunkIsZeroCopy(t *testing.T) {
	cat := NewCatalog()
	tbl, _ := cat.CreateTable("t", Schema{{Name: "x", Kind: types.KindInt}})
	_ = tbl.AppendRow([]types.Value{types.NewInt(1)})
	c := tbl.Chunk()
	if c.Cols[0] != tbl.Cols[0] {
		t.Fatal("chunk must share the table's columns")
	}
	if c.Schema[0].Table != "t" {
		t.Fatalf("base table columns are self-qualified, got %q", c.Schema[0].Table)
	}
}

func TestFloatIntMixedInsertIntoFloatColumn(t *testing.T) {
	cat := NewCatalog()
	tbl, _ := cat.CreateTable("t", Schema{{Name: "x", Kind: types.KindFloat}})
	if err := tbl.AppendRow([]types.Value{types.NewInt(3)}); err != nil {
		t.Fatal(err) // ints are accepted into DOUBLE columns
	}
	if tbl.Cols[0].Get(0).F != 3.0 {
		t.Fatal("int was not widened")
	}
}
