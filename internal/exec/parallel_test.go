package exec

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"graphsql/internal/expr"
	"graphsql/internal/plan"
	"graphsql/internal/storage"
	"graphsql/internal/types"
)

// The parallel relational operators must produce results bit-identical
// to their sequential counterparts. These tests execute every
// parallelized operator twice over the same random input — once with
// the sequential path forced (parallelism 1) and once over a worker
// pool with the size gate lowered — and require byte-identical
// renderings. Run under -race they also serve as the data-race check
// for the partitioned implementations.

// forceParallel lowers the operator gate for the duration of a test.
func forceParallel(t *testing.T) {
	t.Helper()
	prev := SetMinParallelRows(1)
	t.Cleanup(func() { SetMinParallelRows(prev) })
}

// randColumn builds a column of the given kind with a small value
// domain (to force key collisions) and ~15% NULLs.
func randColumn(r *rand.Rand, kind types.Kind, n int) *storage.Column {
	c := storage.NewColumn(kind, n)
	for i := 0; i < n; i++ {
		if r.Intn(100) < 15 {
			c.AppendNull()
			continue
		}
		switch kind {
		case types.KindFloat:
			c.AppendFloat(float64(r.Intn(8)) + 0.25*float64(r.Intn(4)))
		case types.KindString:
			c.AppendString(fmt.Sprintf("s%d", r.Intn(6)))
		default:
			c.AppendInt(int64(r.Intn(10)))
		}
	}
	return c
}

var testKinds = []types.Kind{types.KindInt, types.KindFloat, types.KindString}

// randChunk builds an n-row chunk with 1-4 randomly typed columns.
func randChunk(r *rand.Rand, name string, n int) *storage.Chunk {
	ncols := 1 + r.Intn(4)
	sch := make(storage.Schema, ncols)
	cols := make([]*storage.Column, ncols)
	for j := 0; j < ncols; j++ {
		k := testKinds[r.Intn(len(testKinds))]
		sch[j] = storage.ColMeta{Table: name, Name: fmt.Sprintf("c%d", j), Kind: k}
		cols[j] = randColumn(r, k, n)
	}
	return &storage.Chunk{Schema: sch, Cols: cols}
}

// runBoth executes the plan sequentially and in parallel and asserts
// byte-identical output renderings.
func runBoth(t *testing.T, seed int64, n plan.Node) {
	t.Helper()
	seqCtx := &Context{Parallelism: 1}
	seq, err := Execute(n, seqCtx)
	if err != nil {
		t.Fatalf("seed %d: sequential: %v", seed, err)
	}
	for _, workers := range []int{2, 3, 8} {
		parCtx := &Context{Parallelism: workers}
		got, err := Execute(n, parCtx)
		if err != nil {
			t.Fatalf("seed %d: parallel(%d): %v", seed, workers, err)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("seed %d: parallel(%d) output invalid: %v", seed, workers, err)
		}
		if got.String() != seq.String() {
			t.Fatalf("seed %d: parallel(%d) diverges from sequential:\n--- sequential\n%s--- parallel\n%s",
				seed, workers, seq.String(), got.String())
		}
	}
}

func TestParallelDistinctEquivalence(t *testing.T) {
	forceParallel(t)
	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(seed))
		in := randChunk(r, "t", 20+r.Intn(300))
		runBoth(t, seed, &plan.Distinct{Input: &plan.ChunkScan{Chunk: in, Name: "t"}})
	}
}

func TestParallelSortEquivalence(t *testing.T) {
	forceParallel(t)
	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(seed))
		in := randChunk(r, "t", 20+r.Intn(500))
		nkeys := 1 + r.Intn(len(in.Cols))
		keys := make([]plan.SortKey, nkeys)
		for i := range keys {
			j := r.Intn(len(in.Cols))
			keys[i] = plan.SortKey{
				Expr:       &expr.ColRef{Idx: j, K: in.Schema[j].Kind},
				Desc:       r.Intn(2) == 0,
				NullsFirst: r.Intn(3) - 1,
			}
		}
		runBoth(t, seed, &plan.Sort{Input: &plan.ChunkScan{Chunk: in, Name: "t"}, Keys: keys})
	}
}

func TestParallelSetOpEquivalence(t *testing.T) {
	forceParallel(t)
	ops := []string{"UNION", "EXCEPT", "INTERSECT"}
	for seed := int64(0); seed < 40; seed++ {
		r := rand.New(rand.NewSource(seed))
		// Both sides share a schema: build left, then right with the
		// same kinds so rows can actually collide.
		left := randChunk(r, "l", 10+r.Intn(200))
		nr := 10 + r.Intn(200)
		rightCols := make([]*storage.Column, len(left.Cols))
		for j := range rightCols {
			rightCols[j] = randColumn(r, left.Schema[j].Kind, nr)
		}
		right := &storage.Chunk{Schema: left.Schema, Cols: rightCols}
		op := ops[r.Intn(len(ops))]
		runBoth(t, seed, &plan.SetOp{
			Op:    op,
			All:   r.Intn(2) == 0,
			Left:  &plan.ChunkScan{Chunk: left, Name: "l"},
			Right: &plan.ChunkScan{Chunk: right, Name: "r"},
		})
	}
}

// aggSpecFor derives a valid AggSpec over column j of the input.
func aggSpecFor(r *rand.Rand, in *storage.Chunk, j int) plan.AggSpec {
	argKind := in.Schema[j].Kind
	arg := &expr.ColRef{Idx: j, K: argKind}
	ops := []plan.AggOp{plan.AggCountStar, plan.AggCount, plan.AggMin, plan.AggMax}
	if argKind != types.KindString {
		ops = append(ops, plan.AggSum, plan.AggAvg)
	}
	op := ops[r.Intn(len(ops))]
	spec := plan.AggSpec{Op: op, Name: "a"}
	switch op {
	case plan.AggCountStar:
		spec.Kind = types.KindInt
	case plan.AggCount:
		spec.Arg = arg
		spec.Kind = types.KindInt
		spec.Distinct = r.Intn(3) == 0
	case plan.AggAvg:
		spec.Arg = arg
		spec.Kind = types.KindFloat
		spec.Distinct = r.Intn(3) == 0
	default:
		spec.Arg = arg
		spec.Kind = argKind
		spec.Distinct = op == plan.AggSum && r.Intn(3) == 0
	}
	return spec
}

func TestParallelAggregateEquivalence(t *testing.T) {
	forceParallel(t)
	for seed := int64(0); seed < 60; seed++ {
		r := rand.New(rand.NewSource(seed))
		in := randChunk(r, "t", 20+r.Intn(400))
		ngroup := r.Intn(3) // 0 = global aggregate
		groupBy := make([]expr.Expr, 0, ngroup)
		sch := storage.Schema{}
		for i := 0; i < ngroup; i++ {
			j := r.Intn(len(in.Cols))
			groupBy = append(groupBy, &expr.ColRef{Idx: j, K: in.Schema[j].Kind})
			sch = append(sch, storage.ColMeta{Name: fmt.Sprintf("g%d", i), Kind: in.Schema[j].Kind})
		}
		naggs := 1 + r.Intn(4)
		aggs := make([]plan.AggSpec, 0, naggs)
		for i := 0; i < naggs; i++ {
			spec := aggSpecFor(r, in, r.Intn(len(in.Cols)))
			spec.Name = fmt.Sprintf("a%d", i)
			aggs = append(aggs, spec)
			sch = append(sch, storage.ColMeta{Name: spec.Name, Kind: spec.Kind})
		}
		runBoth(t, seed, &plan.Aggregate{
			Input:   &plan.ChunkScan{Chunk: in, Name: "t"},
			GroupBy: groupBy,
			Aggs:    aggs,
			Sch:     sch,
		})
	}
}

func TestParallelJoinEquivalence(t *testing.T) {
	forceParallel(t)
	jtypes := []plan.JoinType{plan.JoinInner, plan.JoinLeft, plan.JoinSemi, plan.JoinAnti}
	for seed := int64(0); seed < 60; seed++ {
		r := rand.New(rand.NewSource(seed))
		left := randChunk(r, "l", 10+r.Intn(250))
		right := randChunk(r, "r", 10+r.Intn(250))
		nLeft := len(left.Schema)
		// One or two equality pairs on matching kinds, if available.
		var conjuncts []expr.Expr
		for lj := range left.Cols {
			for rj := range right.Cols {
				if left.Schema[lj].Kind == right.Schema[rj].Kind && r.Intn(3) == 0 {
					conjuncts = append(conjuncts, &expr.Cmp{
						Op: expr.CmpEq,
						L:  &expr.ColRef{Idx: lj, K: left.Schema[lj].Kind},
						R:  &expr.ColRef{Idx: nLeft + rj, K: right.Schema[rj].Kind},
					})
				}
			}
		}
		if len(conjuncts) == 0 {
			lj, rj := r.Intn(len(left.Cols)), r.Intn(len(right.Cols))
			if left.Schema[lj].Kind != right.Schema[rj].Kind {
				continue // rare: no hashable pair; skip this seed
			}
			conjuncts = append(conjuncts, &expr.Cmp{
				Op: expr.CmpEq,
				L:  &expr.ColRef{Idx: lj, K: left.Schema[lj].Kind},
				R:  &expr.ColRef{Idx: nLeft + rj, K: right.Schema[rj].Kind},
			})
		}
		if r.Intn(2) == 0 {
			// Residual predicate over the concatenated schema.
			lj, rj := r.Intn(len(left.Cols)), r.Intn(len(right.Cols))
			if left.Schema[lj].Kind == right.Schema[rj].Kind {
				conjuncts = append(conjuncts, &expr.Cmp{
					Op: expr.CmpLt,
					L:  &expr.ColRef{Idx: lj, K: left.Schema[lj].Kind},
					R:  &expr.ColRef{Idx: nLeft + rj, K: right.Schema[rj].Kind},
				})
			}
		}
		runBoth(t, seed, &plan.Join{
			Type:  jtypes[r.Intn(len(jtypes))],
			Left:  &plan.ChunkScan{Chunk: left, Name: "l"},
			Right: &plan.ChunkScan{Chunk: right, Name: "r"},
			On:    expr.AndAll(conjuncts),
		})
	}
}

func TestParallelCrossJoinEquivalence(t *testing.T) {
	forceParallel(t)
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(seed))
		left := randChunk(r, "l", 5+r.Intn(40))
		right := randChunk(r, "r", 5+r.Intn(40))
		runBoth(t, seed, &plan.Join{
			Type:  plan.JoinCross,
			Left:  &plan.ChunkScan{Chunk: left, Name: "l"},
			Right: &plan.ChunkScan{Chunk: right, Name: "r"},
		})
	}
}

// nanChunk builds a (g BIGINT, x DOUBLE) chunk whose float column is
// laced with NaN, ±Inf and -0 — the values that historically broke
// Compare's totality and with it the parallel/sequential equivalence
// of ORDER BY and MIN/MAX.
func nanChunk(r *rand.Rand, n int) *storage.Chunk {
	sch := storage.Schema{
		{Table: "t", Name: "g", Kind: types.KindInt},
		{Table: "t", Name: "x", Kind: types.KindFloat},
	}
	g := storage.NewColumn(types.KindInt, n)
	x := storage.NewColumn(types.KindFloat, n)
	specials := []float64{math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1), 0}
	for i := 0; i < n; i++ {
		g.AppendInt(int64(r.Intn(4)))
		switch r.Intn(4) {
		case 0:
			x.AppendFloat(specials[r.Intn(len(specials))])
		case 1:
			x.AppendNull()
		default:
			x.AppendFloat(float64(r.Intn(20)))
		}
	}
	return &storage.Chunk{Schema: sch, Cols: []*storage.Column{g, x}}
}

// TestParallelNaNTotalOrder pins the NaN regression: sorting and
// grouped MIN/MAX over a NaN-laced float column must stay bit-identical
// across worker counts (requires types.Compare to be a total order).
func TestParallelNaNTotalOrder(t *testing.T) {
	forceParallel(t)
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		in := nanChunk(r, 30+r.Intn(300))
		runBoth(t, seed, &plan.Sort{
			Input: &plan.ChunkScan{Chunk: in, Name: "t"},
			Keys: []plan.SortKey{
				{Expr: &expr.ColRef{Idx: 1, K: types.KindFloat}, NullsFirst: -1},
				{Expr: &expr.ColRef{Idx: 0, K: types.KindInt}},
			},
		})
		runBoth(t, seed, &plan.Aggregate{
			Input:   &plan.ChunkScan{Chunk: in, Name: "t"},
			GroupBy: []expr.Expr{&expr.ColRef{Idx: 0, K: types.KindInt}},
			Aggs: []plan.AggSpec{
				{Op: plan.AggMin, Arg: &expr.ColRef{Idx: 1, K: types.KindFloat}, Kind: types.KindFloat, Name: "mn"},
				{Op: plan.AggMax, Arg: &expr.ColRef{Idx: 1, K: types.KindFloat}, Kind: types.KindFloat, Name: "mx"},
				{Op: plan.AggCount, Arg: &expr.ColRef{Idx: 1, K: types.KindFloat}, Kind: types.KindInt, Name: "c"},
			},
			Sch: storage.Schema{
				{Name: "g", Kind: types.KindInt},
				{Name: "mn", Kind: types.KindFloat},
				{Name: "mx", Kind: types.KindFloat},
				{Name: "c", Kind: types.KindInt},
			},
		})
	}
}

// TestParallelMergeSortMatchesStable pins the parallel merge sort
// against sort.SliceStable on adversarial tie-heavy inputs.
func TestParallelMergeSortMatchesStable(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(2000)
		vals := make([]int, n)
		for i := range vals {
			vals[i] = r.Intn(5) // heavy ties: stability matters
		}
		less := func(a, b int) bool { return vals[a] < vals[b] }
		want := iota(n)
		stableSortIdx(want, less)
		for _, workers := range []int{2, 3, 7, 16} {
			got := iota(n)
			parallelMergeSort(got, less, workers)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed %d workers %d: idx[%d] = %d, want %d", seed, workers, i, got[i], want[i])
				}
			}
		}
	}
}

func stableSortIdx(idx []int, less func(a, b int) bool) {
	parallelMergeSort(idx, less, 1) // workers=1 falls back to sort.SliceStable
}
