package exec

import (
	"context"
	"fmt"
	"os"

	"graphsql/internal/core"
	"graphsql/internal/expr"
	"graphsql/internal/fault"
	"graphsql/internal/par"
	"graphsql/internal/plan"
	"graphsql/internal/storage"
	"graphsql/internal/trace"
	"graphsql/internal/types"
)

// DefaultBatchRows is the row bound of the batches pull operators emit
// when Context.BatchRows is unset. It matches the wire layer's default
// stream frame size, so a streamed response maps roughly one operator
// batch onto one NDJSON frame.
const DefaultBatchRows = 1024

// envMaterialize selects the legacy full-materialization executor
// process-wide; see DefaultMaterialize.
var envMaterialize = os.Getenv("GSQL_EXEC") == "materialize"

// DefaultMaterialize reports whether the process default executor is
// the legacy full-materialization interpreter (GSQL_EXEC=materialize).
// Any other value — including unset — selects the batch-pull executor.
func DefaultMaterialize() bool { return envMaterialize }

// Operator is the pull-based executor's physical operator: a bound plan
// node compiled into a batch iterator. The life cycle is
// Build → Open → Next* → Close:
//
//   - Open acquires the operator's inputs under whatever lock the
//     caller holds — base-table scans take a storage.Chunk.Snapshot,
//     GraphMatch resolves (and refreshes) its cached graph index — so
//     everything after Open runs without the catalog lock.
//   - Next returns the next batch of at most Context.BatchRows rows,
//     or (nil, nil) once exhausted. Cancellation is polled at every
//     Next, so a canceled query unwinds at the next batch boundary.
//   - Close releases the operator and its children and ends its trace
//     span. Close is idempotent and must be called exactly once per
//     Build, even when Open failed.
//
// Pipeline operators (scan, filter, project, unnest, limit, UNION ALL,
// rename) transform one batch at a time; pipeline breakers (join,
// GraphMatch, aggregate, sort, distinct, the deduplicating set
// operations, CTE bodies) drain their inputs batch-at-a-time into one
// chunk on the first Next, run the same parallel materializing cores
// the legacy executor uses, and window the result back out — so both
// executors produce value-identical output by construction.
type Operator interface {
	// Schema is the operator's output schema, available before Open so
	// consumers can emit result headers ahead of the first batch.
	Schema() storage.Schema
	// Open prepares the operator for iteration (see type comment).
	Open(ctx *Context) error
	// Next returns the next batch, or (nil, nil) when exhausted.
	Next() (*storage.Chunk, error)
	// Close releases the operator tree; idempotent.
	Close() error
}

// Build compiles a bound plan into an operator tree without opening
// it. The same Context must be passed to the root's Open.
func Build(n plan.Node, ctx *Context) (Operator, error) {
	if ctx == nil {
		ctx = &Context{}
	}
	if ctx.Ctx == nil {
		//gsqlvet:allow ctxprop library entry point; engine callers always set Ctx
		ctx.Ctx = context.Background()
	}
	if ctx.Expr == nil {
		ctx.Expr = &expr.Context{}
	}
	return buildOp(n, ctx)
}

func buildOp(n plan.Node, ctx *Context) (Operator, error) {
	switch t := n.(type) {
	case *plan.Scan:
		return &scanOp{opBase: newBase(n), scan: t}, nil
	case *plan.ChunkScan:
		return &chunkOp{opBase: newBase(n), src: t.Chunk}, nil
	case *plan.Rename:
		child, err := buildOp(t.Input, ctx)
		if err != nil {
			return nil, err
		}
		return &renameOp{opBase: newBase(n), child: child}, nil
	case *plan.Shared:
		st := ctx.sharedPullState(t)
		if st.op == nil {
			op, err := buildOp(t.Input, ctx)
			if err != nil {
				return nil, err
			}
			st.op = op
		}
		return &sharedOp{opBase: newBase(n), state: st}, nil
	case *plan.Filter:
		child, err := buildOp(t.Input, ctx)
		if err != nil {
			return nil, err
		}
		return &filterOp{opBase: newBase(n), f: t, child: child}, nil
	case *plan.Project:
		child, err := buildOp(t.Input, ctx)
		if err != nil {
			return nil, err
		}
		return &projectOp{opBase: newBase(n), p: t, child: child}, nil
	case *plan.Unnest:
		child, err := buildOp(t.Input, ctx)
		if err != nil {
			return nil, err
		}
		return &unnestOp{opBase: newBase(n), u: t, child: child}, nil
	case *plan.Limit:
		child, err := buildOp(t.Input, ctx)
		if err != nil {
			return nil, err
		}
		return &limitOp{opBase: newBase(n), l: t, child: child}, nil
	case *plan.GraphMatch:
		input, err := buildOp(t.Input, ctx)
		if err != nil {
			return nil, err
		}
		edge, err := buildOp(t.Edge, ctx)
		if err != nil {
			return nil, err
		}
		return &graphMatchOp{opBase: newBase(n), g: t, input: input, edge: edge}, nil
	case *plan.SetOp:
		left, err := buildOp(t.Left, ctx)
		if err != nil {
			return nil, err
		}
		right, err := buildOp(t.Right, ctx)
		if err != nil {
			return nil, err
		}
		if t.Op == "UNION" && t.All {
			// UNION ALL is the one set operation that pipelines: it is
			// pure concatenation, the merge operator shard routing will
			// compose over.
			return &unionAllOp{opBase: newBase(n), left: left, right: right}, nil
		}
		return newBreaker(n, []Operator{left, right}, func(ctx *Context, ins []*storage.Chunk) (*storage.Chunk, error) {
			return setOpCore(t, ins[0], ins[1], ctx)
		}), nil
	case *plan.Join:
		left, err := buildOp(t.Left, ctx)
		if err != nil {
			return nil, err
		}
		right, err := buildOp(t.Right, ctx)
		if err != nil {
			return nil, err
		}
		return newBreaker(n, []Operator{left, right}, func(ctx *Context, ins []*storage.Chunk) (*storage.Chunk, error) {
			return joinCore(t, ins[0], ins[1], ctx)
		}), nil
	case *plan.Aggregate:
		child, err := buildOp(t.Input, ctx)
		if err != nil {
			return nil, err
		}
		return newBreaker(n, []Operator{child}, func(ctx *Context, ins []*storage.Chunk) (*storage.Chunk, error) {
			return aggregateCore(t, ins[0], ctx)
		}), nil
	case *plan.Sort:
		child, err := buildOp(t.Input, ctx)
		if err != nil {
			return nil, err
		}
		return newBreaker(n, []Operator{child}, func(ctx *Context, ins []*storage.Chunk) (*storage.Chunk, error) {
			return sortCore(t, ins[0], ctx)
		}), nil
	case *plan.Distinct:
		child, err := buildOp(t.Input, ctx)
		if err != nil {
			return nil, err
		}
		return newBreaker(n, []Operator{child}, func(ctx *Context, ins []*storage.Chunk) (*storage.Chunk, error) {
			return distinctCore(t, ins[0], ctx)
		}), nil
	}
	return nil, planNodeError(n)
}

// opBase carries the cross-cutting concerns every operator shares: the
// schema, the execution context captured at Open, and the operator's
// trace span (opened at Open, fed per batch, ended at exhaustion or
// Close).
type opBase struct {
	describe string
	sch      storage.Schema
	ctx      *Context
	tr       *trace.Trace
	sp       trace.SpanID
	rows     int64
	spanDone bool
}

func newBase(n plan.Node) opBase {
	return opBase{describe: n.Describe(), sch: n.Schema()}
}

// Schema implements Operator.
func (b *opBase) Schema() storage.Schema { return b.sch }

// openBase records the execution context and opens this operator's
// trace span under the current parent, redirecting ctx.TraceSpan at it
// so children opened before the returned restore func runs nest under
// it — the same tree shape the materializing executor records.
func (b *opBase) openBase(ctx *Context) func() {
	b.ctx = ctx
	b.tr = ctx.Trace
	if b.tr == nil {
		return func() {}
	}
	parent := ctx.TraceSpan
	b.sp = b.tr.Begin(parent, b.describe)
	ctx.TraceSpan = b.sp
	return func() { ctx.TraceSpan = parent }
}

// openCheck is the per-operator admission check, fired once per
// operator exactly like the materializing executor's pre-operator
// check: cancellation first, then the exec.operator fault point.
func (b *opBase) openCheck() error {
	if err := b.ctx.Canceled(); err != nil {
		return err
	}
	return fault.Inject(fault.PointExecOperator)
}

// step is the per-Next check: cancellation is polled at every batch
// boundary, and the exec.batch fault point can delay or fail the
// stream mid-flight.
func (b *opBase) step() error {
	if err := b.ctx.Canceled(); err != nil {
		return err
	}
	return fault.Inject(fault.PointExecBatch)
}

// emit accounts one outgoing batch against the operator's span
// (cumulative rows, batch count) and the test observer; a nil chunk
// marks exhaustion and ends the span so recorded operator times cover
// production, not consumer lifetime.
func (b *opBase) emit(c *storage.Chunk) *storage.Chunk {
	if c == nil {
		b.endSpan()
		return nil
	}
	if b.tr != nil {
		b.rows += int64(c.NumRows())
		b.tr.SetRows(b.sp, b.rows)
		b.tr.AddBatch(b.sp)
	}
	if obs := batchObserver; obs != nil {
		obs(b.describe, c.NumRows())
	}
	return c
}

func (b *opBase) endSpan() {
	if b.tr != nil && !b.spanDone {
		b.spanDone = true
		b.tr.End(b.sp)
	}
}

// batchObserver, when non-nil, sees every batch a pull operator emits;
// see SetBatchObserver.
var batchObserver func(op string, rows int)

// SetBatchObserver installs a hook observing every (operator describe
// line, batch row count) pair the pull executor emits and returns the
// previous hook. Intended for tests asserting intermediate-result
// bounds; not safe to call concurrently with query execution.
func SetBatchObserver(f func(op string, rows int)) func(op string, rows int) {
	prev := batchObserver
	batchObserver = f
	return prev
}

// materializer is implemented by operators that can hand over their
// entire remaining output as one chunk without per-batch copying:
// sources that only window an existing chunk (scans, CTE results) and
// breakers that hold their materialized output anyway. drainInput uses
// it so a breaker consuming a scan sees the same zero-copy table view
// the materializing executor passes around.
type materializer interface {
	materialize() (*storage.Chunk, error)
}

// drainInput fully materializes the remaining output of an open
// operator. Batches are concatenated into fresh columns (a batch is
// typically a zero-copy view whose backing arrays must not be appended
// to); a single-batch result is returned as-is, and zero batches yield
// an empty chunk with the operator's schema.
func drainInput(op Operator) (*storage.Chunk, error) {
	if m, ok := op.(materializer); ok {
		return m.materialize()
	}
	var first, out *storage.Chunk
	for {
		c, err := op.Next()
		if err != nil {
			return nil, err
		}
		if c == nil {
			break
		}
		if first == nil {
			first = c
			continue
		}
		if out == nil {
			out = emptyLike(first)
			out.Extend(first)
		}
		out.Extend(c)
	}
	if out != nil {
		return out, nil
	}
	if first != nil {
		return first, nil
	}
	return storage.NewChunk(op.Schema()), nil
}

// emptyLike returns an empty chunk whose columns match c's kinds (not
// the schema's declared kinds, which an expression may refine).
func emptyLike(c *storage.Chunk) *storage.Chunk {
	out := &storage.Chunk{Schema: c.Schema, Cols: make([]*storage.Column, len(c.Cols))}
	for i, col := range c.Cols {
		out.Cols[i] = storage.NewColumn(col.Kind, 0)
	}
	return out
}

// runPull executes a plan through the pull executor and materializes
// the result — the drop-in replacement for the recursive interpreter
// behind Execute.
func runPull(n plan.Node, ctx *Context) (*storage.Chunk, error) {
	op, err := buildOp(n, ctx)
	if err != nil {
		return nil, err
	}
	defer op.Close()
	if err := op.Open(ctx); err != nil {
		return nil, err
	}
	return drainInput(op)
}

// outWindow hands out bounded zero-copy windows of a materialized
// chunk; breakers use it to re-batch their output.
type outWindow struct {
	chunk *storage.Chunk
	pos   int
}

func (w *outWindow) next(batch int) *storage.Chunk {
	n := w.chunk.NumRows()
	if w.pos >= n {
		return nil
	}
	hi := w.pos + batch
	if hi > n {
		hi = n
	}
	c := w.chunk.Slice(w.pos, hi)
	w.pos = hi
	return c
}

// rest returns everything not yet windowed out as one chunk.
func (w *outWindow) rest() *storage.Chunk {
	n := w.chunk.NumRows()
	if w.pos == 0 {
		w.pos = n
		return w.chunk
	}
	c := w.chunk.Slice(w.pos, n)
	w.pos = n
	if c.NumRows() == 0 {
		return nil
	}
	return c
}

// ---------------------------------------------------------------------------
// Pipeline sources

// scanOp windows a base table. Open takes a storage.Chunk.Snapshot
// under the caller's lock, so the batches stay valid — and isolated
// from concurrent INSERT/DELETE — after the lock is released.
type scanOp struct {
	opBase
	scan *plan.Scan
	win  outWindow
}

func (o *scanOp) Open(ctx *Context) error {
	defer o.openBase(ctx)()
	if err := o.openCheck(); err != nil {
		return err
	}
	o.win.chunk = (&storage.Chunk{Schema: o.scan.Sch, Cols: o.scan.Table.Cols}).Snapshot()
	return nil
}

func (o *scanOp) Next() (*storage.Chunk, error) {
	if err := o.step(); err != nil {
		return nil, err
	}
	return o.emit(o.win.next(o.ctx.batchRows())), nil
}

func (o *scanOp) materialize() (*storage.Chunk, error) {
	if err := o.step(); err != nil {
		return nil, err
	}
	c := o.win.rest()
	if c == nil {
		c = storage.NewChunk(o.sch)
	}
	o.emit(c)
	return c, nil
}

func (o *scanOp) Close() error {
	o.endSpan()
	return nil
}

// chunkOp windows an already-materialized chunk (ChunkScan).
type chunkOp struct {
	opBase
	src *storage.Chunk
	win outWindow
}

func (o *chunkOp) Open(ctx *Context) error {
	defer o.openBase(ctx)()
	if err := o.openCheck(); err != nil {
		return err
	}
	o.win.chunk = o.src
	return nil
}

func (o *chunkOp) Next() (*storage.Chunk, error) {
	if err := o.step(); err != nil {
		return nil, err
	}
	return o.emit(o.win.next(o.ctx.batchRows())), nil
}

func (o *chunkOp) materialize() (*storage.Chunk, error) {
	if err := o.step(); err != nil {
		return nil, err
	}
	c := o.win.rest()
	if c == nil {
		c = storage.NewChunk(o.sch)
	}
	o.emit(c)
	return c, nil
}

func (o *chunkOp) Close() error {
	o.endSpan()
	return nil
}

// ---------------------------------------------------------------------------
// Pipeline transforms

// renameOp relabels its child's batches under the derived-table or CTE
// alias schema; zero cost per batch.
type renameOp struct {
	opBase
	child Operator
}

func (o *renameOp) Open(ctx *Context) error {
	defer o.openBase(ctx)()
	if err := o.openCheck(); err != nil {
		return err
	}
	return o.child.Open(ctx)
}

func (o *renameOp) Next() (*storage.Chunk, error) {
	if err := o.step(); err != nil {
		return nil, err
	}
	in, err := o.child.Next()
	if err != nil {
		return nil, err
	}
	if in == nil {
		return o.emit(nil), nil
	}
	return o.emit(&storage.Chunk{Schema: o.sch, Cols: in.Cols}), nil
}

func (o *renameOp) materialize() (*storage.Chunk, error) {
	if err := o.step(); err != nil {
		return nil, err
	}
	in, err := drainInput(o.child)
	if err != nil {
		return nil, err
	}
	out := &storage.Chunk{Schema: o.sch, Cols: in.Cols}
	o.emit(out)
	return out, nil
}

func (o *renameOp) Close() error {
	err := o.child.Close()
	o.endSpan()
	return err
}

// filterOp evaluates the predicate per batch and emits the surviving
// rows; batches with no survivors are skipped, so consumers never see
// empty batches.
type filterOp struct {
	opBase
	f     *plan.Filter
	child Operator
}

func (o *filterOp) Open(ctx *Context) error {
	defer o.openBase(ctx)()
	if err := o.openCheck(); err != nil {
		return err
	}
	return o.child.Open(ctx)
}

func (o *filterOp) Next() (*storage.Chunk, error) {
	if err := o.step(); err != nil {
		return nil, err
	}
	for {
		in, err := o.child.Next()
		if err != nil {
			return nil, err
		}
		if in == nil {
			return o.emit(nil), nil
		}
		out, err := filterCore(o.f, in, o.ctx)
		if err != nil {
			return nil, err
		}
		if out.NumRows() > 0 {
			return o.emit(out), nil
		}
	}
}

func (o *filterOp) Close() error {
	err := o.child.Close()
	o.endSpan()
	return err
}

// projectOp evaluates the projection expressions per batch. Scalar
// expressions are row-local, so per-batch evaluation concatenates to
// exactly the whole-input evaluation.
type projectOp struct {
	opBase
	p     *plan.Project
	child Operator
}

func (o *projectOp) Open(ctx *Context) error {
	defer o.openBase(ctx)()
	if err := o.openCheck(); err != nil {
		return err
	}
	return o.child.Open(ctx)
}

func (o *projectOp) Next() (*storage.Chunk, error) {
	if err := o.step(); err != nil {
		return nil, err
	}
	in, err := o.child.Next()
	if err != nil {
		return nil, err
	}
	if in == nil {
		return o.emit(nil), nil
	}
	out, err := projectCore(o.p, in, o.ctx)
	if err != nil {
		return nil, err
	}
	return o.emit(out), nil
}

func (o *projectOp) Close() error {
	err := o.child.Close()
	o.endSpan()
	return err
}

// unnestOp expands nested-table paths incrementally: it fills each
// output batch up to the batch bound and remembers its position inside
// the current input row's path, so even one row with a huge path never
// forces an unbounded batch.
type unnestOp struct {
	opBase
	u     *plan.Unnest
	child Operator
	in    *storage.Chunk
	pc    *storage.Column
	row   int
	edge  int
}

func (o *unnestOp) Open(ctx *Context) error {
	defer o.openBase(ctx)()
	if err := o.openCheck(); err != nil {
		return err
	}
	return o.child.Open(ctx)
}

func (o *unnestOp) Next() (*storage.Chunk, error) {
	if err := o.step(); err != nil {
		return nil, err
	}
	batch := o.ctx.batchRows()
	out := storage.NewChunk(o.u.Sch)
	nPathCols := len(o.u.PathSchema)
	appendRow := func(row int, edge []types.Value, ord int64) {
		inWidth := len(o.in.Cols)
		for c := 0; c < inWidth; c++ {
			out.Cols[c].Append(o.in.Cols[c].Get(row))
		}
		if edge == nil {
			for c := 0; c < nPathCols; c++ {
				out.Cols[inWidth+c].AppendNull()
			}
			if o.u.Ordinality {
				out.Cols[inWidth+nPathCols].AppendNull()
			}
			return
		}
		for c := 0; c < nPathCols; c++ {
			out.Cols[inWidth+c].Append(edge[c])
		}
		if o.u.Ordinality {
			out.Cols[inWidth+nPathCols].AppendInt(ord)
		}
	}
	for out.NumRows() < batch {
		if o.in == nil || o.row >= o.in.NumRows() {
			in, err := o.child.Next()
			if err != nil {
				return nil, err
			}
			if in == nil {
				o.in = nil
				break
			}
			pc, err := o.u.PathExpr.Eval(o.ctx.Expr, in)
			if err != nil {
				return nil, err
			}
			o.in, o.pc, o.row, o.edge = in, pc, 0, 0
		}
		row := o.row
		if o.pc.IsNull(row) || o.pc.Paths[row].Len() == 0 {
			if o.u.Outer {
				appendRow(row, nil, 0)
			}
			o.row++
			continue
		}
		p := o.pc.Paths[row]
		for o.edge < len(p.Rows) && out.NumRows() < batch {
			appendRow(row, p.Rows[o.edge], int64(o.edge+1))
			o.edge++
		}
		if o.edge >= len(p.Rows) {
			o.row++
			o.edge = 0
		}
	}
	if out.NumRows() == 0 {
		return o.emit(nil), nil
	}
	return o.emit(out), nil
}

func (o *unnestOp) Close() error {
	err := o.child.Close()
	o.endSpan()
	return err
}

// limitOp skips and truncates without materializing: once the count is
// exhausted it stops pulling its child entirely — the early
// termination the materializing executor cannot express.
type limitOp struct {
	opBase
	l         *plan.Limit
	child     Operator
	skip      int
	remain    int
	unlimited bool
	done      bool
}

func (o *limitOp) Open(ctx *Context) error {
	defer o.openBase(ctx)()
	if err := o.openCheck(); err != nil {
		return err
	}
	if err := o.child.Open(ctx); err != nil {
		return err
	}
	skip, count, unlimited, err := limitBounds(o.l, ctx)
	if err != nil {
		return err
	}
	o.skip, o.remain, o.unlimited = skip, count, unlimited
	return nil
}

func (o *limitOp) Next() (*storage.Chunk, error) {
	if err := o.step(); err != nil {
		return nil, err
	}
	if o.done || (!o.unlimited && o.remain <= 0) {
		o.done = true
		return o.emit(nil), nil
	}
	for {
		in, err := o.child.Next()
		if err != nil {
			return nil, err
		}
		if in == nil {
			o.done = true
			return o.emit(nil), nil
		}
		n := in.NumRows()
		if o.skip >= n {
			o.skip -= n
			continue
		}
		if o.skip > 0 {
			in = in.Slice(o.skip, n)
			o.skip = 0
			n = in.NumRows()
		}
		if !o.unlimited && n > o.remain {
			in = in.Slice(0, o.remain)
			n = o.remain
		}
		if !o.unlimited {
			o.remain -= n
		}
		return o.emit(in), nil
	}
}

func (o *limitOp) Close() error {
	err := o.child.Close()
	o.endSpan()
	return err
}

// unionAllOp concatenates its inputs: all left batches, then all right
// batches relabeled to the left schema — the composable merge operator
// a shard-scatter coordinator stacks results with.
type unionAllOp struct {
	opBase
	left, right Operator
	onRight     bool
}

func (o *unionAllOp) Open(ctx *Context) error {
	defer o.openBase(ctx)()
	if err := o.openCheck(); err != nil {
		return err
	}
	if err := o.left.Open(ctx); err != nil {
		return err
	}
	if err := o.right.Open(ctx); err != nil {
		return err
	}
	if nl, nr := len(o.left.Schema()), len(o.right.Schema()); nl != nr {
		return fmt.Errorf("UNION: operands have %d and %d columns", nl, nr)
	}
	return nil
}

func (o *unionAllOp) Next() (*storage.Chunk, error) {
	if err := o.step(); err != nil {
		return nil, err
	}
	for {
		src := o.left
		if o.onRight {
			src = o.right
		}
		in, err := src.Next()
		if err != nil {
			return nil, err
		}
		if in == nil {
			if !o.onRight {
				o.onRight = true
				continue
			}
			return o.emit(nil), nil
		}
		return o.emit(&storage.Chunk{Schema: o.sch, Cols: in.Cols}), nil
	}
}

func (o *unionAllOp) Close() error {
	lerr := o.left.Close()
	rerr := o.right.Close()
	o.endSpan()
	if lerr != nil {
		return lerr
	}
	return rerr
}

// ---------------------------------------------------------------------------
// Pipeline breakers

// breakerOp is the generic pipeline breaker: it drains its children
// batch-at-a-time into materialized chunks on the first Next, runs the
// legacy executor's parallel core, and windows the output back into
// batches.
type breakerOp struct {
	opBase
	children []Operator
	eval     func(ctx *Context, ins []*storage.Chunk) (*storage.Chunk, error)
	win      outWindow
	done     bool
}

func newBreaker(n plan.Node, children []Operator, eval func(ctx *Context, ins []*storage.Chunk) (*storage.Chunk, error)) *breakerOp {
	return &breakerOp{opBase: newBase(n), children: children, eval: eval}
}

func (o *breakerOp) Open(ctx *Context) error {
	defer o.openBase(ctx)()
	if err := o.openCheck(); err != nil {
		return err
	}
	for _, c := range o.children {
		if err := c.Open(ctx); err != nil {
			return err
		}
	}
	return nil
}

// compute drains the inputs and runs the core exactly once. Children
// are closed as soon as they are drained, so their trace spans report
// production time, not the breaker's lifetime.
func (o *breakerOp) compute() error {
	if o.done {
		return nil
	}
	ins := make([]*storage.Chunk, len(o.children))
	for i, c := range o.children {
		in, err := drainInput(c)
		if err != nil {
			return err
		}
		c.Close()
		ins[i] = in
	}
	out, err := o.eval(o.ctx, ins)
	if err != nil {
		return err
	}
	o.win.chunk = out
	o.done = true
	return nil
}

func (o *breakerOp) Next() (*storage.Chunk, error) {
	if err := o.step(); err != nil {
		return nil, err
	}
	if err := o.compute(); err != nil {
		return nil, err
	}
	return o.emit(o.win.next(o.ctx.batchRows())), nil
}

func (o *breakerOp) materialize() (*storage.Chunk, error) {
	if err := o.step(); err != nil {
		return nil, err
	}
	if err := o.compute(); err != nil {
		return nil, err
	}
	c := o.win.rest()
	if c == nil {
		c = storage.NewChunk(o.sch)
	}
	o.emit(c)
	return c, nil
}

func (o *breakerOp) Close() error {
	var err error
	for _, c := range o.children {
		if cerr := c.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	o.endSpan()
	return err
}

// graphMatchOp is the pull form of the paper's graph select σ̂. Open
// resolves — and refreshes — the cached dynamic graph index under the
// caller's lock; the solve itself runs at the first Next, lock-free
// under the index's own read lock. Without an index the edge subplan
// is drained and a throwaway graph is built, exactly like the
// materializing path.
//
// Relaxation: with a cached index, a solve that runs after the
// caller's lock was released may observe edges appended by writes that
// committed after this statement's snapshot (the index delta absorbs
// them). Reads and writes racing a streamed drain already have no
// serialization point; the differential harness runs without
// concurrent writes, where both executors are byte-identical.
type graphMatchOp struct {
	opBase
	g     *plan.GraphMatch
	input Operator
	edge  Operator
	dg    *core.DynamicGraph
	win   outWindow
	done  bool
}

func (o *graphMatchOp) Open(ctx *Context) error {
	defer o.openBase(ctx)()
	if err := o.openCheck(); err != nil {
		return err
	}
	if err := o.input.Open(ctx); err != nil {
		return err
	}
	if o.tr != nil {
		o.tr.SetWorkers(o.sp, par.Workers(ctx.Parallelism))
	}
	// A cached dynamic index serves scans of indexed base tables; rows
	// inserted since the snapshot are absorbed into its delta here,
	// under the caller's catalog lock (the refresh walks the live table
	// chunk and must not race writers).
	if scan, ok := o.g.Edge.(*plan.Scan); ok && ctx.GraphIndexes != nil {
		if dg, ok := ctx.GraphIndexes[GraphIndexKey(scan.Table.Name, o.g.SrcIdx, o.g.DstIdx)]; ok {
			before := dg.AppliedRows()
			rebuilt, err := dg.RefreshCtx(o.solverCtx(), scan.Table.Chunk())
			if err != nil {
				return err
			}
			if ctx.Stats != nil {
				ctx.Stats.IndexHits++
				if rebuilt {
					ctx.Stats.IndexRebuilds++
				} else if dg.AppliedRows() != before {
					ctx.Stats.IndexRefreshes++
				}
			}
			o.dg = dg
			return nil
		}
	}
	return o.edge.Open(ctx)
}

// solverCtx returns the std context solver calls receive, carrying the
// trace and this operator's span so per-level frontier samples attach
// under it.
func (o *graphMatchOp) solverCtx() context.Context {
	stdctx := o.ctx.Ctx
	if o.tr != nil {
		stdctx = trace.NewContext(stdctx, o.tr, o.sp)
	}
	return stdctx
}

func (o *graphMatchOp) compute() error {
	if o.done {
		return nil
	}
	in, err := drainInput(o.input)
	if err != nil {
		return err
	}
	o.input.Close()
	xc, err := o.g.X.Eval(o.ctx.Expr, in)
	if err != nil {
		return err
	}
	yc, err := o.g.Y.Eval(o.ctx.Expr, in)
	if err != nil {
		return err
	}
	stdctx := o.solverCtx()
	var out *storage.Chunk
	if o.dg != nil {
		out, err = o.dg.MatchCtx(stdctx, o.g, in, xc, yc, o.ctx.Expr)
	} else {
		var edges *storage.Chunk
		edges, err = drainInput(o.edge)
		if err != nil {
			return err
		}
		o.edge.Close()
		var pg *core.PreparedGraph
		pg, err = core.BuildGraphCtx(stdctx, edges, o.g.SrcIdx, o.g.DstIdx, o.ctx.Parallelism)
		if err != nil {
			return err
		}
		if o.ctx.Stats != nil {
			o.ctx.Stats.GraphBuilds++
			o.ctx.Stats.GraphBuildVertices += pg.NumVertices()
			o.ctx.Stats.GraphBuildEdges += pg.NumEdges()
		}
		out, err = pg.MatchCtx(stdctx, o.g, in, xc, yc, o.ctx.Expr)
	}
	if err != nil {
		return err
	}
	o.win.chunk = out
	o.done = true
	return nil
}

func (o *graphMatchOp) Next() (*storage.Chunk, error) {
	if err := o.step(); err != nil {
		return nil, err
	}
	if err := o.compute(); err != nil {
		return nil, err
	}
	return o.emit(o.win.next(o.ctx.batchRows())), nil
}

func (o *graphMatchOp) materialize() (*storage.Chunk, error) {
	if err := o.step(); err != nil {
		return nil, err
	}
	if err := o.compute(); err != nil {
		return nil, err
	}
	c := o.win.rest()
	if c == nil {
		c = storage.NewChunk(o.sch)
	}
	o.emit(c)
	return c, nil
}

func (o *graphMatchOp) Close() error {
	ierr := o.input.Close()
	eerr := o.edge.Close()
	o.endSpan()
	if ierr != nil {
		return ierr
	}
	return eerr
}

// sharedState is the once-per-execution materialization of a CTE body,
// shared by every sharedOp referencing the same plan node.
type sharedState struct {
	op     Operator
	opened bool
	done   bool
	closed bool
	chunk  *storage.Chunk
}

// sharedOp serves one reference to a Shared (CTE) subplan. The first
// reference to open also opens — and, at first Next, drains — the
// shared subtree; every reference then windows the one materialized
// chunk independently.
type sharedOp struct {
	opBase
	state *sharedState
	win   outWindow
}

func (o *sharedOp) Open(ctx *Context) error {
	defer o.openBase(ctx)()
	if err := o.openCheck(); err != nil {
		return err
	}
	if !o.state.opened {
		o.state.opened = true
		return o.state.op.Open(ctx)
	}
	return nil
}

func (o *sharedOp) compute() error {
	st := o.state
	if st.done {
		return nil
	}
	chunk, err := drainInput(st.op)
	if err != nil {
		return err
	}
	st.op.Close()
	st.closed = true
	st.chunk = chunk
	st.done = true
	return nil
}

func (o *sharedOp) Next() (*storage.Chunk, error) {
	if err := o.step(); err != nil {
		return nil, err
	}
	if err := o.compute(); err != nil {
		return nil, err
	}
	o.win.chunk = o.state.chunk
	return o.emit(o.win.next(o.ctx.batchRows())), nil
}

func (o *sharedOp) materialize() (*storage.Chunk, error) {
	if err := o.step(); err != nil {
		return nil, err
	}
	if err := o.compute(); err != nil {
		return nil, err
	}
	o.win.chunk = o.state.chunk
	c := o.win.rest()
	if c == nil {
		c = storage.NewChunk(o.sch)
	}
	o.emit(c)
	return c, nil
}

func (o *sharedOp) Close() error {
	var err error
	if o.state.opened && !o.state.closed {
		err = o.state.op.Close()
		o.state.closed = true
	}
	o.endSpan()
	return err
}
