package exec

import (
	"fmt"

	"graphsql/internal/plan"
	"graphsql/internal/storage"
)

func execSetOp(s *plan.SetOp, ctx *Context) (*storage.Chunk, error) {
	left, err := Execute(s.Left, ctx)
	if err != nil {
		return nil, err
	}
	right, err := Execute(s.Right, ctx)
	if err != nil {
		return nil, err
	}
	if len(left.Cols) != len(right.Cols) {
		return nil, fmt.Errorf("%s: operands have %d and %d columns", s.Op, len(left.Cols), len(right.Cols))
	}
	rowKey := func(c *storage.Chunk, i int, buf []byte) []byte {
		buf = buf[:0]
		for _, col := range c.Cols {
			buf = encodeKey(buf, col, i)
		}
		return buf
	}
	var buf []byte
	switch s.Op {
	case "UNION":
		out := storage.NewChunk(left.Schema)
		seen := make(map[string]struct{})
		appendFrom := func(c *storage.Chunk) {
			for i := 0; i < c.NumRows(); i++ {
				buf = rowKey(c, i, buf)
				if !s.All {
					if _, dup := seen[string(buf)]; dup {
						continue
					}
					seen[string(buf)] = struct{}{}
				}
				out.AppendRow(c.Row(i))
			}
		}
		appendFrom(left)
		appendFrom(right)
		return out, nil
	case "EXCEPT":
		// Multiset semantics for ALL, set semantics otherwise.
		rightCount := make(map[string]int)
		for i := 0; i < right.NumRows(); i++ {
			buf = rowKey(right, i, buf)
			rightCount[string(buf)]++
		}
		out := storage.NewChunk(left.Schema)
		emitted := make(map[string]struct{})
		for i := 0; i < left.NumRows(); i++ {
			buf = rowKey(left, i, buf)
			k := string(buf)
			if s.All {
				if rightCount[k] > 0 {
					rightCount[k]--
					continue
				}
				out.AppendRow(left.Row(i))
			} else {
				if rightCount[k] > 0 {
					continue
				}
				if _, dup := emitted[k]; dup {
					continue
				}
				emitted[k] = struct{}{}
				out.AppendRow(left.Row(i))
			}
		}
		return out, nil
	case "INTERSECT":
		rightCount := make(map[string]int)
		for i := 0; i < right.NumRows(); i++ {
			buf = rowKey(right, i, buf)
			rightCount[string(buf)]++
		}
		out := storage.NewChunk(left.Schema)
		emitted := make(map[string]struct{})
		for i := 0; i < left.NumRows(); i++ {
			buf = rowKey(left, i, buf)
			k := string(buf)
			if rightCount[k] <= 0 {
				continue
			}
			if s.All {
				rightCount[k]--
				out.AppendRow(left.Row(i))
			} else {
				if _, dup := emitted[k]; dup {
					continue
				}
				emitted[k] = struct{}{}
				out.AppendRow(left.Row(i))
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("internal: unknown set operation %s", s.Op)
}
