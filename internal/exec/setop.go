package exec

import (
	"fmt"

	"graphsql/internal/par"
	"graphsql/internal/plan"
	"graphsql/internal/storage"
)

func execSetOp(s *plan.SetOp, ctx *Context) (*storage.Chunk, error) {
	left, err := Execute(s.Left, ctx)
	if err != nil {
		return nil, err
	}
	right, err := Execute(s.Right, ctx)
	if err != nil {
		return nil, err
	}
	return setOpCore(s, left, right, ctx)
}

// setOpCore runs UNION/EXCEPT/INTERSECT over two materialized
// operands; the pipeline-breaking core shared by both executors
// (UNION ALL additionally has a pipelining pull operator).
func setOpCore(s *plan.SetOp, left, right *storage.Chunk, ctx *Context) (*storage.Chunk, error) {
	if len(left.Cols) != len(right.Cols) {
		return nil, fmt.Errorf("%s: operands have %d and %d columns", s.Op, len(left.Cols), len(right.Cols))
	}
	nl, nr := left.NumRows(), right.NumRows()
	workers := ctx.workers(nl + nr)
	if workers > 1 {
		return setOpSharded(s, left, right, workers)
	}
	rowKey := func(c *storage.Chunk, i int, buf []byte) []byte {
		buf = buf[:0]
		for _, col := range c.Cols {
			buf = encodeKey(buf, col, i)
		}
		return buf
	}
	var buf []byte
	switch s.Op {
	case "UNION":
		out := storage.NewChunk(left.Schema)
		seen := make(map[string]struct{})
		appendFrom := func(c *storage.Chunk) {
			for i := 0; i < c.NumRows(); i++ {
				buf = rowKey(c, i, buf)
				if !s.All {
					if _, dup := seen[string(buf)]; dup {
						continue
					}
					seen[string(buf)] = struct{}{}
				}
				out.AppendRow(c.Row(i))
			}
		}
		appendFrom(left)
		appendFrom(right)
		return out, nil
	case "EXCEPT":
		// Multiset semantics for ALL, set semantics otherwise.
		rightCount := make(map[string]int)
		for i := 0; i < right.NumRows(); i++ {
			buf = rowKey(right, i, buf)
			rightCount[string(buf)]++
		}
		out := storage.NewChunk(left.Schema)
		emitted := make(map[string]struct{})
		for i := 0; i < left.NumRows(); i++ {
			buf = rowKey(left, i, buf)
			k := string(buf)
			if s.All {
				if rightCount[k] > 0 {
					rightCount[k]--
					continue
				}
				out.AppendRow(left.Row(i))
			} else {
				if rightCount[k] > 0 {
					continue
				}
				if _, dup := emitted[k]; dup {
					continue
				}
				emitted[k] = struct{}{}
				out.AppendRow(left.Row(i))
			}
		}
		return out, nil
	case "INTERSECT":
		rightCount := make(map[string]int)
		for i := 0; i < right.NumRows(); i++ {
			buf = rowKey(right, i, buf)
			rightCount[string(buf)]++
		}
		out := storage.NewChunk(left.Schema)
		emitted := make(map[string]struct{})
		for i := 0; i < left.NumRows(); i++ {
			buf = rowKey(left, i, buf)
			k := string(buf)
			if rightCount[k] <= 0 {
				continue
			}
			if s.All {
				rightCount[k]--
				out.AppendRow(left.Row(i))
			} else {
				if _, dup := emitted[k]; dup {
					continue
				}
				emitted[k] = struct{}{}
				out.AppendRow(left.Row(i))
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("internal: unknown set operation %s", s.Op)
}

// setOpSharded is the parallel set-operation path. Rows of both sides
// are hash-partitioned by their full-row key; each shard runs exactly
// the sequential algorithm over its rows in global row order (left
// rows 0..nl-1, then right rows as nl..nl+nr-1 for UNION), which is
// sound because UNION/EXCEPT/INTERSECT decide each row only from
// same-key rows. The per-shard survivor lists, each ascending, merge
// back in ascending order — the exact sequential output.
func setOpSharded(s *plan.SetOp, left, right *storage.Chunk, workers int) (*storage.Chunk, error) {
	nl, nr := left.NumRows(), right.NumRows()
	if s.Op == "UNION" && s.All {
		// No dedup: the output is simply left's rows then right's.
		out := left.GatherP(iota(nl), workers)
		out.Extend(right.GatherP(iota(nr), workers))
		return out, nil
	}
	lk := encodeRowKeys(left.Cols, nl, false, workers)
	rk := encodeRowKeys(right.Cols, nr, false, workers)
	shards := workers

	switch s.Op {
	case "UNION":
		// keep lists hold virtual row ids: [0, nl) left, [nl, nl+nr) right.
		leftShards := lk.shardRows(shards, workers, nl)
		rightShards := rk.shardRows(shards, workers, nr)
		keeps := make([][]int, shards)
		par.Indexed(workers, shards, func(_, sh int) {
			seen := make(map[string]struct{}, len(leftShards[sh])+len(rightShards[sh]))
			var keep []int
			for _, i := range leftShards[sh] {
				if _, dup := seen[lk.keys[i]]; !dup {
					seen[lk.keys[i]] = struct{}{}
					keep = append(keep, i)
				}
			}
			for _, i := range rightShards[sh] {
				if _, dup := seen[rk.keys[i]]; !dup {
					seen[rk.keys[i]] = struct{}{}
					keep = append(keep, nl+i)
				}
			}
			keeps[sh] = keep
		})
		merged := mergeAscending(keeps, nl+nr)
		split := 0
		for split < len(merged) && merged[split] < nl {
			split++
		}
		rightKeep := make([]int, len(merged)-split)
		for i, v := range merged[split:] {
			rightKeep[i] = v - nl
		}
		out := left.GatherP(merged[:split], workers)
		out.Extend(right.GatherP(rightKeep, workers))
		return out, nil
	case "EXCEPT", "INTERSECT":
		leftShards := lk.shardRows(shards, workers, nl)
		rightShards := rk.shardRows(shards, workers, nr)
		keeps := make([][]int, shards)
		par.Indexed(workers, shards, func(_, sh int) {
			rightCount := make(map[string]int, len(rightShards[sh]))
			for _, i := range rightShards[sh] {
				rightCount[rk.keys[i]]++
			}
			emitted := make(map[string]struct{})
			var keep []int
			for _, i := range leftShards[sh] {
				k := lk.keys[i]
				if s.Op == "EXCEPT" {
					if s.All {
						if rightCount[k] > 0 {
							rightCount[k]--
							continue
						}
						keep = append(keep, i)
					} else {
						if rightCount[k] > 0 {
							continue
						}
						if _, dup := emitted[k]; dup {
							continue
						}
						emitted[k] = struct{}{}
						keep = append(keep, i)
					}
				} else { // INTERSECT
					if rightCount[k] <= 0 {
						continue
					}
					if s.All {
						rightCount[k]--
						keep = append(keep, i)
					} else {
						if _, dup := emitted[k]; dup {
							continue
						}
						emitted[k] = struct{}{}
						keep = append(keep, i)
					}
				}
			}
			keeps[sh] = keep
		})
		out := left.GatherP(mergeAscending(keeps, nl), workers)
		out.Schema = left.Schema
		return out, nil
	}
	return nil, fmt.Errorf("internal: unknown set operation %s", s.Op)
}

// iota returns [0, 1, …, n-1].
func iota(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
