package exec

import (
	"cmp"
	"math"
	"slices"

	"graphsql/internal/expr"
	"graphsql/internal/par"
	"graphsql/internal/plan"
	"graphsql/internal/storage"
)

func mathFloat64bits(f float64) uint64 { return math.Float64bits(f) }

// equiKey is one equality pair extracted from a join condition:
// leftCol = rightCol (indices local to each side).
type equiKey struct{ l, r int }

// extractEquiKeys splits a join condition into hashable equality pairs
// and a residual predicate (still over the concatenated schema).
func extractEquiKeys(on expr.Expr, nLeft int) ([]equiKey, expr.Expr) {
	var keys []equiKey
	var residual []expr.Expr
	for _, c := range expr.SplitConjuncts(on, nil) {
		if cmp, ok := c.(*expr.Cmp); ok && cmp.Op == expr.CmpEq {
			lref, lok := cmp.L.(*expr.ColRef)
			rref, rok := cmp.R.(*expr.ColRef)
			if lok && rok {
				switch {
				case lref.Idx < nLeft && rref.Idx >= nLeft:
					keys = append(keys, equiKey{lref.Idx, rref.Idx - nLeft})
					continue
				case rref.Idx < nLeft && lref.Idx >= nLeft:
					keys = append(keys, equiKey{rref.Idx, lref.Idx - nLeft})
					continue
				}
			}
		}
		residual = append(residual, c)
	}
	return keys, expr.AndAll(residual)
}

func execJoin(j *plan.Join, ctx *Context) (*storage.Chunk, error) {
	left, err := Execute(j.Left, ctx)
	if err != nil {
		return nil, err
	}
	right, err := Execute(j.Right, ctx)
	if err != nil {
		return nil, err
	}
	return joinCore(j, left, right, ctx)
}

// joinCore joins two materialized operands; the pipeline-breaking
// core shared by both executors.
func joinCore(j *plan.Join, left, right *storage.Chunk, ctx *Context) (*storage.Chunk, error) {
	switch j.Type {
	case plan.JoinCross:
		return crossJoin(j, left, right, ctx), nil
	case plan.JoinSemi, plan.JoinAnti:
		return semiAntiJoin(j, left, right, ctx)
	default:
		return condJoin(j, left, right, ctx)
	}
}

// semiAntiJoin filters the left side by match existence on the right.
// A nil condition tests whether the right side is non-empty (EXISTS).
func semiAntiJoin(j *plan.Join, left, right *storage.Chunk, ctx *Context) (*storage.Chunk, error) {
	nl := left.NumRows()
	matched := make([]bool, nl)
	if j.On == nil {
		if right.NumRows() > 0 {
			for i := range matched {
				matched[i] = true
			}
		}
	} else {
		li, _, err := matchPairs(j.On, left, right, ctx)
		if err != nil {
			return nil, err
		}
		for _, a := range li {
			matched[a] = true
		}
	}
	keepMatched := j.Type == plan.JoinSemi
	var keep []int
	for a := 0; a < nl; a++ {
		if matched[a] == keepMatched {
			keep = append(keep, a)
		}
	}
	out := left.GatherP(keep, ctx.workers(len(keep)))
	out.Schema = j.Schema()
	return out, nil
}

// matchPairs computes the matching (left, right) row pairs of a join
// condition, hash-based when equality pairs exist. The hash path
// partitions the build side over key-hash shards and the probe side
// over contiguous left-row ranges; per-range outputs concatenate in
// range order, so the pair list is identical to the sequential
// build/probe at any worker count.
func matchPairs(on expr.Expr, left, right *storage.Chunk, ctx *Context) ([]int, []int, error) {
	nLeft := len(left.Schema)
	keys, residual := extractEquiKeys(on, nLeft)
	var li, ri []int
	nl, nr := left.NumRows(), right.NumRows()
	if len(keys) > 0 {
		workers := ctx.workers(nl + nr)
		if workers <= 1 {
			li, ri = hashMatchSeq(keys, left, right)
		} else {
			li, ri = hashMatchPar(keys, left, right, workers)
		}
	} else {
		for a := 0; a < nl; a++ {
			for b := 0; b < nr; b++ {
				li = append(li, a)
				ri = append(ri, b)
			}
		}
	}
	if residual != nil && len(li) > 0 {
		workers := ctx.workers(len(li))
		cand := pairChunk(left, right, li, ri, workers)
		pc, err := residual.Eval(ctx.Expr, cand)
		if err != nil {
			return nil, nil, err
		}
		var fli, fri []int
		for i := range li {
			if !pc.IsNull(i) && pc.Ints[i] != 0 {
				fli = append(fli, li[i])
				fri = append(fri, ri[i])
			}
		}
		li, ri = fli, fri
	}
	return li, ri, nil
}

// hashMatchSeq is the single-threaded hash join: build a map over the
// right side, probe with the left side in row order.
func hashMatchSeq(keys []equiKey, left, right *storage.Chunk) (li, ri []int) {
	nl, nr := left.NumRows(), right.NumRows()
	build := make(map[string][]int, nr)
	var buf []byte
	for b := 0; b < nr; b++ {
		buf = buf[:0]
		null := false
		for _, k := range keys {
			if right.Cols[k.r].IsNull(b) {
				null = true
				break
			}
			buf = encodeKey(buf, right.Cols[k.r], b)
		}
		if null {
			continue
		}
		build[string(buf)] = append(build[string(buf)], b)
	}
	for a := 0; a < nl; a++ {
		buf = buf[:0]
		null := false
		for _, k := range keys {
			if left.Cols[k.l].IsNull(a) {
				null = true
				break
			}
			buf = encodeKey(buf, left.Cols[k.l], a)
		}
		if null {
			continue
		}
		for _, b := range build[string(buf)] {
			li = append(li, a)
			ri = append(ri, b)
		}
	}
	return li, ri
}

// hashMatchPar is the partitioned hash join. Build: every worker owns
// one key-hash shard and inserts its rows in ascending row order, so
// each per-key row list matches the sequential build. Probe: contiguous
// left-row ranges emit pair runs that concatenate in range order.
func hashMatchPar(keys []equiKey, left, right *storage.Chunk, workers int) ([]int, []int) {
	nl, nr := left.NumRows(), right.NumRows()
	lcols := make([]*storage.Column, len(keys))
	rcols := make([]*storage.Column, len(keys))
	for i, k := range keys {
		lcols[i] = left.Cols[k.l]
		rcols[i] = right.Cols[k.r]
	}
	rk := encodeRowKeys(rcols, nr, true, workers)
	shards := workers
	shardRows := rk.shardRows(shards, workers, nr)
	maps := make([]map[string][]int, shards)
	par.Indexed(workers, shards, func(_, s int) {
		m := make(map[string][]int, len(shardRows[s]))
		for _, b := range shardRows[s] {
			m[rk.keys[b]] = append(m[rk.keys[b]], b)
		}
		maps[s] = m
	})
	lk := encodeRowKeys(lcols, nl, true, workers)
	nRanges := par.NumRanges(workers, nl)
	type pairRun struct{ li, ri []int }
	runs := make([]pairRun, nRanges)
	par.Ranges(workers, nl, func(w, lo, hi int) {
		var li, ri []int
		for a := lo; a < hi; a++ {
			if lk.invalid[a] {
				continue
			}
			for _, b := range maps[lk.shard(a, shards)][lk.keys[a]] {
				li = append(li, a)
				ri = append(ri, b)
			}
		}
		runs[w] = pairRun{li, ri}
	})
	total := 0
	for _, r := range runs {
		total += len(r.li)
	}
	li := make([]int, 0, total)
	ri := make([]int, 0, total)
	for _, r := range runs {
		li = append(li, r.li...)
		ri = append(ri, r.ri...)
	}
	return li, ri
}

// pairChunk materializes candidate pairs over the concatenated schema
// for residual evaluation.
func pairChunk(left, right *storage.Chunk, li, ri []int, workers int) *storage.Chunk {
	out := &storage.Chunk{}
	out.Schema = append(append(storage.Schema{}, left.Schema...), right.Schema...)
	for _, c := range left.Cols {
		out.Cols = append(out.Cols, c.GatherP(li, workers))
	}
	for _, c := range right.Cols {
		out.Cols = append(out.Cols, c.GatherP(ri, workers))
	}
	return out
}

// joinOutput materializes the (li, ri) pairs; ri == -1 null-extends
// the right side (left outer join).
func joinOutput(j *plan.Join, left, right *storage.Chunk, li, ri []int, ctx *Context) *storage.Chunk {
	workers := ctx.workers(len(li))
	out := &storage.Chunk{Schema: j.Schema()}
	for _, c := range left.Cols {
		out.Cols = append(out.Cols, c.GatherP(li, workers))
	}
	for _, c := range right.Cols {
		out.Cols = append(out.Cols, c.GatherNullExtend(ri, workers))
	}
	return out
}

func crossJoin(j *plan.Join, left, right *storage.Chunk, ctx *Context) *storage.Chunk {
	nl, nr := left.NumRows(), right.NumRows()
	total := nl * nr
	li := make([]int, total)
	ri := make([]int, total)
	par.Ranges(ctx.workers(total), total, func(_, lo, hi int) {
		for t := lo; t < hi; t++ {
			li[t] = t / nr
			ri[t] = t % nr
		}
	})
	return joinOutput(j, left, right, li, ri, ctx)
}

// condJoin implements inner and left outer joins: hash-based when the
// condition contains equality pairs, nested-loop otherwise.
func condJoin(j *plan.Join, left, right *storage.Chunk, ctx *Context) (*storage.Chunk, error) {
	li, ri, err := matchPairs(j.On, left, right, ctx)
	if err != nil {
		return nil, err
	}
	nl := left.NumRows()

	if j.Type == plan.JoinLeft {
		matched := make([]bool, nl)
		for _, a := range li {
			matched[a] = true
		}
		for a := 0; a < nl; a++ {
			if !matched[a] {
				li = append(li, a)
				ri = append(ri, -1)
			}
		}
		// Keep output deterministic: order by left row, then right.
		li, ri = sortPairs(li, ri)
	}
	return joinOutput(j, left, right, li, ri, ctx), nil
}

// sortPairs orders join output pairs for stable results.
func sortPairs(li, ri []int) ([]int, []int) {
	type pair struct{ a, b int }
	ps := make([]pair, len(li))
	for i := range li {
		ps[i] = pair{li[i], ri[i]}
	}
	slices.SortFunc(ps, func(x, y pair) int {
		if c := cmp.Compare(x.a, y.a); c != 0 {
			return c
		}
		return cmp.Compare(x.b, y.b)
	})
	for i, p := range ps {
		li[i], ri[i] = p.a, p.b
	}
	return li, ri
}
