package exec

import (
	"math"

	"graphsql/internal/expr"
	"graphsql/internal/plan"
	"graphsql/internal/storage"
)

func mathFloat64bits(f float64) uint64 { return math.Float64bits(f) }

// equiKey is one equality pair extracted from a join condition:
// leftCol = rightCol (indices local to each side).
type equiKey struct{ l, r int }

// extractEquiKeys splits a join condition into hashable equality pairs
// and a residual predicate (still over the concatenated schema).
func extractEquiKeys(on expr.Expr, nLeft int) ([]equiKey, expr.Expr) {
	var keys []equiKey
	var residual []expr.Expr
	for _, c := range expr.SplitConjuncts(on, nil) {
		if cmp, ok := c.(*expr.Cmp); ok && cmp.Op == expr.CmpEq {
			lref, lok := cmp.L.(*expr.ColRef)
			rref, rok := cmp.R.(*expr.ColRef)
			if lok && rok {
				switch {
				case lref.Idx < nLeft && rref.Idx >= nLeft:
					keys = append(keys, equiKey{lref.Idx, rref.Idx - nLeft})
					continue
				case rref.Idx < nLeft && lref.Idx >= nLeft:
					keys = append(keys, equiKey{rref.Idx, lref.Idx - nLeft})
					continue
				}
			}
		}
		residual = append(residual, c)
	}
	return keys, expr.AndAll(residual)
}

func execJoin(j *plan.Join, ctx *Context) (*storage.Chunk, error) {
	left, err := Execute(j.Left, ctx)
	if err != nil {
		return nil, err
	}
	right, err := Execute(j.Right, ctx)
	if err != nil {
		return nil, err
	}
	switch j.Type {
	case plan.JoinCross:
		return crossJoin(j, left, right), nil
	case plan.JoinSemi, plan.JoinAnti:
		return semiAntiJoin(j, left, right, ctx)
	default:
		return condJoin(j, left, right, ctx)
	}
}

// semiAntiJoin filters the left side by match existence on the right.
// A nil condition tests whether the right side is non-empty (EXISTS).
func semiAntiJoin(j *plan.Join, left, right *storage.Chunk, ctx *Context) (*storage.Chunk, error) {
	nl := left.NumRows()
	matched := make([]bool, nl)
	if j.On == nil {
		if right.NumRows() > 0 {
			for i := range matched {
				matched[i] = true
			}
		}
	} else {
		li, _, err := matchPairs(j.On, left, right, ctx)
		if err != nil {
			return nil, err
		}
		for _, a := range li {
			matched[a] = true
		}
	}
	keepMatched := j.Type == plan.JoinSemi
	var keep []int
	for a := 0; a < nl; a++ {
		if matched[a] == keepMatched {
			keep = append(keep, a)
		}
	}
	out := left.Gather(keep)
	out.Schema = j.Schema()
	return out, nil
}

// matchPairs computes the matching (left, right) row pairs of a join
// condition, hash-based when equality pairs exist.
func matchPairs(on expr.Expr, left, right *storage.Chunk, ctx *Context) ([]int, []int, error) {
	nLeft := len(left.Schema)
	keys, residual := extractEquiKeys(on, nLeft)
	var li, ri []int
	nl, nr := left.NumRows(), right.NumRows()
	if len(keys) > 0 {
		build := make(map[string][]int, nr)
		var buf []byte
		for b := 0; b < nr; b++ {
			buf = buf[:0]
			null := false
			for _, k := range keys {
				if right.Cols[k.r].IsNull(b) {
					null = true
					break
				}
				buf = encodeKey(buf, right.Cols[k.r], b)
			}
			if null {
				continue
			}
			build[string(buf)] = append(build[string(buf)], b)
		}
		for a := 0; a < nl; a++ {
			buf = buf[:0]
			null := false
			for _, k := range keys {
				if left.Cols[k.l].IsNull(a) {
					null = true
					break
				}
				buf = encodeKey(buf, left.Cols[k.l], a)
			}
			if null {
				continue
			}
			for _, b := range build[string(buf)] {
				li = append(li, a)
				ri = append(ri, b)
			}
		}
	} else {
		for a := 0; a < nl; a++ {
			for b := 0; b < nr; b++ {
				li = append(li, a)
				ri = append(ri, b)
			}
		}
	}
	if residual != nil && len(li) > 0 {
		cand := pairChunk(left, right, li, ri)
		pc, err := residual.Eval(ctx.Expr, cand)
		if err != nil {
			return nil, nil, err
		}
		var fli, fri []int
		for i := range li {
			if !pc.IsNull(i) && pc.Ints[i] != 0 {
				fli = append(fli, li[i])
				fri = append(fri, ri[i])
			}
		}
		li, ri = fli, fri
	}
	return li, ri, nil
}

// pairChunk materializes candidate pairs over the concatenated schema
// for residual evaluation.
func pairChunk(left, right *storage.Chunk, li, ri []int) *storage.Chunk {
	out := &storage.Chunk{}
	out.Schema = append(append(storage.Schema{}, left.Schema...), right.Schema...)
	for _, c := range left.Cols {
		out.Cols = append(out.Cols, c.Gather(li))
	}
	for _, c := range right.Cols {
		out.Cols = append(out.Cols, c.Gather(ri))
	}
	return out
}

// joinOutput materializes the (li, ri) pairs; ri == -1 null-extends
// the right side (left outer join).
func joinOutput(j *plan.Join, left, right *storage.Chunk, li, ri []int) *storage.Chunk {
	out := &storage.Chunk{Schema: j.Schema()}
	for _, c := range left.Cols {
		out.Cols = append(out.Cols, c.Gather(li))
	}
	for cIdx, c := range right.Cols {
		oc := storage.NewColumn(right.Schema[cIdx].Kind, len(ri))
		for _, r := range ri {
			if r < 0 {
				oc.AppendNull()
			} else {
				oc.Append(c.Get(r))
			}
		}
		out.Cols = append(out.Cols, oc)
	}
	return out
}

func crossJoin(j *plan.Join, left, right *storage.Chunk) *storage.Chunk {
	nl, nr := left.NumRows(), right.NumRows()
	li := make([]int, 0, nl*nr)
	ri := make([]int, 0, nl*nr)
	for a := 0; a < nl; a++ {
		for b := 0; b < nr; b++ {
			li = append(li, a)
			ri = append(ri, b)
		}
	}
	return joinOutput(j, left, right, li, ri)
}

// condJoin implements inner and left outer joins: hash-based when the
// condition contains equality pairs, nested-loop otherwise.
func condJoin(j *plan.Join, left, right *storage.Chunk, ctx *Context) (*storage.Chunk, error) {
	li, ri, err := matchPairs(j.On, left, right, ctx)
	if err != nil {
		return nil, err
	}
	nl := left.NumRows()

	if j.Type == plan.JoinLeft {
		matched := make([]bool, nl)
		for _, a := range li {
			matched[a] = true
		}
		for a := 0; a < nl; a++ {
			if !matched[a] {
				li = append(li, a)
				ri = append(ri, -1)
			}
		}
		// Keep output deterministic: order by left row, then right.
		li, ri = sortPairs(li, ri)
	}
	return joinOutput(j, left, right, li, ri), nil
}

// sortPairs orders join output pairs for stable results.
func sortPairs(li, ri []int) ([]int, []int) {
	type pair struct{ a, b int }
	ps := make([]pair, len(li))
	for i := range li {
		ps[i] = pair{li[i], ri[i]}
	}
	// insertion-friendly stable sort
	sortSlice(ps, func(x, y pair) bool {
		if x.a != y.a {
			return x.a < y.a
		}
		return x.b < y.b
	})
	for i, p := range ps {
		li[i], ri[i] = p.a, p.b
	}
	return li, ri
}

// sortSlice is a tiny generic stable merge sort to avoid pulling
// reflection-based sorting into the hot path.
func sortSlice[T any](s []T, less func(a, b T) bool) {
	if len(s) < 2 {
		return
	}
	mid := len(s) / 2
	leftHalf := append([]T(nil), s[:mid]...)
	rightHalf := append([]T(nil), s[mid:]...)
	sortSlice(leftHalf, less)
	sortSlice(rightHalf, less)
	i, jj := 0, 0
	for k := range s {
		switch {
		case i >= len(leftHalf):
			s[k] = rightHalf[jj]
			jj++
		case jj >= len(rightHalf):
			s[k] = leftHalf[i]
			i++
		case less(rightHalf[jj], leftHalf[i]):
			s[k] = rightHalf[jj]
			jj++
		default:
			s[k] = leftHalf[i]
			i++
		}
	}
}
