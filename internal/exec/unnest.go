package exec

import (
	"graphsql/internal/plan"
	"graphsql/internal/storage"
	"graphsql/internal/types"
)

// execUnnest expands a nested-table column into rows (§2). The
// standard inner form drops input rows whose path is NULL or empty;
// the outer form (LEFT JOIN UNNEST ... ON TRUE) keeps them with
// null-extended path columns, the behaviour the paper describes for
// preserving "the empty collection".
func execUnnest(u *plan.Unnest, ctx *Context) (*storage.Chunk, error) {
	in, err := Execute(u.Input, ctx)
	if err != nil {
		return nil, err
	}
	pc, err := u.PathExpr.Eval(ctx.Expr, in)
	if err != nil {
		return nil, err
	}
	nIn := in.NumRows()
	nPathCols := len(u.PathSchema)

	out := storage.NewChunk(u.Sch)
	inWidth := len(in.Cols)
	appendRow := func(row int, edge []types.Value, ord int64) {
		for c := 0; c < inWidth; c++ {
			out.Cols[c].Append(in.Cols[c].Get(row))
		}
		if edge == nil {
			for c := 0; c < nPathCols; c++ {
				out.Cols[inWidth+c].AppendNull()
			}
			if u.Ordinality {
				out.Cols[inWidth+nPathCols].AppendNull()
			}
			return
		}
		for c := 0; c < nPathCols; c++ {
			out.Cols[inWidth+c].Append(edge[c])
		}
		if u.Ordinality {
			out.Cols[inWidth+nPathCols].AppendInt(ord)
		}
	}

	for row := 0; row < nIn; row++ {
		if pc.IsNull(row) {
			if u.Outer {
				appendRow(row, nil, 0)
			}
			continue
		}
		p := pc.Paths[row]
		if p.Len() == 0 {
			if u.Outer {
				appendRow(row, nil, 0)
			}
			continue
		}
		for e, edge := range p.Rows {
			appendRow(row, edge, int64(e+1))
		}
	}
	return out, nil
}
