package exec

import (
	"sort"

	"graphsql/internal/par"
	"graphsql/internal/storage"
)

// The relational operators opt into Context.Parallelism with the same
// discipline as the shortest-path runtime (internal/graph): a
// sequential fast path below a size threshold, work partitioned over
// disjoint output locations, and per-range results merged in a fixed
// order — so every operator's output is bit-identical to its
// sequential execution at any worker count.

// minParallelRows gates the parallel paths of the relational
// operators; inputs below it run the original sequential code. A
// variable (not a const) so tests and benchmarks can lower it to force
// the parallel paths on small corpora; see SetMinParallelRows.
var minParallelRows = 1 << 13

// SetMinParallelRows overrides the parallel-operator gate and returns
// the previous value. Intended for tests and benchmarks; not safe to
// call concurrently with query execution.
func SetMinParallelRows(n int) int {
	prev := minParallelRows
	minParallelRows = n
	return prev
}

// workers resolves the worker count for an operator over n rows: 1
// below the gate, the context's budget otherwise.
func (ctx *Context) workers(n int) int {
	if n < minParallelRows {
		return 1
	}
	return par.Workers(ctx.Parallelism)
}

// FNV-1a, used to shard rows by hash key. The shard assignment never
// influences operator output (shards are either merged in ascending
// row order or independent by construction), so the hash only has to
// be deterministic within one process.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnv64(b []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// rowKeys holds the precomputed hash key and shard hash of every row
// of an operator input, built in parallel over contiguous ranges.
type rowKeys struct {
	keys   []string
	hashes []uint64
	// invalid is non-nil when rows with NULL key columns are skipped
	// (join semantics: NULL never matches); such rows have no key.
	invalid []bool
}

// shard maps row i onto one of the given shards.
func (rk *rowKeys) shard(i, shards int) int {
	return int(rk.hashes[i] % uint64(shards))
}

// encodeRowKeys precomputes the self-delimiting encodeKey bytes (as a
// string) and their hash for every row over the given key columns.
func encodeRowKeys(cols []*storage.Column, n int, skipNulls bool, workers int) *rowKeys {
	rk := &rowKeys{keys: make([]string, n), hashes: make([]uint64, n)}
	if skipNulls {
		rk.invalid = make([]bool, n)
	}
	par.Ranges(workers, n, func(_, lo, hi int) {
		var buf []byte
		for i := lo; i < hi; i++ {
			if skipNulls {
				null := false
				for _, c := range cols {
					if c.IsNull(i) {
						null = true
						break
					}
				}
				if null {
					rk.invalid[i] = true
					continue
				}
			}
			buf = buf[:0]
			for _, c := range cols {
				buf = encodeKey(buf, c, i)
			}
			rk.keys[i] = string(buf)
			rk.hashes[i] = fnv64(buf)
		}
	})
	return rk
}

// shardRows buckets the row indices [0, n) by shard, each list in
// ascending order; rows marked invalid are dropped. Built with one
// parallel bucketing pass (per-range lists concatenated in range
// order) so shard workers visit only their own rows instead of
// re-scanning the whole input.
func (rk *rowKeys) shardRows(shards, workers, n int) [][]int {
	nRanges := par.NumRanges(workers, n)
	locals := make([][][]int, nRanges)
	par.Ranges(workers, n, func(w, lo, hi int) {
		lists := make([][]int, shards)
		for i := lo; i < hi; i++ {
			if rk.invalid != nil && rk.invalid[i] {
				continue
			}
			s := rk.shard(i, shards)
			lists[s] = append(lists[s], i)
		}
		locals[w] = lists
	})
	out := make([][]int, shards)
	par.Indexed(workers, shards, func(_, s int) {
		total := 0
		for _, l := range locals {
			total += len(l[s])
		}
		list := make([]int, 0, total)
		for _, l := range locals {
			list = append(list, l[s]...)
		}
		out[s] = list
	})
	return out
}

// mergeAscending merges per-shard row-index lists into one ascending
// list. The shards partition a dense id domain [0, n), so a boolean
// mask plus one linear scan recovers the ascending order in O(n) —
// the same list a sequential scan would have kept, without the
// O(n × shards) head-scan of a naive k-way merge.
func mergeAscending(shards [][]int, n int) []int {
	total := 0
	nonEmpty := 0
	for _, s := range shards {
		total += len(s)
		if len(s) > 0 {
			nonEmpty++
		}
	}
	if total == 0 {
		return nil
	}
	if nonEmpty == 1 {
		for _, s := range shards {
			if len(s) > 0 {
				return s
			}
		}
	}
	mask := make([]bool, n)
	for _, s := range shards {
		for _, i := range s {
			mask[i] = true
		}
	}
	out := make([]int, 0, total)
	for i, keep := range mask {
		if keep {
			out = append(out, i)
		}
	}
	return out
}

// parallelMergeSort stably sorts idx under less using one sorted run
// per worker followed by rounds of pairwise parallel merges. Ties take
// the element from the earlier run, so the result is the unique stable
// order — identical to sort.SliceStable for any worker count.
func parallelMergeSort(idx []int, less func(a, b int) bool, workers int) {
	n := len(idx)
	nRuns := par.NumRanges(workers, n)
	if nRuns <= 1 {
		sort.SliceStable(idx, func(a, b int) bool { return less(idx[a], idx[b]) })
		return
	}
	bounds := make([]int, 1, nRuns+1)
	for w := 0; w < nRuns; w++ {
		_, hi := par.RangeBounds(workers, n, w)
		bounds = append(bounds, hi)
	}
	par.Indexed(workers, nRuns, func(_, r int) {
		seg := idx[bounds[r]:bounds[r+1]]
		sort.SliceStable(seg, func(a, b int) bool { return less(seg[a], seg[b]) })
	})
	src, dst := idx, make([]int, n)
	for len(bounds) > 2 {
		type job struct{ lo, mid, hi int }
		var jobs []job
		nb := make([]int, 1, len(bounds)/2+2)
		i := 0
		for ; i+2 < len(bounds); i += 2 {
			jobs = append(jobs, job{bounds[i], bounds[i+1], bounds[i+2]})
			nb = append(nb, bounds[i+2])
		}
		if i+1 < len(bounds) {
			// Odd run count: the last run has no partner this round.
			jobs = append(jobs, job{bounds[i], bounds[i+1], bounds[i+1]})
			nb = append(nb, bounds[i+1])
		}
		par.Indexed(workers, len(jobs), func(_, j int) {
			jb := jobs[j]
			mergeRuns(dst[jb.lo:jb.hi], src[jb.lo:jb.mid], src[jb.mid:jb.hi], less)
		})
		src, dst = dst, src
		bounds = nb
	}
	if &src[0] != &idx[0] {
		copy(idx, src)
	}
}

// mergeRuns stably merges the sorted runs a and b into out; ties take
// from a (the earlier run).
func mergeRuns(out, a, b []int, less func(x, y int) bool) {
	i, j := 0, 0
	for k := range out {
		switch {
		case i >= len(a):
			out[k] = b[j]
			j++
		case j >= len(b):
			out[k] = a[i]
			i++
		case less(b[j], a[i]):
			out[k] = b[j]
			j++
		default:
			out[k] = a[i]
			i++
		}
	}
}
