package exec

import (
	"context"

	"graphsql/internal/storage"
)

// Cursor is the row-batch iterator seam over a materialized result:
// the engine executes a plan to one columnar chunk (the MonetDB model —
// every operator materializes fully), and the cursor then hands the
// rows out in bounded windows so row-oriented consumers (the HTTP
// streaming path, the CLI) never build a second, row-major copy of the
// whole result. Each Next call polls the cancellation context, keeping
// a disconnecting client's cursor under the same cancellation contract
// as execution itself.
//
// The windows are zero-copy views (storage.Chunk.Slice); they stay
// valid as long as the underlying chunk does. A Cursor is not safe for
// concurrent use.
type Cursor struct {
	ctx   context.Context
	chunk *storage.Chunk
	pos   int
}

// NewCursor wraps a materialized chunk. ctx may be nil (never cancels);
// chunk may be nil (an empty result, e.g. a DDL statement).
func NewCursor(ctx context.Context, chunk *storage.Chunk) *Cursor {
	return &Cursor{ctx: ctx, chunk: chunk}
}

// Schema returns the result schema (nil for an empty result).
func (c *Cursor) Schema() storage.Schema {
	if c.chunk == nil {
		return nil
	}
	return c.chunk.Schema
}

// NumRows returns the total row count.
func (c *Cursor) NumRows() int {
	if c.chunk == nil {
		return 0
	}
	return c.chunk.NumRows()
}

// Next returns the next window of up to maxRows rows as a zero-copy
// chunk view, or (nil, nil) once the cursor is exhausted. It returns
// the context's error if the consumer was canceled between batches.
func (c *Cursor) Next(maxRows int) (*storage.Chunk, error) {
	if c.ctx != nil {
		if err := c.ctx.Err(); err != nil {
			return nil, err
		}
	}
	n := c.NumRows()
	if c.pos >= n {
		return nil, nil
	}
	if maxRows <= 0 {
		maxRows = n - c.pos
	}
	hi := c.pos + maxRows
	if hi > n {
		hi = n
	}
	win := c.chunk.Slice(c.pos, hi)
	c.pos = hi
	return win, nil
}
