package exec

import (
	"context"

	"graphsql/internal/storage"
)

// Cursor is the row-batch iterator seam between execution and
// row-oriented consumers (the HTTP streaming path, the facade's Rows,
// the CLI). It comes in two flavors behind one API:
//
//   - chunk-backed (NewCursor): windows an already-materialized result,
//     so the total row count is known up front. This is what non-SELECT
//     statements and the legacy materializing executor produce.
//   - operator-backed (NewOperatorCursor): pulls batches from an open
//     Operator tree, re-windowing them to the consumer's requested
//     size. Execution happens *during* iteration — the first window is
//     available before the query finishes — and the total row count is
//     unknown until exhaustion.
//
// Each Next call polls the cancellation context, keeping a
// disconnecting client's cursor under the same cancellation contract
// as execution itself. Windows are zero-copy views
// (storage.Chunk.Slice) of the current batch; a window stays valid
// until the next Next call on an operator-backed cursor, and as long
// as the chunk does on a chunk-backed one. A Cursor is not safe for
// concurrent use.
//
// Close releases the underlying operator tree and is idempotent; an
// exhausted or failed cursor closes itself, but consumers that may
// abandon a cursor early must still call Close (the gsqlvet cursorpair
// rule enforces this on request-path packages).
type Cursor struct {
	ctx     context.Context
	op      Operator
	onClose func()
	pend    *storage.Chunk // chunk-backed result, or current batch
	pos     int
	served  int
	known   int // total rows; -1 until exhaustion on operator cursors
	done    bool
	closed  bool
	sticky  error
}

// NewCursor wraps a materialized chunk. ctx may be nil (never
// cancels); chunk may be nil (an empty result, e.g. a DDL statement).
func NewCursor(ctx context.Context, chunk *storage.Chunk) *Cursor {
	known := 0
	if chunk != nil {
		known = chunk.NumRows()
	}
	return &Cursor{ctx: ctx, pend: chunk, known: known}
}

// NewOperatorCursor wraps an already-open operator tree. The cursor
// owns the tree: it closes it at exhaustion, on error, and on Close.
// onClose, if non-nil, runs exactly once when the cursor closes —
// the engine uses it to end the "execute" trace span, whose lifetime
// under pull execution is the drain, not the open.
func NewOperatorCursor(ctx context.Context, op Operator, onClose func()) *Cursor {
	return &Cursor{ctx: ctx, op: op, onClose: onClose, known: -1}
}

// Schema returns the result schema (nil for an empty result).
func (c *Cursor) Schema() storage.Schema {
	if c.op != nil {
		return c.op.Schema()
	}
	if c.pend == nil {
		return nil
	}
	return c.pend.Schema
}

// NumRows returns the total row count, or -1 while it is still
// unknown: an operator-backed cursor only learns its total at
// exhaustion.
func (c *Cursor) NumRows() int { return c.known }

// Next returns the next window of exactly maxRows rows — fewer only at
// exhaustion — or (nil, nil) once the cursor is exhausted. maxRows <= 0
// drains everything remaining into one window. Windows are filled
// across operator batches, so the frame sequence a consumer observes
// is a pure function of the result and maxRows — ceil(n/maxRows)
// frames — never of the executor's internal batch boundaries (the
// streamed wire encoding relies on this to stay byte-identical across
// executors and cache replays). A window served from within a single
// batch is a zero-copy view valid until the next Next call; one that
// spans batches is materialized fresh. It returns the context's error
// if the consumer was canceled between batches; any error closes the
// cursor and is sticky.
func (c *Cursor) Next(maxRows int) (*storage.Chunk, error) {
	if c.sticky != nil {
		return nil, c.sticky
	}
	if c.ctx != nil {
		if err := c.ctx.Err(); err != nil {
			return nil, c.fail(err)
		}
	}
	if c.done || c.closed {
		return nil, nil
	}
	if maxRows <= 0 {
		return c.drain()
	}
	var acc *storage.Chunk // partial window spanning batch boundaries
	accRows := 0
	for {
		if c.pend != nil && c.pos < c.pend.NumRows() {
			avail := c.pend.NumRows() - c.pos
			need := maxRows - accRows
			if acc == nil && avail >= need {
				win := c.pend.Slice(c.pos, c.pos+need)
				c.pos += need
				c.served += need
				return win, nil
			}
			take := avail
			if take > need {
				take = need
			}
			part := c.pend.Slice(c.pos, c.pos+take)
			if acc == nil {
				acc = emptyLike(part)
			}
			acc.Extend(part)
			accRows += take
			c.pos += take
			if accRows == maxRows {
				c.served += accRows
				return acc, nil
			}
			continue
		}
		if c.op == nil {
			break
		}
		b, err := c.op.Next()
		if err != nil {
			return nil, c.fail(err)
		}
		if b == nil {
			break
		}
		c.pend, c.pos = b, 0
	}
	c.served += accRows
	c.finish()
	if accRows == 0 {
		return nil, nil
	}
	return acc, nil
}

// drain returns everything remaining as one window.
func (c *Cursor) drain() (*storage.Chunk, error) {
	var rest *storage.Chunk
	if c.pend != nil && c.pos < c.pend.NumRows() {
		rest = c.pend.Slice(c.pos, c.pend.NumRows())
		c.pos = c.pend.NumRows()
	}
	if c.op != nil {
		more, err := drainInput(c.op)
		if err != nil {
			return nil, c.fail(err)
		}
		switch {
		case rest == nil:
			rest = more
		case more.NumRows() > 0:
			out := emptyLike(rest)
			out.Extend(rest)
			out.Extend(more)
			rest = out
		}
	}
	if rest != nil {
		c.served += rest.NumRows()
	}
	c.finish()
	if rest == nil || rest.NumRows() == 0 {
		return nil, nil
	}
	return rest, nil
}

// finish marks exhaustion: the total becomes known and the operator
// tree is released.
func (c *Cursor) finish() {
	c.done = true
	if c.known < 0 {
		c.known = c.served
	}
	c.Close()
}

// fail records a sticky error and releases the operator tree.
func (c *Cursor) fail(err error) error {
	c.sticky = err
	c.Close()
	return err
}

// Close releases the underlying operator tree (if any) and fires the
// close hook. Idempotent; safe on a nil-op cursor.
func (c *Cursor) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	var err error
	if c.op != nil {
		err = c.op.Close()
	}
	if c.onClose != nil {
		c.onClose()
	}
	return err
}
