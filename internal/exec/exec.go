// Package exec executes bound logical plans over the columnar storage
// layer. Two executors share one set of operator cores:
//
// The default executor is pull-based: Build compiles the plan into an
// Operator tree (Open / Next / Close) whose pipeline-able operators —
// scans, filter, projection, UNNEST, LIMIT, UNION ALL — produce and
// consume bounded storage.Chunk batches, so intermediate memory stays
// proportional to batch size × pipeline depth and the first batch
// reaches the consumer before execution completes. Pipeline breakers —
// join, GraphMatch, aggregation, sort, distinct, the deduplicating set
// operations, CTE bodies — consume their inputs batch-at-a-time, then
// run the same parallel materializing cores the legacy executor uses
// and window their output back into batches.
//
// The legacy executor (Context.Materialize, or GSQL_EXEC=materialize
// process-wide) interprets the plan recursively with every operator
// fully materialized — the MonetDB execution model the paper's
// prototype builds on (§3.3: "all intermediate results are fully
// materialized"). Both executors run the same expression evaluation
// and the same deterministic parallel cores, so their results are
// value-identical at any worker count; the differential tests in this
// package and the engine's corpus pin that down.
package exec

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"graphsql/internal/core"
	"graphsql/internal/expr"
	"graphsql/internal/fault"
	"graphsql/internal/par"
	"graphsql/internal/plan"
	"graphsql/internal/storage"
	"graphsql/internal/trace"
	"graphsql/internal/types"
)

// Context carries per-execution state.
type Context struct {
	// Ctx carries optional cancellation (client disconnects, server
	// timeouts). Operators fully materialize, so it is checked at the
	// natural chunk boundaries — before every operator runs and at the
	// solver's source-group boundaries inside GraphMatch — and inside a
	// single traversal: BFS/Dijkstra poll every few thousand queue pops
	// and the frontier-parallel BFS polls per level, so one huge
	// traversal aborts mid-flight. A nil Ctx never cancels.
	Ctx context.Context
	// Expr holds the host parameter bindings.
	Expr *expr.Context
	// GraphIndexes caches dynamic graph indexes keyed by
	// "table(srcIdx,dstIdx)" (lower-cased); see DB.BuildGraphIndex.
	GraphIndexes map[string]*core.DynamicGraph
	// Parallelism is the worker budget for graph construction and
	// batched shortest-path solving; <= 0 means one worker per CPU.
	// When a batch has fewer source groups than workers, the leftover
	// budget parallelizes the BFS frontier within each traversal (see
	// graph.Solver).
	Parallelism int
	// Stats collects optional instrumentation; may be nil.
	Stats *Stats
	// Trace, when non-nil, records one span per operator (output rows,
	// wall time, solver frontier levels). TraceSpan is the open span new
	// operator spans attach under; creators that set Trace must set
	// TraceSpan to the parent span (trace.NoSpan for a root). A nil
	// Trace costs nothing on the execution path.
	Trace     *trace.Trace
	TraceSpan trace.SpanID
	// Materialize selects the legacy full-materialization interpreter
	// instead of the pull executor. The zero value follows the process
	// default (see DefaultMaterialize).
	Materialize bool
	// BatchRows bounds the rows per batch the pull executor's operators
	// emit; <= 0 uses DefaultBatchRows. Ignored by the materializing
	// executor.
	BatchRows int
	// shared caches the results of Shared (CTE) subplans within one
	// execution (materializing executor).
	shared map[*plan.Shared]*storage.Chunk
	// sharedPull caches the per-execution state of Shared (CTE)
	// subplans for the pull executor; see sharedOp.
	sharedPull map[*plan.Shared]*sharedState
}

// batchRows resolves the effective pull-executor batch bound.
func (ctx *Context) batchRows() int {
	if ctx.BatchRows > 0 {
		return ctx.BatchRows
	}
	return DefaultBatchRows
}

// sharedPullState returns (allocating on first use) the shared
// materialization state for one CTE plan node.
func (ctx *Context) sharedPullState(t *plan.Shared) *sharedState {
	if ctx.sharedPull == nil {
		ctx.sharedPull = make(map[*plan.Shared]*sharedState)
	}
	st := ctx.sharedPull[t]
	if st == nil {
		st = &sharedState{}
		ctx.sharedPull[t] = st
	}
	return st
}

// Stats instruments the phases of graph-select execution for the E6
// phase-breakdown experiment.
type Stats struct {
	// GraphBuilds counts CSR constructions performed.
	GraphBuilds int
	// GraphBuildVertices and GraphBuildEdges total the sizes built.
	GraphBuildVertices int
	GraphBuildEdges    int
	// IndexHits counts graph-index cache hits.
	IndexHits int
	// IndexRefreshes counts delta absorptions; IndexRebuilds counts
	// full snapshot rebuilds triggered by delta growth.
	IndexRefreshes int
	IndexRebuilds  int
}

// GraphIndexKey builds the cache key for a prepared graph on a base
// table.
func GraphIndexKey(table string, srcIdx, dstIdx int) string {
	return fmt.Sprintf("%s(%d,%d)", strings.ToLower(table), srcIdx, dstIdx)
}

// Canceled returns the context's error if the execution was canceled,
// nil otherwise (including when no context was attached).
func (ctx *Context) Canceled() error {
	if ctx.Ctx == nil {
		return nil
	}
	return ctx.Ctx.Err()
}

// Execute runs a plan and returns the materialized result, through
// the executor the Context selects (pull by default; see the package
// comment). With a trace attached it brackets every operator in a
// span carrying the operator's Describe line, wall time and output
// row count, nested to mirror the plan tree.
func Execute(n plan.Node, ctx *Context) (*storage.Chunk, error) {
	if ctx == nil {
		ctx = &Context{}
	}
	if ctx.Ctx == nil {
		// Direct exec callers (tests, embedded use) may not carry a
		// context; normalizing here keeps every operator below — and the
		// solver the GraphMatch operator hands off to — on one non-nil
		// context instead of each re-deciding.
		//gsqlvet:allow ctxprop library entry point; engine callers always set Ctx
		ctx.Ctx = context.Background()
	}
	if ctx.Expr == nil {
		ctx.Expr = &expr.Context{}
	}
	if !ctx.Materialize {
		return runPull(n, ctx)
	}
	tr := ctx.Trace
	if tr == nil {
		return execNode(n, ctx)
	}
	parent := ctx.TraceSpan
	sp := tr.Begin(parent, n.Describe())
	ctx.TraceSpan = sp
	out, err := execNode(n, ctx)
	ctx.TraceSpan = parent
	if out != nil {
		tr.SetRows(sp, int64(out.NumRows()))
	}
	tr.End(sp)
	return out, err
}

func execNode(n plan.Node, ctx *Context) (*storage.Chunk, error) {
	if ctx.Expr == nil {
		ctx.Expr = &expr.Context{}
	}
	// Every operator materializes fully, so the pre-operator check makes
	// a canceled plan tree unwind at the next chunk boundary.
	if err := ctx.Canceled(); err != nil {
		return nil, err
	}
	if err := fault.Inject(fault.PointExecOperator); err != nil {
		return nil, err
	}
	switch t := n.(type) {
	case *plan.Scan:
		// Zero-copy view over the base table with the alias-qualified
		// schema.
		return &storage.Chunk{Schema: t.Sch, Cols: t.Table.Cols}, nil
	case *plan.ChunkScan:
		return t.Chunk, nil
	case *plan.Rename:
		in, err := Execute(t.Input, ctx)
		if err != nil {
			return nil, err
		}
		return &storage.Chunk{Schema: t.Sch, Cols: in.Cols}, nil
	case *plan.Shared:
		if c, ok := ctx.shared[t]; ok {
			return c, nil
		}
		c, err := Execute(t.Input, ctx)
		if err != nil {
			return nil, err
		}
		if ctx.shared == nil {
			ctx.shared = make(map[*plan.Shared]*storage.Chunk)
		}
		ctx.shared[t] = c
		return c, nil
	case *plan.Filter:
		return execFilter(t, ctx)
	case *plan.Project:
		return execProject(t, ctx)
	case *plan.Join:
		return execJoin(t, ctx)
	case *plan.GraphMatch:
		return execGraphMatch(t, ctx)
	case *plan.Aggregate:
		return execAggregate(t, ctx)
	case *plan.Sort:
		return execSort(t, ctx)
	case *plan.Limit:
		return execLimit(t, ctx)
	case *plan.Distinct:
		return execDistinct(t, ctx)
	case *plan.Unnest:
		return execUnnest(t, ctx)
	case *plan.SetOp:
		return execSetOp(t, ctx)
	}
	return nil, planNodeError(n)
}

func planNodeError(n plan.Node) error {
	return fmt.Errorf("internal: unknown plan node %T", n)
}

func execFilter(f *plan.Filter, ctx *Context) (*storage.Chunk, error) {
	in, err := Execute(f.Input, ctx)
	if err != nil {
		return nil, err
	}
	return filterCore(f, in, ctx)
}

// filterCore applies the predicate to one input chunk; row-local, so
// per-batch application concatenates to the whole-input result.
func filterCore(f *plan.Filter, in *storage.Chunk, ctx *Context) (*storage.Chunk, error) {
	pc, err := f.Pred.Eval(ctx.Expr, in)
	if err != nil {
		return nil, err
	}
	mask := make([]bool, in.NumRows())
	for i := range mask {
		mask[i] = !pc.IsNull(i) && pc.Ints[i] != 0
	}
	return in.FilterByMask(mask), nil
}

func execProject(p *plan.Project, ctx *Context) (*storage.Chunk, error) {
	in, err := Execute(p.Input, ctx)
	if err != nil {
		return nil, err
	}
	return projectCore(p, in, ctx)
}

// projectCore evaluates the projection over one input chunk.
func projectCore(p *plan.Project, in *storage.Chunk, ctx *Context) (*storage.Chunk, error) {
	out := &storage.Chunk{Schema: p.Sch, Cols: make([]*storage.Column, len(p.Exprs))}
	for i, e := range p.Exprs {
		c, err := e.Eval(ctx.Expr, in)
		if err != nil {
			return nil, err
		}
		out.Cols[i] = c
	}
	return out, nil
}

func execSort(s *plan.Sort, ctx *Context) (*storage.Chunk, error) {
	in, err := Execute(s.Input, ctx)
	if err != nil {
		return nil, err
	}
	return sortCore(s, in, ctx)
}

// sortCore orders one materialized input chunk; the pipeline-breaking
// core shared by both executors.
func sortCore(s *plan.Sort, in *storage.Chunk, ctx *Context) (*storage.Chunk, error) {
	n := in.NumRows()
	keys := make([]*storage.Column, len(s.Keys))
	for i, k := range s.Keys {
		c, err := k.Expr.Eval(ctx.Expr, in)
		if err != nil {
			return nil, err
		}
		keys[i] = c
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	less := func(ra, rb int) bool {
		for ki, k := range s.Keys {
			c := keys[ki]
			na, nb := c.IsNull(ra), c.IsNull(rb)
			if na || nb {
				if na && nb {
					continue
				}
				// Default: NULLS LAST ascending, NULLS FIRST when
				// descending (PostgreSQL convention).
				nullsFirst := k.Desc
				if k.NullsFirst == 1 {
					nullsFirst = true
				} else if k.NullsFirst == 0 {
					nullsFirst = false
				}
				if na {
					return nullsFirst
				}
				return !nullsFirst
			}
			cmp := types.Compare(c.Get(ra), c.Get(rb))
			if cmp == 0 {
				continue
			}
			if k.Desc {
				return cmp > 0
			}
			return cmp < 0
		}
		return false
	}
	// The stable order under a fixed comparator is unique, so the
	// parallel merge sort returns exactly what sort.SliceStable would.
	workers := ctx.workers(n)
	if workers <= 1 {
		sort.SliceStable(idx, func(a, b int) bool { return less(idx[a], idx[b]) })
		return in.Gather(idx), nil
	}
	parallelMergeSort(idx, less, workers)
	return in.GatherP(idx, workers), nil
}

// limitBounds evaluates and validates OFFSET/LIMIT. unlimited is true
// when no LIMIT clause is present (count is then meaningless).
func limitBounds(l *plan.Limit, ctx *Context) (skip, count int, unlimited bool, err error) {
	if l.Skip != nil {
		v, err := expr.EvalScalar(l.Skip, ctx.Expr)
		if err != nil {
			return 0, 0, false, err
		}
		if v.Null || v.K != types.KindInt || v.I < 0 {
			return 0, 0, false, fmt.Errorf("OFFSET must be a non-negative integer")
		}
		skip = int(v.I)
	}
	if l.Count == nil {
		return skip, 0, true, nil
	}
	v, err := expr.EvalScalar(l.Count, ctx.Expr)
	if err != nil {
		return 0, 0, false, err
	}
	if v.Null || v.K != types.KindInt || v.I < 0 {
		return 0, 0, false, fmt.Errorf("LIMIT must be a non-negative integer")
	}
	return skip, int(v.I), false, nil
}

func execLimit(l *plan.Limit, ctx *Context) (*storage.Chunk, error) {
	in, err := Execute(l.Input, ctx)
	if err != nil {
		return nil, err
	}
	n := in.NumRows()
	skip, count, unlimited, err := limitBounds(l, ctx)
	if err != nil {
		return nil, err
	}
	if unlimited {
		count = n
	}
	lo := skip
	if lo > n {
		lo = n
	}
	hi := lo + count
	if hi > n {
		hi = n
	}
	rows := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		rows = append(rows, i)
	}
	return in.Gather(rows), nil
}

func execDistinct(d *plan.Distinct, ctx *Context) (*storage.Chunk, error) {
	in, err := Execute(d.Input, ctx)
	if err != nil {
		return nil, err
	}
	return distinctCore(d, in, ctx)
}

// distinctCore deduplicates one materialized input chunk; the
// pipeline-breaking core shared by both executors.
func distinctCore(_ *plan.Distinct, in *storage.Chunk, ctx *Context) (*storage.Chunk, error) {
	n := in.NumRows()
	workers := ctx.workers(n)
	if workers <= 1 {
		seen := make(map[string]struct{}, n)
		var keep []int
		var buf []byte
		for i := 0; i < n; i++ {
			buf = buf[:0]
			for _, c := range in.Cols {
				buf = encodeKey(buf, c, i)
			}
			k := string(buf)
			if _, ok := seen[k]; !ok {
				seen[k] = struct{}{}
				keep = append(keep, i)
			}
		}
		return in.Gather(keep), nil
	}
	// Sharded dedup: rows are hash-partitioned by key, each shard keeps
	// its first occurrences (ascending row order), and the per-shard
	// survivors merge back in ascending row order — exactly the rows a
	// sequential scan keeps.
	rk := encodeRowKeys(in.Cols, n, false, workers)
	shardRows := rk.shardRows(workers, workers, n)
	keeps := make([][]int, workers)
	par.Indexed(workers, workers, func(_, s int) {
		seen := make(map[string]struct{}, len(shardRows[s]))
		var keep []int
		for _, i := range shardRows[s] {
			if _, ok := seen[rk.keys[i]]; !ok {
				seen[rk.keys[i]] = struct{}{}
				keep = append(keep, i)
			}
		}
		keeps[s] = keep
	})
	return in.GatherP(mergeAscending(keeps, n), workers), nil
}

func execGraphMatch(g *plan.GraphMatch, ctx *Context) (*storage.Chunk, error) {
	in, err := Execute(g.Input, ctx)
	if err != nil {
		return nil, err
	}
	xc, err := g.X.Eval(ctx.Expr, in)
	if err != nil {
		return nil, err
	}
	yc, err := g.Y.Eval(ctx.Expr, in)
	if err != nil {
		return nil, err
	}
	// The solver only receives a context.Context, so the trace (and the
	// GraphMatch span its per-level frontier samples attach to) rides
	// the context down through core.PreparedGraph.match.
	stdctx := ctx.Ctx
	if ctx.Trace != nil {
		stdctx = trace.NewContext(stdctx, ctx.Trace, ctx.TraceSpan)
		ctx.Trace.SetWorkers(ctx.TraceSpan, par.Workers(ctx.Parallelism))
	}
	// A cached dynamic index serves scans of indexed base tables;
	// rows inserted since the snapshot are absorbed into its delta
	// (the paper's §6 updatable graph index).
	if scan, ok := g.Edge.(*plan.Scan); ok && ctx.GraphIndexes != nil {
		if dg, ok := ctx.GraphIndexes[GraphIndexKey(scan.Table.Name, g.SrcIdx, g.DstIdx)]; ok {
			before := dg.AppliedRows()
			rebuilt, err := dg.RefreshCtx(stdctx, scan.Table.Chunk())
			if err != nil {
				return nil, err
			}
			if ctx.Stats != nil {
				ctx.Stats.IndexHits++
				if rebuilt {
					ctx.Stats.IndexRebuilds++
				} else if dg.AppliedRows() != before {
					ctx.Stats.IndexRefreshes++
				}
			}
			return dg.MatchCtx(stdctx, g, in, xc, yc, ctx.Expr)
		}
	}
	edges, err := Execute(g.Edge, ctx)
	if err != nil {
		return nil, err
	}
	pg, err := core.BuildGraphCtx(stdctx, edges, g.SrcIdx, g.DstIdx, ctx.Parallelism)
	if err != nil {
		return nil, err
	}
	if ctx.Stats != nil {
		ctx.Stats.GraphBuilds++
		ctx.Stats.GraphBuildVertices += pg.NumVertices()
		ctx.Stats.GraphBuildEdges += pg.NumEdges()
	}
	return pg.MatchCtx(stdctx, g, in, xc, yc, ctx.Expr)
}

// encodeKey appends a type-tagged, self-delimiting encoding of column
// entry i to buf; used for hash keys in joins, grouping, distinct and
// set operations.
func encodeKey(buf []byte, c *storage.Column, i int) []byte {
	if c.IsNull(i) {
		return append(buf, 0xFF)
	}
	switch c.Kind {
	case types.KindFloat:
		buf = append(buf, 1)
		bits := uint64(floatBits(c.Floats[i]))
		for s := 0; s < 64; s += 8 {
			buf = append(buf, byte(bits>>s))
		}
	case types.KindString:
		buf = append(buf, 2)
		s := c.Strs[i]
		n := len(s)
		buf = append(buf, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
		buf = append(buf, s...)
	case types.KindPath:
		buf = append(buf, 3)
		buf = append(buf, c.Get(i).String()...)
		buf = append(buf, 0)
	default:
		buf = append(buf, 4)
		v := uint64(c.Ints[i])
		for s := 0; s < 64; s += 8 {
			buf = append(buf, byte(v>>s))
		}
	}
	return buf
}

func floatBits(f float64) uint64 {
	// Normalize -0 and NaN payloads for hashing.
	if f == 0 {
		f = 0
	}
	return mathFloat64bits(f)
}
