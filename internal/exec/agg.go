package exec

import (
	"fmt"

	"graphsql/internal/plan"
	"graphsql/internal/storage"
	"graphsql/internal/types"
)

// aggState accumulates one aggregate for one group.
type aggState struct {
	count    int64
	sumI     int64
	sumF     float64
	min, max types.Value
	seen     bool
	distinct map[string]struct{}
}

func execAggregate(a *plan.Aggregate, ctx *Context) (*storage.Chunk, error) {
	in, err := Execute(a.Input, ctx)
	if err != nil {
		return nil, err
	}
	n := in.NumRows()

	// Evaluate group-by keys and aggregate arguments column-at-a-time.
	groupCols := make([]*storage.Column, len(a.GroupBy))
	for i, g := range a.GroupBy {
		c, err := g.Eval(ctx.Expr, in)
		if err != nil {
			return nil, err
		}
		groupCols[i] = c
	}
	argCols := make([]*storage.Column, len(a.Aggs))
	for i := range a.Aggs {
		if a.Aggs[i].Arg == nil {
			continue
		}
		c, err := a.Aggs[i].Arg.Eval(ctx.Expr, in)
		if err != nil {
			return nil, err
		}
		argCols[i] = c
	}

	groups := make(map[string]int, 64)
	var groupRows []int // one representative row per group
	states := make([][]aggState, 0, 64)
	var buf []byte
	for row := 0; row < n; row++ {
		buf = buf[:0]
		for _, gc := range groupCols {
			buf = encodeKey(buf, gc, row)
		}
		gid, ok := groups[string(buf)]
		if !ok {
			gid = len(groupRows)
			groups[string(buf)] = gid
			groupRows = append(groupRows, row)
			st := make([]aggState, len(a.Aggs))
			for i := range a.Aggs {
				if a.Aggs[i].Distinct {
					st[i].distinct = make(map[string]struct{})
				}
			}
			states = append(states, st)
		}
		st := states[gid]
		for i := range a.Aggs {
			spec := &a.Aggs[i]
			if spec.Op == plan.AggCountStar {
				st[i].count++
				continue
			}
			c := argCols[i]
			if c.IsNull(row) {
				continue // aggregates skip NULL inputs
			}
			if spec.Distinct {
				var kb []byte
				kb = encodeKey(kb, c, row)
				if _, dup := st[i].distinct[string(kb)]; dup {
					continue
				}
				st[i].distinct[string(kb)] = struct{}{}
			}
			v := c.Get(row)
			st[i].count++
			switch spec.Op {
			case plan.AggSum, plan.AggAvg:
				if c.Kind == types.KindFloat {
					st[i].sumF += v.F
				} else {
					st[i].sumI += v.I
					st[i].sumF += float64(v.I)
				}
			case plan.AggMin:
				if !st[i].seen || types.Compare(v, st[i].min) < 0 {
					st[i].min = v
				}
			case plan.AggMax:
				if !st[i].seen || types.Compare(v, st[i].max) > 0 {
					st[i].max = v
				}
			}
			st[i].seen = true
		}
	}

	// A global aggregate (no GROUP BY) over zero rows still yields one
	// row: COUNT = 0, other aggregates NULL.
	if len(groupRows) == 0 && len(a.GroupBy) == 0 {
		groupRows = append(groupRows, -1)
		states = append(states, make([]aggState, len(a.Aggs)))
	}

	out := storage.NewChunk(a.Sch)
	for gid, rep := range groupRows {
		row := make([]types.Value, 0, len(a.Sch))
		for _, gc := range groupCols {
			row = append(row, gc.Get(rep))
		}
		for i := range a.Aggs {
			spec := &a.Aggs[i]
			st := &states[gid][i]
			switch spec.Op {
			case plan.AggCountStar, plan.AggCount:
				row = append(row, types.NewInt(st.count))
			case plan.AggSum:
				if st.count == 0 {
					row = append(row, types.NewNull(spec.Kind))
				} else if spec.Kind == types.KindFloat {
					row = append(row, types.NewFloat(st.sumF))
				} else {
					row = append(row, types.NewInt(st.sumI))
				}
			case plan.AggAvg:
				if st.count == 0 {
					row = append(row, types.NewNull(types.KindFloat))
				} else {
					row = append(row, types.NewFloat(st.sumF/float64(st.count)))
				}
			case plan.AggMin:
				if !st.seen {
					row = append(row, types.NewNull(spec.Kind))
				} else {
					row = append(row, st.min)
				}
			case plan.AggMax:
				if !st.seen {
					row = append(row, types.NewNull(spec.Kind))
				} else {
					row = append(row, st.max)
				}
			default:
				return nil, fmt.Errorf("internal: unknown aggregate %v", spec.Op)
			}
		}
		out.AppendRow(row)
	}
	return out, nil
}
