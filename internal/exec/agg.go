package exec

import (
	"fmt"

	"graphsql/internal/par"
	"graphsql/internal/plan"
	"graphsql/internal/storage"
	"graphsql/internal/types"
)

// aggState accumulates one aggregate for one group.
type aggState struct {
	count    int64
	sumI     int64
	sumF     float64
	min, max types.Value
	seen     bool
	distinct map[string]struct{}
}

// newAggStates allocates the per-group state row for the given specs.
func newAggStates(aggs []plan.AggSpec) []aggState {
	st := make([]aggState, len(aggs))
	for i := range aggs {
		if aggs[i].Distinct {
			st[i].distinct = make(map[string]struct{})
		}
	}
	return st
}

// accumRow folds input row `row` into the state row st. This is the
// single accumulation routine shared by the sequential and both
// parallel paths, so their per-group state transitions are identical.
func accumRow(aggs []plan.AggSpec, st []aggState, argCols []*storage.Column, row int) {
	for i := range aggs {
		spec := &aggs[i]
		if spec.Op == plan.AggCountStar {
			st[i].count++
			continue
		}
		c := argCols[i]
		if c.IsNull(row) {
			continue // aggregates skip NULL inputs
		}
		if spec.Distinct {
			var kb []byte
			kb = encodeKey(kb, c, row)
			if _, dup := st[i].distinct[string(kb)]; dup {
				continue
			}
			st[i].distinct[string(kb)] = struct{}{}
		}
		v := c.Get(row)
		st[i].count++
		switch spec.Op {
		case plan.AggSum, plan.AggAvg:
			if c.Kind == types.KindFloat {
				st[i].sumF += v.F
			} else {
				st[i].sumI += v.I
				st[i].sumF += float64(v.I)
			}
		case plan.AggMin:
			if !st[i].seen || types.Compare(v, st[i].min) < 0 {
				st[i].min = v
			}
		case plan.AggMax:
			if !st[i].seen || types.Compare(v, st[i].max) > 0 {
				st[i].max = v
			}
		}
		st[i].seen = true
	}
}

func execAggregate(a *plan.Aggregate, ctx *Context) (*storage.Chunk, error) {
	in, err := Execute(a.Input, ctx)
	if err != nil {
		return nil, err
	}
	return aggregateCore(a, in, ctx)
}

// aggregateCore groups and aggregates one materialized input chunk;
// the pipeline-breaking core shared by both executors.
func aggregateCore(a *plan.Aggregate, in *storage.Chunk, ctx *Context) (*storage.Chunk, error) {
	n := in.NumRows()

	// Evaluate group-by keys and aggregate arguments column-at-a-time.
	groupCols := make([]*storage.Column, len(a.GroupBy))
	for i, g := range a.GroupBy {
		c, err := g.Eval(ctx.Expr, in)
		if err != nil {
			return nil, err
		}
		groupCols[i] = c
	}
	argCols := make([]*storage.Column, len(a.Aggs))
	for i := range a.Aggs {
		if a.Aggs[i].Arg == nil {
			continue
		}
		c, err := a.Aggs[i].Arg.Eval(ctx.Expr, in)
		if err != nil {
			return nil, err
		}
		argCols[i] = c
	}

	var groupRows []int // one representative row per group
	var states [][]aggState
	workers := ctx.workers(n)
	switch {
	case workers <= 1:
		groupRows, states = aggSequential(a.Aggs, groupCols, argCols, n)
	case aggMergeSafe(a.Aggs):
		groupRows, states = aggPartitioned(a.Aggs, groupCols, argCols, n, workers)
	default:
		groupRows, states = aggPerGroup(a.Aggs, groupCols, argCols, n, workers)
	}

	// A global aggregate (no GROUP BY) over zero rows still yields one
	// row: COUNT = 0, other aggregates NULL.
	if len(groupRows) == 0 && len(a.GroupBy) == 0 {
		groupRows = append(groupRows, -1)
		states = append(states, make([]aggState, len(a.Aggs)))
	}

	out := storage.NewChunk(a.Sch)
	for gid, rep := range groupRows {
		row := make([]types.Value, 0, len(a.Sch))
		for _, gc := range groupCols {
			row = append(row, gc.Get(rep))
		}
		for i := range a.Aggs {
			spec := &a.Aggs[i]
			st := &states[gid][i]
			switch spec.Op {
			case plan.AggCountStar, plan.AggCount:
				row = append(row, types.NewInt(st.count))
			case plan.AggSum:
				if st.count == 0 {
					row = append(row, types.NewNull(spec.Kind))
				} else if spec.Kind == types.KindFloat {
					row = append(row, types.NewFloat(st.sumF))
				} else {
					row = append(row, types.NewInt(st.sumI))
				}
			case plan.AggAvg:
				if st.count == 0 {
					row = append(row, types.NewNull(types.KindFloat))
				} else {
					row = append(row, types.NewFloat(st.sumF/float64(st.count)))
				}
			case plan.AggMin:
				if !st.seen {
					row = append(row, types.NewNull(spec.Kind))
				} else {
					row = append(row, st.min)
				}
			case plan.AggMax:
				if !st.seen {
					row = append(row, types.NewNull(spec.Kind))
				} else {
					row = append(row, st.max)
				}
			default:
				return nil, fmt.Errorf("internal: unknown aggregate %v", spec.Op)
			}
		}
		out.AppendRow(row)
	}
	return out, nil
}

// aggSequential is the single-threaded grouping loop: one pass,
// groups numbered by first appearance.
func aggSequential(aggs []plan.AggSpec, groupCols, argCols []*storage.Column, n int) ([]int, [][]aggState) {
	groups := make(map[string]int, 64)
	var groupRows []int
	states := make([][]aggState, 0, 64)
	var buf []byte
	for row := 0; row < n; row++ {
		buf = buf[:0]
		for _, gc := range groupCols {
			buf = encodeKey(buf, gc, row)
		}
		gid, ok := groups[string(buf)]
		if !ok {
			gid = len(groupRows)
			groups[string(buf)] = gid
			groupRows = append(groupRows, row)
			states = append(states, newAggStates(aggs))
		}
		accumRow(aggs, states[gid], argCols, row)
	}
	return groupRows, states
}

// aggMergeSafe reports whether every aggregate's partial states can be
// merged across row partitions without changing the result bit for
// bit: COUNT and integer SUM are associative, MIN/MAX keep the
// earliest value among Compare-equal candidates when partitions merge
// in row order. Float SUM/AVG are excluded (float addition is not
// associative, so partial sums would diverge from the sequential
// accumulation order in the last bits), as are DISTINCT aggregates
// (their accumulation order determines which representative is kept).
func aggMergeSafe(aggs []plan.AggSpec) bool {
	for i := range aggs {
		if aggs[i].Distinct {
			return false
		}
		switch aggs[i].Op {
		case plan.AggCountStar, plan.AggCount, plan.AggMin, plan.AggMax:
		case plan.AggSum:
			if aggs[i].Kind == types.KindFloat {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// localAgg is one row partition's private aggregation result: groups
// in first-appearance order within the partition.
type localAgg struct {
	keys   []string
	reps   []int
	states [][]aggState
}

// aggPartitioned is partitioned pre-aggregation for merge-safe
// aggregate sets: contiguous row partitions aggregate privately (no
// shared state, no per-row key allocation on group hits), then the
// partials merge sequentially in partition order. Because partitions
// are contiguous and merged in order, global group numbering is by
// first appearance — identical to the sequential loop — and merge-safe
// states merge exactly.
func aggPartitioned(aggs []plan.AggSpec, groupCols, argCols []*storage.Column, n, workers int) ([]int, [][]aggState) {
	nRanges := par.NumRanges(workers, n)
	locals := make([]localAgg, nRanges)
	par.Ranges(workers, n, func(w, lo, hi int) {
		groups := make(map[string]int, 64)
		var local localAgg
		var buf []byte
		for row := lo; row < hi; row++ {
			buf = buf[:0]
			for _, gc := range groupCols {
				buf = encodeKey(buf, gc, row)
			}
			gid, ok := groups[string(buf)]
			if !ok {
				gid = len(local.reps)
				key := string(buf)
				groups[key] = gid
				local.keys = append(local.keys, key)
				local.reps = append(local.reps, row)
				local.states = append(local.states, newAggStates(aggs))
			}
			accumRow(aggs, local.states[gid], argCols, row)
		}
		locals[w] = local
	})
	groups := make(map[string]int, 64)
	var groupRows []int
	var states [][]aggState
	for _, local := range locals {
		for li, key := range local.keys {
			gid, ok := groups[key]
			if !ok {
				gid = len(groupRows)
				groups[key] = gid
				groupRows = append(groupRows, local.reps[li])
				states = append(states, local.states[li])
				continue
			}
			mergeAggStates(aggs, states[gid], local.states[li])
		}
	}
	return groupRows, states
}

// mergeAggStates folds the later partition's state src into dst; only
// called for merge-safe aggregate sets (see aggMergeSafe).
func mergeAggStates(aggs []plan.AggSpec, dst, src []aggState) {
	for i := range aggs {
		dst[i].count += src[i].count
		switch aggs[i].Op {
		case plan.AggSum:
			dst[i].sumI += src[i].sumI
			dst[i].sumF += src[i].sumF
		case plan.AggMin:
			if src[i].seen && (!dst[i].seen || types.Compare(src[i].min, dst[i].min) < 0) {
				dst[i].min = src[i].min
			}
		case plan.AggMax:
			if src[i].seen && (!dst[i].seen || types.Compare(src[i].max, dst[i].max) > 0) {
				dst[i].max = src[i].max
			}
		}
		dst[i].seen = dst[i].seen || src[i].seen
	}
}

// aggPerGroup is the general parallel path: keys are pre-encoded in
// parallel, groups are discovered in one sequential pass (numbering by
// first appearance, as in the sequential loop), and then each group's
// rows are folded independently — in ascending row order, so every
// state transition sequence matches the sequential loop's exactly,
// including float accumulation order and DISTINCT-set insertion order.
func aggPerGroup(aggs []plan.AggSpec, groupCols, argCols []*storage.Column, n, workers int) ([]int, [][]aggState) {
	rk := encodeRowKeys(groupCols, n, false, workers)
	groups := make(map[string]int, 64)
	gids := make([]int32, n)
	var groupRows []int
	for row := 0; row < n; row++ {
		gid, ok := groups[rk.keys[row]]
		if !ok {
			gid = len(groupRows)
			groups[rk.keys[row]] = gid
			groupRows = append(groupRows, row)
		}
		gids[row] = int32(gid)
	}
	numGroups := len(groupRows)
	// Bucket rows by group, preserving ascending row order per group.
	counts := make([]int32, numGroups+1)
	for _, g := range gids {
		counts[g+1]++
	}
	for g := 1; g <= numGroups; g++ {
		counts[g] += counts[g-1]
	}
	order := make([]int32, n)
	next := make([]int32, numGroups)
	copy(next, counts[:numGroups])
	for row := 0; row < n; row++ {
		g := gids[row]
		order[next[g]] = int32(row)
		next[g]++
	}
	states := make([][]aggState, numGroups)
	par.Indexed(workers, numGroups, func(_, g int) {
		st := newAggStates(aggs)
		for _, row := range order[counts[g]:counts[g+1]] {
			accumRow(aggs, st, argCols, int(row))
		}
		states[g] = st
	})
	return groupRows, states
}
