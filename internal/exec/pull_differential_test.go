package exec

import (
	"testing"

	"graphsql/internal/expr"
	"graphsql/internal/plan"
	"graphsql/internal/storage"
	"graphsql/internal/types"
)

// Per-operator pull-vs-materialize differential: each operator's pull
// form, driven at several batch sizes (including batch=1, where every
// batch boundary is a window boundary), must materialize to exactly
// what the legacy interpreter produces. Breakers share the
// materializing cores so they are identical by construction; the point
// of this test is the pipeline operators' re-batching logic.

// diffBatchSizes are the pull batch bounds under differential test:
// degenerate, smaller than / coprime to the inputs, and the default.
var diffBatchSizes = []int{1, 2, 3, DefaultBatchRows}

// diffExec runs n under the materializing interpreter and under the
// pull executor at every diffBatchSizes entry, requiring render-
// identical results.
func diffExec(t *testing.T, name string, n plan.Node) {
	t.Helper()
	ref, err := Execute(n, &Context{Materialize: true})
	if err != nil {
		t.Fatalf("%s: materialize: %v", name, err)
	}
	if err := ref.Validate(); err != nil {
		t.Fatalf("%s: materialize output invalid: %v", name, err)
	}
	want := ref.String()
	for _, br := range diffBatchSizes {
		got, err := Execute(n, &Context{BatchRows: br})
		if err != nil {
			t.Fatalf("%s: pull batch=%d: %v", name, br, err)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("%s: pull batch=%d output invalid: %v", name, br, err)
		}
		if got.String() != want {
			t.Errorf("%s: pull batch=%d differs from materialize\n--- materialize (%d rows)\n%s\n--- pull (%d rows)\n%s",
				name, br, ref.NumRows(), want, got.NumRows(), got.String())
		}
	}
}

func TestPullOperatorDifferential(t *testing.T) {
	base := mkChunk("t", 7, 1, 5, 3, 9, 2, 8, 4, 6, 0, 5, 3)
	left := twoCol("l", [][2]int64{{1, 10}, {2, 20}, {3, 30}, {2, 25}, {4, 40}}, 3)
	right := twoCol("r", [][2]int64{{2, 200}, {3, 300}, {2, 250}, {9, 900}}, 3)
	gt := func(idx int, v int64) expr.Expr {
		return &expr.Cmp{Op: expr.CmpGt,
			L: &expr.ColRef{Idx: idx, K: types.KindInt},
			R: &expr.Const{Val: types.NewInt(v)}}
	}
	cases := []struct {
		name string
		n    plan.Node
	}{
		{"scan", scan(base)},
		{"filter", &plan.Filter{Input: scan(base), Pred: gt(0, 4)}},
		{"filter-none", &plan.Filter{Input: scan(base), Pred: gt(0, 99)}},
		{"project", &plan.Project{Input: scan(base),
			Exprs: []expr.Expr{&expr.Arith{Op: expr.OpAdd, K: types.KindInt,
				L: &expr.ColRef{Idx: 0, K: types.KindInt},
				R: &expr.Const{Val: types.NewInt(100)}}},
			Sch: storage.Schema{{Name: "v100", Kind: types.KindInt}}}},
		{"limit", &plan.Limit{Input: scan(base), Count: &expr.Const{Val: types.NewInt(5)}}},
		{"limit-offset", &plan.Limit{Input: scan(base),
			Count: &expr.Const{Val: types.NewInt(4)},
			Skip:  &expr.Const{Val: types.NewInt(3)}}},
		{"limit-past-end", &plan.Limit{Input: scan(base), Skip: &expr.Const{Val: types.NewInt(99)}}},
		{"union-all", &plan.SetOp{Op: "UNION", All: true, Left: scan(base), Right: scan(mkChunk("t", 40, 41))}},
		{"union", &plan.SetOp{Op: "UNION", Left: scan(base), Right: scan(mkChunk("t", 5, 40, 3))}},
		{"except", &plan.SetOp{Op: "EXCEPT", Left: scan(base), Right: scan(mkChunk("t", 5, 3))}},
		{"intersect", &plan.SetOp{Op: "INTERSECT", Left: scan(base), Right: scan(mkChunk("t", 5, 3, 99))}},
		{"join-inner", &plan.Join{Type: plan.JoinInner, Left: scan(left), Right: scan(right), On: eqCond(0, 2)}},
		{"join-left", &plan.Join{Type: plan.JoinLeft, Left: scan(left), Right: scan(right), On: eqCond(0, 2)}},
		{"join-cross", &plan.Join{Type: plan.JoinCross, Left: scan(left), Right: scan(right)}},
		{"join-semi", &plan.Join{Type: plan.JoinSemi, Left: scan(left), Right: scan(right), On: eqCond(0, 2)}},
		{"join-anti", &plan.Join{Type: plan.JoinAnti, Left: scan(left), Right: scan(right), On: eqCond(0, 2)}},
		{"aggregate", &plan.Aggregate{Input: scan(left),
			GroupBy: []expr.Expr{&expr.ColRef{Idx: 0, K: types.KindInt}},
			Aggs: []plan.AggSpec{{Op: plan.AggSum, Arg: &expr.ColRef{Idx: 1, K: types.KindInt},
				Kind: types.KindInt, Name: "s"}},
			Sch: storage.Schema{{Name: "k", Kind: types.KindInt}, {Name: "s", Kind: types.KindInt}}}},
		{"sort", &plan.Sort{Input: scan(base),
			Keys: []plan.SortKey{{Expr: &expr.ColRef{Idx: 0, K: types.KindInt}}}}},
		{"distinct", &plan.Distinct{Input: scan(base)}},
	}
	sh := &plan.Shared{Input: scan(base), Name: "cte"}
	cases = append(cases, struct {
		name string
		n    plan.Node
	}{"shared", &plan.Join{Type: plan.JoinCross, Left: sh, Right: sh}})
	for _, tc := range cases {
		diffExec(t, tc.name, tc.n)
	}
	// A deep pipeline: filter → project → limit over a sorted CTE,
	// exercising re-batching across several pipeline stages at once.
	deep := &plan.Limit{
		Count: &expr.Const{Val: types.NewInt(4)},
		Input: &plan.Project{
			Exprs: []expr.Expr{&expr.ColRef{Idx: 0, K: types.KindInt}},
			Sch:   storage.Schema{{Name: "v", Kind: types.KindInt}},
			Input: &plan.Filter{
				Pred:  gt(0, 2),
				Input: &plan.Sort{Input: scan(base), Keys: []plan.SortKey{{Expr: &expr.ColRef{Idx: 0, K: types.KindInt}}}},
			},
		},
	}
	diffExec(t, "deep-pipeline", deep)
}

// TestPullBoundedIntermediates proves the memory claim of the pull
// executor: with a batch bound in force, no pipeline operator ever
// emits a batch above the bound — intermediate state stays O(BatchRows
// × pipeline depth), independent of input size — while the
// materializing executor flows the full input through every operator.
func TestPullBoundedIntermediates(t *testing.T) {
	const total, bound = 4096, 32
	vals := make([]int64, total)
	for i := range vals {
		vals[i] = int64(i % 97)
	}
	pipeline := &plan.Filter{
		Pred: &expr.Cmp{Op: expr.CmpGt,
			L: &expr.ColRef{Idx: 0, K: types.KindInt},
			R: &expr.Const{Val: types.NewInt(-1)}}, // pass-through: max pressure
		Input: &plan.Project{
			Exprs: []expr.Expr{&expr.ColRef{Idx: 0, K: types.KindInt}},
			Sch:   storage.Schema{{Name: "v", Kind: types.KindInt}},
			Input: scan(mkChunk("t", vals...)),
		},
	}
	maxBatch := 0
	prev := SetBatchObserver(func(op string, rows int) {
		if rows > maxBatch {
			maxBatch = rows
		}
	})
	defer SetBatchObserver(prev)
	out, err := Execute(pipeline, &Context{BatchRows: bound})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != total {
		t.Fatalf("lost rows: %d of %d", out.NumRows(), total)
	}
	if maxBatch == 0 {
		t.Fatal("batch observer saw nothing; pull operators did not run")
	}
	if maxBatch > bound {
		t.Fatalf("pull operator emitted a %d-row batch, above the %d bound", maxBatch, bound)
	}
}

// TestPullLimitStopsPulling proves early termination: once a Limit's
// quota fills, it stops pulling its child, so the operators upstream
// only ever produce the prefix the query needs. Under materialization
// the same plan runs the child to completion.
func TestPullLimitStopsPulling(t *testing.T) {
	const total, bound, want = 1000, 10, 25
	vals := make([]int64, total)
	for i := range vals {
		vals[i] = int64(i)
	}
	n := &plan.Limit{
		Input: scan(mkChunk("t", vals...)),
		Count: &expr.Const{Val: types.NewInt(want)},
	}
	seen := 0
	prev := SetBatchObserver(func(op string, rows int) { seen += rows })
	defer SetBatchObserver(prev)
	out, err := Execute(n, &Context{BatchRows: bound})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != want {
		t.Fatalf("limit returned %d rows, want %d", out.NumRows(), want)
	}
	// The observer sees scan batches plus limit batches. The scan must
	// have stopped near the quota (one bound of slack for the in-flight
	// batch), nowhere near the full input.
	if ceiling := 2 * (want + bound); seen > ceiling {
		t.Fatalf("operators emitted %d rows total for a LIMIT %d (ceiling %d): limit did not stop pulling", seen, want, ceiling)
	}
}
