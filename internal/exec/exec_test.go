package exec

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"graphsql/internal/expr"
	"graphsql/internal/plan"
	"graphsql/internal/storage"
	"graphsql/internal/types"
)

// mkChunk builds a single-int-column chunk from values (nil entries
// impossible; use addNull for NULLs).
func mkChunk(name string, vals ...int64) *storage.Chunk {
	c := storage.NewChunk(storage.Schema{{Table: name, Name: "v", Kind: types.KindInt}})
	for _, v := range vals {
		c.AppendRow([]types.Value{types.NewInt(v)})
	}
	return c
}

func scan(c *storage.Chunk) plan.Node { return &plan.ChunkScan{Chunk: c, Name: "t"} }

func execute(t *testing.T, n plan.Node) *storage.Chunk {
	t.Helper()
	out, err := Execute(n, &Context{})
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestExecFilter(t *testing.T) {
	in := mkChunk("t", 1, 2, 3, 4)
	f := &plan.Filter{Input: scan(in), Pred: &expr.Cmp{
		Op: expr.CmpGt,
		L:  &expr.ColRef{Idx: 0, K: types.KindInt},
		R:  &expr.Const{Val: types.NewInt(2)},
	}}
	out := execute(t, f)
	if out.NumRows() != 2 || out.Cols[0].Ints[0] != 3 {
		t.Fatalf("filter output wrong:\n%s", out)
	}
}

func TestExecLimitOffset(t *testing.T) {
	in := mkChunk("t", 1, 2, 3, 4, 5)
	l := &plan.Limit{Input: scan(in),
		Count: &expr.Const{Val: types.NewInt(2)},
		Skip:  &expr.Const{Val: types.NewInt(3)}}
	out := execute(t, l)
	if out.NumRows() != 2 || out.Cols[0].Ints[0] != 4 {
		t.Fatalf("limit output wrong:\n%s", out)
	}
	// Offset beyond the input.
	l = &plan.Limit{Input: scan(in), Skip: &expr.Const{Val: types.NewInt(99)}}
	if execute(t, l).NumRows() != 0 {
		t.Fatal("offset past end must be empty")
	}
}

// twoCol builds a (k, v) chunk from pairs.
func twoCol(name string, pairs [][2]int64, nullKeyRows ...int) *storage.Chunk {
	c := storage.NewChunk(storage.Schema{
		{Table: name, Name: "k", Kind: types.KindInt},
		{Table: name, Name: "v", Kind: types.KindInt},
	})
	nulls := map[int]bool{}
	for _, r := range nullKeyRows {
		nulls[r] = true
	}
	for i, p := range pairs {
		k := types.NewInt(p[0])
		if nulls[i] {
			k = types.NewNull(types.KindInt)
		}
		c.AppendRow([]types.Value{k, types.NewInt(p[1])})
	}
	return c
}

func eqCond(l, r int) expr.Expr {
	return &expr.Cmp{Op: expr.CmpEq,
		L: &expr.ColRef{Idx: l, K: types.KindInt},
		R: &expr.ColRef{Idx: r, K: types.KindInt}}
}

func TestHashJoinNullKeysNeverMatch(t *testing.T) {
	left := twoCol("l", [][2]int64{{1, 10}, {0, 20}, {2, 30}}, 1)
	right := twoCol("r", [][2]int64{{1, 100}, {0, 200}}, 1)
	j := &plan.Join{Type: plan.JoinInner, Left: scan(left), Right: scan(right), On: eqCond(0, 2)}
	out := execute(t, j)
	// Only k=1 matches; the NULL keys on both sides match nothing.
	if out.NumRows() != 1 || out.Cols[1].Ints[0] != 10 || out.Cols[3].Ints[0] != 100 {
		t.Fatalf("join output wrong:\n%s", out)
	}
}

func TestLeftJoinNullExtension(t *testing.T) {
	left := twoCol("l", [][2]int64{{1, 10}, {5, 50}})
	right := twoCol("r", [][2]int64{{1, 100}})
	j := &plan.Join{Type: plan.JoinLeft, Left: scan(left), Right: scan(right), On: eqCond(0, 2)}
	out := execute(t, j)
	if out.NumRows() != 2 {
		t.Fatalf("rows = %d\n%s", out.NumRows(), out)
	}
	if !out.Cols[2].IsNull(1) || !out.Cols[3].IsNull(1) {
		t.Fatalf("unmatched left row must be null-extended:\n%s", out)
	}
}

// TestPropertyHashJoinMatchesNestedLoop compares the equi hash join
// against a brute-force nested loop on random inputs.
func TestPropertyHashJoinMatchesNestedLoop(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		randSide := func(name string) *storage.Chunk {
			n := r.Intn(30)
			pairs := make([][2]int64, n)
			var nulls []int
			for i := range pairs {
				pairs[i] = [2]int64{int64(r.Intn(6)), int64(r.Intn(100))}
				if r.Intn(10) == 0 {
					nulls = append(nulls, i)
				}
			}
			return twoCol(name, pairs, nulls...)
		}
		left, right := randSide("l"), randSide("r")
		j := &plan.Join{Type: plan.JoinInner, Left: scan(left), Right: scan(right), On: eqCond(0, 2)}
		out, err := Execute(j, &Context{})
		if err != nil {
			t.Fatal(err)
		}
		// Brute force.
		type row struct{ lk, lv, rk, rv int64 }
		var want []row
		for a := 0; a < left.NumRows(); a++ {
			if left.Cols[0].IsNull(a) {
				continue
			}
			for b := 0; b < right.NumRows(); b++ {
				if right.Cols[0].IsNull(b) {
					continue
				}
				if left.Cols[0].Ints[a] == right.Cols[0].Ints[b] {
					want = append(want, row{left.Cols[0].Ints[a], left.Cols[1].Ints[a],
						right.Cols[0].Ints[b], right.Cols[1].Ints[b]})
				}
			}
		}
		if out.NumRows() != len(want) {
			return false
		}
		var got []row
		for i := 0; i < out.NumRows(); i++ {
			got = append(got, row{out.Cols[0].Ints[i], out.Cols[1].Ints[i],
				out.Cols[2].Ints[i], out.Cols[3].Ints[i]})
		}
		less := func(s []row) func(i, j int) bool {
			return func(i, j int) bool {
				if s[i].lk != s[j].lk {
					return s[i].lk < s[j].lk
				}
				if s[i].lv != s[j].lv {
					return s[i].lv < s[j].lv
				}
				return s[i].rv < s[j].rv
			}
		}
		sort.Slice(got, less(got))
		sort.Slice(want, less(want))
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCrossJoinCardinality(t *testing.T) {
	l := mkChunk("l", 1, 2, 3)
	r := mkChunk("r", 7, 8)
	j := &plan.Join{Type: plan.JoinCross, Left: scan(l), Right: scan(r)}
	out := execute(t, j)
	if out.NumRows() != 6 {
		t.Fatalf("cross join rows = %d", out.NumRows())
	}
}

func TestSortStability(t *testing.T) {
	// Two key columns; sorting only on the first must preserve the
	// input order of equal keys (stable sort).
	c := twoCol("t", [][2]int64{{2, 1}, {1, 2}, {2, 3}, {1, 4}})
	s := &plan.Sort{Input: scan(c), Keys: []plan.SortKey{{
		Expr: &expr.ColRef{Idx: 0, K: types.KindInt},
	}}}
	out := execute(t, s)
	wantV := []int64{2, 4, 1, 3}
	for i, w := range wantV {
		if out.Cols[1].Ints[i] != w {
			t.Fatalf("row %d: v = %d, want %d\n%s", i, out.Cols[1].Ints[i], w, out)
		}
	}
}

func TestDistinctOnPairs(t *testing.T) {
	c := twoCol("t", [][2]int64{{1, 1}, {1, 1}, {1, 2}, {1, 1}})
	out := execute(t, &plan.Distinct{Input: scan(c)})
	if out.NumRows() != 2 {
		t.Fatalf("distinct rows = %d\n%s", out.NumRows(), out)
	}
}

func TestSharedNodeExecutesOnce(t *testing.T) {
	c := mkChunk("t", 1, 2, 3)
	sh := &plan.Shared{Input: scan(c), Name: "cte"}
	j := &plan.Join{Type: plan.JoinCross, Left: sh, Right: sh}
	ctx := &Context{}
	out, err := Execute(j, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 9 {
		t.Fatalf("rows = %d", out.NumRows())
	}
	if len(ctx.sharedPull) != 1 {
		t.Fatalf("shared pull cache entries = %d, want 1", len(ctx.sharedPull))
	}
	mctx := &Context{Materialize: true}
	out, err = Execute(j, mctx)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 9 {
		t.Fatalf("materialize rows = %d", out.NumRows())
	}
	if len(mctx.shared) != 1 {
		t.Fatalf("shared cache entries = %d, want 1", len(mctx.shared))
	}
}

func TestEncodeKeyDisambiguates(t *testing.T) {
	// "ab","c" must not collide with "a","bc" (length-prefixed).
	a := storage.NewColumn(types.KindString, 0)
	a.AppendString("ab")
	a.AppendString("a")
	b := storage.NewColumn(types.KindString, 0)
	b.AppendString("c")
	b.AppendString("bc")
	k0 := encodeKey(encodeKey(nil, a, 0), b, 0)
	k1 := encodeKey(encodeKey(nil, a, 1), b, 1)
	if string(k0) == string(k1) {
		t.Fatal("key encoding collides across string boundaries")
	}
	// NULL differs from zero.
	n := storage.NewColumn(types.KindInt, 0)
	n.AppendNull()
	n.AppendInt(0)
	if string(encodeKey(nil, n, 0)) == string(encodeKey(nil, n, 1)) {
		t.Fatal("NULL collides with 0")
	}
}

func TestGroupByOnEncodedKeys(t *testing.T) {
	c := twoCol("t", [][2]int64{{1, 10}, {2, 20}, {1, 30}})
	agg := &plan.Aggregate{
		Input:   scan(c),
		GroupBy: []expr.Expr{&expr.ColRef{Idx: 0, K: types.KindInt}},
		Aggs: []plan.AggSpec{{Op: plan.AggSum, Arg: &expr.ColRef{Idx: 1, K: types.KindInt},
			Kind: types.KindInt, Name: "s"}},
		Sch: storage.Schema{
			{Name: "k", Kind: types.KindInt},
			{Name: "s", Kind: types.KindInt},
		},
	}
	out := execute(t, agg)
	if out.NumRows() != 2 {
		t.Fatalf("groups = %d", out.NumRows())
	}
	sums := map[int64]int64{}
	for i := 0; i < out.NumRows(); i++ {
		sums[out.Cols[0].Ints[i]] = out.Cols[1].Ints[i]
	}
	if sums[1] != 40 || sums[2] != 20 {
		t.Fatalf("sums = %v", sums)
	}
}
