// Package fault is the engine's fault-injection framework: named
// injection points planted at the seams where production failures
// originate — graph-build chunk loops, the solver's per-group and
// per-level loops, relational operators, the result-cache insert and
// the NDJSON stream encoder — that stay completely inert until a test
// (or the GSQLD_FAULTS environment variable) installs a schedule.
//
// A schedule is a set of rules. Each rule names a point, a kind and
// optional triggers:
//
//	point:kind[:p=<prob>][:after=<hits>][:ms=<latency>][:seed=<n>]
//
// separated by ';' (or ','). Kinds:
//
//	error    Inject returns an *InjectedError the caller propagates
//	         through its normal error path
//	panic    Inject panics with an *InjectedPanic, exercising the
//	         panic-containment layers (par pool capture, engine
//	         recovery, HTTP middleware)
//	latency  Inject sleeps for the rule's ms duration, then falls
//	         through (never fails the call)
//
// Triggers compose: `after=N` skips the first N hits of the point,
// `p=0.05` then fires each remaining hit with probability 0.05 from a
// deterministic per-rule generator (`seed=n` reseeds it), so a chaos
// run is reproducible. Example:
//
//	GSQLD_FAULTS='solver.group:panic:p=0.02;wire.stream.encode:error:p=0.1' gsqld ...
//
// The disabled fast path — no schedule installed — is a single atomic
// pointer load, so permanently planted points cost nothing in
// production binaries.
//
// Injection is process-global (the planted code has no request
// context), installed either programmatically (Set/SetSpec, tests must
// defer Reset) or by GSQLD_FAULTS at process start. A malformed
// GSQLD_FAULTS panics at init: a chaos run that silently ran without
// its schedule would assert nothing.
package fault

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Injection point names. Constants so the planted sites and the
// schedules that target them cannot drift apart.
const (
	// PointGraphBuildChunk fires in the CSR builder's chunk loops
	// (degree count and scatter), on the build workers.
	PointGraphBuildChunk = "graph.build.chunk"
	// PointGraphEncodeChunk fires in the dictionary-encode chunk loops
	// (per-chunk dedup and output fill), on the encode workers.
	PointGraphEncodeChunk = "graph.encode.chunk"
	// PointSolverGroup fires at the start of every source-group
	// traversal, on the solver pool workers.
	PointSolverGroup = "solver.group"
	// PointSolverLevel fires at every level of a frontier-parallel BFS
	// traversal, on the traversing goroutine.
	PointSolverLevel = "solver.level"
	// PointExecOperator fires before every relational operator.
	PointExecOperator = "exec.operator"
	// PointExecBatch fires before every batch a pull-executor operator
	// produces (Operator.Next).
	PointExecBatch = "exec.batch"
	// PointCacheInsert fires on result-cache admission; an error makes
	// the insert silently fail (the result is served but not cached).
	PointCacheInsert = "server.cache.insert"
	// PointStreamEncode fires per row-batch frame of the NDJSON stream
	// encoder, after the header frame is on the wire.
	PointStreamEncode = "wire.stream.encode"
)

// Kind classifies what a rule does when it fires.
type Kind uint8

const (
	// KindError makes Inject return an *InjectedError.
	KindError Kind = iota
	// KindPanic makes Inject panic with an *InjectedPanic.
	KindPanic
	// KindLatency makes Inject sleep for the rule's Latency.
	KindLatency
)

func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindLatency:
		return "latency"
	}
	return fmt.Sprintf("kind(%d)", k)
}

// Rule is one line of a fault schedule.
type Rule struct {
	// Point names the injection point the rule arms.
	Point string
	// Kind selects the failure mode.
	Kind Kind
	// Prob is the per-hit firing probability in (0, 1]; 0 means 1
	// (always fire).
	Prob float64
	// After skips the first After hits of the point, so a fault can be
	// placed past warm-up (e.g. mid-way through a corpus run).
	After int64
	// Latency is the sleep duration of a KindLatency rule.
	Latency time.Duration
	// Seed reseeds the rule's deterministic probability generator;
	// 0 derives a seed from the point name, so two runs of the same
	// schedule fire at the same hit ordinals.
	Seed uint64
}

// InjectedError is the error a fired KindError rule returns; callers
// propagate it through their ordinary error path, and harnesses
// recognize injected failures with errors.As.
type InjectedError struct {
	// Point names the injection point that fired.
	Point string
}

func (e *InjectedError) Error() string { return "fault: injected error at " + e.Point }

// InjectedPanic is the value a fired KindPanic rule panics with.
type InjectedPanic struct {
	// Point names the injection point that fired.
	Point string
}

func (p *InjectedPanic) String() string { return "fault: injected panic at " + p.Point }

// Error lets recover sites format the value uniformly with real error
// values.
func (p *InjectedPanic) Error() string { return p.String() }

// armedRule is an installed rule plus its hit counter and generator
// state.
type armedRule struct {
	Rule
	hits atomic.Int64
	rng  atomic.Uint64
}

// roll advances the rule's splitmix64 generator and reports whether
// the rule fires this hit. The sequence depends only on the seed, so a
// fixed schedule fires at the same ordinals across runs (per rule;
// which goroutine observes a given ordinal still depends on
// scheduling).
func (r *armedRule) roll() bool {
	x := r.rng.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11)/(1<<53) < r.Prob
}

type schedule struct {
	points map[string][]*armedRule
}

// active holds the installed schedule; nil means injection is
// disabled and Inject is a single atomic load.
var active atomic.Pointer[schedule]

// Enabled reports whether any fault schedule is installed.
func Enabled() bool { return active.Load() != nil }

// Set installs a schedule, replacing any previous one. Tests must
// pair it with a deferred Reset: the schedule is process-global.
func Set(rules ...Rule) error {
	s := &schedule{points: make(map[string][]*armedRule)}
	for _, r := range rules {
		if r.Point == "" {
			return fmt.Errorf("fault: rule with empty point")
		}
		if r.Prob < 0 || r.Prob > 1 {
			return fmt.Errorf("fault: %s: probability %v outside [0,1]", r.Point, r.Prob)
		}
		if r.Prob == 0 {
			r.Prob = 1
		}
		if r.Kind == KindLatency && r.Latency <= 0 {
			return fmt.Errorf("fault: %s: latency rule needs ms=<duration>", r.Point)
		}
		ar := &armedRule{Rule: r}
		seed := r.Seed
		if seed == 0 {
			seed = 0x9E3779B97F4A7C15
			for _, c := range r.Point {
				seed = seed*1099511628211 ^ uint64(c)
			}
		}
		ar.rng.Store(seed)
		s.points[r.Point] = append(s.points[r.Point], ar)
	}
	active.Store(s)
	return nil
}

// SetSpec parses a schedule in the GSQLD_FAULTS grammar (see the
// package comment) and installs it.
func SetSpec(spec string) error {
	rules, err := Parse(spec)
	if err != nil {
		return err
	}
	return Set(rules...)
}

// Reset removes the installed schedule; Inject becomes inert again.
func Reset() { active.Store(nil) }

// Parse parses the GSQLD_FAULTS grammar into rules without installing
// them. Every rule must name a registered injection point (see
// Registry): a typo'd point would otherwise arm an inert schedule that
// never fires, which in a chaos run reads as "survived injection" when
// nothing was injected at all. Programmatic rules built with Set are
// not subject to the registry, so tests can exercise synthetic points.
func Parse(spec string) ([]Rule, error) {
	var rules []Rule
	for _, part := range strings.FieldsFunc(spec, func(r rune) bool { return r == ';' || r == ',' }) {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) < 2 {
			return nil, fmt.Errorf("fault: rule %q: want point:kind[:opt...]", part)
		}
		r := Rule{Point: strings.TrimSpace(fields[0])}
		if !Known(r.Point) {
			return nil, unknownPointError(part, r.Point)
		}
		switch strings.TrimSpace(fields[1]) {
		case "error":
			r.Kind = KindError
		case "panic":
			r.Kind = KindPanic
		case "latency":
			r.Kind = KindLatency
		default:
			return nil, fmt.Errorf("fault: rule %q: unknown kind %q (error|panic|latency)", part, fields[1])
		}
		for _, opt := range fields[2:] {
			key, val, ok := strings.Cut(strings.TrimSpace(opt), "=")
			if !ok {
				return nil, fmt.Errorf("fault: rule %q: option %q is not key=value", part, opt)
			}
			switch key {
			case "p":
				p, err := strconv.ParseFloat(val, 64)
				if err != nil || p < 0 || p > 1 {
					return nil, fmt.Errorf("fault: rule %q: p=%q is not a probability", part, val)
				}
				r.Prob = p
			case "after":
				n, err := strconv.ParseInt(val, 10, 64)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("fault: rule %q: after=%q is not a hit count", part, val)
				}
				r.After = n
			case "ms":
				ms, err := strconv.ParseInt(val, 10, 64)
				if err != nil || ms < 0 {
					return nil, fmt.Errorf("fault: rule %q: ms=%q is not a duration", part, val)
				}
				r.Latency = time.Duration(ms) * time.Millisecond
			case "seed":
				s, err := strconv.ParseUint(val, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("fault: rule %q: seed=%q is not an integer", part, val)
				}
				r.Seed = s
			default:
				return nil, fmt.Errorf("fault: rule %q: unknown option %q", part, key)
			}
		}
		if r.Kind == KindLatency && r.Latency <= 0 {
			return nil, fmt.Errorf("fault: rule %q: latency rule needs ms=<duration>", part)
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("fault: empty schedule %q", spec)
	}
	return rules, nil
}

// Inject checks the named point against the installed schedule. With
// no schedule it returns nil after one atomic load. A fired error rule
// returns an *InjectedError; a fired panic rule panics with an
// *InjectedPanic; a fired latency rule sleeps and keeps evaluating
// later rules of the same point.
func Inject(point string) error {
	s := active.Load()
	if s == nil {
		return nil
	}
	rules := s.points[point]
	if len(rules) == 0 {
		return nil
	}
	for _, r := range rules {
		if r.hits.Add(1) <= r.After {
			continue
		}
		if r.Prob < 1 && !r.roll() {
			continue
		}
		switch r.Kind {
		case KindLatency:
			time.Sleep(r.Latency)
		case KindError:
			return &InjectedError{Point: point}
		case KindPanic:
			panic(&InjectedPanic{Point: point})
		}
	}
	return nil
}

// init arms the schedule named by GSQLD_FAULTS, if any, so a server
// binary can run chaos soaks without a code change. A malformed spec
// panics: failing fast beats a chaos run that silently asserted
// nothing.
func init() {
	if spec := os.Getenv("GSQLD_FAULTS"); spec != "" {
		if err := SetSpec(spec); err != nil {
			panic(fmt.Sprintf("GSQLD_FAULTS: %v", err))
		}
	}
}
