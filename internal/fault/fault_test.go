package fault

import (
	"errors"
	"testing"
	"time"
)

func TestDisabledFastPath(t *testing.T) {
	Reset()
	if Enabled() {
		t.Fatal("Enabled with no schedule")
	}
	if err := Inject(PointSolverGroup); err != nil {
		t.Fatalf("Inject with no schedule: %v", err)
	}
}

func TestErrorRuleFires(t *testing.T) {
	t.Cleanup(Reset)
	if err := Set(Rule{Point: PointExecOperator, Kind: KindError}); err != nil {
		t.Fatal(err)
	}
	if !Enabled() {
		t.Fatal("Enabled = false after Set")
	}
	err := Inject(PointExecOperator)
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.Point != PointExecOperator {
		t.Fatalf("Inject = %v, want *InjectedError at %s", err, PointExecOperator)
	}
	// Other points stay inert.
	if err := Inject(PointSolverGroup); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
}

func TestPanicRuleFires(t *testing.T) {
	t.Cleanup(Reset)
	if err := Set(Rule{Point: PointSolverGroup, Kind: KindPanic}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		ip, ok := r.(*InjectedPanic)
		if !ok || ip.Point != PointSolverGroup {
			t.Fatalf("recovered %#v, want *InjectedPanic at %s", r, PointSolverGroup)
		}
	}()
	Inject(PointSolverGroup)
	t.Fatal("Inject returned instead of panicking")
}

func TestAfterTrigger(t *testing.T) {
	t.Cleanup(Reset)
	if err := Set(Rule{Point: "p", Kind: KindError, After: 3}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := Inject("p"); err != nil {
			t.Fatalf("hit %d fired during after-window: %v", i+1, err)
		}
	}
	if err := Inject("p"); err == nil {
		t.Fatal("hit 4 did not fire")
	}
}

func TestProbabilityDeterministic(t *testing.T) {
	t.Cleanup(Reset)
	fires := func(seed uint64) []bool {
		if err := Set(Rule{Point: "p", Kind: KindError, Prob: 0.3, Seed: seed}); err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 200)
		for i := range out {
			out[i] = Inject("p") != nil
		}
		return out
	}
	a, b := fires(7), fires(7)
	hits := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d differs across identically-seeded runs", i)
		}
		if a[i] {
			hits++
		}
	}
	if hits == 0 || hits == len(a) {
		t.Fatalf("p=0.3 fired %d/%d times, want a strict subset", hits, len(a))
	}
}

func TestLatencyRuleSleepsAndContinues(t *testing.T) {
	t.Cleanup(Reset)
	if err := Set(
		Rule{Point: "p", Kind: KindLatency, Latency: 20 * time.Millisecond},
		Rule{Point: "p", Kind: KindError},
	); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := Inject("p")
	if err == nil {
		t.Fatal("error rule after latency rule did not fire")
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("latency rule slept %v, want ~20ms", elapsed)
	}
}

func TestParse(t *testing.T) {
	rules, err := Parse("solver.group:panic:p=0.05:after=10:seed=3; wire.stream.encode:error , exec.operator:latency:ms=50")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("parsed %d rules, want 3", len(rules))
	}
	r := rules[0]
	if r.Point != PointSolverGroup || r.Kind != KindPanic || r.Prob != 0.05 || r.After != 10 || r.Seed != 3 {
		t.Fatalf("rule 0 = %+v", r)
	}
	if rules[1].Point != PointStreamEncode || rules[1].Kind != KindError {
		t.Fatalf("rule 1 = %+v", rules[1])
	}
	if rules[2].Kind != KindLatency || rules[2].Latency != 50*time.Millisecond {
		t.Fatalf("rule 2 = %+v", rules[2])
	}

	for _, bad := range []string{
		"",
		"solver.group",
		"solver.group:explode",
		"solver.group:panic:p=1.5",
		"solver.group:panic:after=-1",
		"solver.group:latency",       // latency without ms
		"solver.group:panic:bogus=1", // unknown option
		"solver.group:panic:p",       // option without value
		"solver.gruop:panic",         // unregistered (typo'd) point
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted a malformed spec", bad)
		}
	}
}

func TestSetSpecAndReset(t *testing.T) {
	t.Cleanup(Reset)
	if err := SetSpec(PointExecOperator + ":error"); err != nil {
		t.Fatal(err)
	}
	if Inject(PointExecOperator) == nil {
		t.Fatal("installed spec did not fire")
	}
	Reset()
	if Enabled() || Inject(PointExecOperator) != nil {
		t.Fatal("Reset did not disarm the schedule")
	}
}
