package fault

import (
	"sort"
	"strings"
	"testing"
)

// allPoints is the closed set of Point* constants; a new constant must
// be added here and to Registry together or this test fails.
var allPoints = []string{
	PointGraphBuildChunk,
	PointGraphEncodeChunk,
	PointSolverGroup,
	PointSolverLevel,
	PointExecOperator,
	PointExecBatch,
	PointCacheInsert,
	PointStreamEncode,
}

func TestRegistryMatchesConstants(t *testing.T) {
	if len(Registry) != len(allPoints) {
		t.Fatalf("Registry has %d points, constants declare %d", len(Registry), len(allPoints))
	}
	for _, name := range allPoints {
		if !Known(name) {
			t.Errorf("point constant %q is not in Registry", name)
		}
	}
	for _, p := range Registry {
		if p.Package == "" || p.Effect == "" {
			t.Errorf("registry entry %q is missing Package or Effect", p.Name)
		}
		if !strings.HasPrefix(p.Package, "graphsql/") {
			t.Errorf("registry entry %q names package %q outside the module", p.Name, p.Package)
		}
	}
}

func TestPointNamesSorted(t *testing.T) {
	names := PointNames()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("PointNames() not sorted: %v", names)
	}
	if len(names) != len(Registry) {
		t.Fatalf("PointNames() has %d entries, Registry %d", len(names), len(Registry))
	}
}

func TestParseRejectsUnknownPoint(t *testing.T) {
	_, err := Parse("server.cache.insrt:error:p=0.5")
	if err == nil {
		t.Fatal("Parse accepted an unregistered point")
	}
	if !strings.Contains(err.Error(), "unknown point") ||
		!strings.Contains(err.Error(), PointCacheInsert) {
		t.Fatalf("error %q should name the bad point and list the registry", err)
	}
}

func TestSetAllowsSyntheticPoints(t *testing.T) {
	t.Cleanup(Reset)
	// Programmatic rules are exempt from the registry so tests can plant
	// throwaway points.
	Set(Rule{Point: "test.synthetic", Kind: KindError})
	if Inject("test.synthetic") == nil {
		t.Fatal("programmatic rule on a synthetic point did not fire")
	}
}
