package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"graphsql/internal/exec"
	"graphsql/internal/fault"
	"graphsql/internal/testutil"
	"graphsql/internal/wire"
)

// postRaw posts a payload and returns status, body and content type.
func postRaw(t *testing.T, url string, payload any) (int, []byte, string) {
	t.Helper()
	data, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes(), resp.Header.Get("Content-Type")
}

// TestServerStreamDifferentialEquivalence streams every corpus query
// in small batches and requires the folded stream to re-encode
// byte-identical to the buffered response — the streamed and buffered
// paths may never disagree on a single byte of payload.
func TestServerStreamDifferentialEquivalence(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxInFlight: 4, TotalWorkers: 4, CacheEntries: -1})
	loadCorpus(t, hs.URL, "default")
	want := expectedBodies(t)
	for _, q := range testutil.Queries() {
		status, body, ctype := postRaw(t, hs.URL+"/query",
			&wire.QueryRequest{SQL: q, Stream: true, BatchRows: 7})
		if status != http.StatusOK {
			t.Fatalf("stream status %d: %s\nquery: %s", status, body, q)
		}
		if ctype != wire.StreamContentType {
			t.Fatalf("content type %q, want %q", ctype, wire.StreamContentType)
		}
		folded, _, err := wire.FoldStream(bytes.NewReader(body))
		if err != nil {
			t.Fatalf("fold: %v\nquery: %s\nbody: %s", err, q, body)
		}
		got, err := folded.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want[q]) {
			t.Fatalf("stream differs from buffered\nquery: %s\ngot:  %s\nwant: %s", q, got, want[q])
		}
	}
}

// TestServerStreamLargeBounded streams a 122k-row result and checks
// the bounded-memory contract structurally: the response must arrive
// as many batch frames, every frame staying orders of magnitude
// smaller than the whole payload — i.e. at no point did the server
// hold the full response as one encoded blob.
func TestServerStreamLargeBounded(t *testing.T) {
	const side = 350 // side^2 = 122500 rows
	_, hs := newTestServer(t, Config{MaxInFlight: 2, TotalWorkers: 2})
	script := fmt.Sprintf(`CREATE TABLE nums (x BIGINT);
INSERT INTO nums VALUES (0)%s;
CREATE TABLE big (a BIGINT, b BIGINT);
INSERT INTO big SELECT n1.x, n2.x FROM nums n1, nums n2;`, numsList(side))
	status, body := postJSON(t, hs.URL+"/graphs/default/load", &wire.LoadRequest{Script: script})
	if status != http.StatusOK {
		t.Fatalf("load: %d: %s", status, body)
	}

	status, stream, ctype := postRaw(t, hs.URL+"/query",
		&wire.QueryRequest{SQL: `SELECT a, b FROM big`, Stream: true})
	if status != http.StatusOK {
		t.Fatalf("stream: %d: %s", status, stream[:min(len(stream), 200)])
	}
	if ctype != wire.StreamContentType {
		t.Fatalf("content type %q", ctype)
	}
	// Frame-level structure: many lines, each a bounded fraction of the
	// total response.
	total := len(stream)
	sc := bufio.NewScanner(bytes.NewReader(stream))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines, maxLine := 0, 0
	for sc.Scan() {
		lines++
		if l := len(sc.Bytes()); l > maxLine {
			maxLine = l
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	wantFrames := 122500/wire.DefaultBatchRows + 2 // batches + header + trailer
	if lines < wantFrames {
		t.Fatalf("expected >= %d frames, got %d", wantFrames, lines)
	}
	if maxLine > total/20 {
		t.Fatalf("largest frame is %d of %d total bytes — response was not chunked", maxLine, total)
	}
	folded, batches, err := wire.FoldStream(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if folded.RowCount != 122500 || len(folded.Rows) != 122500 {
		t.Fatalf("row count %d (rows %d), want 122500", folded.RowCount, len(folded.Rows))
	}
	if batches < 100 {
		t.Fatalf("expected >= 100 batch frames, got %d", batches)
	}
}

// TestServerStreamFirstFrameBeforeCompletion is the time-to-first-row
// acceptance test: with a latency fault slowing every pull-executor
// batch, the stream's header and first batch frame must reach the
// client while the query is still executing — under the pull executor
// the stream starts with the first batch, not after the last one. The
// admission grant is held for that whole window (the engine is
// genuinely working during the drain), so the in-flight slot must read
// 1 when the first frame lands and 0 only after the trailer.
func TestServerStreamFirstFrameBeforeCompletion(t *testing.T) {
	if exec.DefaultMaterialize() {
		t.Skip("time-to-first-row is a pull-executor property; under GSQL_EXEC=materialize the escape hatch executes fully before streaming")
	}
	t.Cleanup(fault.Reset)
	s, hs := newTestServer(t, Config{MaxInFlight: 1, QueueDepth: -1, TotalWorkers: 1})
	script := fmt.Sprintf(`CREATE TABLE nums (x BIGINT);
INSERT INTO nums VALUES (0)%s;`, numsList(60))
	if status, body := postJSON(t, hs.URL+"/graphs/default/load", &wire.LoadRequest{Script: script}); status != http.StatusOK {
		t.Fatalf("load: %d: %s", status, body)
	}
	// 20ms before every batch an operator produces: 12 batches of 5 rows
	// make execution take ~some hundreds of ms, far longer than the
	// first frame needs.
	fault.Set(fault.Rule{Point: fault.PointExecBatch, Kind: fault.KindLatency, Latency: 20 * time.Millisecond})

	start := time.Now()
	reqBody, _ := json.Marshal(&wire.QueryRequest{SQL: `SELECT x FROM nums`, Stream: true, BatchRows: 5})
	resp, err := http.Post(hs.URL+"/query", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReaderSize(resp.Body, 1<<20)
	header, err := br.ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	firstBatch, err := br.ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	ttfr := time.Since(start)
	// The first frame arrived while the query executes: its slot is
	// still in flight, and the trailer is still pending.
	if got := s.adm.Snapshot().InFlight; got != 1 {
		t.Fatalf("in-flight slots after first frame = %d, want 1 (query should still be executing)", got)
	}
	rest, err := io.ReadAll(br)
	if err != nil {
		t.Fatal(err)
	}
	total := time.Since(start)
	stream := append(append(header, firstBatch...), rest...)
	folded, batches, err := wire.FoldStream(bytes.NewReader(stream))
	if err != nil {
		t.Fatalf("fold: %v\nbody: %s", err, stream)
	}
	if folded.RowCount != 60 || batches < 12 {
		t.Fatalf("stream folded to %d rows in %d batches, want 60 rows in >= 12 batches", folded.RowCount, batches)
	}
	// Generous margin: the remaining ~11 batches each slept 20ms after
	// the first frame was already out.
	if ttfr >= total-100*time.Millisecond {
		t.Fatalf("first frame took %v of %v total — stream did not start before execution completed", ttfr, total)
	}
	// The grant comes back once the stream completes.
	deadline := time.Now().Add(5 * time.Second)
	for s.adm.Snapshot().InFlight != 0 {
		if time.Now().After(deadline) {
			t.Fatal("in-flight slot still held after the stream completed")
		}
		time.Sleep(time.Millisecond)
	}
}

// numsList renders "(0), (1), ... (n-1)" minus the leading "(0)" that
// the caller already wrote.
func numsList(n int) string {
	var b strings.Builder
	for i := 1; i < n; i++ {
		fmt.Fprintf(&b, ", (%d)", i)
	}
	return b.String()
}

// TestServerStreamFromCache: a buffered execution fills the cache; a
// later streamed request of the same statement must be served from the
// cached result and fold back byte-identical to the buffered body.
func TestServerStreamFromCache(t *testing.T) {
	s, hs := newTestServer(t, Config{MaxInFlight: 4, TotalWorkers: 4})
	loadCorpus(t, hs.URL, "default")
	q := testutil.Queries()[1]
	status, buffered := postJSON(t, hs.URL+"/query", &wire.QueryRequest{SQL: q})
	if status != http.StatusOK {
		t.Fatalf("buffered: %d", status)
	}
	hitsBefore := s.Cache().Snapshot().Hits
	status, stream, _ := postRaw(t, hs.URL+"/query", &wire.QueryRequest{SQL: q, Stream: true, BatchRows: 3})
	if status != http.StatusOK {
		t.Fatalf("stream: %d", status)
	}
	if got := s.Cache().Snapshot().Hits; got != hitsBefore+1 {
		t.Fatalf("cache hits %d, want %d (streamed request missed the cache)", got, hitsBefore+1)
	}
	folded, _, err := wire.FoldStream(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	got, err := folded.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buffered) {
		t.Fatalf("cached stream differs from buffered body\ngot:  %s\nwant: %s", got, buffered)
	}
}

// TestServerPrepareExecute drives the wire-level prepared-statement
// flow: prepare once, execute many times with varying arguments, each
// response byte-identical to the equivalent /query — buffered and
// streamed alike.
func TestServerPrepareExecute(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxInFlight: 4, TotalWorkers: 4})
	loadCorpus(t, hs.URL, "default")

	status, body := postJSON(t, hs.URL+"/prepare", &wire.PrepareRequest{
		Session: "c1",
		SQL:     `SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER knows EDGE (src, dst)`,
		Args:    []any{1, 2},
	})
	if status != http.StatusOK {
		t.Fatalf("prepare: %d: %s", status, body)
	}
	var prep wire.PrepareResponse
	if err := json.Unmarshal(body, &prep); err != nil {
		t.Fatal(err)
	}
	if prep.StatementID == "" || prep.NumParams != 2 {
		t.Fatalf("unexpected prepare response: %s", body)
	}

	for _, pair := range [][2]int64{{1, 2}, {1, 13}, {2, 7}} {
		args := []any{pair[0], pair[1]}
		st1, direct := postJSON(t, hs.URL+"/query", &wire.QueryRequest{
			SQL:  `SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER knows EDGE (src, dst)`,
			Args: args,
		})
		st2, executed := postJSON(t, hs.URL+"/execute", &wire.ExecuteRequest{
			Session: "c1", StatementID: prep.StatementID, Args: args,
		})
		if st1 != http.StatusOK || st2 != http.StatusOK {
			t.Fatalf("args %v: query %d, execute %d: %s", args, st1, st2, executed)
		}
		if !bytes.Equal(direct, executed) {
			t.Fatalf("args %v: execute differs from query\ngot:  %s\nwant: %s", args, executed, direct)
		}
		// Streamed execute folds to the same bytes.
		st3, stream, _ := postRaw(t, hs.URL+"/execute", &wire.ExecuteRequest{
			Session: "c1", StatementID: prep.StatementID, Args: args, Stream: true,
		})
		if st3 != http.StatusOK {
			t.Fatalf("stream execute: %d", st3)
		}
		folded, _, err := wire.FoldStream(bytes.NewReader(stream))
		if err != nil {
			t.Fatal(err)
		}
		got, err := folded.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, direct) {
			t.Fatalf("args %v: streamed execute differs", args)
		}
	}

	// Prepare without representative args: binding is deferred to the
	// first typed execution, but the metadata comes back immediately.
	status, body = postJSON(t, hs.URL+"/prepare", &wire.PrepareRequest{
		Session: "c1",
		SQL:     `SELECT COUNT(*) FROM knows WHERE src >= ? AND dst >= ?`,
	})
	if status != http.StatusOK {
		t.Fatalf("arg-less prepare: %d: %s", status, body)
	}
	var deferred wire.PrepareResponse
	if err := json.Unmarshal(body, &deferred); err != nil {
		t.Fatal(err)
	}
	if deferred.NumParams != 2 || deferred.StatementID == "" {
		t.Fatalf("arg-less prepare response: %s", body)
	}
	status, body = postJSON(t, hs.URL+"/execute", &wire.ExecuteRequest{
		Session: "c1", StatementID: deferred.StatementID, Args: []any{int64(0), int64(0)},
	})
	if status != http.StatusOK {
		t.Fatalf("execute of arg-less prepare: %d: %s", status, body)
	}

	// Error paths: no session on prepare, unknown statement id.
	status, body = postJSON(t, hs.URL+"/prepare", &wire.PrepareRequest{SQL: `SELECT 1`})
	if status != http.StatusBadRequest {
		t.Fatalf("session-less prepare: %d: %s", status, body)
	}
	status, body = postJSON(t, hs.URL+"/execute", &wire.ExecuteRequest{Session: "c1", StatementID: "stmt-999"})
	if status != http.StatusBadRequest {
		t.Fatalf("unknown statement id: %d: %s", status, body)
	}
	status, body = postJSON(t, hs.URL+"/prepare", &wire.PrepareRequest{Session: "c1", SQL: `SELEKT 1`})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("bad sql prepare: %d: %s", status, body)
	}
}

// TestServerMetrics drives traffic through every interesting path and
// checks the Prometheus exposition carries it.
func TestServerMetrics(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxInFlight: 4, TotalWorkers: 4})
	loadCorpus(t, hs.URL, "default")
	q := testutil.Queries()[0]
	postJSON(t, hs.URL+"/query", &wire.QueryRequest{SQL: q})
	postJSON(t, hs.URL+"/query", &wire.QueryRequest{SQL: q}) // cache hit
	postJSON(t, hs.URL+"/query", &wire.QueryRequest{SQL: `SELEKT`})

	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	metric := func(name string) float64 {
		t.Helper()
		for _, line := range strings.Split(text, "\n") {
			if strings.HasPrefix(line, name+" ") {
				var v float64
				if _, err := fmt.Sscanf(line[len(name)+1:], "%g", &v); err != nil {
					t.Fatalf("parse %s: %v", line, err)
				}
				return v
			}
		}
		t.Fatalf("metric %s missing in exposition:\n%s", name, text)
		return 0
	}
	if v := metric("gsqld_queries_total"); v < 3 {
		t.Fatalf("gsqld_queries_total = %v", v)
	}
	if v := metric("gsqld_cache_hits_total"); v < 1 {
		t.Fatalf("gsqld_cache_hits_total = %v", v)
	}
	if v := metric("gsqld_query_errors_total"); v < 1 {
		t.Fatalf("gsqld_query_errors_total = %v", v)
	}
	if v := metric("gsqld_workers_total"); v != 4 {
		t.Fatalf("gsqld_workers_total = %v", v)
	}
	// Per-endpoint series: /query histogram and response counts exist.
	for _, needle := range []string{
		`gsqld_http_responses_total{endpoint="/query",code="200"}`,
		`gsqld_http_request_duration_seconds_bucket{endpoint="/query",le="+Inf"}`,
		`gsqld_http_request_duration_seconds_count{endpoint="/query"}`,
		"# TYPE gsqld_http_request_duration_seconds histogram",
	} {
		if !strings.Contains(text, needle) {
			t.Fatalf("exposition missing %q:\n%s", needle, text)
		}
	}
	// Histogram consistency: +Inf bucket equals the count.
	var inf, count float64
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, `gsqld_http_request_duration_seconds_bucket{endpoint="/query",le="+Inf"} `) {
			fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%g", &inf)
		}
		if strings.HasPrefix(line, `gsqld_http_request_duration_seconds_count{endpoint="/query"} `) {
			fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%g", &count)
		}
	}
	if inf == 0 || inf != count {
		t.Fatalf("histogram +Inf %v != count %v", inf, count)
	}
}
