package server

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"graphsql"
	"graphsql/internal/wire"
)

// Registry is the named multi-graph catalog of the server. Each entry
// holds an atomic pointer to a fully-built database: a (re)load builds
// the replacement off to the side — script, indexes and all — and
// swaps the pointer only when it is complete (copy-on-swap). Queries
// in flight keep the generation they resolved; nothing is mutated
// under them, and the old generation is garbage-collected once the
// last query over it finishes.
type Registry struct {
	// parallelism is the engine default handed to every loaded DB.
	parallelism int

	mu     sync.RWMutex
	graphs map[string]*graphEntry
}

type graphEntry struct {
	name       string
	db         atomic.Pointer[graphsql.DB]
	generation atomic.Int64
}

// NewRegistry builds a registry whose databases default to the given
// worker budget (0 = one worker per CPU).
func NewRegistry(parallelism int) *Registry {
	return &Registry{parallelism: parallelism, graphs: make(map[string]*graphEntry)}
}

// Get resolves the current database of a named graph.
func (r *Registry) Get(name string) (*graphsql.DB, bool) {
	r.mu.RLock()
	e, ok := r.graphs[name]
	r.mu.RUnlock()
	if !ok {
		return nil, false
	}
	return e.db.Load(), true
}

// Resolve returns a named graph's database and generation as one
// consistent pair: the read happens under the registry lock, which a
// reload's swap+bump holds, so a caller can never observe the previous
// database with the new generation. The result cache keys on the pair.
func (r *Registry) Resolve(name string) (*graphsql.DB, int64, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.graphs[name]
	if !ok {
		return nil, 0, false
	}
	return e.db.Load(), e.generation.Load(), true
}

// Load builds a fresh database from the script (and optional graph
// indexes) and swaps it in under the given name, creating the entry if
// needed. On any error the previous generation stays untouched.
func (r *Registry) Load(name, script string, indexes []wire.IndexSpec) (generation int64, tables int, err error) {
	db := graphsql.Open(graphsql.WithParallelism(r.parallelism))
	if script != "" {
		if _, serr := db.ExecScript(script); serr != nil {
			return 0, 0, fmt.Errorf("load script: %w", serr)
		}
	}
	for _, ix := range indexes {
		if err := db.BuildGraphIndex(ix.Table, ix.Src, ix.Dst); err != nil {
			return 0, 0, fmt.Errorf("index %s(%s,%s): %w", ix.Table, ix.Src, ix.Dst, err)
		}
	}
	tables, _ = db.TableStats()
	// Swap and generation bump stay under the registry lock so the
	// reported generation always names the database that is serving
	// (concurrent loads of one graph serialize here; readers only
	// touch the atomics).
	r.mu.Lock()
	e, ok := r.graphs[name]
	if !ok {
		e = &graphEntry{name: name}
		r.graphs[name] = e
	}
	e.db.Store(db)
	gen := e.generation.Add(1)
	r.mu.Unlock()
	return gen, tables, nil
}

// GraphInfo is one registry entry's /stats view. The plan-cache
// counters aggregate over every session of the graph's current
// database: fingerprint normalization folds literal variants of one
// statement shape onto a shared plan, and these counters are how
// operators see whether that sharing actually happens for their
// workload.
type GraphInfo struct {
	Name            string `json:"name"`
	Generation      int64  `json:"generation"`
	Tables          int    `json:"tables"`
	Rows            int    `json:"rows"`
	PlanCacheHits   uint64 `json:"plan_cache_hits"`
	PlanCacheMisses uint64 `json:"plan_cache_misses"`
}

// Info lists the registered graphs sorted by name.
func (r *Registry) Info() []GraphInfo {
	r.mu.RLock()
	entries := make([]*graphEntry, 0, len(r.graphs))
	for _, e := range r.graphs {
		entries = append(entries, e)
	}
	r.mu.RUnlock()
	out := make([]GraphInfo, 0, len(entries))
	for _, e := range entries {
		info := GraphInfo{Name: e.name, Generation: e.generation.Load()}
		if db := e.db.Load(); db != nil {
			info.Tables, info.Rows = db.TableStats()
			info.PlanCacheHits, info.PlanCacheMisses = db.PlanCacheStats()
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
