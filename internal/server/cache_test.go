package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"graphsql"
	"graphsql/internal/testutil"
	"graphsql/internal/wire"
)

// TestCacheKeyDistinguishesArgTypes: 1 (BIGINT), 1.0 (DOUBLE), "1"
// (VARCHAR) and true must produce four distinct keys, and unsupported
// argument types must make the request uncacheable.
func TestCacheKeyDistinguishesArgTypes(t *testing.T) {
	seen := map[string]bool{}
	for _, arg := range []any{int64(1), float64(1), "1", true} {
		k := cacheKey("g", 1, 1, "SELECT ?", []any{arg})
		if k == "" {
			t.Fatalf("arg %v (%T): unexpectedly uncacheable", arg, arg)
		}
		if seen[k] {
			t.Fatalf("arg %v (%T): key collision", arg, arg)
		}
		seen[k] = true
	}
	if k := cacheKey("g", 1, 1, "SELECT ?", []any{[]byte("x")}); k != "" {
		t.Fatalf("unsupported arg type produced key %q", k)
	}
	// Version components must separate keys.
	base := cacheKey("g", 1, 1, "SELECT 1", nil)
	if cacheKey("g", 2, 1, "SELECT 1", nil) == base || cacheKey("g", 1, 2, "SELECT 1", nil) == base {
		t.Fatal("generation/data-version not part of the key")
	}
	// Field boundaries are length-prefixed: payload bytes that mimic a
	// separator or an adjacent field's tag must never collide two
	// distinct requests onto one key.
	if cacheKey("g", 1, 1, "SELECT ? || ?", []any{"x", "y\x00sz"}) ==
		cacheKey("g", 1, 1, "SELECT ? || ?", []any{"x\x00sy", "z"}) {
		t.Fatal("NUL inside a string argument shifted field boundaries")
	}
	if cacheKey("g\x001", 2, 1, "SELECT 1", nil) == cacheKey("g", 12, 1, "SELECT 1", nil) {
		t.Fatal("graph-name bytes leaked into the generation field")
	}
}

// TestCacheableSQL checks the read/write keyword classification.
func TestCacheableSQL(t *testing.T) {
	for _, q := range []string{
		"SELECT 1", "  \n\tselect 1", "WITH c AS (SELECT 1) SELECT * FROM c",
		"-- tagged\nSELECT 1", "/* app:r7 */ SELECT 1", "/* a */ -- b\n /* c */ SELECT 1",
	} {
		if !cacheableSQL(q) {
			t.Fatalf("%q should be cacheable", q)
		}
	}
	// Unterminated comments classify as neither (the lexer rejects them).
	if cacheableSQL("/* open SELECT 1") || cacheableSQL("-- only a comment") {
		t.Fatal("comment-only/unterminated input misclassified as cacheable")
	}
	for _, q := range []string{"INSERT INTO t VALUES (1)", "DELETE FROM t", "CREATE TABLE t (x BIGINT)", "DROP TABLE t", "SET parallelism = 1", ""} {
		if cacheableSQL(q) {
			t.Fatalf("%q should not be cacheable", q)
		}
	}
	for _, q := range []string{"INSERT INTO t VALUES (1)", "delete FROM t", "CREATE TABLE t (x BIGINT)", "DROP TABLE t", "/* app */ INSERT INTO t VALUES (1)", "-- note\nDROP TABLE t"} {
		if !invalidatingSQL(q) {
			t.Fatalf("%q should invalidate", q)
		}
	}
	if invalidatingSQL("SELECT 1") || invalidatingSQL("SET parallelism = 2") {
		t.Fatal("reads/SET must not invalidate")
	}
}

// TestCacheLRUBudgets: the entry budget evicts least-recently-used
// first; the byte budget evicts too; oversized entries are refused.
func TestCacheLRUBudgets(t *testing.T) {
	rc := NewResultCache(2, 1<<20)
	res := &graphsql.Result{}
	put := func(k string) { rc.Put(k, "g", res) }
	put("a")
	put("b")
	if _, ok := rc.Get("a"); !ok { // promotes a over b
		t.Fatal("a missing")
	}
	put("c") // evicts b (LRU)
	if _, ok := rc.Get("b"); ok {
		t.Fatal("b survived past the entry budget")
	}
	if _, ok := rc.Get("a"); !ok {
		t.Fatal("a (recently used) was evicted instead of b")
	}
	snap := rc.Snapshot()
	if snap.Entries != 2 || snap.Evictions != 1 {
		t.Fatalf("unexpected snapshot: %+v", snap)
	}
	// An entry above a quarter of the byte budget is never admitted —
	// the result's payload bytes (here one big string cell) count, not
	// just its row headers.
	rc2 := NewResultCache(100, 2048)
	big := &graphsql.Result{Columns: []string{"s"}, Rows: [][]any{{strings.Repeat("x", 600)}}}
	rc2.Put("huge", "g", big)
	if rc2.Snapshot().Entries != 0 {
		t.Fatal("oversized entry admitted")
	}
	rc2.Put("small", "g", res)
	if rc2.Snapshot().Entries != 1 {
		t.Fatal("small entry refused: admission budget miscomputed")
	}
	// The byte budget evicts from the back.
	rc3 := NewResultCache(100, 4*400)
	for i := 0; i < 8; i++ {
		rc3.Put(fmt.Sprintf("k%d", i), "g", res)
	}
	if s := rc3.Snapshot(); s.Bytes > s.MaxBytes || s.Entries == 8 {
		t.Fatalf("byte budget not enforced: %+v", s)
	}
}

// TestCacheInvalidateGraph drops exactly the named graph's entries.
func TestCacheInvalidateGraph(t *testing.T) {
	rc := NewResultCache(10, 1<<20)
	res := &graphsql.Result{}
	rc.Put("k1", "a", res)
	rc.Put("k2", "b", res)
	rc.Put("k3", "a", res)
	if n := rc.InvalidateGraph("a"); n != 2 {
		t.Fatalf("invalidated %d entries, want 2", n)
	}
	if _, ok := rc.Get("k2"); !ok {
		t.Fatal("unrelated graph's entry was purged")
	}
	if s := rc.Snapshot(); s.Invalidated != 2 || s.Entries != 1 {
		t.Fatalf("unexpected snapshot: %+v", s)
	}
}

// TestServerCacheHit: a repeated SELECT is served from the cache with
// byte-identical content, and the hit/miss counters move.
func TestServerCacheHit(t *testing.T) {
	s, hs := newTestServer(t, Config{MaxInFlight: 4, TotalWorkers: 4})
	loadCorpus(t, hs.URL, "default")
	q := testutil.Queries()[0]
	_, first := postJSON(t, hs.URL+"/query", &wire.QueryRequest{SQL: q})
	_, second := postJSON(t, hs.URL+"/query", &wire.QueryRequest{SQL: q})
	if !bytes.Equal(first, second) {
		t.Fatalf("cached response differs:\n%s\nvs\n%s", first, second)
	}
	cs := s.Cache().Snapshot()
	if cs.Hits == 0 || cs.Misses == 0 || cs.Entries == 0 {
		t.Fatalf("cache counters did not move: %+v", cs)
	}
	// /stats carries the cache snapshot.
	resp, err := http.Get(hs.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Cache == nil || stats.Cache.Hits == 0 {
		t.Fatalf("stats missing cache hits: %+v", stats.Cache)
	}
}

// TestServerCacheHitKeepsSessionAlive: a session whose requests keep
// hitting the result cache is still active and must keep its LRU stamp
// fresh — churning fresh sessions past MaxSessions must evict the
// idle churners, not the cache-hitting session with prepared state.
func TestServerCacheHitKeepsSessionAlive(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxSessions: 2, MaxInFlight: 4, TotalWorkers: 4})
	loadCorpus(t, hs.URL, "default")
	status, body := postJSON(t, hs.URL+"/prepare", &wire.PrepareRequest{
		Session: "keep", SQL: `SELECT COUNT(*) FROM knows`,
	})
	if status != http.StatusOK {
		t.Fatalf("prepare: %d: %s", status, body)
	}
	var prep wire.PrepareResponse
	if err := json.Unmarshal(body, &prep); err != nil {
		t.Fatal(err)
	}
	q := `SELECT COUNT(*) FROM people`
	if status, _ := postJSON(t, hs.URL+"/query", &wire.QueryRequest{SQL: q, Session: "keep"}); status != http.StatusOK {
		t.Fatal("cache-filling query failed")
	}
	for i := 0; i < 6; i++ {
		// The keep session's request hits the cache…
		if status, _ := postJSON(t, hs.URL+"/query", &wire.QueryRequest{SQL: q, Session: "keep"}); status != http.StatusOK {
			t.Fatalf("round %d: cached query failed", i)
		}
		// …while churners put eviction pressure on the 2-slot table.
		if status, _ := postJSON(t, hs.URL+"/query", &wire.QueryRequest{SQL: `SELECT 1`, Session: fmt.Sprintf("churn-%d", i)}); status != http.StatusOK {
			t.Fatalf("round %d: churner failed", i)
		}
	}
	// The prepared statement must have survived the churn.
	status, body = postJSON(t, hs.URL+"/execute", &wire.ExecuteRequest{
		Session: "keep", StatementID: prep.StatementID,
	})
	if status != http.StatusOK {
		t.Fatalf("prepared statement lost under cache-hit traffic: %d: %s", status, body)
	}
}

// TestServerCacheInvalidationOnWrite: INSERT and DELETE between
// repeated SELECTs must never let a stale count through — queries run
// twice per step so the second response of each pair is a cache hit.
func TestServerCacheInvalidationOnWrite(t *testing.T) {
	s, hs := newTestServer(t, Config{MaxInFlight: 4, TotalWorkers: 4})
	count := func(want int64) {
		t.Helper()
		for i := 0; i < 2; i++ {
			status, body := postJSON(t, hs.URL+"/query", &wire.QueryRequest{SQL: `SELECT COUNT(*) FROM churn`})
			if status != http.StatusOK {
				t.Fatalf("count: status %d: %s", status, body)
			}
			wantBody := fmt.Sprintf(`"rows":[[%d]]`, want)
			if !bytes.Contains(body, []byte(wantBody)) {
				t.Fatalf("pass %d: got %s, want %s (stale cache entry served?)", i, body, wantBody)
			}
		}
	}
	mustExec := func(sql string) {
		t.Helper()
		status, body := postJSON(t, hs.URL+"/query", &wire.QueryRequest{SQL: sql})
		if status != http.StatusOK {
			t.Fatalf("exec %s: status %d: %s", sql, status, body)
		}
	}
	mustExec(`CREATE TABLE churn (x BIGINT)`)
	count(0)
	mustExec(`INSERT INTO churn VALUES (1)`)
	count(1)
	mustExec(`INSERT INTO churn VALUES (2), (3)`)
	count(3)
	mustExec(`DELETE FROM churn WHERE x = 2`)
	count(2)
	mustExec(`DELETE FROM churn`)
	count(0)
	if hits := s.Cache().Snapshot().Hits; hits < 5 {
		t.Fatalf("expected a cache hit per repeated count, got %d", hits)
	}
}

// TestServerCacheInvalidationOnReload: a copy-on-swap reload must
// retire every cached result of the previous generation.
func TestServerCacheInvalidationOnReload(t *testing.T) {
	s, hs := newTestServer(t, Config{MaxInFlight: 4, TotalWorkers: 4})
	load := func(rows string) {
		t.Helper()
		status, body := postJSON(t, hs.URL+"/graphs/default/load", &wire.LoadRequest{
			Script: `CREATE TABLE v (x BIGINT); INSERT INTO v VALUES ` + rows + `;`,
		})
		if status != http.StatusOK {
			t.Fatalf("load: status %d: %s", status, body)
		}
	}
	query := func() []byte {
		t.Helper()
		status, body := postJSON(t, hs.URL+"/query", &wire.QueryRequest{SQL: `SELECT COUNT(*) FROM v`})
		if status != http.StatusOK {
			t.Fatalf("query: status %d: %s", status, body)
		}
		return body
	}
	load(`(1), (2)`)
	query()
	if !bytes.Contains(query(), []byte(`"rows":[[2]]`)) {
		t.Fatal("pre-reload count wrong")
	}
	load(`(1), (2), (3)`)
	if got := query(); !bytes.Contains(got, []byte(`"rows":[[3]]`)) {
		t.Fatalf("stale generation served after reload: %s", got)
	}
	if s.Cache().Snapshot().Invalidated == 0 {
		t.Fatal("reload purged nothing")
	}
}

// TestServerCacheChurnConcurrent is the race-enabled churn scenario: 8
// clients replay cacheable corpus queries (byte-compared against
// in-process execution) interleaved with a monotonic COUNT over a
// table a writer keeps growing — a stale cache entry would show the
// count going backwards — while a reloader swaps a second graph
// beneath its own readers.
func TestServerCacheChurnConcurrent(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxInFlight: 16, QueueDepth: 256, TotalWorkers: 16, CacheEntries: 64})
	loadCorpus(t, hs.URL, "default")
	loadCorpus(t, hs.URL, "reloaded")
	if status, body := postJSON(t, hs.URL+"/query", &wire.QueryRequest{SQL: `CREATE TABLE grow (x BIGINT)`}); status != http.StatusOK {
		t.Fatalf("create: %d: %s", status, body)
	}
	want := expectedBodies(t)
	queries := testutil.Queries()[:8]

	const clients = 8
	errs := make(chan error, clients+2)
	stop := make(chan struct{})
	var aux sync.WaitGroup

	// Writer: grows the table, invalidating default-graph entries.
	aux.Add(1)
	go func() {
		defer aux.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			status, body := postJSON(t, hs.URL+"/query",
				&wire.QueryRequest{SQL: fmt.Sprintf(`INSERT INTO grow VALUES (%d)`, i)})
			if status != http.StatusOK {
				errs <- fmt.Errorf("writer: status %d: %s", status, body)
				return
			}
		}
	}()
	// Reloader: swaps the second graph under its readers.
	aux.Add(1)
	go func() {
		defer aux.Done()
		for i := 0; i < 3; i++ {
			select {
			case <-stop:
				return
			default:
			}
			status, body := postJSON(t, hs.URL+"/graphs/reloaded/load",
				&wire.LoadRequest{Script: testutil.SetupScript()})
			if status != http.StatusOK {
				errs <- fmt.Errorf("reloader: status %d: %s", status, body)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lastCount := int64(-1)
			for round := 0; round < 6; round++ {
				for i := range queries {
					q := queries[(i+c*3)%len(queries)]
					status, body := postJSON(t, hs.URL+"/query", &wire.QueryRequest{SQL: q})
					if status != http.StatusOK {
						errs <- fmt.Errorf("client %d: status %d: %s\nquery: %s", c, status, body, q)
						return
					}
					if !bytes.Equal(body, want[q]) {
						errs <- fmt.Errorf("client %d: body differs under churn\nquery: %s", c, q)
						return
					}
					// The reloaded graph always answers consistently.
					status, _ = postJSON(t, hs.URL+"/query", &wire.QueryRequest{SQL: queries[0], Graph: "reloaded"})
					if status != http.StatusOK {
						errs <- fmt.Errorf("client %d: reloaded graph status %d", c, status)
						return
					}
					// Monotonic witness: a stale cached count would step
					// backwards.
					var resp wire.QueryResponse
					status, body = postJSON(t, hs.URL+"/query", &wire.QueryRequest{SQL: `SELECT COUNT(*) FROM grow`})
					if status != http.StatusOK {
						errs <- fmt.Errorf("client %d: count status %d: %s", c, status, body)
						return
					}
					if err := json.Unmarshal(body, &resp); err != nil {
						errs <- err
						return
					}
					n := int64(0)
					if len(resp.Rows) == 1 && len(resp.Rows[0]) == 1 {
						if f, ok := resp.Rows[0][0].(float64); ok {
							n = int64(f)
						}
					}
					if n < lastCount {
						errs <- fmt.Errorf("client %d: count went backwards %d -> %d (stale cache served)", c, lastCount, n)
						return
					}
					lastCount = n
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	aux.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
