package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"graphsql/internal/fault"
	"graphsql/internal/testutil"
	"graphsql/internal/wire"
)

// postFull posts a payload and returns status, body and response
// headers (postJSON drops the headers; Retry-After lives there).
func postFull(t *testing.T, url string, payload any) (int, []byte, http.Header) {
	t.Helper()
	data, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header
}

// decodeError decodes a structured error body, failing on anything else.
func decodeError(t *testing.T, body []byte) *wire.Error {
	t.Helper()
	var qr wire.QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil || qr.Error == nil {
		t.Fatalf("response is not a structured error: %s", body)
	}
	return qr.Error
}

// checkAdmissionClean asserts every slot and worker went back.
func checkAdmissionClean(t *testing.T, s *Server) {
	t.Helper()
	adm := s.adm.Snapshot()
	if adm.InFlight != 0 || adm.Queued != 0 || adm.WorkersFree != adm.Workers {
		t.Fatalf("admission leaked: in_flight=%d queued=%d workers_free=%d/%d",
			adm.InFlight, adm.Queued, adm.WorkersFree, adm.Workers)
	}
}

// TestServerPanicContainment is the layer-by-layer acceptance check: a
// panic injected inside an exec operator comes back as a structured 500
// with code "panic", the same keep-alive client then gets a
// byte-identical 200 for the same query, the panic counter moved, and
// no admission slot or goroutine leaked.
func TestServerPanicContainment(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	t.Cleanup(fault.Reset)
	s, hs := newTestServer(t, Config{MaxInFlight: 4, TotalWorkers: 4})
	loadCorpus(t, hs.URL, "default")
	want := expectedBodies(t) // before arming: the reference runs the same engine

	q := testutil.Queries()[0]
	if err := fault.Set(fault.Rule{Point: fault.PointExecOperator, Kind: fault.KindPanic}); err != nil {
		t.Fatal(err)
	}
	status, body := postJSON(t, hs.URL+"/query", &wire.QueryRequest{SQL: q})
	if status != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500: %s", status, body)
	}
	if e := decodeError(t, body); e.Code != wire.CodePanic {
		t.Fatalf("error code %q, want %q", e.Code, wire.CodePanic)
	}

	fault.Reset()
	status, body = postJSON(t, hs.URL+"/query", &wire.QueryRequest{SQL: q})
	if status != http.StatusOK {
		t.Fatalf("server did not keep serving after contained panic: %d: %s", status, body)
	}
	if !bytes.Equal(body, want[q]) {
		t.Fatalf("post-panic response differs from reference\ngot:  %s\nwant: %s", body, want[q])
	}
	if s.panics.Load() == 0 {
		t.Fatal("contained panic did not increment the panic counter")
	}
	checkAdmissionClean(t, s)

	// The counter reaches the exposition endpoint.
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	found := false
	for _, line := range strings.Split(string(metrics), "\n") {
		if v, ok := strings.CutPrefix(line, "gsqld_panics_total "); ok {
			n, err := strconv.Atoi(strings.TrimSpace(v))
			if err != nil || n < 1 {
				t.Fatalf("gsqld_panics_total = %q, want >= 1", v)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("gsqld_panics_total missing from /metrics:\n%s", metrics)
	}
}

// TestServerMiddlewarePanicRecovery exercises the last-resort recover in
// the instrumentation middleware: the result-cache insert panics after
// execution succeeded, past the engine boundary, on the handler
// goroutine — the middleware must still answer a structured 500 and the
// process must keep serving.
func TestServerMiddlewarePanicRecovery(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	t.Cleanup(fault.Reset)
	s, hs := newTestServer(t, Config{MaxInFlight: 4, TotalWorkers: 4})
	loadCorpus(t, hs.URL, "default")

	if err := fault.Set(fault.Rule{Point: fault.PointCacheInsert, Kind: fault.KindPanic}); err != nil {
		t.Fatal(err)
	}
	q := testutil.Queries()[1]
	status, body := postJSON(t, hs.URL+"/query", &wire.QueryRequest{SQL: q})
	if status != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500: %s", status, body)
	}
	if e := decodeError(t, body); e.Code != wire.CodePanic {
		t.Fatalf("error code %q, want %q", e.Code, wire.CodePanic)
	}
	if s.panics.Load() == 0 {
		t.Fatal("middleware recover did not record the panic")
	}
	checkAdmissionClean(t, s)

	fault.Reset()
	if status, body := postJSON(t, hs.URL+"/query", &wire.QueryRequest{SQL: q}); status != http.StatusOK {
		t.Fatalf("server dead after middleware-contained panic: %d: %s", status, body)
	}
}

// TestServerStreamFaultTrailer verifies a stream is only ever torn by a
// structured error trailer: a panic mid-encode folds to code "panic", a
// plain injected error to code "internal" — never a silent truncation.
func TestServerStreamFaultTrailer(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	t.Cleanup(fault.Reset)
	s, hs := newTestServer(t, Config{MaxInFlight: 4, TotalWorkers: 4, CacheEntries: -1})
	loadCorpus(t, hs.URL, "default")
	q := testutil.Queries()[0]

	for _, tc := range []struct {
		kind fault.Kind
		code string
	}{
		{fault.KindPanic, wire.CodePanic},
		{fault.KindError, wire.CodeInternal},
	} {
		if err := fault.Set(fault.Rule{Point: fault.PointStreamEncode, Kind: tc.kind}); err != nil {
			t.Fatal(err)
		}
		status, stream, ctype := postRaw(t, hs.URL+"/query",
			&wire.QueryRequest{SQL: q, Stream: true, BatchRows: 2})
		// The header frame is on the wire before the fault fires, so the
		// HTTP status is already 200; the error must ride the trailer.
		if status != http.StatusOK || ctype != wire.StreamContentType {
			t.Fatalf("kind %v: status %d ctype %q", tc.kind, status, ctype)
		}
		folded, _, err := wire.FoldStream(bytes.NewReader(stream))
		if err != nil {
			t.Fatalf("kind %v: stream torn without a trailer: %v\n%s", tc.kind, err, stream)
		}
		if folded.Error == nil || folded.Error.Code != tc.code {
			t.Fatalf("kind %v: folded error %+v, want code %q", tc.kind, folded.Error, tc.code)
		}
		fault.Reset()
	}
	if s.panics.Load() == 0 {
		t.Fatal("streamed panic was not recorded")
	}
	checkAdmissionClean(t, s)
}

// TestServerQueueWaitDeadline pins the only execution slot and requires
// a queued request to be shed at the queue-wait deadline with a 503,
// code queue_timeout, and a Retry-After hint — while the query timeout
// (much larger) never enters the picture.
func TestServerQueueWaitDeadline(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	s, hs := newTestServer(t, Config{
		MaxInFlight: 1, QueueDepth: 8, TotalWorkers: 1,
		QueueWait:    50 * time.Millisecond,
		QueryTimeout: time.Minute,
	})
	loadCorpus(t, hs.URL, "default")

	pin, err := s.adm.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	status, body, hdr := postFull(t, hs.URL+"/query", &wire.QueryRequest{SQL: `SELECT 1`})
	waited := time.Since(start)
	pin.Release()

	if status != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", status, body)
	}
	if e := decodeError(t, body); e.Code != wire.CodeQueueTimeout {
		t.Fatalf("error code %q, want %q", e.Code, wire.CodeQueueTimeout)
	}
	if waited > 10*time.Second {
		t.Fatalf("queue-wait shed took %v; deadline not applied", waited)
	}
	ra, err := strconv.Atoi(hdr.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want integer >= 1", hdr.Get("Retry-After"))
	}
	checkAdmissionClean(t, s)

	// The shed was pre-execution, so the retry the header promises works.
	if status, body := postJSON(t, hs.URL+"/query", &wire.QueryRequest{SQL: `SELECT 1`}); status != http.StatusOK {
		t.Fatalf("retry after queue_timeout: %d: %s", status, body)
	}
}

// TestServerQueueFullRetryAfter: with queueing disabled, an overload
// rejection must also carry the Retry-After hint.
func TestServerQueueFullRetryAfter(t *testing.T) {
	s, hs := newTestServer(t, Config{MaxInFlight: 1, QueueDepth: -1, TotalWorkers: 1})
	pin, err := s.adm.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	status, body, hdr := postFull(t, hs.URL+"/query", &wire.QueryRequest{SQL: `SELECT 1`})
	pin.Release()
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", status, body)
	}
	if e := decodeError(t, body); e.Code != wire.CodeQueueFull {
		t.Fatalf("error code %q, want %q", e.Code, wire.CodeQueueFull)
	}
	if ra, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want integer >= 1", hdr.Get("Retry-After"))
	}
}

// TestServerHealthzDegraded: /healthz stays 200 (liveness) but flips
// Status to "degraded" right after a contained panic, reporting the
// panic count and recency so a balancer can drain the instance.
func TestServerHealthzDegraded(t *testing.T) {
	t.Cleanup(fault.Reset)
	_, hs := newTestServer(t, Config{MaxInFlight: 4, TotalWorkers: 4})
	loadCorpus(t, hs.URL, "default")

	getHealth := func() (int, *HealthResponse) {
		t.Helper()
		resp, err := http.Get(hs.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h HealthResponse
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, &h
	}

	if status, h := getHealth(); status != http.StatusOK || h.Status != "ok" || h.PanicsRecovered != 0 {
		t.Fatalf("fresh health = %d %+v, want 200/ok/0 panics", status, h)
	}

	if err := fault.Set(fault.Rule{Point: fault.PointExecOperator, Kind: fault.KindPanic}); err != nil {
		t.Fatal(err)
	}
	if status, _ := postJSON(t, hs.URL+"/query", &wire.QueryRequest{SQL: testutil.Queries()[0]}); status != http.StatusInternalServerError {
		t.Fatalf("fault query status %d, want 500", status)
	}
	fault.Reset()

	status, h := getHealth()
	if status != http.StatusOK {
		t.Fatalf("healthz must stay 200 while alive; got %d", status)
	}
	if h.Status != "degraded" || h.PanicsRecovered < 1 || h.SecondsSinceLastPanic <= 0 || h.SecondsSinceLastPanic > degradedPanicWindow.Seconds() {
		t.Fatalf("post-panic health %+v, want degraded with recent panic", h)
	}
}
