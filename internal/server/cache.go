package server

import (
	"container/list"
	"strconv"
	"strings"
	"sync"

	"graphsql"
	"graphsql/internal/fault"
	"graphsql/internal/sql/lexer"
)

// ResultCache is the server's result-set cache: an LRU over fully
// materialized SELECT results keyed by (graph name, registry
// generation, engine data version, statement text, bound arguments).
// Repeated SELECTs are served straight from it without touching the
// engine — no parse, no plan, no admission slot.
//
// Staleness is handled by the key, not by scanning: a copy-on-swap
// reload bumps the graph's registry generation and every write
// statement bumps the database's data version (see DB.DataVersion), so
// a result computed before either can never be looked up afterwards.
// Writes and reloads additionally purge the graph's entries eagerly
// (InvalidateGraph) so dead entries release memory immediately instead
// of aging out of the LRU.
//
// Lookup keys are fingerprint-normalized by the caller (statement
// literals rewritten to placeholders, the extracted values folded into
// the typed argument list — internal/sql/fingerprint), so the literal
// form of a point lookup and its parameterized form share one entry.
//
// Entries hold a single representation: the materialized Result. The
// buffered JSON encoding is derived on demand (the wire encoding is
// deterministic, so a buffered hit stays byte-identical to a fresh
// execution) and streaming hits re-chunk the rows — storing only one
// form roughly doubles the hit capacity of a given byte budget.
// Entries larger than a quarter of the byte budget are never admitted,
// so one huge result cannot wipe the working set.
type ResultCache struct {
	maxEntries int
	maxBytes   int64

	mu      sync.Mutex
	ll      *list.List // front = most recently used
	entries map[string]*list.Element
	bytes   int64

	hits, misses, evictions, invalidated uint64
}

type cacheEntry struct {
	key   string
	graph string
	res   *graphsql.Result
	// bytes memoizes resultFootprint(res) + key + overhead, so LRU
	// eviction never re-walks the rows.
	bytes int64
}

// cacheEntryOverhead approximates the bookkeeping bytes per entry on
// top of the result payload (list element, map bucket, key).
const cacheEntryOverhead = 256

func entrySize(key string, res *graphsql.Result) int64 {
	return resultFootprint(res) + int64(len(key)) + cacheEntryOverhead
}

// resultFootprint approximates the resident bytes of a materialized
// Result. Boxed cells dominate: an interface value plus the boxed
// payload runs ~24 bytes even for an int64 cell, and variable-size
// payloads (strings, nested path tables) add their own bytes on top —
// with no encoded copy retained, the row walk must count them itself.
func resultFootprint(res *graphsql.Result) int64 {
	if res == nil {
		return 0
	}
	const perRow = 24  // row slice header
	const perCell = 24 // interface header + boxed payload
	total := int64(len(res.Rows)) * perRow
	for _, row := range res.Rows {
		total += int64(len(row)) * perCell
		for _, cell := range row {
			total += cellPayload(cell)
		}
	}
	return total
}

// cellPayload counts the variable-size bytes of one cell beyond its
// boxed header: string contents and nested path tables. Fixed-size
// cells (int64, float64, bool, time.Time) are covered by the per-cell
// constant.
func cellPayload(cell any) int64 {
	switch t := cell.(type) {
	case string:
		return int64(len(t))
	case *graphsql.Path:
		if t == nil {
			return 0
		}
		var n int64
		for _, c := range t.Columns {
			n += int64(len(c))
		}
		n += int64(len(t.Rows)) * 24
		for _, row := range t.Rows {
			n += int64(len(row)) * 24
			for _, pc := range row {
				n += cellPayload(pc)
			}
		}
		return n
	}
	return 0
}

// NewResultCache builds a cache bounded by both an entry count and a
// byte budget (callers pass resolved positive limits).
func NewResultCache(maxEntries int, maxBytes int64) *ResultCache {
	return &ResultCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		entries:    make(map[string]*list.Element),
	}
}

// cacheKey builds the lookup key; it returns "" when the request is
// not cacheable (an argument of a type the normalizer never produces).
// Every field is length-prefixed (netstring style), so no payload byte
// — a NUL inside a string argument, a separator lookalike in a graph
// name — can shift field boundaries and collide two distinct requests
// onto one key; argument values are additionally type-tagged so 1
// (BIGINT), 1.0 (DOUBLE) and the string "1" stay distinct.
func cacheKey(graph string, generation int64, dataVersion uint64, sql string, args []any) string {
	var b strings.Builder
	b.Grow(len(graph) + len(sql) + 32*len(args) + 64)
	field := func(tag byte, payload string) {
		b.WriteByte(tag)
		b.WriteString(strconv.Itoa(len(payload)))
		b.WriteByte(':')
		b.WriteString(payload)
	}
	field('g', graph)
	field('v', strconv.FormatInt(generation, 10))
	field('d', strconv.FormatUint(dataVersion, 10))
	field('q', sql)
	for _, a := range args {
		switch t := a.(type) {
		case nil:
			field('n', "")
		case bool:
			if t {
				field('b', "1")
			} else {
				field('b', "0")
			}
		case int:
			field('i', strconv.FormatInt(int64(t), 10))
		case int64:
			field('i', strconv.FormatInt(t, 10))
		case float64:
			field('f', strconv.FormatFloat(t, 'g', -1, 64))
		case string:
			field('s', t)
		default:
			return ""
		}
	}
	return b.String()
}

// cacheableSQL reports whether a statement may be served from (and
// admitted into) the cache: only reads qualify. The dialect's only
// read statements open with SELECT or WITH, so a keyword sniff is
// exact — anything else executes normally and misclassification is
// impossible (no write statement can start with either keyword).
func cacheableSQL(sql string) bool {
	kw := firstKeyword(sql)
	return kw == "select" || kw == "with"
}

// invalidatingSQL reports whether a statement may change data and must
// purge the graph's cached results (the data-version key already
// protects correctness; the purge frees memory eagerly).
func invalidatingSQL(sql string) bool {
	switch firstKeyword(sql) {
	case "insert", "delete", "create", "drop":
		return true
	}
	return false
}

// firstKeyword returns the statement's leading keyword, lower-cased,
// by asking the engine's own lexer for the first token — whatever
// whitespace and comment forms the lexer skips, this skips, so a
// client tagging queries with a comment prefix classifies the same as
// the bare statement. Anything that does not open with a reserved word
// (including lex errors) yields "".
func firstKeyword(sql string) string {
	tok, err := lexer.New(sql).Next()
	if err != nil || tok.Type != lexer.Keyword {
		return ""
	}
	return strings.ToLower(tok.Text)
}

// Get returns the cached result, promoting the entry to
// most-recently-used. Callers derive whichever response form they need
// (buffered encoding or streamed chunks) from the result.
func (rc *ResultCache) Get(key string) (*graphsql.Result, bool) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	el, ok := rc.entries[key]
	if !ok {
		rc.misses++
		return nil, false
	}
	rc.hits++
	rc.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// Put inserts a result, evicting least-recently-used entries until the
// budgets hold. Results bigger than a quarter of the byte budget are
// dropped instead of cached.
func (rc *ResultCache) Put(key, graph string, res *graphsql.Result) {
	// A cache-insert fault skips the insert: the caller has already sent
	// the result, so losing only the cache admission is the correct
	// degraded behavior (and what the chaos harness asserts).
	if fault.Inject(fault.PointCacheInsert) != nil {
		return
	}
	e := &cacheEntry{key: key, graph: graph, res: res, bytes: entrySize(key, res)}
	if e.bytes > rc.maxBytes/4 {
		return
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if el, ok := rc.entries[key]; ok {
		// Racing fill of the same key: keep the incumbent (identical by
		// construction — same data version).
		rc.ll.MoveToFront(el)
		return
	}
	rc.entries[key] = rc.ll.PushFront(e)
	rc.bytes += e.bytes
	for (len(rc.entries) > rc.maxEntries || rc.bytes > rc.maxBytes) && rc.ll.Len() > 1 {
		rc.evictLocked(rc.ll.Back())
		rc.evictions++
	}
}

// AdmissionBudget reports the per-entry byte ceiling; callers that
// accumulate rows speculatively (the streaming miss path) use it to
// stop buffering as soon as an entry could no longer be admitted.
func (rc *ResultCache) AdmissionBudget() int64 {
	return rc.maxBytes / 4
}

func (rc *ResultCache) evictLocked(el *list.Element) {
	e := el.Value.(*cacheEntry)
	rc.ll.Remove(el)
	delete(rc.entries, e.key)
	rc.bytes -= e.bytes
}

// InvalidateGraph drops every entry of the named graph (reload or
// write); it returns the number of entries purged.
func (rc *ResultCache) InvalidateGraph(graph string) int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	n := 0
	for el := rc.ll.Front(); el != nil; {
		next := el.Next()
		if el.Value.(*cacheEntry).graph == graph {
			rc.evictLocked(el)
			n++
		}
		el = next
	}
	rc.invalidated += uint64(n)
	return n
}

// CacheSnapshot is the cache's point-in-time view for /stats and
// /metrics.
type CacheSnapshot struct {
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Entries     int    `json:"entries"`
	Bytes       int64  `json:"bytes"`
	MaxEntries  int    `json:"max_entries"`
	MaxBytes    int64  `json:"max_bytes"`
	Evictions   uint64 `json:"evictions"`
	Invalidated uint64 `json:"invalidated_entries"`
}

// Snapshot reads the cache counters.
func (rc *ResultCache) Snapshot() CacheSnapshot {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return CacheSnapshot{
		Hits:        rc.hits,
		Misses:      rc.misses,
		Entries:     len(rc.entries),
		Bytes:       rc.bytes,
		MaxEntries:  rc.maxEntries,
		MaxBytes:    rc.maxBytes,
		Evictions:   rc.evictions,
		Invalidated: rc.invalidated,
	}
}
