package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"graphsql/internal/fault"
	"graphsql/internal/wire"
)

func getQueries(t *testing.T, base string) *QueriesResponse {
	t.Helper()
	resp, err := http.Get(base + "/queries")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/queries: status %d: %s", resp.StatusCode, body)
	}
	out := &QueriesResponse{}
	if err := json.Unmarshal(body, out); err != nil {
		t.Fatalf("/queries: bad JSON %q: %v", body, err)
	}
	return out
}

// waitUntil polls until cond is satisfied or the deadline passes.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestQueriesMidFlightCancel drives the in-flight listing through a
// full lifecycle under -race: a running query shows up with its
// granted workers, a second query behind it shows stage "admission"
// while queued, canceling the first lets the second run, and the table
// is empty once both finish. Per-operator latency injection makes the
// first query deterministically slow without any real data volume.
func TestQueriesMidFlightCancel(t *testing.T) {
	// One slot, one worker: query B must queue behind query A.
	_, hs := newTestServer(t, Config{MaxInFlight: 1, QueueDepth: 8, TotalWorkers: 1, CacheEntries: -1})
	loadCorpus(t, hs.URL, "default")

	if empty := getQueries(t, hs.URL); len(empty.Queries) != 0 {
		t.Fatalf("fresh server lists queries: %+v", empty.Queries)
	}

	// Installed after the corpus load so the load itself runs at full
	// speed; every exec operator now sleeps 100ms.
	if err := fault.SetSpec("exec.operator:latency:ms=100"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fault.Reset)

	type result struct {
		status int
		err    error
	}
	post := func(ctx context.Context, sql string) result {
		reqBody, _ := json.Marshal(&wire.QueryRequest{SQL: sql})
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, hs.URL+"/query", bytes.NewReader(reqBody))
		if err != nil {
			return result{err: err}
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return result{err: err}
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return result{status: resp.StatusCode}
	}

	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	aDone := make(chan result, 1)
	go func() { aDone <- post(ctxA, `SELECT * FROM people`) }()

	// A must appear as an executing entry with its worker grant.
	waitUntil(t, "query A executing", func() bool {
		q := getQueries(t, hs.URL)
		for _, e := range q.Queries {
			if strings.Contains(e.Fingerprint, "people") && e.Workers == 1 && e.Stage != "admission" && e.Stage != "" {
				return true
			}
		}
		return false
	})

	bDone := make(chan result, 1)
	go func() { bDone <- post(context.Background(), `SELECT * FROM knows`) }()

	// B queues behind A: no grant yet, stage reads "admission".
	waitUntil(t, "query B queued", func() bool {
		q := getQueries(t, hs.URL)
		if len(q.Queries) != 2 {
			return false
		}
		for _, e := range q.Queries {
			if strings.Contains(e.Fingerprint, "knows") {
				return e.Stage == "admission" && e.Workers == 0 && e.ElapsedMS >= 0
			}
		}
		return false
	})

	// Cancel A mid-flight: it aborts at the next operator boundary, B
	// gets the slot, and the table eventually drains.
	cancelA()
	ra := <-aDone
	if ra.err == nil && ra.status != 499 {
		t.Fatalf("canceled query A: status %d, err %v (want 499 or transport error)", ra.status, ra.err)
	}
	rb := <-bDone
	if rb.err != nil || rb.status != http.StatusOK {
		t.Fatalf("query B after cancel: %+v", rb)
	}
	waitUntil(t, "in-flight table to drain", func() bool {
		return len(getQueries(t, hs.URL).Queries) == 0
	})
}

// TestQueriesFingerprintNormalized: the listing shows the normalized
// statement shape, not literal values.
func TestQueriesFingerprintNormalized(t *testing.T) {
	_, hs := newTestServer(t, Config{CacheEntries: -1})
	loadCorpus(t, hs.URL, "default")
	if err := fault.SetSpec("exec.operator:latency:ms=50"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fault.Reset)

	done := make(chan struct{})
	go func() {
		defer close(done)
		reqBody, _ := json.Marshal(&wire.QueryRequest{SQL: `SELECT id FROM people WHERE id = 12345`})
		resp, err := http.Post(hs.URL+"/query", "application/json", bytes.NewReader(reqBody))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	found := false
	waitUntil(t, "normalized fingerprint in /queries", func() bool {
		for _, e := range getQueries(t, hs.URL).Queries {
			if strings.Contains(e.Fingerprint, "id = ?") && !strings.Contains(e.Fingerprint, "12345") {
				found = true
			}
		}
		return found
	})
	<-done
	if !found {
		t.Fatal(fmt.Errorf("normalized fingerprint never appeared"))
	}
}
