package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"graphsql"
	"graphsql/internal/testutil"
	"graphsql/internal/wire"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs
}

func postJSON(t *testing.T, url string, payload any) (int, []byte) {
	t.Helper()
	data, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func loadCorpus(t *testing.T, base, graph string) {
	t.Helper()
	status, body := postJSON(t, base+"/graphs/"+graph+"/load",
		&wire.LoadRequest{Script: testutil.SetupScript()})
	if status != http.StatusOK {
		t.Fatalf("load: status %d: %s", status, body)
	}
}

// expectedBodies runs every corpus query in-process and wire-encodes
// the results — the reference the HTTP bodies must match byte for byte.
func expectedBodies(t *testing.T) map[string][]byte {
	t.Helper()
	db := graphsql.Open()
	if _, err := db.ExecScript(testutil.SetupScript()); err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte)
	for _, q := range testutil.Queries() {
		res, err := db.Query(q)
		if err != nil {
			t.Fatalf("direct: %v\nquery: %s", err, q)
		}
		data, err := wire.FromResult(res).Encode()
		if err != nil {
			t.Fatal(err)
		}
		out[q] = data
	}
	return out
}

// TestServerDifferentialConcurrent is the acceptance scenario: 8
// concurrent HTTP clients replay the differential corpus and require
// responses byte-identical to in-process execution, while a reloader
// swaps the graph under load and a canceler aborts in-flight queries —
// all race-clean under -race.
func TestServerDifferentialConcurrent(t *testing.T) {
	// Admission must admit all 8 clients plus the background load;
	// overload behavior is tested separately (TestServerAdmissionRejects).
	_, hs := newTestServer(t, Config{MaxInFlight: 16, QueueDepth: 128, TotalWorkers: 16})
	loadCorpus(t, hs.URL, "default")
	want := expectedBodies(t)
	queries := testutil.Queries()

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients+2)
	stop := make(chan struct{})

	// Reloader: rebuilds the same dataset, so results never change but
	// every swap exercises copy-on-swap under live traffic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			select {
			case <-stop:
				return
			default:
			}
			status, body := postJSON(t, hs.URL+"/graphs/default/load",
				&wire.LoadRequest{Script: testutil.SetupScript()})
			if status != http.StatusOK {
				errs <- fmt.Errorf("reload under load: status %d: %s", status, body)
				return
			}
		}
	}()

	// Canceler: issues queries with contexts canceled mid-flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			ctx, cancel := context.WithTimeout(context.Background(), time.Duration(1+i)*time.Millisecond)
			reqBody, _ := json.Marshal(&wire.QueryRequest{
				SQL: `SELECT p1.id, p2.id, CHEAPEST SUM(1) FROM people p1, people p2
				      WHERE p1.id REACHES p2.id OVER knows EDGE (src, dst)`,
			})
			req, _ := http.NewRequestWithContext(ctx, http.MethodPost, hs.URL+"/query", bytes.NewReader(reqBody))
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				// Finished before the deadline — legal, just consume it.
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			cancel()
		}
	}()

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			session := fmt.Sprintf("client-%d", c)
			for i, q := range queries {
				// Stagger starting points so clients collide on
				// different queries.
				q = queries[(i+c*7)%len(queries)]
				status, body := postJSON(t, hs.URL+"/query",
					&wire.QueryRequest{SQL: q, Session: session})
				if status != http.StatusOK {
					errs <- fmt.Errorf("client %d: status %d: %s\nquery: %s", c, status, body, q)
					return
				}
				if !bytes.Equal(body, want[q]) {
					errs <- fmt.Errorf("client %d: body differs from in-process execution\nquery: %s\ngot:  %s\nwant: %s",
						c, q, body, want[q])
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestServerSessionSettings checks that SET parallelism persists within
// a session (and only there) and that results are unchanged by it.
func TestServerSessionSettings(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	loadCorpus(t, hs.URL, "default")

	status, body := postJSON(t, hs.URL+"/query",
		&wire.QueryRequest{SQL: `SET parallelism = 1`, Session: "s1"})
	if status != http.StatusOK {
		t.Fatalf("SET: status %d: %s", status, body)
	}
	// An unknown setting errors.
	status, body = postJSON(t, hs.URL+"/query",
		&wire.QueryRequest{SQL: `SET bogus = 3`, Session: "s1"})
	if status == http.StatusOK {
		t.Fatalf("SET bogus succeeded: %s", body)
	}
	q := `SELECT p.a, p.b, CHEAPEST SUM(k: w) AS cost FROM pairs p
	 WHERE p.a REACHES p.b OVER knows k EDGE (src, dst) ORDER BY cost DESC, p.a, p.b`
	var bodies [][]byte
	for _, sess := range []string{"s1", "s2", ""} {
		status, body := postJSON(t, hs.URL+"/query", &wire.QueryRequest{SQL: q, Session: sess})
		if status != http.StatusOK {
			t.Fatalf("session %q: status %d: %s", sess, status, body)
		}
		bodies = append(bodies, body)
	}
	for i := 1; i < len(bodies); i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("session parallelism changed results:\n%s\nvs\n%s", bodies[0], bodies[i])
		}
	}
}

// TestServerWorkersField checks the per-request workers override is
// accepted and result-invariant.
func TestServerWorkersField(t *testing.T) {
	_, hs := newTestServer(t, Config{TotalWorkers: 8, MaxInFlight: 4})
	loadCorpus(t, hs.URL, "default")
	q := `SELECT src FROM knows UNION SELECT dst FROM knows`
	var ref []byte
	for _, workers := range []int{0, 1, 2, 5} {
		status, body := postJSON(t, hs.URL+"/query", &wire.QueryRequest{SQL: q, Workers: workers})
		if status != http.StatusOK {
			t.Fatalf("workers=%d: status %d: %s", workers, status, body)
		}
		if ref == nil {
			ref = body
		} else if !bytes.Equal(ref, body) {
			t.Fatalf("workers=%d changed the result", workers)
		}
	}
}

// TestServerAdmissionRejects fills the in-flight and queue capacity by
// holding grants directly, then checks the HTTP layer rejects with 503
// queue_full — deterministic, no timing.
func TestServerAdmissionRejects(t *testing.T) {
	s, hs := newTestServer(t, Config{MaxInFlight: 1, QueueDepth: -1, TotalWorkers: 2})
	grant, err := s.Admission().Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer grant.Release()
	status, body := postJSON(t, hs.URL+"/query", &wire.QueryRequest{SQL: `SELECT 1`})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("expected 503, got %d: %s", status, body)
	}
	var resp wire.QueryResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Error == nil || resp.Error.Code != wire.CodeQueueFull {
		t.Fatalf("expected queue_full error, got %s", body)
	}
}

// TestServerCancellation issues a heavy query with a tiny timeout and
// requires a clean canceled/timeout error plus counter movement.
func TestServerCancellation(t *testing.T) {
	s, hs := newTestServer(t, Config{})
	loadCorpus(t, hs.URL, "default")
	// An all-pairs batched REACHES (400 source groups over a 160k-row
	// cross product) is far beyond a 1ms budget on any machine.
	status, body := postJSON(t, hs.URL+"/query", &wire.QueryRequest{
		SQL: `SELECT p1.id, p2.id, CHEAPEST SUM(1) FROM people p1, people p2
		      WHERE p1.id REACHES p2.id OVER knows EDGE (src, dst)`,
		TimeoutMillis: 1,
	})
	if status == http.StatusOK {
		t.Fatalf("expected cancellation, got 200: %s", body)
	}
	var resp wire.QueryResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Error == nil || (resp.Error.Code != wire.CodeTimeout && resp.Error.Code != wire.CodeCanceled) {
		t.Fatalf("expected timeout/canceled, got %s", body)
	}
	if got := s.canceled.Load(); got == 0 {
		t.Fatal("canceled counter did not move")
	}
	// The server stays healthy afterwards.
	status, body = postJSON(t, hs.URL+"/query", &wire.QueryRequest{SQL: `SELECT COUNT(*) FROM knows`})
	if status != http.StatusOK {
		t.Fatalf("post-cancel query failed: %d: %s", status, body)
	}
}

// TestServerStatsAndHealth sanity-checks the monitoring endpoints.
func TestServerStatsAndHealth(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	loadCorpus(t, hs.URL, "g2")
	if _, body := postJSON(t, hs.URL+"/query", &wire.QueryRequest{SQL: `SELECT COUNT(*) FROM teams`, Graph: "g2"}); !strings.Contains(string(body), `"rows":[[12]]`) {
		t.Fatalf("unexpected query body: %s", body)
	}
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	sresp, err := http.Get(hs.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Queries == 0 {
		t.Fatal("stats: no queries counted")
	}
	found := false
	for _, g := range stats.Graphs {
		if g.Name == "g2" && g.Tables == 4 && g.Generation == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("stats: graph g2 missing or wrong: %+v", stats.Graphs)
	}
}

// TestServerUnknownGraph checks the 404 path.
func TestServerUnknownGraph(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	status, body := postJSON(t, hs.URL+"/query", &wire.QueryRequest{SQL: `SELECT 1`, Graph: "nope"})
	if status != http.StatusNotFound {
		t.Fatalf("expected 404, got %d: %s", status, body)
	}
}

// TestServerIndexedLoad loads with a prebuilt graph index and checks
// graph queries still match in-process execution byte for byte.
func TestServerIndexedLoad(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	status, body := postJSON(t, hs.URL+"/graphs/default/load", &wire.LoadRequest{
		Script:  testutil.SetupScript(),
		Indexes: []wire.IndexSpec{{Table: "knows", Src: "src", Dst: "dst"}},
	})
	if status != http.StatusOK {
		t.Fatalf("indexed load: %d: %s", status, body)
	}
	want := expectedBodies(t)
	for _, q := range testutil.Queries() {
		status, body := postJSON(t, hs.URL+"/query", &wire.QueryRequest{SQL: q})
		if status != http.StatusOK {
			t.Fatalf("status %d: %s\nquery: %s", status, body, q)
		}
		if !bytes.Equal(body, want[q]) {
			t.Fatalf("indexed body differs\nquery: %s\ngot:  %s\nwant: %s", q, body, want[q])
		}
	}
}
