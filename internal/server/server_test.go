package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"graphsql"
	"graphsql/internal/testutil"
	"graphsql/internal/wire"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs
}

func postJSON(t *testing.T, url string, payload any) (int, []byte) {
	t.Helper()
	data, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func loadCorpus(t *testing.T, base, graph string) {
	t.Helper()
	status, body := postJSON(t, base+"/graphs/"+graph+"/load",
		&wire.LoadRequest{Script: testutil.SetupScript()})
	if status != http.StatusOK {
		t.Fatalf("load: status %d: %s", status, body)
	}
}

// expectedBodies runs every corpus query in-process and wire-encodes
// the results — the reference the HTTP bodies must match byte for byte.
func expectedBodies(t *testing.T) map[string][]byte {
	t.Helper()
	db := graphsql.Open()
	if _, err := db.ExecScript(testutil.SetupScript()); err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte)
	for _, q := range testutil.Queries() {
		res, err := db.Query(q)
		if err != nil {
			t.Fatalf("direct: %v\nquery: %s", err, q)
		}
		data, err := wire.FromResult(res).Encode()
		if err != nil {
			t.Fatal(err)
		}
		out[q] = data
	}
	return out
}

// TestServerDifferentialConcurrent is the acceptance scenario: 8
// concurrent HTTP clients replay the differential corpus and require
// responses byte-identical to in-process execution, while a reloader
// swaps the graph under load and a canceler aborts in-flight queries —
// all race-clean under -race.
func TestServerDifferentialConcurrent(t *testing.T) {
	// Admission must admit all 8 clients plus the background load;
	// overload behavior is tested separately (TestServerAdmissionRejects).
	_, hs := newTestServer(t, Config{MaxInFlight: 16, QueueDepth: 128, TotalWorkers: 16})
	loadCorpus(t, hs.URL, "default")
	want := expectedBodies(t)
	queries := testutil.Queries()

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients+2)
	stop := make(chan struct{})

	// Reloader: rebuilds the same dataset, so results never change but
	// every swap exercises copy-on-swap under live traffic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			select {
			case <-stop:
				return
			default:
			}
			status, body := postJSON(t, hs.URL+"/graphs/default/load",
				&wire.LoadRequest{Script: testutil.SetupScript()})
			if status != http.StatusOK {
				errs <- fmt.Errorf("reload under load: status %d: %s", status, body)
				return
			}
		}
	}()

	// Canceler: issues queries with contexts canceled mid-flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			ctx, cancel := context.WithTimeout(context.Background(), time.Duration(1+i)*time.Millisecond)
			reqBody, _ := json.Marshal(&wire.QueryRequest{
				SQL: `SELECT p1.id, p2.id, CHEAPEST SUM(1) FROM people p1, people p2
				      WHERE p1.id REACHES p2.id OVER knows EDGE (src, dst)`,
			})
			req, _ := http.NewRequestWithContext(ctx, http.MethodPost, hs.URL+"/query", bytes.NewReader(reqBody))
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				// Finished before the deadline — legal, just consume it.
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			cancel()
		}
	}()

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			session := fmt.Sprintf("client-%d", c)
			for i, q := range queries {
				// Stagger starting points so clients collide on
				// different queries.
				q = queries[(i+c*7)%len(queries)]
				status, body := postJSON(t, hs.URL+"/query",
					&wire.QueryRequest{SQL: q, Session: session})
				if status != http.StatusOK {
					errs <- fmt.Errorf("client %d: status %d: %s\nquery: %s", c, status, body, q)
					return
				}
				if !bytes.Equal(body, want[q]) {
					errs <- fmt.Errorf("client %d: body differs from in-process execution\nquery: %s\ngot:  %s\nwant: %s",
						c, q, body, want[q])
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestServerSessionSettings checks that SET parallelism persists within
// a session (and only there) and that results are unchanged by it.
func TestServerSessionSettings(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	loadCorpus(t, hs.URL, "default")

	status, body := postJSON(t, hs.URL+"/query",
		&wire.QueryRequest{SQL: `SET parallelism = 1`, Session: "s1"})
	if status != http.StatusOK {
		t.Fatalf("SET: status %d: %s", status, body)
	}
	// An unknown setting errors.
	status, body = postJSON(t, hs.URL+"/query",
		&wire.QueryRequest{SQL: `SET bogus = 3`, Session: "s1"})
	if status == http.StatusOK {
		t.Fatalf("SET bogus succeeded: %s", body)
	}
	q := `SELECT p.a, p.b, CHEAPEST SUM(k: w) AS cost FROM pairs p
	 WHERE p.a REACHES p.b OVER knows k EDGE (src, dst) ORDER BY cost DESC, p.a, p.b`
	var bodies [][]byte
	for _, sess := range []string{"s1", "s2", ""} {
		status, body := postJSON(t, hs.URL+"/query", &wire.QueryRequest{SQL: q, Session: sess})
		if status != http.StatusOK {
			t.Fatalf("session %q: status %d: %s", sess, status, body)
		}
		bodies = append(bodies, body)
	}
	for i := 1; i < len(bodies); i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("session parallelism changed results:\n%s\nvs\n%s", bodies[0], bodies[i])
		}
	}
}

// TestServerWorkersField checks the per-request workers override is
// accepted and result-invariant.
func TestServerWorkersField(t *testing.T) {
	_, hs := newTestServer(t, Config{TotalWorkers: 8, MaxInFlight: 4})
	loadCorpus(t, hs.URL, "default")
	q := `SELECT src FROM knows UNION SELECT dst FROM knows`
	var ref []byte
	for _, workers := range []int{0, 1, 2, 5} {
		status, body := postJSON(t, hs.URL+"/query", &wire.QueryRequest{SQL: q, Workers: workers})
		if status != http.StatusOK {
			t.Fatalf("workers=%d: status %d: %s", workers, status, body)
		}
		if ref == nil {
			ref = body
		} else if !bytes.Equal(ref, body) {
			t.Fatalf("workers=%d changed the result", workers)
		}
	}
}

// TestServerAdmissionRejects fills the in-flight and queue capacity by
// holding grants directly, then checks the HTTP layer rejects with 503
// queue_full — deterministic, no timing.
func TestServerAdmissionRejects(t *testing.T) {
	s, hs := newTestServer(t, Config{MaxInFlight: 1, QueueDepth: -1, TotalWorkers: 2})
	grant, err := s.Admission().Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer grant.Release()
	status, body := postJSON(t, hs.URL+"/query", &wire.QueryRequest{SQL: `SELECT 1`})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("expected 503, got %d: %s", status, body)
	}
	var resp wire.QueryResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Error == nil || resp.Error.Code != wire.CodeQueueFull {
		t.Fatalf("expected queue_full error, got %s", body)
	}
}

// TestServerCancellation issues a heavy query with a tiny timeout and
// requires a clean canceled/timeout error plus counter movement.
func TestServerCancellation(t *testing.T) {
	// Registered before the server so it checks after server shutdown.
	testutil.CheckGoroutineLeaks(t)
	s, hs := newTestServer(t, Config{})
	loadCorpus(t, hs.URL, "default")
	// An all-pairs batched REACHES (400 source groups over a 160k-row
	// cross product) is far beyond a 1ms budget on any machine.
	status, body := postJSON(t, hs.URL+"/query", &wire.QueryRequest{
		SQL: `SELECT p1.id, p2.id, CHEAPEST SUM(1) FROM people p1, people p2
		      WHERE p1.id REACHES p2.id OVER knows EDGE (src, dst)`,
		TimeoutMillis: 1,
	})
	if status == http.StatusOK {
		t.Fatalf("expected cancellation, got 200: %s", body)
	}
	var resp wire.QueryResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Error == nil || (resp.Error.Code != wire.CodeTimeout && resp.Error.Code != wire.CodeCanceled) {
		t.Fatalf("expected timeout/canceled, got %s", body)
	}
	if got := s.canceled.Load(); got == 0 {
		t.Fatal("canceled counter did not move")
	}
	// The server stays healthy afterwards.
	status, body = postJSON(t, hs.URL+"/query", &wire.QueryRequest{SQL: `SELECT COUNT(*) FROM knows`})
	if status != http.StatusOK {
		t.Fatalf("post-cancel query failed: %d: %s", status, body)
	}
}

// TestServerSessionEvictionUnderLoad hammers a MaxSessions=2 server
// with a session-churning goroutine while two long-lived sessions keep
// querying through their prepared-plan caches. Eviction of the oldest
// session while it has a query in flight must never fail that query or
// change its bytes: the handler resolved its facade session before the
// eviction, so the prepared plan stays alive for the execution. Run
// under -race this doubles as the eviction/bind race check.
func TestServerSessionEvictionUnderLoad(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	srv, hs := newTestServer(t, Config{MaxSessions: 2, MaxInFlight: 8, QueueDepth: 64, TotalWorkers: 8})
	loadCorpus(t, hs.URL, "default")
	want := expectedBodies(t)
	queries := testutil.Queries()[:6]

	stop := make(chan struct{})
	errs := make(chan error, 4)
	// Churner: a stream of fresh session ids, each one evicting the
	// oldest entry of the 2-slot table.
	var churnWG sync.WaitGroup
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			status, body := postJSON(t, hs.URL+"/query",
				&wire.QueryRequest{SQL: `SELECT 1 + 1`, Session: fmt.Sprintf("churn-%d", i)})
			if status != http.StatusOK {
				errs <- fmt.Errorf("churner %d: status %d: %s", i, status, body)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			session := fmt.Sprintf("long-lived-%d", c)
			for round := 0; round < 8; round++ {
				for _, q := range queries {
					status, body := postJSON(t, hs.URL+"/query",
						&wire.QueryRequest{SQL: q, Session: session})
					if status != http.StatusOK {
						errs <- fmt.Errorf("session %s: status %d: %s\nquery: %s", session, status, body, q)
						return
					}
					if !bytes.Equal(body, want[q]) {
						errs <- fmt.Errorf("session %s: body changed under eviction\nquery: %s", session, q)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	churnWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// The table never grew past the cap.
	srv.sessMu.Lock()
	n := len(srv.sessions)
	srv.sessMu.Unlock()
	if n > 2 {
		t.Fatalf("session table grew to %d entries, cap 2", n)
	}
}

// chainScript builds a SQL script creating a deep chain graph of
// width*width edges (vertex i -> i+1) via an INSERT ... SELECT cross
// join, so the script itself stays tiny. The weight column routes
// CHEAPEST SUM through Dijkstra, whose settle loop is the cancellation
// poll under test.
func chainScript(width int) string {
	var b strings.Builder
	b.WriteString("CREATE TABLE nums (x BIGINT);\n")
	b.WriteString("INSERT INTO nums VALUES (0)")
	for i := 1; i < width; i++ {
		fmt.Fprintf(&b, ", (%d)", i)
	}
	b.WriteString(";\n")
	b.WriteString("CREATE TABLE edges (src BIGINT, dst BIGINT, w BIGINT);\n")
	fmt.Fprintf(&b, "INSERT INTO edges SELECT a.x * %d + b.x, a.x * %d + b.x + 1, 1 FROM nums a, nums b;\n", width, width)
	return b.String()
}

// TestServerCancelSingleTraversal is the single-traversal analogue of
// TestServerCancellation: one source, one destination — one source
// group, which the old source-group cancellation granularity could
// never abort mid-flight. The query runs over a prebuilt graph index
// (construction out of the way), the client disconnects mid-traversal,
// and the worker must come free in a fraction of the full traversal
// time. Run under -race this also exercises the cancel path against
// concurrent queries.
func TestServerCancelSingleTraversal(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	const width = 700 // 490k edges, 490k-deep chain
	s, hs := newTestServer(t, Config{})
	status, body := postJSON(t, hs.URL+"/graphs/default/load", &wire.LoadRequest{
		Script:  chainScript(width),
		Indexes: []wire.IndexSpec{{Table: "edges", Src: "src", Dst: "dst"}},
	})
	if status != http.StatusOK {
		t.Fatalf("load: status %d: %s", status, body)
	}
	// The chain's far end: reachable, so the traversal settles the
	// whole chain before answering.
	q := fmt.Sprintf(`SELECT CHEAPEST SUM(e: w) WHERE 0 REACHES %d OVER edges e EDGE (src, dst)`, width*width)

	// Reference: the full traversal, uncanceled.
	start := time.Now()
	status, body = postJSON(t, hs.URL+"/query", &wire.QueryRequest{SQL: q})
	full := time.Since(start)
	if status != http.StatusOK {
		t.Fatalf("full traversal: status %d: %s", status, body)
	}

	// Cancel mid-flight: disconnect the client partway through the
	// traversal. Wall-clock timing on a loaded CI host is noisy, so the
	// precise "aborts within one frontier level / N pops" assertion
	// lives in internal/graph's deterministic tests; here we retry a
	// few times to actually catch the traversal in flight, then require
	// the server to observe the cancellation and free the worker
	// promptly (absolute bound, not proportional — the post-cancel work
	// is bounded by the poll interval, not the traversal size).
	caught := false
	for attempt := 0; attempt < 3 && !caught; attempt++ {
		before := s.canceled.Load()
		ctx, cancel := context.WithCancel(context.Background())
		reqBody, _ := json.Marshal(&wire.QueryRequest{SQL: q})
		req, _ := http.NewRequestWithContext(ctx, http.MethodPost, hs.URL+"/query", bytes.NewReader(reqBody))
		go func() {
			time.Sleep(full / 4)
			cancel()
		}()
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			cancel()
			continue // finished before the cancel fired
		}
		disconnected := time.Now()
		// The worker must come free; 5s is orders of magnitude beyond
		// the poll interval even on a contended host, while a traversal
		// pinned to completion on a graph sized for minutes would trip
		// it.
		for s.adm.Snapshot().InFlight > 0 {
			if time.Since(disconnected) > 5*time.Second {
				t.Fatalf("worker still pinned %v after client disconnect (full traversal: %v)",
					time.Since(disconnected), full)
			}
			time.Sleep(time.Millisecond)
		}
		// Did the server abort the query (rather than complete it
		// before noticing the disconnect)?
		waitUntil := time.Now().Add(time.Second)
		for s.canceled.Load() == before && time.Now().Before(waitUntil) {
			time.Sleep(time.Millisecond)
		}
		caught = s.canceled.Load() != before
	}
	if !caught {
		t.Skip("traversal never caught in flight; host too fast for this shape")
	}
	// And the server stays healthy.
	status, body = postJSON(t, hs.URL+"/query", &wire.QueryRequest{SQL: `SELECT COUNT(*) FROM edges`})
	if status != http.StatusOK || !strings.Contains(string(body), fmt.Sprint(width*width)) {
		t.Fatalf("post-cancel query failed: %d: %s", status, body)
	}
}

// TestServerStatsAndHealth sanity-checks the monitoring endpoints.
func TestServerStatsAndHealth(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	loadCorpus(t, hs.URL, "g2")
	if _, body := postJSON(t, hs.URL+"/query", &wire.QueryRequest{SQL: `SELECT COUNT(*) FROM teams`, Graph: "g2"}); !strings.Contains(string(body), `"rows":[[12]]`) {
		t.Fatalf("unexpected query body: %s", body)
	}
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	sresp, err := http.Get(hs.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Queries == 0 {
		t.Fatal("stats: no queries counted")
	}
	found := false
	for _, g := range stats.Graphs {
		if g.Name == "g2" && g.Tables == 4 && g.Generation == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("stats: graph g2 missing or wrong: %+v", stats.Graphs)
	}
}

// TestServerUnknownGraph checks the 404 path.
func TestServerUnknownGraph(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	status, body := postJSON(t, hs.URL+"/query", &wire.QueryRequest{SQL: `SELECT 1`, Graph: "nope"})
	if status != http.StatusNotFound {
		t.Fatalf("expected 404, got %d: %s", status, body)
	}
}

// TestServerIndexedLoad loads with a prebuilt graph index and checks
// graph queries still match in-process execution byte for byte.
func TestServerIndexedLoad(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	status, body := postJSON(t, hs.URL+"/graphs/default/load", &wire.LoadRequest{
		Script:  testutil.SetupScript(),
		Indexes: []wire.IndexSpec{{Table: "knows", Src: "src", Dst: "dst"}},
	})
	if status != http.StatusOK {
		t.Fatalf("indexed load: %d: %s", status, body)
	}
	want := expectedBodies(t)
	for _, q := range testutil.Queries() {
		status, body := postJSON(t, hs.URL+"/query", &wire.QueryRequest{SQL: q})
		if status != http.StatusOK {
			t.Fatalf("status %d: %s\nquery: %s", status, body, q)
		}
		if !bytes.Equal(body, want[q]) {
			t.Fatalf("indexed body differs\nquery: %s\ngot:  %s\nwant: %s", q, body, want[q])
		}
	}
}
