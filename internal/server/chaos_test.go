package server

// Chaos harness: the differential corpus replayed by concurrent clients
// against a live server while a randomized fault schedule fires inside
// the solver, the operators, the cache and the stream encoder. The
// contract under chaos is absolute: the process keeps serving, every
// response is either byte-identical to the fault-free reference or a
// structured error, every admission slot comes back, and no goroutine
// leaks. Run with -race; the CI chaos job does.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"

	"graphsql/internal/fault"
	"graphsql/internal/testutil"
	"graphsql/internal/wire"
)

// post is a goroutine-safe POST helper: no testing.T, so worker
// goroutines can report failures through a channel instead of an
// illegal cross-goroutine FailNow.
func post(url string, payload any) (int, []byte, error) {
	data, err := json.Marshal(payload)
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, body, nil
}

// trim bounds a response body for failure messages.
func trim(b []byte) string {
	if len(b) > 200 {
		return string(b[:200]) + "..."
	}
	return string(b)
}

// replayClean replays the whole corpus once with no faults armed and
// requires byte-identical responses — the server state survived chaos.
func replayClean(t *testing.T, base string, want map[string][]byte) {
	t.Helper()
	for _, q := range testutil.Queries() {
		status, body := postJSON(t, base+"/query", &wire.QueryRequest{SQL: q})
		if status != http.StatusOK {
			t.Fatalf("post-chaos replay: status %d for %q: %s", status, q, trim(body))
		}
		if !bytes.Equal(body, want[q]) {
			t.Fatalf("post-chaos replay diverged for %q\ngot:  %s\nwant: %s", q, trim(body), trim(want[q]))
		}
	}
}

// TestServerChaosSolverPanic is the acceptance kill-test: panics
// injected into solver workers mid-traversal while 8 clients replay the
// corpus. Exactly the affected queries get structured 500s with code
// "panic"; everything else is byte-identical to the fault-free
// reference; the panic counter moves; all admission slots come back.
func TestServerChaosSolverPanic(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	t.Cleanup(fault.Reset)
	// Cache disabled so every request truly executes (and can be hit).
	s, hs := newTestServer(t, Config{MaxInFlight: 8, QueueDepth: 64, TotalWorkers: 8, CacheEntries: -1})
	loadCorpus(t, hs.URL, "default")
	want := expectedBodies(t) // reference computed BEFORE arming faults
	queries := testutil.Queries()

	if err := fault.SetSpec("solver.group:panic:p=0.15:seed=1"); err != nil {
		t.Fatal(err)
	}

	const clients = 8
	var panicked atomic.Int64
	failures := make(chan string, clients*len(queries))
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for round := 0; round < 2; round++ {
				for _, q := range queries {
					status, body, err := post(hs.URL+"/query", &wire.QueryRequest{SQL: q})
					if err != nil {
						failures <- fmt.Sprintf("client %d: transport error (server died?): %v", c, err)
						return
					}
					switch {
					case status == http.StatusOK && bytes.Equal(body, want[q]):
						// fault-free and byte-exact
					case status == http.StatusInternalServerError:
						var qr wire.QueryResponse
						if json.Unmarshal(body, &qr) != nil || qr.Error == nil || qr.Error.Code != wire.CodePanic {
							failures <- fmt.Sprintf("client %d: 500 without structured panic error: %s", c, trim(body))
							return
						}
						panicked.Add(1)
					default:
						failures <- fmt.Sprintf("client %d: query %q: status %d body %s", c, q, status, trim(body))
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(failures)
	for f := range failures {
		t.Error(f)
	}
	if t.Failed() {
		t.FailNow()
	}
	if panicked.Load() == 0 {
		t.Fatal("no query hit the injected solver panic; the chaos run asserted nothing")
	}
	if got := s.panics.Load(); got == 0 {
		t.Fatal("gsqld_panics_total stayed zero through a panic storm")
	}
	t.Logf("chaos: %d structured panic responses, %d contained panics", panicked.Load(), s.panics.Load())

	// The process kept serving: a clean replay is byte-identical.
	fault.Reset()
	replayClean(t, hs.URL, want)
	checkAdmissionClean(t, s)

	// And the probe still answers.
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after chaos: %v %v", resp, err)
	}
	resp.Body.Close()
}

// TestServerChaosMixedFaults layers four fault kinds at once — stream
// encode errors, cache-insert errors, operator latency and operator
// errors — over buffered AND streamed clients. Every response must be
// correct or a structured error; torn streams must end in an error
// trailer, never a silent truncation.
func TestServerChaosMixedFaults(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	t.Cleanup(fault.Reset)
	// Cache enabled: the cache-insert fault point needs traffic, and
	// cache hits must stay byte-exact under chaos too.
	s, hs := newTestServer(t, Config{MaxInFlight: 8, QueueDepth: 64, TotalWorkers: 8})
	loadCorpus(t, hs.URL, "default")
	want := expectedBodies(t)
	queries := testutil.Queries()

	spec := "wire.stream.encode:error:p=0.3:seed=2;" +
		"server.cache.insert:error:p=0.5:seed=3;" +
		"exec.operator:latency:ms=2:p=0.2:seed=4;" +
		"exec.operator:error:p=0.03:seed=5"
	if err := fault.SetSpec(spec); err != nil {
		t.Fatal(err)
	}

	const clients = 8
	var structured atomic.Int64
	failures := make(chan string, clients*len(queries))
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			stream := c%2 == 1 // half the clients stream
			for _, q := range queries {
				status, body, err := post(hs.URL+"/query",
					&wire.QueryRequest{SQL: q, Stream: stream, BatchRows: 3})
				if err != nil {
					failures <- fmt.Sprintf("client %d: transport error: %v", c, err)
					return
				}
				if stream {
					if status != http.StatusOK {
						// Pre-stream failure (e.g. operator error before the
						// header): must still be structured.
						var qr wire.QueryResponse
						if json.Unmarshal(body, &qr) != nil || qr.Error == nil {
							failures <- fmt.Sprintf("client %d: unstructured stream failure %d: %s", c, status, trim(body))
							return
						}
						structured.Add(1)
						continue
					}
					folded, _, err := wire.FoldStream(bytes.NewReader(body))
					if err != nil {
						failures <- fmt.Sprintf("client %d: stream torn without trailer: %v: %s", c, err, trim(body))
						return
					}
					if folded.Error != nil {
						if folded.Error.Code != wire.CodeInternal {
							failures <- fmt.Sprintf("client %d: trailer code %q", c, folded.Error.Code)
							return
						}
						structured.Add(1)
						continue
					}
					enc, err := folded.Encode()
					if err != nil || !bytes.Equal(enc, want[q]) {
						failures <- fmt.Sprintf("client %d: folded stream differs for %q", c, q)
						return
					}
					continue
				}
				switch {
				case status == http.StatusOK && bytes.Equal(body, want[q]):
				case status == http.StatusInternalServerError:
					var qr wire.QueryResponse
					if json.Unmarshal(body, &qr) != nil || qr.Error == nil || qr.Error.Code != wire.CodeInternal {
						failures <- fmt.Sprintf("client %d: 500 without structured internal error: %s", c, trim(body))
						return
					}
					structured.Add(1)
				default:
					failures <- fmt.Sprintf("client %d: query %q: status %d body %s", c, q, status, trim(body))
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(failures)
	for f := range failures {
		t.Error(f)
	}
	if t.Failed() {
		t.FailNow()
	}
	if structured.Load() == 0 {
		t.Fatal("no injected fault surfaced; the mixed chaos run asserted nothing")
	}
	t.Logf("chaos: %d structured error responses", structured.Load())

	fault.Reset()
	replayClean(t, hs.URL, want)
	checkAdmissionClean(t, s)
}
