package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"graphsql/internal/testutil"
	"graphsql/internal/wire"
)

// TestServerStreamedMissFillsCache: a streamed cache miss must be
// admitted into the result cache like a buffered one, and later
// requests — buffered or streamed — must be served from it
// byte-identically to fresh executions.
func TestServerStreamedMissFillsCache(t *testing.T) {
	s, hs := newTestServer(t, Config{MaxInFlight: 4, TotalWorkers: 4})
	loadCorpus(t, hs.URL, "default")
	q := testutil.Queries()[0]
	want := expectedBodies(t)[q]

	status, stream1, _ := postRaw(t, hs.URL+"/query", &wire.QueryRequest{SQL: q, Stream: true, BatchRows: 3})
	if status != http.StatusOK {
		t.Fatalf("streamed miss: status %d: %s", status, stream1)
	}
	cs := s.Cache().Snapshot()
	if cs.Entries != 1 || cs.Misses == 0 {
		t.Fatalf("streamed miss was not admitted into the cache: %+v", cs)
	}

	// A buffered request is now a hit, and the encoding derived from the
	// stored result matches a fresh buffered execution byte for byte.
	status, body := postJSON(t, hs.URL+"/query", &wire.QueryRequest{SQL: q})
	if status != http.StatusOK {
		t.Fatalf("buffered hit: status %d: %s", status, body)
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("buffered hit derived from a streamed fill differs:\ngot:  %s\nwant: %s", body, want)
	}
	if hits := s.Cache().Snapshot().Hits; hits == 0 {
		t.Fatal("buffered request after a streamed fill did not hit")
	}

	// A second streamed request hits too, with an identical frame
	// sequence (same batch size, same rows, same trailer).
	status, stream2, ctype := postRaw(t, hs.URL+"/query", &wire.QueryRequest{SQL: q, Stream: true, BatchRows: 3})
	if status != http.StatusOK {
		t.Fatalf("streamed hit: status %d: %s", status, stream2)
	}
	if ctype != wire.StreamContentType {
		t.Fatalf("streamed hit content type %q", ctype)
	}
	if !bytes.Equal(stream1, stream2) {
		t.Fatalf("streamed hit differs from the live stream:\nlive:   %s\ncached: %s", stream1, stream2)
	}
	if hits := s.Cache().Snapshot().Hits; hits < 2 {
		t.Fatalf("streamed request after the fill did not hit (hits=%d)", hits)
	}
}

// TestServerStreamedOversizeNotCached: a streamed result past the
// admission budget still streams completely but is never admitted —
// the collector stops buffering instead of holding the whole result.
func TestServerStreamedOversizeNotCached(t *testing.T) {
	s, hs := newTestServer(t, Config{MaxInFlight: 2, TotalWorkers: 2, CacheBytes: 4096})
	var rows strings.Builder
	rows.WriteString("(0)")
	for i := 1; i < 300; i++ {
		fmt.Fprintf(&rows, ", (%d)", i)
	}
	status, body := postJSON(t, hs.URL+"/graphs/default/load", &wire.LoadRequest{
		Script: "CREATE TABLE nums (x BIGINT); INSERT INTO nums VALUES " + rows.String() + ";",
	})
	if status != http.StatusOK {
		t.Fatalf("load: %d: %s", status, body)
	}
	status, stream, _ := postRaw(t, hs.URL+"/query", &wire.QueryRequest{SQL: "SELECT x FROM nums", Stream: true})
	if status != http.StatusOK {
		t.Fatalf("stream: %d", status)
	}
	folded, _, err := wire.FoldStream(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if folded.RowCount != 300 {
		t.Fatalf("streamed %d rows, want 300", folded.RowCount)
	}
	if cs := s.Cache().Snapshot(); cs.Entries != 0 {
		t.Fatalf("oversized streamed result was admitted: %+v", cs)
	}
}

// TestServerCacheKeyUnifiesLiteralsAndParams: the literal form of a
// statement and its parameterized form with the same values are one
// cache entry; a different value stays a distinct entry.
func TestServerCacheKeyUnifiesLiteralsAndParams(t *testing.T) {
	s, hs := newTestServer(t, Config{MaxInFlight: 4, TotalWorkers: 4})
	loadCorpus(t, hs.URL, "default")

	lit := "SELECT COUNT(*) FROM knows WHERE src >= 10 AND dst >= 5"
	par := "SELECT COUNT(*) FROM knows WHERE src >= ? AND dst >= ?"
	status, body1 := postJSON(t, hs.URL+"/query", &wire.QueryRequest{SQL: lit})
	if status != http.StatusOK {
		t.Fatalf("literal form: %d: %s", status, body1)
	}
	status, body2 := postJSON(t, hs.URL+"/query", &wire.QueryRequest{SQL: par, Args: []any{10, 5}})
	if status != http.StatusOK {
		t.Fatalf("param form: %d: %s", status, body2)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("literal and param forms answered differently:\n%s\nvs\n%s", body1, body2)
	}
	cs := s.Cache().Snapshot()
	if cs.Hits != 1 || cs.Entries != 1 {
		t.Fatalf("literal and param forms did not share one entry: %+v", cs)
	}

	// Same shape, different value: distinct key, correct (different)
	// execution — sharing the fingerprint must never share the answer.
	status, body3 := postJSON(t, hs.URL+"/query", &wire.QueryRequest{SQL: par, Args: []any{0, 0}})
	if status != http.StatusOK {
		t.Fatalf("different value: %d: %s", status, body3)
	}
	if bytes.Equal(body3, body1) {
		t.Fatal("different argument value served the other variant's answer")
	}
	if cs := s.Cache().Snapshot(); cs.Entries != 2 || cs.Hits != 1 {
		t.Fatalf("different value did not get its own entry: %+v", cs)
	}
}

// TestServerPlanCacheCounters: literal variants through one session
// share a plan, and the counters surface in /stats (per graph) and
// /metrics (summed).
func TestServerPlanCacheCounters(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxInFlight: 4, TotalWorkers: 4})
	loadCorpus(t, hs.URL, "default")
	// Distinct literals: result-cache misses (different keys), but the
	// second one reuses the first one's fingerprinted plan.
	for i := 1; i <= 3; i++ {
		q := fmt.Sprintf("SELECT COUNT(*) FROM knows WHERE src >= %d", i)
		if status, body := postJSON(t, hs.URL+"/query", &wire.QueryRequest{SQL: q, Session: "m"}); status != http.StatusOK {
			t.Fatalf("variant %d: %d: %s", i, status, body)
		}
	}
	resp, err := http.Get(hs.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	var hits, misses uint64
	for _, g := range stats.Graphs {
		hits += g.PlanCacheHits
		misses += g.PlanCacheMisses
	}
	if hits < 2 || misses == 0 {
		t.Fatalf("plan-cache counters did not move: hits=%d misses=%d (%+v)", hits, misses, stats.Graphs)
	}

	mresp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{"gsqld_plan_cache_hits_total", "gsqld_plan_cache_misses_total"} {
		if !strings.Contains(buf.String(), series) {
			t.Fatalf("/metrics missing %s:\n%s", series, buf.String())
		}
	}
	if strings.Contains(buf.String(), "gsqld_plan_cache_hits_total 0\n") {
		t.Fatal("gsqld_plan_cache_hits_total stayed 0 under literal-variant traffic")
	}
}
