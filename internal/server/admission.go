package server

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrQueueFull is returned when a query arrives while the in-flight
// and queue limits are both saturated.
var ErrQueueFull = errors.New("admission queue full")

// Admission divides the machine's worker budget across concurrent
// queries: at most MaxInFlight queries execute at once, at most
// QueueDepth more wait, and each admitted query is granted a slice of
// the TotalWorkers budget — clamped by PerQueryWorkers — so one batch
// query cannot starve point lookups of either execution slots or
// cores. Grants are returned on Release; waiters are admitted FIFO.
type Admission struct {
	maxInFlight int
	queueDepth  int
	total       int
	perQuery    int

	mu        sync.Mutex
	inFlight  int
	available int // worker units not currently granted
	waiters   []*waiter

	// avgHeldSecs is an EWMA of how long grants are held (admission to
	// Release), the service-time estimate behind RetryAfter; 0 = no
	// observation yet.
	avgHeldSecs float64

	// cumulative counters (guarded by mu; see Snapshot)
	admitted uint64
	queuedC  uint64
	rejected uint64
	canceled uint64
}

type waiter struct {
	want int
	ch   chan int // granted workers, buffered(1)
}

// NewAdmission builds a scheduler. Non-positive arguments fall back to
// safe minimums (1 in-flight, 0 queue, 1 worker).
func NewAdmission(maxInFlight, queueDepth, totalWorkers, perQueryWorkers int) *Admission {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	if totalWorkers < 1 {
		totalWorkers = 1
	}
	if perQueryWorkers < 1 || perQueryWorkers > totalWorkers {
		perQueryWorkers = totalWorkers
	}
	return &Admission{
		maxInFlight: maxInFlight,
		queueDepth:  queueDepth,
		total:       totalWorkers,
		perQuery:    perQueryWorkers,
		available:   totalWorkers,
	}
}

// FairShare is the default per-query worker request: the budget divided
// by the in-flight limit, at least 1.
func (a *Admission) FairShare() int {
	share := a.total / a.maxInFlight
	if share < 1 {
		share = 1
	}
	return share
}

// PerQueryCap exposes the per-query worker ceiling.
func (a *Admission) PerQueryCap() int { return a.perQuery }

// Grant is an admitted query's worker allocation; Release must be
// called exactly once when the query finishes.
type Grant struct {
	a       *Admission
	started time.Time
	Workers int
}

// clampLocked resolves a request into a concrete grant; a.mu held.
// A query always gets at least one worker — admission (the in-flight
// limit) is the backpressure mechanism, not worker exhaustion.
func (a *Admission) clampLocked(want int) int {
	if want < 1 {
		want = a.FairShare()
	}
	if want > a.perQuery {
		want = a.perQuery
	}
	if want > a.available {
		want = a.available
	}
	if want < 1 {
		want = 1
	}
	return want
}

// Acquire admits a query requesting `want` workers (<= 0 asks for the
// fair share). It returns ErrQueueFull when both the in-flight and
// queue limits are saturated, or ctx's error if the caller gives up
// while queued. A canceled request never consumes an in-flight slot or
// a worker grant: an already-dead context is rejected up front, a
// waiter canceled in the queue is unlinked before it can be granted,
// and a grant racing the cancellation is handed straight back.
func (a *Admission) Acquire(ctx context.Context, want int) (*Grant, error) {
	if err := ctx.Err(); err != nil {
		a.mu.Lock()
		a.canceled++
		a.mu.Unlock()
		return nil, err
	}
	a.mu.Lock()
	if a.inFlight < a.maxInFlight {
		a.inFlight++
		w := a.clampLocked(want)
		a.available -= w
		a.admitted++
		a.mu.Unlock()
		return &Grant{a: a, started: time.Now(), Workers: w}, nil
	}
	if len(a.waiters) >= a.queueDepth {
		a.rejected++
		a.mu.Unlock()
		return nil, ErrQueueFull
	}
	wt := &waiter{want: want, ch: make(chan int, 1)}
	a.waiters = append(a.waiters, wt)
	a.queuedC++
	a.mu.Unlock()

	select {
	case w := <-wt.ch:
		return &Grant{a: a, started: time.Now(), Workers: w}, nil
	case <-ctx.Done():
		a.mu.Lock()
		for i, q := range a.waiters {
			if q == wt {
				a.waiters = append(a.waiters[:i], a.waiters[i+1:]...)
				a.canceled++
				a.mu.Unlock()
				return nil, ctx.Err()
			}
		}
		a.canceled++
		a.mu.Unlock()
		// Already granted between Done and the lock: hand the grant
		// back before reporting cancellation.
		w := <-wt.ch
		(&Grant{a: a, started: time.Now(), Workers: w}).Release()
		return nil, ctx.Err()
	}
}

// Release returns the grant's workers and admits the next waiter.
func (g *Grant) Release() {
	a := g.a
	held := time.Since(g.started).Seconds()
	a.mu.Lock()
	defer a.mu.Unlock()
	// Fold the grant's lifetime into the service-time EWMA RetryAfter
	// leans on. α = 0.2: a handful of recent queries dominate, so the
	// hint tracks load shifts within seconds.
	if a.avgHeldSecs == 0 {
		a.avgHeldSecs = held
	} else {
		a.avgHeldSecs = a.avgHeldSecs*0.8 + held*0.2
	}
	a.available += g.Workers
	if len(a.waiters) > 0 {
		next := a.waiters[0]
		a.waiters = a.waiters[1:]
		w := a.clampLocked(next.want)
		a.available -= w
		a.admitted++
		next.ch <- w
		return
	}
	a.inFlight--
}

// RetryAfter estimates how long a rejected client should wait before
// retrying: the backlog ahead of it, in waves of maxInFlight concurrent
// queries, times the recent average time a grant is held. With no
// observations yet it assumes 50ms per wave. Clamped to [1s, 30s] —
// whole seconds are what the Retry-After header can express, and a
// bounded ceiling keeps a latency spike from parking clients forever.
func (a *Admission) RetryAfter() time.Duration {
	a.mu.Lock()
	queued := len(a.waiters)
	avg := a.avgHeldSecs
	a.mu.Unlock()
	if avg == 0 {
		avg = 0.05
	}
	waves := 1 + queued/a.maxInFlight
	d := time.Duration(float64(waves) * avg * float64(time.Second))
	if d < time.Second {
		d = time.Second
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// AdmissionSnapshot is a point-in-time view for /stats.
type AdmissionSnapshot struct {
	InFlight    int    `json:"in_flight"`
	Queued      int    `json:"queued"`
	MaxInFlight int    `json:"max_in_flight"`
	QueueDepth  int    `json:"queue_depth"`
	Workers     int    `json:"workers_total"`
	WorkersFree int    `json:"workers_free"`
	PerQueryCap int    `json:"per_query_workers"`
	Admitted    uint64 `json:"admitted"`
	EverQueued  uint64 `json:"ever_queued"`
	Rejected    uint64 `json:"rejected"`
	Abandoned   uint64 `json:"abandoned"`
}

// Snapshot reads the scheduler state.
func (a *Admission) Snapshot() AdmissionSnapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AdmissionSnapshot{
		InFlight:    a.inFlight,
		Queued:      len(a.waiters),
		MaxInFlight: a.maxInFlight,
		QueueDepth:  a.queueDepth,
		Workers:     a.total,
		WorkersFree: a.available,
		PerQueryCap: a.perQuery,
		Admitted:    a.admitted,
		EverQueued:  a.queuedC,
		Rejected:    a.rejected,
		Abandoned:   a.canceled,
	}
}
