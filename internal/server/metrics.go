package server

// Hand-rolled Prometheus text-format exposition (no dependencies): the
// GET /metrics endpoint renders the server's counters, the admission
// scheduler and result-cache snapshots, and per-endpoint HTTP latency
// histograms in the format any Prometheus-compatible scraper ingests.
// Series are emitted in a fixed order (endpoints sorted) so the output
// is deterministic and greppable by the CI load smoke.

import (
	"fmt"
	"math"
	"net/http"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"graphsql/internal/wire"
)

// latencyBuckets are the histogram upper bounds in seconds, chosen for
// a service whose hits are microseconds and whose cold batched solves
// run for seconds.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// histogram is a fixed-bucket latency histogram. A plain mutex guards
// it: one observation per HTTP request is noise next to the request
// itself.
type histogram struct {
	mu     sync.Mutex
	counts []uint64 // one per bucket plus a final +Inf slot
	sum    float64
	total  uint64
}

func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(latencyBuckets, v)
	h.mu.Lock()
	if h.counts == nil {
		h.counts = make([]uint64, len(latencyBuckets)+1)
	}
	h.counts[i]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// endpointStats aggregates one endpoint's latency histogram and
// per-status response counts.
type endpointStats struct {
	latency   histogram
	mu        sync.Mutex
	responses map[int]uint64
}

// httpMetrics collects per-endpoint request instrumentation.
type httpMetrics struct {
	mu        sync.Mutex
	endpoints map[string]*endpointStats
}

func newHTTPMetrics() *httpMetrics {
	return &httpMetrics{endpoints: make(map[string]*endpointStats)}
}

func (m *httpMetrics) endpoint(name string) *endpointStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	es, ok := m.endpoints[name]
	if !ok {
		es = &endpointStats{responses: make(map[int]uint64)}
		m.endpoints[name] = es
	}
	return es
}

func (m *httpMetrics) observe(endpoint string, status int, seconds float64) {
	es := m.endpoint(endpoint)
	es.latency.observe(seconds)
	es.mu.Lock()
	es.responses[status]++
	es.mu.Unlock()
}

// statusRecorder captures the response status for instrumentation and
// forwards Flush so the streaming path keeps flushing frames through
// the wrapper. wrote tracks whether the response head left the wrapper,
// which is what the panic-recovery middleware checks before attempting
// a structured 500.
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.wrote = true
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(b)
}

func (r *statusRecorder) Flush() {
	r.wrote = true
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with latency and response-code recording
// under the given endpoint label, plus the last-resort panic
// containment boundary: a panic that escapes the handler (one the
// engine boundary and the streaming paths did not already convert) is
// recovered here, counted in gsqld_panics_total, and answered with a
// structured 500 when the response head has not been sent yet — the
// process keeps serving either way. Admission grants are not released
// here: runQuery's own deferred release runs during the unwind, before
// this recover, so a panicking query cannot leak its slot.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		func() {
			defer func() {
				rv := recover()
				if rv == nil {
					return
				}
				s.recordPanic(r.Context(), rv, debug.Stack(), 0, "")
				s.errors.Add(1)
				if !rec.wrote {
					writeJSON(rec, http.StatusInternalServerError,
						wire.FromError(wire.CodePanic, fmt.Errorf("query panicked: %v", rv)))
				}
			}()
			h(rec, r)
		}()
		s.httpMetrics.observe(endpoint, rec.status, time.Since(start).Seconds())
	}
}

// stageMetrics aggregates per-stage query latency histograms
// (gsqld_query_stage_seconds): one series per root-level trace span
// name — cache, admission, plan, execute, encode.
type stageMetrics struct {
	mu     sync.Mutex
	stages map[string]*histogram
}

func newStageMetrics() *stageMetrics {
	return &stageMetrics{stages: make(map[string]*histogram)}
}

func (m *stageMetrics) observe(stage string, seconds float64) {
	m.mu.Lock()
	h, ok := m.stages[stage]
	if !ok {
		h = &histogram{}
		m.stages[stage] = h
	}
	m.mu.Unlock()
	h.observe(seconds)
}

// promWriter accumulates exposition lines with HELP/TYPE headers.
type promWriter struct {
	b strings.Builder
}

func (p *promWriter) header(name, help, typ string) {
	fmt.Fprintf(&p.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p *promWriter) value(name, labels string, v float64) {
	if labels != "" {
		labels = "{" + labels + "}"
	}
	// Integral values render without an exponent so shell scrapers can
	// compare them numerically ('g' would print 1e+06).
	s := strconv.FormatFloat(v, 'g', -1, 64)
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		s = strconv.FormatFloat(v, 'f', -1, 64)
	}
	fmt.Fprintf(&p.b, "%s%s %s\n", name, labels, s)
}

func (p *promWriter) counter(name, help string, v uint64) {
	p.header(name, help, "counter")
	p.value(name, "", float64(v))
}

func (p *promWriter) gauge(name, help string, v float64) {
	p.header(name, help, "gauge")
	p.value(name, "", v)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	adm := s.adm.Snapshot()
	s.sessMu.Lock()
	sessions := len(s.sessions)
	s.sessMu.Unlock()

	p := &promWriter{}
	p.gauge("gsqld_uptime_seconds", "Seconds since the server started.", time.Since(s.started).Seconds())
	p.counter("gsqld_queries_total", "Statements served, including cache hits.", s.queries.Load())
	p.counter("gsqld_query_errors_total", "Statements that returned an error, including cancellations.", s.errors.Load())
	p.counter("gsqld_queries_abandoned_total", "Statements abandoned by cancellation, timeout or client disconnect.", s.canceled.Load())
	p.counter("gsqld_loads_total", "Completed graph (re)loads.", s.loads.Load())
	p.counter("gsqld_panics_total", "Query panics contained by the recovery layers; the process kept serving.", s.panics.Load())
	p.gauge("gsqld_sessions", "Live entries in the session table.", float64(sessions))

	p.gauge("gsqld_queries_in_flight", "Queries currently executing.", float64(adm.InFlight))
	p.gauge("gsqld_queries_queued", "Queries waiting for admission.", float64(adm.Queued))
	p.gauge("gsqld_admission_max_in_flight", "Configured in-flight limit.", float64(adm.MaxInFlight))
	p.gauge("gsqld_admission_queue_depth", "Configured admission queue capacity.", float64(adm.QueueDepth))
	p.counter("gsqld_admission_admitted_total", "Queries granted an execution slot.", adm.Admitted)
	p.counter("gsqld_admission_queued_total", "Queries that waited in the admission queue.", adm.EverQueued)
	p.counter("gsqld_admission_rejected_total", "Queries rejected with queue_full.", adm.Rejected)
	p.counter("gsqld_admission_abandoned_total", "Admission waits abandoned by cancellation.", adm.Abandoned)
	p.gauge("gsqld_workers_total", "Total worker budget divided across queries.", float64(adm.Workers))
	p.gauge("gsqld_workers_free", "Worker units not currently granted.", float64(adm.WorkersFree))
	p.gauge("gsqld_workers_per_query_cap", "Per-query worker grant ceiling.", float64(adm.PerQueryCap))

	if s.cache != nil {
		cs := s.cache.Snapshot()
		p.counter("gsqld_cache_hits_total", "SELECTs served from the result cache.", cs.Hits)
		p.counter("gsqld_cache_misses_total", "Cacheable SELECTs that had to execute.", cs.Misses)
		p.counter("gsqld_cache_evictions_total", "Entries evicted by the LRU budgets.", cs.Evictions)
		p.counter("gsqld_cache_invalidated_entries_total", "Entries purged by reloads and writes.", cs.Invalidated)
		p.gauge("gsqld_cache_entries", "Live result-cache entries.", float64(cs.Entries))
		p.gauge("gsqld_cache_bytes", "Approximate bytes held by the result cache.", float64(cs.Bytes))
	}

	// Plan-cache counters summed over the registry's current databases
	// (a reload resets its graph's contribution — the counters live on
	// the swapped-out DB). Hits mean literal variants and prepared
	// replays reused a parsed+bound plan instead of re-planning.
	var planHits, planMisses uint64
	for _, gi := range s.reg.Info() {
		planHits += gi.PlanCacheHits
		planMisses += gi.PlanCacheMisses
	}
	p.counter("gsqld_plan_cache_hits_total", "Statements that reused a cached session plan (fingerprint-normalized).", planHits)
	p.counter("gsqld_plan_cache_misses_total", "Statements that parsed, bound and planned from scratch.", planMisses)

	// Per-stage query latency, stages sorted for determinism. The
	// stages are the root-level trace spans every query records; a
	// stage absent so far (e.g. no cache configured) simply has no
	// series yet.
	s.stageHist.mu.Lock()
	stageNames := make([]string, 0, len(s.stageHist.stages))
	for name := range s.stageHist.stages {
		stageNames = append(stageNames, name)
	}
	s.stageHist.mu.Unlock()
	sort.Strings(stageNames)
	if len(stageNames) > 0 {
		p.header("gsqld_query_stage_seconds", "Per-stage query latency (cache, admission, plan, execute, encode).", "histogram")
		for _, name := range stageNames {
			s.stageHist.mu.Lock()
			h := s.stageHist.stages[name]
			s.stageHist.mu.Unlock()
			h.mu.Lock()
			counts := append([]uint64(nil), h.counts...)
			sum, total := h.sum, h.total
			h.mu.Unlock()
			if counts == nil {
				counts = make([]uint64, len(latencyBuckets)+1)
			}
			cum := uint64(0)
			for i, ub := range latencyBuckets {
				cum += counts[i]
				p.value("gsqld_query_stage_seconds_bucket",
					fmt.Sprintf(`stage=%q,le="%s"`, name, strconv.FormatFloat(ub, 'g', -1, 64)), float64(cum))
			}
			cum += counts[len(latencyBuckets)]
			p.value("gsqld_query_stage_seconds_bucket",
				fmt.Sprintf(`stage=%q,le="+Inf"`, name), float64(cum))
			p.value("gsqld_query_stage_seconds_sum", fmt.Sprintf(`stage=%q`, name), sum)
			p.value("gsqld_query_stage_seconds_count", fmt.Sprintf(`stage=%q`, name), float64(total))
		}
	}

	// Per-endpoint HTTP series, endpoints sorted for determinism.
	s.httpMetrics.mu.Lock()
	names := make([]string, 0, len(s.httpMetrics.endpoints))
	for name := range s.httpMetrics.endpoints {
		names = append(names, name)
	}
	s.httpMetrics.mu.Unlock()
	sort.Strings(names)

	p.header("gsqld_http_responses_total", "HTTP responses by endpoint and status code.", "counter")
	for _, name := range names {
		es := s.httpMetrics.endpoint(name)
		es.mu.Lock()
		codes := make([]int, 0, len(es.responses))
		for c := range es.responses {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			p.value("gsqld_http_responses_total",
				fmt.Sprintf(`endpoint=%q,code="%d"`, name, c), float64(es.responses[c]))
		}
		es.mu.Unlock()
	}

	p.header("gsqld_http_request_duration_seconds", "HTTP request latency by endpoint.", "histogram")
	for _, name := range names {
		es := s.httpMetrics.endpoint(name)
		es.latency.mu.Lock()
		counts := append([]uint64(nil), es.latency.counts...)
		sum, total := es.latency.sum, es.latency.total
		es.latency.mu.Unlock()
		if counts == nil {
			counts = make([]uint64, len(latencyBuckets)+1)
		}
		label := name
		cum := uint64(0)
		for i, ub := range latencyBuckets {
			cum += counts[i]
			p.value("gsqld_http_request_duration_seconds_bucket",
				fmt.Sprintf(`endpoint=%q,le="%s"`, label, strconv.FormatFloat(ub, 'g', -1, 64)), float64(cum))
		}
		cum += counts[len(latencyBuckets)]
		p.value("gsqld_http_request_duration_seconds_bucket",
			fmt.Sprintf(`endpoint=%q,le="+Inf"`, label), float64(cum))
		p.value("gsqld_http_request_duration_seconds_sum", fmt.Sprintf(`endpoint=%q`, label), sum)
		p.value("gsqld_http_request_duration_seconds_count", fmt.Sprintf(`endpoint=%q`, label), float64(total))
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, p.b.String())
}
