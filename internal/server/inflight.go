package server

// In-flight query inspection: every query entering admission registers
// itself here (before Acquire, so queued queries are visible too) and
// deregisters when its request finishes. GET /queries renders the
// table — what is running right now, what stage it is in, how long it
// has been going, and how many workers it was granted — which is the
// first thing an operator wants when the server is busy and dashboards
// only show aggregates.

import (
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"graphsql/internal/trace"
)

// inflightQuery is one live entry. workers is atomic because the grant
// arrives after registration (a queued query has no workers yet).
type inflightQuery struct {
	id      uint64
	graph   string
	fp      string
	started time.Time
	tr      *trace.Trace
	workers atomic.Int32
}

// inflightTable is the registry behind GET /queries.
type inflightTable struct {
	mu sync.Mutex
	m  map[uint64]*inflightQuery
}

func newInflightTable() *inflightTable {
	return &inflightTable{m: make(map[uint64]*inflightQuery)}
}

func (t *inflightTable) add(id uint64, graph, fp string, tr *trace.Trace) *inflightQuery {
	q := &inflightQuery{id: id, graph: graph, fp: fp, started: time.Now(), tr: tr}
	t.mu.Lock()
	t.m[id] = q
	t.mu.Unlock()
	return q
}

func (t *inflightTable) remove(id uint64) {
	t.mu.Lock()
	delete(t.m, id)
	t.mu.Unlock()
}

func (t *inflightTable) snapshot() []*inflightQuery {
	t.mu.Lock()
	out := make([]*inflightQuery, 0, len(t.m))
	for _, q := range t.m {
		out = append(out, q)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// InFlightQuery is one entry of the GET /queries payload.
type InFlightQuery struct {
	ID          uint64 `json:"id"`
	Graph       string `json:"graph"`
	Fingerprint string `json:"fingerprint"`
	// Stage is what the query is doing right now: "admission" while
	// queued, then the live stage span ("plan", "execute", "encode").
	Stage     string  `json:"stage,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms"`
	// Workers is the admission grant; 0 while still queued.
	Workers int `json:"workers,omitempty"`
}

// QueriesResponse is the GET /queries payload.
type QueriesResponse struct {
	Queries []InFlightQuery `json:"queries"`
}

func (s *Server) handleQueries(w http.ResponseWriter, _ *http.Request) {
	live := s.inflight.snapshot()
	resp := &QueriesResponse{Queries: make([]InFlightQuery, len(live))}
	for i, q := range live {
		resp.Queries[i] = InFlightQuery{
			ID:          q.id,
			Graph:       q.graph,
			Fingerprint: q.fp,
			Stage:       q.tr.CurrentStage(),
			ElapsedMS:   time.Since(q.started).Seconds() * 1e3,
			Workers:     int(q.workers.Load()),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
