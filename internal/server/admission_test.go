package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestAdmissionLimitsAndQueue(t *testing.T) {
	a := NewAdmission(2, 1, 8, 4)

	g1, err := a.Acquire(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if g1.Workers != 4 { // fair share = 8/2, within the per-query cap
		t.Fatalf("fair share grant = %d, want 4", g1.Workers)
	}
	g2, err := a.Acquire(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Workers != 4 { // clamped by both per-query cap and availability
		t.Fatalf("capped grant = %d, want 4", g2.Workers)
	}

	// Third query queues (depth 1); fourth is rejected immediately.
	admitted := make(chan *Grant, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		g, err := a.Acquire(context.Background(), 2)
		if err != nil {
			t.Error(err)
			return
		}
		admitted <- g
	}()
	waitFor(t, func() bool { return a.Snapshot().Queued == 1 })
	if _, err := a.Acquire(context.Background(), 1); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("expected ErrQueueFull, got %v", err)
	}

	// Releasing one grant admits the waiter FIFO with its clamp.
	g1.Release()
	wg.Wait()
	g3 := <-admitted
	if g3.Workers != 2 {
		t.Fatalf("waiter grant = %d, want 2", g3.Workers)
	}
	snap := a.Snapshot()
	if snap.InFlight != 2 || snap.Queued != 0 || snap.Rejected != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	g2.Release()
	g3.Release()
	snap = a.Snapshot()
	if snap.InFlight != 0 || snap.WorkersFree != 8 {
		t.Fatalf("after release: %+v", snap)
	}
}

func TestAdmissionQueuedCancel(t *testing.T) {
	a := NewAdmission(1, 4, 2, 2)
	g, err := a.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := a.Acquire(ctx, 1)
		done <- err
	}()
	waitFor(t, func() bool { return a.Snapshot().Queued == 1 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
	snap := a.Snapshot()
	if snap.Queued != 0 || snap.Abandoned != 1 {
		t.Fatalf("snapshot after cancel: %+v", snap)
	}
	// The held slot is unaffected; release restores full capacity.
	g.Release()
	if snap := a.Snapshot(); snap.InFlight != 0 || snap.WorkersFree != 2 {
		t.Fatalf("after release: %+v", snap)
	}
}

func TestAdmissionWorkerStarvationAvoided(t *testing.T) {
	// A batch query grabbing the whole budget still leaves point
	// lookups admitted with >= 1 worker.
	a := NewAdmission(4, 0, 4, 4)
	big, err := a.Acquire(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if big.Workers != 4 {
		t.Fatalf("big grant = %d", big.Workers)
	}
	small, err := a.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if small.Workers < 1 {
		t.Fatalf("point lookup starved: %d workers", small.Workers)
	}
	big.Release()
	small.Release()
}

// waitFor polls cond briefly; admission hand-off is in-memory so this
// converges in microseconds.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}
