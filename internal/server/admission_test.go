package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestAdmissionLimitsAndQueue(t *testing.T) {
	a := NewAdmission(2, 1, 8, 4)

	g1, err := a.Acquire(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if g1.Workers != 4 { // fair share = 8/2, within the per-query cap
		t.Fatalf("fair share grant = %d, want 4", g1.Workers)
	}
	g2, err := a.Acquire(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Workers != 4 { // clamped by both per-query cap and availability
		t.Fatalf("capped grant = %d, want 4", g2.Workers)
	}

	// Third query queues (depth 1); fourth is rejected immediately.
	admitted := make(chan *Grant, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		g, err := a.Acquire(context.Background(), 2)
		if err != nil {
			t.Error(err)
			return
		}
		admitted <- g
	}()
	waitFor(t, func() bool { return a.Snapshot().Queued == 1 })
	if _, err := a.Acquire(context.Background(), 1); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("expected ErrQueueFull, got %v", err)
	}

	// Releasing one grant admits the waiter FIFO with its clamp.
	g1.Release()
	wg.Wait()
	g3 := <-admitted
	if g3.Workers != 2 {
		t.Fatalf("waiter grant = %d, want 2", g3.Workers)
	}
	snap := a.Snapshot()
	if snap.InFlight != 2 || snap.Queued != 0 || snap.Rejected != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	g2.Release()
	g3.Release()
	snap = a.Snapshot()
	if snap.InFlight != 0 || snap.WorkersFree != 8 {
		t.Fatalf("after release: %+v", snap)
	}
}

func TestAdmissionQueuedCancel(t *testing.T) {
	a := NewAdmission(1, 4, 2, 2)
	g, err := a.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := a.Acquire(ctx, 1)
		done <- err
	}()
	waitFor(t, func() bool { return a.Snapshot().Queued == 1 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
	snap := a.Snapshot()
	if snap.Queued != 0 || snap.Abandoned != 1 {
		t.Fatalf("snapshot after cancel: %+v", snap)
	}
	// The held slot is unaffected; release restores full capacity.
	g.Release()
	if snap := a.Snapshot(); snap.InFlight != 0 || snap.WorkersFree != 2 {
		t.Fatalf("after release: %+v", snap)
	}
}

// TestAdmissionQueuedCancelSlotAccounting is the regression test for
// cancellation while waiting in the FIFO queue: with the queue full, a
// canceled waiter must leave without ever consuming a worker grant or
// an in-flight slot — the remaining waiters keep their FIFO positions
// and the books balance exactly once everything drains.
func TestAdmissionQueuedCancelSlotAccounting(t *testing.T) {
	a := NewAdmission(1, 3, 4, 4)
	holder, err := a.Acquire(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if snap := a.Snapshot(); snap.WorkersFree != 0 {
		t.Fatalf("holder did not take the budget: %+v", snap)
	}

	// Fill the queue: three waiters, the middle one cancelable.
	type result struct {
		id    int
		grant *Grant
		err   error
	}
	results := make(chan result, 3)
	ctxs := make([]context.Context, 3)
	cancels := make([]context.CancelFunc, 3)
	for i := range ctxs {
		ctxs[i], cancels[i] = context.WithCancel(context.Background())
		defer cancels[i]()
	}
	for i := 0; i < 3; i++ {
		// Enqueue one at a time so FIFO positions are deterministic.
		go func(i int) {
			g, err := a.Acquire(ctxs[i], 1)
			results <- result{i, g, err}
		}(i)
		waitFor(t, func() bool { return a.Snapshot().Queued == i+1 })
	}
	if _, err := a.Acquire(context.Background(), 1); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("queue should be full, got %v", err)
	}

	// Cancel the middle waiter: it must leave the queue with ctx's
	// error, consuming nothing.
	cancels[1]()
	r := <-results
	if r.id != 1 || !errors.Is(r.err, context.Canceled) || r.grant != nil {
		t.Fatalf("canceled waiter: %+v", r)
	}
	snap := a.Snapshot()
	if snap.Queued != 2 || snap.Abandoned != 1 || snap.InFlight != 1 || snap.WorkersFree != 0 {
		t.Fatalf("after queued cancel: %+v", snap)
	}

	// Drain FIFO: waiter 0 then waiter 2, each inheriting the slot.
	holder.Release()
	for _, wantID := range []int{0, 2} {
		r := <-results
		if r.err != nil || r.id != wantID {
			t.Fatalf("expected waiter %d admitted next, got %+v", wantID, r)
		}
		if snap := a.Snapshot(); snap.InFlight != 1 {
			t.Fatalf("slot accounting after admit: %+v", snap)
		}
		r.grant.Release()
	}
	if snap := a.Snapshot(); snap.InFlight != 0 || snap.Queued != 0 || snap.WorkersFree != 4 {
		t.Fatalf("final accounting: %+v", snap)
	}
}

// TestAdmissionCancelGrantRace drives the cancel-vs-grant race: a
// waiter whose context dies concurrently with the holder's Release must
// either get the grant or hand it straight back — never leak the slot.
func TestAdmissionCancelGrantRace(t *testing.T) {
	for trial := 0; trial < 200; trial++ {
		a := NewAdmission(1, 1, 2, 2)
		holder, err := a.Acquire(context.Background(), 2)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		var g *Grant
		go func() {
			defer close(done)
			g, _ = a.Acquire(ctx, 1)
		}()
		waitFor(t, func() bool { return a.Snapshot().Queued == 1 })
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); cancel() }()
		go func() { defer wg.Done(); holder.Release() }()
		wg.Wait()
		<-done
		if g != nil {
			g.Release()
		}
		if snap := a.Snapshot(); snap.InFlight != 0 || snap.Queued != 0 || snap.WorkersFree != 2 {
			t.Fatalf("trial %d leaked a slot: %+v", trial, snap)
		}
	}
}

// TestAdmissionDeadContextRejected checks a request whose context is
// already canceled never consumes anything, even with capacity free.
func TestAdmissionDeadContextRejected(t *testing.T) {
	a := NewAdmission(2, 2, 4, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.Acquire(ctx, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
	if snap := a.Snapshot(); snap.InFlight != 0 || snap.WorkersFree != 4 || snap.Abandoned != 1 {
		t.Fatalf("dead-context request consumed capacity: %+v", snap)
	}
}

func TestAdmissionWorkerStarvationAvoided(t *testing.T) {
	// A batch query grabbing the whole budget still leaves point
	// lookups admitted with >= 1 worker.
	a := NewAdmission(4, 0, 4, 4)
	big, err := a.Acquire(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if big.Workers != 4 {
		t.Fatalf("big grant = %d", big.Workers)
	}
	small, err := a.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if small.Workers < 1 {
		t.Fatalf("point lookup starved: %d workers", small.Workers)
	}
	big.Release()
	small.Release()
}

// waitFor polls cond briefly; admission hand-off is in-memory so this
// converges in microseconds.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}
