// Package server turns the embedded graphsql engine into a
// long-running, concurrency-safe query service: an HTTP/JSON API over
// a named multi-graph registry with copy-on-swap reloads, per-session
// state (SET settings, a prepared parse+plan cache, and wire-level
// prepared statements), an admission-control scheduler that divides the
// machine's worker budget across concurrent queries, a result-set cache
// that serves repeated SELECTs without touching the engine, chunked
// streaming for large results, and Prometheus-format metrics.
//
// Endpoints:
//
//	POST /query               run one statement (wire.QueryRequest);
//	                          "stream":true selects the chunked NDJSON
//	                          encoding of wire/stream.go
//	POST /prepare             register a statement in a session
//	                          (wire.PrepareRequest)
//	POST /execute             run a registered statement by id
//	                          (wire.ExecuteRequest)
//	POST /graphs/{name}/load  build+swap a named graph (wire.LoadRequest)
//	GET  /healthz             liveness probe
//	GET  /stats               counters, admission, cache and registry
//	                          state as JSON
//	GET  /queries             in-flight queries: id, fingerprint, live
//	                          stage, elapsed, granted workers
//	GET  /metrics             Prometheus text-format exposition
//
// Observability: "trace":true on /query or /execute returns the span
// tree of internal/trace in the response (buffered body or stream
// trailer); every query emits a structured slog line with per-stage
// durations (Config.SlowQueryMillis selects the WARN threshold); and
// /metrics carries per-stage latency histograms
// (gsqld_query_stage_seconds).
//
// Concurrency model: SELECTs over one graph run concurrently (the
// facade's read lock), writers serialize, and a reload never blocks
// readers — it builds the replacement database off to the side and
// swaps an atomic pointer. Admission bounds the blast radius of
// expensive queries: at most MaxInFlight queries run at once with a
// per-query worker cap, QueueDepth more wait FIFO, and anything beyond
// that is rejected immediately with queue_full so overload degrades
// predictably instead of collapsing.
//
// Result cache: SELECT results are cached keyed by (graph, registry
// generation, engine data version, statement, bound args) — see
// ResultCache — and a hit is served from memory without consuming an
// admission slot. Reloads and write statements can never leak a stale
// entry to a later reader: both bump a component of the key.
//
// Cancellation: a client disconnect (or timeout) cancels the request
// context, which aborts the query at the nearest operator boundary,
// source-group boundary, in-traversal poll, or graph-construction chunk
// boundary — a disconnected client frees its worker grant within
// milliseconds rather than pinning it until the query finishes. A
// request canceled while waiting in the admission queue leaves the
// queue without ever consuming an in-flight slot or a worker grant; a
// streaming response canceled mid-flight ends with an error trailer
// frame.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"graphsql"
	"graphsql/internal/fault"
	"graphsql/internal/sql/fingerprint"
	"graphsql/internal/trace"
	"graphsql/internal/wire"
)

// Config tunes a Server. Zero values pick sensible defaults.
type Config struct {
	// DefaultGraph names the graph served when requests omit one;
	// defaults to "default". The graph is created empty at startup.
	DefaultGraph string
	// Parallelism is the engine worker budget of loaded graphs
	// (0 = one worker per CPU).
	Parallelism int
	// MaxInFlight bounds concurrently executing queries; defaults to
	// GOMAXPROCS.
	MaxInFlight int
	// QueueDepth bounds queries waiting for admission: 0 defaults to
	// 4 × MaxInFlight, negative disables queueing (immediate rejection
	// once MaxInFlight is reached).
	QueueDepth int
	// TotalWorkers is the worker budget admission divides across
	// queries; defaults to GOMAXPROCS.
	TotalWorkers int
	// PerQueryWorkers caps one query's grant; defaults to TotalWorkers.
	PerQueryWorkers int
	// QueryTimeout bounds each query's execution; 0 means no limit.
	QueryTimeout time.Duration
	// QueueWait bounds how long a query may wait in the admission queue
	// before the server gives up on it with queue_timeout (503 +
	// Retry-After). Distinct from QueryTimeout, which bounds execution:
	// under overload the queue-wait deadline sheds load that has not
	// consumed anything yet — and such a rejection is always safe to
	// retry. 0 disables the deadline (queued queries wait until the
	// client gives up).
	QueueWait time.Duration
	// MaxSessions bounds the session table; the least-recently-used
	// session is evicted beyond it. Defaults to 1024.
	MaxSessions int
	// CacheEntries bounds the result cache's entry count: 0 defaults to
	// 512, negative disables the cache entirely.
	CacheEntries int
	// CacheBytes bounds the result cache's (approximate) memory;
	// 0 defaults to 64 MiB.
	CacheBytes int64
	// Logger receives the structured query log and panic reports;
	// defaults to slog.Default(). Every completed query logs at DEBUG
	// ("query"); queries at or over the slow threshold log at WARN
	// ("slow query").
	Logger *slog.Logger
	// SlowQueryMillis is the slow-query log threshold in milliseconds:
	// positive logs queries at/over it at WARN, zero disables the
	// slow-query log, negative logs every query (smoke tests).
	SlowQueryMillis int
}

func (c *Config) defaults() {
	if c.DefaultGraph == "" {
		c.DefaultGraph = "default"
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	switch {
	case c.QueueDepth == 0:
		c.QueueDepth = 4 * c.MaxInFlight
	case c.QueueDepth < 0:
		c.QueueDepth = 0
	}
	if c.TotalWorkers <= 0 {
		c.TotalWorkers = runtime.GOMAXPROCS(0)
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 512
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 64 << 20
	}
}

// Server is the HTTP query service. Create with New, serve its
// Handler.
type Server struct {
	cfg         Config
	reg         *Registry
	adm         *Admission
	cache       *ResultCache // nil when disabled
	httpMetrics *httpMetrics
	stageHist   *stageMetrics
	inflight    *inflightTable
	logger      *slog.Logger
	mux         *http.ServeMux

	// queryID numbers queries for the query log and GET /queries.
	queryID atomic.Uint64

	sessMu   sync.Mutex
	sessions map[string]*serverSession
	sessTick uint64 // LRU clock

	// counters
	queries  atomic.Uint64
	errors   atomic.Uint64
	canceled atomic.Uint64
	loads    atomic.Uint64
	// panics counts contained query panics (gsqld_panics_total);
	// lastPanic is the UnixNano of the most recent one (0 = never),
	// which /healthz folds into its degraded signal.
	panics    atomic.Uint64
	lastPanic atomic.Int64
	started   time.Time
}

// serverSession is one client session: per-graph facade sessions so
// SET settings and prepared plans survive across requests, plus the
// statements registered via POST /prepare. A reload swaps the graph's
// database; the stale binding is detected by pointer comparison and
// replaced (settings reset with the new generation).
type serverSession struct {
	mu       sync.Mutex
	byGraph  map[string]*boundSession
	stmts    map[string]preparedStmt
	nextStmt int
	lastUse  uint64
}

type boundSession struct {
	db   *graphsql.DB
	sess *graphsql.Session
}

// preparedStmt is a wire-level prepared statement: the id resolves to
// the statement text, which the facade session's plan cache then maps
// to a parsed+bound plan (so /execute skips parse, bind and rewrite).
type preparedStmt struct {
	graph string
	sql   string
}

// maxSessionStmts bounds one session's statement registry; past it the
// registry is dropped wholesale — mirroring the facade plan cache —
// and stale ids answer /execute with unknown-statement, prompting the
// client to re-prepare. A client replaying a bounded statement set
// never hits this; it exists so one session cannot grow server memory
// without bound via /prepare.
const maxSessionStmts = 256

// registerStmt assigns the next statement id of the session.
func (ss *serverSession) registerStmt(graph, sql string) string {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.stmts == nil || len(ss.stmts) >= maxSessionStmts {
		ss.stmts = make(map[string]preparedStmt)
	}
	ss.nextStmt++
	id := "stmt-" + strconv.Itoa(ss.nextStmt)
	ss.stmts[id] = preparedStmt{graph: graph, sql: sql}
	return id
}

// stmt resolves a registered statement id.
func (ss *serverSession) stmt(id string) (preparedStmt, bool) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	st, ok := ss.stmts[id]
	return st, ok
}

// New builds a server and registers its default (empty) graph.
func New(cfg Config) (*Server, error) {
	cfg.defaults()
	lg := cfg.Logger
	if lg == nil {
		lg = slog.Default()
	}
	s := &Server{
		cfg:         cfg,
		reg:         NewRegistry(cfg.Parallelism),
		adm:         NewAdmission(cfg.MaxInFlight, cfg.QueueDepth, cfg.TotalWorkers, cfg.PerQueryWorkers),
		httpMetrics: newHTTPMetrics(),
		stageHist:   newStageMetrics(),
		inflight:    newInflightTable(),
		logger:      lg,
		sessions:    make(map[string]*serverSession),
		started:     time.Now(),
	}
	if cfg.CacheEntries > 0 {
		s.cache = NewResultCache(cfg.CacheEntries, cfg.CacheBytes)
	}
	if _, _, err := s.reg.Load(cfg.DefaultGraph, "", nil); err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	mux.HandleFunc("GET /stats", s.instrument("/stats", s.handleStats))
	mux.HandleFunc("GET /metrics", s.instrument("/metrics", s.handleMetrics))
	mux.HandleFunc("GET /queries", s.instrument("/queries", s.handleQueries))
	mux.HandleFunc("POST /query", s.instrument("/query", s.handleQuery))
	mux.HandleFunc("POST /prepare", s.instrument("/prepare", s.handlePrepare))
	mux.HandleFunc("POST /execute", s.instrument("/execute", s.handleExecute))
	mux.HandleFunc("POST /graphs/{name}/load", s.instrument("/graphs/load", s.handleLoad))
	s.mux = mux
	return s, nil
}

// Registry exposes the graph registry (startup preloading, tests).
func (s *Server) Registry() *Registry { return s.reg }

// Admission exposes the scheduler (tests, instrumentation).
func (s *Server) Admission() *Admission { return s.adm }

// Cache exposes the result cache; nil when disabled.
func (s *Server) Cache() *ResultCache { return s.cache }

// Handler returns the root http.Handler.
func (s *Server) Handler() http.Handler { return s.mux }

// HealthResponse is the GET /healthz payload. The probe always answers
// HTTP 200 while the process serves (liveness); Status degrades to
// "degraded" when the admission queue is at least half full or a panic
// was contained within the last minute, so dashboards and load
// balancers can drain a struggling instance before it starts shedding.
type HealthResponse struct {
	Status          string `json:"status"` // "ok" | "degraded"
	InFlight        int    `json:"in_flight"`
	Queued          int    `json:"queued"`
	QueueDepth      int    `json:"queue_depth"`
	PanicsRecovered uint64 `json:"panics_recovered"`
	// SecondsSinceLastPanic is omitted until the first contained panic.
	SecondsSinceLastPanic float64 `json:"seconds_since_last_panic,omitempty"`
}

// degradedPanicWindow is how long one contained panic keeps /healthz
// reporting degraded.
const degradedPanicWindow = time.Minute

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	adm := s.adm.Snapshot()
	resp := &HealthResponse{
		Status:          "ok",
		InFlight:        adm.InFlight,
		Queued:          adm.Queued,
		QueueDepth:      adm.QueueDepth,
		PanicsRecovered: s.panics.Load(),
	}
	if last := s.lastPanic.Load(); last != 0 {
		since := time.Since(time.Unix(0, last))
		resp.SecondsSinceLastPanic = since.Seconds()
		if since < degradedPanicWindow {
			resp.Status = "degraded"
		}
	}
	if adm.QueueDepth > 0 && 2*adm.Queued >= adm.QueueDepth {
		resp.Status = "degraded"
	}
	writeJSON(w, http.StatusOK, resp)
}

// recordPanic counts one contained panic and logs it with the
// panicking goroutine's stack — the only place the stack goes; wire
// responses carry just the panic value. qid/fp tag the query when the
// panic was caught inside a query path (the last-resort middleware
// recover passes zero values: it no longer knows which query it was).
// ctx is the request's context, threaded through for handler-aware
// loggers; it may already be canceled by the time a panic is recorded.
func (s *Server) recordPanic(ctx context.Context, v any, stack []byte, qid uint64, fp string) {
	s.panics.Add(1)
	s.lastPanic.Store(time.Now().UnixNano())
	s.logger.LogAttrs(ctx, slog.LevelError, "contained query panic",
		slog.Uint64("query_id", qid),
		slog.String("fingerprint", fp),
		slog.Any("panic", v),
		slog.String("stack", string(stack)))
}

// session resolves (or creates) the named session, updating its LRU
// stamp and evicting the oldest session beyond the cap.
func (s *Server) session(id string) *serverSession {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	s.sessTick++
	sess, ok := s.sessions[id]
	if !ok {
		if len(s.sessions) >= s.cfg.MaxSessions {
			var oldestID string
			var oldest uint64 = ^uint64(0)
			for k, v := range s.sessions {
				if v.lastUse < oldest {
					oldest, oldestID = v.lastUse, k
				}
			}
			delete(s.sessions, oldestID)
		}
		sess = &serverSession{byGraph: make(map[string]*boundSession)}
		s.sessions[id] = sess
	}
	sess.lastUse = s.sessTick
	return sess
}

// bind resolves the facade session of (session, graph), re-binding when
// the graph's database was swapped by a reload.
func (ss *serverSession) bind(graph string, db *graphsql.DB) *graphsql.Session {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	b := ss.byGraph[graph]
	if b == nil || b.db != db {
		b = &boundSession{db: db, sess: db.Session()}
		ss.byGraph[graph] = b
	}
	return b.sess
}

// writeJSON marshals a wire payload with the proper status code.
func writeJSON(w http.ResponseWriter, status int, payload any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	data, err := json.Marshal(payload)
	if err != nil {
		http.Error(w, `{"error":{"code":"internal","message":"encoding failed"}}`, http.StatusInternalServerError)
		return
	}
	w.Write(data)
}

// errorStatus maps wire error codes onto HTTP statuses.
func errorStatus(code string) int {
	switch code {
	case wire.CodeQueueFull, wire.CodeQueueTimeout:
		return http.StatusServiceUnavailable
	case wire.CodeUnknownGraph:
		return http.StatusNotFound
	case wire.CodeCanceled:
		return 499 // client closed request (nginx convention)
	case wire.CodeTimeout:
		return http.StatusGatewayTimeout
	case wire.CodeInvalidRequest:
		return http.StatusBadRequest
	case wire.CodeInternal, wire.CodePanic:
		return http.StatusInternalServerError
	default:
		return http.StatusUnprocessableEntity
	}
}

func (s *Server) failQuery(w http.ResponseWriter, code string, err error) {
	s.errors.Add(1)
	if code == wire.CodeCanceled || code == wire.CodeTimeout {
		s.canceled.Add(1)
	}
	writeJSON(w, errorStatus(code), wire.FromError(code, err))
}

// failExec classifies an execution error: contained panic beats
// timeout beats cancellation beats plain SQL error. (A panic racing a
// timeout reports the panic — the more actionable signal.) An injected
// fault reports internal, not sql_error: the statement was fine, the
// server hiccuped.
// It returns the wire code it chose, which the query log records as
// the outcome.
func (s *Server) failExec(w http.ResponseWriter, ctx context.Context, timedOut func() bool, err error, qid uint64, fp string) string {
	var qp *graphsql.QueryPanicError
	var inj *fault.InjectedError
	code := wire.CodeSQL
	switch {
	case errors.As(err, &qp):
		s.recordPanic(ctx, qp.Value, qp.Stack, qid, fp)
		code = wire.CodePanic
	case errors.As(err, &inj):
		code = wire.CodeInternal
	case timedOut():
		code = wire.CodeTimeout
	case ctx.Err() != nil:
		code = wire.CodeCanceled
	}
	s.failQuery(w, code, err)
	return code
}

// retryAfterHeader stamps the Retry-After hint on a load-shedding
// response (queue_full / queue_timeout), in the whole seconds the
// header grammar requires, rounded up so clients never return early.
func (s *Server) retryAfterHeader(w http.ResponseWriter) {
	secs := int(math.Ceil(s.adm.RetryAfter().Seconds()))
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

// querySpec is one statement execution, shared by POST /query and
// POST /execute.
type querySpec struct {
	graph         string
	session       string
	sql           string
	args          []any
	workers       int
	timeoutMillis int
	stream        bool
	batchRows     int
	trace         bool
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		s.failQuery(w, wire.CodeInvalidRequest, err)
		return
	}
	req, err := wire.DecodeRequest(body)
	if err != nil {
		s.failQuery(w, wire.CodeInvalidRequest, err)
		return
	}
	if req.SQL == "" {
		s.failQuery(w, wire.CodeInvalidRequest, errors.New("missing sql"))
		return
	}
	s.runQuery(w, r, querySpec{
		graph: req.Graph, session: req.Session, sql: req.SQL, args: req.Args,
		workers: req.Workers, timeoutMillis: req.TimeoutMillis,
		stream: req.Stream, batchRows: req.BatchRows, trace: req.Trace,
	})
}

// runQuery executes one statement: result-cache lookup, admission,
// execution through the session facade, and the buffered or streamed
// response encoding.
func (s *Server) runQuery(w http.ResponseWriter, r *http.Request, q querySpec) {
	graphName := q.graph
	if graphName == "" {
		graphName = s.cfg.DefaultGraph
	}
	db, gen, ok := s.reg.Resolve(graphName)
	if !ok {
		s.failQuery(w, wire.CodeUnknownGraph, fmt.Errorf("graph %q is not loaded", graphName))
		return
	}

	batch := q.batchRows
	if batch <= 0 {
		batch = wire.DefaultBatchRows
	}
	if batch > wire.MaxBatchRows {
		batch = wire.MaxBatchRows
	}

	// Resolve the server session up front (not lazily at execution):
	// a client whose requests keep hitting the result cache is still
	// active, and must keep its LRU stamp fresh or eviction would
	// retire its prepared statements and SET settings mid-use.
	var ssess *serverSession
	if q.session != "" {
		ssess = s.session(q.session)
	}

	// Every query records a trace: its root-level spans (cache,
	// admission, plan, execute, encode) feed the per-stage latency
	// histograms and the query log, its open span names GET /queries'
	// "stage" column, and — when the request set "trace": true — its
	// tree rides back in the response. The fingerprint identifies the
	// statement shape in the log, the in-flight listing and the result
	// cache key without quoting literal values.
	qid := s.queryID.Add(1)
	tr := trace.New()
	norm := fingerprint.Normalize(q.sql)
	fp := q.sql
	if norm.Changed() {
		fp = norm.SQL
	}
	start := time.Now()
	outcome := "ok"
	rowsOut := -1
	defer func() {
		s.finishQuery(r.Context(), qid, graphName, fp, tr, start, outcome, rowsOut)
	}()

	// Result-cache lookup. The generation and data version are read
	// BEFORE execution: a write racing this request can at worst make
	// us store a fresher result under the older key — a key no future
	// request computes again — never serve an older result under a
	// fresher key. A hit consumes no admission slot: it is memory out.
	//
	// The statement half of the key is fingerprint-normalized: literals
	// rewrite to placeholders and their values fold into the typed
	// argument list, so `... WHERE id = 7` and `... WHERE id = ?` with
	// arg 7 compute the same key (while `id = 8` stays distinct — the
	// argument list is part of the key). When normalization declines the
	// statement — or the argument count does not match its placeholders —
	// the raw text keys the entry, which is always correct, just less
	// shared.
	var key string
	if s.cache != nil && cacheableSQL(q.sql) {
		keySQL, keyArgs := q.sql, q.args
		if norm.Changed() {
			if merged, ok := norm.MergeAny(q.args); ok {
				keySQL, keyArgs = norm.SQL, merged
			}
		}
		key = cacheKey(graphName, gen, db.DataVersion(), keySQL, keyArgs)
		if key != "" {
			spCache := tr.Begin(trace.NoSpan, "cache")
			res, hit := s.cache.Get(key)
			tr.End(spCache)
			tr.SetResultCacheHit(hit)
			if hit {
				s.queries.Add(1)
				rowsOut = len(res.Rows)
				if q.stream {
					var ttr *trace.Trace
					if q.trace {
						ttr = tr
					}
					s.streamResult(w, res, batch, ttr)
					return
				}
				// The wire encoding is deterministic, so re-encoding the
				// stored result reproduces the first response byte for
				// byte — the cache holds one representation, not two.
				// (A trace, when requested, is per-request by nature and
				// rides outside that equivalence.)
				resp := wire.FromResult(res)
				if q.trace {
					resp.Trace = tr.Tree()
				}
				data, err := resp.Encode()
				if err != nil {
					outcome = wire.CodeInternal
					s.failQuery(w, wire.CodeInternal, err)
					return
				}
				w.Header().Set("Content-Type", "application/json")
				w.Write(data)
				return
			}
		}
	}

	// The request context is canceled when the client disconnects; the
	// timeout (request-level, else server default) stacks on top.
	ctx := r.Context()
	timeout := s.cfg.QueryTimeout
	if q.timeoutMillis > 0 {
		timeout = time.Duration(q.timeoutMillis) * time.Millisecond
	}
	var timedOut func() bool = func() bool { return false }
	if timeout > 0 {
		tctx, cancel := context.WithTimeout(ctx, timeout)
		defer cancel()
		timedOut = func() bool { return tctx.Err() == context.DeadlineExceeded }
		ctx = tctx
	}

	// Resolve the facade session (one-shot sessions are throwaway) and
	// its worker request for admission.
	var fsess *graphsql.Session
	if ssess != nil {
		fsess = ssess.bind(graphName, db)
	} else {
		fsess = db.Session()
	}
	want := q.workers
	if want <= 0 {
		if sp := fsess.Parallelism(); sp > 0 {
			want = sp
		} else if sp == 0 {
			want = s.adm.PerQueryCap() // SET parallelism = 0: one per CPU
		}
	}

	// The queue-wait deadline (when configured) bounds only Acquire —
	// time spent waiting for an execution slot — never execution itself;
	// that is QueryTimeout's job.
	acqCtx := ctx
	if s.cfg.QueueWait > 0 {
		var acqCancel context.CancelFunc
		acqCtx, acqCancel = context.WithTimeout(ctx, s.cfg.QueueWait)
		defer acqCancel()
	}
	// Registered before Acquire so queued queries are already visible
	// in GET /queries (their stage reads "admission").
	inq := s.inflight.add(qid, graphName, fp, tr)
	defer s.inflight.remove(qid)
	spAdm := tr.Begin(trace.NoSpan, "admission")
	grant, err := s.adm.Acquire(acqCtx, want)
	tr.End(spAdm)
	if err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			outcome = wire.CodeQueueFull
			s.retryAfterHeader(w)
			s.failQuery(w, wire.CodeQueueFull, err)
		case timedOut():
			outcome = wire.CodeTimeout
			s.failQuery(w, wire.CodeTimeout, err)
		case ctx.Err() == nil:
			// Only the queue-wait deadline expired: the client is still
			// connected and nothing has executed, so a retry (after the
			// hint) is always safe.
			outcome = wire.CodeQueueTimeout
			s.retryAfterHeader(w)
			s.failQuery(w, wire.CodeQueueTimeout,
				fmt.Errorf("queued longer than the queue-wait deadline (%s)", s.cfg.QueueWait))
		default:
			outcome = wire.CodeCanceled
			s.failQuery(w, wire.CodeCanceled, err)
		}
		return
	}
	inq.workers.Store(int32(grant.Workers))
	// The grant goes back exactly once no matter how this request ends —
	// including a panic unwinding to the middleware recover, which this
	// deferred release runs before. The streaming path holds it through
	// the drain: under the pull executor the engine does its work while
	// the stream is being written, so the slot stays occupied until the
	// trailer (or the failure) — a streaming query is in flight for
	// exactly as long as it is executing.
	defer grant.Release()

	s.queries.Add(1)
	opts := graphsql.QueryOptions{Workers: grant.Workers, Trace: tr}
	if q.stream {
		// The requested frame size also drives the pull executor's
		// operator batches, so a small-batch stream starts flowing after
		// the first few rows are computed instead of after the first
		// 1024.
		opts.BatchRows = batch
		rows, qerr := fsess.QueryRows(ctx, opts, q.sql, q.args...)
		// A write issued with stream:true executed to completion inside
		// QueryRows (writes still materialize under the write lock), so
		// its cache purge happens before anything streams out.
		if s.cache != nil && invalidatingSQL(q.sql) {
			s.cache.InvalidateGraph(graphName)
		}
		if qerr != nil {
			outcome = s.failExec(w, ctx, timedOut, qerr, qid, fp)
			return
		}
		// The cursor owns a live operator tree; release it even when the
		// stream is torn before exhaustion (client gone mid-stream).
		defer rows.Close()
		// A streaming miss feeds the cache too: the batches are
		// accumulated as they go out (bounded by the admission budget, so
		// a result too big to cache stops buffering instead of doubling
		// its memory) and admitted only when the stream completes with a
		// trailer — a torn stream caches nothing.
		var collect *streamCollector
		if key != "" {
			collect = &streamCollector{budget: s.cache.AdmissionBudget()}
		}
		var ttr *trace.Trace
		if q.trace {
			ttr = tr
		}
		failCode, sent := s.streamRows(w, ctx, timedOut, rows, batch, collect, ttr, qid, fp)
		rowsOut = sent
		if failCode != "" {
			outcome = failCode
		} else if collect != nil && !collect.overflow {
			s.cache.Put(key, graphName, &graphsql.Result{Columns: rows.Columns, Rows: collect.rows})
		}
		return
	}
	// Writes purge the graph's cached results once they finish — the
	// data-version key already guarantees no stale hit, the purge just
	// releases the memory eagerly.
	if s.cache != nil && invalidatingSQL(q.sql) {
		defer s.cache.InvalidateGraph(graphName)
	}
	res, err := fsess.QueryOpts(ctx, opts, q.sql, q.args...)
	if err != nil {
		outcome = s.failExec(w, ctx, timedOut, err, qid, fp)
		return
	}
	rowsOut = len(res.Rows)
	resp := wire.FromResult(res)
	if q.trace {
		// Snapshotted before the encode span opens: the tree cannot
		// describe the encoding it is itself part of.
		resp.Trace = tr.Tree()
	}
	spEnc := tr.Begin(trace.NoSpan, "encode")
	data, err := resp.Encode()
	tr.End(spEnc)
	if err != nil {
		outcome = wire.CodeInternal
		s.failQuery(w, wire.CodeInternal, err)
		return
	}
	if key != "" {
		s.cache.Put(key, graphName, res)
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// finishQuery closes out one query's observability: stage histograms
// and the structured query log. Runs deferred from runQuery on every
// completion path.
func (s *Server) finishQuery(ctx context.Context, qid uint64, graph, fp string, tr *trace.Trace, start time.Time, outcome string, rowsOut int) {
	elapsed := time.Since(start)
	stages := tr.Stages()
	for _, st := range stages {
		s.stageHist.observe(st.Name, st.Dur.Seconds())
	}
	lvl, msg := slog.LevelDebug, "query"
	if ms := s.cfg.SlowQueryMillis; ms != 0 && (ms < 0 || elapsed >= time.Duration(ms)*time.Millisecond) {
		lvl, msg = slog.LevelWarn, "slow query"
	}
	if !s.logger.Enabled(ctx, lvl) {
		return
	}
	attrs := make([]slog.Attr, 0, 8+len(stages))
	attrs = append(attrs,
		slog.Uint64("query_id", qid),
		slog.String("graph", graph),
		slog.String("fingerprint", fp),
		slog.String("outcome", outcome),
		slog.Duration("elapsed", elapsed))
	if rowsOut >= 0 {
		attrs = append(attrs, slog.Int("rows", rowsOut))
	}
	if hit, seen := tr.ResultCacheHit(); seen {
		attrs = append(attrs, slog.Bool("cache_hit", hit))
	}
	if hit, known := tr.PlanCacheHit(); known {
		attrs = append(attrs, slog.Bool("plan_cache_hit", hit))
	}
	for _, st := range stages {
		attrs = append(attrs, slog.Duration("stage_"+st.Name, st.Dur))
	}
	s.logger.LogAttrs(ctx, lvl, msg, attrs...)
}

// streamCollector accumulates the batches of a streaming cache miss so
// the full result can be admitted once the stream completes. The byte
// estimate uses the same accounting as resultFootprint; crossing the
// budget sets overflow and drops what was gathered — the stream itself
// is unaffected.
type streamCollector struct {
	budget   int64
	bytes    int64
	rows     [][]any
	overflow bool
}

// add retains one outgoing batch. NextBatch allocates fresh row slices
// per call, so retaining them aliases nothing the cursor will reuse.
func (c *streamCollector) add(b [][]any) {
	if c.overflow {
		return
	}
	for _, row := range b {
		c.bytes += 24 + int64(len(row))*24
		for _, cell := range row {
			c.bytes += cellPayload(cell)
		}
	}
	if c.bytes > c.budget {
		c.overflow = true
		c.rows = nil
		return
	}
	c.rows = append(c.rows, b...)
}

// streamRows writes a chunked response from a live row-batch cursor.
// Under the pull executor the cursor *is* the execution: each NextBatch
// runs the operator tree far enough to fill one batch, so the first
// frame reaches the client while the query is still running and the
// full response never exists server-side (except in collect, when the
// cache wants the result and it fits the admission budget). Any
// failure between batches — cancellation, a contained panic, an
// injected fault, a runtime execution error — ends the stream with an
// error trailer; so does a server-side encoding failure or a panic
// (recovered locally — the header is already on the wire, so the
// middleware could not answer 500; a stream is only ever torn by its
// error trailer, never silently). It reports the wire code the stream failed with ("" for a
// clean trailer — only then may the collected result be cached; a
// recovered panic reports CodePanic like every other failure) and the
// rows delivered. ttr, when non-nil, is the query's trace, whose tree
// the success trailer carries ("trace": true requests).
func (s *Server) streamRows(w http.ResponseWriter, ctx context.Context, timedOut func() bool, rows *graphsql.Rows, batch int, collect *streamCollector, ttr *trace.Trace, qid uint64, fp string) (failCode string, sent int) {
	w.Header().Set("Content-Type", wire.StreamContentType)
	sw := wire.NewStreamWriter(w)
	// abandon counts a stream the client will never finish reading —
	// whether the disconnect surfaced as a context cancellation between
	// batches or as a write error on the dead connection — so streamed
	// disconnects move the same abandoned/error counters buffered ones
	// do.
	abandon := func(code string) {
		s.errors.Add(1)
		s.canceled.Add(1)
		failCode = code
	}
	defer func() {
		if rv := recover(); rv != nil {
			s.recordPanic(ctx, rv, debug.Stack(), qid, fp)
			s.errors.Add(1)
			failCode = wire.CodePanic
			sent = sw.RowsSent()
			sw.Fail(wire.CodePanic, fmt.Errorf("query panicked: %v", rv))
		}
	}()
	if err := sw.Header(rows.Columns); err != nil {
		abandon(wire.CodeCanceled) // client gone before the first frame
		return failCode, 0
	}
	for {
		b, err := rows.NextBatch(batch)
		if err != nil {
			// Under the pull executor the query is still executing while
			// it streams, so any execution failure — a contained panic,
			// an injected fault, a runtime error — can surface between
			// batches, not just cancellation. Classify like failExec; the
			// header is already on the wire, so the error travels as a
			// structured trailer.
			var qp *graphsql.QueryPanicError
			var inj *fault.InjectedError
			code := wire.CodeSQL
			switch {
			case errors.As(err, &qp):
				s.recordPanic(ctx, qp.Value, qp.Stack, qid, fp)
				code = wire.CodePanic
			case errors.As(err, &inj):
				code = wire.CodeInternal
			case timedOut():
				code = wire.CodeTimeout
			case ctx.Err() != nil:
				code = wire.CodeCanceled
			}
			if code == wire.CodeTimeout || code == wire.CodeCanceled {
				abandon(code)
			} else {
				s.errors.Add(1)
				failCode = code
			}
			sw.Fail(code, err)
			return failCode, sw.RowsSent()
		}
		if b == nil {
			break
		}
		if collect != nil {
			collect.add(b)
		}
		if err := sw.Batch(b); err != nil {
			// A server-side encoder failure (e.g. an injected stream
			// fault) is not a disconnect: the connection still works, so
			// the client gets a structured error trailer. Only a write
			// error on a dead connection stays a silent abandon.
			var inj *fault.InjectedError
			if errors.As(err, &inj) {
				s.errors.Add(1)
				failCode = wire.CodeInternal
				sw.Fail(wire.CodeInternal, err)
				return failCode, sw.RowsSent()
			}
			abandon(wire.CodeCanceled) // client gone mid-stream; nothing left to tell it
			return failCode, sw.RowsSent()
		}
	}
	sw.Trailer(ttr.Tree())
	return "", sw.RowsSent()
}

// streamResult streams an already-materialized (cached) result in the
// same chunked encoding a live cursor produces. A disconnect counts
// exactly like one on the live-cursor path, so abandoned-stream
// metrics don't depend on whether the cache was warm.
func (s *Server) streamResult(w http.ResponseWriter, res *graphsql.Result, batch int, ttr *trace.Trace) {
	w.Header().Set("Content-Type", wire.StreamContentType)
	sw := wire.NewStreamWriter(w)
	abandon := func() {
		s.errors.Add(1)
		s.canceled.Add(1)
	}
	if err := sw.Header(res.Columns); err != nil {
		abandon()
		return
	}
	for lo := 0; lo < len(res.Rows); lo += batch {
		hi := lo + batch
		if hi > len(res.Rows) {
			hi = len(res.Rows)
		}
		if err := sw.Batch(res.Rows[lo:hi]); err != nil {
			// Same classification as the live-cursor path: encoder
			// faults end with a structured trailer, dead connections
			// abandon silently.
			var inj *fault.InjectedError
			if errors.As(err, &inj) {
				s.errors.Add(1)
				sw.Fail(wire.CodeInternal, err)
				return
			}
			abandon()
			return
		}
	}
	sw.Trailer(ttr.Tree())
}

func (s *Server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	fail := func(status int, code string, err error) {
		s.errors.Add(1)
		writeJSON(w, status, &wire.PrepareResponse{Error: &wire.Error{Code: code, Message: err.Error()}})
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		fail(http.StatusBadRequest, wire.CodeInvalidRequest, err)
		return
	}
	req, err := wire.DecodePrepareRequest(body)
	if err != nil {
		fail(http.StatusBadRequest, wire.CodeInvalidRequest, err)
		return
	}
	if req.SQL == "" {
		fail(http.StatusBadRequest, wire.CodeInvalidRequest, errors.New("missing sql"))
		return
	}
	if req.Session == "" {
		fail(http.StatusBadRequest, wire.CodeInvalidRequest, errors.New("prepare requires a session"))
		return
	}
	graphName := req.Graph
	if graphName == "" {
		graphName = s.cfg.DefaultGraph
	}
	db, _, ok := s.reg.Resolve(graphName)
	if !ok {
		fail(http.StatusNotFound, wire.CodeUnknownGraph, fmt.Errorf("graph %q is not loaded", graphName))
		return
	}
	ss := s.session(req.Session)
	info, err := ss.bind(graphName, db).Prepare(req.SQL, req.Args...)
	if err != nil {
		fail(http.StatusUnprocessableEntity, wire.CodeSQL, err)
		return
	}
	id := ss.registerStmt(graphName, req.SQL)
	writeJSON(w, http.StatusOK, &wire.PrepareResponse{StatementID: id, NumParams: info.NumParams})
}

func (s *Server) handleExecute(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		s.failQuery(w, wire.CodeInvalidRequest, err)
		return
	}
	req, err := wire.DecodeExecuteRequest(body)
	if err != nil {
		s.failQuery(w, wire.CodeInvalidRequest, err)
		return
	}
	if req.Session == "" || req.StatementID == "" {
		s.failQuery(w, wire.CodeInvalidRequest, errors.New("execute requires session and statement_id"))
		return
	}
	st, ok := s.session(req.Session).stmt(req.StatementID)
	if !ok {
		s.failQuery(w, wire.CodeInvalidRequest,
			fmt.Errorf("unknown statement id %q (never prepared, or its session was evicted)", req.StatementID))
		return
	}
	s.runQuery(w, r, querySpec{
		graph: st.graph, session: req.Session, sql: st.sql, args: req.Args,
		workers: req.Workers, timeoutMillis: req.TimeoutMillis,
		stream: req.Stream, batchRows: req.BatchRows, trace: req.Trace,
	})
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body, err := io.ReadAll(io.LimitReader(r.Body, 256<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, &wire.LoadResponse{Graph: name, Error: &wire.Error{Code: wire.CodeInvalidRequest, Message: err.Error()}})
		return
	}
	var req wire.LoadRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, &wire.LoadResponse{Graph: name, Error: &wire.Error{Code: wire.CodeInvalidRequest, Message: err.Error()}})
		return
	}
	gen, tables, err := s.reg.Load(name, req.Script, req.Indexes)
	if err != nil {
		s.errors.Add(1)
		writeJSON(w, http.StatusUnprocessableEntity, &wire.LoadResponse{Graph: name, Error: &wire.Error{Code: wire.CodeSQL, Message: err.Error()}})
		return
	}
	// The new generation can never hit the old entries (the key
	// changed); purging just frees their memory immediately.
	if s.cache != nil {
		s.cache.InvalidateGraph(name)
	}
	s.loads.Add(1)
	writeJSON(w, http.StatusOK, &wire.LoadResponse{Graph: name, Generation: gen, Tables: tables})
}

// StatsResponse is the GET /stats payload.
type StatsResponse struct {
	UptimeSeconds float64           `json:"uptime_seconds"`
	Queries       uint64            `json:"queries"`
	Errors        uint64            `json:"errors"`
	Canceled      uint64            `json:"canceled"`
	Loads         uint64            `json:"loads"`
	Panics        uint64            `json:"panics_recovered"`
	Sessions      int               `json:"sessions"`
	Admission     AdmissionSnapshot `json:"admission"`
	Cache         *CacheSnapshot    `json:"cache,omitempty"`
	Graphs        []GraphInfo       `json:"graphs"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.sessMu.Lock()
	sessions := len(s.sessions)
	s.sessMu.Unlock()
	resp := &StatsResponse{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Queries:       s.queries.Load(),
		Errors:        s.errors.Load(),
		Canceled:      s.canceled.Load(),
		Loads:         s.loads.Load(),
		Panics:        s.panics.Load(),
		Sessions:      sessions,
		Admission:     s.adm.Snapshot(),
		Graphs:        s.reg.Info(),
	}
	if s.cache != nil {
		cs := s.cache.Snapshot()
		resp.Cache = &cs
	}
	writeJSON(w, http.StatusOK, resp)
}
