// Package server turns the embedded graphsql engine into a
// long-running, concurrency-safe query service: an HTTP/JSON API over
// a named multi-graph registry with copy-on-swap reloads, per-session
// state (SET settings and a prepared parse+plan cache), and an
// admission-control scheduler that divides the machine's worker budget
// across concurrent queries.
//
// Endpoints:
//
//	POST /query               run one statement (wire.QueryRequest)
//	POST /graphs/{name}/load  build+swap a named graph (wire.LoadRequest)
//	GET  /healthz             liveness probe
//	GET  /stats               counters, admission and registry state
//
// Concurrency model: SELECTs over one graph run concurrently (the
// facade's read lock), writers serialize, and a reload never blocks
// readers — it builds the replacement database off to the side and
// swaps an atomic pointer. Admission bounds the blast radius of
// expensive queries: at most MaxInFlight queries run at once with a
// per-query worker cap, QueueDepth more wait FIFO, and anything beyond
// that is rejected immediately with queue_full so overload degrades
// predictably instead of collapsing.
//
// Cancellation: a client disconnect (or timeout) cancels the request
// context, which aborts the query at the nearest operator boundary,
// source-group boundary, or in-traversal poll — single traversals are
// abandoned within one BFS frontier level or a few thousand Dijkstra
// pops, so a disconnected client frees its worker grant within
// milliseconds rather than pinning it until the traversal finishes.
// A request canceled while waiting in the admission queue leaves the
// queue without ever consuming an in-flight slot or a worker grant.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"graphsql"
	"graphsql/internal/wire"
)

// Config tunes a Server. Zero values pick sensible defaults.
type Config struct {
	// DefaultGraph names the graph served when requests omit one;
	// defaults to "default". The graph is created empty at startup.
	DefaultGraph string
	// Parallelism is the engine worker budget of loaded graphs
	// (0 = one worker per CPU).
	Parallelism int
	// MaxInFlight bounds concurrently executing queries; defaults to
	// GOMAXPROCS.
	MaxInFlight int
	// QueueDepth bounds queries waiting for admission: 0 defaults to
	// 4 × MaxInFlight, negative disables queueing (immediate rejection
	// once MaxInFlight is reached).
	QueueDepth int
	// TotalWorkers is the worker budget admission divides across
	// queries; defaults to GOMAXPROCS.
	TotalWorkers int
	// PerQueryWorkers caps one query's grant; defaults to TotalWorkers.
	PerQueryWorkers int
	// QueryTimeout bounds each query's execution; 0 means no limit.
	QueryTimeout time.Duration
	// MaxSessions bounds the session table; the least-recently-used
	// session is evicted beyond it. Defaults to 1024.
	MaxSessions int
}

func (c *Config) defaults() {
	if c.DefaultGraph == "" {
		c.DefaultGraph = "default"
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	switch {
	case c.QueueDepth == 0:
		c.QueueDepth = 4 * c.MaxInFlight
	case c.QueueDepth < 0:
		c.QueueDepth = 0
	}
	if c.TotalWorkers <= 0 {
		c.TotalWorkers = runtime.GOMAXPROCS(0)
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
}

// Server is the HTTP query service. Create with New, serve its
// Handler.
type Server struct {
	cfg Config
	reg *Registry
	adm *Admission
	mux *http.ServeMux

	sessMu   sync.Mutex
	sessions map[string]*serverSession
	sessTick uint64 // LRU clock

	// counters
	queries  atomic.Uint64
	errors   atomic.Uint64
	canceled atomic.Uint64
	loads    atomic.Uint64
	started  time.Time
}

// serverSession is one client session: per-graph facade sessions so
// SET settings and prepared plans survive across requests. A reload
// swaps the graph's database; the stale binding is detected by pointer
// comparison and replaced (settings reset with the new generation).
type serverSession struct {
	mu      sync.Mutex
	byGraph map[string]*boundSession
	lastUse uint64
}

type boundSession struct {
	db   *graphsql.DB
	sess *graphsql.Session
}

// New builds a server and registers its default (empty) graph.
func New(cfg Config) (*Server, error) {
	cfg.defaults()
	s := &Server{
		cfg:      cfg,
		reg:      NewRegistry(cfg.Parallelism),
		adm:      NewAdmission(cfg.MaxInFlight, cfg.QueueDepth, cfg.TotalWorkers, cfg.PerQueryWorkers),
		sessions: make(map[string]*serverSession),
		started:  time.Now(),
	}
	if _, _, err := s.reg.Load(cfg.DefaultGraph, "", nil); err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /graphs/{name}/load", s.handleLoad)
	s.mux = mux
	return s, nil
}

// Registry exposes the graph registry (startup preloading, tests).
func (s *Server) Registry() *Registry { return s.reg }

// Admission exposes the scheduler (tests, instrumentation).
func (s *Server) Admission() *Admission { return s.adm }

// Handler returns the root http.Handler.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// session resolves (or creates) the named session, updating its LRU
// stamp and evicting the oldest session beyond the cap.
func (s *Server) session(id string) *serverSession {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	s.sessTick++
	sess, ok := s.sessions[id]
	if !ok {
		if len(s.sessions) >= s.cfg.MaxSessions {
			var oldestID string
			var oldest uint64 = ^uint64(0)
			for k, v := range s.sessions {
				if v.lastUse < oldest {
					oldest, oldestID = v.lastUse, k
				}
			}
			delete(s.sessions, oldestID)
		}
		sess = &serverSession{byGraph: make(map[string]*boundSession)}
		s.sessions[id] = sess
	}
	sess.lastUse = s.sessTick
	return sess
}

// bind resolves the facade session of (session, graph), re-binding when
// the graph's database was swapped by a reload.
func (ss *serverSession) bind(graph string, db *graphsql.DB) *graphsql.Session {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	b := ss.byGraph[graph]
	if b == nil || b.db != db {
		b = &boundSession{db: db, sess: db.Session()}
		ss.byGraph[graph] = b
	}
	return b.sess
}

// writeResponse marshals a wire payload with the proper status code.
func writeJSON(w http.ResponseWriter, status int, payload any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	data, err := json.Marshal(payload)
	if err != nil {
		http.Error(w, `{"error":{"code":"internal","message":"encoding failed"}}`, http.StatusInternalServerError)
		return
	}
	w.Write(data)
}

// errorStatus maps wire error codes onto HTTP statuses.
func errorStatus(code string) int {
	switch code {
	case wire.CodeQueueFull:
		return http.StatusServiceUnavailable
	case wire.CodeUnknownGraph:
		return http.StatusNotFound
	case wire.CodeCanceled:
		return 499 // client closed request (nginx convention)
	case wire.CodeTimeout:
		return http.StatusGatewayTimeout
	case wire.CodeInvalidRequest:
		return http.StatusBadRequest
	case wire.CodeInternal:
		return http.StatusInternalServerError
	default:
		return http.StatusUnprocessableEntity
	}
}

func (s *Server) failQuery(w http.ResponseWriter, code string, err error) {
	s.errors.Add(1)
	if code == wire.CodeCanceled || code == wire.CodeTimeout {
		s.canceled.Add(1)
	}
	writeJSON(w, errorStatus(code), wire.FromError(code, err))
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		s.failQuery(w, wire.CodeInvalidRequest, err)
		return
	}
	req, err := wire.DecodeRequest(body)
	if err != nil {
		s.failQuery(w, wire.CodeInvalidRequest, err)
		return
	}
	if req.SQL == "" {
		s.failQuery(w, wire.CodeInvalidRequest, errors.New("missing sql"))
		return
	}
	graphName := req.Graph
	if graphName == "" {
		graphName = s.cfg.DefaultGraph
	}
	db, ok := s.reg.Get(graphName)
	if !ok {
		s.failQuery(w, wire.CodeUnknownGraph, fmt.Errorf("graph %q is not loaded", graphName))
		return
	}

	// The request context is canceled when the client disconnects; the
	// timeout (request-level, else server default) stacks on top.
	ctx := r.Context()
	timeout := s.cfg.QueryTimeout
	if req.TimeoutMillis > 0 {
		timeout = time.Duration(req.TimeoutMillis) * time.Millisecond
	}
	var timedOut func() bool = func() bool { return false }
	if timeout > 0 {
		tctx, cancel := context.WithTimeout(ctx, timeout)
		defer cancel()
		timedOut = func() bool { return tctx.Err() == context.DeadlineExceeded }
		ctx = tctx
	}

	// Resolve the facade session (one-shot sessions are throwaway) and
	// its worker request for admission.
	var fsess *graphsql.Session
	if req.Session != "" {
		fsess = s.session(req.Session).bind(graphName, db)
	} else {
		fsess = db.Session()
	}
	want := req.Workers
	if want <= 0 {
		if sp := fsess.Parallelism(); sp > 0 {
			want = sp
		} else if sp == 0 {
			want = s.adm.PerQueryCap() // SET parallelism = 0: one per CPU
		}
	}

	grant, err := s.adm.Acquire(ctx, want)
	if err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			s.failQuery(w, wire.CodeQueueFull, err)
		case timedOut():
			s.failQuery(w, wire.CodeTimeout, err)
		default:
			s.failQuery(w, wire.CodeCanceled, err)
		}
		return
	}
	defer grant.Release()

	s.queries.Add(1)
	res, err := fsess.QueryOpts(ctx, graphsql.QueryOptions{Workers: grant.Workers}, req.SQL, req.Args...)
	if err != nil {
		switch {
		case timedOut():
			s.failQuery(w, wire.CodeTimeout, err)
		case ctx.Err() != nil:
			s.failQuery(w, wire.CodeCanceled, err)
		default:
			s.failQuery(w, wire.CodeSQL, err)
		}
		return
	}
	data, err := wire.FromResult(res).Encode()
	if err != nil {
		s.failQuery(w, wire.CodeInternal, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body, err := io.ReadAll(io.LimitReader(r.Body, 256<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, &wire.LoadResponse{Graph: name, Error: &wire.Error{Code: wire.CodeInvalidRequest, Message: err.Error()}})
		return
	}
	var req wire.LoadRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, &wire.LoadResponse{Graph: name, Error: &wire.Error{Code: wire.CodeInvalidRequest, Message: err.Error()}})
		return
	}
	gen, tables, err := s.reg.Load(name, req.Script, req.Indexes)
	if err != nil {
		s.errors.Add(1)
		writeJSON(w, http.StatusUnprocessableEntity, &wire.LoadResponse{Graph: name, Error: &wire.Error{Code: wire.CodeSQL, Message: err.Error()}})
		return
	}
	s.loads.Add(1)
	writeJSON(w, http.StatusOK, &wire.LoadResponse{Graph: name, Generation: gen, Tables: tables})
}

// StatsResponse is the GET /stats payload.
type StatsResponse struct {
	UptimeSeconds float64           `json:"uptime_seconds"`
	Queries       uint64            `json:"queries"`
	Errors        uint64            `json:"errors"`
	Canceled      uint64            `json:"canceled"`
	Loads         uint64            `json:"loads"`
	Sessions      int               `json:"sessions"`
	Admission     AdmissionSnapshot `json:"admission"`
	Graphs        []GraphInfo       `json:"graphs"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.sessMu.Lock()
	sessions := len(s.sessions)
	s.sessMu.Unlock()
	writeJSON(w, http.StatusOK, &StatsResponse{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Queries:       s.queries.Load(),
		Errors:        s.errors.Load(),
		Canceled:      s.canceled.Load(),
		Loads:         s.loads.Load(),
		Sessions:      sessions,
		Admission:     s.adm.Snapshot(),
		Graphs:        s.reg.Info(),
	})
}
