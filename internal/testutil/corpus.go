// Package testutil holds the shared differential-test corpus: a
// deterministic dataset-building script and a set of end-to-end SQL
// queries spanning every relational operator plus the paper's graph
// extension. The differential harness (differential_test.go at the
// repository root) executes the corpus at several parallelism settings
// and requires byte-identical result renderings; the SQL front-end
// fuzz target seeds from the same statements. The package is plain
// strings on purpose — it must be importable from both the root
// package's tests and internal/sql without cycles.
package testutil

import (
	"fmt"
	"strings"
)

// lcg is a tiny deterministic generator so the dataset never depends
// on math/rand's algorithm or seeding across Go versions.
type lcg struct{ x uint64 }

func (l *lcg) next() uint64 {
	l.x = l.x*6364136223846793005 + 1442695040888963407
	return l.x >> 17
}

// intn returns a value in [0, n).
func (l *lcg) intn(n int) int { return int(l.next() % uint64(n)) }

// Corpus dimensions. Large enough that a lowered parallel-operator
// gate exercises every partitioned code path, small enough to keep the
// harness fast.
const (
	numPeople = 400
	numEdges  = 1600
	numPairs  = 60
	numTeams  = 12
)

// SetupScript returns the semicolon-separated DDL + INSERT script that
// builds the differential dataset: a social graph (people, knows), a
// dimension table (teams) and a query-pair table (pairs). NULLs are
// sprinkled over nullable attributes; edge weights stay strictly
// positive (a CHEAPEST SUM requirement).
func SetupScript() string {
	var b strings.Builder
	for _, s := range SetupStatements() {
		b.WriteString(s)
		b.WriteString(";\n")
	}
	return b.String()
}

// SetupStatements returns the script as individual statements.
func SetupStatements() []string {
	r := &lcg{x: 0x9E3779B97F4A7C15}
	stmts := []string{
		`CREATE TABLE teams (id BIGINT, name VARCHAR)`,
		`CREATE TABLE people (id BIGINT, name VARCHAR, team BIGINT, score DOUBLE)`,
		`CREATE TABLE knows (src BIGINT, dst BIGINT, w BIGINT, f DOUBLE)`,
		`CREATE TABLE pairs (a BIGINT, b BIGINT)`,
	}
	var b strings.Builder
	b.WriteString(`INSERT INTO teams VALUES `)
	for i := 0; i < numTeams; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%d, 'team_%c')", i, 'a'+i)
	}
	stmts = append(stmts, b.String())

	b.Reset()
	b.WriteString(`INSERT INTO people VALUES `)
	for i := 0; i < numPeople; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		team := "NULL"
		if r.intn(10) != 0 {
			team = fmt.Sprint(r.intn(numTeams))
		}
		score := "NULL"
		if r.intn(8) != 0 {
			score = fmt.Sprintf("%d.%02d", r.intn(100), r.intn(100))
		}
		fmt.Fprintf(&b, "(%d, 'p%03d', %s, %s)", i, i, team, score)
	}
	stmts = append(stmts, b.String())

	b.Reset()
	b.WriteString(`INSERT INTO knows VALUES `)
	for i := 0; i < numEdges; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		src, dst := r.intn(numPeople), r.intn(numPeople)
		fmt.Fprintf(&b, "(%d, %d, %d, %d.%02d)", src, dst, 1+r.intn(9), 1+r.intn(5), r.intn(100))
	}
	stmts = append(stmts, b.String())

	b.Reset()
	b.WriteString(`INSERT INTO pairs VALUES `)
	for i := 0; i < numPairs; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%d, %d)", r.intn(numPeople), r.intn(numPeople))
	}
	stmts = append(stmts, b.String())
	return stmts
}

// Queries returns the golden corpus: end-to-end SQL statements spanning
// joins, grouping, ordering, DISTINCT, set operations, subqueries,
// CTEs, and the graph extension (REACHES, CHEAPEST SUM, paths,
// UNNEST) — alone and combined. Every query is deterministic given the
// engine's determinism guarantee, which is exactly what the
// differential harness verifies across parallelism settings.
func Queries() []string {
	return []string{
		// Scans, filters, expressions.
		`SELECT * FROM people WHERE team = 3`,
		`SELECT id, score * 2, name || '!' FROM people WHERE score > 50`,
		`SELECT id FROM people WHERE name LIKE 'p1%' AND team IS NOT NULL`,
		`SELECT CASE WHEN score > 66 THEN 'hi' WHEN score > 33 THEN 'mid' ELSE 'lo' END, id FROM people`,
		`SELECT id FROM people WHERE team BETWEEN 2 AND 5 ORDER BY id DESC LIMIT 17 OFFSET 3`,

		// Joins: inner, left, self, cross, multi-key, residual.
		`SELECT p.id, t.name FROM people p JOIN teams t ON p.team = t.id`,
		`SELECT p.id, t.name FROM people p LEFT JOIN teams t ON p.team = t.id`,
		`SELECT a.id, b.id FROM people a JOIN people b ON a.team = b.team AND a.id < b.id WHERE a.score > 80`,
		`SELECT COUNT(*) FROM people p, teams t WHERE p.team = t.id AND p.score > t.id * 7`,
		`SELECT COUNT(*) FROM knows k1 JOIN knows k2 ON k1.dst = k2.src`,
		`SELECT k1.src, k2.dst, k1.w + k2.w FROM knows k1 JOIN knows k2 ON k1.dst = k2.src AND k1.w = k2.w`,
		`SELECT COUNT(*) FROM teams a, teams b`,
		`SELECT p.id FROM people p LEFT JOIN teams t ON p.team = t.id AND t.name LIKE '%a' WHERE t.id IS NULL`,

		// Semi/anti joins via IN / EXISTS.
		`SELECT id FROM people WHERE id IN (SELECT src FROM knows WHERE w > 7)`,
		`SELECT id FROM people WHERE id NOT IN (SELECT dst FROM knows WHERE w = 1)`,
		`SELECT COUNT(*) FROM people WHERE EXISTS (SELECT 1 FROM knows WHERE w > 8)
		 AND team IN (SELECT id FROM teams WHERE name LIKE 'team_%')`,

		// Aggregation: global, grouped, HAVING, DISTINCT aggregates.
		`SELECT COUNT(*), COUNT(team), COUNT(score), SUM(team), MIN(score), MAX(name), AVG(score) FROM people`,
		`SELECT team, COUNT(*), SUM(score) FROM people GROUP BY team`,
		`SELECT team, AVG(score) FROM people GROUP BY team HAVING COUNT(*) > 25`,
		`SELECT w, COUNT(*), COUNT(DISTINCT src), MIN(f), MAX(f) FROM knows GROUP BY w`,
		`SELECT t.name, COUNT(*), AVG(p.score) FROM people p JOIN teams t ON p.team = t.id GROUP BY t.name`,
		`SELECT src % 4, SUM(w), AVG(f) FROM knows GROUP BY src % 4`,
		`SELECT COUNT(DISTINCT team) FROM people WHERE score IS NOT NULL`,

		// Ordering: multi-key, NULLS FIRST/LAST, expressions.
		`SELECT id, team, score FROM people ORDER BY team NULLS FIRST, score DESC, id`,
		`SELECT id, score FROM people ORDER BY score DESC NULLS LAST, id LIMIT 25`,
		`SELECT src, dst, w FROM knows ORDER BY w DESC, src, dst LIMIT 40`,
		`SELECT team, COUNT(*) AS c FROM people GROUP BY team ORDER BY c DESC, team NULLS FIRST`,

		// DISTINCT and set operations.
		`SELECT DISTINCT team FROM people`,
		`SELECT DISTINCT w, src % 3 FROM knows`,
		`SELECT src FROM knows UNION SELECT dst FROM knows`,
		`SELECT src FROM knows UNION ALL SELECT dst FROM knows`,
		`SELECT src FROM knows WHERE w > 5 EXCEPT SELECT dst FROM knows WHERE w < 3`,
		`SELECT src FROM knows EXCEPT ALL SELECT dst FROM knows`,
		`SELECT src FROM knows INTERSECT SELECT dst FROM knows`,
		`SELECT src, dst FROM knows WHERE w > 4 INTERSECT ALL SELECT src, dst FROM knows WHERE f > 3`,

		// Derived tables and CTEs.
		`SELECT t.c, t.team FROM (SELECT team, COUNT(*) AS c FROM people GROUP BY team) t WHERE t.c > 20`,
		`WITH busy AS (SELECT src, COUNT(*) AS deg FROM knows GROUP BY src)
		 SELECT p.id, b.deg FROM people p JOIN busy b ON p.id = b.src WHERE b.deg > 6 ORDER BY b.deg DESC, p.id`,
		`WITH hub AS (SELECT src FROM knows GROUP BY src HAVING COUNT(*) >= 7)
		 SELECT COUNT(*) FROM hub`,

		// Graph extension: reachability, cheapest paths, batched form,
		// paths + UNNEST, combined with relational operators.
		`SELECT CHEAPEST SUM(1) WHERE 1 REACHES 42 OVER knows EDGE (src, dst)`,
		`SELECT CHEAPEST SUM(k: w) WHERE 1 REACHES 42 OVER knows k EDGE (src, dst)`,
		`SELECT CHEAPEST SUM(k: f) WHERE 2 REACHES 77 OVER knows k EDGE (src, dst)`,
		`SELECT p.a, p.b, CHEAPEST SUM(1) AS hops FROM pairs p
		 WHERE p.a REACHES p.b OVER knows EDGE (src, dst)`,
		`SELECT p.a, p.b, CHEAPEST SUM(k: w) AS cost FROM pairs p
		 WHERE p.a REACHES p.b OVER knows k EDGE (src, dst) ORDER BY cost DESC, p.a, p.b`,
		`SELECT q.a, COUNT(*) FROM (
		   SELECT p.a, p.b, CHEAPEST SUM(k: w) AS cost FROM pairs p
		   WHERE p.a REACHES p.b OVER knows k EDGE (src, dst)
		 ) q GROUP BY q.a HAVING MIN(q.cost) < 9`,
		`SELECT t.cost, r.src, r.dst, r.w, r.ordinality FROM (
		   SELECT CHEAPEST SUM(k: w) AS (cost, path) WHERE 3 REACHES 99 OVER knows k EDGE (src, dst)
		 ) t, UNNEST(t.path) WITH ORDINALITY AS r ORDER BY r.ordinality`,
		`SELECT p.a, SUM(r.w) FROM (
		   SELECT x.a, x.b, CHEAPEST SUM(k: w) AS (c, pth) FROM pairs x
		   WHERE x.a REACHES x.b OVER knows k EDGE (src, dst)
		 ) p, UNNEST(p.pth) AS r GROUP BY p.a`,
		`SELECT src FROM knows WHERE src REACHES 7 OVER knows EDGE (src, dst) AND w = 9`,

		// Kitchen sink: join + graph + aggregation + sort + limit.
		`WITH far AS (
		   SELECT p.a, p.b, CHEAPEST SUM(1) AS hops FROM pairs p
		   WHERE p.a REACHES p.b OVER knows EDGE (src, dst)
		 )
		 SELECT t.name, COUNT(*), MIN(f.hops) FROM far f
		 JOIN people pe ON f.a = pe.id
		 LEFT JOIN teams t ON pe.team = t.id
		 GROUP BY t.name ORDER BY t.name NULLS FIRST`,
	}
}

// FuzzSeeds returns every corpus statement (setup and queries) for
// seeding the SQL front-end fuzz target.
func FuzzSeeds() []string {
	return append(SetupStatements(), Queries()...)
}
