package testutil

import (
	"net/http"
	"runtime"
	"testing"
	"time"
)

// CheckGoroutineLeaks snapshots the goroutine count and registers a
// cleanup that fails the test if the count has not returned to (near)
// the baseline once everything else has shut down. Call it FIRST in the
// test body: t.Cleanup runs LIFO, so registering before the server (and
// clients) guarantees this check runs after their shutdown.
//
// The check polls with a grace period — goroutines unwind
// asynchronously after a server Close — and drains the default HTTP
// client's idle pool first, since its readLoop/writeLoop goroutines are
// per-connection client-side state, not server leaks. A small slack
// absorbs runtime-internal goroutines that appear lazily (GC workers,
// timer threads).
func CheckGoroutineLeaks(t testing.TB) {
	t.Helper()
	baseline := runtime.NumGoroutine()
	const (
		slack    = 3
		deadline = 5 * time.Second
	)
	t.Cleanup(func() {
		if t.Failed() {
			return // don't pile a leak report onto a real failure
		}
		// Client-side keep-alive connections hold two goroutines each;
		// they are ours, not the server's.
		http.DefaultClient.CloseIdleConnections()
		var n int
		for end := time.Now().Add(deadline); ; {
			n = runtime.NumGoroutine()
			if n <= baseline+slack {
				return
			}
			if time.Now().After(end) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("goroutine leak: %d live, baseline %d (+%d slack); dump:\n%s",
			n, baseline, slack, buf)
	})
}
