package analyze

import (
	"fmt"
	"strconv"
	"strings"

	"graphsql/internal/expr"
	"graphsql/internal/plan"
	"graphsql/internal/sql/ast"
	"graphsql/internal/storage"
	"graphsql/internal/types"
)

// cheapestCols locates the generated columns of one CHEAPEST SUM call.
type cheapestCols struct {
	costIdx  int
	costKind types.Kind
	pathIdx  int // -1 when the path was not requested
}

// aggEnv is the post-aggregation binding environment: expressions may
// only reference GROUP BY expressions (matched by canonical rendering)
// or aggregate calls.
type aggEnv struct {
	// colOf maps a canonical expression rendering to its column in
	// the aggregate output schema.
	colOf map[string]int
}

// scope is the name-resolution environment for expression binding.
type scope struct {
	schema storage.Schema
	// paths maps path-typed column indices to their nested schemas.
	paths map[int]storage.Schema
	// cheapest maps canonical CHEAPEST SUM keys (binding + weight
	// rendering, see csKey) to their generated columns; populated
	// while planning a block that has reachability predicates.
	// Identical calls share one spec wherever they appear (SELECT
	// list, GROUP BY, HAVING, ORDER BY).
	cheapest map[string]cheapestCols
	// agg switches binding into post-aggregation mode.
	agg *aggEnv
}

func (s *scope) resolve(parts []string) (int, error) {
	var tbl, name string
	switch len(parts) {
	case 1:
		name = parts[0]
	case 2:
		tbl, name = parts[0], parts[1]
	default:
		return -1, fmt.Errorf("identifier %s has too many qualifiers", strings.Join(parts, "."))
	}
	idx := s.schema.ColIndex(tbl, name)
	switch idx {
	case -1:
		return -1, fmt.Errorf("column %q not found", strings.Join(parts, "."))
	case -2:
		return -1, fmt.Errorf("column reference %q is ambiguous", strings.Join(parts, "."))
	}
	return idx, nil
}

// typeNameKind maps a SQL type name to a runtime kind.
func typeNameKind(name string) (types.Kind, error) {
	switch strings.ToUpper(name) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT":
		return types.KindInt, nil
	case "DOUBLE", "FLOAT", "REAL":
		return types.KindFloat, nil
	case "VARCHAR", "TEXT", "CHAR", "STRING":
		return types.KindString, nil
	case "BOOLEAN", "BOOL":
		return types.KindBool, nil
	case "DATE":
		return types.KindDate, nil
	}
	return 0, fmt.Errorf("unknown type %q", name)
}

// isAggName reports whether the function name is an aggregate.
func isAggName(name string) bool {
	switch name {
	case "COUNT", "SUM", "MIN", "MAX", "AVG":
		return true
	}
	return false
}

// bindExpr translates an AST expression into a bound expression over
// the scope.
func (b *Binder) bindExpr(e ast.Expr, sc *scope) (expr.Expr, error) {
	// Post-aggregation mode: group expressions and aggregate calls
	// become column references into the Aggregate output.
	if sc.agg != nil {
		if idx, ok := sc.agg.colOf[render(e)]; ok {
			return &expr.ColRef{Idx: idx, K: sc.schema[idx].Kind, Name: sc.schema[idx].Name}, nil
		}
		if fc, ok := e.(*ast.FuncCall); ok && isAggName(fc.Name) {
			return nil, fmt.Errorf("internal: unregistered aggregate %s", render(fc))
		}
		if id, ok := e.(*ast.Ident); ok {
			return nil, fmt.Errorf("column %q must appear in the GROUP BY clause or be used in an aggregate function", id)
		}
	}

	switch t := e.(type) {
	case *ast.Ident:
		idx, err := sc.resolve(t.Parts)
		if err != nil {
			return nil, fmt.Errorf("line %d col %d: %w", t.Line, t.Col, err)
		}
		m := sc.schema[idx]
		return &expr.ColRef{Idx: idx, K: m.Kind, Name: m.QualifiedName()}, nil

	case *ast.NumberLit:
		if !t.IsFloat {
			if i, err := strconv.ParseInt(t.Text, 10, 64); err == nil {
				return &expr.Const{Val: types.NewInt(i)}, nil
			}
		}
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, fmt.Errorf("invalid numeric literal %q", t.Text)
		}
		return &expr.Const{Val: types.NewFloat(f)}, nil

	case *ast.StringLit:
		return &expr.Const{Val: types.NewString(t.Val)}, nil

	case *ast.BoolLit:
		return &expr.Const{Val: types.NewBool(t.Val)}, nil

	case *ast.NullLit:
		return &expr.Const{Val: types.NewNull(types.KindNull)}, nil

	case *ast.ParamExpr:
		if t.Index >= len(b.params) {
			return nil, fmt.Errorf("statement uses parameter %d but only %d argument(s) were supplied", t.Index+1, len(b.params))
		}
		return &expr.Param{Idx: t.Index, K: b.params[t.Index].K}, nil

	case *ast.UnaryExpr:
		x, err := b.bindExpr(t.X, sc)
		if err != nil {
			return nil, err
		}
		switch t.Op {
		case "-":
			if !x.Kind().Numeric() && x.Kind() != types.KindNull {
				return nil, fmt.Errorf("unary minus requires a numeric operand, got %v", x.Kind())
			}
			k := x.Kind()
			if k == types.KindNull {
				k = types.KindInt
			}
			return &expr.Neg{X: x, K: k}, nil
		case "NOT":
			if x.Kind() != types.KindBool && x.Kind() != types.KindNull {
				return nil, fmt.Errorf("NOT requires a boolean operand, got %v", x.Kind())
			}
			return &expr.Not{X: x}, nil
		}
		return nil, fmt.Errorf("unknown unary operator %s", t.Op)

	case *ast.BinaryExpr:
		return b.bindBinary(t, sc)

	case *ast.IsNullExpr:
		x, err := b.bindExpr(t.X, sc)
		if err != nil {
			return nil, err
		}
		return &expr.IsNull{X: x, Not: t.Not}, nil

	case *ast.InExpr:
		x, err := b.bindExpr(t.X, sc)
		if err != nil {
			return nil, err
		}
		list := make([]expr.Expr, len(t.List))
		for i, le := range t.List {
			v, err := b.bindExpr(le, sc)
			if err != nil {
				return nil, err
			}
			cv, err := coerce(v, x.Kind())
			if err != nil {
				return nil, fmt.Errorf("IN list element %d: %w", i+1, err)
			}
			list[i] = cv
		}
		return &expr.InList{X: x, List: list, Not: t.Not}, nil

	case *ast.BetweenExpr:
		// Desugar: X BETWEEN lo AND hi => X >= lo AND X <= hi.
		ge := &ast.BinaryExpr{Op: ">=", L: t.X, R: t.Lo}
		le := &ast.BinaryExpr{Op: "<=", L: t.X, R: t.Hi}
		both := &ast.BinaryExpr{Op: "AND", L: ge, R: le}
		if t.Not {
			return b.bindExpr(&ast.UnaryExpr{Op: "NOT", X: both}, sc)
		}
		return b.bindExpr(both, sc)

	case *ast.LikeExpr:
		x, err := b.bindExpr(t.X, sc)
		if err != nil {
			return nil, err
		}
		pat, err := b.bindExpr(t.Pattern, sc)
		if err != nil {
			return nil, err
		}
		if x.Kind() != types.KindString && x.Kind() != types.KindNull {
			return nil, fmt.Errorf("LIKE requires string operands, got %v", x.Kind())
		}
		if pat.Kind() != types.KindString && pat.Kind() != types.KindNull {
			return nil, fmt.Errorf("LIKE pattern must be a string, got %v", pat.Kind())
		}
		return &expr.Like{X: x, Pattern: pat, Not: t.Not}, nil

	case *ast.CaseExpr:
		return b.bindCase(t, sc)

	case *ast.CastExpr:
		x, err := b.bindExpr(t.X, sc)
		if err != nil {
			return nil, err
		}
		k, err := typeNameKind(t.TypeName)
		if err != nil {
			return nil, err
		}
		return &expr.Cast{X: x, To: k}, nil

	case *ast.FuncCall:
		if isAggName(t.Name) {
			return nil, fmt.Errorf("line %d col %d: aggregate %s is not allowed here", t.Line, t.Col, t.Name)
		}
		args := make([]expr.Expr, len(t.Args))
		kinds := make([]types.Kind, len(t.Args))
		for i, a := range t.Args {
			x, err := b.bindExpr(a, sc)
			if err != nil {
				return nil, err
			}
			args[i] = x
			kinds[i] = x.Kind()
		}
		k, ok := expr.ScalarFuncKind(t.Name, kinds)
		if !ok {
			return nil, fmt.Errorf("line %d col %d: unknown function %s with %d argument(s)", t.Line, t.Col, t.Name, len(t.Args))
		}
		return &expr.Func{Name: t.Name, Args: args, K: k}, nil

	case *ast.CheapestSum:
		if sc.cheapest != nil {
			if cc, ok := sc.cheapest[csKey(t)]; ok {
				return &expr.ColRef{Idx: cc.costIdx, K: cc.costKind, Name: "cheapest_sum"}, nil
			}
		}
		return nil, fmt.Errorf("line %d col %d: CHEAPEST SUM is only allowed in the SELECT list of a block with a REACHES predicate", t.Line, t.Col)

	case *ast.ReachesExpr:
		return nil, fmt.Errorf("line %d col %d: REACHES is only allowed as a top-level conjunct of the WHERE clause", t.Line, t.Col)

	case *ast.InSubquery:
		return nil, fmt.Errorf("line %d col %d: IN (SELECT ...) is only allowed as a top-level conjunct of the WHERE clause", t.Line, t.Col)

	case *ast.ExistsExpr:
		return nil, fmt.Errorf("line %d col %d: EXISTS is only allowed as a top-level conjunct of the WHERE clause", t.Line, t.Col)
	}
	return nil, fmt.Errorf("unsupported expression %T", e)
}

func (b *Binder) bindBinary(t *ast.BinaryExpr, sc *scope) (expr.Expr, error) {
	l, err := b.bindExpr(t.L, sc)
	if err != nil {
		return nil, err
	}
	r, err := b.bindExpr(t.R, sc)
	if err != nil {
		return nil, err
	}
	switch t.Op {
	case "AND", "OR":
		for _, x := range []expr.Expr{l, r} {
			if x.Kind() != types.KindBool && x.Kind() != types.KindNull {
				return nil, fmt.Errorf("%s requires boolean operands, got %v", t.Op, x.Kind())
			}
		}
		return &expr.Logic{And: t.Op == "AND", L: l, R: r}, nil

	case "||":
		lc, err := coerce(l, types.KindString)
		if err != nil {
			return nil, err
		}
		rc, err := coerce(r, types.KindString)
		if err != nil {
			return nil, err
		}
		return &expr.Concat{L: lc, R: rc}, nil

	case "=", "<>", "<", "<=", ">", ">=":
		op, _ := expr.CmpOpFromString(t.Op)
		l2, r2, err := promotePair(l, r)
		if err != nil {
			return nil, err
		}
		return &expr.Cmp{Op: op, L: l2, R: r2}, nil

	case "+", "-", "*", "/", "%":
		lk, rk := l.Kind(), r.Kind()
		if (!lk.Numeric() && lk != types.KindNull) || (!rk.Numeric() && rk != types.KindNull) {
			return nil, fmt.Errorf("operator %s requires numeric operands, got %v and %v", t.Op, lk, rk)
		}
		k, _ := types.CommonKind(lk, rk)
		if k == types.KindNull {
			k = types.KindInt
		}
		if t.Op == "%" && k != types.KindInt {
			return nil, fmt.Errorf("%% requires integer operands")
		}
		l2, err := coerce(l, k)
		if err != nil {
			return nil, err
		}
		r2, err := coerce(r, k)
		if err != nil {
			return nil, err
		}
		var op expr.ArithOp
		switch t.Op {
		case "+":
			op = expr.OpAdd
		case "-":
			op = expr.OpSub
		case "*":
			op = expr.OpMul
		case "/":
			op = expr.OpDiv
		case "%":
			op = expr.OpMod
		}
		return &expr.Arith{Op: op, L: l2, R: r2, K: k}, nil
	}
	return nil, fmt.Errorf("unknown binary operator %s", t.Op)
}

func (b *Binder) bindCase(t *ast.CaseExpr, sc *scope) (expr.Expr, error) {
	c := &expr.Case{}
	bindArm := func(when ast.Expr) (expr.Expr, error) {
		if t.Operand != nil {
			// Operand form desugars to operand = when.
			return b.bindExpr(&ast.BinaryExpr{Op: "=", L: t.Operand, R: when}, sc)
		}
		w, err := b.bindExpr(when, sc)
		if err != nil {
			return nil, err
		}
		if w.Kind() != types.KindBool && w.Kind() != types.KindNull {
			return nil, fmt.Errorf("CASE WHEN condition must be boolean, got %v", w.Kind())
		}
		return w, nil
	}
	resultKind := types.KindNull
	var thens []expr.Expr
	for _, arm := range t.Whens {
		w, err := bindArm(arm.When)
		if err != nil {
			return nil, err
		}
		th, err := b.bindExpr(arm.Then, sc)
		if err != nil {
			return nil, err
		}
		nk, ok := types.CommonKind(resultKind, th.Kind())
		if !ok {
			return nil, fmt.Errorf("CASE branches have incompatible types %v and %v", resultKind, th.Kind())
		}
		resultKind = nk
		c.Whens = append(c.Whens, w)
		thens = append(thens, th)
	}
	var elseE expr.Expr
	if t.Else != nil {
		x, err := b.bindExpr(t.Else, sc)
		if err != nil {
			return nil, err
		}
		nk, ok := types.CommonKind(resultKind, x.Kind())
		if !ok {
			return nil, fmt.Errorf("CASE branches have incompatible types %v and %v", resultKind, x.Kind())
		}
		resultKind = nk
		elseE = x
	}
	if resultKind == types.KindNull {
		resultKind = types.KindInt
	}
	for _, th := range thens {
		cv, err := coerce(th, resultKind)
		if err != nil {
			return nil, err
		}
		c.Thens = append(c.Thens, cv)
	}
	if elseE != nil {
		cv, err := coerce(elseE, resultKind)
		if err != nil {
			return nil, err
		}
		c.Else = cv
	}
	c.K = resultKind
	return c, nil
}

// coerce inserts a cast when the expression kind differs from want.
// NULL-kind expressions pass through (typed at runtime).
func coerce(e expr.Expr, want types.Kind) (expr.Expr, error) {
	k := e.Kind()
	if k == want || k == types.KindNull {
		return e, nil
	}
	switch {
	case k.Numeric() && want.Numeric(),
		want == types.KindString,
		k == types.KindString && want == types.KindDate,
		k == types.KindString && want.Numeric():
		return &expr.Cast{X: e, To: want}, nil
	}
	return nil, fmt.Errorf("cannot use %v where %v is required", k, want)
}

// promotePair promotes comparison operands to a common kind, allowing
// numeric widening and string-literal-to-date coercion.
func promotePair(l, r expr.Expr) (expr.Expr, expr.Expr, error) {
	lk, rk := l.Kind(), r.Kind()
	if lk == rk || lk == types.KindNull || rk == types.KindNull {
		return l, r, nil
	}
	if lk.Numeric() && rk.Numeric() {
		k := types.KindInt
		if lk == types.KindFloat || rk == types.KindFloat {
			k = types.KindFloat
		}
		lc, _ := coerce(l, k)
		rc, _ := coerce(r, k)
		return lc, rc, nil
	}
	// date vs string: compare as dates (handles creationDate <
	// '2011-01-01' from the paper's appendix A.3).
	if lk == types.KindDate && rk == types.KindString {
		rc, err := coerce(r, types.KindDate)
		return l, rc, err
	}
	if lk == types.KindString && rk == types.KindDate {
		lc, err := coerce(l, types.KindDate)
		return lc, r, err
	}
	return nil, nil, fmt.Errorf("cannot compare %v with %v", lk, rk)
}

// collectAggs gathers aggregate calls in e (not descending into their
// arguments) and reports an error on nested aggregates.
func collectAggs(e ast.Expr, out *[]*ast.FuncCall) error {
	switch t := e.(type) {
	case *ast.FuncCall:
		if isAggName(t.Name) {
			for _, a := range t.Args {
				if err := ensureNoAggs(a); err != nil {
					return err
				}
			}
			*out = append(*out, t)
			return nil
		}
		for _, a := range t.Args {
			if err := collectAggs(a, out); err != nil {
				return err
			}
		}
	case *ast.BinaryExpr:
		if err := collectAggs(t.L, out); err != nil {
			return err
		}
		return collectAggs(t.R, out)
	case *ast.UnaryExpr:
		return collectAggs(t.X, out)
	case *ast.IsNullExpr:
		return collectAggs(t.X, out)
	case *ast.InExpr:
		if err := collectAggs(t.X, out); err != nil {
			return err
		}
		for _, le := range t.List {
			if err := collectAggs(le, out); err != nil {
				return err
			}
		}
	case *ast.BetweenExpr:
		for _, x := range []ast.Expr{t.X, t.Lo, t.Hi} {
			if err := collectAggs(x, out); err != nil {
				return err
			}
		}
	case *ast.LikeExpr:
		if err := collectAggs(t.X, out); err != nil {
			return err
		}
		return collectAggs(t.Pattern, out)
	case *ast.CaseExpr:
		if t.Operand != nil {
			if err := collectAggs(t.Operand, out); err != nil {
				return err
			}
		}
		for _, w := range t.Whens {
			if err := collectAggs(w.When, out); err != nil {
				return err
			}
			if err := collectAggs(w.Then, out); err != nil {
				return err
			}
		}
		if t.Else != nil {
			return collectAggs(t.Else, out)
		}
	case *ast.CastExpr:
		return collectAggs(t.X, out)
	case *ast.CheapestSum:
		// Weight expressions evaluate over the edge table; aggregates
		// cannot appear there and are rejected when the weight binds.
		return nil
	}
	return nil
}

// ensureNoAggs rejects aggregates anywhere inside e.
func ensureNoAggs(e ast.Expr) error {
	var found []*ast.FuncCall
	if err := collectAggs(e, &found); err != nil {
		return err
	}
	if len(found) > 0 {
		return fmt.Errorf("aggregate calls cannot be nested")
	}
	return nil
}

// bindAggSpec builds the plan.AggSpec for one aggregate call, binding
// its argument over the pre-aggregation scope.
func (b *Binder) bindAggSpec(fc *ast.FuncCall, sc *scope) (plan.AggSpec, error) {
	spec := plan.AggSpec{Distinct: fc.Distinct, Name: render(fc)}
	if fc.Name == "COUNT" && fc.Star {
		spec.Op = plan.AggCountStar
		spec.Kind = types.KindInt
		return spec, nil
	}
	if len(fc.Args) != 1 {
		return plan.AggSpec{}, fmt.Errorf("%s takes exactly one argument", fc.Name)
	}
	arg, err := b.bindExpr(fc.Args[0], sc)
	if err != nil {
		return plan.AggSpec{}, err
	}
	spec.Arg = arg
	switch fc.Name {
	case "COUNT":
		spec.Op = plan.AggCount
		spec.Kind = types.KindInt
	case "SUM":
		if !arg.Kind().Numeric() && arg.Kind() != types.KindNull {
			return plan.AggSpec{}, fmt.Errorf("SUM requires a numeric argument, got %v", arg.Kind())
		}
		spec.Op = plan.AggSum
		spec.Kind = arg.Kind()
		if spec.Kind == types.KindNull {
			spec.Kind = types.KindInt
		}
	case "AVG":
		if !arg.Kind().Numeric() && arg.Kind() != types.KindNull {
			return plan.AggSpec{}, fmt.Errorf("AVG requires a numeric argument, got %v", arg.Kind())
		}
		spec.Op = plan.AggAvg
		spec.Kind = types.KindFloat
	case "MIN", "MAX":
		if !arg.Kind().Comparable() && arg.Kind() != types.KindNull {
			return plan.AggSpec{}, fmt.Errorf("%s requires a comparable argument, got %v", fc.Name, arg.Kind())
		}
		if fc.Name == "MIN" {
			spec.Op = plan.AggMin
		} else {
			spec.Op = plan.AggMax
		}
		spec.Kind = arg.Kind()
		if spec.Kind == types.KindNull {
			spec.Kind = types.KindInt
		}
	}
	return spec, nil
}
