package analyze

import (
	"strings"
	"testing"

	"graphsql/internal/plan"
	"graphsql/internal/sql/ast"
	"graphsql/internal/sql/parser"
	"graphsql/internal/storage"
	"graphsql/internal/types"
)

func testCatalog(t *testing.T) *storage.Catalog {
	t.Helper()
	cat := storage.NewCatalog()
	mustCreate := func(name string, sch storage.Schema) {
		if _, err := cat.CreateTable(name, sch); err != nil {
			t.Fatal(err)
		}
	}
	mustCreate("persons", storage.Schema{
		{Name: "id", Kind: types.KindInt},
		{Name: "name", Kind: types.KindString},
	})
	mustCreate("friends", storage.Schema{
		{Name: "src", Kind: types.KindInt},
		{Name: "dst", Kind: types.KindInt},
		{Name: "w", Kind: types.KindFloat},
	})
	return cat
}

func bind(t *testing.T, cat *storage.Catalog, sql string, params ...types.Value) (plan.Node, error) {
	t.Helper()
	stmt, err := parser.Parse(sql)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return BindSelect(cat, stmt.(*ast.SelectStmt), params)
}

func mustBind(t *testing.T, cat *storage.Catalog, sql string, params ...types.Value) plan.Node {
	t.Helper()
	n, err := bind(t, cat, sql, params...)
	if err != nil {
		t.Fatalf("bind %q: %v", sql, err)
	}
	return n
}

func bindErr(t *testing.T, cat *storage.Catalog, sql string, substr string) {
	t.Helper()
	_, err := bind(t, cat, sql)
	if err == nil {
		t.Fatalf("bind %q: expected error containing %q", sql, substr)
	}
	if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(substr)) {
		t.Fatalf("bind %q: error %q missing %q", sql, err, substr)
	}
}

func TestBindProducesGraphMatch(t *testing.T) {
	cat := testCatalog(t)
	n := mustBind(t, cat, `SELECT CHEAPEST SUM(1) AS c
		WHERE 1 REACHES 2 OVER friends EDGE (src, dst)`)
	// Walk the plan looking for the GraphMatch.
	var gm *plan.GraphMatch
	var walk func(plan.Node)
	walk = func(x plan.Node) {
		if g, ok := x.(*plan.GraphMatch); ok {
			gm = g
		}
		for _, c := range x.Children() {
			walk(c)
		}
	}
	walk(n)
	if gm == nil {
		t.Fatalf("no GraphMatch in plan:\n%s", plan.Explain(n))
	}
	if gm.SrcIdx != 0 || gm.DstIdx != 1 {
		t.Fatalf("edge columns = (%d,%d)", gm.SrcIdx, gm.DstIdx)
	}
	if len(gm.Specs) != 1 || gm.Specs[0].CostKind != types.KindInt || gm.Specs[0].WantPath {
		t.Fatalf("specs = %+v", gm.Specs)
	}
	// Output schema: one column named c.
	sch := n.Schema()
	if len(sch) != 1 || sch[0].Name != "c" {
		t.Fatalf("schema = %v", sch)
	}
}

func TestBindCheapestFloatWeightKind(t *testing.T) {
	cat := testCatalog(t)
	n := mustBind(t, cat, `SELECT CHEAPEST SUM(f: w)
		WHERE 1 REACHES 2 OVER friends f EDGE (src, dst)`)
	if n.Schema()[0].Kind != types.KindFloat {
		t.Fatalf("cost kind = %v, want float (follows the weight expr)", n.Schema()[0].Kind)
	}
}

func TestBindPathColumnSchemaTracking(t *testing.T) {
	cat := testCatalog(t)
	// Unnest of a path produced by an inner derived table: the nested
	// schema must expose the edge table's columns.
	n := mustBind(t, cat, `
		SELECT r.src, r.dst, r.w
		FROM (
			SELECT CHEAPEST SUM(f: 1) AS (c, p)
			WHERE 1 REACHES 2 OVER friends f EDGE (src, dst)
		) t, UNNEST(t.p) AS r`)
	sch := n.Schema()
	if len(sch) != 3 || sch[2].Kind != types.KindFloat {
		t.Fatalf("schema = %v", sch)
	}
}

func TestBindErrors(t *testing.T) {
	cat := testCatalog(t)
	bindErr(t, cat, `SELECT CHEAPEST SUM(1)`, "REACHES")
	bindErr(t, cat, `SELECT 1 WHERE 'x' REACHES 2 OVER friends EDGE (src, dst)`, "type")
	bindErr(t, cat, `SELECT 1 WHERE 1 REACHES 'x' OVER friends EDGE (src, dst)`, "type")
	bindErr(t, cat, `SELECT 1 WHERE 1 REACHES 2 OVER friends EDGE (src, w)`, "different types")
	bindErr(t, cat, `SELECT 1 WHERE 1 REACHES 2 OVER nope EDGE (src, dst)`, "does not exist")
	bindErr(t, cat, `SELECT 1 WHERE NOT (1 REACHES 2 OVER friends EDGE (src, dst))`, "top-level")
	bindErr(t, cat, `SELECT CHEAPEST SUM(q: 1) WHERE 1 REACHES 2 OVER friends f EDGE (src, dst)`, "unknown")
	bindErr(t, cat, `SELECT name, CHEAPEST SUM(1) AS (a, b, c)
		FROM persons WHERE 1 REACHES 2 OVER friends EDGE (src, dst)`, "two components")
	bindErr(t, cat, `SELECT id + 1 AS (a, b) FROM persons`, "bare CHEAPEST SUM")
	// Ambiguous unqualified CHEAPEST SUM with two predicates.
	bindErr(t, cat, `SELECT CHEAPEST SUM(1)
		WHERE 1 REACHES 2 OVER friends a EDGE (src, dst)
		  AND 2 REACHES 3 OVER friends b EDGE (src, dst)`, "must name")
	// Duplicate edge variable.
	bindErr(t, cat, `SELECT 1
		WHERE 1 REACHES 2 OVER friends e EDGE (src, dst)
		  AND 2 REACHES 3 OVER friends e EDGE (src, dst)`, "duplicate")
	// UNNEST of a non-path expression.
	bindErr(t, cat, `SELECT 1 FROM persons p, UNNEST(p.id) AS r`, "nested-table")
	// UNNEST with nothing before it.
	bindErr(t, cat, `SELECT 1 FROM UNNEST(x) AS r`, "follow")
}

func TestBindCheapestSumInsideExpression(t *testing.T) {
	cat := testCatalog(t)
	n := mustBind(t, cat, `SELECT CHEAPEST SUM(1) * 10 + 1 AS scaled
		WHERE 1 REACHES 2 OVER friends EDGE (src, dst)`)
	if n.Schema()[0].Name != "scaled" || n.Schema()[0].Kind != types.KindInt {
		t.Fatalf("schema = %v", n.Schema())
	}
}

func TestBindReachesOverCTEKeepsEdgeScopeSeparate(t *testing.T) {
	cat := testCatalog(t)
	// The weight expression binds over the CTE's schema, not over the
	// outer FROM scope.
	mustBind(t, cat, `
		WITH f2 AS (SELECT src, dst, w * 2 AS w2 FROM friends)
		SELECT name, CHEAPEST SUM(e: w2)
		FROM persons
		WHERE id REACHES 99 OVER f2 e EDGE (src, dst)`)
	// And referencing an outer column inside the weight fails.
	bindErr(t, cat, `
		SELECT name, CHEAPEST SUM(e: id)
		FROM persons
		WHERE id REACHES 99 OVER friends e EDGE (src, dst)`, "not found")
}

func TestBindParamsTypedFromArgs(t *testing.T) {
	cat := testCatalog(t)
	// Int params satisfy the int key kind.
	mustBind(t, cat, `SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER friends EDGE (src, dst)`,
		types.NewInt(1), types.NewInt(2))
	// A string param fails the §2 type check.
	if _, err := bind(t, cat,
		`SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER friends EDGE (src, dst)`,
		types.NewString("a"), types.NewInt(2)); err == nil {
		t.Fatal("string parameter must fail the key type check")
	}
}

func TestBindStarExcludesGeneratedColumns(t *testing.T) {
	cat := testCatalog(t)
	n := mustBind(t, cat, `SELECT p.*, CHEAPEST SUM(1) AS c
		FROM persons p
		WHERE p.id REACHES 2 OVER friends EDGE (src, dst)`)
	sch := n.Schema()
	if len(sch) != 3 {
		t.Fatalf("schema = %v (star must not expand cost/path columns)", sch)
	}
}

func TestBindScalarRejectsColumns(t *testing.T) {
	cat := testCatalog(t)
	b := NewBinder(cat, nil)
	stmt, _ := parser.Parse(`SELECT 1`)
	_ = stmt
	e, err := parser.Parse(`SELECT id`) // reuse the parser for an expr
	if err != nil {
		t.Fatal(err)
	}
	item := e.(*ast.SelectStmt).Body.(*ast.SelectCore).Items[0].Expr
	if _, err := b.BindScalar(item); err == nil {
		t.Fatal("column reference must fail in scalar context")
	}
}

func TestTypeNameKind(t *testing.T) {
	cases := map[string]types.Kind{
		"INT": types.KindInt, "integer": types.KindInt, "BIGINT": types.KindInt,
		"DOUBLE": types.KindFloat, "real": types.KindFloat,
		"VARCHAR": types.KindString, "text": types.KindString,
		"BOOLEAN": types.KindBool, "DATE": types.KindDate,
	}
	for name, want := range cases {
		got, err := TypeNameKind(name)
		if err != nil || got != want {
			t.Errorf("TypeNameKind(%q) = (%v, %v), want %v", name, got, err, want)
		}
	}
	if _, err := TypeNameKind("BLOB"); err == nil {
		t.Fatal("unknown type must error")
	}
}

func TestRenderCanonicalization(t *testing.T) {
	// GROUP BY matching is case-insensitive through render().
	parse := func(s string) ast.Expr {
		stmt, err := parser.Parse("SELECT " + s)
		if err != nil {
			t.Fatal(err)
		}
		return stmt.(*ast.SelectStmt).Body.(*ast.SelectCore).Items[0].Expr
	}
	if render(parse("Foo.Bar")) != render(parse("foo.bar")) {
		t.Fatal("identifier rendering must be case-insensitive")
	}
	if render(parse("SUM(x)")) == render(parse("SUM(y)")) {
		t.Fatal("different aggregates must render differently")
	}
	if render(parse("COUNT(*)")) != render(parse("count(*)")) {
		t.Fatal("count(*) rendering unstable")
	}
}
